open Cvl

let run frames = Validator.run ~source:Rulesets.source ~manifest:Rulesets.manifest frames

let violations frames = Report.violations (run frames).Validator.results

let is_script_or_composite (r : Engine.result) =
  match r.Engine.rule with
  | Rule.Script _ | Rule.Composite _ | Rule.Cluster _ -> true
  | Rule.Tree _ | Rule.Schema _ | Rule.Path _ -> false

let fixpoint_cases =
  [
    Alcotest.test_case "fixpoint clears every file-fixable violation" `Quick (fun () ->
        let frames = Scenarios.Deployment.three_tier ~compliant:false in
        let _frames', _reports, remaining =
          Remediate.fixpoint ~source:Rulesets.source ~manifest:Rulesets.manifest frames
        in
        let file_fixable = List.filter (fun r -> not (is_script_or_composite r)) remaining in
        Alcotest.(check (list string)) "no tree/schema/path violations remain" []
          (List.map (fun (r : Engine.result) -> Rule.name r.Engine.rule) file_fixable));
    Alcotest.test_case "fixpoint strictly reduces violations" `Quick (fun () ->
        let frames = Scenarios.Deployment.three_tier ~compliant:false in
        let before = List.length (violations frames) in
        let frames', _, remaining =
          Remediate.fixpoint ~source:Rulesets.source ~manifest:Rulesets.manifest frames
        in
        Alcotest.(check bool) "fewer after" true (List.length remaining < before);
        Alcotest.(check int) "frames preserved" (List.length frames) (List.length frames'));
    Alcotest.test_case "compliant deployment needs no fixes" `Quick (fun () ->
        let frames = Scenarios.Deployment.three_tier ~compliant:true in
        let _frames', reports =
          Remediate.deployment ~source:Rulesets.source ~manifest:Rulesets.manifest frames
        in
        let fixed =
          List.filter (fun r -> match r.Remediate.outcome with Remediate.Fixed _ -> true | _ -> false) reports
        in
        Alcotest.(check int) "no fixes" 0 (List.length fixed));
    Alcotest.test_case "remediated files still parse with their lens" `Quick (fun () ->
        let frames = Scenarios.Deployment.three_tier ~compliant:false in
        let frames', _, _ =
          Remediate.fixpoint ~source:Rulesets.source ~manifest:Rulesets.manifest frames
        in
        let t = run frames' in
        let errors =
          List.filter
            (fun (r : Engine.result) ->
              match r.Engine.verdict with Engine.Engine_error _ -> true | _ -> false)
            t.Validator.results
        in
        Alcotest.(check int) "no parse errors introduced" 0 (List.length errors));
  ]

(* Focused unit behaviour on a single entity. *)
let sshd_entry =
  {
    Manifest.entity = "sshd";
    enabled = true;
    search_paths = [ "/etc/ssh" ];
    cvl_file = "component_configs/sshd.yaml";
    lens = Some "sshd";
    rule_type = None;
    flaky_plugins = [];
  }

let sshd_rules () = Result.get_ok (Loader.load_file Rulesets.source "component_configs/sshd.yaml")

let host_with_sshd content mode =
  Frames.Frame.add_file
    (Frames.Frame.create ~id:"r" Frames.Frame.Host)
    (Frames.File.make ~mode ~content "/etc/ssh/sshd_config")

let unit_cases =
  [
    Alcotest.test_case "sets a wrong value to the preferred one" `Quick (fun () ->
        let frame = host_with_sshd "PermitRootLogin yes\n" 0o600 in
        let frame', _ = Remediate.entity frame sshd_entry (sshd_rules ()) in
        let content = Option.get (Frames.Frame.read frame' "/etc/ssh/sshd_config") in
        Alcotest.(check bool) "no" true
          (Re.execp (Re.compile (Re.str "PermitRootLogin no")) content);
        Alcotest.(check bool) "yes gone" false
          (Re.execp (Re.compile (Re.str "PermitRootLogin yes")) content));
    Alcotest.test_case "inserts a missing key" `Quick (fun () ->
        let frame = host_with_sshd "PermitRootLogin no\n" 0o600 in
        let frame', _ = Remediate.entity frame sshd_entry (sshd_rules ()) in
        let content = Option.get (Frames.Frame.read frame' "/etc/ssh/sshd_config") in
        Alcotest.(check bool) "banner added" true
          (Re.execp (Re.compile (Re.str "Banner /etc/issue.net")) content));
    Alcotest.test_case "regex expectation recovered from suggested_action" `Quick (fun () ->
        (* MaxAuthTries has a regex preferred value; the fix comes from
           the backquoted `MaxAuthTries 4` hint. *)
        let frame = host_with_sshd "MaxAuthTries 20\n" 0o600 in
        let frame', _ = Remediate.entity frame sshd_entry (sshd_rules ()) in
        let content = Option.get (Frames.Frame.read frame' "/etc/ssh/sshd_config") in
        Alcotest.(check bool) "hinted value" true
          (Re.execp (Re.compile (Re.str "MaxAuthTries 4")) content));
    Alcotest.test_case "path rule fix resets mode and ownership" `Quick (fun () ->
        let frame = host_with_sshd "PermitRootLogin no\n" 0o666 in
        let frame = Frames.Frame.chown frame ~path:"/etc/ssh/sshd_config" ~uid:33 ~gid:33 in
        let frame', _ = Remediate.entity frame sshd_entry (sshd_rules ()) in
        let f = Option.get (Frames.Frame.stat frame' "/etc/ssh/sshd_config") in
        Alcotest.(check int) "mode" 0o600 f.Frames.File.mode;
        Alcotest.(check string) "owner" "0:0" (Frames.File.ownership f));
    Alcotest.test_case "delete-style rule removes the offending entry" `Quick (fun () ->
        let entry =
          { sshd_entry with Manifest.entity = "docker"; search_paths = [ "/etc/docker" ];
            cvl_file = "component_configs/docker.yaml"; lens = Some "json" }
        in
        let rules = Result.get_ok (Loader.load_file Rulesets.source "component_configs/docker.yaml") in
        let frame = Scenarios.Dockerhost.misconfigured () in
        let frame', _ = Remediate.entity frame entry rules in
        let content = Option.get (Frames.Frame.read frame' "/etc/docker/daemon.json") in
        Alcotest.(check bool) "insecure registries removed" false
          (Re.execp (Re.compile (Re.str "insecure-registries")) content);
        Alcotest.(check bool) "icc now false" true
          (Re.execp (Re.compile (Re.str "\"icc\": false")) content));
    Alcotest.test_case "schema fix synthesizes a missing row" `Quick (fun () ->
        let entry =
          { sshd_entry with Manifest.entity = "modprobe"; search_paths = [ "/etc/modprobe.d" ];
            cvl_file = "component_configs/modprobe.yaml"; lens = Some "modprobe" }
        in
        let rules = Result.get_ok (Loader.load_file Rulesets.source "component_configs/modprobe.yaml") in
        let frame =
          Frames.Frame.add_file
            (Frames.Frame.create ~id:"r" Frames.Frame.Host)
            (Frames.File.make ~content:"install freevxfs /bin/true\n" "/etc/modprobe.d/CIS.conf")
        in
        let frame', _ = Remediate.entity frame entry rules in
        let content = Option.get (Frames.Frame.read frame' "/etc/modprobe.d/CIS.conf") in
        Alcotest.(check bool) "cramfs disabled" true
          (Re.execp (Re.compile (Re.str "install cramfs /bin/true")) content);
        Alcotest.(check bool) "usb-storage blacklisted" true
          (Re.execp (Re.compile (Re.str "blacklist usb-storage")) content));
    Alcotest.test_case "schema fix appends a missing mount option" `Quick (fun () ->
        let entry =
          { sshd_entry with Manifest.entity = "fstab"; search_paths = [ "/etc/fstab" ];
            cvl_file = "component_configs/fstab.yaml"; lens = Some "fstab" }
        in
        let rules = Result.get_ok (Loader.load_file Rulesets.source "component_configs/fstab.yaml") in
        let frame =
          Frames.Frame.add_file
            (Frames.Frame.create ~id:"r" Frames.Frame.Host)
            (Frames.File.make
               ~content:"UUID=1 / ext4 defaults 0 1\nUUID=2 /tmp ext4 nodev 0 2\n"
               "/etc/fstab")
        in
        let frame', _ = Remediate.entity frame entry rules in
        let content = Option.get (Frames.Frame.read frame' "/etc/fstab") in
        Alcotest.(check bool) "nosuid appended" true
          (Re.execp (Re.compile (Re.Pcre.re "/tmp ext4 nodev[^\\n]*nosuid")) content));
    Alcotest.test_case "script rules are reported as skipped" `Quick (fun () ->
        let entry =
          { sshd_entry with Manifest.entity = "sysctl"; search_paths = [ "/etc/sysctl.conf" ];
            cvl_file = "component_configs/sysctl.yaml"; lens = Some "sysctl" }
        in
        let rules = Result.get_ok (Loader.load_file Rulesets.source "component_configs/sysctl.yaml") in
        let frame = Scenarios.Host.misconfigured () in
        let _, reports = Remediate.entity frame entry rules in
        let skipped_script =
          List.find_opt (fun r -> r.Remediate.rule_name = "kernel.randomize_va_space") reports
        in
        match skipped_script with
        | Some { Remediate.outcome = Remediate.Skipped _; _ } -> ()
        | Some { Remediate.outcome = Remediate.Fixed _; _ } -> Alcotest.fail "script rule must not be 'fixed'"
        | None -> Alcotest.fail "expected a report for the script rule");
  ]

let suite = fixpoint_cases @ unit_cases
