open Cvl

let run ?tags frames =
  Validator.run ?tags ~source:Rulesets.source ~manifest:Rulesets.manifest frames

let violations t =
  Report.violations t.Validator.results
  |> List.map (fun (r : Engine.result) -> (r.Engine.entity, Rule.name r.Engine.rule))
  |> List.sort_uniq compare

let detection_cases =
  [
    Alcotest.test_case "compliant deployment is all green" `Quick (fun () ->
        let t = run (Scenarios.Deployment.three_tier ~compliant:true) in
        Alcotest.(check (list (pair string string))) "no load errors" [] t.Validator.load_errors;
        Alcotest.(check (list (pair string string))) "no violations" [] (violations t));
    Alcotest.test_case "misconfigured deployment reports exactly the injected faults" `Quick
      (fun () ->
        let t = run (Scenarios.Deployment.three_tier ~compliant:false) in
        let expected = List.sort_uniq compare Scenarios.Deployment.injected_faults in
        Alcotest.(check (list (pair string string))) "faults" expected (violations t));
    Alcotest.test_case "misconfigured host alone" `Quick (fun () ->
        let t = run [ Scenarios.Host.misconfigured () ] in
        let expected = List.sort_uniq compare Scenarios.Host.injected_faults in
        let host_violations =
          List.filter (fun (e, _) -> List.mem_assoc e (List.map (fun x -> (fst x, ())) expected))
            (violations t)
        in
        Alcotest.(check (list (pair string string))) "host faults" expected host_violations);
    Alcotest.test_case "image scanning finds config faults before runtime" `Quick (fun () ->
        let t = run [ Scenarios.Webstack.nginx_image_frame ~compliant:false ] in
        let nginx = List.filter (fun (e, _) -> e = "nginx") (violations t) in
        Alcotest.(check bool) "ssl_protocols flagged" true (List.mem ("nginx", "ssl_protocols") nginx);
        Alcotest.(check bool) "autoindex flagged" true (List.mem ("nginx", "autoindex") nginx));
  ]

let composite_cases =
  [
    Alcotest.test_case "listing 1 composite passes on the compliant stack" `Quick (fun () ->
        let t = run (Scenarios.Deployment.three_tier ~compliant:true) in
        let result =
          List.find
            (fun (r : Engine.result) ->
              Rule.name r.Engine.rule = "mysql ssl-ca path and sysctl and nginx SSL")
            t.Validator.results
        in
        Alcotest.(check string) "verdict" "matched" (Engine.verdict_to_string result.Engine.verdict));
    Alcotest.test_case "composites aggregate across frames" `Quick (fun () ->
        (* The nginx fact lives in one frame, the mysql fact in another,
           the sysctl fact in a third. *)
        let frames = Scenarios.Deployment.three_tier ~compliant:true in
        let t = run frames in
        let composite_results =
          List.filter
            (fun (r : Engine.result) -> Rule.kind_to_string r.Engine.rule = "composite")
            t.Validator.results
        in
        Alcotest.(check int) "three composites" 3 (List.length composite_results);
        List.iter
          (fun (r : Engine.result) ->
            Alcotest.(check string)
              (Rule.name r.Engine.rule) "matched"
              (Engine.verdict_to_string r.Engine.verdict))
          composite_results);
    Alcotest.test_case "composite fails when one tier is missing" `Quick (fun () ->
        (* Without the mysql container, have_ssl cannot match. *)
        let frames =
          [ Scenarios.Host.compliant (); Scenarios.Webstack.nginx_container_frame ~compliant:true ]
        in
        let t = run frames in
        let result =
          List.find
            (fun (r : Engine.result) -> Rule.name r.Engine.rule = "tls_everywhere")
            t.Validator.results
        in
        Alcotest.(check string) "verdict" "not-matched" (Engine.verdict_to_string result.Engine.verdict));
  ]

let filter_cases =
  [
    Alcotest.test_case "tag filtering selects rule subsets" `Quick (fun () ->
        let t = run ~tags:[ "#cisdocker_5.4" ] [ Scenarios.Webstack.nginx_container_frame ~compliant:false ] in
        let names =
          List.map (fun (r : Engine.result) -> Rule.name r.Engine.rule) t.Validator.results
          |> List.sort_uniq compare
        in
        (* Both the container-runtime rule and the compose rule carry
           the CIS Docker 5.4 tag. *)
        Alcotest.(check (list string)) "only the 5.4 rules" [ "container_privileged"; "privileged" ]
          names);
    Alcotest.test_case "multi-frame runs drop not-applicable noise" `Quick (fun () ->
        let t = run (Scenarios.Deployment.three_tier ~compliant:true) in
        Alcotest.(check bool) "no n/a results" true
          (List.for_all
             (fun (r : Engine.result) -> r.Engine.verdict <> Engine.Not_applicable)
             t.Validator.results));
    Alcotest.test_case "single-frame runs keep not-applicable" `Quick (fun () ->
        let t = run [ Scenarios.Host.compliant () ] in
        Alcotest.(check bool) "has n/a (apache etc.)" true
          (List.exists
             (fun (r : Engine.result) -> r.Engine.verdict = Engine.Not_applicable)
             t.Validator.results));
  ]

let report_cases =
  [
    Alcotest.test_case "summary counts are consistent" `Quick (fun () ->
        let t = run (Scenarios.Deployment.three_tier ~compliant:false) in
        let s = Report.summarize t.Validator.results in
        Alcotest.(check int) "total" (List.length t.Validator.results) s.Report.total;
        Alcotest.(check int) "partition" s.Report.total
          (s.Report.matched + s.Report.violations + s.Report.not_applicable + s.Report.errors));
    Alcotest.test_case "json report parses and carries the summary" `Quick (fun () ->
        let t = run [ Scenarios.Host.misconfigured () ] in
        let json = Report.to_json t.Validator.results in
        let reparsed = Jsonlite.parse_exn (Jsonlite.to_string json) in
        let summary = Option.get (Jsonlite.member "summary" reparsed) in
        let violations = Option.get (Jsonlite.member "violations" summary) in
        Alcotest.(check bool) "violations > 0" true
          (match Jsonlite.get_num violations with Some f -> f > 0. | None -> false));
    Alcotest.test_case "text report mentions the paper's output strings" `Quick (fun () ->
        let t = run [ Scenarios.Host.misconfigured () ] in
        let text = Report.to_text t.Validator.results in
        Alcotest.(check bool) "PermitRootLogin line" true
          (Re.execp (Re.compile (Re.str "PermitRootLogin is present but it is enabled.")) text));
    Alcotest.test_case "verbose report includes suggested actions" `Quick (fun () ->
        let t = run [ Scenarios.Host.misconfigured () ] in
        let text = Report.to_text ~verbose:true t.Validator.results in
        Alcotest.(check bool) "action hint" true
          (Re.execp (Re.compile (Re.str "PermitRootLogin no")) text));
  ]

(* ------------------------------------------------------------------ *)
(* Parallel sharding and the normalization cache                       *)
(* ------------------------------------------------------------------ *)

let loaded_rules () =
  Result.get_ok (Validator.load_rules ~source:Rulesets.source ~manifest:Rulesets.manifest)

(* Every observable field, in result order: determinism means these
   lists — not just the verdict multisets — are equal. *)
let full_signature (t : Validator.t) =
  List.map
    (fun (r : Engine.result) ->
      ( (r.Engine.entity, r.Engine.frame_id, Rule.name r.Engine.rule),
        (Engine.verdict_to_string r.Engine.verdict, r.Engine.detail, r.Engine.evidence) ))
    t.Validator.results

let multi_frame_deployment () =
  Scenarios.Deployment.three_tier ~compliant:false @ Scenarios.Deployment.container_fleet 8

let parallel_cases =
  [
    Alcotest.test_case "jobs=1 and jobs=4 return byte-identical ordered results" `Quick (fun () ->
        let rules = loaded_rules () in
        let frames = multi_frame_deployment () in
        let seq = Validator.run_loaded ~jobs:1 ~rules frames in
        let par = Validator.run_loaded ~jobs:4 ~rules frames in
        Alcotest.(check int) "result count" (List.length seq.Validator.results)
          (List.length par.Validator.results);
        Alcotest.(check bool) "identical signatures" true (full_signature seq = full_signature par);
        Alcotest.(check string) "identical rendered reports"
          (Report.to_text ~verbose:true seq.Validator.results)
          (Report.to_text ~verbose:true par.Validator.results));
    Alcotest.test_case "an explicit pool matches the sequential run" `Quick (fun () ->
        let rules = loaded_rules () in
        let frames = multi_frame_deployment () in
        let seq = Validator.run_loaded ~rules frames in
        Pool.with_pool ~jobs:3 (fun pool ->
            let a = Validator.run_loaded ~pool ~rules frames in
            let b = Validator.run_loaded ~pool ~rules frames in
            Alcotest.(check bool) "pool run matches" true (full_signature seq = full_signature a);
            Alcotest.(check bool) "pool reuse matches" true (full_signature a = full_signature b)));
    Alcotest.test_case "parallel run matches via the public run entry point" `Quick (fun () ->
        let frames = Scenarios.Deployment.three_tier ~compliant:false in
        let seq = run frames in
        let par =
          Validator.run ~jobs:4 ~source:Rulesets.source ~manifest:Rulesets.manifest frames
        in
        Alcotest.(check bool) "identical" true (full_signature seq = full_signature par));
  ]

let cache_cases =
  [
    Alcotest.test_case "cached and uncached normalization yield identical verdicts" `Quick
      (fun () ->
        let rules = loaded_rules () in
        let frames = multi_frame_deployment () in
        Normcache.set_enabled false;
        let uncached = Validator.run_loaded ~rules frames in
        Normcache.set_enabled true;
        Normcache.reset ();
        let cold = Validator.run_loaded ~rules frames in
        let warm = Validator.run_loaded ~rules frames in
        Normcache.set_enabled true;
        Alcotest.(check bool) "uncached = cold" true (full_signature uncached = full_signature cold);
        Alcotest.(check bool) "cold = warm" true (full_signature cold = full_signature warm));
    Alcotest.test_case "frames sharing content hit the cache" `Quick (fun () ->
        let rules = loaded_rules () in
        (* The fleet repeats the same container images: identical file
           content across frames must normalize once. *)
        let fleet = Scenarios.Deployment.container_fleet 8 in
        Normcache.set_enabled true;
        Normcache.reset ();
        ignore (Validator.run_loaded ~rules fleet);
        let cold = Normcache.stats () in
        Alcotest.(check bool) "shared content found" true (cold.Normcache.hits > 0);
        ignore (Validator.run_loaded ~rules fleet);
        let warm = Normcache.stats () in
        Alcotest.(check int) "steady state re-parses nothing" cold.Normcache.misses
          warm.Normcache.misses);
  ]

let suite =
  detection_cases @ composite_cases @ filter_cases @ report_cases @ parallel_cases @ cache_cases
