Chaos mode arms a seeded, reproducible fault plan before validating.
The run must complete degraded-but-total: every fired fault surfaces as
an attributed [ERR ] result, the report grows a run-health section, and
the exit code distinguishes infrastructure errors (3) from plain
violations (2).

A clean run of the compliant host fails only the cross-entity
composites and exits 2; a chaos run of the same target exits 3.

  $ configvalidator validate -t host-good >/dev/null
  [2]
  $ configvalidator validate -t host-good --chaos 42 >/dev/null
  [3]

Seed 42 injects three faults; two land on evaluation cells and are
attributed to exactly the (entity, rule, frame) they hit.

  $ configvalidator validate -t host-good --chaos 42 | grep 'ERR'
  [ERR ] openstack  host-good                    insecure_debug — insecure_debug: contained failure: injected:F002: evaluation fault for openstack/insecure_debug@host-good
  [ERR ] postgres   host-good                    shared_preload_libraries — shared_preload_libraries: contained failure: injected:F003: evaluation fault for postgres/shared_preload_libraries@host-good

The same run renders the degraded health section.

  $ configvalidator validate -t host-good --chaos 42 | tail -5
  run health: DEGRADED
    errors by stage: extract 0, normalize 0, evaluate 2
    retries 0 · breaker trips 0 · contained exceptions 2 · faults injected 3
    simulated backoff: 0 ms
  170 checks: 45 passed, 3 violations (0 missing), 120 n/a, 2 errors

Seed 6 also hits plugins: retries fire with simulated (not wall-clock)
backoff, and a persistently dead plugin opens its circuit breaker.

  $ configvalidator validate -t host-good --chaos 6 | tail -5
  run health: DEGRADED
    errors by stage: extract 3, normalize 0, evaluate 5
    retries 6 · breaker trips 1 · contained exceptions 5 · faults injected 14
    simulated backoff: 450 ms
  170 checks: 59 passed, 3 violations (0 missing), 100 n/a, 8 errors

Plans are pure functions of the seed — a repeat run is byte-identical.

  $ configvalidator validate -t host-good --chaos 6 > a.txt
  [3]
  $ configvalidator validate -t host-good --chaos 6 > b.txt
  [3]
  $ cmp a.txt b.txt

--retry 0 disables retrying: the dead plugin fails fast (no simulated
backoff), the breaker still opens, and the verdicts are unchanged.

  $ configvalidator validate -t host-good --chaos 6 --retry 0 | tail -5
  run health: DEGRADED
    errors by stage: extract 3, normalize 0, evaluate 5
    retries 0 · breaker trips 1 · contained exceptions 5 · faults injected 8
    simulated backoff: 0 ms
  170 checks: 59 passed, 3 violations (0 missing), 100 n/a, 8 errors

JSON output carries the same health record.

  $ configvalidator validate -t host-good --chaos 42 -f json | grep '"degraded"'
      "degraded": true,

JUnit output marks the suite degraded and types each error by stage.

  $ configvalidator validate -t host-good --chaos 42 -f junit | grep -c 'type="evaluate"'
  2
