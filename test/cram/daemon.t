The validated daemon loads, lints, compiles and fuses the ruleset once,
then serves validation jobs over a Unix domain socket. Start it in the
background against the embedded corpus; the client's --wait retries
until the socket answers.

  $ configvalidator export-frame -t host-bad -o frame.json
  wrote frame.json
  $ configvalidator validated --socket v.sock > server.log 2>&1 &
  $ configvalidator validated-client --socket v.sock --wait 10 ping
  pong

A validate streams one verdict per rule x frame cell — in the same
deterministic order as the one-shot CLI — then a summary trailer. The
exit code mirrors the one-shot CLI too: 2 for violations.

  $ configvalidator validated-client --socket v.sock validate --frame-file frame.json > first.out
  [2]
  $ tail -6 first.out
  [N/A ] postgres   host-bad                     /var/lib/postgresql/data — /var/lib/postgresql/data: entity not present in this frame
  [FAIL] stack      host-bad                     mysql ssl-ca path and sysctl and nginx SSL — Either mysql server ssl-ca does not have a cert, or ip_forward is enabled, or nginx has SSL disabled.
  [FAIL] stack      host-bad                     tls_everywhere — At least one tier serves traffic without modern TLS.
  [FAIL] stack      host-bad                     no_root_anywhere — A tier still runs as (or admits) root.
  170 checks: 40 passed, 25 violations (2 missing), 105 n/a, 0 errors
  engine fused, cache 0 hits / 6 misses

The second job over the same content is served warm: every normalized
document comes from the daemon's content-addressed cache.

  $ configvalidator validated-client --socket v.sock validate --frame-file frame.json | grep '^engine'
  engine fused, cache 6 hits / 0 misses

By default the client negotiates the v2 binary protocol at connect.
--protocol 1 pins the framed-JSON wire (what pre-handshake clients
speak); the rendered stream is byte-identical either way.

  $ configvalidator validated-client --socket v.sock --protocol 1 validate --frame-file frame.json > v1.out
  [2]
  $ configvalidator validated-client --socket v.sock --protocol 2 validate --frame-file frame.json > v2.out
  [2]
  $ cmp v1.out v2.out && echo "v1 and v2 render identically"
  v1 and v2 render identically

Fix one setting on disk and revalidate: the daemon diffs the frame
against its retained baseline and re-evaluates only the affected
entity (one fresh parse, everything else from cache).

  $ sed -i 's/PermitRootLogin yes/PermitRootLogin no/' frame.json
  $ configvalidator validated-client --socket v.sock revalidate --frame-file frame.json > reval.out
  [2]
  $ tail -3 reval.out
  170 checks: 41 passed, 24 violations (2 missing), 105 n/a, 0 errors
  engine fused, cache 5 hits / 1 misses
  revalidated: sshd

Watch mode follows the frame file. On a v2 connection the server
streams each change as an incremental delta against the connection's
baseline, and the client renders only the verdicts that actually
crossed the wire — here, the sshd rules the flipped setting touches —
with the splice savings on the event line.

  $ (sleep 1; sed -i 's/PermitRootLogin no/PermitRootLogin yes/' frame.json) &
  $ configvalidator validated-client --socket v.sock watch --frame-file frame.json --interval-ms 50 --max-events 1
  [FAIL] sshd       host-bad                     /etc/ssh/sshd_config — sshd_config is readable by non-root users.
  [FAIL] sshd       host-bad                     PermitRootLogin — PermitRootLogin is present but it is enabled.
  change: revalidated [sshd], 25 violations, 0 errors (delta: 2 fresh, 168 copied)
  watched 1 change(s)

--full restores the every-verdict render (and full streams on the
wire): the same change now reprints all 170 checks.

  $ (sleep 1; sed -i 's/PermitRootLogin yes/PermitRootLogin no/' frame.json) &
  $ configvalidator validated-client --socket v.sock watch --full --frame-file frame.json --interval-ms 50 --max-events 1 > watch_full.out
  $ grep '^change:' watch_full.out
  change: revalidated [sshd], 24 violations, 0 errors
  $ grep -c '^\[' watch_full.out
  170

A job may carry a wall-clock budget (--deadline-ms, or a server-wide
default). An exhausted budget answers an explicit error — counted as a
deadline miss, not a crash.

  $ configvalidator validated-client --socket v.sock validate --frame-file frame.json --deadline-ms 0
  deadline exceeded (admission): job budget exhausted
  [1]

The raw op speaks unframed bytes, which shows how the reader classifies
hostile input. A zero-length frame is well-framed garbage: the server
answers and keeps the connection. An unreasonable declared length or a
frame cut off mid-payload desynchronizes the stream, so the server
answers and hangs up.

  $ printf '0\n\n' | configvalidator validated-client --socket v.sock raw
  {"type":"error","message":"malformed request: offset 0: unexpected end of input"}
  $ printf '999999999\n' | configvalidator validated-client --socket v.sock raw
  {"type":"error","message":"protocol: unreasonable message length 999999999"}
  $ printf '12' | configvalidator validated-client --socket v.sock raw
  {"type":"error","message":"protocol: message truncated mid-payload"}

The daemon's counters are deterministic (timing percentiles hide
behind --verbose). Each CLI call above was one short-lived session, so
one session is live (this stats call) and the peak is one.

  $ configvalidator validated-client --socket v.sock stats
  requests: 21
  jobs: 9
  verdicts: 1362
  protocol-errors: 3
  contained: 0
  reloads: 0
  entities: 15
  rules: 170
  retained-frames: 1
  sessions: 1
  peak-sessions: 1
  shed: 0
  deadline-misses: 1
  idle-reaped: 0
  crashed: 0
  protocol-v1-connections: 4
  protocol-v2-connections: 9
  delta-streams: 1

Clean shutdown: the daemon answers, stops accepting, drains, closes the
socket, and its event log tells the whole story, one line per request.

  $ configvalidator validated-client --socket v.sock shutdown
  server stopped
  $ wait
  $ cat server.log
  validated: loaded 15 entities, 170 rules (lint findings: 97, pool jobs: 1)
  validated: listening on v.sock
  validated: hello: negotiated protocol v2
  validated: ping
  validated: hello: negotiated protocol v2
  validated: validate (0 inline, 1 files)
  validated: hello: negotiated protocol v2
  validated: validate (0 inline, 1 files)
  validated: validate (0 inline, 1 files)
  validated: hello: negotiated protocol v2
  validated: validate (0 inline, 1 files)
  validated: hello: negotiated protocol v2
  validated: revalidate
  validated: hello: negotiated protocol v2
  validated: validate (1 inline, 0 files)
  validated: revalidate
  validated: hello: negotiated protocol v2
  validated: validate (1 inline, 0 files)
  validated: revalidate
  validated: hello: negotiated protocol v2
  validated: validate (0 inline, 1 files)
  validated: protocol error (payload): offset 0: unexpected end of input
  validated: protocol error (desync): unreasonable message length 999999999
  validated: protocol error (desync): message truncated mid-payload
  validated: hello: negotiated protocol v2
  validated: stats
  validated: hello: negotiated protocol v2
  validated: shutdown
  validated: draining: accept loop stopped
  validated: drained: 9 job(s) served, 1362 verdict(s) streamed, 0 shed, 0 contained
  validated: stopped
  $ test -S v.sock || echo socket removed
  socket removed
