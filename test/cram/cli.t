The coverage table reproduces the paper's Table 1 census.

  $ configvalidator coverage | head -6
  Targets supported by ConfigValidator (paper Table 1):
  Applications     apache (12), nginx (12), hadoop (10), mysql (12)
  System services  audit (17), fstab (8), sshd (14), sysctl (14), modprobe (9)
  Cloud services   openstack (12), docker (15)
  
  11 target types, 135 rules in total

The keyword census matches the paper's 46 plus two resilience keywords
plus the eight fleet-scope (cluster) keywords.

  $ configvalidator keywords | head -1
  CVL defines 56 keywords:

Validating the misconfigured host reports the sshd findings and exits 2.

  $ configvalidator validate -t host-bad --only-violations | grep sshd
  [FAIL] sshd       host-bad                     /etc/ssh/sshd_config — sshd_config is readable by non-root users.
  [FAIL] sshd       host-bad                     X11Forwarding — X11Forwarding is enabled.
  [FAIL] sshd       host-bad                     PermitRootLogin — PermitRootLogin is present but it is enabled.
  [FAIL] sshd       host-bad                     Ciphers — A weak cipher (CBC/arcfour/3des) is enabled.
  [FAIL] sshd       host-bad                     LoginGraceTime — LoginGraceTime exceeds 60 seconds.
  [MISS] sshd       host-bad                     Banner — No warning banner is configured.

The compliant host has no per-entity violations; only the cross-entity
composites fail, because a lone host cannot satisfy rules that span the
nginx and mysql tiers.

  $ configvalidator validate -t host-good --only-violations
  [FAIL] stack      host-good                    mysql ssl-ca path and sysctl and nginx SSL — Either mysql server ssl-ca does not have a cert, or ip_forward is enabled, or nginx has SSL disabled.
  [FAIL] stack      host-good                    tls_everywhere — At least one tier serves traffic without modern TLS.
  [FAIL] stack      host-good                    no_root_anywhere — A tier still runs as (or admits) root.
  170 checks: 62 passed, 3 violations (0 missing), 105 n/a, 0 errors
  [2]

Tag filtering selects rule subsets.

  $ configvalidator validate -t host-bad --tag '#cisubuntu14.04_5.2.8' --only-violations
  [FAIL] sshd       host-bad                     PermitRootLogin — PermitRootLogin is present but it is enabled.
  1 checks: 0 passed, 1 violations (0 missing), 0 n/a, 0 errors
  [2]

Frames round-trip through export and --frame-file.

  $ configvalidator export-frame -t host-bad -o frame.json
  wrote frame.json
  $ configvalidator validate --frame-file frame.json --only-violations | grep -c FAIL
  23

Linting a clean CVL file reports nothing and exits 0.

  $ cat > rules.yaml <<'YAML'
  > rules:
  >   - config_name: PermitRootLogin
  >     preferred_value: ["no"]
  >     tags: ["#cis"]
  > YAML
  $ configvalidator lint rules.yaml
  0 errors, 0 warnings, 0 infos

Lint flags unknown keywords at their line, with a spelling suggestion.

  $ cat > bad.yaml <<'YAML'
  > rules:
  >   - config_name: x
  >     prefered_value: ["no"]
  >     tags: ["#cis"]
  > YAML
  $ configvalidator lint bad.yaml
  bad.yaml:3: error CVL010 [unknown-keyword]: unknown keyword "prefered_value"
      suggestion: did you mean "preferred_value"?
  1 error, 0 warnings, 0 infos
  [1]

Remediation fixes the docker daemon host completely.

  $ configvalidator remediate -t docker-host-bad | tail -2
    remaining: stack/tls_everywhere — At least one tier serves traffic without modern TLS.
    remaining: stack/no_root_anywhere — A tier still runs as (or admits) root.

The explain command reproduces Listing 6 for any of the 40 common checks.

  $ configvalidator explain cisubuntu14.04_9.3.8 | grep '\*\*\*'
  ******* OpenSCAP: XCCDF/OVAL [28 lines] *******
  ******* ConfigValidator: YAML [10 lines] *******
  ******* Chef Inspec: Ruby (Expected) [7 lines] *******
  ******* Chef Inspec: Ruby (Observed) [8 lines] *******
  ******* ConfValley: CPL [2 lines] *******

Rules can also be loaded from disk with --rules-dir.

  $ mkdir -p site/component_configs
  $ cat > site/manifest.yaml <<'YAML'
  > sshd:
  >   enabled: True
  >   config_search_paths:
  >     - /etc/ssh
  >   cvl_file: "component_configs/sshd.yaml"
  >   lens: sshd
  > YAML
  $ cat > site/component_configs/sshd.yaml <<'YAML'
  > rules:
  >   - config_name: PermitRootLogin
  >     config_path: [""]
  >     file_context: ["sshd_config"]
  >     preferred_value: ["no"]
  >     not_matched_preferred_value_description: "root login enabled"
  >     tags: ["#site"]
  > YAML
  $ configvalidator validate -t host-bad --rules-dir site --only-violations
  [FAIL] sshd       host-bad                     PermitRootLogin — root login enabled
  1 checks: 0 passed, 1 violations (0 missing), 0 n/a, 0 errors
  [2]

Parallel validation: -j shards the frame x entity grid across domains,
and the merged report is byte-identical for every job count.

  $ configvalidator validate --help=plain | grep -A 3 -- '-j N'
         -j N, --jobs=N (absent=1)
             Shard the frame x entity validation grid across N parallel domains
             (0 = one per core). Results are merged in a deterministic order,
             identical for every job count.

  $ configvalidator validate --help=plain | grep -A 2 -- '--no-cache'
         --no-cache
             Disable the content-addressed normalization cache (parse every
             file per frame).

  $ configvalidator validate -t three-tier-bad -j 1 > seq.out 2>&1; echo exit=$?
  exit=2
  $ configvalidator validate -t three-tier-bad -j 4 > par.out 2>&1; echo exit=$?
  exit=2
  $ configvalidator validate -t three-tier-bad -j 4 --no-cache > nocache.out 2>&1; echo exit=$?
  exit=2
  $ cmp seq.out par.out && cmp seq.out nocache.out && echo identical
  identical
