open Cvl

let rules () =
  Result.get_ok (Validator.load_rules ~source:Rulesets.source ~manifest:Rulesets.manifest)

let diff_cases =
  [
    Alcotest.test_case "identical frames diff empty" `Quick (fun () ->
        let f = Scenarios.Host.compliant () in
        Alcotest.(check bool) "empty" true (Frames.Diff.is_empty (Frames.Diff.between f f)));
    Alcotest.test_case "content change is reported once" `Quick (fun () ->
        let f = Scenarios.Host.compliant () in
        let f' = Frames.Frame.set_content f ~path:"/etc/sysctl.conf" "net.ipv4.ip_forward = 1\n" in
        let d = Frames.Diff.between f f' in
        Alcotest.(check (list string)) "paths" [ "/etc/sysctl.conf" ] (Frames.Diff.changed_paths d));
    Alcotest.test_case "metadata change distinguished from content" `Quick (fun () ->
        let f = Scenarios.Host.compliant () in
        let f' = Frames.Frame.chmod f ~path:"/etc/ssh/sshd_config" 0o644 in
        match (Frames.Diff.between f f').Frames.Diff.file_changes with
        | [ Frames.Diff.Metadata_changed _ ] -> ()
        | other -> Alcotest.failf "expected one metadata change, got %d" (List.length other));
    Alcotest.test_case "add and remove" `Quick (fun () ->
        let f = Scenarios.Host.compliant () in
        let f' = Frames.Frame.add_file f (Frames.File.make ~content:"x" "/etc/new.conf") in
        let f' = Frames.Frame.remove_file f' "/etc/hosts" in
        let d = Frames.Diff.between f f' in
        let kinds =
          List.map
            (function
              | Frames.Diff.Added _ -> "add"
              | Frames.Diff.Removed _ -> "rm"
              | Frames.Diff.Content_changed _ -> "content"
              | Frames.Diff.Metadata_changed _ -> "meta")
            d.Frames.Diff.file_changes
        in
        Alcotest.(check (list string)) "kinds" [ "rm"; "add" ] kinds);
    Alcotest.test_case "kernel and runtime-doc changes" `Quick (fun () ->
        let f = Scenarios.Host.compliant () in
        let f' = Frames.Frame.set_kernel_param f "kernel.randomize_va_space" "0" in
        let f' = Frames.Frame.set_runtime_doc f' ~key:"mysql_variables" "have_ssl = NO\n" in
        let d = Frames.Diff.between f f' in
        Alcotest.(check int) "kernel" 1 (List.length d.Frames.Diff.kernel_changes);
        Alcotest.(check (list string)) "runtime" [ "mysql_variables" ] d.Frames.Diff.runtime_doc_changes);
  ]

let incremental_cases =
  [
    Alcotest.test_case "a file change affects only its entity" `Quick (fun () ->
        let f = Scenarios.Host.compliant () in
        let f' = Frames.Frame.set_content f ~path:"/etc/sysctl.conf" "net.ipv4.ip_forward = 1\n" in
        let affected = Incremental.affected_entities ~rules:(rules ()) (Frames.Diff.between f f') in
        Alcotest.(check (list string)) "affected" [ "sysctl" ] affected);
    Alcotest.test_case "a kernel change affects script-rule entities" `Quick (fun () ->
        let f = Scenarios.Host.compliant () in
        let f' = Frames.Frame.set_kernel_param f "kernel.randomize_va_space" "0" in
        let affected = Incremental.affected_entities ~rules:(rules ()) (Frames.Diff.between f f') in
        Alcotest.(check bool) "sysctl affected" true (List.mem "sysctl" affected);
        Alcotest.(check bool) "sshd untouched" false (List.mem "sshd" affected));
    Alcotest.test_case "revalidation matches a full run" `Quick (fun () ->
        let f = Scenarios.Host.compliant () in
        let rules = rules () in
        let previous = (Validator.run_loaded ~rules [ f ]).Validator.results in
        (* Break sshd. *)
        let f' =
          Frames.Frame.set_content f ~path:"/etc/ssh/sshd_config"
            (Scenarios.Host.good_sshd_config ^ "PermitRootLogin yes\n")
        in
        let incremental, reeval =
          Incremental.revalidate ~rules ~previous ~diff:(Frames.Diff.between f f') f'
        in
        Alcotest.(check (list string)) "only sshd re-evaluated" [ "sshd" ] reeval;
        let full = (Validator.run_loaded ~rules [ f' ]).Validator.results in
        let key (r : Engine.result) =
          (r.Engine.entity, Rule.name r.Engine.rule, Engine.verdict_to_string r.Engine.verdict)
        in
        Alcotest.(check (list (triple string string string)))
          "same verdicts as a full run"
          (List.sort compare (List.map key full))
          (List.sort compare (List.map key incremental)));
    Alcotest.test_case "empty diff short-circuits to the previous results" `Quick (fun () ->
        let f = Scenarios.Host.compliant () in
        let rules = rules () in
        let previous = (Validator.run_loaded ~rules [ f ]).Validator.results in
        let merged, reeval =
          Incremental.revalidate ~rules ~previous ~diff:(Frames.Diff.between f f) f
        in
        Alcotest.(check (list string)) "nothing re-evaluated" [] reeval;
        (* Not just equal: the very same list, no rebuild happened. *)
        Alcotest.(check bool) "previous returned physically" true (merged == previous));
    Alcotest.test_case "a diff on a file no rule queries affects nothing" `Quick (fun () ->
        let f = Scenarios.Host.compliant () in
        let rules = rules () in
        let f' = Frames.Frame.add_file f (Frames.File.make ~content:"x=1\n" "/etc/unqueried.conf") in
        let diff = Frames.Diff.between f f' in
        Alcotest.(check bool) "the diff itself is real" false (Frames.Diff.is_empty diff);
        Alcotest.(check (list string)) "no entity affected" []
          (Incremental.affected_entities ~rules diff);
        let previous = (Validator.run_loaded ~rules [ f ]).Validator.results in
        let merged, reeval = Incremental.revalidate ~rules ~previous ~diff f' in
        Alcotest.(check (list string)) "nothing re-evaluated" [] reeval;
        Alcotest.(check bool) "previous returned physically" true (merged == previous));
    Alcotest.test_case "no change revalidates nothing" `Quick (fun () ->
        let f = Scenarios.Host.compliant () in
        let rules = rules () in
        let previous = (Validator.run_loaded ~rules [ f ]).Validator.results in
        let merged, reeval =
          Incremental.revalidate ~rules ~previous ~diff:(Frames.Diff.between f f) f
        in
        Alcotest.(check (list string)) "nothing re-evaluated" [] reeval;
        Alcotest.(check int) "same result count" (List.length previous) (List.length merged));
  ]

let cache_counter_cases =
  [
    Alcotest.test_case "a no-op diff rebuilds no context at all" `Quick (fun () ->
        let f = Scenarios.Host.compliant () in
        let rules = rules () in
        Normcache.set_enabled true;
        Normcache.reset ();
        let previous = (Validator.run_loaded ~rules [ f ]).Validator.results in
        let before = Normcache.stats () in
        let merged, reeval =
          Incremental.revalidate ~rules ~previous ~diff:(Frames.Diff.between f f) f
        in
        let after = Normcache.stats () in
        Alcotest.(check (list string)) "nothing re-evaluated" [] reeval;
        Alcotest.(check int) "no parse attempted (hits)" before.Normcache.hits after.Normcache.hits;
        Alcotest.(check int) "no parse attempted (misses)" before.Normcache.misses
          after.Normcache.misses;
        Alcotest.(check int) "previous returned as-is" (List.length previous) (List.length merged));
    Alcotest.test_case "unaffected entities are not re-parsed after a real diff" `Quick (fun () ->
        let f = Scenarios.Host.compliant () in
        let rules = rules () in
        Normcache.set_enabled true;
        Normcache.reset ();
        let previous = (Validator.run_loaded ~rules [ f ]).Validator.results in
        let before = Normcache.stats () in
        let f' = Frames.Frame.set_content f ~path:"/etc/sysctl.conf" "net.ipv4.ip_forward = 1\n" in
        let merged, reeval =
          Incremental.revalidate ~rules ~previous ~diff:(Frames.Diff.between f f') f'
        in
        let after = Normcache.stats () in
        Alcotest.(check (list string)) "only sysctl re-evaluated" [ "sysctl" ] reeval;
        (* The one edited file is the only new content in the frame:
           everything else — including the contexts rebuilt for
           composite lookups — must come from the cache. *)
        Alcotest.(check int) "exactly one fresh parse" (before.Normcache.misses + 1)
          after.Normcache.misses;
        Alcotest.(check bool) "unaffected contexts served by cache" true
          (after.Normcache.hits > before.Normcache.hits);
        (* And the merged outcome still equals a full run. *)
        let full = (Validator.run_loaded ~rules [ f' ]).Validator.results in
        let key (r : Engine.result) =
          (r.Engine.entity, Rule.name r.Engine.rule, Engine.verdict_to_string r.Engine.verdict)
        in
        Alcotest.(check (list (triple string string string)))
          "equals full run"
          (List.sort compare (List.map key full))
          (List.sort compare (List.map key merged)));
    Alcotest.test_case "an edit invalidates exactly its cache entry; a revert re-hits" `Quick
      (fun () ->
        let f = Scenarios.Host.compliant () in
        let rules = rules () in
        Normcache.set_enabled true;
        Normcache.reset ();
        let previous = (Validator.run_loaded ~rules [ f ]).Validator.results in
        (* Edit: the new content is absent from the cache, so the
           affected entity pays exactly one miss. *)
        let f' = Frames.Frame.set_content f ~path:"/etc/sysctl.conf" "net.ipv4.ip_forward = 1\n" in
        let before = Normcache.stats () in
        let merged, _ =
          Incremental.revalidate ~rules ~previous ~diff:(Frames.Diff.between f f') f'
        in
        let mid = Normcache.stats () in
        Alcotest.(check int) "edit misses once" (before.Normcache.misses + 1) mid.Normcache.misses;
        (* Revert: the original bytes are still cached from the first
           run, so revalidating back costs zero fresh parses. *)
        let merged', reeval =
          Incremental.revalidate ~rules ~previous:merged ~diff:(Frames.Diff.between f' f) f
        in
        let after = Normcache.stats () in
        Alcotest.(check (list string)) "revert re-evaluates sysctl" [ "sysctl" ] reeval;
        Alcotest.(check int) "revert misses nothing" mid.Normcache.misses after.Normcache.misses;
        let key (r : Engine.result) =
          (r.Engine.entity, Rule.name r.Engine.rule, Engine.verdict_to_string r.Engine.verdict)
        in
        Alcotest.(check (list (triple string string string)))
          "revert restores the original verdicts"
          (List.sort compare (List.map key previous))
          (List.sort compare (List.map key merged')));
    Alcotest.test_case "revalidate with a pool matches sequential revalidate" `Quick (fun () ->
        let f = Scenarios.Host.compliant () in
        let rules = rules () in
        let previous = (Validator.run_loaded ~rules [ f ]).Validator.results in
        let f' =
          Frames.Frame.set_content f ~path:"/etc/ssh/sshd_config"
            (Scenarios.Host.good_sshd_config ^ "PermitRootLogin yes\n")
        in
        let diff = Frames.Diff.between f f' in
        let seq, _ = Incremental.revalidate ~rules ~previous ~diff f' in
        let par, _ =
          Pool.with_pool ~jobs:4 (fun pool -> Incremental.revalidate ~pool ~rules ~previous ~diff f')
        in
        let sig_of rs =
          List.map
            (fun (r : Engine.result) ->
              ( r.Engine.entity,
                Rule.name r.Engine.rule,
                Engine.verdict_to_string r.Engine.verdict,
                r.Engine.detail ))
            rs
        in
        Alcotest.(check bool) "identical merged results" true (sig_of seq = sig_of par));
  ]

let suite = diff_cases @ incremental_cases @ cache_counter_cases
