(* The ahead-of-time rule compiler and the fused whole-ruleset engine:
   compiled programs and the fused shared-walk plan must both be
   observationally identical to the interpreter — same verdicts, same
   details and evidence, same order — at every job count, under tag
   selection, and under an armed fault plan. Compile-time diagnostics
   surface malformed path literals that the interpreter silently
   swallows, without changing the run's results. *)

open Cvl

let corpus_rules =
  Result.get_ok (Validator.load_rules ~source:Rulesets.source ~manifest:Rulesets.manifest)

let frames () =
  Scenarios.Deployment.three_tier ~compliant:false
  @ Scenarios.Deployment.three_tier ~compliant:true

let row (r : Engine.result) =
  ( r.Engine.entity,
    r.Engine.frame_id,
    Rule.name r.Engine.rule,
    Engine.verdict_to_string r.Engine.verdict,
    r.Engine.detail,
    r.Engine.evidence )

let rows (t : Validator.t) = List.map row t.Validator.results

let run_engines ?tags ?keep_not_applicable ?jobs rules fs =
  let one engine =
    Normcache.reset ();
    Validator.run_loaded ?tags ?keep_not_applicable ?jobs ~engine ~rules fs
  in
  (one `Interpreted, one `Compiled, one `Fused)

let check_identical name ?tags ?keep_not_applicable ?jobs rules fs =
  Alcotest.test_case name `Quick (fun () ->
      let interp, compiled, fused = run_engines ?tags ?keep_not_applicable ?jobs rules fs in
      Alcotest.(check bool) "some results" true (rows interp <> []);
      Alcotest.(check bool) "compiled rows identical" true (rows interp = rows compiled);
      Alcotest.(check bool) "fused rows identical" true (rows interp = rows fused))

let differential_cases =
  [
    check_identical "corpus identical at jobs=1" ~jobs:1 corpus_rules (frames ());
    check_identical "corpus identical at jobs=4" ~jobs:4 corpus_rules (frames ());
    check_identical "corpus identical with not-applicable kept" ~keep_not_applicable:true
      ~jobs:2 corpus_rules (frames ());
    check_identical "corpus identical under tag selection" ~tags:[ "#security" ] ~jobs:2
      corpus_rules (frames ());
    Alcotest.test_case "run_compiled matches run_loaded" `Quick (fun () ->
        let fs = frames () in
        Normcache.reset ();
        let via_loaded = Validator.run_loaded ~rules:corpus_rules fs in
        let compiled = Validator.compile corpus_rules in
        Normcache.reset ();
        let direct = Validator.run_compiled ~compiled fs in
        Alcotest.(check bool) "identical rows" true (rows via_loaded = rows direct));
    Alcotest.test_case "run_fused matches run_compiled" `Quick (fun () ->
        let fs = frames () in
        let compiled = Validator.compile corpus_rules in
        Normcache.reset ();
        let direct = Validator.run_compiled ~compiled fs in
        let fused = Validator.compile corpus_rules |> Fuse.fuse in
        Normcache.reset ();
        let via_fused = Validator.run_fused ~fused fs in
        Alcotest.(check bool) "identical rows" true (rows direct = rows via_fused);
        Alcotest.(check bool) "fused carries compile diagnostics" true
          (via_fused.Validator.compile_diagnostics = direct.Validator.compile_diagnostics));
    Alcotest.test_case "corpus compiles without diagnostics" `Quick (fun () ->
        let compiled = Validator.compile corpus_rules in
        Alcotest.(check int) "diagnostics" 0 (List.length compiled.Compile.diagnostics));
  ]

(* Chaos differential: under the same armed fault plan all three
   engines fire the same faults (the plan keys on entity/rule/frame,
   not on evaluation strategy) and contain them identically — including
   the fused engine's shared plugin execution, whose retry/breaker
   bookkeeping is replayed per rule. Re-armed before each run because
   fault firing is stateful (fail-the-first-k). *)
let chaos_cases =
  List.map
    (fun seed ->
      Alcotest.test_case (Printf.sprintf "chaos differential, seed %d" seed) `Quick (fun () ->
          let fs = frames () in
          let plan = Faultsim.sample ~seed ~rules:corpus_rules fs in
          let run engine =
            Faultsim.arm plan;
            Fun.protect ~finally:Faultsim.disarm (fun () ->
                Normcache.reset ();
                Validator.run_loaded ~keep_not_applicable:true ~engine ~rules:corpus_rules fs)
          in
          let interp = run `Interpreted
          and compiled = run `Compiled
          and fused = run `Fused in
          Alcotest.(check bool) "compiled rows identical under faults" true
            (rows interp = rows compiled);
          Alcotest.(check bool) "fused rows identical under faults" true
            (rows interp = rows fused);
          Alcotest.(check bool) "compiled health identical" true
            (interp.Validator.health = compiled.Validator.health);
          Alcotest.(check bool) "fused health identical" true
            (interp.Validator.health = fused.Validator.health)))
    [ 1; 2; 3 ]

(* Matcher.compile law: the lowered closure equals satisfies on every
   input, across kinds, scopes, and case folding. *)
let matcher_gen =
  QCheck.Gen.(
    pair
      (list_size (int_range 0 4) (string_size ~gen:(char_range 'a' 'd') (int_range 0 4)))
      (string_size ~gen:(char_range 'a' 'd') (int_range 0 8)))

let matcher_compile_prop =
  QCheck.Test.make ~count:500 ~name:"Matcher.compile equals Matcher.satisfies"
    (QCheck.make
       ~print:(fun (vs, c) -> Printf.sprintf "[%s] / %s" (String.concat ";" vs) c)
       matcher_gen)
    (fun (rule_values, config_value) ->
      List.for_all
        (fun kind ->
          List.for_all
            (fun scope ->
              List.for_all
                (fun ci ->
                  let t = { Matcher.kind; scope } in
                  Matcher.compile ~case_insensitive:ci t ~rule_values config_value
                  = Matcher.satisfies ~case_insensitive:ci t ~rule_values ~config_value)
                [ false; true ])
            [ Matcher.Any; Matcher.All ])
        [ Matcher.Exact; Matcher.Substr ])

(* Malformed path literals: the compiler reports them as diagnostics;
   the run's results stay identical to the interpreter, which silently
   matched nothing. *)
let bad_path_source =
  {
    Loader.load =
      (fun name ->
        if String.equal name "bad.yaml" then
          Ok
            "rules:\n\
            \  - config_name: PermitRootLogin\n\
            \    config_path: [\"Match[abc]\"]\n\
            \    preferred_value: [\"no\"]\n\
            \    tags: [\"#ssh\"]\n\
            \  - config_name: Protocol\n\
            \    preferred_value: [\"2\"]\n\
            \    tags: [\"#ssh\"]\n"
        else Error (Printf.sprintf "no such file %S" name));
  }

let bad_path_manifest =
  [
    {
      Manifest.entity = "ssh";
      enabled = true;
      search_paths = [ "/etc/ssh" ];
      cvl_file = "bad.yaml";
      lens = Some "sshd";
      rule_type = None;
      flaky_plugins = [];
    };
  ]

let diagnostic_cases =
  [
    Alcotest.test_case "malformed config_path becomes a compile diagnostic" `Quick (fun () ->
        let rules =
          Result.get_ok (Validator.load_rules ~source:bad_path_source ~manifest:bad_path_manifest)
        in
        let compiled = Validator.compile rules in
        match compiled.Compile.diagnostics with
        | [ d ] ->
          Alcotest.(check string) "entity" "ssh" d.Compile.entity;
          Alcotest.(check string) "rule" "PermitRootLogin" d.Compile.rule;
          Alcotest.(check string) "field" "config_path" d.Compile.field;
          Alcotest.(check bool) "literal named" true
            (String.equal d.Compile.literal "Match[abc]")
        | ds -> Alcotest.failf "expected exactly one diagnostic, got %d" (List.length ds));
    Alcotest.test_case "diagnosed rule still runs identically" `Quick (fun () ->
        let rules =
          Result.get_ok (Validator.load_rules ~source:bad_path_source ~manifest:bad_path_manifest)
        in
        let fs = [ Scenarios.Host.misconfigured () ] in
        let interp, compiled, fused = run_engines ~keep_not_applicable:true rules fs in
        Alcotest.(check bool) "identical rows" true (rows interp = rows compiled);
        Alcotest.(check bool) "fused rows identical" true (rows interp = rows fused);
        Alcotest.(check int) "diagnostics surfaced on the run" 1
          (List.length compiled.Validator.compile_diagnostics);
        Alcotest.(check int) "diagnostics surfaced on the fused run" 1
          (List.length fused.Validator.compile_diagnostics);
        Alcotest.(check int) "interpreter reports none" 0
          (List.length interp.Validator.compile_diagnostics));
    Alcotest.test_case "diagnostic_to_string carries the literal" `Quick (fun () ->
        match Compile.check_path_literal "a//b" with
        | Ok _ -> Alcotest.fail "expected a parse error"
        | Error _ -> ());
  ]

(* Tag dispatch on the compiled form: select returns exactly the
   programs whose rules carry a requested tag, in original order. *)
let select_cases =
  [
    Alcotest.test_case "select filters by tag preserving order" `Quick (fun () ->
        let compiled = Validator.compile corpus_rules in
        List.iter
          (fun ep ->
            let all, _ = Compile.select ~tags:[] ep in
            Alcotest.(check int) "empty tags select everything"
              (List.length ep.Compile.programs)
              (List.length all);
            let picked, _ = Compile.select ~tags:[ "#security" ] ep in
            let expected =
              List.filter
                (fun (p : Compile.program) ->
                  List.mem "#security" (Rule.tags p.Compile.rule))
                ep.Compile.programs
            in
            Alcotest.(check (list int)) "ordinals match a plain filter"
              (List.map (fun (p : Compile.program) -> p.Compile.ordinal) expected)
              (List.map (fun (p : Compile.program) -> p.Compile.ordinal) picked))
          compiled.Compile.entities);
  ]

let suite =
  differential_cases @ chaos_cases @ diagnostic_cases @ select_cases
  @ [ QCheck_alcotest.to_alcotest matcher_compile_prop ]
