(* The resilient runtime under injected faults: retry/backoff semantics,
   the per-run circuit breaker, exception containment, Normcache's
   refusal to memoize transient parse failures, and the headline chaos
   invariant — under any fault plan the run completes, every fired
   fault is attributed to exactly one result, and the non-faulted
   results are byte-identical to a clean run. *)

open Cvl

let rules =
  Result.get_ok (Validator.load_rules ~source:Rulesets.source ~manifest:Rulesets.manifest)

let frames () = Scenarios.Deployment.three_tier ~compliant:false

let contains_sub s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let is_composite (r : Engine.result) =
  match r.Engine.rule with Rule.Composite _ -> true | _ -> false

let key (r : Engine.result) = (r.Engine.entity, Rule.name r.Engine.rule, r.Engine.frame_id)

let row (r : Engine.result) =
  (key r, Engine.verdict_to_string r.Engine.verdict, r.Engine.detail, r.Engine.evidence)

let holds_fault id (r : Engine.result) =
  let tag = "injected:" ^ id ^ ":" in
  contains_sub r.Engine.detail tag
  ||
  match r.Engine.verdict with
  | Engine.Engine_error { message; _ } -> contains_sub message tag
  | _ -> false

let holds_any_fault (r : Engine.result) =
  contains_sub r.Engine.detail "injected:"
  ||
  match r.Engine.verdict with
  | Engine.Engine_error { message; _ } -> contains_sub message "injected:"
  | _ -> false

let with_plan plan f =
  Faultsim.arm plan;
  Fun.protect ~finally:Faultsim.disarm f

let mysql_plugin () = Option.get (Crawler.find_plugin "mysql_variables")

let script_rule ?on_plugin_failure () =
  Rule.Script
    {
      Rule.script_common = Rule.common "have_ssl";
      plugin = "mysql_variables";
      script_config_paths = [ "have_ssl" ];
      script_preferred = Some { Rule.values = [ "YES" ]; match_spec = Matcher.default };
      script_non_preferred = None;
      script_not_present_pass = false;
      on_plugin_failure;
    }

(* ------------------------------------------------------------------ *)
(* The chaos invariant (acceptance criterion)                          *)
(* ------------------------------------------------------------------ *)

let chaos_invariant =
  Alcotest.test_case "chaos invariant: completion, attribution, byte-identity" `Slow (fun () ->
      let frames = frames () in
      let clean = Validator.run_loaded ~keep_not_applicable:true ~rules frames in
      Alcotest.(check bool) "clean run is healthy" false clean.Validator.health.Resilience.degraded;
      let clean_rows =
        List.filter (fun r -> not (is_composite r)) clean.Validator.results |> List.map row
      in
      List.iter
        (fun seed ->
          let plan = Faultsim.sample_eval ~seed ~rules frames in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d draws a non-empty plan" seed)
            true
            (plan.Faultsim.faults <> []);
          let runs =
            List.map
              (fun jobs ->
                let t =
                  with_plan plan (fun () ->
                      Validator.run_loaded ~jobs ~keep_not_applicable:true ~rules frames)
                in
                let trig = Faultsim.triggered () in
                (jobs, t, trig))
              [ 1; 4 ]
          in
          List.iter
            (fun (jobs, t, trig) ->
              let label fmt = Printf.ksprintf Fun.id fmt in
              Alcotest.(check bool)
                (label "seed %d -j%d: faults fired" seed jobs)
                true (trig <> []);
              Alcotest.(check bool)
                (label "seed %d -j%d: run degraded" seed jobs)
                true t.Validator.health.Resilience.degraded;
              (* Every fired fault is attributed to exactly one result. *)
              List.iter
                (fun id ->
                  let holders = List.filter (holds_fault id) t.Validator.results in
                  Alcotest.(check int)
                    (label "seed %d -j%d: fault %s attributed exactly once" seed jobs id)
                    1 (List.length holders))
                trig;
              (* An eval-only plan surfaces every fault as an evaluate-stage
                 error, and nothing else errors. *)
              Alcotest.(check int)
                (label "seed %d -j%d: evaluate errors = fired faults" seed jobs)
                (List.length trig)
                t.Validator.health.Resilience.evaluate_errors;
              Alcotest.(check int)
                (label "seed %d -j%d: no extract errors" seed jobs)
                0 t.Validator.health.Resilience.extract_errors;
              (* Non-faulted results are byte-identical to the clean run. *)
              let chaos_rows =
                List.filter (fun r -> not (is_composite r)) t.Validator.results
                |> List.filter_map (fun r -> if holds_any_fault r then None else Some (row r))
              in
              let chaos_tbl = Hashtbl.create 512 in
              List.iter
                (fun ((k, _, _, _) as rw) -> Hashtbl.replace chaos_tbl k rw)
                chaos_rows;
              List.iter
                (fun ((k, _, _, _) as clean_row) ->
                  match Hashtbl.find_opt chaos_tbl k with
                  | None -> () (* the faulted cell, excluded above *)
                  | Some chaos_row ->
                    if chaos_row <> clean_row then
                      let e, rn, f = k in
                      Alcotest.failf
                        "seed %d -j%d: non-faulted result drifted for %s/%s@%s" seed jobs e rn
                        f)
                clean_rows;
              Alcotest.(check int)
                (label "seed %d -j%d: grid size unchanged" seed jobs)
                (List.length clean_rows)
                (chaos_rows |> List.length |> ( + ) (List.length trig)))
            runs;
          (* Eval-only plans are order-independent: -j1 and -j4 agree byte
             for byte. *)
          match runs with
          | [ (_, t1, trig1); (_, t4, trig4) ] ->
            Alcotest.(check (list string))
              (Printf.sprintf "seed %d: same faults fire at -j1 and -j4" seed)
              trig1 trig4;
            Alcotest.(check bool)
              (Printf.sprintf "seed %d: identical results at -j1 and -j4" seed)
              true
              (List.map row t1.Validator.results = List.map row t4.Validator.results)
          | _ -> assert false)
        [ 7; 11; 42 ])

let mixed_plan_completes =
  Alcotest.test_case "mixed-kind plans always complete and stay deterministic" `Slow (fun () ->
      let frames = frames () in
      List.iter
        (fun seed ->
          let plan = Faultsim.sample ~seed ~rules frames in
          let run () =
            with_plan plan (fun () ->
                let t = Validator.run_loaded ~jobs:1 ~keep_not_applicable:true ~rules frames in
                (List.map row t.Validator.results, t.Validator.health, Faultsim.triggered ()))
          in
          let rows1, health1, trig1 = run () in
          let rows2, _, trig2 = run () in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: degraded" seed)
            true health1.Resilience.degraded;
          Alcotest.(check bool) (Printf.sprintf "seed %d: faults fired" seed) true (trig1 <> []);
          Alcotest.(check (list string)) (Printf.sprintf "seed %d: same faults" seed) trig1 trig2;
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: repeat run identical" seed)
            true (rows1 = rows2))
        [ 1; 2; 3 ])

(* ------------------------------------------------------------------ *)
(* Retry, backoff, breaker                                             *)
(* ------------------------------------------------------------------ *)

let transient_plan ~failures =
  {
    Faultsim.seed = 0;
    faults =
      [ { Faultsim.id = "F000"; kind = Faultsim.Transient_plugin { plugin = "mysql_variables"; failures } } ];
  }

let dead_plan =
  {
    Faultsim.seed = 0;
    faults = [ { Faultsim.id = "F000"; kind = Faultsim.Dead_plugin { plugin = "mysql_variables" } } ];
  }

let retry_cases =
  [
    Alcotest.test_case "transient plugin fault is recovered by retry" `Quick (fun () ->
        Resilience.begin_run ();
        let fr = Scenarios.Webstack.mysql_container_frame ~compliant:true in
        let before = Resilience.counters () in
        let r = with_plan (transient_plan ~failures:2) (fun () ->
            Resilience.run_plugin ~frame:fr (mysql_plugin ())) in
        Alcotest.(check bool) "recovered" true (Result.is_ok r);
        let d = Resilience.diff_counters ~before ~after:(Resilience.counters ()) in
        Alcotest.(check int) "two retries" 2 d.Resilience.retries;
        Alcotest.(check int) "backoff doubles: 50 + 100 ms" 150 d.Resilience.simulated_ms;
        Alcotest.(check int) "no breaker trip" 0 d.Resilience.breaker_trips;
        Alcotest.(check bool) "breaker closed" false (Resilience.breaker_open "mysql_variables"));
    Alcotest.test_case "recovered retries do not degrade the run" `Quick (fun () ->
        let frames = frames () in
        let clean = Validator.run_loaded ~keep_not_applicable:true ~rules frames in
        let t = with_plan (transient_plan ~failures:2) (fun () ->
            Validator.run_loaded ~keep_not_applicable:true ~rules frames) in
        Alcotest.(check bool) "not degraded" false t.Validator.health.Resilience.degraded;
        Alcotest.(check bool) "retries happened" true (t.Validator.health.Resilience.retries > 0);
        Alcotest.(check bool) "verdicts identical to clean run" true
          (List.map row t.Validator.results = List.map row clean.Validator.results));
    Alcotest.test_case "dead plugin exhausts retries, then the breaker opens" `Quick (fun () ->
        Resilience.begin_run ();
        let fr = Scenarios.Webstack.mysql_container_frame ~compliant:true in
        let plugin = mysql_plugin () in
        let before = Resilience.counters () in
        with_plan dead_plan (fun () ->
            let threshold = (Resilience.policy ()).Resilience.breaker_threshold in
            for i = 1 to threshold do
              (match Resilience.run_plugin ~frame:fr plugin with
              | Error (Resilience.Faulted { stage = Resilience.Extract; _ }) -> ()
              | _ -> Alcotest.failf "attempt %d: expected an extract-stage fault" i);
              Alcotest.(check bool)
                (Printf.sprintf "breaker after failure %d/%d" i threshold)
                (i >= threshold)
                (Resilience.breaker_open "mysql_variables")
            done;
            (* Open breaker short-circuits: no further attempts, no retries. *)
            let mid = Resilience.counters () in
            (match Resilience.run_plugin ~frame:fr plugin with
            | Error (Resilience.Faulted { message; _ }) ->
              Alcotest.(check bool) "short-circuit names the breaker" true
                (contains_sub message "circuit breaker open")
            | _ -> Alcotest.fail "expected a breaker short-circuit");
            let d = Resilience.diff_counters ~before:mid ~after:(Resilience.counters ()) in
            Alcotest.(check int) "no retry behind an open breaker" 0 d.Resilience.retries);
        let d = Resilience.diff_counters ~before ~after:(Resilience.counters ()) in
        Alcotest.(check int) "one trip" 1 d.Resilience.breaker_trips;
        Alcotest.(check int) "retries = threshold * policy.retries"
          ((Resilience.policy ()).Resilience.breaker_threshold * (Resilience.policy ()).Resilience.retries)
          d.Resilience.retries;
        Resilience.begin_run ();
        Alcotest.(check bool) "begin_run resets the breaker" false
          (Resilience.breaker_open "mysql_variables"));
    Alcotest.test_case "plugin's own soft failure: no retry, no breaker" `Quick (fun () ->
        Resilience.begin_run ();
        let host = Frames.Frame.create ~id:"empty" Frames.Frame.Host in
        let before = Resilience.counters () in
        (match Resilience.run_plugin ~frame:host (mysql_plugin ()) with
        | Error (Resilience.Soft _) -> ()
        | _ -> Alcotest.fail "expected a soft failure");
        let d = Resilience.diff_counters ~before ~after:(Resilience.counters ()) in
        Alcotest.(check int) "no retries" 0 d.Resilience.retries;
        Alcotest.(check int) "no simulated backoff" 0 d.Resilience.simulated_ms;
        Alcotest.(check bool) "breaker closed" false (Resilience.breaker_open "mysql_variables"));
  ]

let fallback_cases =
  [
    Alcotest.test_case "dead plugin without fallback is an extract error" `Quick (fun () ->
        Resilience.begin_run ();
        let fr = Scenarios.Webstack.mysql_container_frame ~compliant:true in
        let ctx = Engine.ctx_of_documents ~entity:"mysql" fr [] in
        let r = with_plan dead_plan (fun () -> Engine.eval_rule ctx (script_rule ())) in
        match r.Engine.verdict with
        | Engine.Engine_error { stage = Resilience.Extract; message } ->
          Alcotest.(check bool) "names the fault" true (contains_sub message "injected:F000:")
        | v -> Alcotest.failf "expected extract error, got %s" (Engine.verdict_to_string v));
    Alcotest.test_case "on_plugin_failure: degrade turns the fault into n/a" `Quick (fun () ->
        Resilience.begin_run ();
        let fr = Scenarios.Webstack.mysql_container_frame ~compliant:true in
        let ctx = Engine.ctx_of_documents ~entity:"mysql" fr [] in
        let r =
          with_plan dead_plan (fun () ->
              Engine.eval_rule ctx (script_rule ~on_plugin_failure:"degrade" ()))
        in
        Alcotest.(check string) "verdict" "not-applicable"
          (Engine.verdict_to_string r.Engine.verdict);
        Alcotest.(check bool) "detail says degraded" true (contains_sub r.Engine.detail "degraded"));
  ]

(* ------------------------------------------------------------------ *)
(* Normcache: transient parse failures are never memoized              *)
(* ------------------------------------------------------------------ *)

let normcache_cases =
  [
    Alcotest.test_case "a transient parse failure is not cached" `Quick (fun () ->
        Normcache.reset ();
        let calls = ref 0 in
        Normcache.set_parse_hook
          (Some
             (fun ~lens_name:_ ~path:_ _content ->
               incr calls;
               if !calls = 1 then Some (Error "transient: half-written file") else None));
        Fun.protect
          ~finally:(fun () ->
            Normcache.set_parse_hook None;
            Normcache.reset ())
          (fun () ->
            let parse () = Normcache.parse ~path:"/etc/app/config.json" "{\"a\": 1}\n" in
            Alcotest.(check bool) "first parse fails" true (Result.is_error (parse ()));
            let s = Normcache.stats () in
            Alcotest.(check int) "failure observed, not stored" 1 s.Normcache.errors_cached;
            Alcotest.(check int) "no hit for the failure" 0 s.Normcache.hits;
            (* Same (path, content, lens): the input "recovered", so the
               retry must reach the parser instead of a cached error. *)
            Alcotest.(check bool) "retry succeeds" true (Result.is_ok (parse ()));
            Alcotest.(check int) "parser consulted again" 2 !calls;
            Alcotest.(check bool) "success is served from cache" true (Result.is_ok (parse ()));
            let s = Normcache.stats () in
            Alcotest.(check int) "one hit" 1 s.Normcache.hits;
            Alcotest.(check int) "one cacheable miss" 1 s.Normcache.misses;
            Alcotest.(check int) "hook not consulted on the hit" 2 !calls));
    Alcotest.test_case "persistent parse errors are recomputed every time" `Quick (fun () ->
        Normcache.reset ();
        Fun.protect ~finally:Normcache.reset (fun () ->
            let parse () = Normcache.parse ~lens_name:"json" ~path:"/x.json" "{{{ nope" in
            Alcotest.(check bool) "error" true (Result.is_error (parse ()));
            Alcotest.(check bool) "error again" true (Result.is_error (parse ()));
            let s = Normcache.stats () in
            Alcotest.(check int) "both runs counted as uncacheable errors" 2
              s.Normcache.errors_cached;
            Alcotest.(check int) "never served from cache" 0 s.Normcache.hits));
  ]

(* ------------------------------------------------------------------ *)
(* Plan determinism and the simulated clock                            *)
(* ------------------------------------------------------------------ *)

let plan_cases =
  [
    Alcotest.test_case "plans are pure functions of the seed" `Quick (fun () ->
        let frames = frames () in
        let p1 = Faultsim.sample ~seed:5 ~rules frames in
        let p2 = Faultsim.sample ~seed:5 ~rules frames in
        Alcotest.(check string) "same description" (Faultsim.describe p1) (Faultsim.describe p2);
        let q = Faultsim.sample ~seed:6 ~rules frames in
        Alcotest.(check bool) "different seed, different plan" true
          (Faultsim.describe p1 <> Faultsim.describe q));
    Alcotest.test_case "slow reads advance only the simulated clock" `Quick (fun () ->
        let frames = frames () in
        let plan =
          let all = Faultsim.sample ~seed:1 ~rules frames in
          {
            all with
            Faultsim.faults =
              List.filter
                (fun (f : Faultsim.fault) ->
                  match f.Faultsim.kind with Faultsim.Slow_read _ -> true | _ -> false)
                all.Faultsim.faults;
          }
        in
        Alcotest.(check bool) "seed 1 has a slow read" true (plan.Faultsim.faults <> []);
        let t = with_plan plan (fun () ->
            Validator.run_loaded ~keep_not_applicable:true ~rules frames) in
        Alcotest.(check bool) "simulated time advanced" true
          (t.Validator.health.Resilience.simulated_ms > 0);
        Alcotest.(check bool) "latency alone does not degrade" false
          t.Validator.health.Resilience.degraded);
  ]

let suite =
  plan_cases @ retry_cases @ fallback_cases @ normcache_cases
  @ [ chaos_invariant; mixed_plan_completes ]
