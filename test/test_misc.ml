open Cvl

let keyword_cases =
  [
    Alcotest.test_case "keyword lookup and grouping" `Quick (fun () ->
        Alcotest.(check bool) "known" true (Keyword.is_keyword "preferred_value");
        Alcotest.(check bool) "unknown" false (Keyword.is_keyword "prefered_value");
        Alcotest.(check (option string)) "group" (Some "config tree")
          (Option.map Keyword.group_to_string (Keyword.group_of "config_path"));
        Alcotest.(check (option string)) "common group" (Some "common")
          (Option.map Keyword.group_to_string (Keyword.group_of "tags")));
    Alcotest.test_case "allowed_in includes common everywhere" `Quick (fun () ->
        List.iter
          (fun g ->
            if not (List.mem "tags" (Keyword.allowed_in g)) then
              Alcotest.failf "%s rules cannot carry tags" (Keyword.group_to_string g))
          [ Keyword.Tree; Keyword.Schema; Keyword.Path; Keyword.Script; Keyword.Composite ]);
    Alcotest.test_case "script borrows exactly config_path and not_present_pass" `Quick (fun () ->
        let script = Keyword.allowed_in Keyword.Script in
        Alcotest.(check bool) "config_path" true (List.mem "config_path" script);
        Alcotest.(check bool) "not_present_pass" true (List.mem "not_present_pass" script);
        Alcotest.(check bool) "file_context stays tree-only" false (List.mem "file_context" script));
  ]

let report_cases =
  [
    Alcotest.test_case "filter_by_tags" `Quick (fun () ->
        let run =
          Validator.run ~source:Rulesets.source ~manifest:Rulesets.manifest
            [ Scenarios.Host.misconfigured () ]
        in
        let ssl = Report.filter_by_tags [ "#ssl" ] run.Validator.results in
        Alcotest.(check bool) "nonempty" true (ssl <> []);
        List.iter
          (fun (r : Engine.result) ->
            if not (Rule.has_tag r.Engine.rule "#ssl") then
              Alcotest.failf "%s leaked through the tag filter" (Rule.name r.Engine.rule))
          ssl);
    Alcotest.test_case "keep_not_applicable override" `Quick (fun () ->
        let frames = Scenarios.Deployment.three_tier ~compliant:true in
        let kept =
          Validator.run ~keep_not_applicable:true ~source:Rulesets.source
            ~manifest:Rulesets.manifest frames
        in
        Alcotest.(check bool) "n/a retained" true
          (List.exists
             (fun (r : Engine.result) -> r.Engine.verdict = Engine.Not_applicable)
             kept.Validator.results));
    Alcotest.test_case "verdict helpers" `Quick (fun () ->
        Alcotest.(check bool) "not_matched violates" true (Engine.is_violation Engine.Not_matched);
        Alcotest.(check bool) "not_present violates" true (Engine.is_violation Engine.Not_present);
        Alcotest.(check bool) "matched ok" false (Engine.is_violation Engine.Matched);
        Alcotest.(check bool) "n/a neutral" false (Engine.is_violation Engine.Not_applicable);
        Alcotest.(check bool) "error neutral" false
          (Engine.is_violation
             (Engine.Engine_error { stage = Cvl.Resilience.Extract; message = "x" })));
  ]

let fleet_case =
  Alcotest.test_case "fleet results scale structurally" `Slow (fun () ->
      (* Duplicated containers must produce per-frame results whose
         verdict multiset is the per-container verdict set times the
         fleet size, and composite rules evaluate once. *)
      let fleet = Scenarios.Deployment.container_fleet 12 in
      let run = Validator.run ~source:Rulesets.source ~manifest:Rulesets.manifest fleet in
      let composites =
        List.filter
          (fun (r : Engine.result) -> Rule.kind_to_string r.Engine.rule = "composite")
          run.Validator.results
      in
      Alcotest.(check int) "composites once" 3 (List.length composites);
      (* Every bad nginx container reports the same docker runtime faults. *)
      let privileged_findings =
        List.filter
          (fun (r : Engine.result) ->
            Rule.name r.Engine.rule = "container_privileged"
            && Engine.is_violation r.Engine.verdict)
          run.Validator.results
      in
      (* Fleet of 12: indexes 1,3,5,7,9,11 are misconfigured (6). *)
      Alcotest.(check int) "six privileged containers" 6 (List.length privileged_findings))

let lookup_cases =
  [
    Alcotest.test_case "lookup_config_value scoping" `Quick (fun () ->
        let frame = Scenarios.Webstack.mysql_container_frame ~compliant:true in
        let ctx =
          Engine.build_ctx frame
            {
              Manifest.entity = "mysql";
              enabled = true;
              search_paths = [ "/etc/mysql" ];
              cvl_file = "-";
              lens = Some "ini";
              rule_type = None;
              flaky_plugins = [];
            }
        in
        Alcotest.(check (option string)) "scoped" (Some "/etc/mysql/cacert.pem")
          (Engine.lookup_config_value ctx ~key:"ssl-ca" ~subpath:(Some "mysqld"));
        Alcotest.(check (option string)) "deep fallback" (Some "mysql")
          (Engine.lookup_config_value ctx ~key:"user" ~subpath:None);
        Alcotest.(check (option string)) "missing" None
          (Engine.lookup_config_value ctx ~key:"no-such-key" ~subpath:None));
  ]

let sshd_match_case =
  Alcotest.test_case "match-block keys do not leak to the top level" `Quick (fun () ->
      (* A PermitRootLogin inside a Match block must not satisfy the
         top-level rule: OpenSSH scopes it to the matched users. *)
      let content = "PermitRootLogin yes\nMatch User deploy\n  PermitRootLogin no\n" in
      let frame =
        Frames.Frame.add_file
          (Frames.Frame.create ~id:"m" Frames.Frame.Host)
          (Frames.File.make ~mode:0o600 ~content "/etc/ssh/sshd_config")
      in
      let run = Validator.run ~source:Rulesets.source ~manifest:Rulesets.manifest [ frame ] in
      let prl =
        List.find
          (fun (r : Engine.result) -> Rule.name r.Engine.rule = "PermitRootLogin")
          run.Validator.results
      in
      Alcotest.(check string) "still a violation" "not-matched"
        (Engine.verdict_to_string prl.Engine.verdict))

let suite = keyword_cases @ report_cases @ [ fleet_case ] @ lookup_cases @ [ sshd_match_case ]
