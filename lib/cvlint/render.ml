let to_text diags =
  let buf = Buffer.create 256 in
  List.iter
    (fun (d : Diagnostic.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%s:%d: %s %s [%s]: %s\n" d.Diagnostic.span.Diagnostic.file
           d.Diagnostic.span.Diagnostic.line
           (Diagnostic.severity_to_string d.Diagnostic.code.Diagnostic.severity)
           d.Diagnostic.code.Diagnostic.id d.Diagnostic.code.Diagnostic.name
           d.Diagnostic.message);
      match d.Diagnostic.suggestion with
      | Some s -> Buffer.add_string buf (Printf.sprintf "    suggestion: %s\n" s)
      | None -> ())
    (Diagnostic.sort diags);
  Buffer.contents buf

let summary_line diags =
  let errors, warnings, infos = Diagnostic.count diags in
  let plural n = if n = 1 then "" else "s" in
  Printf.sprintf "%d error%s, %d warning%s, %d info%s" errors (plural errors) warnings
    (plural warnings) infos (plural infos)

let diag_to_json (d : Diagnostic.t) =
  let base =
    [
      ("file", Jsonlite.Str d.Diagnostic.span.Diagnostic.file);
      ("line", Jsonlite.Num (float_of_int d.Diagnostic.span.Diagnostic.line));
      ("code", Jsonlite.Str d.Diagnostic.code.Diagnostic.id);
      ("name", Jsonlite.Str d.Diagnostic.code.Diagnostic.name);
      ( "severity",
        Jsonlite.Str (Diagnostic.severity_to_string d.Diagnostic.code.Diagnostic.severity) );
      ("message", Jsonlite.Str d.Diagnostic.message);
    ]
  in
  match d.Diagnostic.suggestion with
  | Some s -> Jsonlite.Obj (base @ [ ("suggestion", Jsonlite.Str s) ])
  | None -> Jsonlite.Obj base

let to_json diags =
  let diags = Diagnostic.sort diags in
  let errors, warnings, infos = Diagnostic.count diags in
  Jsonlite.Obj
    [
      ("version", Jsonlite.Num 1.0);
      ("diagnostics", Jsonlite.Arr (List.map diag_to_json diags));
      ( "summary",
        Jsonlite.Obj
          [
            ("errors", Jsonlite.Num (float_of_int errors));
            ("warnings", Jsonlite.Num (float_of_int warnings));
            ("infos", Jsonlite.Num (float_of_int infos));
          ] );
    ]

let sarif_level = function
  | Diagnostic.Error -> "error"
  | Diagnostic.Warning -> "warning"
  | Diagnostic.Info -> "note"

let to_sarif diags =
  let diags = Diagnostic.sort diags in
  let rules =
    List.map
      (fun (c : Diagnostic.code) ->
        Jsonlite.Obj
          [
            ("id", Jsonlite.Str c.Diagnostic.id);
            ("name", Jsonlite.Str c.Diagnostic.name);
            ( "shortDescription",
              Jsonlite.Obj [ ("text", Jsonlite.Str c.Diagnostic.summary) ] );
            ( "defaultConfiguration",
              Jsonlite.Obj [ ("level", Jsonlite.Str (sarif_level c.Diagnostic.severity)) ] );
          ])
      Diagnostic.registry
  in
  let results =
    List.map
      (fun (d : Diagnostic.t) ->
        let message =
          match d.Diagnostic.suggestion with
          | Some s -> d.Diagnostic.message ^ " (suggestion: " ^ s ^ ")"
          | None -> d.Diagnostic.message
        in
        Jsonlite.Obj
          [
            ("ruleId", Jsonlite.Str d.Diagnostic.code.Diagnostic.id);
            ("level", Jsonlite.Str (sarif_level d.Diagnostic.code.Diagnostic.severity));
            ("message", Jsonlite.Obj [ ("text", Jsonlite.Str message) ]);
            ( "locations",
              Jsonlite.Arr
                [
                  Jsonlite.Obj
                    [
                      ( "physicalLocation",
                        Jsonlite.Obj
                          [
                            ( "artifactLocation",
                              Jsonlite.Obj
                                [ ("uri", Jsonlite.Str d.Diagnostic.span.Diagnostic.file) ] );
                            ( "region",
                              Jsonlite.Obj
                                [
                                  ( "startLine",
                                    Jsonlite.Num
                                      (float_of_int
                                         (max 1 d.Diagnostic.span.Diagnostic.line)) );
                                ] );
                          ] );
                    ];
                ] );
          ])
      diags
  in
  Jsonlite.Obj
    [
      ("version", Jsonlite.Str "2.1.0");
      ( "$schema",
        Jsonlite.Str "https://json.schemastore.org/sarif-2.1.0.json" );
      ( "runs",
        Jsonlite.Arr
          [
            Jsonlite.Obj
              [
                ( "tool",
                  Jsonlite.Obj
                    [
                      ( "driver",
                        Jsonlite.Obj
                          [
                            ("name", Jsonlite.Str "cvlint");
                            ("version", Jsonlite.Str "1.0.0");
                            ("rules", Jsonlite.Arr rules);
                          ] );
                    ] );
                ("results", Jsonlite.Arr results);
              ];
          ] );
    ]
