(** Diagnostic renderers: human text, stable machine JSON, and a
    SARIF-2.1.0 subset that code-review UIs ingest. All three render the
    diagnostics in {!Diagnostic.sort} order, so output is deterministic
    for golden tests. *)

(** One line per diagnostic ([file:line: severity CODE [slug]: message]),
    with a [suggestion:] continuation line when a fix is attached. *)
val to_text : Diagnostic.t list -> string

(** ["N errors, N warnings, N infos"]. *)
val summary_line : Diagnostic.t list -> string

val to_json : Diagnostic.t list -> Jsonlite.t

(** SARIF-lite: [version]/[runs[0].tool.driver.rules]/[runs[0].results],
    enough for GitHub code scanning to ingest. The rules table is the
    full {!Diagnostic.registry} regardless of which codes fired. *)
val to_sarif : Diagnostic.t list -> Jsonlite.t
