(** Structured lint diagnostics and the code registry.

    Every finding cvlint can emit is declared here once, with a stable
    numeric id ([CVL0xx]), a semgrep-style slug, a fixed severity, and a
    one-line summary. Renderers (text/JSON/SARIF), the CLI's [--fail-on]
    gating, and the documentation table in DESIGN.md all read this
    registry, so adding a pass starts by adding its code. *)

type severity = Error | Warning | Info

val severity_to_string : severity -> string

(** [Error] > [Warning] > [Info]. *)
val severity_rank : severity -> int

type code = {
  id : string;  (** stable, e.g. ["CVL010"] *)
  name : string;  (** slug, e.g. ["unknown-keyword"] *)
  severity : severity;
  summary : string;
}

(** All diagnostic codes, in id order. *)
val registry : code list

(** Lookup by id or slug. *)
val find_code : string -> code option

type span = {
  file : string;
  line : int;  (** 1-based; [0] when the finding has no useful line *)
}

type t = {
  code : code;
  span : span;
  message : string;
  suggestion : string option;  (** an optional suggested fix *)
}

val make : code -> ?suggestion:string -> span -> string -> t

(** Order by (file, line, id, message); [sort] also deduplicates —
    linting a parent file once per inheritance chain must not double
    report. *)
val compare : t -> t -> int

val sort : t list -> t list

(** [(errors, warnings, infos)] census. *)
val count : t list -> int * int * int

(** Highest severity present. *)
val worst : t list -> severity option

(** {2 The registry} *)

val parse_error : code
val manifest_error : code
val rule_load_error : code
val missing_rule_file : code
val inheritance_cycle : code
val unknown_keyword : code
val misplaced_keyword : code
val duplicate_rule_name : code
val shadowed_rule : code
val conflicting_values : code
val presence_only_with_values : code
val absent_path_with_attributes : code
val bad_match_spec : code
val bad_regex : code
val match_without_value : code
val unknown_lens : code
val unknown_script : code
val dead_config_path : code
val unknown_entity : code
val bad_composite_expression : code
val no_tags : code
val bad_tag : code
val missing_remediation : code
val bad_rule_type : code
val flaky_plugin_no_fallback : code

(** CVL060 — a [config_path] literal the compile-time path parser
    rejects: at run time it silently contributes no nodes, on every
    scan. *)
val malformed_config_path : code

(** CVL061 — one rule's [config_path] is a strict prefix of another's,
    so the two queries read nested subtrees. Informational: the fused
    engine answers both from one shared walk (see
    [Configtree.Index.Plan]); the note surfaces consolidation
    candidates. *)
val overlapping_rule_queries : code

(** CVL062 — a [require_other_configs] probe that can never be
    satisfied: the compiler lowers an unparseable literal to a
    constant-false gate, and a flat lens never produces nested labels —
    either way the rule silently never fires, on every scan. A one-shot
    run pays this once; a long-running daemon bakes the dead rule into
    its resident ruleset until the next reload. *)
val unsatisfiable_require_probe : code

(** CVL070 — an [aggregate:] value no cluster evaluator implements; the
    rule errors on every run. *)
val unknown_cluster_aggregator : code

(** CVL071 — [min_frames]/[max_frames] confine a fleet-scoped rule to
    at most one participating frame, making the cross-frame aggregator
    vacuous (an [equal_across] over one frame always holds). *)
val cluster_single_frame_query : code

(** CVL072 — a referent set that can never contain a value (malformed
    [referent_config_path], or a referent on an aggregator that ignores
    it): every observed value would count as a violation. *)
val unsatisfiable_referent : code
