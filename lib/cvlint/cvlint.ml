module Diagnostic = Diagnostic
module Render = Render

type context = {
  lenses : string list;
  plugins : string list;
  entities : string list option;
  flaky_plugins : string list;
}

let default_context =
  {
    lenses = List.map (fun (l : Lenses.Lens.t) -> l.Lenses.Lens.name) Lenses.Registry.all;
    plugins = List.map (fun (p : Crawler.plugin) -> p.Crawler.plugin_name) Crawler.plugins;
    entities = None;
    flaky_plugins = [];
  }

let span file line = { Diagnostic.file; line }

(* ------------------------------------------------------------------ *)
(* Positioned rules                                                    *)
(* ------------------------------------------------------------------ *)

(* A rule as the analyzer sees it: each field carries the span it was
   written at. After inheritance merging a single rule mixes spans from
   several files — a diagnostic about an inherited field points at the
   ancestor file that defined it. *)
type pfield = { key : string; fspan : Diagnostic.span; value : Yamlite.Value.t }
type prule = { rspan : Diagnostic.span; pfields : pfield list }

let pfind p key = List.find_opt (fun f -> String.equal f.key key) p.pfields
let to_map p = List.map (fun f -> (f.key, f.value)) p.pfields

let prules_of_doc file (doc : Cvl.Loader.Raw.doc) =
  List.map
    (fun (r : Cvl.Loader.Raw.rule) ->
      {
        rspan = span file r.Cvl.Loader.Raw.line;
        pfields =
          List.map
            (fun (f : Cvl.Loader.Raw.field) ->
              {
                key = f.Cvl.Loader.Raw.key;
                fspan = span file f.Cvl.Loader.Raw.key_line;
                value = f.Cvl.Loader.Raw.value;
              })
            r.Cvl.Loader.Raw.fields;
      })
    doc.Cvl.Loader.Raw.rules

let discriminators =
  [
    ("config_name", Cvl.Keyword.Tree);
    ("config_schema_name", Cvl.Keyword.Schema);
    ("path_name", Cvl.Keyword.Path);
    ("script_name", Cvl.Keyword.Script);
    ("composite_rule_name", Cvl.Keyword.Composite);
    ("cluster_rule_name", Cvl.Keyword.Cluster);
  ]

let kind_of p = List.filter (fun (k, _) -> pfind p k <> None) discriminators

let name_of p =
  match kind_of p with
  | [ (k, _) ] ->
    Option.bind (pfind p k) (fun f -> Yamlite.Value.get_str f.value)
  | _ -> None

let str_of p key = Option.bind (pfind p key) (fun f -> Yamlite.Value.get_str f.value)

let str_list_of p key =
  Option.bind (pfind p key) (fun f -> Yamlite.Value.get_str_list f.value)

let bool_of p key = Option.bind (pfind p key) (fun f -> Yamlite.Value.get_bool f.value)
let int_of p key = Option.bind (pfind p key) (fun f -> Yamlite.Value.get_int f.value)

(* Closest name in [candidates] by bounded edit distance — the
   "did you mean" source for lens, plugin, entity, and manifest keys. *)
let nearest_in candidates k =
  let limit = 3 in
  List.fold_left
    (fun best c ->
      let d = Cvl.Keyword.distance ~limit k c in
      match best with
      | Some (_, bd) when bd <= d -> best
      | _ -> if d <= limit then Some (c, d) else best)
    None candidates

let did_you_mean candidates k =
  Option.map (fun (c, _) -> Printf.sprintf "did you mean %S?" c) (nearest_in candidates k)

(* ------------------------------------------------------------------ *)
(* Suppressions                                                        *)
(* ------------------------------------------------------------------ *)

(* Tracked in-file annotations:
     # cvlint-disable-file CVL040 CVL041
     # cvlint-disable-next-line CVL042
   The first silences the codes anywhere in the file, the second only on
   the line directly below the comment. *)
type suppressions = {
  file_wide : string list;
  by_line : (int * string) list;  (** (line, code id) *)
}

let suppressions_of_text text =
  let file_wide = ref [] and by_line = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i line ->
      let line = String.trim line in
      if String.length line > 0 && line.[0] = '#' then
        let words =
          String.sub line 1 (String.length line - 1)
          |> String.split_on_char ' '
          |> List.filter (fun w -> w <> "")
        in
        match words with
        | "cvlint-disable-file" :: codes -> file_wide := codes @ !file_wide
        | "cvlint-disable-next-line" :: codes ->
          by_line := List.map (fun c -> (i + 2, c)) codes @ !by_line
        | _ -> ())
    lines;
  { file_wide = !file_wide; by_line = !by_line }

let suppressed tbl (d : Diagnostic.t) =
  match Hashtbl.find_opt tbl d.Diagnostic.span.Diagnostic.file with
  | None -> false
  | Some s ->
    let id = d.Diagnostic.code.Diagnostic.id in
    List.mem id s.file_wide
    || List.mem (d.Diagnostic.span.Diagnostic.line, id) s.by_line

(* ------------------------------------------------------------------ *)
(* Chain loading                                                       *)
(* ------------------------------------------------------------------ *)

type file_doc = { fpath : string; doc : Cvl.Loader.Raw.doc }

(* Load [path] and its parent_cvl_file ancestors. Returns the chain
   child-first; a break (missing file, cycle, parse error) becomes a
   diagnostic at the span that referenced the broken link and truncates
   the chain there. *)
let load_chain ~(source : Cvl.Loader.source) ~ref_span ~supp path =
  let rec go path ~ref_span visited =
    if List.mem path visited then
      ( [
          Diagnostic.make Diagnostic.inheritance_cycle ref_span
            (Printf.sprintf "parent_cvl_file chain forms a cycle through %S" path);
        ],
        [] )
    else
      match source.Cvl.Loader.load path with
      | Error msg ->
        ( [
            Diagnostic.make Diagnostic.missing_rule_file ref_span
              (Printf.sprintf "cannot read rule file %S: %s" path msg);
          ],
          [] )
      | Ok text -> (
        Hashtbl.replace supp path (suppressions_of_text text);
        match Cvl.Loader.Raw.of_text text with
        | Error err ->
          ( [
              Diagnostic.make Diagnostic.parse_error
                (span path err.Cvl.Loader.Raw.err_line)
                err.Cvl.Loader.Raw.err_msg;
            ],
            [] )
        | Ok doc -> (
          let here = { fpath = path; doc } in
          match doc.Cvl.Loader.Raw.parent with
          | None -> ([], [ here ])
          | Some parent ->
            let pspan = span path doc.Cvl.Loader.Raw.parent_line in
            let ds, chain = go parent ~ref_span:pspan (path :: visited) in
            (ds, here :: chain)))
  in
  go path ~ref_span []

(* ------------------------------------------------------------------ *)
(* Per-file passes                                                     *)
(* ------------------------------------------------------------------ *)

(* CVL012: two rules in one file sharing a name. The loader silently
   lets the later rule ride along; after an inheritance merge only one
   survives, so the duplicate is almost certainly an editing mistake. *)
let duplicate_names_pass prules =
  let seen = Hashtbl.create 16 in
  List.concat_map
    (fun p ->
      match name_of p with
      | None -> []
      | Some name -> (
        match Hashtbl.find_opt seen name with
        | Some (first : Diagnostic.span) ->
          [
            Diagnostic.make Diagnostic.duplicate_rule_name p.rspan
              (Printf.sprintf "rule %S is already defined at line %d" name
                 first.Diagnostic.line);
          ]
        | None ->
          Hashtbl.add seen name p.rspan;
          []))
    prules

(* CVL010/CVL011: every field must be a CVL keyword legal for the
   rule's type. Unknown keywords get an edit-distance suggestion. *)
let keyword_pass p =
  match kind_of p with
  | [ (_, group) ] ->
    let allowed = Cvl.Keyword.allowed_in group in
    List.concat_map
      (fun f ->
        if List.mem f.key allowed then []
        else if Cvl.Keyword.is_keyword f.key then
          [
            Diagnostic.make Diagnostic.misplaced_keyword f.fspan
              (Printf.sprintf "keyword %S is not valid in a %s rule" f.key
                 (Cvl.Keyword.group_to_string group));
          ]
        else
          let suggestion =
            match Cvl.Keyword.nearest f.key with
            | Some (k, _) -> Some (Printf.sprintf "did you mean %S?" k)
            | None -> None
          in
          [
            Diagnostic.make Diagnostic.unknown_keyword ?suggestion f.fspan
              (Printf.sprintf "unknown keyword %S" f.key);
          ])
      p.pfields
  | _ -> []
(* 0 or several discriminators: reported as CVL003 by the semantic pass *)

let file_passes fd =
  let prules = prules_of_doc fd.fpath fd.doc in
  duplicate_names_pass prules @ List.concat_map keyword_pass prules

(* ------------------------------------------------------------------ *)
(* Positioned inheritance merge                                        *)
(* ------------------------------------------------------------------ *)

(* Mirror of [Loader.merge_maps], keeping spans: an overriding child
   field carries the child's span, an inherited field the ancestor's.
   Emits CVL013 for each override so intentional site deltas are
   visible (Info — overriding is what parent_cvl_file is for). *)
let merge_prules parents children =
  let find_child name =
    List.find_opt (fun c -> name_of c = Some name) children
  in
  let shadows = ref [] in
  let overridden =
    List.map
      (fun parent ->
        match Option.bind (name_of parent) (fun n -> find_child n) with
        | Some child ->
          shadows :=
            Diagnostic.make Diagnostic.shadowed_rule child.rspan
              (Printf.sprintf "rule %S overrides the definition at %s:%d"
                 (Option.value (name_of child) ~default:"")
                 parent.rspan.Diagnostic.file parent.rspan.Diagnostic.line)
            :: !shadows;
          let merged_fields =
            List.map
              (fun pf ->
                match pfind child pf.key with Some cf -> cf | None -> pf)
              parent.pfields
            @ List.filter
                (fun (cf : pfield) -> pfind parent cf.key = None)
                child.pfields
          in
          { rspan = child.rspan; pfields = merged_fields }
        | None -> parent)
      parents
  in
  let parent_names = List.filter_map name_of parents in
  let fresh =
    List.filter
      (fun c ->
        match name_of c with
        | Some n -> not (List.mem n parent_names)
        | None -> true)
      children
  in
  (overridden @ fresh, !shadows)

(* Fold the chain root-first into the effective rule set. *)
let effective_rules chain_child_first =
  List.fold_left
    (fun (acc, ds) fd ->
      let children = prules_of_doc fd.fpath fd.doc in
      let merged, shadow = merge_prules acc children in
      (merged, ds @ shadow))
    ([], [])
    (List.rev chain_child_first)

(* ------------------------------------------------------------------ *)
(* Semantic passes over effective rules                                *)
(* ------------------------------------------------------------------ *)

(* Lenses that normalize to a flat dotted-key tree: a config_path
   written filesystem-style ([a/b/c]) can never match their output. *)
let flat_lenses = [ "sysctl"; "postgres"; "hadoop"; "properties" ]

let expectation_keys =
  [
    ("preferred_value", "preferred_value_match");
    ("non_preferred_value", "non_preferred_value_match");
  ]

let regex_compiles v =
  match Re.compile (Re.Pcre.re v) with _ -> true | exception _ -> false

let expectation_passes p =
  List.concat_map
    (fun (value_key, match_key) ->
      let vfield = pfind p value_key and mfield = pfind p match_key in
      let spec_diags, spec =
        match mfield with
        | None -> ([], Cvl.Matcher.default)
        | Some mf -> (
          match vfield with
          | None ->
            ( [
                Diagnostic.make Diagnostic.match_without_value mf.fspan
                  (Printf.sprintf "%s given without %s" match_key value_key);
              ],
              Cvl.Matcher.default )
          | Some _ -> (
            match Yamlite.Value.get_str mf.value with
            | None -> ([], Cvl.Matcher.default)
            | Some text -> (
              match Cvl.Matcher.parse text with
              | Ok spec -> ([], spec)
              | Error e ->
                ( [
                    Diagnostic.make Diagnostic.bad_match_spec mf.fspan
                      (Printf.sprintf "%s: %s" match_key e);
                  ],
                  Cvl.Matcher.default ))))
      in
      let regex_diags =
        match (spec.Cvl.Matcher.kind, vfield) with
        | Cvl.Matcher.Regex, Some vf ->
          let values =
            Option.value (Yamlite.Value.get_str_list vf.value) ~default:[]
          in
          List.filter_map
            (fun v ->
              if regex_compiles v then None
              else
                Some
                  (Diagnostic.make Diagnostic.bad_regex vf.fspan
                     (Printf.sprintf "%s value %S is not a valid regex" value_key v)))
            values
        | _ -> []
      in
      spec_diags @ regex_diags)
    expectation_keys

(* CVL020: a value listed as both preferred and non-preferred can never
   be classified — the rule contradicts itself. *)
let conflicting_values_pass p =
  match
    ( str_list_of p "preferred_value",
      str_list_of p "non_preferred_value",
      pfind p "non_preferred_value" )
  with
  | Some pref, Some non, Some nf ->
    let both = List.filter (fun v -> List.mem v pref) non in
    if both = [] then []
    else
      [
        Diagnostic.make Diagnostic.conflicting_values nf.fspan
          (Printf.sprintf "value%s %s appear%s in both preferred_value and non_preferred_value"
             (if List.length both = 1 then "" else "s")
             (String.concat ", " (List.map (Printf.sprintf "%S") both))
             (if List.length both = 1 then "s" else ""));
      ]
  | _ -> []

let tree_passes ?lens p =
  let presence_only =
    match (bool_of p "check_presence_only", pfind p "check_presence_only") with
    | Some true, Some f
      when pfind p "preferred_value" <> None || pfind p "non_preferred_value" <> None ->
      [
        Diagnostic.make Diagnostic.presence_only_with_values f.fspan
          "check_presence_only: true makes the rule's value constraints dead";
      ]
    | _ -> []
  in
  let dead_paths =
    match (lens, pfind p "config_path") with
    | Some lens, Some f when List.mem lens flat_lenses ->
      let paths = Option.value (Yamlite.Value.get_str_list f.value) ~default:[] in
      List.filter_map
        (fun path ->
          if String.contains path '/' then
            Some
              (Diagnostic.make Diagnostic.dead_config_path f.fspan
                 ~suggestion:"flat lenses address settings by dotted key, e.g. a.b.c"
                 (Printf.sprintf
                    "config_path %S can never be produced by the flat %s lens" path lens))
          else None)
        paths
    | _ -> []
  in
  presence_only @ dead_paths

(* CVL060: powered by the same compile-time path parser the rule
   compiler uses — a literal it rejects contributes no nodes at run
   time, silently, on every scan. Applies to tree rules (where the
   literal is a section prefix) and script rules (a full leaf path). *)
let malformed_path_pass p =
  match pfind p "config_path" with
  | None -> []
  | Some f ->
    let paths = Option.value (Yamlite.Value.get_str_list f.value) ~default:[] in
    List.filter_map
      (fun path ->
        match Cvl.Compile.check_path_literal path with
        | Ok _ -> None
        | Error e ->
          Some
            (Diagnostic.make Diagnostic.malformed_config_path f.fspan
               ~suggestion:"segments are labels, label[n], * or **, separated by '/'"
               (Printf.sprintf "config_path %S does not parse: %s" path e)))
      paths

(* CVL062: a require_other_configs probe that can never be satisfied —
   the rule compiler lowers an unparseable literal to a constant-false
   gate, and a flat lens never produces nested labels. Either way the
   rule silently never fires; a resident daemon ruleset keeps the dead
   rule until the next reload. *)
let unsatisfiable_probe_pass ?lens p =
  match pfind p "require_other_configs" with
  | None -> []
  | Some f ->
    let probes = Option.value (Yamlite.Value.get_str_list f.value) ~default:[] in
    List.filter_map
      (fun probe ->
        match Cvl.Compile.check_path_literal probe with
        | Error e ->
          Some
            (Diagnostic.make Diagnostic.unsatisfiable_require_probe f.fspan
               ~suggestion:"segments are labels, label[n], * or **, separated by '/'"
               (Printf.sprintf
                  "require_other_configs probe %S does not parse (%s): the gate is \
                   constant-false and the rule can never fire"
                  probe e))
        | Ok _ -> (
          match lens with
          | Some l when List.mem l flat_lenses && String.contains probe '/' ->
            Some
              (Diagnostic.make Diagnostic.unsatisfiable_require_probe f.fspan
                 ~suggestion:"flat lenses address settings by dotted key, e.g. a.b.c"
                 (Printf.sprintf
                    "require_other_configs probe %S can never be produced by the flat %s \
                     lens: the rule can never fire"
                    probe l))
          | _ -> None))
      probes

let path_passes p =
  match (bool_of p "should_exist", pfind p "should_exist") with
  | Some false, Some f ->
    let attrs =
      List.filter (fun k -> pfind p k <> None) [ "ownership"; "permission"; "file_type" ]
    in
    if attrs = [] then []
    else
      [
        Diagnostic.make Diagnostic.absent_path_with_attributes f.fspan
          (Printf.sprintf "should_exist: false makes %s unsatisfiable"
             (String.concat ", " attrs));
      ]
  | _ -> []

let script_passes ctx p =
  match pfind p "script" with
  | Some f -> (
    match Yamlite.Value.get_str f.value with
    | Some name when not (List.mem name ctx.plugins) ->
      [
        Diagnostic.make Diagnostic.unknown_script f.fspan
          ?suggestion:(did_you_mean ctx.plugins name)
          (Printf.sprintf "script %S names no crawler plugin" name);
      ]
    | Some name when List.mem name ctx.flaky_plugins && pfind p "on_plugin_failure" = None ->
      [
        Diagnostic.make Diagnostic.flaky_plugin_no_fallback f.fspan
          (Printf.sprintf
             "plugin %S is marked flaky in the manifest; declare on_plugin_failure: degrade \
              (or error) so a fault does not abort the run"
             name);
      ]
    | _ -> [])
  | None -> []

let composite_passes ctx p =
  match pfind p "composite_rule" with
  | Some f -> (
    match Yamlite.Value.get_str f.value with
    | None -> []
    | Some text -> (
      match Cvl.Expr.parse text with
      | Error e ->
        [
          Diagnostic.make Diagnostic.bad_composite_expression f.fspan
            (Printf.sprintf "composite expression does not parse: %s" e);
        ]
      | Ok ast -> (
        match ctx.entities with
        | None -> []
        | Some known ->
          List.filter_map
            (fun entity ->
              if List.mem entity known then None
              else
                Some
                  (Diagnostic.make Diagnostic.unknown_entity f.fspan
                     ?suggestion:(did_you_mean known entity)
                     (Printf.sprintf
                        "composite expression references entity %S, absent from the manifest"
                        entity)))
            (Cvl.Expr.entities ast))))
  | None -> []

let is_blank s = String.trim s = ""

let tag_passes p =
  match pfind p "tags" with
  | None ->
    [ Diagnostic.make Diagnostic.no_tags p.rspan "rule carries no tags" ]
  | Some f -> (
    match Yamlite.Value.get_str_list f.value with
    | Some [] -> [ Diagnostic.make Diagnostic.no_tags f.fspan "tags list is empty" ]
    | Some tags ->
      let blank =
        if List.exists is_blank tags then
          [ Diagnostic.make Diagnostic.bad_tag f.fspan "a tag is empty or blank" ]
        else []
      in
      let spacey =
        List.filter_map
          (fun t ->
            if (not (is_blank t)) && String.contains t ' ' then
              Some
                (Diagnostic.make Diagnostic.bad_tag f.fspan
                   (Printf.sprintf "tag %S contains whitespace" t))
            else None)
          tags
      in
      let dups =
        List.filter_map
          (fun t ->
            if List.length (List.filter (String.equal t) tags) > 1 then Some t else None)
          tags
        |> List.sort_uniq String.compare
        |> List.map (fun t ->
               Diagnostic.make Diagnostic.bad_tag f.fspan
                 (Printf.sprintf "tag %S is listed more than once" t))
      in
      blank @ spacey @ dups
    | None -> [])

let remediation_passes p =
  let severity = Option.value (str_of p "severity") ~default:"medium" in
  if not (List.mem severity [ "high"; "critical" ]) then []
  else
    let has key =
      match str_of p key with Some s -> not (is_blank s) | None -> false
    in
    if has "suggested_action" || has "not_matched_preferred_value_description" then []
    else
      let sp =
        match pfind p "severity" with Some f -> f.fspan | None -> p.rspan
      in
      [
        Diagnostic.make Diagnostic.missing_remediation sp
          (Printf.sprintf
             "%s-severity rule %S has no suggested_action or violation description"
             severity
             (Option.value (name_of p) ~default:"?"));
      ]

(* CVL070/071/072: cluster-scope checks, anchored at the offending
   field's own span (the aggregator token, the bound, the referent) so
   the finding points at what to edit, not at the rule header. *)
let cluster_passes p =
  let aggregate = str_of p "aggregate" in
  let unknown_aggregate =
    match (aggregate, pfind p "aggregate") with
    | Some a, Some f when not (List.mem a Cvl.Cluster.aggregators) ->
      [
        Diagnostic.make Diagnostic.unknown_cluster_aggregator f.fspan
          ?suggestion:(did_you_mean Cvl.Cluster.aggregators a)
          (Printf.sprintf "unknown aggregate %S" a);
      ]
    | _ -> []
  in
  let cross_frame =
    match aggregate with
    | Some ("equal_across" | "consistent_across") -> true
    | _ -> false
  in
  let vacuous_bounds =
    match (int_of p "max_frames", pfind p "max_frames") with
    | Some m, Some f when m <= 1 && cross_frame ->
      [
        Diagnostic.make Diagnostic.cluster_single_frame_query f.fspan
          ~suggestion:"cross-frame aggregators need at least two participating frames"
          (Printf.sprintf
             "max_frames: %d confines %s to at most one frame, so it always holds" m
             (Option.value aggregate ~default:"the aggregator"));
      ]
    | _ -> []
  in
  let impossible_bounds =
    match (int_of p "min_frames", int_of p "max_frames", pfind p "min_frames") with
    | Some mn, Some mx, Some f when mn > mx ->
      [
        Diagnostic.make Diagnostic.cluster_single_frame_query f.fspan
          (Printf.sprintf
             "min_frames: %d exceeds max_frames: %d — the quorum can never be satisfied" mn
             mx);
      ]
    | _ -> []
  in
  let referent =
    match pfind p "referent_config_path" with
    | None -> []
    | Some f -> (
      let literal = Option.value (Yamlite.Value.get_str f.value) ~default:"" in
      match Cvl.Compile.check_path_literal literal with
      | Error e ->
        [
          Diagnostic.make Diagnostic.unsatisfiable_referent f.fspan
            ~suggestion:"segments are labels, label[n], * or **, separated by '/'"
            (Printf.sprintf
               "referent_config_path %S does not parse (%s): the referent set is empty and \
                every observed value is a violation"
               literal e);
        ]
      | Ok _ -> (
        match aggregate with
        | Some a when a <> "exists_referent" ->
          [
            Diagnostic.make Diagnostic.unsatisfiable_referent f.fspan
              ~suggestion:"only exists_referent consults the referent set"
              (Printf.sprintf "referent_config_path is ignored by aggregate %s" a);
          ]
        | _ -> []))
  in
  unknown_aggregate @ vacuous_bounds @ impossible_bounds @ referent

let semantic_passes ctx ?lens p =
  match kind_of p with
  | [] ->
    [
      Diagnostic.make Diagnostic.rule_load_error p.rspan
        "rule has no discriminator key (expected one of config_name, config_schema_name, \
         path_name, script_name, composite_rule_name, cluster_rule_name)";
    ]
  | _ :: _ :: _ as multiple ->
    [
      Diagnostic.make Diagnostic.rule_load_error p.rspan
        (Printf.sprintf "rule mixes discriminator keys: %s"
           (String.concat ", " (List.map fst multiple)));
    ]
  | [ (dkey, group) ] -> (
    match str_of p dkey with
    | None ->
      [
        Diagnostic.make Diagnostic.rule_load_error p.rspan
          (Printf.sprintf "%s must be a scalar" dkey);
      ]
    | Some _ ->
      let typed =
        match group with
        | Cvl.Keyword.Tree ->
          tree_passes ?lens p @ malformed_path_pass p @ unsatisfiable_probe_pass ?lens p
        | Cvl.Keyword.Path -> path_passes p
        | Cvl.Keyword.Script -> script_passes ctx p @ malformed_path_pass p
        | Cvl.Keyword.Composite -> composite_passes ctx p
        | Cvl.Keyword.Cluster -> cluster_passes p @ malformed_path_pass p
        | Cvl.Keyword.Schema | Cvl.Keyword.Common -> []
      in
      let diags =
        expectation_passes p @ conflicting_values_pass p @ typed @ tag_passes p
        @ remediation_passes p
      in
      (* CVL003 backstop: whatever the loader still rejects that no
         specialized pass explained. Suppressed when an error-severity
         diagnostic already covers this rule — including keyword errors,
         which the per-file pass reported at field spans. *)
      let already_errored =
        keyword_pass p <> []
        || List.exists
             (fun (d : Diagnostic.t) ->
               d.Diagnostic.code.Diagnostic.severity = Diagnostic.Error)
             diags
      in
      let backstop =
        if already_errored then []
        else
          match Cvl.Loader.rule_of_map (to_map p) with
          | Ok _ -> []
          | Error msg -> [ Diagnostic.make Diagnostic.rule_load_error p.rspan msg ]
      in
      diags @ backstop)

(* ------------------------------------------------------------------ *)
(* Cross-rule passes                                                   *)
(* ------------------------------------------------------------------ *)

(* CVL061: two rules whose config_path literals nest — one a strict
   prefix of the other, as decided by the fused planner's prefix trie
   (Configtree.Index.Plan.subsumptions), the same structure the fused
   engine uses to share walks at run time. Informational: the overlap
   costs nothing under fusion, but it usually marks related checks that
   could live in one rule. Runs over the effective rule set, after
   inheritance merging, so a child overriding its parent's path is not
   reported against the stale parent literal. *)
let overlap_pass prules =
  let entries =
    List.concat_map
      (fun p ->
        match (kind_of p, pfind p "config_path") with
        | [ (_, (Cvl.Keyword.Tree | Cvl.Keyword.Script)) ], Some f ->
          let name = Option.value (name_of p) ~default:"?" in
          let texts = Option.value (Yamlite.Value.get_str_list f.value) ~default:[] in
          List.filter_map
            (fun text ->
              match Cvl.Compile.check_path_literal text with
              | Ok path when path <> [] -> Some (name, f.fspan, text, path)
              | Ok _ | Error _ -> None)
            texts
        | _ -> [])
      prules
  in
  if List.compare_length_with entries 2 < 0 then []
  else
    let arr = Array.of_list entries in
    let plan = Configtree.Index.Plan.build (Array.map (fun (_, _, _, p) -> p) arr) in
    List.filter_map
      (fun (i, j) ->
        let prefix_rule, _, prefix_text, _ = arr.(i) in
        let rule, fspan, text, _ = arr.(j) in
        if String.equal prefix_rule rule then None
        else
          Some
            (Diagnostic.make Diagnostic.overlapping_rule_queries fspan
               (Printf.sprintf
                  "config_path %S is inside the subtree rule %S already reads via %S"
                  text prefix_rule prefix_text)))
      (Configtree.Index.Plan.subsumptions plan)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let finish supp diags =
  Diagnostic.sort (List.filter (fun d -> not (suppressed supp d)) diags)

let lint_text ?(ctx = default_context) ?lens ?(path = "<input>") text =
  let supp = Hashtbl.create 4 in
  Hashtbl.replace supp path (suppressions_of_text text);
  match Cvl.Loader.Raw.of_text text with
  | Error err ->
    finish supp
      [
        Diagnostic.make Diagnostic.parse_error
          (span path err.Cvl.Loader.Raw.err_line)
          err.Cvl.Loader.Raw.err_msg;
      ]
  | Ok doc ->
    let fd = { fpath = path; doc } in
    let prules = prules_of_doc path doc in
    finish supp
      (file_passes fd
      @ List.concat_map (semantic_passes ctx ?lens) prules
      @ overlap_pass prules)

let lint_chain ~ctx ?lens ~source ~ref_span ~supp path =
  let load_diags, chain = load_chain ~source ~ref_span ~supp path in
  let per_file = List.concat_map file_passes chain in
  let effective, shadow = effective_rules chain in
  let semantic = List.concat_map (semantic_passes ctx ?lens) effective in
  load_diags @ per_file @ shadow @ semantic @ overlap_pass effective

let lint_file ?(ctx = default_context) ?lens ~source path =
  let supp = Hashtbl.create 4 in
  finish supp (lint_chain ~ctx ?lens ~source ~ref_span:(span path 0) ~supp path)

(* ------------------------------------------------------------------ *)
(* Manifest / corpus                                                   *)
(* ------------------------------------------------------------------ *)

let manifest_keys =
  [ "enabled"; "config_search_paths"; "cvl_file"; "lens"; "rule_type"; "entity_name";
    "flaky_plugins" ]

let rule_types = [ "tree"; "schema"; "path"; "script"; "composite"; "cluster" ]

type mentry = {
  m_entity : string;
  m_cvl_file : (string * Diagnostic.span) option;
  m_lens : string option;
  m_flaky : string list;
}

(* Positioned manifest checks. Returns the diagnostics plus what the
   corpus walk needs from each well-formed section. *)
let lint_manifest ~ctx ~path text =
  match Yamlite.Parse.ast text with
  | Error e ->
    ( [
        Diagnostic.make Diagnostic.parse_error
          (span path e.Yamlite.Parse.line)
          (Yamlite.Parse.error_to_string e);
      ],
      [] )
  | Ok ast -> (
    match ast.Yamlite.Ast.v with
    | Yamlite.Ast.Map sections ->
      let results =
        List.map
          (fun (section : Yamlite.Ast.entry) ->
            let entity = section.Yamlite.Ast.key in
            let sspan = span path section.Yamlite.Ast.key_line in
            match section.Yamlite.Ast.value.Yamlite.Ast.v with
            | Yamlite.Ast.Map fields ->
              let unknown =
                List.filter_map
                  (fun (f : Yamlite.Ast.entry) ->
                    if List.mem f.Yamlite.Ast.key manifest_keys then None
                    else
                      Some
                        (Diagnostic.make Diagnostic.manifest_error
                           ?suggestion:(did_you_mean manifest_keys f.Yamlite.Ast.key)
                           (span path f.Yamlite.Ast.key_line)
                           (Printf.sprintf "manifest %s: unknown key %S" entity
                              f.Yamlite.Ast.key)))
                  fields
              in
              let field key =
                List.find_opt
                  (fun (f : Yamlite.Ast.entry) -> String.equal f.Yamlite.Ast.key key)
                  fields
              in
              let fspan (f : Yamlite.Ast.entry) = span path f.Yamlite.Ast.key_line in
              let fstr (f : Yamlite.Ast.entry) =
                Yamlite.Value.get_str (Yamlite.Ast.to_value f.Yamlite.Ast.value)
              in
              let enabled_diags =
                match field "enabled" with
                | Some f
                  when Yamlite.Value.get_bool (Yamlite.Ast.to_value f.Yamlite.Ast.value)
                       = None ->
                  [
                    Diagnostic.make Diagnostic.manifest_error (fspan f)
                      (Printf.sprintf "manifest %s: enabled must be a boolean" entity);
                  ]
                | _ -> []
              in
              let cvl_file, cvl_diags =
                match field "cvl_file" with
                | None ->
                  ( None,
                    [
                      Diagnostic.make Diagnostic.manifest_error sspan
                        (Printf.sprintf "manifest %s: cvl_file is required" entity);
                    ] )
                | Some f -> (
                  match fstr f with
                  | Some file -> (Some (file, fspan f), [])
                  | None ->
                    ( None,
                      [
                        Diagnostic.make Diagnostic.manifest_error (fspan f)
                          (Printf.sprintf "manifest %s: cvl_file must be a scalar" entity);
                      ] ))
              in
              let lens, lens_diags =
                match field "lens" with
                | None -> (None, [])
                | Some f -> (
                  match fstr f with
                  | Some l when not (List.mem l ctx.lenses) ->
                    ( None,
                      [
                        Diagnostic.make Diagnostic.unknown_lens (fspan f)
                          ?suggestion:(did_you_mean ctx.lenses l)
                          (Printf.sprintf "manifest %s: lens %S is not in the registry"
                             entity l);
                      ] )
                  | l -> (l, []))
              in
              let rt_diags =
                match field "rule_type" with
                | Some f -> (
                  match fstr f with
                  | Some t when not (List.mem t rule_types) ->
                    [
                      Diagnostic.make Diagnostic.bad_rule_type (fspan f)
                        ?suggestion:(did_you_mean rule_types t)
                        (Printf.sprintf "manifest %s: rule_type %S is not a CVL rule type"
                           entity t);
                    ]
                  | _ -> [])
                | None -> []
              in
              let flaky, flaky_diags =
                match field "flaky_plugins" with
                | None -> ([], [])
                | Some f -> (
                  match Yamlite.Ast.to_value f.Yamlite.Ast.value with
                  | Yamlite.Value.List items ->
                    (List.filter_map Yamlite.Value.get_str items, [])
                  | _ ->
                    ( [],
                      [
                        Diagnostic.make Diagnostic.manifest_error (fspan f)
                          (Printf.sprintf
                             "manifest %s: flaky_plugins must be a list of plugin names"
                             entity);
                      ] ))
              in
              ( unknown @ enabled_diags @ cvl_diags @ lens_diags @ rt_diags @ flaky_diags,
                [ { m_entity = entity; m_cvl_file = cvl_file; m_lens = lens; m_flaky = flaky } ]
              )
            | _ ->
              ( [
                  Diagnostic.make Diagnostic.manifest_error sspan
                    (Printf.sprintf "manifest %s: section must be a mapping" entity);
                ],
                [] ))
          sections
      in
      (List.concat_map fst results, List.concat_map snd results)
    | _ ->
      ( [
          Diagnostic.make Diagnostic.manifest_error
            (span path ast.Yamlite.Ast.line)
            "a manifest must be a mapping of entity sections";
        ],
        [] ))

let lint_corpus ?(ctx = default_context) ~(source : Cvl.Loader.source)
    ?(manifest_path = "manifest.yaml") () =
  let supp = Hashtbl.create 8 in
  match source.Cvl.Loader.load manifest_path with
  | Error msg ->
    [
      Diagnostic.make Diagnostic.missing_rule_file (span manifest_path 0)
        (Printf.sprintf "cannot read manifest %S: %s" manifest_path msg);
    ]
  | Ok text ->
    Hashtbl.replace supp manifest_path (suppressions_of_text text);
    let manifest_diags, entries = lint_manifest ~ctx ~path:manifest_path text in
    let ctx = { ctx with entities = Some (List.map (fun e -> e.m_entity) entries) } in
    let chain_diags =
      List.concat_map
        (fun e ->
          match e.m_cvl_file with
          | None -> []
          | Some (file, ref_span) ->
            let ctx = { ctx with flaky_plugins = e.m_flaky } in
            lint_chain ~ctx ?lens:e.m_lens ~source ~ref_span ~supp file)
        entries
    in
    finish supp (manifest_diags @ chain_diags)
