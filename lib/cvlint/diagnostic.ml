type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 2 | Warning -> 1 | Info -> 0

type code = {
  id : string;
  name : string;
  severity : severity;
  summary : string;
}

let code id name severity summary = { id; name; severity; summary }

let parse_error =
  code "CVL001" "parse-error" Error "the file is not parseable as YAML/CVL"

let manifest_error =
  code "CVL002" "manifest-error" Error "the manifest section is malformed"

let rule_load_error =
  code "CVL003" "rule-load-error" Error "the rule is rejected by the CVL loader"

let missing_rule_file =
  code "CVL004" "missing-rule-file" Error "a cvl_file or parent_cvl_file cannot be read"

let inheritance_cycle =
  code "CVL005" "inheritance-cycle" Error "the parent_cvl_file chain forms a cycle"

let unknown_keyword =
  code "CVL010" "unknown-keyword" Error "the key is not part of the CVL vocabulary"

let misplaced_keyword =
  code "CVL011" "misplaced-keyword" Error "the keyword is not valid for this rule type"

let duplicate_rule_name =
  code "CVL012" "duplicate-rule-name" Error "two rules in the same file share a name"

let shadowed_rule =
  code "CVL013" "shadowed-rule" Info "the rule overrides a parent_cvl_file ancestor"

let conflicting_values =
  code "CVL020" "conflicting-values" Error
    "a value appears in both preferred_value and non_preferred_value"

let presence_only_with_values =
  code "CVL021" "presence-only-with-values" Warning
    "check_presence_only makes the rule's value constraints dead"

let absent_path_with_attributes =
  code "CVL022" "absent-path-with-attributes" Warning
    "should_exist: false makes ownership/permission/file_type unsatisfiable"

let bad_match_spec =
  code "CVL023" "bad-match-spec" Error "the *_value_match spec is not kind,scope"

let bad_regex = code "CVL024" "bad-regex" Error "a regex rule value does not compile"

let match_without_value =
  code "CVL025" "match-without-value" Error
    "a *_value_match is given without the matching *_value list"

let unknown_lens = code "CVL030" "unknown-lens" Error "the lens is not in the registry"

let unknown_script =
  code "CVL031" "unknown-script" Error "the script names no crawler plugin"

let dead_config_path =
  code "CVL032" "dead-config-path" Warning
    "a config_path alternate can never be produced by the declared lens"

let unknown_entity =
  code "CVL033" "unknown-entity" Error
    "the composite expression references an entity absent from the manifest"

let bad_composite_expression =
  code "CVL034" "bad-composite-expression" Error "the composite_rule expression does not parse"

let no_tags = code "CVL040" "no-tags" Warning "the rule carries no tags"

let bad_tag =
  code "CVL041" "bad-tag" Warning "a tag is empty, duplicated, or contains whitespace"

let missing_remediation =
  code "CVL042" "missing-remediation" Warning
    "a high-severity rule lacks suggested_action or a violation description"

let bad_rule_type =
  code "CVL043" "bad-rule-type" Warning "the manifest rule_type is not a CVL rule type"

let flaky_plugin_no_fallback =
  code "CVL050" "flaky-plugin-no-fallback" Warning
    "a script rule uses a plugin the manifest marks flaky without declaring on_plugin_failure"

let malformed_config_path =
  code "CVL060" "malformed-config-path" Error
    "a config_path literal does not parse as a path expression"

let overlapping_rule_queries =
  code "CVL061" "overlapping-rule-queries" Info
    "two rules' config_path queries read nested subtrees of the same forest"

let unsatisfiable_require_probe =
  code "CVL062" "unsatisfiable-require-probe" Warning
    "a require_other_configs probe can never be satisfied, so the rule silently never fires"

let unknown_cluster_aggregator =
  code "CVL070" "unknown-cluster-aggregator" Error
    "the aggregate is not one of equal_across, exists_referent, count, consistent_across"

let cluster_single_frame_query =
  code "CVL071" "cluster-single-frame-query" Warning
    "the frame bounds confine a fleet-scoped rule to at most one frame, so the cross-frame \
     aggregator is vacuous"

let unsatisfiable_referent =
  code "CVL072" "unsatisfiable-referent" Warning
    "the referent set can never contain a value, so every observed value is a violation"

let registry =
  [
    parse_error; manifest_error; rule_load_error; missing_rule_file; inheritance_cycle;
    unknown_keyword; misplaced_keyword; duplicate_rule_name; shadowed_rule;
    conflicting_values; presence_only_with_values; absent_path_with_attributes;
    bad_match_spec; bad_regex; match_without_value; unknown_lens; unknown_script;
    dead_config_path; unknown_entity; bad_composite_expression; no_tags; bad_tag;
    missing_remediation; bad_rule_type; flaky_plugin_no_fallback; malformed_config_path;
    overlapping_rule_queries; unsatisfiable_require_probe; unknown_cluster_aggregator;
    cluster_single_frame_query; unsatisfiable_referent;
  ]

let find_code key =
  List.find_opt (fun c -> String.equal c.id key || String.equal c.name key) registry

type span = { file : string; line : int }

type t = {
  code : code;
  span : span;
  message : string;
  suggestion : string option;
}

let make code ?suggestion span message = { code; span; message; suggestion }

let compare a b =
  let c = String.compare a.span.file b.span.file in
  if c <> 0 then c
  else
    let c = Int.compare a.span.line b.span.line in
    if c <> 0 then c
    else
      let c = String.compare a.code.id b.code.id in
      if c <> 0 then c else String.compare a.message b.message

let sort diags = List.sort_uniq compare diags

let count diags =
  List.fold_left
    (fun (e, w, i) d ->
      match d.code.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) diags

let worst diags =
  List.fold_left
    (fun acc d ->
      match acc with
      | Some s when severity_rank s >= severity_rank d.code.severity -> acc
      | _ -> Some d.code.severity)
    None diags
