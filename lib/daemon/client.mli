(** Client side of the [validated] protocol.

    The transport is pluggable: {!of_channels} wraps any channel pair,
    {!connect} dials a Unix domain socket, and {!in_process} spawns a
    {!Server} loop on the other end of a socketpair in a fresh domain —
    the transport the test suite and the bench use, so the whole
    protocol runs under [dune runtest] without networking flakiness.

    {!connect} and {!in_process} negotiate the wire protocol before
    returning: by default ([`Auto]) the client offers
    {!Protocol.binary_version} and falls back to the v1 JSON framing
    when the server predates the handshake, so old and new ends mix
    freely. After a v2 upgrade, [revalidate] streams arrive as
    incremental deltas spliced against the connection's retained
    baselines — reassembled here, so callers still observe the exact
    verdict sequence v1 would have streamed. *)

type t

(** Wire-protocol preference for {!connect}/{!in_process}. [`Auto]
    offers v2 and accepts whatever the server grants; [`V1] skips the
    handshake entirely (byte-compatible with pre-handshake clients);
    [`V2] demands the binary protocol and fails the connect if the
    server cannot grant it. *)
type protocol = [ `Auto | `V1 | `V2 ]

(** What a v2 delta stream saved. [d_copied] verdicts were spliced from
    the retained baseline instead of crossing the wire; [d_full] marks
    a stream sent in full (no usable baseline, or [~full:true]). Fields
    mirror {!Protocol.V2.epoch_header}. *)
type delta_info = {
  d_frame : string;
  d_epoch : int;
  d_baseline : int;
  d_total : int;
  d_added : int;
  d_changed : int;
  d_removed : int;
  d_copied : int;
  d_full : bool;
}

val of_channels : ?close:(unit -> unit) -> in_channel -> out_channel -> t
(** Wrap raw channels. No handshake is attempted: the client speaks v1
    until {!negotiate} upgrades it. *)

(** Close the transport. Idempotent. For {!in_process} clients this
    also joins the server domain. *)
val close : t -> unit

val version : t -> int
(** The protocol version this connection settled on:
    {!Protocol.json_version} or {!Protocol.binary_version}. *)

(** Run the [hello]/[welcome] handshake per the [protocol] preference.
    Under [`Auto], a server that rejects the op (pre-handshake builds
    answer [error]) leaves the connection on v1 and succeeds. Called
    automatically by {!connect}/{!in_process}. *)
val negotiate : t -> protocol -> (unit, string) result

(** Dial a Unix domain socket. [retry_for] (seconds, default [0]) keeps
    retrying a refused/absent socket under jittered exponential backoff
    — for "start the server in the background, then connect" scripts.
    Delays start at [base_backoff] seconds (default 25ms), double per
    attempt up to [max_backoff] (default 400ms), are scaled by a
    deterministic per-attempt jitter in [0.5, 1.0], and never sleep
    past the total [retry_for] deadline. [now]/[sleep] are injectable
    so tests cover the retry schedule without wall-clock waits.
    [protocol] (default [`Auto]) picks the wire protocol; negotiation
    failure closes the socket and returns [Error]. *)
val connect :
  ?protocol:protocol ->
  ?retry_for:float ->
  ?base_backoff:float ->
  ?max_backoff:float ->
  ?now:(unit -> float) ->
  ?sleep:(float -> unit) ->
  string ->
  (t, string) result

(** Run [serve] for [server] on the other end of a socketpair, in its
    own domain. Raises [Failure] if [protocol] (default [`Auto])
    cannot be negotiated — impossible with an up-to-date {!Server}. *)
val in_process : ?protocol:protocol -> Server.t -> t

(** Send a request and read exactly one reply. *)
val rpc : t -> Protocol.request -> (Protocol.response, string) result

val ping : t -> (unit, string) result
val stats : t -> (Protocol.stats, string) result

(** Returns (entities, rules) after a successful reload. *)
val reload_rules : t -> (int * int, string) result

val shutdown : t -> (unit, string) result

(** Send a streaming request and consume its reply stream: [on_verdict]
    per verdict message, in order, until the summary trailer arrives.
    A server-side [error] reply surfaces as [Error]; an [overloaded]
    shed surfaces as [Error] carrying the queue depth and retry hint.
    Under v2 the stream is reassembled first — copy runs are spliced
    from the connection's retained baseline — so [on_verdict] sees the
    same sequence in the same order as a v1 stream of the same job. *)
val stream :
  t ->
  Protocol.request ->
  on_verdict:(Protocol.verdict -> unit) ->
  (Protocol.summary, string) result

(** {!stream} exposing the v2 machinery: [on_fresh] fires only for
    verdicts that actually crossed the wire (under v1, every verdict),
    and the returned {!delta_info} describes the splice for streams
    that carried an epoch header ([None] for v1 streams and v2 streams
    of non-retainable jobs). *)
val stream_ex :
  t ->
  Protocol.request ->
  on_verdict:(Protocol.verdict -> unit) ->
  on_fresh:(Protocol.verdict -> unit) ->
  (Protocol.summary * delta_info option, string) result

val validate :
  t ->
  on_verdict:(Protocol.verdict -> unit) ->
  Protocol.validate_job ->
  (Protocol.summary, string) result

(** Revalidate an inline frame against the server's retained baseline.
    [full] (default [false]) forces a full stream even when this
    connection could receive a delta. *)
val revalidate :
  ?full:bool ->
  t ->
  on_verdict:(Protocol.verdict -> unit) ->
  Frames.Frame.t ->
  (Protocol.summary, string) result

(** {!revalidate} through {!stream_ex}. *)
val revalidate_ex :
  ?full:bool ->
  ?on_fresh:(Protocol.verdict -> unit) ->
  t ->
  on_verdict:(Protocol.verdict -> unit) ->
  Frames.Frame.t ->
  (Protocol.summary * delta_info option, string) result

(** Like {!revalidate} with the server reading the frame from disk. *)
val revalidate_file :
  ?full:bool ->
  t ->
  on_verdict:(Protocol.verdict -> unit) ->
  string ->
  (Protocol.summary, string) result

(** Watch mode: poll [load] for the current snapshot; the first
    snapshot is validated (alone, silently) to establish the baseline,
    every subsequent {e changed} snapshot is revalidated and reported
    via [on_event] with the delta info of its stream (when any). Stops
    after [max_events] change events and returns how many were
    delivered. [sleep] runs between polls — injectable, so tests drive
    the loop without wall-clock waits; returning [false] stops the
    watch early. [full] forces full streams; [on_verdict] sees every
    reassembled verdict of each event, [on_fresh] only those that
    crossed the wire. *)
val watch :
  t ->
  load:(unit -> (Frames.Frame.t, string) result) ->
  sleep:(unit -> bool) ->
  max_events:int ->
  ?full:bool ->
  ?on_verdict:(Protocol.verdict -> unit) ->
  ?on_fresh:(Protocol.verdict -> unit) ->
  on_event:(Protocol.summary -> delta_info option -> unit) ->
  unit ->
  (int, string) result
