(* Wall-clock budgets for daemon jobs.

   A deadline is captured once at admission and threaded through the
   whole job — frame resolution, engine run, verdict streaming — so a
   single slow stage cannot silently eat the budget of the stages after
   it. [None] means unlimited: the common path pays one option match
   and no clock read.

   The clock is injectable so unit tests can drive expiry without
   sleeping; production callers use [Unix.gettimeofday]. *)

type t = { until : float option; clock : unit -> float }

let default_clock = Unix.gettimeofday

let none = { until = None; clock = default_clock }

let after_ms ?(clock = default_clock) ms =
  { until = Some (clock () +. (float_of_int ms /. 1000.0)); clock }

let of_request ?clock ~default_ms override_ms =
  match (override_ms, default_ms) with
  | Some ms, _ | None, Some ms -> after_ms ?clock ms
  | None, None -> none

let unlimited t = t.until = None

let remaining_ms t =
  match t.until with
  | None -> None
  | Some until -> Some (Float.max 0.0 ((until -. t.clock ()) *. 1000.0))

let expired t =
  match t.until with None -> false | Some until -> t.clock () >= until

let check t ~what =
  if expired t then
    Error
      (Printf.sprintf "deadline exceeded (%s): job budget exhausted" what)
  else Ok ()
