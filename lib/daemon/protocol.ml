type engine = [ `Fused | `Compiled | `Interpreted ]

let engine_to_string = function
  | `Fused -> "fused"
  | `Compiled -> "compiled"
  | `Interpreted -> "interpreted"

let engine_of_string = function
  | "fused" -> Ok `Fused
  | "compiled" -> Ok `Compiled
  | "interpreted" -> Ok `Interpreted
  | s -> Error (Printf.sprintf "unknown engine %S (fused|compiled|interpreted)" s)

type validate_job = {
  frames : Frames.Frame.t list;
  frame_files : string list;
  tags : string list;
  entities : string list;
  engine : engine;
  jobs : int;
  keep_not_applicable : bool option;
  chaos : int option;
  deadline_ms : int option;
}

let job ?(frames = []) ?(frame_files = []) ?(tags = []) ?(entities = []) ?(engine = `Fused)
    ?(jobs = 0) ?keep_not_applicable ?chaos ?deadline_ms () =
  { frames; frame_files; tags; entities; engine; jobs; keep_not_applicable; chaos; deadline_ms }

(* Wire protocol versions: v1 is the framed-JSON protocol every client
   speaks by default; v2 adds the binary fast path below (module {!V2}),
   entered only after an explicit [hello]/[welcome] handshake. *)
let json_version = 1
let binary_version = 2

type request =
  | Ping
  | Hello of { version : int }
  | Validate of validate_job
  | Revalidate of {
      frame : Frames.Frame.t option;
      frame_file : string option;
      deadline_ms : int option;
      full : bool;
    }
  | Reload_rules
  | Stats
  | Shutdown

type verdict = {
  v_entity : string;
  v_frame : string;
  v_rule : string;
  v_verdict : string;
  v_detail : string;
  v_evidence : string list;
}

type summary = {
  s_total : int;
  s_matched : int;
  s_violations : int;
  s_not_present : int;
  s_not_applicable : int;
  s_errors : int;
  s_degraded : bool;
  s_engine : engine;
  s_job_ms : float;
  s_cache_hits : int;
  s_cache_misses : int;
  s_revalidated : string list option;
}

type stats = {
  st_requests : int;
  st_jobs : int;
  st_verdicts : int;
  st_protocol_errors : int;
  st_contained : int;
  st_reloads : int;
  st_entities : int;
  st_rules : int;
  st_retained_frames : int;
  st_p50_ms : float;
  st_p99_ms : float;
  st_mean_ms : float;
  st_verdicts_per_sec : float;
  st_sessions : int;
  st_peak_sessions : int;
  st_shed : int;
  st_deadline_misses : int;
  st_idle_reaped : int;
  st_crashed : int;
  st_v1_connections : int;
  st_v2_connections : int;
  st_v1_bytes_out : int;
  st_v2_bytes_out : int;
  st_delta_streams : int;
  st_delta_copied : int;
}

type response =
  | Pong
  | Welcome of { version : int }
  | Verdict of verdict
  | Summary of summary
  | Stats_reply of stats
  | Reloaded of { entities : int; rules : int }
  | Overloaded of { queue_depth : int; retry_after_ms : int }
  | Error_reply of string
  | Bye

(* ---------------------------------------------------------------- *)
(* JSON encoding                                                     *)
(* ---------------------------------------------------------------- *)

open Jsonlite

let num_i n = Num (float_of_int n)
let str_list xs = Arr (List.map (fun s -> Str s) xs)

(* Omit empty/default fields so captured streams stay readable. *)
let obj fields = Obj (List.filter_map Fun.id fields)
let field k v = Some (k, v)
let opt_field k = function None -> None | Some v -> Some (k, v)

(* The codec's wire vocabulary, kept next to the (de)serializers that
   speak it. docs/PROTOCOL.md must anchor every name (doc gate). *)
let op_names = [ "ping"; "hello"; "validate"; "revalidate"; "reload-rules"; "stats"; "shutdown" ]

let reply_names =
  [ "pong"; "welcome"; "verdict"; "summary"; "stats"; "reloaded"; "overloaded"; "error"; "bye" ]

let request_to_json = function
  | Ping -> Obj [ ("op", Str "ping") ]
  | Hello { version } -> Obj [ ("op", Str "hello"); ("version", num_i version) ]
  | Reload_rules -> Obj [ ("op", Str "reload-rules") ]
  | Stats -> Obj [ ("op", Str "stats") ]
  | Shutdown -> Obj [ ("op", Str "shutdown") ]
  | Validate j ->
      obj
        [
          field "op" (Str "validate");
          (if j.frames = [] then None
           else Some ("frames", Arr (List.map Frames.Codec.to_json j.frames)));
          (if j.frame_files = [] then None else Some ("frame_files", str_list j.frame_files));
          (if j.tags = [] then None else Some ("tags", str_list j.tags));
          (if j.entities = [] then None else Some ("entities", str_list j.entities));
          field "engine" (Str (engine_to_string j.engine));
          (if j.jobs = 0 then None else Some ("jobs", num_i j.jobs));
          opt_field "keep_not_applicable" (Option.map (fun b -> Bool b) j.keep_not_applicable);
          opt_field "chaos" (Option.map num_i j.chaos);
          opt_field "deadline_ms" (Option.map num_i j.deadline_ms);
        ]
  | Revalidate { frame; frame_file; deadline_ms; full } ->
      obj
        [
          field "op" (Str "revalidate");
          opt_field "frame" (Option.map Frames.Codec.to_json frame);
          opt_field "frame_file" (Option.map (fun f -> Str f) frame_file);
          opt_field "deadline_ms" (Option.map num_i deadline_ms);
          (if full then Some ("full", Bool true) else None);
        ]

let verdict_to_json v =
  obj
    [
      field "type" (Str "verdict");
      field "entity" (Str v.v_entity);
      field "frame" (Str v.v_frame);
      field "rule" (Str v.v_rule);
      field "verdict" (Str v.v_verdict);
      field "detail" (Str v.v_detail);
      (if v.v_evidence = [] then None else Some ("evidence", str_list v.v_evidence));
    ]

let summary_to_json s =
  obj
    [
      field "type" (Str "summary");
      field "total" (num_i s.s_total);
      field "matched" (num_i s.s_matched);
      field "violations" (num_i s.s_violations);
      field "not_present" (num_i s.s_not_present);
      field "not_applicable" (num_i s.s_not_applicable);
      field "errors" (num_i s.s_errors);
      field "degraded" (Bool s.s_degraded);
      field "engine" (Str (engine_to_string s.s_engine));
      field "job_ms" (Num s.s_job_ms);
      field "cache_hits" (num_i s.s_cache_hits);
      field "cache_misses" (num_i s.s_cache_misses);
      opt_field "revalidated" (Option.map str_list s.s_revalidated);
    ]

let stats_to_json st =
  Obj
    [
      ("type", Str "stats");
      ("requests", num_i st.st_requests);
      ("jobs", num_i st.st_jobs);
      ("verdicts", num_i st.st_verdicts);
      ("protocol_errors", num_i st.st_protocol_errors);
      ("contained", num_i st.st_contained);
      ("reloads", num_i st.st_reloads);
      ("entities", num_i st.st_entities);
      ("rules", num_i st.st_rules);
      ("retained_frames", num_i st.st_retained_frames);
      ("p50_ms", Num st.st_p50_ms);
      ("p99_ms", Num st.st_p99_ms);
      ("mean_ms", Num st.st_mean_ms);
      ("verdicts_per_sec", Num st.st_verdicts_per_sec);
      ("sessions", num_i st.st_sessions);
      ("peak_sessions", num_i st.st_peak_sessions);
      ("shed", num_i st.st_shed);
      ("deadline_misses", num_i st.st_deadline_misses);
      ("idle_reaped", num_i st.st_idle_reaped);
      ("crashed", num_i st.st_crashed);
      ("v1_connections", num_i st.st_v1_connections);
      ("v2_connections", num_i st.st_v2_connections);
      ("v1_bytes_out", num_i st.st_v1_bytes_out);
      ("v2_bytes_out", num_i st.st_v2_bytes_out);
      ("delta_streams", num_i st.st_delta_streams);
      ("delta_copied", num_i st.st_delta_copied);
    ]

let response_to_json = function
  | Pong -> Obj [ ("type", Str "pong") ]
  | Welcome { version } -> Obj [ ("type", Str "welcome"); ("version", num_i version) ]
  | Bye -> Obj [ ("type", Str "bye") ]
  | Error_reply m -> Obj [ ("type", Str "error"); ("message", Str m) ]
  | Reloaded { entities; rules } ->
      Obj [ ("type", Str "reloaded"); ("entities", num_i entities); ("rules", num_i rules) ]
  | Overloaded { queue_depth; retry_after_ms } ->
      Obj
        [
          ("type", Str "overloaded");
          ("queue_depth", num_i queue_depth);
          ("retry_after_ms", num_i retry_after_ms);
        ]
  | Verdict v -> verdict_to_json v
  | Summary s -> summary_to_json s
  | Stats_reply st -> stats_to_json st

(* ---------------------------------------------------------------- *)
(* JSON decoding                                                     *)
(* ---------------------------------------------------------------- *)

let get_string_field json k =
  match member k json with Some (Str s) -> Some s | _ -> None

let get_int_field json k =
  match member k json with Some (Num n) -> Some (int_of_float n) | _ -> None

let get_float_field json k =
  match member k json with Some (Num n) -> Some n | _ -> None

let get_bool_field json k =
  match member k json with Some (Bool b) -> Some b | _ -> None

let get_strings_field json k =
  match member k json with
  | Some (Arr xs) -> Ok (List.filter_map get_str xs)
  | Some _ -> Error (Printf.sprintf "field %S must be an array of strings" k)
  | None -> Ok []

let ( let* ) = Result.bind

let frames_of_json json =
  match member "frames" json with
  | None -> Ok []
  | Some (Arr xs) ->
      List.fold_left
        (fun acc x ->
          let* acc = acc in
          let* f = Frames.Codec.of_json x in
          Ok (f :: acc))
        (Ok []) xs
      |> Result.map List.rev
  | Some _ -> Error "field \"frames\" must be an array of frame documents"

let validate_of_json json =
  let* frames = frames_of_json json in
  let* frame_files = get_strings_field json "frame_files" in
  let* tags = get_strings_field json "tags" in
  let* entities = get_strings_field json "entities" in
  let* engine =
    match get_string_field json "engine" with
    | None -> Ok `Fused
    | Some s -> engine_of_string s
  in
  let jobs = Option.value ~default:0 (get_int_field json "jobs") in
  let keep_not_applicable = get_bool_field json "keep_not_applicable" in
  let chaos = get_int_field json "chaos" in
  let deadline_ms = get_int_field json "deadline_ms" in
  Ok
    (Validate
       { frames; frame_files; tags; entities; engine; jobs; keep_not_applicable; chaos; deadline_ms })

let revalidate_of_json json =
  let* frame =
    match member "frame" json with
    | None -> Ok None
    | Some doc ->
        let* f = Frames.Codec.of_json doc in
        Ok (Some f)
  in
  let frame_file = get_string_field json "frame_file" in
  let deadline_ms = get_int_field json "deadline_ms" in
  let full = Option.value ~default:false (get_bool_field json "full") in
  match (frame, frame_file) with
  | None, None -> Error "revalidate needs a \"frame\" or a \"frame_file\""
  | Some _, Some _ -> Error "revalidate takes \"frame\" or \"frame_file\", not both"
  | _ -> Ok (Revalidate { frame; frame_file; deadline_ms; full })

let request_of_json json =
  match get_string_field json "op" with
  | Some "ping" -> Ok Ping
  | Some "hello" ->
      Ok (Hello { version = Option.value ~default:json_version (get_int_field json "version") })
  | Some "reload-rules" -> Ok Reload_rules
  | Some "stats" -> Ok Stats
  | Some "shutdown" -> Ok Shutdown
  | Some "validate" -> validate_of_json json
  | Some "revalidate" -> revalidate_of_json json
  | Some op -> Error (Printf.sprintf "unknown op %S" op)
  | None -> Error "request has no \"op\" field"

let req_int json k = Option.value ~default:0 (get_int_field json k)
let req_float json k = Option.value ~default:0.0 (get_float_field json k)
let req_str json k = Option.value ~default:"" (get_string_field json k)

let verdict_of_json json =
  let* v_evidence = get_strings_field json "evidence" in
  Ok
    (Verdict
       {
         v_entity = req_str json "entity";
         v_frame = req_str json "frame";
         v_rule = req_str json "rule";
         v_verdict = req_str json "verdict";
         v_detail = req_str json "detail";
         v_evidence;
       })

let summary_of_json json =
  let* s_engine = engine_of_string (Option.value ~default:"fused" (get_string_field json "engine")) in
  let* s_revalidated =
    match member "revalidated" json with
    | None -> Ok None
    | Some _ ->
        let* xs = get_strings_field json "revalidated" in
        Ok (Some xs)
  in
  Ok
    (Summary
       {
         s_total = req_int json "total";
         s_matched = req_int json "matched";
         s_violations = req_int json "violations";
         s_not_present = req_int json "not_present";
         s_not_applicable = req_int json "not_applicable";
         s_errors = req_int json "errors";
         s_degraded = Option.value ~default:false (get_bool_field json "degraded");
         s_engine;
         s_job_ms = req_float json "job_ms";
         s_cache_hits = req_int json "cache_hits";
         s_cache_misses = req_int json "cache_misses";
         s_revalidated;
       })

let stats_of_json json =
  Ok
    (Stats_reply
       {
         st_requests = req_int json "requests";
         st_jobs = req_int json "jobs";
         st_verdicts = req_int json "verdicts";
         st_protocol_errors = req_int json "protocol_errors";
         st_contained = req_int json "contained";
         st_reloads = req_int json "reloads";
         st_entities = req_int json "entities";
         st_rules = req_int json "rules";
         st_retained_frames = req_int json "retained_frames";
         st_p50_ms = req_float json "p50_ms";
         st_p99_ms = req_float json "p99_ms";
         st_mean_ms = req_float json "mean_ms";
         st_verdicts_per_sec = req_float json "verdicts_per_sec";
         st_sessions = req_int json "sessions";
         st_peak_sessions = req_int json "peak_sessions";
         st_shed = req_int json "shed";
         st_deadline_misses = req_int json "deadline_misses";
         st_idle_reaped = req_int json "idle_reaped";
         st_crashed = req_int json "crashed";
         st_v1_connections = req_int json "v1_connections";
         st_v2_connections = req_int json "v2_connections";
         st_v1_bytes_out = req_int json "v1_bytes_out";
         st_v2_bytes_out = req_int json "v2_bytes_out";
         st_delta_streams = req_int json "delta_streams";
         st_delta_copied = req_int json "delta_copied";
       })

let response_of_json json =
  match get_string_field json "type" with
  | Some "pong" -> Ok Pong
  | Some "welcome" ->
      Ok (Welcome { version = Option.value ~default:json_version (get_int_field json "version") })
  | Some "bye" -> Ok Bye
  | Some "error" -> Ok (Error_reply (req_str json "message"))
  | Some "reloaded" ->
      Ok (Reloaded { entities = req_int json "entities"; rules = req_int json "rules" })
  | Some "overloaded" ->
      Ok
        (Overloaded
           { queue_depth = req_int json "queue_depth"; retry_after_ms = req_int json "retry_after_ms" })
  | Some "verdict" -> verdict_of_json json
  | Some "summary" -> summary_of_json json
  | Some "stats" -> stats_of_json json
  | Some t -> Error (Printf.sprintf "unknown response type %S" t)
  | None -> Error "response has no \"type\" field"

(* ---------------------------------------------------------------- *)
(* Framing                                                           *)
(* ---------------------------------------------------------------- *)

type read_result =
  | Msg of Jsonlite.t
  | Bad_payload of string
  | Truncated of string
  | Closed

(* The framed bytes of one message, for transports that need to mangle
   or chunk the stream (faultsim's I/O shims, the raw client op). *)
let frame_bytes json =
  let payload = Jsonlite.to_string json in
  Printf.sprintf "%d\n%s\n" (String.length payload) payload

let write_message ?(flush = true) oc json =
  output_string oc (frame_bytes json);
  if flush then Stdlib.flush oc

(* An adversarial peer could claim a huge length and make us allocate
   it; cap a single message well above any real job. *)
let max_message_bytes = 512 * 1024 * 1024

let read_message ic =
  match input_line ic with
  | exception End_of_file -> Closed
  | exception Sys_error m -> Truncated m
  | line -> (
      match int_of_string_opt (String.trim line) with
      | None -> Truncated (Printf.sprintf "bad length line %S" (String.trim line))
      | Some n when n < 0 || n > max_message_bytes ->
          Truncated (Printf.sprintf "unreasonable message length %d" n)
      | Some n -> (
          let buf = Bytes.create n in
          match really_input ic buf 0 n with
          | exception End_of_file -> Truncated "message truncated mid-payload"
          | exception Sys_error m -> Truncated m
          | () -> (
              (* the trailing newline; tolerate its absence at EOF, but
                 any other byte means the declared length was wrong *)
              match input_char ic with
              | exception End_of_file | '\n' -> (
                  match Jsonlite.parse (Bytes.to_string buf) with
                  | Ok json -> Msg json
                  | Error e -> Bad_payload (Jsonlite.error_to_string e))
              | c -> Truncated (Printf.sprintf "expected newline after payload, got %C" c))))

let write_request oc req = write_message oc (request_to_json req)

(* Same framing, but the payload renders into a caller-owned scratch
   buffer (reused across messages — no per-message string) and the
   framed byte count comes back for bytes-on-wire accounting. *)
let write_message_buf ~buf ?(flush = true) oc json =
  Buffer.clear buf;
  Jsonlite.to_buffer buf json;
  let len = Buffer.length buf in
  let prefix = string_of_int len in
  output_string oc prefix;
  output_char oc '\n';
  Buffer.output_buffer oc buf;
  output_char oc '\n';
  if flush then Stdlib.flush oc;
  String.length prefix + len + 2

(* Verdicts are never the last message of a stream — the summary (or an
   error) trailer always follows and flushes — so they ride the channel
   buffer instead of paying a syscall each. Terminal replies flush. *)
let write_response oc resp =
  match resp with
  | Verdict _ -> write_message ~flush:false oc (response_to_json resp)
  | _ -> write_message oc (response_to_json resp)

let write_response_buf ~buf oc resp =
  match resp with
  | Verdict _ -> write_message_buf ~buf ~flush:false oc (response_to_json resp)
  | _ -> write_message_buf ~buf oc (response_to_json resp)

let read_response ic =
  match read_message ic with
  | Msg json -> response_of_json json
  | Bad_payload m -> Error (Printf.sprintf "malformed response payload: %s" m)
  | Truncated m -> Error (Printf.sprintf "response stream truncated: %s" m)
  | Closed -> Error "connection closed by server"

(* ---------------------------------------------------------------- *)
(* Protocol v2: binary fast path                                     *)
(* ---------------------------------------------------------------- *)

(* After a [hello]/[welcome] handshake grants v2, every subsequent
   message in both directions is one binary frame:

     frame ::= tag:u8  length:u32le  payload[length]

   Verdicts — the hot path — are five intern-table ordinals plus the
   evidence list, so a steady-state verdict costs ~30 bytes and zero
   JSON work. Every string (entity, frame id, rule, severity, detail,
   evidence) is sent once in an [intern] frame and referenced by
   ordinal afterwards. Everything that is not a verdict (requests,
   summaries, stats, errors) rides in a [json] frame whose payload is
   the v1 JSON document — the residual path.

   Classification mirrors v1: a well-framed payload that cannot be
   decoded (unknown tag, ordinal past the intern table, short payload)
   is [Bad] — the stream is still synchronized and the peer may answer
   with an error and continue. A broken header or a payload cut short
   is [Truncated] — fatal for the connection. *)
module V2 = struct
  let version = binary_version

  (* Doc-gate vocabulary, like [op_names]/[reply_names]: one name per
     frame tag, anchored in docs/PROTOCOL.md. *)
  let frame_names = [ "json"; "intern"; "verdict"; "copy"; "epoch" ]

  (* Delta streams open with one [epoch] header: which frame id the
     stream describes, the epoch being streamed, the connection epoch
     it builds on ([e_baseline], 0 for a full stream), and the shape of
     the reassembled set. [e_delta = false] announces a full stream the
     client should retain as its new baseline. *)
  type epoch_header = {
    e_frame : string;
    e_epoch : int;
    e_baseline : int;
    e_total : int;
    e_added : int;
    e_changed : int;
    e_removed : int;
    e_delta : bool;
  }

  type frame =
    | Json of Jsonlite.t
    | Verdict_frame of verdict
    | Copy of { start : int; count : int }  (** splice [count] baseline verdicts from [start] *)
    | Epoch of epoch_header

  let add_u32 buf n =
    Buffer.add_char buf (Char.unsafe_chr (n land 0xff));
    Buffer.add_char buf (Char.unsafe_chr ((n lsr 8) land 0xff));
    Buffer.add_char buf (Char.unsafe_chr ((n lsr 16) land 0xff));
    Buffer.add_char buf (Char.unsafe_chr ((n lsr 24) land 0xff))

  (* ---- encoder: one writer per connection direction ---- *)

  type writer = {
    interned : (string, int) Hashtbl.t;
    mutable next_ordinal : int;
    scratch : Buffer.t;  (* reused for json payload rendering *)
  }

  let writer () = { interned = Hashtbl.create 256; next_ordinal = 0; scratch = Buffer.create 512 }

  (* Returns the ordinal for [s], emitting its [intern] frame first the
     one time the string is new to this stream. *)
  let intern w buf s =
    match Hashtbl.find_opt w.interned s with
    | Some ord -> ord
    | None ->
        let ord = w.next_ordinal in
        w.next_ordinal <- ord + 1;
        Hashtbl.add w.interned s ord;
        Buffer.add_char buf 'I';
        add_u32 buf (String.length s);
        Buffer.add_string buf s;
        ord

  (* verdict payload: entity frame rule verdict detail (u32 ordinals),
     evidence count (u32), then one u32 ordinal per evidence line *)
  let add_verdict w buf v =
    let entity = intern w buf v.v_entity in
    let frame = intern w buf v.v_frame in
    let rule = intern w buf v.v_rule in
    let verdict = intern w buf v.v_verdict in
    let detail = intern w buf v.v_detail in
    let evidence = List.map (intern w buf) v.v_evidence in
    Buffer.add_char buf 'V';
    add_u32 buf (24 + (4 * List.length evidence));
    add_u32 buf entity;
    add_u32 buf frame;
    add_u32 buf rule;
    add_u32 buf verdict;
    add_u32 buf detail;
    add_u32 buf (List.length evidence);
    List.iter (add_u32 buf) evidence

  let add_json w buf json =
    Buffer.clear w.scratch;
    Jsonlite.to_buffer w.scratch json;
    Buffer.add_char buf 'J';
    add_u32 buf (Buffer.length w.scratch);
    Buffer.add_buffer buf w.scratch

  let add_copy buf ~start ~count =
    Buffer.add_char buf 'C';
    add_u32 buf 8;
    add_u32 buf start;
    add_u32 buf count

  let add_epoch w buf h =
    let frame = intern w buf h.e_frame in
    Buffer.add_char buf 'E';
    add_u32 buf 29;
    add_u32 buf frame;
    add_u32 buf h.e_epoch;
    add_u32 buf h.e_baseline;
    add_u32 buf h.e_total;
    add_u32 buf h.e_added;
    add_u32 buf h.e_changed;
    add_u32 buf h.e_removed;
    Buffer.add_char buf (if h.e_delta then '\001' else '\000')

  let add_request w buf req = add_json w buf (request_to_json req)

  let add_response w buf = function
    | Verdict v -> add_verdict w buf v
    | resp -> add_json w buf (response_to_json resp)

  (* ---- decoder ---- *)

  type reader = { mutable table : string array; mutable count : int }

  let reader () = { table = Array.make 64 ""; count = 0 }

  let learn rd s =
    if rd.count = Array.length rd.table then begin
      let bigger = Array.make (2 * Array.length rd.table) "" in
      Array.blit rd.table 0 bigger 0 rd.count;
      rd.table <- bigger
    end;
    rd.table.(rd.count) <- s;
    rd.count <- rd.count + 1

  type read =
    | Frame of frame
    | Bad of string  (** well-framed but undecodable; stream still synchronized *)
    | Truncated of string  (** framing broken: drop the connection *)
    | Closed

  let u32 s off =
    Char.code s.[off]
    lor (Char.code s.[off + 1] lsl 8)
    lor (Char.code s.[off + 2] lsl 16)
    lor (Char.code s.[off + 3] lsl 24)

  exception Bad_frame of string

  let bad fmt = Printf.ksprintf (fun m -> raise (Bad_frame m)) fmt

  let resolve rd ord =
    if ord >= 0 && ord < rd.count then rd.table.(ord)
    else bad "intern ordinal %d out of range (table holds %d)" ord rd.count

  (* Decode one well-framed payload. [`Intern] is table maintenance the
     read loops consume silently; a decode failure inside the payload is
     [`Bad] because the framing itself was sound. *)
  let decode rd tag payload =
    let len = String.length payload in
    try
      match tag with
      | 'I' ->
          learn rd payload;
          `Intern
      | 'J' -> (
          match Jsonlite.parse payload with
          | Ok json -> `Frame (Json json)
          | Error e -> `Bad ("json frame: " ^ Jsonlite.error_to_string e))
      | 'V' ->
          if len < 24 then bad "verdict frame too short (%d bytes)" len;
          let evidence_count = u32 payload 20 in
          if len <> 24 + (4 * evidence_count) then
            bad "verdict frame length %d does not fit %d evidence ordinal(s)" len evidence_count;
          let s off = resolve rd (u32 payload off) in
          let v_evidence = List.init evidence_count (fun i -> s (24 + (4 * i))) in
          `Frame
            (Verdict_frame
               {
                 v_entity = s 0;
                 v_frame = s 4;
                 v_rule = s 8;
                 v_verdict = s 12;
                 v_detail = s 16;
                 v_evidence;
               })
      | 'C' ->
          if len <> 8 then bad "copy frame must be 8 bytes, got %d" len;
          `Frame (Copy { start = u32 payload 0; count = u32 payload 4 })
      | 'E' ->
          if len <> 29 then bad "epoch frame must be 29 bytes, got %d" len;
          `Frame
            (Epoch
               {
                 e_frame = resolve rd (u32 payload 0);
                 e_epoch = u32 payload 4;
                 e_baseline = u32 payload 8;
                 e_total = u32 payload 12;
                 e_added = u32 payload 16;
                 e_changed = u32 payload 20;
                 e_removed = u32 payload 24;
                 e_delta = payload.[28] <> '\000';
               })
      | c -> `Bad (Printf.sprintf "unknown v2 frame tag %C" c)
    with Bad_frame m -> `Bad m

  let read_frame rd ic =
    let rec next () =
      match input_char ic with
      | exception End_of_file -> Closed
      | exception Sys_error m -> Truncated m
      | tag -> (
          let hdr = Bytes.create 4 in
          match really_input ic hdr 0 4 with
          | exception End_of_file -> Truncated "v2 frame truncated mid-header"
          | exception Sys_error m -> Truncated m
          | () -> (
              let len = u32 (Bytes.unsafe_to_string hdr) 0 in
              if len < 0 || len > max_message_bytes then
                Truncated (Printf.sprintf "unreasonable v2 frame length %d" len)
              else
                let payload = Bytes.create len in
                match really_input ic payload 0 len with
                | exception End_of_file -> Truncated "v2 frame truncated mid-payload"
                | exception Sys_error m -> Truncated m
                | () -> (
                    match decode rd tag (Bytes.unsafe_to_string payload) with
                    | `Intern -> next ()
                    | `Frame f -> Frame f
                    | `Bad m -> Bad m)))
    in
    next ()

  (* Same state machine over an in-memory byte string — what the fuzz
     tests and the codec micro-benchmark drive, so they exercise the
     exact decoder the channel reader uses. [pos] advances past every
     consumed byte. *)
  let read_frame_string rd src pos =
    let total = String.length src in
    let rec next () =
      let p = !pos in
      if p >= total then Closed
      else if total - p < 5 then begin
        pos := total;
        Truncated "v2 frame truncated mid-header"
      end
      else
        let tag = src.[p] in
        let len = u32 src (p + 1) in
        if len < 0 || len > max_message_bytes then begin
          pos := total;
          Truncated (Printf.sprintf "unreasonable v2 frame length %d" len)
        end
        else if total - p - 5 < len then begin
          pos := total;
          Truncated "v2 frame truncated mid-payload"
        end
        else begin
          let payload = String.sub src (p + 5) len in
          pos := p + 5 + len;
          match decode rd tag payload with
          | `Intern -> next ()
          | `Frame f -> Frame f
          | `Bad m -> Bad m
        end
    in
    next ()
end
