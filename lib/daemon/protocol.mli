(** Wire protocol of the [validated] daemon.

    Two protocol versions share this codec. {b v1} — the wire default
    every client speaks without negotiation — is length-prefixed JSON
    messages over any byte stream:

    {v
      message  ::=  <decimal byte length of payload> "\n" <payload> "\n"
      payload  ::=  one JSON document (compact, no raw newlines)
    v}

    The length prefix gives the reader an exact read size — no
    scanning, no ambiguity about embedded newlines — while the trailing
    ["\n"] keeps a captured stream greppable as JSON lines. A response
    to [validate]/[revalidate] is a {e stream}: one [verdict] message
    per result, in the engine's deterministic order, then exactly one
    [summary] trailer. Everything else is a single reply message.

    {b v2} — module {!V2} — is the binary fast path a client enters by
    sending [hello] and receiving a [welcome] granting version 2 (both
    always v1-framed). After the upgrade, every message in both
    directions is one binary frame with a per-stream string-interning
    table; see {!V2} for the layout and the incremental-delta frames.

    Reader errors distinguish recoverable from fatal in both versions:
    a well-framed but undecodable payload ({!Bad_payload} / {!V2.Bad})
    leaves the stream synchronized — the peer can answer with an error
    and keep going — while broken framing ({!Truncated} /
    {!V2.Truncated}) means nobody knows where the next message starts,
    so the connection must be dropped (the server itself stays up). *)

val json_version : int
(** 1 — the framed-JSON protocol, the wire default. *)

val binary_version : int
(** 2 — the {!V2} binary fast path, entered by handshake only. *)

type engine = [ `Fused | `Compiled | `Interpreted ]

val engine_to_string : engine -> string
val engine_of_string : string -> (engine, string) result

(** One validation job. [frames] are inline snapshots; [frame_files]
    are paths the server reads ({!Frames.Codec} documents). [entities]
    and [tags] filter the ruleset ([[]] = no filter). [jobs = 0] uses
    the server's persistent pool; [jobs > 0] shards with that many
    domains for this job only. [keep_not_applicable = None] applies the
    engine default (keep iff the deployment has a single frame).
    [chaos] arms a seeded fault plan for this job only. [deadline_ms]
    caps the job's wall-clock budget, overriding the server-wide
    [--deadline-ms] default; expiry yields an error reply, never a
    silent drop. *)
type validate_job = {
  frames : Frames.Frame.t list;
  frame_files : string list;
  tags : string list;
  entities : string list;
  engine : engine;
  jobs : int;
  keep_not_applicable : bool option;
  chaos : int option;
  deadline_ms : int option;
}

(** [job ()] is a default job: no frames, no filters, fused engine,
    server pool, engine-default NA handling, no chaos, no per-request
    deadline. *)
val job :
  ?frames:Frames.Frame.t list ->
  ?frame_files:string list ->
  ?tags:string list ->
  ?entities:string list ->
  ?engine:engine ->
  ?jobs:int ->
  ?keep_not_applicable:bool ->
  ?chaos:int ->
  ?deadline_ms:int ->
  unit ->
  validate_job

type request =
  | Ping
  | Hello of { version : int }
      (** version negotiation: the highest protocol version the client
          speaks. Answered with {!Welcome} carrying the granted
          version. Always v1-framed — it is what decides whether the
          connection upgrades. *)
  | Validate of validate_job
  | Revalidate of {
      frame : Frames.Frame.t option;
      frame_file : string option;
      deadline_ms : int option;
      full : bool;
          (** under v2, force a full verdict stream even when the
              connection holds a baseline epoch to delta against;
              ignored (always full) under v1 *)
    }
      (** exactly one of [frame]/[frame_file]; diffed against the
          daemon's retained snapshot of the same frame id *)
  | Reload_rules
  | Stats
  | Shutdown

(** One streamed result — the same six observables
    {!Cvl.Engine.result} carries, stringified the way the one-shot CLI
    does, so byte-identity with [Validator.run] is checkable field by
    field. *)
type verdict = {
  v_entity : string;
  v_frame : string;
  v_rule : string;
  v_verdict : string;  (** {!Cvl.Engine.verdict_to_string} *)
  v_detail : string;
  v_evidence : string list;
}

(** Trailer of a [validate]/[revalidate] stream. *)
type summary = {
  s_total : int;
  s_matched : int;
  s_violations : int;
  s_not_present : int;
  s_not_applicable : int;
  s_errors : int;
  s_degraded : bool;
  s_engine : engine;
  s_job_ms : float;  (** server-side wall time for the job *)
  s_cache_hits : int;  (** {!Cvl.Normcache} delta across this job *)
  s_cache_misses : int;
  s_revalidated : string list option;
      (** [revalidate] only: entities actually re-evaluated *)
}

type stats = {
  st_requests : int;  (** every request served, pings included *)
  st_jobs : int;  (** validate + revalidate jobs *)
  st_verdicts : int;  (** verdict messages streamed *)
  st_protocol_errors : int;
  st_contained : int;  (** jobs that failed and were contained *)
  st_reloads : int;
  st_entities : int;
  st_rules : int;
  st_retained_frames : int;  (** revalidation baselines held *)
  st_p50_ms : float;  (** per-job latency percentiles *)
  st_p99_ms : float;
  st_mean_ms : float;
  st_verdicts_per_sec : float;  (** sustained, over busy time *)
  st_sessions : int;  (** connections currently open *)
  st_peak_sessions : int;
  st_shed : int;  (** jobs refused with [Overloaded] *)
  st_deadline_misses : int;  (** jobs cut off by their budget *)
  st_idle_reaped : int;  (** connections reaped for idleness *)
  st_crashed : int;  (** sessions contained by the supervisor *)
  st_v1_connections : int;
      (** sessions that spoke v1 only, counted when they close *)
  st_v2_connections : int;
      (** sessions upgraded to v2, counted at the handshake *)
  st_v1_bytes_out : int;  (** reply bytes written to v1 sessions *)
  st_v2_bytes_out : int;  (** reply bytes written to v2 sessions *)
  st_delta_streams : int;  (** revalidate streams answered as deltas *)
  st_delta_copied : int;
      (** verdicts spliced from connection baselines instead of re-sent *)
}

type response =
  | Pong
  | Welcome of { version : int }  (** reply to {!Hello}: the granted version *)
  | Verdict of verdict
  | Summary of summary
  | Stats_reply of stats
  | Reloaded of { entities : int; rules : int }
  | Overloaded of { queue_depth : int; retry_after_ms : int }
      (** explicit load-shed: the admission queue is full. [queue_depth]
          counts jobs running + waiting at refusal time; [retry_after_ms]
          is a backoff hint from recent job latencies. *)
  | Error_reply of string
  | Bye

val op_names : string list
(** Every request ["op"] string the codec accepts, in dispatch order.
    The doc gate ([tools/check_lint.exe]) checks each appears in
    [docs/PROTOCOL.md]. *)

val reply_names : string list
(** Every response ["type"] string the codec emits. Anchored in
    [docs/PROTOCOL.md] like {!op_names}. *)

val request_to_json : request -> Jsonlite.t
val request_of_json : Jsonlite.t -> (request, string) result
val response_to_json : response -> Jsonlite.t
val response_of_json : Jsonlite.t -> (response, string) result

(** Outcome of reading one framed message. *)
type read_result =
  | Msg of Jsonlite.t
  | Bad_payload of string  (** framed correctly, payload not JSON *)
  | Truncated of string  (** framing broken: stream desynchronized *)
  | Closed  (** clean EOF at a message boundary *)

val frame_bytes : Jsonlite.t -> string
(** The exact framed bytes {!write_message} would emit — for transports
    that chunk, truncate, or otherwise mangle the stream (faultsim's
    I/O fault shims, the CLI [raw] op). *)

(** [flush] (default [true]) may be disabled for messages that are
    always followed by another on the same channel. *)
val write_message : ?flush:bool -> out_channel -> Jsonlite.t -> unit

(** Like {!write_message}, but the payload renders into [buf] — a
    caller-owned scratch buffer reused across messages, so the encode
    hot path allocates no intermediate string — and the framed byte
    count comes back for bytes-on-wire accounting. *)
val write_message_buf : buf:Buffer.t -> ?flush:bool -> out_channel -> Jsonlite.t -> int

val read_message : in_channel -> read_result
val write_request : out_channel -> request -> unit

(** Verdict messages are buffered (the summary/error trailer that ends
    every stream flushes them); every other response flushes. *)
val write_response : out_channel -> response -> unit

(** {!write_response} through {!write_message_buf}: same flush policy,
    reused scratch buffer, returns the framed byte count. *)
val write_response_buf : buf:Buffer.t -> out_channel -> response -> int

(** [read_response ic] is {!read_message} plus decoding; [Bad_payload]
    and an undecodable response both surface as [Error]. *)
val read_response : in_channel -> (response, string) result

(** Protocol v2: the binary fast path.

    Entered only after a {!Hello}/{!Welcome} handshake grants version
    {!binary_version}; from then on every message in both directions is
    one frame:

    {v
      frame ::= tag:u8  length:u32le  payload[length]
    v}

    Five tags ({!frame_names}): [intern] ([I]) defines the next string
    ordinal for this stream; [verdict] ([V]) is five ordinals plus an
    evidence-ordinal list — the hot path; [copy] ([C]) splices a run of
    verdicts from the connection's retained baseline; [epoch] ([E])
    opens a retainable or delta stream; [json] ([J]) carries any other
    request/reply as a v1 JSON payload. Writers own the intern table
    for the direction they encode; readers learn it frame by frame. *)
module V2 : sig
  val version : int
  (** = {!binary_version} *)

  val frame_names : string list
  (** One name per frame tag, in tag order [J I V C E] — anchored in
      [docs/PROTOCOL.md] by the doc gate like {!op_names}. *)

  (** Opens a verdict stream that the client can retain or splice.
      [e_frame] is the frame id the stream describes; [e_epoch] the
      connection-local epoch being streamed; [e_baseline] the epoch a
      delta builds on (0 for a full stream). [e_total] is the size of
      the reassembled set, split as [e_added]/[e_changed] fresh
      verdicts and [e_total - e_added - e_changed] baseline copies;
      [e_removed] counts baseline verdicts absent from the new set.
      [e_delta = false] announces a full stream to retain. *)
  type epoch_header = {
    e_frame : string;
    e_epoch : int;
    e_baseline : int;
    e_total : int;
    e_added : int;
    e_changed : int;
    e_removed : int;
    e_delta : bool;
  }

  type frame =
    | Json of Jsonlite.t
    | Verdict_frame of verdict
    | Copy of { start : int; count : int }
    | Epoch of epoch_header

  (** Encoder state: the intern table for one direction of one
      connection, plus a reused scratch buffer. *)
  type writer

  val writer : unit -> writer

  (** Encoders append complete frames (intern definitions first, as
      needed) to a caller-owned output buffer. *)

  val add_verdict : writer -> Buffer.t -> verdict -> unit

  val add_json : writer -> Buffer.t -> Jsonlite.t -> unit
  val add_copy : Buffer.t -> start:int -> count:int -> unit
  val add_epoch : writer -> Buffer.t -> epoch_header -> unit
  val add_request : writer -> Buffer.t -> request -> unit
  val add_response : writer -> Buffer.t -> response -> unit

  (** Decoder state: the intern table learned from the peer. *)
  type reader

  val reader : unit -> reader

  type read =
    | Frame of frame
    | Bad of string
        (** well-framed but undecodable (unknown tag, ordinal past the
            intern table, payload of the wrong shape): the stream is
            still synchronized *)
    | Truncated of string  (** framing broken: drop the connection *)
    | Closed  (** clean EOF at a frame boundary *)

  (** Read one client-visible frame, consuming intern definitions
      silently. *)
  val read_frame : reader -> in_channel -> read

  (** The same decoder over an in-memory byte string: [pos] advances
      past every consumed byte. What the fuzz tests and the codec
      micro-benchmark drive. *)
  val read_frame_string : reader -> string -> int ref -> read
end
