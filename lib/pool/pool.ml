(* Gang-scheduled domain pool.

   Each map call publishes one task closure under [mutex] and bumps
   [generation]; workers waiting on [work] pick it up, run it until the
   task's internal chunk counter is exhausted, and decrement [active].
   The caller executes chunks too, then blocks on [done_] until every
   worker that joined the task has left it. A worker that wakes up
   after the chunks are gone simply finds the counter exhausted (or
   [task = None]) and goes back to sleep, so stragglers cannot corrupt
   a later call's results. *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  (* One parallel map at a time: [task] is a single published slot, so
     two callers racing it from different domains would overwrite each
     other's closures. Concurrent callers (daemon sessions) serialize
     here; the sequential fast paths below never touch it. *)
  caller : Mutex.t;
  work : Condition.t;
  done_ : Condition.t;
  mutable task : (unit -> unit) option;
  mutable generation : int;
  mutable active : int;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let jobs t = t.jobs

let worker t =
  let last = ref 0 in
  Mutex.lock t.mutex;
  let rec loop () =
    if t.stop then Mutex.unlock t.mutex
    else if t.generation = !last then begin
      Condition.wait t.work t.mutex;
      loop ()
    end
    else begin
      last := t.generation;
      match t.task with
      | None -> loop ()
      | Some f ->
        t.active <- t.active + 1;
        Mutex.unlock t.mutex;
        f ();
        Mutex.lock t.mutex;
        t.active <- t.active - 1;
        if t.active = 0 then Condition.broadcast t.done_;
        loop ()
    end
  in
  loop ()

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      caller = Mutex.create ();
      work = Condition.create ();
      done_ = Condition.create ();
      task = None;
      generation = 0;
      active = 0;
      stop = false;
      domains = [];
    }
  in
  t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let sequential = create ~jobs:1

let default_jobs () = Domain.recommended_domain_count ()

let shutdown t =
  let domains =
    Mutex.lock t.mutex;
    let ds = t.domains in
    t.stop <- true;
    t.domains <- [];
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    ds
  in
  List.iter Domain.join domains

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Per-item containment: every slot gets either its result or the
   exception its own [f] raised. A failing item never poisons the
   results of unrelated items — chunks keep draining, and all slots are
   filled before the caller sees anything. *)
let map_array_results_exclusive t f arr =
  let n = Array.length arr in
  let out = Array.make n None in
  (* More chunks than executors keeps the tail balanced when item costs
     differ; chunk boundaries are index arithmetic, never allocation. *)
  let nchunks = min n (4 * t.jobs) in
  let next = Atomic.make 0 in
  let body () =
    let rec drain () =
      let c = Atomic.fetch_and_add next 1 in
      if c < nchunks then begin
        for i = c * n / nchunks to ((c + 1) * n / nchunks) - 1 do
          out.(i) <-
            Some
              (try Ok (f arr.(i))
               with e -> Error (e, Printexc.get_raw_backtrace ()))
        done;
        drain ()
      end
    in
    drain ()
  in
  Mutex.lock t.mutex;
  t.task <- Some body;
  t.generation <- t.generation + 1;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  body ();
  Mutex.lock t.mutex;
  while t.active > 0 do
    Condition.wait t.done_ t.mutex
  done;
  t.task <- None;
  Mutex.unlock t.mutex;
  Array.map Option.get out

let map_array_results t f arr =
  Mutex.lock t.caller;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.caller)
    (fun () -> map_array_results_exclusive t f arr)

let map_array t f arr =
  let results = map_array_results t f arr in
  (* The lowest-index failure is re-raised regardless of which worker
     hit it first, so the escaping exception is deterministic. *)
  Array.iter
    (function Error (e, bt) -> Printexc.raise_with_backtrace e bt | Ok _ -> ())
    results;
  Array.map (function Ok v -> v | Error _ -> assert false) results

let map_results t f xs =
  match xs with
  | [] -> []
  | _ ->
    let wrap x = try Ok (f x) with e -> Error e in
    if t.jobs <= 1 || t.domains = [] then List.map wrap xs
    else
      Array.to_list (map_array_results t f (Array.of_list xs))
      |> List.map (function Ok v -> Ok v | Error (e, _) -> Error e)

let map t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
    if t.jobs <= 1 || t.domains = [] then List.map f xs
    else Array.to_list (map_array t f (Array.of_list xs))

let concat_map t f xs = List.concat (map t f xs)

let iter t f xs = ignore (map t (fun x -> f x) xs)
