(** Fixed-size domain pool for data-parallel validation.

    A pool owns [jobs - 1] worker domains (the caller participates as
    the [jobs]-th executor), created once and reused across every
    {!map}/{!concat_map} call — the per-target amortization the paper's
    production deployment applies to rule loading, applied here to
    domain spawning. With [jobs <= 1] no domains are spawned and every
    operation degrades to its sequential [List] equivalent, so callers
    can thread a pool unconditionally.

    Work is sharded into contiguous chunks claimed from an atomic
    counter, so imbalanced items (one heavyweight frame among many
    light ones) do not serialize the run. Results are written into a
    pre-sized array slot per item: output order is the input order, by
    construction, independent of the number of jobs — the determinism
    guarantee {!Cvl.Validator.run_loaded} builds on.

    Pools are safe to share across domains: concurrent {!map} calls on
    the same pool (daemon sessions validating at once) serialize on an
    internal caller lock — each parallel phase runs alone, in caller
    arrival order. They are still not reentrant: calling {!map} from
    inside a function being mapped by the same pool deadlocks (the
    sequential [jobs <= 1] paths excepted). Exceptions raised by [f]
    are contained per item: a raising item cannot poison the results of
    unrelated items. {!map_results} exposes the per-item outcomes;
    {!map} completes every item and then re-raises the lowest-index
    failure (with its backtrace) on the calling domain. *)

type t

(** [create ~jobs] spawns [max 0 (jobs - 1)] worker domains.
    [jobs <= 1] (and [jobs = 1] in particular) yields a pool that runs
    everything on the calling domain. *)
val create : jobs:int -> t

(** Number of executors (workers + caller); at least 1. *)
val jobs : t -> int

(** A shared zero-worker pool; [map sequential f] is [List.map f]. *)
val sequential : t

(** [Domain.recommended_domain_count], for [-j 0] style "auto". *)
val default_jobs : unit -> int

(** Order-preserving parallel map. If any item raises, every other
    item still completes and the lowest-index exception is re-raised. *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list

(** Like {!map}, but exceptions raised by [f] are returned in place as
    [Error] instead of escaping, one slot per input item. *)
val map_results : t -> ('a -> 'b) -> 'a list -> ('b, exn) result list

(** [concat_map t f xs] is [List.concat (map t f xs)]. *)
val concat_map : t -> ('a -> 'b list) -> 'a list -> 'b list

(** Parallel iteration (no result, same sharding). *)
val iter : t -> ('a -> unit) -> 'a list -> unit

(** Stop and join the worker domains. The pool remains usable
    afterwards, falling back to sequential execution. Idempotent. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards, including on exceptions. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a
