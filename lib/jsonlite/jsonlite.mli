(** Minimal JSON parser and printer.

    Used by the docker [daemon.json] lens, docker-inspect documents in
    the container simulator, and the machine-readable report output.
    Full RFC 8259 syntax except that surrogate-pair [\u] escapes decode
    to ['?'] (no Unicode table in this sealed build; configuration data
    is ASCII in practice). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

type error = { pos : int; message : string }

exception Parse_error of error

val equal : t -> t -> bool
val parse : string -> (t, error) result

(** @raise Parse_error on malformed input. *)
val parse_exn : string -> t

val error_to_string : error -> string

(** Compact rendering. *)
val to_string : t -> string

(** Compact rendering appended to a caller-owned buffer — the
    allocation-free path message encoders reuse one buffer across
    calls with ([to_string] is [to_buffer] into a fresh buffer). *)
val to_buffer : Buffer.t -> t -> unit

(** Two-space indented rendering with a trailing newline. *)
val pretty : t -> string

val member : string -> t -> t option
val get_str : t -> string option
val get_bool : t -> bool option
val get_num : t -> float option
val get_arr : t -> t list option
