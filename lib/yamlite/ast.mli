(** Line-annotated parse trees.

    {!Parse.ast} and {!Parse.multi_ast} return the same structure as
    {!Value.t} but with every node carrying the 1-based physical line it
    started on, and every mapping entry carrying the line of its key.
    {!to_value} erases the annotations; the plain {!Parse.string} API is
    implemented as parse-to-AST followed by erasure, so both views are
    guaranteed to agree.

    Consumers that report source positions (the CVL linter) read the
    annotated view; everything else keeps using {!Value.t}. *)

type t = {
  line : int;  (** physical line (1-based) the node starts on *)
  v : node;
}

and node =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Map of entry list

and entry = {
  key : string;
  key_line : int;  (** line the key itself appears on *)
  value : t;
}

val to_value : t -> Value.t

(** Mapping entry lookup; [None] for non-maps and absent keys. *)
val find : string -> t -> entry option

(** Keys of a mapping in document order with their lines; [[]] for
    non-maps. *)
val keys : t -> (string * int) list
