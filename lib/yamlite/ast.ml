type t = {
  line : int;
  v : node;
}

and node =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Map of entry list

and entry = {
  key : string;
  key_line : int;
  value : t;
}

let rec to_value t =
  match t.v with
  | Null -> Value.Null
  | Bool b -> Value.Bool b
  | Int i -> Value.Int i
  | Float f -> Value.Float f
  | Str s -> Value.Str s
  | List items -> Value.List (List.map to_value items)
  | Map entries -> Value.Map (List.map (fun e -> (e.key, to_value e.value)) entries)

let find key t =
  match t.v with
  | Map entries -> List.find_opt (fun e -> String.equal e.key key) entries
  | Null | Bool _ | Int _ | Float _ | Str _ | List _ -> None

let keys t =
  match t.v with
  | Map entries -> List.map (fun e -> (e.key, e.key_line)) entries
  | Null | Bool _ | Int _ | Float _ | Str _ | List _ -> []
