(** Parser for the YAML subset used by CVL documents.

    Supported: block mappings and sequences, flow sequences [[a, b]] and
    mappings [{a: b}], single- and double-quoted scalars, plain scalars,
    ['#'] comments, [|] literal and [>] folded block scalars, [---]
    document separators.

    Deliberate deviations from YAML 1.1:
    - only [true]/[false] (any case) are booleans. [yes]/[no]/[on]/[off]
      remain strings, because CVL rules routinely assert on the literal
      words [no] or [yes] (e.g. [preferred_value: ["no"]] for
      [PermitRootLogin]) and silently coercing them corrupts rules;
    - anchors, aliases, tags and complex keys are not supported;
    - duplicate mapping keys are an error rather than last-wins. *)

type error = { line : int; message : string }

exception Parse_error of error

val error_to_string : error -> string

(** Parse a single document. An empty (or comment-only) input is
    [Value.Null]. *)
val string : string -> (Value.t, error) result

(** @raise Parse_error on malformed input. *)
val string_exn : string -> Value.t

(** Parse a [---]-separated stream of documents. *)
val multi : string -> (Value.t list, error) result

(** {2 Positioned parses}

    The same grammar, but returning the line-annotated {!Ast.t} view.
    [string]/[multi] are erasures of these, so positions and plain
    values always agree. *)

val ast : string -> (Ast.t, error) result

(** @raise Parse_error on malformed input. *)
val ast_exn : string -> Ast.t

val multi_ast : string -> (Ast.t list, error) result
