(** The CVL vocabulary: the paper's 46 keywords across entity
    description and the five rule types (§3.2: "CVL has a total of 46
    keywords across all rule types and entity description. A
    configuration rule typically has no more than ten keywords."), plus
    this implementation's fleet-scoped cluster group.

    Grouping mirrors the paper: keywords common across rules (20 — the
    manifest/entity keys, tags, the value-to-match keys, and the output
    descriptions), then per-rule-type keywords: config tree (9), schema
    (6), path (6), script (4), composite (3), cluster (8). *)

type group =
  | Common
  | Tree
  | Schema
  | Path
  | Script
  | Composite
  | Cluster

val group_to_string : group -> string

(** All keywords with their group and a one-line meaning. *)
val all : (string * group * string) list

val is_keyword : string -> bool
val group_of : string -> group option

(** Keywords legal in a rule of the given group: its own plus [Common].
    (Script rules additionally borrow [config_path] and
    [not_present_pass] from the tree group; cluster rules borrow
    [config_path], [file_context] and [value_separator].) *)
val allowed_in : group -> string list

val count : int
val count_in_group : group -> int

(** Bounded Levenshtein distance: the exact distance when it is at most
    [limit], any value greater than [limit] otherwise. *)
val distance : limit:int -> string -> string -> int

(** [nearest k] is the keyword closest to [k] by edit distance, with the
    distance, when one is within distance 3 — the linter's
    "did you mean" source. [nearest k = Some (k, 0)] for a keyword. *)
val nearest : string -> (string * int) option
