(** Loading CVL rule files.

    A CVL file is YAML in one of three accepted shapes:
    - a list of rule mappings;
    - a mapping with a [rules:] list (optionally preceded by
      [parent_cvl_file:] for inheritance);
    - a [---]-separated stream of rule mappings.

    Rule type is determined by the discriminator key present:
    [config_name] (tree), [config_schema_name] (schema), [path_name]
    (path), [script_name] (script), [composite_rule_name] (composite).

    Validation is strict: a key that is not a CVL keyword, or not legal
    for the rule's type, is an error naming the offending rule — this is
    most of what "usable" means for non-expert rule writers.

    Inheritance (paper §3.2): when a file names a [parent_cvl_file],
    the parent's rules are loaded first; a child rule whose name matches
    a parent rule {e overrides} it key-by-key (so a child can replace
    just [preferred_value], or set [disabled: true] to switch the parent
    rule off) and new child rules are appended. Chains are followed
    transitively; cycles are detected and reported. *)

(** Resolves a rule-file path to its text: from disk, or from the
    embedded ruleset corpus. *)
type source = { load : string -> (string, string) result }

(** A source backed by an association list (embedded rulesets). *)
val assoc_source : (string * string) list -> source

(** A source reading the real filesystem, for the CLI. *)
val file_source : root:string -> source

(** Parse rule text directly (no inheritance resolution: a
    [parent_cvl_file] key is an error here). *)
val parse_rules : string -> (Rule.t list, string) result

(** Load a rule file through [source], following parent chains. *)
val load_file : source -> string -> (Rule.t list, string) result

(** Parse one YAML rule mapping. *)
val rule_of_yaml : Yamlite.Value.t -> (Rule.t, string) result

(** Parse one rule from its key/value fields (the erased form of a
    {!Raw.rule}). *)
val rule_of_map : (string * Yamlite.Value.t) list -> (Rule.t, string) result

(** {2 Positioned rule maps}

    The linter's view of a rule file: the same three accepted document
    shapes, with every rule and field carrying the physical line it was
    written on (threaded from {!Yamlite.Parse.multi_ast}). The loader's
    own [shapes_of_text] is an erasure of this, so the two views cannot
    drift. *)
module Raw : sig
  type field = { key : string; key_line : int; value : Yamlite.Value.t }
  type rule = { line : int; fields : field list }

  type doc = {
    parent : string option;
    parent_line : int;  (** line of the [parent_cvl_file:] key; [0] if absent *)
    rules : rule list;
  }

  type err = { err_line : int; err_msg : string }

  val to_map : rule -> (string * Yamlite.Value.t) list
  val field : rule -> string -> field option
  val of_text : string -> (doc, err) result
end
