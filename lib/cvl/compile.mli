(** Ahead-of-time rule compilation: lower loaded CVL rules into
    executable {e programs}, once per [load_rules], instead of
    re-deriving paths, match specs, regexes, queries and plugin lookups
    on every (entity, frame, rule) evaluation.

    Compilation
    - parses every [config_path] / [require_other_configs] literal to a
      {!Configtree.Path.t} — malformed literals become {!diagnostic}s
      instead of the interpreter's silent empty match, while runtime
      results stay byte-identical (the program still contributes no
      nodes for them);
    - resolves match specs to {!Matcher.compile}d closures (regexes
      compiled, case folding done once);
    - pre-parses schema row queries and composite expressions, and
      resolves script plugins;
    - routes tree queries through the per-forest {!Configtree.Index};
    - indexes programs by tag for {!select}.

    The program/interpreter equivalence — byte-identical results at
    every job count — is asserted by the differential tests over the
    embedded corpus and scenario suite. *)

type diagnostic = {
  entity : string;
  rule : string;
  field : string;  (** the CVL keyword holding the literal *)
  literal : string;
  message : string;
}

val diagnostic_to_string : diagnostic -> string

(** One compiled plain rule: the original rule plus its execution
    closure. [ordinal] is its position among the entity's plain rules
    (the dispatch index key). *)
type program = {
  rule : Rule.t;
  ordinal : int;
  exec : Engine.entity_ctx -> Engine.result;
}

type entity_programs = {
  entry : Manifest.entry;
  rules : Rule.t list;  (** the original loaded list, composites included *)
  programs : program list;  (** plain rules, original order *)
  composites : (Rule.t * (Expr.t, string) result) list;
      (** composite rules with their expression pre-parsed *)
  clusters : Cluster.lowered list;
      (** fleet-scoped rules with their query plans pre-built; malformed
          path literals surface in [diagnostics] *)
  by_tag : (string, int list) Hashtbl.t;
}

type t = {
  entities : entity_programs list;
  diagnostics : diagnostic list;
}

(** The compile-time path parser, shared with cvlint's CVL060
    (malformed config_path literal) check. *)
val check_path_literal : string -> (Configtree.Path.t, string) result

(** {2 Lowering helpers shared with the fused planner}

    {!Fuse} re-derives per-rule queries when building the shared
    evaluation plan; these are the same lowerings [compile] performs,
    minus diagnostics (which [compile] already recorded). *)

(** The well-formed executable paths of a tree rule
    ([config_path ^ "/" ^ name]), in [config_paths] order; malformed
    literals are skipped, exactly as the compiled program skips them. *)
val tree_query_paths : Rule.tree_rule -> Configtree.Path.t list

(** The well-formed [script_config_paths], in order. *)
val script_query_paths : Rule.script_rule -> Configtree.Path.t list

(** The [require_other_configs] gate as (rooted, [**]-prefixed) path
    pairs; [None] when any label is malformed, which compiles the whole
    gate to the constant [false]. *)
val requires_pairs :
  Rule.tree_rule -> (Configtree.Path.t * Configtree.Path.t) list option

(** [Matcher.compile]d expectation closures, as used by every compiled
    execution plan. *)
val preferred_fn :
  ?case_insensitive:bool -> Rule.expectation option -> (string list -> bool) option

val non_preferred_fn :
  ?case_insensitive:bool -> Rule.expectation option -> (string list -> string list) option

(** Compile a loaded corpus (the [Validator.load_rules] shape). Never
    fails: malformed literals degrade to diagnostics plus
    interpreter-equivalent runtime behaviour. *)
val compile : (Manifest.entry * Rule.t list) list -> t

(** Programs and pre-parsed composites carrying at least one of [tags]
    (everything when [tags] is empty), in original rule order, resolved
    through the tag index. *)
val select :
  tags:string list ->
  entity_programs ->
  program list * (Rule.t * (Expr.t, string) result) list

(** Lowered cluster rules carrying at least one of [tags] (everything
    when [tags] is empty), in original rule order. *)
val select_clusters : tags:string list -> entity_programs -> Cluster.lowered list

(** Run one program. Equivalent to [Engine.eval_rule ctx p.rule],
    faster. *)
val run_program : Engine.entity_ctx -> program -> Engine.result
