(* Whole-ruleset query fusion.

   Compiled programs (see [Compile]) still answer each rule's path
   queries independently: N tree rules over one frame forest mean N
   separate descents, re-walking shared prefixes — and every [**] rule
   re-descends the entire forest. Fusion merges all of an entity's
   well-formed path queries (tree [config_path/name] hits, the
   [require_other_configs] probes, script output paths) into ONE
   [Configtree.Index.Plan] prefix trie; the first rule that needs any
   query drives a single shared walk over the forest, and every rule
   then reads its matched node sets out of the memoized result table.

   Cross-rule common subexpressions are shared the same way:
   - schema rules with identical (constraints, values, columns) share
     one select+project per table, memoized per evaluation cell;
   - script rules subscribing to the same plugin share one execution of
     the plugin *body* per cell via [Resilience.run_plugin ?shared] —
     the retry/breaker state machine still replays per rule, so a
     shared call that trips the breaker yields exactly the per-rule
     [Engine_error] verdicts (and health counters) unshared execution
     would have produced.

   Everything downstream of node location reuses the verdict cores and
   [Matcher]-compiled closures of the compiled engine, so interpreted,
   compiled and fused results are byte-identical (the differential
   suite asserts it across jobs, tags and chaos seeds). *)

module Index = Configtree.Index

(* Table identity is physical: normalized tables are shared by the
   content-addressed cache, and a re-parse produces a new table. *)
module Tbl_tbl = Hashtbl.Make (struct
  type t = Configtree.Table.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

(* Per-(entity, frame) evaluation state: the CSE memos. Created once
   per validator cell and shared by every rule of that cell; must not
   outlive the cell (plugin outcomes and table identities are only
   stable within one). Shared tree-walk results need no per-cell state:
   they live in the per-forest index's plan memo. *)
type state = {
  plugin_memo : Resilience.plugin_memo;
  schema_memo : (int, (string list list, string) result) Hashtbl.t Tbl_tbl.t;
      (* table -> query-signature id -> select+project outcome *)
}

let new_state () =
  { plugin_memo = Resilience.plugin_memo (); schema_memo = Tbl_tbl.create 8 }

type program = {
  rule : Rule.t;
  ordinal : int;
  exec : state -> Engine.entity_ctx -> Engine.result;
}

type entity_plan = {
  entry : Manifest.entry;
  base : Compile.entity_programs;  (* tag index, composites, rule list *)
  programs : program array;  (* ordinal-indexed, parallel to [base.programs] *)
  plan : Index.Plan.plan option;  (* None when the entity has no path queries *)
}

type t = {
  entities : entity_plan list;
  diagnostics : Compile.diagnostic list;
}

let results_for plan forest = Index.run_plan (Index.for_forest forest) plan

let nodes_of_qids plan qids =
  match qids with
  | [] -> fun _ -> []
  | qids ->
    fun forest ->
      let rs = results_for plan forest in
      List.concat_map (fun q -> rs.(q)) qids

(* What each program contributes to the shared plan, gathered before
   the trie exists. *)
type outline =
  | Plain  (* disabled / path / composite: the compiled exec is already optimal *)
  | Tree of Rule.tree_rule * int list * (int * int) list option
  | Schema of Rule.schema_rule * int  (* query-signature id *)
  | Script of Rule.script_rule * int list

let fuse_entity (ep : Compile.entity_programs) =
  (* Dedup queries by path text so N rules asking the same path share
     one query id (and the trie inserts it once). *)
  let qid_by_text = Hashtbl.create 64 in
  let rev_paths = ref [] in
  let npaths = ref 0 in
  let add_path p =
    let key = Configtree.Path.to_string p in
    match Hashtbl.find_opt qid_by_text key with
    | Some q -> q
    | None ->
      let q = !npaths in
      incr npaths;
      Hashtbl.add qid_by_text key q;
      rev_paths := p :: !rev_paths;
      q
  in
  let sig_by_query = Hashtbl.create 8 in
  let sig_of (r : Rule.schema_rule) =
    let key = (r.Rule.query_constraints, r.Rule.query_constraints_value, r.Rule.query_columns) in
    match Hashtbl.find_opt sig_by_query key with
    | Some i -> i
    | None ->
      let i = Hashtbl.length sig_by_query in
      Hashtbl.add sig_by_query key i;
      i
  in
  let outlines =
    List.map
      (fun (p : Compile.program) ->
        if Rule.is_disabled p.Compile.rule then Plain
        else
          match p.Compile.rule with
          | Rule.Tree r ->
            let qids = List.map add_path (Compile.tree_query_paths r) in
            let rpairs =
              Option.map
                (List.map (fun (a, b) -> (add_path a, add_path b)))
                (Compile.requires_pairs r)
            in
            Tree (r, qids, rpairs)
          | Rule.Schema r -> Schema (r, sig_of r)
          | Rule.Script r -> Script (r, List.map add_path (Compile.script_query_paths r))
          | Rule.Path _ | Rule.Composite _ | Rule.Cluster _ -> Plain)
      ep.Compile.programs
  in
  let plan =
    if !npaths = 0 then None
    else Some (Index.Plan.build (Array.of_list (List.rev !rev_paths)))
  in
  let tree_exec (r : Rule.tree_rule) qids rpairs : Engine.tree_exec =
    let case_insensitive = r.Rule.case_insensitive in
    let te_nodes =
      match plan with None -> (fun _ -> []) | Some plan -> nodes_of_qids plan qids
    in
    let te_requires =
      match (rpairs, plan) with
      | None, _ -> fun _ -> false  (* some label malformed: gate is constant *)
      | Some [], _ -> fun _ -> true
      | Some _, None -> assert false  (* pairs imply planned paths *)
      | Some pairs, Some plan ->
        fun forest ->
          let rs = results_for plan forest in
          List.for_all (fun (rooted, deep) -> rs.(rooted) <> [] || rs.(deep) <> []) pairs
    in
    {
      Engine.te_nodes;
      te_requires;
      te_preferred = Compile.preferred_fn ~case_insensitive r.Rule.preferred;
      te_non_preferred = Compile.non_preferred_fn ~case_insensitive r.Rule.non_preferred;
    }
  in
  let schema_exec (r : Rule.schema_rule) sig_id =
    let rows = Engine.schema_rows r in
    let se_preferred = Compile.preferred_fn r.Rule.schema_preferred in
    let se_non_preferred = Compile.non_preferred_fn r.Rule.schema_non_preferred in
    fun state ->
      {
        Engine.se_rows =
          (fun table ->
            let per_table =
              match Tbl_tbl.find_opt state.schema_memo table with
              | Some m -> m
              | None ->
                let m = Hashtbl.create 4 in
                Tbl_tbl.add state.schema_memo table m;
                m
            in
            match Hashtbl.find_opt per_table sig_id with
            | Some r -> r
            | None ->
              let r = rows table in
              Hashtbl.add per_table sig_id r;
              r);
        se_preferred;
        se_non_preferred;
      }
  in
  let script_exec (r : Rule.script_rule) qids =
    let sc_plugin = Crawler.find_plugin r.Rule.plugin in
    let sc_nodes =
      match plan with None -> (fun _ -> []) | Some plan -> nodes_of_qids plan qids
    in
    let sc_preferred = Compile.preferred_fn r.Rule.script_preferred in
    let sc_non_preferred = Compile.non_preferred_fn r.Rule.script_non_preferred in
    fun state ->
      {
        Engine.sc_plugin;
        sc_run = (fun frame plugin -> Resilience.run_plugin ~shared:state.plugin_memo ~frame plugin);
        sc_nodes;
        sc_preferred;
        sc_non_preferred;
      }
  in
  let programs =
    List.map2
      (fun (p : Compile.program) outline ->
        let exec =
          match outline with
          | Plain -> fun _ ctx -> Compile.run_program ctx p
          | Tree (r, qids, rpairs) ->
            let x = tree_exec r qids rpairs in
            fun _ ctx -> Engine.eval_tree_core ctx p.Compile.rule r x
          | Schema (r, sig_id) ->
            let mk = schema_exec r sig_id in
            fun st ctx -> Engine.eval_schema_core ctx p.Compile.rule r (mk st)
          | Script (r, qids) ->
            let mk = script_exec r qids in
            fun st ctx -> Engine.eval_script_core ctx p.Compile.rule r (mk st)
        in
        { rule = p.Compile.rule; ordinal = p.Compile.ordinal; exec })
      ep.Compile.programs outlines
  in
  { entry = ep.Compile.entry; base = ep; programs = Array.of_list programs; plan }

let fuse (compiled : Compile.t) =
  {
    entities = List.map fuse_entity compiled.Compile.entities;
    diagnostics = compiled.Compile.diagnostics;
  }

(* Tag dispatch delegates to [Compile.select] (same tag index, same
   order) and maps the chosen ordinals onto the fused programs. The
   shared plan still contains deselected rules' queries — walking them
   is pure, and their result slots simply go unread. *)
let select ~tags fp =
  let programs, composites = Compile.select ~tags fp.base in
  (List.map (fun (p : Compile.program) -> fp.programs.(p.Compile.ordinal)) programs, composites)

let run_program state ctx (p : program) = p.exec state ctx
