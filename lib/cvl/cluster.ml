(* Fleet-scoped rule evaluation: a cluster rule's query runs per frame
   (through the same Index.Plan trie the fused engine uses, so each
   frame's forest is walked once for all of the rule's paths), then a
   cross-frame aggregator judges the whole deployment at once.

   All output is canonicalized — participants sorted by frame id, value
   sets [sort_uniq]ed — so a verdict is a pure function of the *set* of
   frames, independent of arrival order. The property tests pin this. *)

let aggregators = [ "equal_across"; "exists_referent"; "count"; "consistent_across" ]

type issue = {
  field : string;
  literal : string;
  message : string;
}

type lowered = {
  rule : Rule.t;
  cr : Rule.cluster_rule;
  plan : Configtree.Index.Plan.plan option;
  nquery : int;
}

let lower rule (cr : Rule.cluster_rule) =
  let issues = ref [] in
  let parse field literal =
    match Configtree.Path.parse literal with
    | Ok p -> Some p
    | Error message ->
      issues := { field; literal; message } :: !issues;
      None
  in
  let config_paths = List.filter_map (parse "config_path") cr.Rule.cluster_config_paths in
  let referent = Option.bind cr.Rule.referent_config_path (parse "referent_config_path") in
  let queries = config_paths @ Option.to_list referent in
  let plan =
    match queries with [] -> None | qs -> Some (Configtree.Index.Plan.build (Array.of_list qs))
  in
  ({ rule; cr; plan; nquery = List.length config_paths }, List.rev !issues)

(* Same fallback logic as the engine's per-frame describe; duplicated
   here because cluster verdicts are built outside an [entity_ctx]. *)
let describe (c : Rule.common) (verdict : Engine.verdict) =
  let fallback =
    match verdict with
    | Engine.Matched ->
      Printf.sprintf "%s: configuration matches the preferred value" c.Rule.name
    | Engine.Not_matched ->
      Printf.sprintf "%s: configuration does not match the preferred value" c.Rule.name
    | Engine.Not_present -> Printf.sprintf "%s: configuration not present" c.Rule.name
    | Engine.Not_applicable -> Printf.sprintf "%s: not applicable" c.Rule.name
    | Engine.Engine_error { message; _ } -> Printf.sprintf "%s: %s" c.Rule.name message
  in
  let configured =
    match verdict with
    | Engine.Matched -> c.Rule.matched_description
    | Engine.Not_matched -> c.Rule.not_matched_description
    | Engine.Not_present -> c.Rule.not_present_description
    | Engine.Not_applicable | Engine.Engine_error _ -> ""
  in
  if configured = "" then fallback else configured

let split_values sep raw =
  match sep with
  | Some s when String.length s = 1 ->
    List.concat_map
      (fun v -> String.split_on_char s.[0] v |> List.map String.trim |> List.filter (( <> ) ""))
      raw
  | Some _ | None -> raw

(* One frame's view of the rule: did any config path match, and with
   which (canonical) value set. *)
type observation = {
  fid : string;
  ctx : Engine.entity_ctx;
  participates : bool;
  values : string list;
  referent_values : string list;
}

let observe lw (ctx : Engine.entity_ctx) =
  let fid = Frames.Frame.id ctx.Engine.frame in
  match lw.plan with
  | None -> { fid; ctx; participates = false; values = []; referent_values = [] }
  | Some plan ->
    let forests = Engine.trees_in_context ctx lw.cr.Rule.cluster_file_context in
    let nodes = ref 0 in
    let raw = ref [] in
    let raw_ref = ref [] in
    List.iter
      (fun (_path, forest) ->
        let table = Configtree.Index.run_plan (Configtree.Index.for_forest forest) plan in
        Array.iteri
          (fun qid hits ->
            if qid < lw.nquery then begin
              nodes := !nodes + List.length hits;
              List.iter
                (fun (n : Configtree.Tree.t) ->
                  match n.Configtree.Tree.value with
                  | Some v -> raw := v :: !raw
                  | None -> ())
                hits
            end
            else
              List.iter
                (fun (n : Configtree.Tree.t) ->
                  match n.Configtree.Tree.value with
                  | Some v -> raw_ref := v :: !raw_ref
                  | None -> ())
                hits)
          table)
      forests;
    let sep = lw.cr.Rule.cluster_value_separator in
    {
      fid;
      ctx;
      participates = !nodes > 0;
      values = List.sort_uniq String.compare (split_values sep (List.rev !raw));
      referent_values = List.sort_uniq String.compare (split_values sep (List.rev !raw_ref));
    }

let eval ~deployment_id ~entity lw ctxs =
  let cr = lw.cr in
  let c = cr.Rule.cluster_common in
  let mk verdict ~detail ~evidence =
    { Engine.entity; frame_id = deployment_id; rule = lw.rule; verdict; detail; evidence }
  in
  if Rule.is_disabled lw.rule then
    mk Engine.Not_applicable ~detail:(Printf.sprintf "%s: disabled" c.Rule.name) ~evidence:[]
  else if not (List.mem cr.Rule.aggregate aggregators) then
    let v =
      Engine.Engine_error
        {
          stage = Resilience.Evaluate;
          message = Printf.sprintf "unknown cluster aggregate %S" cr.Rule.aggregate;
        }
    in
    mk v ~detail:(describe c v) ~evidence:[]
  else
    let obs =
      List.sort (fun a b -> String.compare a.fid b.fid) (List.map (observe lw) ctxs)
    in
    let total = List.length obs in
    let participants = List.filter (fun o -> o.participates) obs in
    let p = List.length participants in
    let participants_line =
      Printf.sprintf "participants: %s (%d/%d frames)"
        (match participants with
        | [] -> "none"
        | ps -> String.concat ", " (List.map (fun o -> o.fid) ps))
        p total
    in
    let frame_lines =
      List.map (fun o -> Printf.sprintf "%s: [%s]" o.fid (String.concat "; " o.values)) participants
    in
    let bounds_ok =
      (match cr.Rule.min_frames with Some m -> p >= m | None -> true)
      && match cr.Rule.max_frames with Some m -> p <= m | None -> true
    in
    let bounds_text =
      match (cr.Rule.min_frames, cr.Rule.max_frames) with
      | Some a, Some b ->
        Printf.sprintf "expected between %d and %d participating frame(s), found %d" a b p
      | Some a, None -> Printf.sprintf "expected at least %d participating frame(s), found %d" a p
      | None, Some b -> Printf.sprintf "expected at most %d participating frame(s), found %d" b p
      | None, None -> Printf.sprintf "found %d participating frame(s)" p
    in
    if total = 0 then
      mk Engine.Not_applicable
        ~detail:(Printf.sprintf "%s: no frames to evaluate" c.Rule.name)
        ~evidence:[]
    else if p = 0 && cr.Rule.aggregate <> "count" then
      mk Engine.Not_present ~detail:(describe c Engine.Not_present)
        ~evidence:[ participants_line ]
    else if not bounds_ok then
      mk Engine.Not_matched ~detail:(describe c Engine.Not_matched)
        ~evidence:((participants_line :: frame_lines) @ [ bounds_text ])
    else
      match cr.Rule.aggregate with
      | "count" ->
        mk Engine.Matched ~detail:(describe c Engine.Matched)
          ~evidence:((participants_line :: frame_lines) @ [ bounds_text ])
      | "equal_across" ->
        let sets = List.sort_uniq compare (List.map (fun o -> o.values) participants) in
        if List.length sets <= 1 then
          mk Engine.Matched ~detail:(describe c Engine.Matched)
            ~evidence:(participants_line :: frame_lines)
        else
          mk Engine.Not_matched ~detail:(describe c Engine.Not_matched)
            ~evidence:
              ((participants_line :: frame_lines)
              @ [ Printf.sprintf "%d distinct value set(s) across the fleet" (List.length sets) ])
      | "exists_referent" ->
        (* The referent set: fleet-wide values under referent_config_path
           when given (every frame contributes, participant or not),
           otherwise the fleet's frame ids. *)
        let referent =
          match cr.Rule.referent_config_path with
          | Some _ ->
            List.sort_uniq String.compare (List.concat_map (fun o -> o.referent_values) obs)
          | None -> List.sort_uniq String.compare (List.map (fun o -> o.fid) obs)
        in
        let unknown =
          List.sort_uniq String.compare
            (List.concat_map
               (fun o -> List.filter (fun v -> not (List.mem v referent)) o.values)
               participants)
        in
        let ref_line = Printf.sprintf "referent set: [%s]" (String.concat "; " referent) in
        if unknown = [] then
          mk Engine.Matched ~detail:(describe c Engine.Matched)
            ~evidence:((participants_line :: frame_lines) @ [ ref_line ])
        else
          mk Engine.Not_matched ~detail:(describe c Engine.Not_matched)
            ~evidence:
              ((participants_line :: frame_lines)
              @ [
                  ref_line;
                  Printf.sprintf "unknown referent value(s): %s" (String.concat "; " unknown);
                ])
      | "consistent_across" ->
        let key = Option.value cr.Rule.group_by ~default:"" in
        let group_of o =
          match Engine.lookup_config_value o.ctx ~key ~subpath:None with
          | Some g -> g
          | None -> "(ungrouped)"
        in
        let groups =
          List.fold_left
            (fun acc o ->
              let g = group_of o in
              match List.assoc_opt g acc with
              | Some os -> (g, o :: os) :: List.remove_assoc g acc
              | None -> (g, [ o ]) :: acc)
            [] participants
          |> List.map (fun (g, os) -> (g, List.rev os))
          |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        in
        let group_lines =
          List.map
            (fun (g, os) ->
              let sets = List.sort_uniq compare (List.map (fun o -> o.values) os) in
              (List.length sets > 1,
               Printf.sprintf "group %S: %d frame(s), %d value set(s)" g (List.length os)
                 (List.length sets)))
            groups
        in
        let inconsistent = List.exists fst group_lines in
        let verdict = if inconsistent then Engine.Not_matched else Engine.Matched in
        mk verdict ~detail:(describe c verdict)
          ~evidence:((participants_line :: frame_lines) @ List.map snd group_lines)
      | _ -> assert false
