type outcome =
  | Fixed of string
  | Skipped of string

type report = {
  entity : string;
  rule_name : string;
  outcome : outcome;
}

let pp_report fmt r =
  match r.outcome with
  | Fixed what -> Format.fprintf fmt "fixed   %s/%s: %s" r.entity r.rule_name what
  | Skipped why -> Format.fprintf fmt "skipped %s/%s: %s" r.entity r.rule_name why

(* ------------------------------------------------------------------ *)
(* Tree editing                                                        *)
(* ------------------------------------------------------------------ *)

(* Literal path segments only; remediation skips wildcard paths. *)
let literal_segments path_text =
  if path_text = "" then Some []
  else
    let segs = String.split_on_char '/' path_text in
    if List.exists (fun s -> s = "" || s = "*" || s = "**" || String.contains s '[') segs then None
    else Some segs

(* Does the section chain exist in the forest? *)
let rec chain_exists (forest : Configtree.Tree.t list) = function
  | [] -> true
  | seg :: rest ->
    List.exists
      (fun (n : Configtree.Tree.t) -> n.label = seg && chain_exists n.children rest)
      forest

(* Apply [update] to the leaves labelled [leaf_name] under the section
   chain [segs], creating sections along the way when needed.
   [update (Some node)] rewrites an existing leaf ([None] deletes it);
   [update None] may synthesize a missing leaf. *)
let rec edit_forest (forest : Configtree.Tree.t list) segs ~leaf_name ~update =
  match segs with
  | [] ->
    let existing = List.exists (fun (n : Configtree.Tree.t) -> n.label = leaf_name) forest in
    if existing then
      List.filter_map
        (fun (n : Configtree.Tree.t) -> if n.label = leaf_name then update (Some n) else Some n)
        forest
    else (
      match update None with
      | Some leaf -> forest @ [ leaf ]
      | None -> forest)
  | seg :: rest ->
    let has_section = List.exists (fun (n : Configtree.Tree.t) -> n.label = seg) forest in
    if has_section then
      List.map
        (fun (n : Configtree.Tree.t) ->
          if n.label = seg then { n with Configtree.Tree.children = edit_forest n.children rest ~leaf_name ~update }
          else n)
        forest
    else forest @ [ Configtree.Tree.section seg (edit_forest [] rest ~leaf_name ~update) ]

(* ------------------------------------------------------------------ *)
(* Value synthesis                                                     *)
(* ------------------------------------------------------------------ *)

(* Recover "key value" or "key = value" from a backquoted snippet in
   suggested_action, e.g. "Set `MaxAuthTries 4` in sshd_config." *)
let hint_value ~key (c : Rule.common) =
  let text = c.Rule.suggested_action in
  match String.index_opt text '`' with
  | None -> None
  | Some start -> (
    match String.index_from_opt text (start + 1) '`' with
    | None -> None
    | Some stop ->
      let snippet = String.sub text (start + 1) (stop - start - 1) in
      let snippet =
        let s = String.trim snippet in
        if String.length s > 0 && s.[String.length s - 1] = ';' then
          String.trim (String.sub s 0 (String.length s - 1))
        else s
      in
      let kl = String.length key in
      if String.length snippet > kl && String.sub snippet 0 kl = key then begin
        let rest = String.trim (String.sub snippet kl (String.length snippet - kl)) in
        let rest =
          if String.length rest > 0 && rest.[0] = '=' then
            String.trim (String.sub rest 1 (String.length rest - 1))
          else rest
        in
        if rest = "" then None else Some rest
      end
      else None)

let violates_non_preferred (r : Rule.tree_rule) value =
  match r.Rule.non_preferred with
  | Some e ->
    Matcher.satisfies ~case_insensitive:r.Rule.case_insensitive e.Rule.match_spec
      ~rule_values:e.Rule.values ~config_value:value
  | None -> false

type tree_fix =
  | Set of string  (** replace the value (or insert) *)
  | Append of string  (** extend the existing value (or insert) *)
  | Delete  (** remove offending leaves *)
  | No_fix of string

let tree_fix_of (r : Rule.tree_rule) =
  let c = r.Rule.tree_common in
  let key = c.Rule.name in
  match r.Rule.preferred with
  | Some { Rule.values = v :: _ as values; match_spec } -> (
    match match_spec.Matcher.kind with
    | Matcher.Exact -> Set v
    | Matcher.Substr ->
      if r.Rule.non_preferred <> None || match_spec.Matcher.scope = Matcher.All then
        Set (String.concat " " values)
      else Append v
    | Matcher.Regex -> (
      match hint_value ~key c with
      | Some v -> Set v
      | None -> No_fix "cannot synthesize a value from a regex expectation"))
  | Some { Rule.values = []; _ } -> No_fix "empty preferred value list"
  | None ->
    (* A hint recovered from "Remove `key = bad`" would re-set the bad
       value, so hints that violate non_preferred are rejected, and
       delete-style rules are handled before hints. *)
    let safe_hint () =
      match hint_value ~key c with
      | Some v when not (violates_non_preferred r v) -> Some v
      | Some _ | None -> None
    in
    if r.Rule.non_preferred <> None && r.Rule.not_present_pass then Delete
    else if r.Rule.check_presence_only then Set (Option.value (safe_hint ()) ~default:"")
    else (
      match safe_hint () with
      | Some v -> Set v
      | None -> No_fix "no preferred value and no usable suggested_action hint")

(* ------------------------------------------------------------------ *)
(* Per-file plumbing                                                   *)
(* ------------------------------------------------------------------ *)

let lens_for (entry : Manifest.entry) path =
  match entry.Manifest.lens with
  | Some name -> Lenses.Registry.find name
  | None -> Lenses.Registry.for_path path

(* Files of the entity visible to a rule, with their lens. *)
let rule_files frame (entry : Manifest.entry) ~file_context =
  Crawler.find_config_files frame ~search_paths:entry.Manifest.search_paths ~patterns:[]
  |> List.filter (fun (e : Crawler.extracted) ->
         file_context = []
         || List.exists (fun p -> Crawler.pattern_matches p e.Crawler.source_path) file_context)
  |> List.filter_map (fun (e : Crawler.extracted) ->
         Option.map (fun lens -> (e.Crawler.source_path, lens)) (lens_for entry e.Crawler.source_path))

let render_back (lens : Lenses.Lens.t) normalized =
  match lens.Lenses.Lens.render with
  | Some render -> render normalized
  | None -> None

(* ------------------------------------------------------------------ *)
(* Tree rule remediation                                               *)
(* ------------------------------------------------------------------ *)

let fix_tree_rule frame (entry : Manifest.entry) (r : Rule.tree_rule) =
  let c = r.Rule.tree_common in
  let key = c.Rule.name in
  match tree_fix_of r with
  | No_fix why -> (frame, Skipped why)
  | fix -> (
    let files = rule_files frame entry ~file_context:r.Rule.file_context in
    match files with
    | [] -> (frame, Skipped "no configuration file to edit")
    | (path, lens) :: _ -> (
      let content = Option.value (Frames.Frame.read frame path) ~default:"" in
      match lens.Lenses.Lens.parse ~filename:path content with
      | Error e -> (frame, Skipped (Printf.sprintf "%s does not parse: %s" path e))
      | Ok (Lenses.Lens.Table _) -> (frame, Skipped "tree rule over a schema file")
      | Ok (Lenses.Lens.Tree forest) -> (
        let alternatives = List.filter_map literal_segments r.Rule.config_paths in
        match alternatives with
        | [] -> (frame, Skipped "config_path uses wildcards; cannot edit structurally")
        | first :: _ ->
          (* Pass 1: rewrite existing leaves under every alternative
             whose section chain exists (a directive may legitimately
             appear in several of them). *)
          let touched = ref 0 in
          let rewrite existing =
            match (fix, existing) with
            | Delete, Some (n : Configtree.Tree.t) ->
              if violates_non_preferred r (Option.value n.value ~default:"") then begin
                incr touched;
                None
              end
              else Some n
            | Set v, Some n ->
              incr touched;
              Some { n with Configtree.Tree.value = Some v }
            | Append v, Some (n : Configtree.Tree.t) ->
              incr touched;
              let old = Option.value n.value ~default:"" in
              let joined = if old = "" then v else old ^ " " ^ v in
              Some { n with Configtree.Tree.value = Some joined }
            | _, existing -> existing
          in
          let existing_alts = List.filter (fun segs -> chain_exists forest segs) alternatives in
          let edited =
            List.fold_left
              (fun forest segs -> edit_forest forest segs ~leaf_name:key ~update:rewrite)
              forest existing_alts
          in
          (* Pass 2: if nothing existed and the fix needs a leaf, insert
             one under the first available alternative. *)
          let edited =
            if !touched > 0 then edited
            else
              match fix with
              | Delete | No_fix _ -> edited
              | Set v | Append v ->
                let segs = match existing_alts with segs :: _ -> segs | [] -> first in
                let insert = function
                  | Some (n : Configtree.Tree.t) -> Some n
                  | None -> Some (Configtree.Tree.leaf key v)
                in
                edit_forest edited segs ~leaf_name:key ~update:insert
          in
          if fix = Delete && !touched = 0 then
            (frame, Skipped "no offending entry found to remove")
          else
            match render_back lens (Lenses.Lens.Tree edited) with
            | None -> (frame, Skipped (Printf.sprintf "lens %s cannot render" lens.Lenses.Lens.name))
            | Some text ->
              let what =
                match fix with
                | Set v -> Printf.sprintf "set %s to %S in %s" key v path
                | Append v -> Printf.sprintf "appended %S to %s in %s" v key path
                | Delete -> Printf.sprintf "removed offending %s from %s" key path
                | No_fix _ -> assert false
              in
              (Frames.Frame.set_content frame ~path text, Fixed what))))

(* ------------------------------------------------------------------ *)
(* Schema rule remediation                                             *)
(* ------------------------------------------------------------------ *)

let fix_schema_rule frame (entry : Manifest.entry) (r : Rule.schema_rule) =
  let files = rule_files frame entry ~file_context:r.Rule.schema_file_context in
  match files with
  | [] -> (frame, Skipped "no configuration file to edit")
  | (path, lens) :: _ -> (
    let content = Option.value (Frames.Frame.read frame path) ~default:"" in
    match lens.Lenses.Lens.parse ~filename:path content with
    | Error e -> (frame, Skipped (Printf.sprintf "%s does not parse: %s" path e))
    | Ok (Lenses.Lens.Tree _) -> (frame, Skipped "schema rule over a tree file")
    | Ok (Lenses.Lens.Table table) -> (
      match
        Configtree.Table.parse_query ~constraints:r.Rule.query_constraints
          ~values:r.Rule.query_constraints_value
      with
      | Error e -> (frame, Skipped e)
      | Ok query -> (
        let bindings = Configtree.Table.query_bindings query in
        (* Regex clauses of the shape ".*(literal).*" (the generated CIS
           audit queries) also determine a representative cell value. *)
        let regex_bindings =
          let literal_of pattern =
            let strip_affix ~prefix ~suffix s =
              let pl = String.length prefix and sl = String.length suffix in
              if String.length s >= pl + sl
                 && String.sub s 0 pl = prefix
                 && String.sub s (String.length s - sl) sl = suffix
              then Some (String.sub s pl (String.length s - pl - sl))
              else None
            in
            let inner =
              match strip_affix ~prefix:".*(" ~suffix:").*" pattern with
              | Some inner -> Some inner
              | None -> strip_affix ~prefix:".*" ~suffix:".*" pattern
            in
            match inner with
            | Some inner
              when inner <> ""
                   && not
                        (String.exists
                           (fun ch -> String.contains "\\^$.|?*+()[{" ch)
                           inner) ->
              Some inner
            | _ -> None
          in
          List.filter_map
            (fun (col, op, operand) ->
              if op = "~" then Option.map (fun v -> (col, v)) (literal_of operand) else None)
            (Configtree.Table.query_clauses query)
        in
        let bindings = bindings @ regex_bindings in
        let matching = Configtree.Table.select table query in
        let preferred_head =
          match r.Rule.schema_preferred with
          | Some { Rule.values = v :: _; match_spec }
            when match_spec.Matcher.kind <> Matcher.Regex ->
            Some (v, match_spec)
          | _ -> None
        in
        let projected_column =
          match r.Rule.query_columns with [ c ] when c <> "*" -> Some c | _ -> None
        in
        let enough_rows =
          match r.Rule.expect_rows with
          | Some n -> List.length matching >= n
          | None -> matching <> []
        in
        let columns = table.Configtree.Table.columns in
        if not enough_rows then begin
          (* Synthesize a row from the = bindings; the preferred value
             lands in the projected column, unknown cells get "-". *)
          let row =
            List.map
              (fun col ->
                match List.assoc_opt col bindings with
                | Some v -> v
                | None -> (
                  match (projected_column, preferred_head) with
                  | Some c, Some (v, _) when c = col -> v
                  | _ -> "-"))
              columns
          in
          match
            Configtree.Table.make ~name:table.Configtree.Table.name ~columns
              (table.Configtree.Table.rows @ [ row ])
          with
          | Error e -> (frame, Skipped e)
          | Ok table' -> (
            match render_back lens (Lenses.Lens.Table table') with
            | None -> (frame, Skipped (Printf.sprintf "lens %s cannot render" lens.Lenses.Lens.name))
            | Some text ->
              ( Frames.Frame.set_content frame ~path text,
                Fixed (Printf.sprintf "added row [%s] to %s" (String.concat " " row) path) ))
        end
        else
          match (projected_column, preferred_head) with
          | Some column, Some (v, match_spec) -> (
            let idx =
              let rec find i = function
                | [] -> None
                | c :: _ when c = column -> Some i
                | _ :: rest -> find (i + 1) rest
              in
              find 0 columns
            in
            match idx with
            | None -> (frame, Skipped (Printf.sprintf "unknown column %s" column))
            | Some idx ->
              let rewrite row =
                if List.mem row matching then
                  List.mapi
                    (fun i cell ->
                      if i <> idx then cell
                      else
                        match match_spec.Matcher.kind with
                        | Matcher.Substr when cell <> "" && cell <> "-" -> cell ^ "," ^ v
                        | _ -> v)
                    row
                else row
              in
              let table' =
                { table with Configtree.Table.rows = List.map rewrite table.Configtree.Table.rows }
              in
              (match render_back lens (Lenses.Lens.Table table') with
              | None -> (frame, Skipped (Printf.sprintf "lens %s cannot render" lens.Lenses.Lens.name))
              | Some text ->
                ( Frames.Frame.set_content frame ~path text,
                  Fixed (Printf.sprintf "rewrote column %s of %d row(s) in %s" column
                           (List.length matching) path) )))
          | _ -> (frame, Skipped "no single projected column with an invertible expectation"))))

(* ------------------------------------------------------------------ *)
(* Path rule remediation                                               *)
(* ------------------------------------------------------------------ *)

let fix_path_rule frame (r : Rule.path_rule) =
  let path = r.Rule.path in
  match Frames.Frame.stat frame path with
  | None ->
    if not r.Rule.should_exist then (frame, Skipped "already absent")
    else if r.Rule.file_type = Some "directory" then begin
      let mode = Option.value r.Rule.permission ~default:0o755 in
      let uid, gid =
        match Option.map (String.split_on_char ':') r.Rule.ownership with
        | Some [ u; g ] -> (int_of_string u, int_of_string g)
        | _ -> (0, 0)
      in
      ( Frames.Frame.add_file frame (Frames.File.directory ~mode ~uid ~gid path),
        Fixed (Printf.sprintf "created directory %s" path) )
    end
    else (frame, Skipped "cannot create a file whose content the rule does not determine")
  | Some _ ->
    if not r.Rule.should_exist then
      (Frames.Frame.remove_file frame path, Fixed (Printf.sprintf "removed %s" path))
    else begin
      let frame =
        match r.Rule.permission with
        | Some mode -> Frames.Frame.chmod frame ~path mode
        | None -> frame
      in
      let frame =
        match Option.map (String.split_on_char ':') r.Rule.ownership with
        | Some [ u; g ] -> Frames.Frame.chown frame ~path ~uid:(int_of_string u) ~gid:(int_of_string g)
        | _ -> frame
      in
      (frame, Fixed (Printf.sprintf "reset mode/ownership of %s" path))
    end

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let entity frame (entry : Manifest.entry) rules =
  let ctx = Engine.build_ctx frame entry in
  let results = Engine.eval_entity ctx (List.filter (fun r -> not (Rule.is_disabled r)) rules) in
  List.fold_left
    (fun (frame, reports) (result : Engine.result) ->
      if not (Engine.is_violation result.Engine.verdict) then (frame, reports)
      else
        let rule_name = Rule.name result.Engine.rule in
        let frame, outcome =
          match result.Engine.rule with
          | Rule.Tree r -> fix_tree_rule frame entry r
          | Rule.Schema r -> fix_schema_rule frame entry r
          | Rule.Path r -> fix_path_rule frame r
          | Rule.Script _ -> (frame, Skipped "runtime state cannot be fixed by editing files")
          | Rule.Composite _ -> (frame, Skipped "composite rules are fixed through their atoms")
          | Rule.Cluster _ ->
            (frame, Skipped "fleet-scoped rules are fixed per member frame")
        in
        (frame, { entity = entry.Manifest.entity; rule_name; outcome } :: reports))
    (frame, []) results
  |> fun (frame, reports) -> (frame, List.rev reports)

let deployment ~source ~manifest frames =
  let rules =
    List.filter_map
      (fun (entry : Manifest.entry) ->
        if not entry.Manifest.enabled then None
        else
          match Manifest.load_rules source entry with
          | Ok rules -> Some (entry, rules)
          | Error _ -> None)
      manifest
  in
  let frames, reports =
    List.fold_left
      (fun (done_frames, reports) frame ->
        let frame, frame_reports =
          List.fold_left
            (fun (frame, acc) (entry, entity_rules) ->
              let frame, rs = entity frame entry entity_rules in
              (frame, acc @ rs))
            (frame, []) rules
        in
        (done_frames @ [ frame ], reports @ frame_reports))
      ([], []) frames
  in
  (frames, reports)

let violation_count ~source ~manifest frames =
  let run = Validator.run ~source ~manifest frames in
  Report.violations run.Validator.results

let fixpoint ?(max_rounds = 3) ~source ~manifest frames =
  let rec go round frames reports =
    let remaining = violation_count ~source ~manifest frames in
    if remaining = [] || round >= max_rounds then (frames, reports, remaining)
    else
      let frames, new_reports = deployment ~source ~manifest frames in
      let fixed_something =
        List.exists (fun r -> match r.outcome with Fixed _ -> true | Skipped _ -> false) new_reports
      in
      if fixed_something then go (round + 1) frames (reports @ new_reports)
      else (frames, reports @ new_reports, violation_count ~source ~manifest frames)
  in
  go 0 frames []
