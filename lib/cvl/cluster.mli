(** Fleet-scoped ([scope: cluster]) rule evaluation.

    A cluster rule's query runs per frame — through the same
    {!Configtree.Index.Plan} trie the fused engine uses, so each frame's
    forests are walked once for all of the rule's paths — and a
    cross-frame aggregator then judges the whole deployment at once:

    - [equal_across]: every participating frame carries the same
      (canonical) value set — replica-config equality.
    - [exists_referent]: every observed value is a member of the
      referent set (the fleet-wide values under [referent_config_path],
      or the fleet's frame ids when absent) — e.g. upstream hosts that
      actually exist.
    - [count]: the number of participating frames satisfies the
      [min_frames]/[max_frames] bounds — quorum-size invariants.
    - [consistent_across]: frames partitioned by the [group_by] config
      key agree within each group — inheritance-group consistency.

    [min_frames]/[max_frames] also act as a quorum precondition for the
    other aggregators. Verdicts are canonical — participants sorted by
    frame id, value sets deduplicated and sorted — so the result is a
    pure function of the frame {e set}, independent of arrival order. *)

val aggregators : string list
(** The recognised [aggregate:] values, in documentation order. *)

(** A config-path literal that failed to parse during lowering. The
    compiled engine surfaces these as compile diagnostics; evaluation
    treats the path as matching nothing (like the other engines do for
    malformed literals), so verdicts stay engine-independent. *)
type issue = {
  field : string;  (** ["config_path"] or ["referent_config_path"] *)
  literal : string;
  message : string;
}

(** A cluster rule lowered once per load: pre-parsed paths merged into
    one shared-walk plan (query ids [0 .. nquery-1] are the config
    paths, any id beyond is the referent path). *)
type lowered = {
  rule : Rule.t;
  cr : Rule.cluster_rule;
  plan : Configtree.Index.Plan.plan option;
  nquery : int;
}

val lower : Rule.t -> Rule.cluster_rule -> lowered * issue list

(** Evaluate one lowered cluster rule over the per-frame contexts of one
    entity. The result's [frame_id] is [deployment_id] (the fleet-level
    pseudo-frame, matching composite results). Deterministic in the
    frame set: permuting [ctxs] cannot change a byte of the result. *)
val eval :
  deployment_id:string ->
  entity:string ->
  lowered ->
  Engine.entity_ctx list ->
  Engine.result
