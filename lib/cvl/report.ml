type summary = {
  total : int;
  matched : int;
  violations : int;
  not_present : int;
  not_applicable : int;
  errors : int;
}

let summarize results =
  List.fold_left
    (fun acc (r : Engine.result) ->
      match r.Engine.verdict with
      | Engine.Matched -> { acc with total = acc.total + 1; matched = acc.matched + 1 }
      | Engine.Not_matched ->
        { acc with total = acc.total + 1; violations = acc.violations + 1 }
      | Engine.Not_present ->
        {
          acc with
          total = acc.total + 1;
          violations = acc.violations + 1;
          not_present = acc.not_present + 1;
        }
      | Engine.Not_applicable ->
        { acc with total = acc.total + 1; not_applicable = acc.not_applicable + 1 }
      | Engine.Engine_error _ -> { acc with total = acc.total + 1; errors = acc.errors + 1 })
    { total = 0; matched = 0; violations = 0; not_present = 0; not_applicable = 0; errors = 0 }
    results

let filter_by_tags tags results =
  if tags = [] then results
  else
    List.filter
      (fun (r : Engine.result) -> List.exists (fun t -> Rule.has_tag r.Engine.rule t) tags)
      results

let violations results =
  List.filter (fun (r : Engine.result) -> Engine.is_violation r.Engine.verdict) results

let verdict_glyph = function
  | Engine.Matched -> "PASS"
  | Engine.Not_matched -> "FAIL"
  | Engine.Not_present -> "MISS"
  | Engine.Not_applicable -> "N/A "
  | Engine.Engine_error _ -> "ERR "

(* The health section appears only on degraded runs, so clean-run text
   output is byte-identical with or without a health record. *)
let health_to_text (h : Resilience.health) =
  if not h.Resilience.degraded then ""
  else
    Printf.sprintf
      "run health: DEGRADED\n\
      \  errors by stage: extract %d, normalize %d, evaluate %d\n\
      \  retries %d · breaker trips %d · contained exceptions %d · faults injected %d\n\
      \  simulated backoff: %d ms\n"
      h.Resilience.extract_errors h.Resilience.normalize_errors h.Resilience.evaluate_errors
      h.Resilience.retries h.Resilience.breaker_trips h.Resilience.contained
      h.Resilience.faults_injected h.Resilience.simulated_ms

let to_text ?(verbose = false) ?health results =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (r : Engine.result) ->
      let c = Rule.common_of r.Engine.rule in
      Buffer.add_string buf
        (Printf.sprintf "[%s] %-10s %-28s %s — %s\n" (verdict_glyph r.Engine.verdict)
           r.Engine.entity r.Engine.frame_id (Rule.name r.Engine.rule) r.Engine.detail);
      if verbose then begin
        List.iter (fun e -> Buffer.add_string buf (Printf.sprintf "         · %s\n" e)) r.Engine.evidence;
        if Engine.is_violation r.Engine.verdict && c.Rule.suggested_action <> "" then
          Buffer.add_string buf (Printf.sprintf "         ↳ action: %s\n" c.Rule.suggested_action);
        if c.Rule.tags <> [] then
          Buffer.add_string buf
            (Printf.sprintf "         · tags: %s\n" (String.concat " " c.Rule.tags))
      end)
    results;
  (match health with
  | Some h -> Buffer.add_string buf (health_to_text h)
  | None -> ());
  Buffer.contents buf

let summary_line s =
  Printf.sprintf "%d checks: %d passed, %d violations (%d missing), %d n/a, %d errors" s.total
    s.matched s.violations s.not_present s.not_applicable s.errors

let result_to_json (r : Engine.result) =
  let c = Rule.common_of r.Engine.rule in
  Jsonlite.Obj
    [
      ("entity", Jsonlite.Str r.Engine.entity);
      ("frame", Jsonlite.Str r.Engine.frame_id);
      ("rule", Jsonlite.Str (Rule.name r.Engine.rule));
      ("type", Jsonlite.Str (Rule.kind_to_string r.Engine.rule));
      ("verdict", Jsonlite.Str (Engine.verdict_to_string r.Engine.verdict));
      ("violation", Jsonlite.Bool (Engine.is_violation r.Engine.verdict));
      ("severity", Jsonlite.Str c.Rule.severity);
      ("detail", Jsonlite.Str r.Engine.detail);
      ("evidence", Jsonlite.Arr (List.map (fun e -> Jsonlite.Str e) r.Engine.evidence));
      ("tags", Jsonlite.Arr (List.map (fun t -> Jsonlite.Str t) c.Rule.tags));
      ("suggested_action", Jsonlite.Str c.Rule.suggested_action);
    ]

let to_junit ?health results =
  (* One testsuite per entity; Not_applicable maps to a skipped case. *)
  let entities =
    List.sort_uniq String.compare (List.map (fun (r : Engine.result) -> r.Engine.entity) results)
  in
  let el = Xmllite.element in
  let case (r : Engine.result) =
    let name =
      Printf.sprintf "%s @ %s" (Rule.name r.Engine.rule) r.Engine.frame_id
    in
    let children =
      match r.Engine.verdict with
      | Engine.Matched -> []
      | Engine.Not_matched | Engine.Not_present ->
        [
          Xmllite.Element
            (el "failure"
               ~attrs:[ ("message", r.Engine.detail) ]
               ~children:[ Xmllite.text_child (String.concat "\n" r.Engine.evidence) ]);
        ]
      | Engine.Not_applicable -> [ Xmllite.Element (el "skipped" ~attrs:[ ("message", r.Engine.detail) ]) ]
      | Engine.Engine_error { stage; message } ->
        [
          Xmllite.Element
            (el "error"
               ~attrs:[ ("type", Resilience.stage_to_string stage); ("message", message) ]);
        ]
    in
    Xmllite.Element
      (el "testcase" ~attrs:[ ("name", name); ("classname", r.Engine.entity) ] ~children)
  in
  let suite entity =
    let own = List.filter (fun (r : Engine.result) -> r.Engine.entity = entity) results in
    let s = summarize own in
    Xmllite.Element
      (el "testsuite"
         ~attrs:
           [
             ("name", entity);
             ("tests", string_of_int s.total);
             ("failures", string_of_int s.violations);
             ("errors", string_of_int s.errors);
             ("skipped", string_of_int s.not_applicable);
           ]
         ~children:(List.map case own))
  in
  let attrs =
    match health with
    | Some (h : Resilience.health) when h.Resilience.degraded ->
      [
        ("degraded", "true");
        ("retries", string_of_int h.Resilience.retries);
        ("breaker-trips", string_of_int h.Resilience.breaker_trips);
        ("contained", string_of_int h.Resilience.contained);
      ]
    | Some _ | None -> []
  in
  Xmllite.to_string (el "testsuites" ~attrs ~children:(List.map suite entities))

type run_comparison = {
  regressions : Engine.result list;
  fixes : Engine.result list;
  still_violating : Engine.result list;
}

let finding_key (r : Engine.result) =
  (r.Engine.entity, Rule.name r.Engine.rule, r.Engine.frame_id)

let compare_runs ~before ~after =
  let violating results = List.map finding_key (violations results) in
  let before_bad = violating before in
  let in_set set r = List.mem (finding_key r) set in
  {
    regressions = List.filter (fun r -> not (in_set before_bad r)) (violations after);
    fixes =
      List.filter
        (fun (r : Engine.result) -> (not (Engine.is_violation r.Engine.verdict)) && in_set before_bad r)
        after;
    still_violating = List.filter (in_set before_bad) (violations after);
  }

let comparison_summary c =
  Printf.sprintf "%d regression(s), %d fix(es), %d still violating"
    (List.length c.regressions) (List.length c.fixes) (List.length c.still_violating)

let health_to_json (h : Resilience.health) =
  let num n = Jsonlite.Num (float_of_int n) in
  Jsonlite.Obj
    [
      ("degraded", Jsonlite.Bool h.Resilience.degraded);
      ( "errors",
        Jsonlite.Obj
          [
            ("extract", num h.Resilience.extract_errors);
            ("normalize", num h.Resilience.normalize_errors);
            ("evaluate", num h.Resilience.evaluate_errors);
          ] );
      ("retries", num h.Resilience.retries);
      ("breaker_trips", num h.Resilience.breaker_trips);
      ("contained", num h.Resilience.contained);
      ("faults_injected", num h.Resilience.faults_injected);
      ("simulated_ms", num h.Resilience.simulated_ms);
    ]

let to_json ?health results =
  let s = summarize results in
  let base =
    [
      ( "summary",
        Jsonlite.Obj
          [
            ("total", Jsonlite.Num (float_of_int s.total));
            ("matched", Jsonlite.Num (float_of_int s.matched));
            ("violations", Jsonlite.Num (float_of_int s.violations));
            ("not_present", Jsonlite.Num (float_of_int s.not_present));
            ("not_applicable", Jsonlite.Num (float_of_int s.not_applicable));
            ("errors", Jsonlite.Num (float_of_int s.errors));
          ] );
      ("results", Jsonlite.Arr (List.map result_to_json results));
    ]
  in
  Jsonlite.Obj
    (match health with
    | Some h -> base @ [ ("health", health_to_json h) ]
    | None -> base)
