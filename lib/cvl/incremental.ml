let under_search_path ~search_paths path =
  List.exists
    (fun root ->
      let root = Frames.File.normalize_path root in
      let path = Frames.File.normalize_path path in
      String.equal path root
      || (String.length path > String.length root
          && String.sub path 0 (String.length root) = root
          && (root = "/" || path.[String.length root] = '/')))
    search_paths

let has_script_rule rules =
  List.exists (function Rule.Script _ -> true | _ -> false) rules

let rule_paths rules =
  List.filter_map (function Rule.Path r -> Some r.Rule.path | _ -> None) rules

let affected_entities ~rules (diff : Frames.Diff.t) =
  let changed = Frames.Diff.changed_paths diff in
  let runtime_changed = diff.Frames.Diff.kernel_changes <> [] || diff.Frames.Diff.runtime_doc_changes <> [] in
  List.filter_map
    (fun ((entry : Manifest.entry), entity_rules) ->
      let by_files =
        List.exists (under_search_path ~search_paths:entry.Manifest.search_paths) changed
      in
      let by_path_rules =
        let targets = rule_paths entity_rules in
        List.exists (fun p -> List.mem (Frames.File.normalize_path p) targets) changed
      in
      (* Conservative: any runtime-state change re-validates every
         entity that has script rules — plugin-to-document provenance is
         not tracked per key. *)
      let by_runtime = runtime_changed && has_script_rule entity_rules in
      if by_files || by_path_rules || by_runtime then Some entry.Manifest.entity else None)
    rules

let revalidate ?pool ~rules ~previous ~diff frame =
  let pool = Option.value pool ~default:Pool.sequential in
  let affected = affected_entities ~rules diff in
  if affected = [] then
    (* Nothing the diff touches feeds any entity: every previous result
       — composites included, since their atoms are unchanged — still
       holds. No context is rebuilt at all. *)
    (previous, [])
  else begin
    let frame_id = Frames.Frame.id frame in
    let kept =
      List.filter
        (fun (r : Engine.result) ->
          match r.Engine.rule with
          | Rule.Composite _ | Rule.Cluster _ -> false (* always recomputed *)
          | _ -> not (String.equal r.Engine.frame_id frame_id && List.mem r.Engine.entity affected))
        previous
    in
    let fresh =
      (* Only the affected entities are compiled — a handful of rule
         lists, so per-revalidate compilation is cheap — and their
         programs dispatched against the new frame. Manifest order is
         preserved by the filter, matching a full run's ordering. *)
      let affected_rules =
        List.filter
          (fun ((entry : Manifest.entry), _) -> List.mem entry.Manifest.entity affected)
          rules
      in
      let compiled = Compile.compile affected_rules in
      Pool.concat_map pool
        (fun (ep : Compile.entity_programs) ->
          let ctx = Engine.build_ctx frame ep.Compile.entry in
          List.map (Compile.run_program ctx) ep.Compile.programs)
        compiled.Compile.entities
    in
    let plain_results = kept @ fresh in
    let has_kind pred =
      List.exists (fun (_, entity_rules) -> List.exists pred entity_rules) rules
    in
    let has_composites = has_kind (function Rule.Composite _ -> true | _ -> false) in
    let has_clusters = has_kind (function Rule.Cluster _ -> true | _ -> false) in
    if not (has_composites || has_clusters) then (plain_results, affected)
    else begin
      (* Cluster rules and composites see the merged results; their
         queries/config lookups need contexts for every entity of this
         frame. Unaffected entities' files are unchanged, so rebuilding
         their contexts costs only Normcache hits — no re-parsing. *)
      let ctxs =
        Pool.map pool
          (fun ((entry : Manifest.entry), _) ->
            (entry.Manifest.entity, [ Engine.build_ctx frame entry ]))
          rules
      in
      let clusters =
        if has_clusters then
          Validator.eval_clusters ~rules ~ctxs ~deployment_id:frame_id
        else []
      in
      let plain_results = plain_results @ clusters in
      let composites =
        if has_composites then
          Validator.eval_composites ~rules ~plain_results ~ctxs ~deployment_id:frame_id
        else []
      in
      (plain_results @ composites, affected)
    end
  end
