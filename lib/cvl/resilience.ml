(* Resilience policy layer: bounded retries with deterministic backoff,
   per-plugin circuit breakers, and the hook points lib/faultsim uses to
   inject faults. Everything is driven by a simulated clock so runs are
   reproducible and tests never sleep. *)

type stage = Extract | Normalize | Evaluate

let stage_to_string = function
  | Extract -> "extract"
  | Normalize -> "normalize"
  | Evaluate -> "evaluate"

type fault_info = { stage : stage; transient : bool; message : string }

exception Fault of fault_info

type policy = { retries : int; backoff_ms : int; breaker_threshold : int }

let default_policy = { retries = 2; backoff_ms = 50; breaker_threshold = 3 }
let policy_ref = Atomic.make default_policy
let set_policy p = Atomic.set policy_ref p
let policy () = Atomic.get policy_ref

(* ------------------------------------------------------------------ *)
(* Simulated clock                                                     *)
(* ------------------------------------------------------------------ *)

let clock_ms = Atomic.make 0
let now_ms () = Atomic.get clock_ms
let sleep_ms ms = if ms > 0 then ignore (Atomic.fetch_and_add clock_ms ms)

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

type counters = {
  retries : int;
  breaker_trips : int;
  contained : int;
  faults_injected : int;
  simulated_ms : int;
}

let retries_c = Atomic.make 0
let trips_c = Atomic.make 0
let contained_c = Atomic.make 0
let injected_c = Atomic.make 0

let counters () =
  {
    retries = Atomic.get retries_c;
    breaker_trips = Atomic.get trips_c;
    contained = Atomic.get contained_c;
    faults_injected = Atomic.get injected_c;
    simulated_ms = Atomic.get clock_ms;
  }

let diff_counters ~before ~after =
  {
    retries = after.retries - before.retries;
    breaker_trips = after.breaker_trips - before.breaker_trips;
    contained = after.contained - before.contained;
    faults_injected = after.faults_injected - before.faults_injected;
    simulated_ms = after.simulated_ms - before.simulated_ms;
  }

let note_contained () = ignore (Atomic.fetch_and_add contained_c 1)
let note_injected () = ignore (Atomic.fetch_and_add injected_c 1)

(* ------------------------------------------------------------------ *)
(* Circuit breaker (per plugin, per run)                               *)
(* ------------------------------------------------------------------ *)

(* Consecutive-failure count per plugin; a plugin whose count reaches
   the threshold is open for the remainder of the run. *)
let breaker_mutex = Mutex.create ()
let breaker : (string, int) Hashtbl.t = Hashtbl.create 16

let with_breaker f =
  Mutex.lock breaker_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock breaker_mutex) f

let begin_run () = with_breaker (fun () -> Hashtbl.reset breaker)

let breaker_open plugin =
  with_breaker (fun () ->
      match Hashtbl.find_opt breaker plugin with
      | Some n -> n >= (policy ()).breaker_threshold
      | None -> false)

let breaker_success plugin = with_breaker (fun () -> Hashtbl.remove breaker plugin)

(* Returns [true] when this failure is the one that opens the breaker. *)
let breaker_failure plugin =
  with_breaker (fun () ->
      let n = 1 + Option.value (Hashtbl.find_opt breaker plugin) ~default:0 in
      Hashtbl.replace breaker plugin n;
      let tripped = n = (policy ()).breaker_threshold in
      if tripped then ignore (Atomic.fetch_and_add trips_c 1);
      tripped)

(* ------------------------------------------------------------------ *)
(* Fault-injection hooks (installed by Faultsim)                       *)
(* ------------------------------------------------------------------ *)

type read_hook = frame_id:string -> path:string -> string -> (string, fault_info) result
type plugin_hook = plugin:string -> frame_id:string -> attempt:int -> string option
type eval_hook = entity:string -> rule:string -> frame_id:string -> unit

let read_hook : read_hook option Atomic.t = Atomic.make None
let plugin_hook : plugin_hook option Atomic.t = Atomic.make None
let eval_hook : eval_hook option Atomic.t = Atomic.make None

let set_read_hook h = Atomic.set read_hook h
let set_plugin_hook h = Atomic.set plugin_hook h
let set_eval_hook h = Atomic.set eval_hook h

let clear_hooks () =
  Atomic.set read_hook None;
  Atomic.set plugin_hook None;
  Atomic.set eval_hook None

let apply_read_hook ~frame_id ~path content =
  match Atomic.get read_hook with
  | None -> Ok content
  | Some h -> h ~frame_id ~path content

let apply_eval_hook ~entity ~rule ~frame_id =
  match Atomic.get eval_hook with
  | None -> ()
  | Some h -> h ~entity ~rule ~frame_id

(* ------------------------------------------------------------------ *)
(* Resilient plugin execution                                          *)
(* ------------------------------------------------------------------ *)

type failure = Soft of string | Faulted of { stage : stage; message : string }

(* Cross-rule sharing of the plugin *body*. The fused engine hands the
   same memo to every rule of one entity evaluation; the first call that
   actually reaches the plugin stores the raw body outcome and later
   calls replay it. Only the expensive [plugin.run frame] is shared —
   the full retry/breaker state machine (hook consultation per attempt,
   retry counters, backoff, breaker transitions and their exact error
   messages) still executes on every call, so a shared call that trips
   the breaker yields byte-identical per-rule verdicts and identical
   health counters to unshared execution. Sound because plugins are
   deterministic in the frame and hooks are pure in (plugin, frame_id,
   attempt); a memo must never outlive one (entity, frame) cell. *)
type body_outcome = Body_ok of string | Body_soft of string | Body_fault of string

type plugin_memo = (string, body_outcome) Hashtbl.t

let plugin_memo () : plugin_memo = Hashtbl.create 8

let run_plugin ?shared ~frame (plugin : Crawler.plugin) =
  let name = plugin.Crawler.plugin_name in
  let frame_id = Frames.Frame.id frame in
  if breaker_open name then
    Error
      (Faulted
         {
           stage = Extract;
           message = Printf.sprintf "circuit breaker open for plugin %S" name;
         })
  else
    let p = policy () in
    let rec attempt n =
      let outcome =
        match Atomic.get plugin_hook with
        | Some h -> (
          match h ~plugin:name ~frame_id ~attempt:n with
          | Some msg -> `Fault msg
          | None -> `Run)
        | None -> `Run
      in
      let outcome =
        match outcome with
        | `Fault msg -> `Fault msg
        | `Run ->
          (* The plugin's own [Error] is a soft "not applicable here"
             answer, not an infrastructure fault: no retry, no breaker,
             so clean runs behave exactly as before. Only exceptions
             (and injected faults) enter the retry path. *)
          let body () =
            match plugin.Crawler.run frame with
            | Ok out -> Body_ok out
            | Error msg -> Body_soft msg
            | exception e -> Body_fault (Printexc.to_string e)
          in
          let b =
            match shared with
            | None -> body ()
            | Some memo -> (
              match Hashtbl.find_opt memo name with
              | Some b -> b
              | None ->
                let b = body () in
                Hashtbl.add memo name b;
                b)
          in
          (match b with
          | Body_ok out -> `Ok out
          | Body_soft msg -> `Soft msg
          | Body_fault msg -> `Fault msg)
      in
      match outcome with
      | `Ok out ->
        breaker_success name;
        Ok out
      | `Soft msg -> Error (Soft msg)
      | `Fault msg ->
        if n < p.retries then begin
          ignore (Atomic.fetch_and_add retries_c 1);
          sleep_ms (p.backoff_ms * (1 lsl n));
          attempt (n + 1)
        end
        else begin
          let tripped = breaker_failure name in
          let message =
            if tripped then
              Printf.sprintf "plugin %S: %s (circuit breaker opened after %d consecutive failures)"
                name msg p.breaker_threshold
            else Printf.sprintf "plugin %S: %s (after %d attempt(s))" name msg (n + 1)
          in
          Error (Faulted { stage = Extract; message })
        end
    in
    attempt 0

(* ------------------------------------------------------------------ *)
(* Run health                                                          *)
(* ------------------------------------------------------------------ *)

type health = {
  extract_errors : int;
  normalize_errors : int;
  evaluate_errors : int;
  retries : int;
  breaker_trips : int;
  contained : int;
  faults_injected : int;
  simulated_ms : int;
  degraded : bool;
}

let empty_health =
  {
    extract_errors = 0;
    normalize_errors = 0;
    evaluate_errors = 0;
    retries = 0;
    breaker_trips = 0;
    contained = 0;
    faults_injected = 0;
    simulated_ms = 0;
    degraded = false;
  }

let make_health ~extract_errors ~normalize_errors ~evaluate_errors (c : counters) =
  {
    extract_errors;
    normalize_errors;
    evaluate_errors;
    retries = c.retries;
    breaker_trips = c.breaker_trips;
    contained = c.contained;
    faults_injected = c.faults_injected;
    simulated_ms = c.simulated_ms;
    degraded =
      extract_errors + normalize_errors + evaluate_errors > 0
      || c.breaker_trips > 0 || c.contained > 0;
  }
