(** Value-match semantics for [preferred_value] /
    [non_preferred_value].

    A match spec pairs a {e kind} with a {e scope}, written in CVL as
    e.g. [substr,all] (Listing 2 of the paper):
    - kind [exact]: rule value equals the configuration value;
      [substr]: rule value occurs within the configuration value;
      [regex]: rule value, as an (unanchored) regex, matches it.
    - scope [all]: every rule value must match the configuration value;
      [any]: at least one must.

    [exact] is strictly stronger than [substr]: any value list that
    matches exactly also matches as a substring (a law the property
    tests check). *)

type kind = Exact | Substr | Regex
type scope = Any | All

type t = {
  kind : kind;
  scope : scope;
}

val default : t
(** [exact,any] — the CVL default when no [*_value_match] is given. *)

(** Parse ["substr,all"], ["exact , any"], etc. Either component may be
    omitted ("substr" alone means [substr] with the default scope). *)
val parse : string -> (t, string) result

val to_string : t -> string

(** [value_matches spec ~rule_value ~config_value] — one rule value
    against one configuration value (kind only). *)
val value_matches :
  ?case_insensitive:bool -> kind -> rule_value:string -> config_value:string -> bool

(** [satisfies spec ~rule_values ~config_value] — the scope-folded
    verdict of a value list against one configuration value. An empty
    rule-value list never satisfies. *)
val satisfies :
  ?case_insensitive:bool -> t -> rule_values:string list -> config_value:string -> bool

(** A match spec lowered to a closure over the configuration value: rule
    values are case-folded and regexes compiled once, when the rule is
    compiled, instead of per evaluation. For all inputs
    [compile ?case_insensitive t ~rule_values v] equals
    [satisfies ?case_insensitive t ~rule_values ~config_value:v] — a law
    the differential property tests check. *)
type compiled = string -> bool

val compile : ?case_insensitive:bool -> t -> rule_values:string list -> compiled
