(** Whole-ruleset query fusion: one shared tree walk for N compiled
    rules.

    [fuse] merges all of an entity's well-formed path queries — tree
    [config_path/name] hits, [require_other_configs] probes, script
    output paths — into a single {!Configtree.Index.Plan} prefix trie.
    At evaluation time the first rule needing any query drives one
    shared walk per forest; every rule then reads its matched node set
    from the memoized result table. Schema queries with identical
    (constraints, values, columns) run once per table per evaluation
    cell, and script rules subscribing to one plugin share a single
    execution of the plugin body ({!Resilience.run_plugin} [?shared]) —
    with the retry/breaker bookkeeping still replayed per rule, so
    verdicts and health counters stay byte-identical to the compiled
    and interpreted engines. *)

(** Cross-rule CSE memos for one (entity, frame) evaluation cell.
    Create one per cell ({!new_state}); never reuse across cells. *)
type state

val new_state : unit -> state

type program = {
  rule : Rule.t;
  ordinal : int;  (** same dispatch index as the compiled program's *)
  exec : state -> Engine.entity_ctx -> Engine.result;
}

type entity_plan = {
  entry : Manifest.entry;
  base : Compile.entity_programs;
      (** the compiled form underneath: tag index, composites, rules *)
  programs : program array;  (** ordinal-indexed *)
  plan : Configtree.Index.Plan.plan option;
      (** the entity's shared query trie; [None] when no path queries *)
}

type t = {
  entities : entity_plan list;
  diagnostics : Compile.diagnostic list;  (** as recorded by {!Compile.compile} *)
}

(** Build the fused form of a compiled corpus. Pure planning — no
    forest is touched until programs execute. *)
val fuse : Compile.t -> t

(** Tag dispatch, delegating to {!Compile.select} and mapping the
    selected ordinals onto fused programs; same order, same composites. *)
val select :
  tags:string list ->
  entity_plan ->
  program list * (Rule.t * (Expr.t, string) result) list

(** Run one fused program. Byte-identical to
    [Engine.eval_rule ctx p.rule]. *)
val run_program : state -> Engine.entity_ctx -> program -> Engine.result
