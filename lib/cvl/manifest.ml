type entry = {
  entity : string;
  enabled : bool;
  search_paths : string list;
  cvl_file : string;
  lens : string option;
  rule_type : string option;
  flaky_plugins : string list;
}

let ( let* ) = Result.bind

let entry_of_section entity kvs =
  let allowed =
    [
      "enabled"; "config_search_paths"; "cvl_file"; "lens"; "rule_type"; "entity_name";
      "flaky_plugins";
    ]
  in
  let* () =
    match List.find_opt (fun (k, _) -> not (List.mem k allowed)) kvs with
    | Some (k, _) -> Error (Printf.sprintf "manifest %s: unknown key %S" entity k)
    | None -> Ok ()
  in
  let str key = Option.bind (List.assoc_opt key kvs) Yamlite.Value.get_str in
  let* enabled =
    match List.assoc_opt "enabled" kvs with
    | None -> Ok true
    | Some v -> (
      match Yamlite.Value.get_bool v with
      | Some b -> Ok b
      | None -> Error (Printf.sprintf "manifest %s: enabled must be a boolean" entity))
  in
  let* search_paths =
    match List.assoc_opt "config_search_paths" kvs with
    | None -> Ok []
    | Some v -> (
      match Yamlite.Value.get_str_list v with
      | Some l -> Ok l
      | None -> Error (Printf.sprintf "manifest %s: config_search_paths must be a list" entity))
  in
  let* flaky_plugins =
    match List.assoc_opt "flaky_plugins" kvs with
    | None -> Ok []
    | Some v -> (
      match Yamlite.Value.get_str_list v with
      | Some l -> Ok l
      | None -> Error (Printf.sprintf "manifest %s: flaky_plugins must be a list" entity))
  in
  match str "cvl_file" with
  | None -> Error (Printf.sprintf "manifest %s: cvl_file is required" entity)
  | Some cvl_file ->
    Ok
      {
        entity;
        enabled;
        search_paths;
        cvl_file;
        lens = str "lens";
        rule_type = str "rule_type";
        flaky_plugins;
      }

let parse text =
  match Yamlite.Parse.string text with
  | Error e -> Error (Yamlite.Parse.error_to_string e)
  | Ok (Yamlite.Value.Map sections) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (entity, v) :: rest -> (
        match Yamlite.Value.get_map v with
        | Some kvs ->
          let* entry = entry_of_section entity kvs in
          go (entry :: acc) rest
        | None -> Error (Printf.sprintf "manifest %s: section must be a mapping" entity))
    in
    go [] sections
  | Ok _ -> Error "a manifest must be a mapping of entity sections"

let parse_exn text =
  match parse text with
  | Ok entries -> entries
  | Error msg -> invalid_arg (Printf.sprintf "Manifest.parse_exn: %s" msg)

let load_rules source entry = Loader.load_file source entry.cvl_file

let to_yaml entries =
  Yamlite.Value.Map
    (List.map
       (fun e ->
         let base =
           [
             ("enabled", Yamlite.Value.Bool e.enabled);
             ( "config_search_paths",
               Yamlite.Value.List (List.map (fun p -> Yamlite.Value.Str p) e.search_paths) );
             ("cvl_file", Yamlite.Value.Str e.cvl_file);
           ]
         in
         let base =
           match e.lens with
           | Some l -> base @ [ ("lens", Yamlite.Value.Str l) ]
           | None -> base
         in
         let base =
           match e.rule_type with
           | Some t -> base @ [ ("rule_type", Yamlite.Value.Str t) ]
           | None -> base
         in
         let base =
           match e.flaky_plugins with
           | [] -> base
           | ps ->
             base
             @ [ ("flaky_plugins", Yamlite.Value.List (List.map (fun p -> Yamlite.Value.Str p) ps)) ]
         in
         (e.entity, Yamlite.Value.Map base))
       entries)

let to_string entries = Yamlite.Print.to_string (to_yaml entries)
