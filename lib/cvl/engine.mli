(** The rule engine: applies CVL rules to an entity's normalized
    configuration (paper §3.1, "the brain of ConfigValidator").

    Composite rules are not evaluated here — they aggregate per-entity
    results and are resolved by {!Validator} once every entity has been
    evaluated. *)

type verdict =
  | Matched  (** the configuration complies *)
  | Not_matched  (** a violation: non-preferred matched or preferred did not *)
  | Not_present  (** the configuration item was not found *)
  | Not_applicable  (** required context missing (no files, unmet require_other_configs) *)
  | Engine_error of { stage : Resilience.stage; message : string }
      (** infrastructure failure attributed to the pipeline stage that
          produced it: lens failure, unknown or faulted plugin, bad
          query, contained exception, … *)

val verdict_to_string : verdict -> string

(** [Matched] and — when the rule says absence is fine
    ([not_present_pass], or a path rule with [should_exist: false]) —
    [Not_present] count as compliant; [Not_applicable] is neutral. *)
val is_violation : verdict -> bool

type result = {
  entity : string;
  frame_id : string;
  rule : Rule.t;
  verdict : verdict;
  detail : string;  (** the rule's output description for this verdict *)
  evidence : string list;  (** observed values, paths, metadata lines *)
}

(** An entity's configuration after extraction and normalization:
    parsed config files plus frame access for path and script rules. *)
type entity_ctx = {
  entity : string;
  frame : Frames.Frame.t;
  configs : (string * (Lenses.Lens.normalized, string) Stdlib.result) list;
      (** (path, parse outcome) for every crawled file *)
}

(** Crawl and normalize: find the entry's config files in the frame and
    parse each with the entry's lens (or an inferred one), via the
    content-addressed {!Normcache} so frames sharing identical files
    normalize once. Parse failures are retained per-file so one
    unparsable file degrades only the rules that need it. *)
val build_ctx : Frames.Frame.t -> Manifest.entry -> entity_ctx

(** Build a context directly from labelled documents (used by script
    output and tests). *)
val ctx_of_documents :
  entity:string -> Frames.Frame.t -> (string * Lenses.Lens.normalized) list -> entity_ctx

(** Evaluate one non-composite rule. Disabled rules yield
    [Not_applicable]. Passing a [Rule.Composite] or [Rule.Cluster]
    (both resolved by {!Validator} over many results/frames) yields
    [Engine_error]. *)
val eval_rule : entity_ctx -> Rule.t -> result

(** The context's parsed tree forests, restricted to files matching any
    of the given patterns ([[]] = all files). Used by {!Cluster} to run
    fleet-scoped queries over each frame's forests. *)
val trees_in_context :
  entity_ctx -> string list -> (string * Configtree.Tree.t list) list

(** {2 Execution plans}

    The verdict logic of each rule type is a {e core} parameterized by
    an execution plan: how nodes are located, how the required-config
    gate is decided, how expectations are checked. [eval_rule] builds
    an interpretive plan afresh on every call (parsing path strings,
    resolving match specs); {!Compile} builds one plan per rule, once,
    with pre-parsed paths, compiled matchers and {!Configtree.Index}
    queries. Both constructions produce byte-identical results — the
    differential tests assert it over the whole corpus. *)

type tree_exec = {
  te_nodes : Configtree.Tree.t list -> Configtree.Tree.t list;
      (** all [config_path/name] hits of one file's forest, in
          [config_paths] order *)
  te_requires : Configtree.Tree.t list -> bool;
      (** the [require_other_configs] gate *)
  te_preferred : (string list -> bool) option;
      (** every observed value satisfies the preferred expectation *)
  te_non_preferred : (string list -> string list) option;
      (** observed values matching the non-preferred expectation *)
}

type schema_exec = {
  se_rows : Configtree.Table.t -> (string list list, string) Stdlib.result;
      (** select + project one table; the parsed row query inside is
          file-independent, so compiled once (and the fused engine
          memoizes whole-table results across rules sharing a query) *)
  se_preferred : (string list -> bool) option;
  se_non_preferred : (string list -> string list) option;
}

(** The canonical [se_rows] for a schema rule: the query is parsed once,
    each call selects and projects one table. Shared by the interpreter,
    compiled and fused constructions so error text stays byte-identical. *)
val schema_rows :
  Rule.schema_rule -> Configtree.Table.t -> (string list list, string) Stdlib.result

type script_exec = {
  sc_plugin : Crawler.plugin option;  (** registry lookup, done once *)
  sc_run : Frames.Frame.t -> Crawler.plugin -> (string, Resilience.failure) Stdlib.result;
      (** how to invoke the plugin under the resilience policy; the
          fused engine routes this through a per-cell shared memo so the
          expensive plugin body runs once per entity evaluation while
          the retry/breaker bookkeeping still replays per rule *)
  sc_nodes : Configtree.Tree.t list -> Configtree.Tree.t list;
      (** all [script_config_paths] hits in the plugin's output forest *)
  sc_preferred : (string list -> bool) option;
  sc_non_preferred : (string list -> string list) option;
}

val eval_tree_core : entity_ctx -> Rule.t -> Rule.tree_rule -> tree_exec -> result
val eval_schema_core : entity_ctx -> Rule.t -> Rule.schema_rule -> schema_exec -> result
val eval_script_core : entity_ctx -> Rule.t -> Rule.script_rule -> script_exec -> result

(** Path rules stat the frame directly; there is nothing to precompile,
    so compiled programs call the interpreter's evaluator. *)
val eval_path_in : entity_ctx -> Rule.t -> Rule.path_rule -> result

(** Evaluate an entity's rules in order. *)
val eval_entity : entity_ctx -> Rule.t list -> result list

(** {2 Lookup helpers for composite evaluation} *)

(** Find a configuration value by key within an entity's parsed trees:
    [subpath] (from [CONFIGPATH=\[...\]]) scopes the search; otherwise
    the key is looked up at the roots and then anywhere ([**/key]).
    Dotted keys are first tried as a single label (sysctl style), then
    as a path. *)
val lookup_config_value :
  entity_ctx -> key:string -> subpath:string option -> string option
