(** End-to-end validation: the full ConfigValidator pipeline
    (extract → normalize → evaluate → aggregate) over one or more
    configuration frames.

    A {e deployment} is the list of frames being validated together —
    e.g. a host plus its containers. Per-entity rules run against every
    frame; composite rules then aggregate per-entity outcomes across the
    whole deployment (paper §3.1: "for cross-entity validation the rule
    engine performs a logical conjunction/disjunction over the
    per-entity rule evaluations"). *)

type t = {
  results : Engine.result list;  (** per-entity results, then composites *)
  load_errors : (string * string) list;  (** (entity, message) *)
  compile_diagnostics : Compile.diagnostic list;
      (** malformed path literals found while lowering rules to
          programs — reported, not fatal; empty on interpreted runs *)
  health : Resilience.health;
      (** per-stage error taxonomy, retry/breaker counters and the
          degraded flag for this run *)
}

(** [run ~source ~manifest frames] loads every enabled entity's rules
    and evaluates them.

    [tags], when non-empty, keeps only rules carrying at least one of
    the given tags (e.g. [["#cis"]]).

    [keep_not_applicable] (default [false]) retains [Not_applicable]
    results — with several frames in a deployment most entities are
    absent from most frames, so the default drops that noise unless the
    deployment has a single frame.

    [jobs] shards the frame × entity work grid across that many
    domains ([0] = auto via {!Pool.default_jobs}; default [1],
    sequential). [pool] supplies an existing {!Pool.t} instead, so a
    long-running validator amortizes domain spawning across scans; it
    takes precedence over [jobs]. Whatever the parallelism, results
    come back in the deterministic sequential order (entity in manifest
    order, then frame in deployment order, then rule in file order,
    composites last) — byte-identical across job counts.

    [engine] selects the evaluation strategy, as in {!run_loaded};
    default [`Fused]. *)
val run :
  ?tags:string list ->
  ?keep_not_applicable:bool ->
  ?jobs:int ->
  ?pool:Pool.t ->
  ?engine:[ `Fused | `Compiled | `Interpreted ] ->
  source:Loader.source ->
  manifest:Manifest.entry list ->
  Frames.Frame.t list ->
  t

(** [run_loaded ~rules frames] is {!run} with rule loading already done
    — the per-target work of a long-running validator that amortizes
    rule loading across targets (as the paper's production deployment
    does across tens of thousands of containers).

    [engine] selects the evaluation strategy: [`Fused] (the default)
    compiles the rules and merges every entity's path queries into one
    shared {!Configtree.Index.Plan} walk per forest, with cross-rule
    schema and plugin sharing (see {!Fuse}); [`Compiled] lowers the
    rules to per-rule programs via {!Compile} and dispatches those;
    [`Interpreted] re-derives paths, match specs and queries on every
    evaluation, as the engine did before ahead-of-time compilation
    existed. All three produce byte-identical results at every job
    count — the differential tests assert it — so the only reason to
    pass a non-default engine is benchmarking or differential
    testing. *)
val run_loaded :
  ?tags:string list ->
  ?keep_not_applicable:bool ->
  ?jobs:int ->
  ?pool:Pool.t ->
  ?engine:[ `Fused | `Compiled | `Interpreted ] ->
  rules:(Manifest.entry * Rule.t list) list ->
  Frames.Frame.t list ->
  t

(** [compile rules] is {!Compile.compile}: lower loaded rules into
    programs once, for many {!run_compiled} calls. *)
val compile : (Manifest.entry * Rule.t list) list -> Compile.t

(** [run_compiled ~compiled frames] is {!run_loaded} with compilation
    already done — the steady state of a long-running validator: load
    once, compile once, dispatch per scan. *)
val run_compiled :
  ?tags:string list ->
  ?keep_not_applicable:bool ->
  ?jobs:int ->
  ?pool:Pool.t ->
  compiled:Compile.t ->
  Frames.Frame.t list ->
  t

(** [run_fused ~fused frames] is {!run_compiled} over a fused plan (see
    {!Fuse.fuse}): the steady state of the default engine — load once,
    compile once, fuse once, one shared walk per (entity, forest) per
    scan. Byte-identical results to both other engines. *)
val run_fused :
  ?tags:string list ->
  ?keep_not_applicable:bool ->
  ?jobs:int ->
  ?pool:Pool.t ->
  fused:Fuse.t ->
  Frames.Frame.t list ->
  t

(** Load every enabled entity's rules once, for {!run_loaded}. *)
val load_rules :
  source:Loader.source ->
  manifest:Manifest.entry list ->
  ((Manifest.entry * Rule.t list) list, (string * string) list) result

(** Evaluate only the cluster rules of [rules] over already-built frame
    contexts — used by incremental revalidation, which (like composites)
    always recomputes fleet-scoped verdicts after splicing. Results are
    in manifest/rule order with [frame_id = deployment_id]. *)
val eval_clusters :
  rules:(Manifest.entry * Rule.t list) list ->
  ctxs:(string * Engine.entity_ctx list) list ->
  deployment_id:string ->
  Engine.result list

(** Evaluate only the composite rules of [rules] against
    already-computed per-entity results — used by incremental
    revalidation, which recomputes composites after splicing. *)
val eval_composites :
  rules:(Manifest.entry * Rule.t list) list ->
  plain_results:Engine.result list ->
  ctxs:(string * Engine.entity_ctx list) list ->
  deployment_id:string ->
  Engine.result list

(** Composite-expression environment over already-computed results and
    contexts — exposed for tests and for the benchmark ablations. *)
val env_of :
  results:Engine.result list ->
  ctxs:(string * Engine.entity_ctx list) list ->
  Expr.env
