(** Content-addressed cache over {!Lenses.Registry.parse}.

    Normalization re-parses every crawled file for every frame; in a
    fleet most frames share most files (layered docksim images, hosts
    stamped from one template), so {!Engine.build_ctx} routes parsing
    through this cache, keyed by [(lens_name, path, MD5(content))].
    Identical content under the same path and lens normalizes once per
    process instead of once per frame.

    Only successful parses are memoized: a failure can be transient (a
    half-written file observed mid-scan), and caching it would make it
    permanent for the process even after the input recovers. A retried
    parse of the same (lens, path, digest) can therefore succeed.

    The cache is process-global, domain-safe, and enabled by default;
    the benchmark harness toggles it for the cold/warm ablation and the
    incremental tests assert on the hit/miss counters. *)

(** Cumulative counters since the last {!reset}. A hit means the parse
    was skipped entirely; a miss is a parse whose [Ok] result entered
    the cache. [errors_cached] counts parse failures that would have
    been memoized before error caching was removed — they are observed,
    counted, and deliberately not stored (and not counted as misses, so
    steady-state miss counts stay flat even over unparseable files). *)
type stats = { hits : int; misses : int; errors_cached : int }

(** Cached equivalent of {!Lenses.Registry.parse}: same signature, same
    outcomes. [Ok] results are served from the cache on repeat;
    [Error] results are recomputed every time. *)
val parse :
  ?lens_name:string -> path:string -> string -> (Lenses.Lens.normalized, string) result

(** Toggle caching (default on). Disabling does not clear the table;
    use {!reset} for a cold start. *)
val set_enabled : bool -> unit

val is_enabled : unit -> bool

(** Drop every entry and zero the counters. *)
val reset : unit -> unit

val stats : unit -> stats

(** Test/fault hook: when [Some h], [h ~lens_name ~path content] is
    consulted before the lens registry; [Some outcome] replaces the
    registry parse (subject to the same caching rules), [None] falls
    through. Used by unit tests to model transient parse failures. *)
val set_parse_hook :
  (lens_name:string option -> path:string -> string -> (Lenses.Lens.normalized, string) result option)
  option ->
  unit
