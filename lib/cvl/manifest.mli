(** Per-entity manifests (paper Listing 5): where to look for an
    entity's configuration and which CVL file holds its rules.

    {v
    nginx:
      enabled: True
      config_search_paths:
        - /etc/nginx
      cvl_file: "component_configs/nginx.yaml"
      lens: nginx            # optional; inferred from paths otherwise
    v}

    A manifest document is a mapping from entity name to such a
    section; several entities may appear in one document. *)

type entry = {
  entity : string;
  enabled : bool;
  search_paths : string list;
  cvl_file : string;
  lens : string option;
  rule_type : string option;  (** advisory; rules carry their own type *)
  flaky_plugins : string list;
      (** plugins known to be unreliable for this entity; the linter
          warns when a script rule names one without declaring an
          [on_plugin_failure] fallback *)
}

val parse : string -> (entry list, string) result
val parse_exn : string -> entry list

(** Load and parse the entry's rule file through a {!Loader.source}. *)
val load_rules : Loader.source -> entry -> (Rule.t list, string) result

val to_yaml : entry list -> Yamlite.Value.t
val to_string : entry list -> string
