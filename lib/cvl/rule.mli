(** The CVL rule model: the five rule types of the paper (§3.2), plus
    the fleet-scoped [scope: cluster] rule type whose queries span a
    whole set of frames (see {!Cluster}).

    Construction normally happens through {!Loader}; the records are
    exposed so programs can also build rules directly (the embedded
    rulesets do, and the spec-size benchmarks render them back to CVL
    text, XCCDF/OVAL and InSpec). *)

(** Fields shared by every rule type. *)
type common = {
  name : string;
  description : string;
  tags : string list;
  severity : string;  (** informational; default ["medium"] *)
  matched_description : string;
  not_matched_description : string;
  not_present_description : string;
  suggested_action : string;
  disabled : bool;
}

val common :
  ?description:string ->
  ?tags:string list ->
  ?severity:string ->
  ?matched:string ->
  ?not_matched:string ->
  ?not_present:string ->
  ?suggested_action:string ->
  ?disabled:bool ->
  string ->
  common

(** A value assertion: the list of rule values plus match semantics. *)
type expectation = {
  values : string list;
  match_spec : Matcher.t;
}

type tree_rule = {
  tree_common : common;
  config_paths : string list;  (** alternates; [""] = forest roots *)
  preferred : expectation option;
  non_preferred : expectation option;
  file_context : string list;  (** file patterns; [] = all entity files *)
  require_other_configs : string list;
  value_separator : string option;  (** split config value before matching *)
  case_insensitive : bool;
  check_presence_only : bool;
  not_present_pass : bool;
}

type schema_rule = {
  schema_common : common;
  query_constraints : string;
  query_constraints_value : string list;
  query_columns : string list;
  schema_preferred : expectation option;
  schema_non_preferred : expectation option;
  schema_file_context : string list;
  expect_rows : int option;  (** minimum row count, when given *)
}

type path_rule = {
  path_common : common;
  path : string;
  ownership : string option;  (** ["uid:gid"] *)
  permission : int option;  (** octal ceiling: stricter modes pass *)
  should_exist : bool;
  file_type : string option;  (** ["file"] | ["directory"] | ["symlink"] *)
}

type script_rule = {
  script_common : common;
  plugin : string;  (** crawler plugin name *)
  script_config_paths : string list;  (** address into the plugin output *)
  script_preferred : expectation option;
  script_non_preferred : expectation option;
  script_not_present_pass : bool;
  on_plugin_failure : string option;
      (** ["degrade"] turns an exhausted plugin fault into
          [Not_applicable] instead of an [Engine_error] *)
}

type composite_rule = {
  composite_common : common;
  expression : string;  (** parsed by {!Expr} at evaluation time *)
}

(** A fleet-scoped rule ([scope: cluster]): the query runs per frame,
    then a cross-frame aggregator judges the whole deployment at once.
    Evaluated by the validator over the regrouped per-frame contexts
    (see {!Cluster}), never per (entity, frame) cell. *)
type cluster_rule = {
  cluster_common : common;
  aggregate : string;
      (** [equal_across] | [exists_referent] | [count] |
          [consistent_across] *)
  cluster_config_paths : string list;
      (** full paths to the observed leaf, script-rule style *)
  cluster_file_context : string list;  (** file patterns; [] = all files *)
  referent_config_path : string option;
      (** [exists_referent]: path whose fleet-wide values form the
          referent set; absent = the fleet's frame ids *)
  cluster_value_separator : string option;
  min_frames : int option;  (** quorum floor on participating frames *)
  max_frames : int option;  (** quorum ceiling on participating frames *)
  group_by : string option;
      (** [consistent_across]: config key partitioning frames into
          consistency groups *)
}

type t =
  | Tree of tree_rule
  | Schema of schema_rule
  | Path of path_rule
  | Script of script_rule
  | Composite of composite_rule
  | Cluster of cluster_rule

val common_of : t -> common
val name : t -> string
val tags : t -> string list
val kind_to_string : t -> string
val is_disabled : t -> bool

(** [with_common rule c] replaces the common fields (inheritance
    overrides use this). *)
val with_common : t -> common -> t

(** [has_tag rule "#cis"] — exact tag membership. *)
val has_tag : t -> string -> bool
