(** Path expressions over configuration trees.

    A path is a ['/']-separated sequence of segments. A segment is
    - a literal label, e.g. [server] (labels may contain dots, as in
      sysctl keys such as [net.ipv4.ip_forward]);
    - an indexed label, e.g. [server[2]], selecting the 2nd sibling with
      that label (1-based, as in Augeas);
    - [*], matching any single label;
    - [**], matching any chain of zero or more labels.

    The empty path [""] denotes the forest roots themselves, which lets
    CVL rules with [config_path: [""]] match top-level keys such as
    [PermitRootLogin] in sshd_config. *)

type segment =
  | Label of string
  | Indexed of string * int
  | Wildcard
  | Deep

type t = segment list

val parse : string -> (t, string) result

(** [parse_exn s] is [parse s].
    @raise Invalid_argument on malformed paths. *)
val parse_exn : string -> t

val to_string : t -> string

(** All nodes reached by following the path from the forest roots. The
    path addresses nodes, not values: [find forest (parse_exn "a/b")]
    returns every node labelled [b] under a root labelled [a]. An empty
    path returns the roots. *)
val find : Tree.t list -> t -> Tree.t list

(** Values of the matched nodes, skipping valueless matches. *)
val find_values : Tree.t list -> t -> string list

val exists : Tree.t list -> t -> bool

(** [find_str forest "a/b"] parses then finds.
    @raise Invalid_argument on malformed paths. *)
val find_str : Tree.t list -> string -> Tree.t list

val find_values_str : Tree.t list -> string -> string list
val exists_str : Tree.t list -> string -> bool

(** First-occurrence deduplication by physical identity, as applied to
    [find] results (several [**] segments can reach one node twice).
    Exposed so alternate query evaluators ([Index]) produce lists that
    are element-for-element identical to [find]. *)
val dedup_phys : Tree.t list -> Tree.t list
