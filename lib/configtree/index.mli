(** Per-forest query accelerator.

    An index wraps one immutable forest and answers [Path] queries with
    interned labels, per-node children-by-label hashtables (built on
    first touch), memoized [**] deep-descent results, and a top-level
    memo per full path. Results are guaranteed element-for-element
    identical to [Path.find] on the same forest — same traversal order,
    same physical-identity dedup.

    Trees are immutable, so an index can never observe a stale forest:
    mutating a frame re-parses into a *new* forest value, and
    [for_forest] (keyed by physical identity) hands back a fresh index
    for it while old indexes keep answering for the old forest. *)

type t

(** Build an (empty, lazily filled) index over a forest. The label
    intern pool is completed eagerly; everything else on demand. *)
val create : Tree.t list -> t

(** The forest this index answers for. *)
val forest : t -> Tree.t list

(** Same contract as {!Path.find}, accelerated. *)
val find : t -> Path.t -> Tree.t list

(** Same contract as {!Path.find_values}, accelerated. *)
val find_values : t -> Path.t -> string list

(** Same contract as {!Path.exists}, accelerated. *)
val exists : t -> Path.t -> bool

(** [(memo_hits, memo_misses)] of the top-level per-path memo. A fused
    {!run_plan} counts once: a hit when the plan's result table is
    already memoized for this index, a miss when the shared walk runs. *)
val stats : t -> int * int

(** Fused multi-query plans: N path queries merged into one prefix trie,
    answered by a single shared walk over the forest. *)
module Plan : sig
  type plan

  (** Merge the given queries into one trie. The array index of each
      path is its query id in the result table of {!Index.run_plan}.
      Plans are immutable after construction and safe to share across
      domains; each carries a process-unique id used as the memo key. *)
  val build : Path.t array -> plan

  (** The planned queries, in query-id order. *)
  val paths : plan -> Path.t array

  (** Number of planned queries. *)
  val size : plan -> int

  (** Proper-prefix pairs [(i, j)]: query [i]'s segment list is a strict
      prefix of query [j]'s (the shared walk for [j] passes through
      [i]'s end node). Identical paths don't count. Sorted. *)
  val subsumptions : plan -> (int * int) list
end

(** Answer every query of [plan] with one shared walk over this index's
    forest. [result.(i)] is element-for-element identical to
    [find t (Plan.paths plan).(i)] — same match order, same dedup. The
    result table is memoized per (index, plan), and the walk seeds the
    per-path memo so residual single-path [find]s on planned paths hit. *)
val run_plan : t -> Plan.plan -> Tree.t list array

(** The index for [forest] from the calling domain's cache, built on
    first request. Keyed by physical identity: parsed forests are shared
    by the normalization cache, so frames with identical content share
    one index, while any re-parse (frame mutation) yields a new forest
    and therefore a new index. Domain-local, hence lock-free. *)
val for_forest : Tree.t list -> t
