(** Node-visit accounting for path-query evaluation.

    Every query strategy — the plain {!Path.find} recursion, the
    per-forest {!Index}, and the fused multi-query {!Index.Plan} walk —
    bumps this process-wide counter once per node it touches. The bench
    harness resets it around a run to report how many nodes each engine
    visited, making speedups explainable structurally rather than only
    by wall clock. Coarse by design; monotonic between {!reset}s;
    atomic, so safe from any domain. *)

val note : int -> unit
(** Record [n] node visits ([n <= 0] is a no-op). *)

val note1 : unit -> unit
(** Record one node visit. *)

val reset : unit -> unit
(** Zero the counter (bench harness only; not per-run). *)

val count : unit -> int
(** Visits recorded since the last {!reset}. *)
