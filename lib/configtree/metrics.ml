(* Node-visit accounting for path-query evaluation.

   A "visit" is one node touched while answering path queries: a
   sibling-list scan in [Path.select], a deep-descent iteration, a
   by-label bucket materialization, a trie-walk step. The counter is
   deliberately coarse — it exists so the bench output can explain a
   wall-clock win structurally ("the fused walk touched 40x fewer
   nodes"), not to be a precise cost model. Atomic so pool workers on
   any domain can bump it without coordination. *)

let visits = Atomic.make 0

let note n = if n > 0 then ignore (Atomic.fetch_and_add visits n)
let note1 () = ignore (Atomic.fetch_and_add visits 1)
let reset () = Atomic.set visits 0
let count () = Atomic.get visits
