type segment =
  | Label of string
  | Indexed of string * int
  | Wildcard
  | Deep

type t = segment list

let parse_segment s =
  if s = "*" then Ok Wildcard
  else if s = "**" then Ok Deep
  else if s = "" then Error "empty path segment"
  else
    match String.index_opt s '[' with
    | None -> Ok (Label s)
    | Some i ->
      if String.length s < i + 3 || s.[String.length s - 1] <> ']' then
        Error (Printf.sprintf "malformed index in segment %S" s)
      else
        let label = String.sub s 0 i in
        let digits = String.sub s (i + 1) (String.length s - i - 2) in
        (match int_of_string_opt digits with
        | Some n when n >= 1 && label <> "" -> Ok (Indexed (label, n))
        | _ -> Error (Printf.sprintf "malformed index in segment %S" s))

let parse s =
  if String.trim s = "" then Ok []
  else
    let parts = String.split_on_char '/' s in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
        match parse_segment p with
        | Ok seg -> go (seg :: acc) rest
        | Error _ as e -> e)
    in
    go [] parts

let parse_exn s =
  match parse s with
  | Ok p -> p
  | Error msg -> invalid_arg (Printf.sprintf "Path.parse_exn: %s" msg)

let segment_to_string = function
  | Label l -> l
  | Indexed (l, n) -> Printf.sprintf "%s[%d]" l n
  | Wildcard -> "*"
  | Deep -> "**"

let to_string p = String.concat "/" (List.map segment_to_string p)

(* [select forest seg] is the list of children of [forest] matched by one
   segment. Indexing is relative to same-label siblings, as in Augeas. *)
let select (forest : Tree.t list) seg =
  Metrics.note (List.length forest);
  match seg with
  | Wildcard -> forest
  | Label l -> List.filter (fun (n : Tree.t) -> String.equal n.label l) forest
  | Indexed (l, idx) ->
    (* Walk straight to the k-th same-label sibling instead of
       materializing the whole filtered list first. *)
    let rec nth k = function
      | [] -> []
      | (n : Tree.t) :: rest ->
        if String.equal n.label l then if k = 1 then [ n ] else nth (k - 1) rest
        else nth k rest
    in
    nth idx forest
  | Deep -> assert false

(* Physical identity is the dedup criterion: [( == )] for equality, and
   since physically equal values are structurally equal the (depth-bounded)
   structural [Hashtbl.hash] is a valid hash for it. *)
module Phys_tbl = Hashtbl.Make (struct
  type t = Tree.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let dedup_phys = function
  | ([] | [ _ ]) as nodes -> nodes
  | nodes ->
    let seen = Phys_tbl.create (List.length nodes) in
    List.filter
      (fun n ->
        if Phys_tbl.mem seen n then false
        else begin
          Phys_tbl.add seen n ();
          true
        end)
      nodes

let find forest path =
  (* [**] matches zero or more labels, so [**/x] must reach root-level
     [x] as well as arbitrarily deep ones. Matching recurses on sibling
     lists; physical duplicates (possible with several [**]) are folded
     out at the end. *)
  let rec go (forest : Tree.t list) = function
    | [] -> forest
    | Deep :: rest ->
      Metrics.note (List.length forest);
      let here = go forest rest in
      let deeper = List.concat_map (fun (n : Tree.t) -> go n.children (Deep :: rest)) forest in
      here @ deeper
    | seg :: rest ->
      let selected = select forest seg in
      if rest = [] then selected
      else List.concat_map (fun (n : Tree.t) -> go n.children rest) selected
  in
  dedup_phys (go forest path)

let find_values forest path =
  List.filter_map (fun (n : Tree.t) -> n.value) (find forest path)

let exists forest path = find forest path <> []
let find_str forest s = find forest (parse_exn s)
let find_values_str forest s = find_values forest (parse_exn s)
let exists_str forest s = exists forest (parse_exn s)
