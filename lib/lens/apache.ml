let split_keyword text =
  match String.index_opt text ' ' with
  | None -> (text, "")
  | Some i ->
    (String.sub text 0 i, String.trim (String.sub text (i + 1) (String.length text - i - 1)))

let parse_tree input =
  let lines = Lex.lines ~continuation:true input in
  let rec parse acc stack = function
    | [] -> (
      match stack with
      | [] -> Ok (List.rev acc)
      | (tag, _, _) :: _ -> Error (Printf.sprintf "apache: unclosed <%s> section" tag))
    | { Lex.num; text } :: rest ->
      if Lex.starts_with ~prefix:"</" text then begin
        let len = String.length text in
        let stop = if len > 2 && text.[len - 1] = '>' then len - 3 else len - 2 in
        let tag = String.trim (String.sub text 2 stop) in
        match stack with
        | (open_tag, value, children) :: outer when String.lowercase_ascii open_tag = String.lowercase_ascii tag ->
          let node = Configtree.Tree.node ?value ~children:(List.rev children) open_tag in
          (match outer with
          | [] -> parse (node :: acc) [] rest
          | (t, v, siblings) :: outer' -> parse acc ((t, v, node :: siblings) :: outer') rest)
        | (open_tag, _, _) :: _ ->
          Error (Printf.sprintf "apache: line %d: </%s> closes <%s>" num tag open_tag)
        | [] -> Error (Printf.sprintf "apache: line %d: stray </%s>" num tag)
      end
      else if text.[0] = '<' && text.[String.length text - 1] = '>' then begin
        let inner = String.sub text 1 (String.length text - 2) in
        let tag, args = split_keyword inner in
        let value = if args = "" then None else Some args in
        parse acc ((tag, value, []) :: stack) rest
      end
      else begin
        let keyword, args = split_keyword text in
        (* Header directives are addressed by header name (cf. the nginx
           add_header specialization): the name is the first argument
           that is not a condition or action keyword. *)
        let leaf =
          if String.lowercase_ascii keyword = "header" then begin
            let modifiers =
              [ "always"; "onsuccess"; "set"; "append"; "add"; "merge"; "unset"; "echo"; "edit" ]
            in
            let tokens = Lex.tokens args in
            match List.partition (fun t -> List.mem (String.lowercase_ascii t) modifiers) tokens with
            | _, name :: rest -> Configtree.Tree.leaf ("Header " ^ name) (String.concat " " rest)
            | _, [] -> Configtree.Tree.leaf keyword args
          end
          else Configtree.Tree.leaf keyword args
        in
        match stack with
        | [] -> parse (leaf :: acc) [] rest
        | (t, v, siblings) :: outer -> parse acc ((t, v, leaf :: siblings) :: outer) rest
      end
  in
  parse [] [] lines

let render_tree forest =
  let buf = Buffer.create 256 in
  let rec go indent (n : Configtree.Tree.t) =
    let pad = String.make indent ' ' in
    if n.children = [] then
      match n.value with
      | Some "" | None -> Buffer.add_string buf (Printf.sprintf "%s%s\n" pad n.label)
      | Some v -> Buffer.add_string buf (Printf.sprintf "%s%s %s\n" pad n.label v)
    else begin
      let head =
        match n.value with None | Some "" -> n.label | Some v -> n.label ^ " " ^ v
      in
      Buffer.add_string buf (Printf.sprintf "%s<%s>\n" pad head);
      List.iter (go (indent + 2)) n.children;
      Buffer.add_string buf (Printf.sprintf "%s</%s>\n" pad n.label)
    end
  in
  List.iter (go 0) forest;
  Buffer.contents buf

let lens =
  Lens.make ~name:"apache" ~description:"Apache httpd directives and container sections"
    ~file_patterns:[ "apache2.conf"; "httpd.conf"; "apache2/conf-enabled/*"; "apache2/mods-enabled/*.conf" ]
    ~render:(function Lens.Tree forest -> Some (render_tree forest) | Lens.Table _ -> None)
    (fun ~filename:_ input -> Result.map (fun f -> Lens.Tree f) (parse_tree input))
