(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§4), plus the ablations DESIGN.md calls out.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- table2  # one section

   Sections: table1, table2, listing6, ablation-a ... ablation-e. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Measurement helper                                                  *)
(* ------------------------------------------------------------------ *)

(* OLS-estimated nanoseconds per run of [f], via one Bechamel test. *)
let measure_ns ?(quota = 0.5) name f =
  let test = Test.make ~name (Staged.stage f) in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second quota) ~kde:None () in
  let results = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let analyzed = Analyze.all ols Instance.monotonic_clock results in
  Hashtbl.fold
    (fun _ v acc ->
      match Analyze.OLS.estimates v with
      | Some [ estimate ] -> estimate
      | Some _ | None -> acc)
    analyzed Float.nan

let pp_time ns =
  if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let heading title =
  Printf.printf "\n==================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==================================================================\n%!"

(* ------------------------------------------------------------------ *)
(* Table 1: coverage                                                   *)
(* ------------------------------------------------------------------ *)

let table1 () =
  heading "Table 1 - Targets supported by ConfigValidator";
  let per_entity = Rulesets.all_rules () in
  let count e = List.length (List.assoc e per_entity) in
  let group label entities =
    Printf.printf "%-17s| %s\n" label
      (String.concat ", " (List.map (fun e -> Printf.sprintf "%s (%d)" e (count e)) entities))
  in
  group "Applications" Rulesets.applications;
  group "System services" Rulesets.system_services;
  group "Cloud services" Rulesets.cloud_services;
  let total = Rulesets.paper_rule_count () in
  Printf.printf "\n%d target types, %d rules (paper: 11 target types, 135 rules)\n"
    (List.length (Rulesets.applications @ Rulesets.system_services @ Rulesets.cloud_services))
    total;
  Printf.printf "All CIS except: nginx/apache (OWASP), hadoop (HIPAA, PCI), openstack (OSSG)\n"

(* ------------------------------------------------------------------ *)
(* Table 2: engine comparison on the 40 common CIS rules               *)
(* ------------------------------------------------------------------ *)

(* The paper measured wall-clock for 40-rule runs per engine on a real
   Ubuntu host. Here every engine validates the same synthetic host
   frame, with its specification already loaded — the steady state of
   the paper's production deployment, which amortizes rule loading
   across tens of thousands of containers. CIS-CAT pays its modelled
   per-invocation JVM/license startup inside the timed region, because
   that cost is per run, not per loaded profile. *)
let table2 () =
  heading "Table 2 - Comparison across validation tools (40 CIS rules)";
  let checks = Checkir.Cis40.all in
  let frame = Scenarios.Host.misconfigured () in

  (* ConfigValidator: crawl, normalize with lenses, evaluate CVL rules
     (rules parsed once, outside the timed region). *)
  let cvl_manifest_yaml, cvl_files = Checkir.To_cvl.bundle checks in
  let cvl_rules =
    match
      Cvl.Validator.load_rules
        ~source:(Cvl.Loader.assoc_source cvl_files)
        ~manifest:(Cvl.Manifest.parse_exn cvl_manifest_yaml)
    with
    | Ok rules -> rules
    | Error ((e, msg) :: _) -> failwith (e ^ ": " ^ msg)
    | Error [] -> assert false
  in
  let run_cvl () =
    List.length (Cvl.Validator.run_loaded ~rules:cvl_rules [ frame ]).Cvl.Validator.results
  in

  (* Chef InSpec (observed bash encoding): execute the grep pipelines. *)
  let inspec_compiled = List.map Inspeclite.Engine.compile checks in
  let run_inspec () =
    List.length
      (List.map
         (fun (c : Inspeclite.Engine.compiled) ->
           c.Inspeclite.Engine.accepts (Inspeclite.Bash_emu.run frame c.Inspeclite.Engine.command))
         inspec_compiled)
  in

  (* OpenSCAP: evaluate the OVAL definitions of the parsed benchmark. *)
  let benchmark_xml = Scap.Xccdf.to_xml (Scap.Xccdf.of_checks ~id:"cis40" checks) in
  let oval_xml = Scap.Oval.to_xml (Scap.Oval.of_checks checks) in
  let oval_doc = Result.get_ok (Scap.Oval.parse oval_xml) in
  let run_openscap () = List.length (Scap.Oval.evaluate oval_doc frame) in

  (* CIS-CAT: the same evaluation behind the modelled startup cost. *)
  let run_ciscat () =
    match Scap.Ciscat.run ~benchmark_xml ~oval_xml frame with
    | Ok results -> List.length results
    | Error e -> failwith e
  in

  let rows =
    [
      ("ConfigValidator", "YAML", "OCaml (paper: Python)", measure_ns "cvl" (fun () -> run_cvl ()));
      ("Chef Inspec", "Ruby", "OCaml (paper: Ruby)", measure_ns "inspec" (fun () -> run_inspec ()));
      ( "CIS-CAT",
        "XCCDF/OVAL",
        "OCaml (paper: Java)",
        measure_ns ~quota:1.0 "ciscat" (fun () -> run_ciscat ()) );
      ("OpenSCAP", "XCCDF/OVAL", "OCaml (paper: C)", measure_ns "openscap" (fun () -> run_openscap ()));
    ]
  in
  Printf.printf "%-16s %-12s %-22s %s\n" "Tool" "Spec lang" "Impl lang" "Time, 40-rule run";
  Printf.printf "%s\n" (String.make 72 '-');
  List.iter
    (fun (tool, spec, impl, ns) -> Printf.printf "%-16s %-12s %-22s %s\n" tool spec impl (pp_time ns))
    rows;
  let time_of name = List.find_map (fun (t, _, _, ns) -> if t = name then Some ns else None) rows in
  let cvl = Option.get (time_of "ConfigValidator")
  and inspec = Option.get (time_of "Chef Inspec")
  and ciscat = Option.get (time_of "CIS-CAT")
  and openscap = Option.get (time_of "OpenSCAP") in
  Printf.printf
    "\nshape vs paper (1.92s / 1.25s / 14.5s / 0.4s):\n\
    \  openscap fastest: %b   inspec < cvl: %b   ciscat slowest by >5x: %b\n"
    (openscap < cvl && openscap < inspec && openscap < ciscat)
    (inspec < cvl)
    (ciscat > 5. *. Float.max cvl (Float.max inspec openscap));
  (* Sanity: all engines agree with the reference semantics. *)
  let reference_failures =
    List.length (List.filter (fun c -> not (Checkir.Check.holds frame c)) checks)
  in
  Printf.printf "agreement: every engine reports the same %d/40 failing rules\n" reference_failures

(* ------------------------------------------------------------------ *)
(* Listing 6: specification size                                       *)
(* ------------------------------------------------------------------ *)

let count_lines s =
  List.length (List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' s))

let listing6 () =
  heading "Listing 6 - Rule encoding size across formats";
  let checks = Checkir.Cis40.all in
  let exemplar = Checkir.Cis40.permit_root_login in
  let sizes check =
    [
      ("XCCDF/OVAL", count_lines (Scap.Xccdf.rule_to_xml check));
      ("ConfigValidator (CVL)", count_lines (Checkir.To_cvl.rule check));
      ("Chef Inspec (expected)", count_lines (Inspeclite.Render.expected check));
      ("Chef Inspec (observed)", count_lines (Inspeclite.Render.observed check));
      ("ConfValley (CPL)", count_lines (Confvalley.Cpl.render (Confvalley.Cpl.of_check check)));
    ]
  in
  Printf.printf "\"Disable SSH Root Login\" (paper: 45 / 10 / 6 / 7 lines):\n";
  List.iter (fun (fmt, n) -> Printf.printf "  %-24s %3d lines\n" fmt n) (sizes exemplar);
  let mean fmt =
    let total = List.fold_left (fun acc check -> acc + List.assoc fmt (sizes check)) 0 checks in
    float_of_int total /. float_of_int (List.length checks)
  in
  Printf.printf "\nmean over the 40 common rules:\n";
  List.iter
    (fun fmt -> Printf.printf "  %-24s %5.1f lines\n" fmt (mean fmt))
    [ "XCCDF/OVAL"; "ConfigValidator (CVL)"; "Chef Inspec (expected)"; "Chef Inspec (observed)";
      "ConfValley (CPL)" ];
  Printf.printf
    "\n(ConfValley-style CPL is terse but carries the expertise burden the paper\n\
    \ describes: explicit source bindings, format names and quantifier forms\n\
    \ instead of CVL's self-describing keywords and output strings)\n"

(* ------------------------------------------------------------------ *)
(* Ablation A: pipeline stage breakdown                                *)
(* ------------------------------------------------------------------ *)

let ablation_a () =
  heading "Ablation A - Pipeline stage breakdown (135-rule corpus, one host)";
  let frame = Scenarios.Host.misconfigured () in
  let manifest = Rulesets.manifest in
  let source = Rulesets.source in

  let load_ns =
    measure_ns "load" (fun () ->
        List.map (fun e -> Result.get_ok (Cvl.Manifest.load_rules source e)) manifest)
  in
  let rules = Result.get_ok (Cvl.Validator.load_rules ~source ~manifest) in
  let crawl_ns =
    measure_ns "crawl+normalize" (fun () -> List.map (fun e -> Cvl.Engine.build_ctx frame e) manifest)
  in
  let per_target_ns =
    measure_ns "per-target" (fun () -> Cvl.Validator.run_loaded ~rules [ frame ])
  in
  let cold_ns = measure_ns "cold" (fun () -> Cvl.Validator.run ~source ~manifest [ frame ]) in
  Printf.printf "%-44s %s\n" "rule loading (YAML -> rules, once per corpus)" (pp_time load_ns);
  Printf.printf "%-44s %s\n" "per-target validation (rules loaded)" (pp_time per_target_ns);
  Printf.printf "%-44s %s\n" "  of which extraction + normalization" (pp_time crawl_ns);
  Printf.printf "%-44s %s\n" "  of which rule evaluation (residue)"
    (pp_time (Float.max 0. (per_target_ns -. crawl_ns)));
  Printf.printf "%-44s %s\n" "cold run (load + validate)" (pp_time cold_ns);
  Printf.printf
    "\n(rule loading dominates a cold run and is amortized across targets in\n\
    \ production; per-target cost is normalization plus evaluation — the\n\
    \ 'one-time parsing effort' of the paper's Section 6)\n"

(* ------------------------------------------------------------------ *)
(* Ablation B: scaling in rules and entities                           *)
(* ------------------------------------------------------------------ *)

let ablation_b () =
  heading "Ablation B - Scaling with rule count and frame count";
  let frame = Scenarios.Host.misconfigured () in
  let rules =
    Result.get_ok (Cvl.Validator.load_rules ~source:Rulesets.source ~manifest:Rulesets.manifest)
  in
  Printf.printf "rule-count scaling (tag-sliced subsets, one host, rules pre-loaded):\n";
  List.iter
    (fun (label, tags) ->
      let run () = Cvl.Validator.run_loaded ~tags ~rules [ frame ] in
      let kept = List.length (run ()).Cvl.Validator.results in
      let ns = measure_ns label (fun () -> run ()) in
      Printf.printf "  %-28s %4d results  %s\n" label kept (pp_time ns))
    [
      ("#cisubuntu14.04_5.2.8 (1)", [ "#cisubuntu14.04_5.2.8" ]);
      ("#ssl (~15)", [ "#ssl" ]);
      ("#cis (~100)", [ "#cis" ]);
      ("all 135+3", []);
    ];
  Printf.printf "\nframe-count scaling (container fleet, full corpus):\n";
  List.iter
    (fun n ->
      let fleet = Scenarios.Deployment.container_fleet n in
      let ns =
        measure_ns (Printf.sprintf "fleet-%d" n) (fun () -> Cvl.Validator.run_loaded ~rules fleet)
      in
      Printf.printf "  %2d containers  %12s  (%s per container)\n" n (pp_time ns)
        (pp_time (ns /. float_of_int n)))
    [ 1; 2; 4; 8; 16 ]

(* ------------------------------------------------------------------ *)
(* Ablation C: composite expression depth                              *)
(* ------------------------------------------------------------------ *)

let ablation_c () =
  heading "Ablation C - Composite rule cost vs expression size";
  let frames = Scenarios.Deployment.three_tier ~compliant:true in
  let base = Cvl.Validator.run ~source:Rulesets.source ~manifest:Rulesets.manifest frames in
  let ctxs =
    List.map
      (fun (entry : Cvl.Manifest.entry) ->
        (entry.Cvl.Manifest.entity, List.map (fun f -> Cvl.Engine.build_ctx f entry) frames))
      Rulesets.manifest
  in
  let env = Cvl.Validator.env_of ~results:base.Cvl.Validator.results ~ctxs in
  List.iter
    (fun depth ->
      let atoms =
        List.init depth (fun i ->
            match i mod 3 with
            | 0 -> "sshd.PermitRootLogin"
            | 1 -> "sysctl.net.ipv4.ip_forward.VALUE == \"0\""
            | _ -> "nginx.listen")
      in
      let expression = String.concat " && " atoms in
      let ast = Cvl.Expr.parse_exn expression in
      let parse_ns = measure_ns ~quota:0.25 "parse" (fun () -> Cvl.Expr.parse_exn expression) in
      let eval_ns = measure_ns ~quota:0.25 "eval" (fun () -> Cvl.Expr.eval env ast) in
      Printf.printf "  %2d atoms: parse %10s   eval %10s   (holds: %b)\n" depth (pp_time parse_ns)
        (pp_time eval_ns) (Cvl.Expr.eval env ast))
    [ 1; 2; 4; 8; 16 ]

(* ------------------------------------------------------------------ *)
(* Ablation D: normalization accuracy (lens vs grep)                   *)
(* ------------------------------------------------------------------ *)

(* The paper's central design argument: rules over a *normalized* tree
   see configuration the way the application does, where grep-based
   encodings see lines. Each case below is a realistic nginx config; the
   ground truth is fixed by construction. The CVL verdict comes from the
   tree rule over the nginx lens; the grep verdict from the observed
   Chef-Compliance encoding of the same check. *)
let ablation_d () =
  heading "Ablation D - Normalization accuracy: lens-based CVL vs grep encodings";
  let wrap body = "events { worker_connections 1024; }\nhttp {\n" ^ body ^ "}\n" in
  let cases =
    [
      ( "plain compliant server",
        wrap "  server {\n    listen 443 ssl;\n    ssl_protocols TLSv1.2 TLSv1.3;\n  }\n",
        true );
      ( "plain violating server",
        wrap "  server {\n    listen 443 ssl;\n    ssl_protocols SSLv3;\n  }\n",
        false );
      ( "directive only in mail block (wrong context)",
        "mail {\n  ssl_protocols TLSv1.2 TLSv1.3;\n}\n"
        ^ wrap "  server {\n    listen 443 ssl;\n  }\n",
        false );
      ( "multiline directive",
        wrap "  server {\n    listen 443 ssl;\n    ssl_protocols\n        TLSv1.2 TLSv1.3;\n  }\n",
        true );
      ( "second server block violates",
        wrap
          "  server {\n    listen 443 ssl;\n    ssl_protocols TLSv1.2 TLSv1.3;\n  }\n\
          \  server {\n    listen 8443 ssl;\n    ssl_protocols SSLv3;\n  }\n",
        false );
      ( "commented-out compliant line, active violation",
        wrap
          "  server {\n    listen 443 ssl;\n    # ssl_protocols TLSv1.2 TLSv1.3;\n\
          \    ssl_protocols SSLv3;\n  }\n",
        false );
    ]
  in
  let cvl_rule =
    match
      Cvl.Loader.parse_rules
        "config_name: ssl_protocols\n\
         config_path: [\"http/server\", \"server\"]\n\
         preferred_value: [\"TLSv1.2 TLSv1.3\"]\n\
         preferred_value_match: exact,any\n\
         tags: [\"#ablation\"]\n"
    with
    | Ok [ rule ] -> rule
    | _ -> failwith "ablation rule did not load"
  in
  let grep_check =
    Checkir.Check.check ~id:"ablation_d" ~title:"ssl_protocols must be TLSv1.2 TLSv1.3"
      (Checkir.Check.Key_value
         {
           file = "/etc/nginx/nginx.conf";
           key = "ssl_protocols";
           sep = Checkir.Check.Space;
           (* The semicolon variant gives the grep encoding the benefit
              of a format-aware extractor, so its misclassifications
              below are structural (context, multiline, head -1), not
              trivial tokenization. *)
           expected = Checkir.Check.Values [ "TLSv1.2 TLSv1.3"; "TLSv1.2 TLSv1.3;" ];
           absent_pass = false;
         })
  in
  let entry =
    {
      Cvl.Manifest.entity = "nginx";
      enabled = true;
      search_paths = [ "/etc/nginx" ];
      cvl_file = "-";
      lens = Some "nginx";
      rule_type = None;
      flaky_plugins = [];
    }
  in
  Printf.printf "%-46s %-8s %-8s %-8s\n" "case" "truth" "cvl" "grep";
  Printf.printf "%s\n" (String.make 74 '-');
  let cvl_wrong = ref 0 and grep_wrong = ref 0 in
  List.iter
    (fun (name, config, truth) ->
      let frame =
        Frames.Frame.add_file
          (Frames.Frame.create ~id:"ablation" Frames.Frame.Host)
          (Frames.File.make ~content:config "/etc/nginx/nginx.conf")
      in
      let cvl_ok =
        let ctx = Cvl.Engine.build_ctx frame entry in
        (Cvl.Engine.eval_rule ctx cvl_rule).Cvl.Engine.verdict = Cvl.Engine.Matched
      in
      let grep_ok =
        let compiled = Inspeclite.Engine.compile grep_check in
        compiled.Inspeclite.Engine.accepts
          (Inspeclite.Bash_emu.run frame compiled.Inspeclite.Engine.command)
      in
      if cvl_ok <> truth then incr cvl_wrong;
      if grep_ok <> truth then incr grep_wrong;
      let show ok = if ok = truth then (if ok then "pass" else "fail") else "WRONG" in
      Printf.printf "%-46s %-8s %-8s %-8s\n" name
        (if truth then "pass" else "fail")
        (show cvl_ok) (show grep_ok))
    cases;
  Printf.printf "\nmisclassifications over %d cases: CVL (lens) %d, grep encoding %d\n"
    (List.length cases) !cvl_wrong !grep_wrong


(* ------------------------------------------------------------------ *)
(* Ablation E: incremental revalidation                                *)
(* ------------------------------------------------------------------ *)

(* Production rescans tens of thousands of containers daily, but most
   have not changed since the previous scan. Given the frame diff, only
   affected entities re-evaluate. *)
let ablation_e () =
  heading "Ablation E - Incremental revalidation vs full run";
  let rules =
    Result.get_ok (Cvl.Validator.load_rules ~source:Rulesets.source ~manifest:Rulesets.manifest)
  in
  let before = Scenarios.Host.compliant () in
  let previous = (Cvl.Validator.run_loaded ~rules [ before ]).Cvl.Validator.results in
  let after =
    Frames.Frame.set_content before ~path:"/etc/sysctl.conf" "net.ipv4.ip_forward = 1\n"
  in
  let diff = Frames.Diff.between before after in
  let full_ns =
    measure_ns "full" (fun () -> Cvl.Validator.run_loaded ~rules [ after ])
  in
  let incr_ns =
    measure_ns "incremental" (fun () ->
        Cvl.Incremental.revalidate ~rules ~previous ~diff after)
  in
  let diff_ns = measure_ns "diff" (fun () -> Frames.Diff.between before after) in
  let affected = Cvl.Incremental.affected_entities ~rules diff in
  Printf.printf "one sysctl.conf edit; affected entities: %s\n" (String.concat ", " affected);
  Printf.printf "%-34s %s\n" "frame diff" (pp_time diff_ns);
  Printf.printf "%-34s %s\n" "incremental revalidation" (pp_time incr_ns);
  Printf.printf "%-34s %s\n" "full revalidation" (pp_time full_ns);
  Printf.printf "speedup (excl. diff): %.1fx;  incl. diff: %.1fx\n" (full_ns /. incr_ns)
    (full_ns /. (incr_ns +. diff_ns))

(* ------------------------------------------------------------------ *)
(* Scaling: parallel sharding and the normalization cache              *)
(* ------------------------------------------------------------------ *)

(* Throughput at fleet scale (the production deployment validates tens
   of thousands of containers): a synthetic host/webstack fleet is
   validated with the frame × entity grid sharded over a domain pool,
   sweeping jobs × cache. Wall-clock (not per-op OLS) because a fleet
   scan is one long operation. Emits BENCH_parallel.json. *)

let smoke = ref false
let out_file = ref "BENCH_parallel.json"

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let scaling_fleet n =
  List.init n (fun i ->
      match i mod 8 with
      | 0 -> Scenarios.Host.compliant ()
      | 4 -> Scenarios.Host.misconfigured ()
      | 1 | 5 -> Scenarios.Webstack.nginx_container_frame ~compliant:true
      | 3 | 7 -> Scenarios.Webstack.nginx_container_frame ~compliant:false
      | 2 -> Scenarios.Webstack.mysql_container_frame ~compliant:true
      | _ -> Scenarios.Webstack.mysql_container_frame ~compliant:false)

let result_signature (t : Cvl.Validator.t) =
  List.map
    (fun (r : Cvl.Engine.result) ->
      ( r.Cvl.Engine.entity,
        r.Cvl.Engine.frame_id,
        Cvl.Rule.name r.Cvl.Engine.rule,
        Cvl.Engine.verdict_to_string r.Cvl.Engine.verdict,
        r.Cvl.Engine.detail,
        r.Cvl.Engine.evidence ))
    t.Cvl.Validator.results

let scaling () =
  let n = if !smoke then 6 else 64 in
  let job_counts = if !smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let reps = if !smoke then 1 else 3 in
  heading
    (Printf.sprintf "Scaling - %d-frame fleet, jobs x normalization cache%s" n
       (if !smoke then " (smoke)" else ""));
  let fleet = scaling_fleet n in
  let rules =
    Result.get_ok (Cvl.Validator.load_rules ~source:Rulesets.source ~manifest:Rulesets.manifest)
  in
  let reference = ref None in
  let deterministic = ref true in
  let best_of k f =
    let rec go k best =
      if k = 0 then best
      else
        let s, _ = wall f in
        go (k - 1) (Float.min best s)
    in
    go k Float.infinity
  in
  let measurements =
    List.concat_map
      (fun cache ->
        List.map
          (fun jobs ->
            Cvl.Normcache.set_enabled cache;
            Cvl.Normcache.reset ();
            let seconds, signature =
              Pool.with_pool ~jobs (fun pool ->
                  let run () = Cvl.Validator.run_loaded ~pool ~rules fleet in
                  let first = run () in
                  (* With the cache on, the timed runs see the warm
                     steady state the first run just filled. *)
                  let seconds = best_of reps (fun () -> ignore (run ())) in
                  (seconds, result_signature first))
            in
            (match !reference with
            | None -> reference := Some signature
            | Some expected -> if signature <> expected then deterministic := false);
            Printf.printf "  jobs=%d cache=%-3s   %8.3f s   (%d results)\n%!" jobs
              (if cache then "on" else "off")
              seconds (List.length signature);
            (jobs, cache, seconds))
          job_counts)
      [ false; true ]
  in
  (* Normalization cold vs warm, isolated from crawling: the work list
     is every (lens, path, content) the fleet's grid normalizes. Cold
     parses each with the registry directly (what every scan paid
     before the cache existed); warm serves the same list from the
     content-addressed cache. Looped to amortize timer noise. *)
  let work =
    List.concat_map
      (fun frame ->
        List.concat_map
          (fun (entry : Cvl.Manifest.entry) ->
            Crawler.find_config_files frame ~search_paths:entry.Cvl.Manifest.search_paths
              ~patterns:[]
            |> List.map (fun (e : Crawler.extracted) ->
                   (entry.Cvl.Manifest.lens, e.Crawler.source_path, e.Crawler.content)))
          Rulesets.manifest)
      fleet
  in
  let loops = if !smoke then 20 else 50 in
  let normalize_all parse () =
    for _ = 1 to loops do
      List.iter (fun (lens_name, path, content) -> ignore (parse ?lens_name ~path content)) work
    done
  in
  let cold_s, () = wall (normalize_all Lenses.Registry.parse) in
  Cvl.Normcache.set_enabled true;
  Cvl.Normcache.reset ();
  List.iter
    (fun (lens_name, path, content) -> ignore (Cvl.Normcache.parse ?lens_name ~path content))
    work;
  let after_fill = Cvl.Normcache.stats () in
  let warm_s, () = wall (normalize_all Cvl.Normcache.parse) in
  let after_warm = Cvl.Normcache.stats () in
  let norm_speedup = cold_s /. Float.max warm_s 1e-9 in
  let lookup jobs cache =
    List.find_map
      (fun (j, c, s) -> if j = jobs && c = cache then Some s else None)
      measurements
  in
  let cores = Pool.default_jobs () in
  (match (lookup 1 false, lookup (List.fold_left max 1 job_counts) false) with
  | Some s1, Some sn ->
    Printf.printf "\nparallel speedup (cache off, jobs=%d vs jobs=1): %.2fx on %d core(s)\n"
      (List.fold_left max 1 job_counts) (s1 /. sn) cores
  | _ -> ());
  Printf.printf
    "normalization (%dx grid): uncached %.4f s, warm cache %.4f s  (%.1fx; %d unique files, %d \
     parses per pass)\n"
    loops cold_s warm_s norm_speedup after_fill.Cvl.Normcache.misses
    ((after_warm.Cvl.Normcache.hits - after_fill.Cvl.Normcache.hits) / loops);
  Printf.printf "results identical across every jobs/cache setting: %b\n" !deterministic;
  let json =
    Jsonlite.Obj
      [
        ("fleet_frames", Jsonlite.Num (float_of_int n));
        ("smoke", Jsonlite.Bool !smoke);
        ("cores", Jsonlite.Num (float_of_int cores));
        ( "runs",
          Jsonlite.Arr
            (List.map
               (fun (jobs, cache, seconds) ->
                 Jsonlite.Obj
                   [
                     ("jobs", Jsonlite.Num (float_of_int jobs));
                     ("cache", Jsonlite.Bool cache);
                     ("seconds", Jsonlite.Num seconds);
                   ])
               measurements) );
        ( "normalization",
          Jsonlite.Obj
            [
              ("grid_passes", Jsonlite.Num (float_of_int loops));
              ("uncached_seconds", Jsonlite.Num cold_s);
              ("warm_cache_seconds", Jsonlite.Num warm_s);
              ("speedup", Jsonlite.Num norm_speedup);
              ("unique_files", Jsonlite.Num (float_of_int after_fill.Cvl.Normcache.misses));
              ( "parses_per_pass",
                Jsonlite.Num
                  (float_of_int
                     ((after_warm.Cvl.Normcache.hits - after_fill.Cvl.Normcache.hits) / loops)) );
            ] );
        ("deterministic", Jsonlite.Bool !deterministic);
      ]
  in
  Out_channel.with_open_text !out_file (fun oc ->
      Out_channel.output_string oc (Jsonlite.pretty json));
  Printf.printf "wrote %s\n" !out_file

(* ------------------------------------------------------------------ *)
(* Lint: static analysis throughput                                    *)
(* ------------------------------------------------------------------ *)

(* cvlint runs over every rule file in CI (tools/check_lint) and on
   each save in an editor integration, so its cost per rule matters.
   A synthetic corpus pins it down: loader parse alone vs the full
   multi-pass analysis, on a clean corpus and on one with a 4% seeded
   defect rate. Emits BENCH_lint.json. *)

let lint_out = ref "BENCH_lint.json"

let gen_lint_rule ~defect i =
  let name = Printf.sprintf "setting_%03d" i in
  if defect then
    (* exactly one finding per seeded rule: a typo'd keyword *)
    Printf.sprintf
      "  - config_name: %s\n    prefered_value: [\"on\"]\n    tags: [\"#bench\"]\n" name
  else
    match i mod 5 with
    | 0 ->
      Printf.sprintf
        "  - config_name: %s\n    config_path: [\"\"]\n    preferred_value: [\"on\"]\n\
        \    tags: [\"#bench\"]\n"
        name
    | 1 ->
      Printf.sprintf
        "  - config_name: %s\n    non_preferred_value: [\"off\", \"0\"]\n\
        \    non_preferred_value_match: \"exact,any\"\n\
        \    not_matched_preferred_value_description: \"%s is misconfigured\"\n\
        \    severity: high\n    tags: [\"#bench\", \"#hardening\"]\n"
        name name
    | 2 ->
      Printf.sprintf
        "  - path_name: /etc/bench/%s\n    permission: \"644\"\n    ownership: \"0:0\"\n\
        \    tags: [\"#bench\"]\n"
        name
    | 3 ->
      Printf.sprintf
        "  - script_name: %s\n    script: sysctl_runtime\n    config_path: [\"kernel.%s\"]\n\
        \    preferred_value: [\"1\"]\n    tags: [\"#bench\"]\n"
        name name
    | _ ->
      Printf.sprintf
        "  - config_name: %s\n    preferred_value: [\"TLSv1.[23]\"]\n\
        \    preferred_value_match: \"regex,any\"\n    tags: [\"#bench\"]\n"
        name

let gen_lint_corpus ~seed_defects n =
  "rules:\n"
  ^ String.concat ""
      (List.init n (fun i -> gen_lint_rule ~defect:(seed_defects && i mod 25 = 24) i))

let lint_bench () =
  let n = if !smoke then 100 else 500 in
  heading
    (Printf.sprintf "Lint - cvlint static analysis over a %d-rule synthetic corpus%s" n
       (if !smoke then " (smoke)" else ""));
  let quota = if !smoke then 0.25 else 0.5 in
  let clean = gen_lint_corpus ~seed_defects:false n in
  let seeded = gen_lint_corpus ~seed_defects:true n in
  let seeded_defects = List.length (List.filter (fun i -> i mod 25 = 24) (List.init n Fun.id)) in
  let clean_findings = List.length (Cvlint.lint_text ~path:"bench.yaml" clean) in
  let findings = Cvlint.lint_text ~path:"bench.yaml" seeded in
  let loader_ns = measure_ns ~quota "loader" (fun () -> Cvl.Loader.parse_rules clean) in
  let lint_clean_ns =
    measure_ns ~quota "lint-clean" (fun () -> Cvlint.lint_text ~path:"bench.yaml" clean)
  in
  let lint_seeded_ns =
    measure_ns ~quota "lint-seeded" (fun () -> Cvlint.lint_text ~path:"bench.yaml" seeded)
  in
  Printf.printf "clean corpus findings: %d\n" clean_findings;
  Printf.printf "seeded corpus findings: %d (%d seeded defects)\n" (List.length findings)
    seeded_defects;
  Printf.printf "%-40s %12s  (%s per rule)\n" "loader parse (baseline)" (pp_time loader_ns)
    (pp_time (loader_ns /. float_of_int n));
  Printf.printf "%-40s %12s  (%s per rule)\n" "cvlint, clean corpus" (pp_time lint_clean_ns)
    (pp_time (lint_clean_ns /. float_of_int n));
  Printf.printf "%-40s %12s  (%s per rule)\n" "cvlint, seeded corpus" (pp_time lint_seeded_ns)
    (pp_time (lint_seeded_ns /. float_of_int n));
  Printf.printf "analysis overhead over plain loading: %.2fx\n"
    (lint_clean_ns /. Float.max loader_ns 1e-9);
  let json =
    Jsonlite.Obj
      [
        ("rules", Jsonlite.Num (float_of_int n));
        ("smoke", Jsonlite.Bool !smoke);
        ("seeded_defects", Jsonlite.Num (float_of_int seeded_defects));
        ("clean_findings", Jsonlite.Num (float_of_int clean_findings));
        ("seeded_findings", Jsonlite.Num (float_of_int (List.length findings)));
        ("loader_ns", Jsonlite.Num loader_ns);
        ("lint_clean_ns", Jsonlite.Num lint_clean_ns);
        ("lint_seeded_ns", Jsonlite.Num lint_seeded_ns);
        ("ns_per_rule", Jsonlite.Num (lint_clean_ns /. float_of_int n));
        ("overhead_vs_loader", Jsonlite.Num (lint_clean_ns /. Float.max loader_ns 1e-9));
      ]
  in
  Out_channel.with_open_text !lint_out (fun oc ->
      Out_channel.output_string oc (Jsonlite.pretty json));
  Printf.printf "wrote %s\n" !lint_out

(* ------------------------------------------------------------------ *)
(* Chaos: resilient runtime under seeded fault plans                   *)
(* ------------------------------------------------------------------ *)

(* The degraded path must not be the slow path: a run with faults pays
   for simulated backoff and containment bookkeeping, not wall-clock
   sleeping. Validates the full corpus under three seeded plans and
   reports the overhead against a clean run plus what each plan
   injected. Emits BENCH_chaos.json. *)

let chaos_out = ref "BENCH_chaos.json"

let chaos_bench () =
  heading
    (Printf.sprintf "Chaos - full corpus under seeded fault plans%s"
       (if !smoke then " (smoke)" else ""));
  let reps = if !smoke then 1 else 5 in
  let frames =
    Scenarios.Deployment.three_tier ~compliant:false
    @ Scenarios.Deployment.three_tier ~compliant:true
  in
  let rules =
    Result.get_ok (Cvl.Validator.load_rules ~source:Rulesets.source ~manifest:Rulesets.manifest)
  in
  let time_run () =
    let best = ref infinity in
    let result = ref None in
    for _ = 1 to reps do
      let s, t =
        wall (fun () -> Cvl.Validator.run_loaded ~keep_not_applicable:true ~rules frames)
      in
      if s < !best then best := s;
      result := Some t
    done;
    (!best, Option.get !result)
  in
  Cvl.Normcache.reset ();
  let clean_s, clean = time_run () in
  Printf.printf "clean run: %s, %d results, degraded=%b\n" (pp_time (clean_s *. 1e9))
    (List.length clean.Cvl.Validator.results)
    clean.Cvl.Validator.health.Cvl.Resilience.degraded;
  let plans =
    List.map (fun seed -> (seed, Faultsim.sample ~seed ~rules frames)) [ 1; 2; 3 ]
  in
  let rows =
    List.map
      (fun (seed, plan) ->
        Faultsim.arm plan;
        let s, t =
          Fun.protect ~finally:Faultsim.disarm (fun () ->
              Cvl.Normcache.reset ();
              time_run ())
        in
        let fired = List.length (Faultsim.triggered ()) in
        let h = t.Cvl.Validator.health in
        Printf.printf
          "seed %d: %s (%.2fx clean)  plan=%d faults, fired=%d, retries=%d, breaker \
           trips=%d, contained=%d, simulated backoff=%d ms\n"
          seed (pp_time (s *. 1e9))
          (s /. Float.max clean_s 1e-9)
          (List.length plan.Faultsim.faults)
          fired h.Cvl.Resilience.retries h.Cvl.Resilience.breaker_trips
          h.Cvl.Resilience.contained h.Cvl.Resilience.simulated_ms;
        (seed, plan, s, fired, h))
      plans
  in
  let all_complete =
    List.for_all
      (fun (_, _, _, _, (h : Cvl.Resilience.health)) -> h.Cvl.Resilience.degraded)
      rows
  in
  Printf.printf "every chaos run completed degraded-but-total: %b\n" all_complete;
  let json =
    Jsonlite.Obj
      [
        ("smoke", Jsonlite.Bool !smoke);
        ("frames", Jsonlite.Num (float_of_int (List.length frames)));
        ("clean_seconds", Jsonlite.Num clean_s);
        ("all_runs_degraded_but_total", Jsonlite.Bool all_complete);
        ( "runs",
          Jsonlite.Arr
            (List.map
               (fun (seed, plan, s, fired, (h : Cvl.Resilience.health)) ->
                 Jsonlite.Obj
                   [
                     ("seed", Jsonlite.Num (float_of_int seed));
                     ("plan_faults", Jsonlite.Num (float_of_int (List.length plan.Faultsim.faults)));
                     ("fired", Jsonlite.Num (float_of_int fired));
                     ("seconds", Jsonlite.Num s);
                     ("overhead_vs_clean", Jsonlite.Num (s /. Float.max clean_s 1e-9));
                     ("retries", Jsonlite.Num (float_of_int h.Cvl.Resilience.retries));
                     ("breaker_trips", Jsonlite.Num (float_of_int h.Cvl.Resilience.breaker_trips));
                     ("contained", Jsonlite.Num (float_of_int h.Cvl.Resilience.contained));
                     ("simulated_ms", Jsonlite.Num (float_of_int h.Cvl.Resilience.simulated_ms));
                     ( "errors",
                       Jsonlite.Num
                         (float_of_int
                            (h.Cvl.Resilience.extract_errors + h.Cvl.Resilience.normalize_errors
                           + h.Cvl.Resilience.evaluate_errors)) );
                   ])
               rows) );
      ]
  in
  Out_channel.with_open_text !chaos_out (fun oc ->
      Out_channel.output_string oc (Jsonlite.pretty json));
  Printf.printf "wrote %s\n" !chaos_out

(* ------------------------------------------------------------------ *)
(* Compile: ahead-of-time rule programs vs the interpreter             *)
(* ------------------------------------------------------------------ *)

(* The steady state of a long-running validator is load once, compile
   once, scan forever — so the interesting comparison is evaluation
   cost with parsing and normalization already warm. Two workloads:
   the embedded corpus on the three-tier deployment (realistic mix),
   and a synthetic path-heavy set where every rule walks a deep [**]
   query, the case the pre-parsed paths + per-frame index exist for.
   Emits BENCH_compile.json. *)

let compile_out = ref "BENCH_compile.json"

(* One deep YAML document: services/svcNN/runtime/settings/optNN. *)
let pathbench_yaml ~services ~opts =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "services:\n";
  for s = 0 to services - 1 do
    Buffer.add_string buf (Printf.sprintf "  svc%02d:\n    runtime:\n      settings:\n" s);
    for o = 0 to opts - 1 do
      Buffer.add_string buf
        (Printf.sprintf "        opt%02d: \"%s\"\n" o (if (s + o) mod 2 = 0 then "on" else "off"))
    done
  done;
  Buffer.contents buf

(* Every rule resolves through a deep-descent path, so the interpreter
   re-parses the literal and re-walks the whole tree per rule per scan
   while the compiled program answers from the shared index. *)
let pathbench_rules ~opts =
  "rules:\n"
  ^ String.concat ""
      (List.init opts (fun o ->
           Printf.sprintf
             "  - config_name: opt%02d\n    config_path: [\"services/**/settings\"]\n\
             \    preferred_value: [\"on\"]\n    tags: [\"#pathbench\"]\n"
             o))

let pathbench_manifest : Cvl.Manifest.entry list =
  [
    {
      Cvl.Manifest.entity = "pathbench";
      enabled = true;
      search_paths = [ "/etc/pathbench" ];
      cvl_file = "pathbench.yaml";
      lens = Some "yaml";
      rule_type = None;
      flaky_plugins = [];
    };
  ]

let pathbench_frame ~services ~opts =
  let frame = Frames.Frame.create ~id:"pathbench-01" Frames.Frame.Host in
  Frames.Frame.add_file frame
    (Frames.File.make ~content:(pathbench_yaml ~services ~opts) "/etc/pathbench/app.yaml")

let compile_bench () =
  heading
    (Printf.sprintf "Compile - ahead-of-time programs vs interpreter%s"
       (if !smoke then " (smoke)" else ""));
  let reps = if !smoke then 2 else 5 in
  let best_of k f =
    let rec go k best =
      if k = 0 then best
      else
        let s, _ = wall f in
        go (k - 1) (Float.min best s)
    in
    go k Float.infinity
  in
  let measure ~label ~rules frames =
    (* Warm the normalization cache first so both engines measure rule
       evaluation on the same shared forests, not crawling/parsing. *)
    Cvl.Normcache.set_enabled true;
    Cvl.Normcache.reset ();
    let interp () = Cvl.Validator.run_loaded ~engine:`Interpreted ~rules frames in
    let interp_ref = interp () in
    let interp_s = best_of reps (fun () -> ignore (interp ())) in
    let compile_s, compiled = wall (fun () -> Cvl.Validator.compile rules) in
    let compiled_run () = Cvl.Validator.run_compiled ~compiled frames in
    let compiled_ref = compiled_run () in
    let compiled_s = best_of reps (fun () -> ignore (compiled_run ())) in
    let identical = result_signature interp_ref = result_signature compiled_ref in
    let speedup = interp_s /. Float.max compiled_s 1e-9 in
    Printf.printf
      "%-12s interpreted %s, compiled %s (%.2fx; compile itself %s, %d diagnostics, %d \
       results)\n"
      label
      (pp_time (interp_s *. 1e9))
      (pp_time (compiled_s *. 1e9))
      speedup
      (pp_time (compile_s *. 1e9))
      (List.length compiled.Cvl.Compile.diagnostics)
      (List.length compiled_ref.Cvl.Validator.results);
    (interp_s, compiled_s, compile_s, speedup, identical, compiled, compiled_ref)
  in
  let corpus_rules =
    Result.get_ok (Cvl.Validator.load_rules ~source:Rulesets.source ~manifest:Rulesets.manifest)
  in
  let corpus_frames =
    Scenarios.Deployment.three_tier ~compliant:false
    @ Scenarios.Deployment.three_tier ~compliant:true
  in
  let c_interp, c_comp, c_compile, c_speedup, c_identical, c_compiled, c_ref =
    measure ~label:"corpus" ~rules:corpus_rules corpus_frames
  in
  let services = if !smoke then 6 else 24 in
  let opts = if !smoke then 8 else 48 in
  let path_rules =
    Result.get_ok
      (Cvl.Validator.load_rules
         ~source:
           {
             Cvl.Loader.load =
               (fun name ->
                 if String.equal name "pathbench.yaml" then Ok (pathbench_rules ~opts)
                 else Error (Printf.sprintf "no such file %S" name));
           }
         ~manifest:pathbench_manifest)
  in
  let path_frames = [ pathbench_frame ~services ~opts ] in
  let p_interp, p_comp, p_compile, p_speedup, p_identical, _, p_ref =
    measure ~label:"path-heavy" ~rules:path_rules path_frames
  in
  let identical = c_identical && p_identical in
  Printf.printf "results identical interpreted vs compiled: %b\n" identical;
  Printf.printf "path-heavy speedup target (>=3x): %s (measured %.2fx)\n"
    (if p_speedup >= 3.0 then "met" else "not met")
    p_speedup;
  let workload label (interp_s, comp_s, compile_s, speedup, ident, nresults) =
    ( label,
      Jsonlite.Obj
        [
          ("interpreted_seconds", Jsonlite.Num interp_s);
          ("compiled_seconds", Jsonlite.Num comp_s);
          ("compile_seconds", Jsonlite.Num compile_s);
          ("speedup", Jsonlite.Num speedup);
          ("identical", Jsonlite.Bool ident);
          ("results", Jsonlite.Num (float_of_int nresults));
        ] )
  in
  let json =
    Jsonlite.Obj
      [
        ("smoke", Jsonlite.Bool !smoke);
        ("corpus_diagnostics",
         Jsonlite.Num (float_of_int (List.length c_compiled.Cvl.Compile.diagnostics)));
        workload "corpus"
          (c_interp, c_comp, c_compile, c_speedup, c_identical,
           List.length c_ref.Cvl.Validator.results);
        workload "path_heavy"
          ( p_interp, p_comp, p_compile, p_speedup, p_identical,
            List.length p_ref.Cvl.Validator.results );
        ("path_heavy_rules", Jsonlite.Num (float_of_int opts));
        ("path_heavy_services", Jsonlite.Num (float_of_int services));
        ("path_heavy_target_3x_met", Jsonlite.Bool (p_speedup >= 3.0));
        ("identical", Jsonlite.Bool identical);
      ]
  in
  Out_channel.with_open_text !compile_out (fun oc ->
      Out_channel.output_string oc (Jsonlite.pretty json));
  Printf.printf "wrote %s\n" !compile_out

(* ------------------------------------------------------------------ *)
(* Fusion: one shared tree walk for the whole ruleset                  *)
(* ------------------------------------------------------------------ *)

(* The compiled engine already amortizes parsing and per-path work, but
   still answers every rule's queries independently: against a freshly
   parsed frame (the cold case every new scan target is), 48 deep [**]
   rules mean 48 full-forest descents. The fused engine walks each
   forest once for the whole ruleset, so the comparison that matters is
   end-to-end on cold frames — the normalization cache is reset inside
   the measured thunk. The corpus workload is measured warm (steady
   state) to show fusion costs nothing when memos already answer
   everything. Node-visit counts and plan-build time go into the JSON
   so the win is attributable to walk sharing, not just wall clock.
   Emits BENCH_fusion.json. *)

let fusion_out = ref "BENCH_fusion.json"

type fusion_row = {
  fr_interp_s : float;
  fr_comp_s : float;
  fr_fused_s : float;
  fr_compile_s : float;
  fr_fuse_s : float;
  fr_visits : int * int * int;  (* interpreted, compiled, fused; one cold run *)
  fr_identical : bool;
  fr_results : int;
}

let fusion_bench () =
  heading
    (Printf.sprintf "Fusion - whole-ruleset shared walk vs per-rule programs%s"
       (if !smoke then " (smoke)" else ""));
  let reps = if !smoke then 2 else 5 in
  let best_of k f =
    let rec go k best =
      if k = 0 then best
      else
        let s, _ = wall f in
        go (k - 1) (Float.min best s)
    in
    go k Float.infinity
  in
  let measure ~label ~cold ~rules frames =
    Cvl.Normcache.set_enabled true;
    Cvl.Normcache.reset ();
    let compile_s, compiled = wall (fun () -> Cvl.Validator.compile rules) in
    let fuse_s, fused = wall (fun () -> Cvl.Fuse.fuse compiled) in
    let run engine () =
      (* Cold workloads re-parse (and hence re-index and re-walk) every
         frame per run, as a scan of a new target does; warm ones keep
         every cache. *)
      if cold then Cvl.Normcache.reset ();
      match engine with
      | `Interpreted -> Cvl.Validator.run_loaded ~engine:`Interpreted ~rules frames
      | `Compiled -> Cvl.Validator.run_compiled ~compiled frames
      | `Fused -> Cvl.Validator.run_fused ~fused frames
    in
    let interp_ref = run `Interpreted () in
    let compiled_ref = run `Compiled () in
    let fused_ref = run `Fused () in
    let identical =
      result_signature fused_ref = result_signature interp_ref
      && result_signature fused_ref = result_signature compiled_ref
    in
    let interp_s = best_of reps (fun () -> ignore (run `Interpreted ())) in
    let comp_s = best_of reps (fun () -> ignore (run `Compiled ())) in
    let fused_s = best_of reps (fun () -> ignore (run `Fused ())) in
    let visits engine =
      Cvl.Normcache.reset ();
      Configtree.Metrics.reset ();
      ignore (run engine ());
      Configtree.Metrics.count ()
    in
    let vi = visits `Interpreted and vc = visits `Compiled and vf = visits `Fused in
    Printf.printf
      "%-12s interpreted %s, compiled %s, fused %s (fused %.2fx vs compiled; plan build %s)\n"
      label
      (pp_time (interp_s *. 1e9))
      (pp_time (comp_s *. 1e9))
      (pp_time (fused_s *. 1e9))
      (comp_s /. Float.max fused_s 1e-9)
      (pp_time (fuse_s *. 1e9));
    Printf.printf "%-12s node visits: interpreted %d, compiled %d, fused %d\n" label vi vc vf;
    {
      fr_interp_s = interp_s;
      fr_comp_s = comp_s;
      fr_fused_s = fused_s;
      fr_compile_s = compile_s;
      fr_fuse_s = fuse_s;
      fr_visits = (vi, vc, vf);
      fr_identical = identical;
      fr_results = List.length fused_ref.Cvl.Validator.results;
    }
  in
  let corpus_rules =
    Result.get_ok (Cvl.Validator.load_rules ~source:Rulesets.source ~manifest:Rulesets.manifest)
  in
  let corpus_frames =
    Scenarios.Deployment.three_tier ~compliant:false
    @ Scenarios.Deployment.three_tier ~compliant:true
  in
  let corpus = measure ~label:"corpus" ~cold:false ~rules:corpus_rules corpus_frames in
  let services = if !smoke then 6 else 24 in
  let opts = if !smoke then 8 else 48 in
  let path_rules =
    Result.get_ok
      (Cvl.Validator.load_rules
         ~source:
           {
             Cvl.Loader.load =
               (fun name ->
                 if String.equal name "pathbench.yaml" then Ok (pathbench_rules ~opts)
                 else Error (Printf.sprintf "no such file %S" name));
           }
         ~manifest:pathbench_manifest)
  in
  let path_frames = [ pathbench_frame ~services ~opts ] in
  let path = measure ~label:"path-heavy" ~cold:true ~rules:path_rules path_frames in
  let identical = corpus.fr_identical && path.fr_identical in
  let p_speedup = path.fr_comp_s /. Float.max path.fr_fused_s 1e-9 in
  let _, pvc, pvf = path.fr_visits in
  Printf.printf "results identical across engines: %b\n" identical;
  Printf.printf "fused visits fewer nodes than compiled on path-heavy: %b\n" (pvf < pvc);
  Printf.printf "path-heavy fused vs compiled target (>=2x): %s (measured %.2fx)\n"
    (if p_speedup >= 2.0 then "met" else "not met")
    p_speedup;
  let workload label (r : fusion_row) =
    let vi, vc, vf = r.fr_visits in
    ( label,
      Jsonlite.Obj
        [
          ("interpreted_seconds", Jsonlite.Num r.fr_interp_s);
          ("compiled_seconds", Jsonlite.Num r.fr_comp_s);
          ("fused_seconds", Jsonlite.Num r.fr_fused_s);
          ("compile_seconds", Jsonlite.Num r.fr_compile_s);
          ("plan_build_seconds", Jsonlite.Num r.fr_fuse_s);
          ("speedup_fused_vs_interpreted",
           Jsonlite.Num (r.fr_interp_s /. Float.max r.fr_fused_s 1e-9));
          ("speedup_fused_vs_compiled",
           Jsonlite.Num (r.fr_comp_s /. Float.max r.fr_fused_s 1e-9));
          ("visits_interpreted", Jsonlite.Num (float_of_int vi));
          ("visits_compiled", Jsonlite.Num (float_of_int vc));
          ("visits_fused", Jsonlite.Num (float_of_int vf));
          ("identical", Jsonlite.Bool r.fr_identical);
          ("results", Jsonlite.Num (float_of_int r.fr_results));
        ] )
  in
  let json =
    Jsonlite.Obj
      [
        ("smoke", Jsonlite.Bool !smoke);
        workload "corpus" corpus;
        workload "path_heavy" path;
        ("path_heavy_rules", Jsonlite.Num (float_of_int opts));
        ("path_heavy_services", Jsonlite.Num (float_of_int services));
        ("path_heavy_fused_visits_below_compiled", Jsonlite.Bool (pvf < pvc));
        ("path_heavy_fused_2x_met", Jsonlite.Bool (p_speedup >= 2.0));
        ("identical", Jsonlite.Bool identical);
      ]
  in
  Out_channel.with_open_text !fusion_out (fun oc ->
      Out_channel.output_string oc (Jsonlite.pretty json));
  Printf.printf "wrote %s\n" !fusion_out

(* ------------------------------------------------------------------ *)
(* daemon: warm engine-as-a-service vs cold one-shot                   *)
(* ------------------------------------------------------------------ *)

let daemon_out = ref "BENCH_daemon.json"

(* A synthetic fleet streamed through a warm [validated] server (rules
   loaded + compiled + fused once, persistent pool, warm Normcache)
   versus the same batches each paying the full one-shot cost. The
   daemon runs in-process over a socketpair, so the protocol cost —
   framing, JSON codec both ways, verdict streaming — is charged to the
   warm side honestly. *)
let daemon_bench () =
  heading
    (Printf.sprintf "Daemon - warm jobs vs cold one-shot%s" (if !smoke then " (smoke)" else ""));
  (* Full-mode jobs are deliberately small: the daemon's workload is a
     stream of watch/CI events touching a frame or two, and that is
     where holding the loaded+compiled+fused ruleset resident pays —
     a cold one-shot run re-derives all of it per event. Big batches
     amortize the cold setup away and the comparison measures only the
     protocol tax. *)
  let batch = if !smoke then 8 else 2 in
  let n_jobs = if !smoke then 3 else 3500 in
  let entities =
    List.length
      (List.filter (fun (e : Cvl.Manifest.entry) -> e.Cvl.Manifest.enabled) Rulesets.manifest)
  in
  let fleet = scaling_fleet (batch * n_jobs) in
  let rec chunk = function
    | [] -> []
    | xs ->
      let rec take n acc rest =
        match (n, rest) with
        | 0, _ | _, [] -> (List.rev acc, rest)
        | n, x :: tl -> take (n - 1) (x :: acc) tl
      in
      let b, rest = take batch [] xs in
      b :: chunk rest
  in
  let batches = chunk fleet in
  Printf.printf "fleet: %d frames x %d entities = %d cells (%d jobs of %d frames)\n"
    (List.length fleet) entities
    (List.length fleet * entities)
    n_jobs batch;
  Cvl.Normcache.set_enabled true;
  Cvl.Normcache.reset ();
  let server =
    match
      Daemon.Server.create ~jobs:1 ~source:Rulesets.source ~manifest:Rulesets.manifest ()
    with
    | Ok s -> s
    | Error m -> failwith m
  in
  let client = Daemon.Client.in_process server in
  (* One untimed job first: the daemon's steady state is what's being
     measured, not the first connection's cache fill. *)
  (match
     Daemon.Client.validate client ~on_verdict:ignore
       (Daemon.Protocol.job ~frames:(List.hd batches) ())
   with
  | Ok _ -> ()
  | Error m -> failwith ("daemon warmup job failed: " ^ m));
  let verdicts = ref 0 in
  let latencies =
    List.map
      (fun frames ->
        let dt, outcome =
          wall (fun () ->
              Daemon.Client.validate client
                ~on_verdict:(fun _ -> incr verdicts)
                (Daemon.Protocol.job ~frames ()))
        in
        (match outcome with Ok _ -> () | Error m -> failwith ("daemon job failed: " ^ m));
        dt)
      batches
  in
  let busy = List.fold_left ( +. ) 0.0 latencies in
  let sorted = Array.of_list latencies in
  Array.sort compare sorted;
  let pct p =
    let n = Array.length sorted in
    sorted.(max 0 (min (n - 1) (int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1)))
  in
  let warm_s = busy /. float_of_int (List.length latencies) in
  let vps = float_of_int !verdicts /. Float.max busy 1e-9 in
  (* Differential: the same batch through the warm daemon and through
     the one-shot entry point must agree verdict for verdict, in
     order. *)
  let first = List.hd batches in
  let streamed = ref [] in
  (match
     Daemon.Client.validate client
       ~on_verdict:(fun v -> streamed := v :: !streamed)
       (Daemon.Protocol.job ~frames:first ())
   with
  | Ok _ -> ()
  | Error m -> failwith ("daemon differential job failed: " ^ m));
  let daemon_sig =
    List.rev_map
      (fun (v : Daemon.Protocol.verdict) ->
        ( v.Daemon.Protocol.v_entity,
          v.Daemon.Protocol.v_frame,
          v.Daemon.Protocol.v_rule,
          v.Daemon.Protocol.v_verdict,
          v.Daemon.Protocol.v_detail,
          v.Daemon.Protocol.v_evidence ))
      !streamed
  in
  let oneshot = Cvl.Validator.run ~source:Rulesets.source ~manifest:Rulesets.manifest first in
  let identical = daemon_sig = result_signature oneshot in
  Printf.printf "daemon verdicts byte-identical to one-shot: %b\n" identical;
  (* Concurrent phase: N sessions hammer the same warm server at once,
     each repeating the reference batch. Throughput under load and tail
     latency are measured against the single-client phase above, and
     every stream must stay byte-identical to the reference — the
     supervised-session determinism claim, under bench load. *)
  let n_clients = 4 in
  let conc_jobs = if !smoke then 2 else 150 in
  let verdict_sig (v : Daemon.Protocol.verdict) =
    ( v.Daemon.Protocol.v_entity,
      v.Daemon.Protocol.v_frame,
      v.Daemon.Protocol.v_rule,
      v.Daemon.Protocol.v_verdict,
      v.Daemon.Protocol.v_detail,
      v.Daemon.Protocol.v_evidence )
  in
  (* Session setup and its warmup job stay outside the timed window:
     the phase measures serving under load, not connection churn. *)
  let conc_clients = List.init n_clients (fun _ -> Daemon.Client.in_process server) in
  List.iter
    (fun c ->
      match
        Daemon.Client.validate c ~on_verdict:ignore (Daemon.Protocol.job ~frames:first ())
      with
      | Ok _ -> ()
      | Error m -> failwith ("concurrent warmup job failed: " ^ m))
    conc_clients;
  let conc_t0 = Unix.gettimeofday () in
  let sessions =
    List.map
      (fun c ->
        Domain.spawn (fun () ->
            let lats = ref [] and ok = ref true and count = ref 0 in
            for _ = 1 to conc_jobs do
              let streamed = ref [] in
              let dt, outcome =
                wall (fun () ->
                    Daemon.Client.validate c
                      ~on_verdict:(fun v ->
                        incr count;
                        streamed := v :: !streamed)
                      (Daemon.Protocol.job ~frames:first ()))
              in
              (match outcome with
              | Ok _ -> ()
              | Error m -> failwith ("concurrent daemon job failed: " ^ m));
              lats := dt :: !lats;
              if List.rev_map verdict_sig !streamed <> daemon_sig then ok := false
            done;
            (!lats, !ok, !count)))
      conc_clients
  in
  let per_session = List.map Domain.join sessions in
  let conc_wall = Unix.gettimeofday () -. conc_t0 in
  List.iter Daemon.Client.close conc_clients;
  let conc_verdicts = List.fold_left (fun acc (_, _, n) -> acc + n) 0 per_session in
  let identical_concurrent = List.for_all (fun (_, ok, _) -> ok) per_session in
  let conc_sorted = Array.of_list (List.concat_map (fun (ls, _, _) -> ls) per_session) in
  Array.sort compare conc_sorted;
  let conc_p99 =
    let n = Array.length conc_sorted in
    conc_sorted.(max 0 (min (n - 1) (int_of_float (ceil (0.99 *. float_of_int n)) - 1)))
  in
  let conc_vps = float_of_int conc_verdicts /. Float.max conc_wall 1e-9 in
  let scaling_ratio = conc_vps /. Float.max vps 1e-9 in
  (* The container may pin the whole process to one core, where the
     best a concurrent server can do is hold single-client throughput;
     the floor catches "concurrency collapsed under the session lock",
     not "no extra cores were available". *)
  let scaling_floor = if !smoke then 0.1 else 0.3 in
  Printf.printf "%d concurrent clients x %d jobs: %d verdicts, byte-identical: %b\n"
    n_clients conc_jobs conc_verdicts identical_concurrent;
  Printf.printf "concurrent %.0f verdicts/sec (p99 %s), %.2fx of single-client\n" conc_vps
    (pp_time (conc_p99 *. 1e9))
    scaling_ratio;
  (* Codec/delta counters of the whole bench run, as [stats] reports
     them: every bench client negotiates v2, so the bytes land on the
     v2 side of the ledger. *)
  let proto_stats =
    match Daemon.Client.stats client with Ok st -> st | Error m -> failwith m
  in
  Printf.printf "protocol: %d v2 connection(s), bytes-on-wire ledger %s\n"
    proto_stats.Daemon.Protocol.st_v2_connections
    (if proto_stats.Daemon.Protocol.st_v2_bytes_out > 0 then "live" else "EMPTY");
  (match Daemon.Client.shutdown client with Ok () -> () | Error m -> failwith m);
  Daemon.Client.close client;
  Daemon.Server.destroy server;
  (* Cold: what each batch costs as a fresh subprocess-style run — rule
     load + compile + fuse + parse everything, no retained state. *)
  let rule_load_s, _ =
    wall (fun () ->
        let rules =
          Result.get_ok
            (Cvl.Validator.load_rules ~source:Rulesets.source ~manifest:Rulesets.manifest)
        in
        ignore (Cvl.Fuse.fuse (Cvl.Validator.compile rules)))
  in
  let samples = [ List.nth batches 0; List.nth batches (n_jobs / 2); List.nth batches (n_jobs - 1) ] in
  let cold_s =
    List.fold_left
      (fun acc frames ->
        Cvl.Normcache.reset ();
        let dt, _ =
          wall (fun () ->
              Cvl.Validator.run ~source:Rulesets.source ~manifest:Rulesets.manifest frames)
        in
        acc +. dt)
      0.0 samples
    /. float_of_int (List.length samples)
  in
  let speedup = cold_s /. Float.max warm_s 1e-9 in
  (* Smoke batches are tiny, so the per-job protocol overhead nearly
     cancels the amortized rule load: the smoke floor only catches
     "warm serving collapsed", the full floor certifies the win. *)
  let floor = if !smoke then 0.75 else 1.3 in
  Printf.printf "warm daemon beats cold one-shot: %b\n" (speedup >= floor);
  Printf.printf "warm job %s (p50 %s, p99 %s)\n" (pp_time (warm_s *. 1e9))
    (pp_time (pct 50.0 *. 1e9))
    (pp_time (pct 99.0 *. 1e9));
  Printf.printf "cold job %s (rule load+compile+fuse alone %s)\n" (pp_time (cold_s *. 1e9))
    (pp_time (rule_load_s *. 1e9));
  Printf.printf "sustained %.0f verdicts/sec, speedup warm vs cold %.2fx\n" vps speedup;
  let json =
    Jsonlite.Obj
      [
        ("smoke", Jsonlite.Bool !smoke);
        ("entities", Jsonlite.Num (float_of_int entities));
        ("frames", Jsonlite.Num (float_of_int (List.length fleet)));
        ("cells", Jsonlite.Num (float_of_int (List.length fleet * entities)));
        ("batch_frames", Jsonlite.Num (float_of_int batch));
        ("jobs", Jsonlite.Num (float_of_int n_jobs));
        ("verdicts", Jsonlite.Num (float_of_int !verdicts));
        ("verdicts_per_sec", Jsonlite.Num vps);
        ("p50_ms", Jsonlite.Num (pct 50.0 *. 1e3));
        ("p99_ms", Jsonlite.Num (pct 99.0 *. 1e3));
        ("warm_job_seconds", Jsonlite.Num warm_s);
        ("cold_job_seconds", Jsonlite.Num cold_s);
        ("rule_load_seconds", Jsonlite.Num rule_load_s);
        ("speedup_warm_vs_cold", Jsonlite.Num speedup);
        ("warm_beats_cold_floor", Jsonlite.Num floor);
        ("warm_beats_cold", Jsonlite.Bool (speedup >= floor));
        ("identical", Jsonlite.Bool identical);
        ( "concurrent",
          Jsonlite.Obj
            [
              ("clients", Jsonlite.Num (float_of_int n_clients));
              ("jobs_per_client", Jsonlite.Num (float_of_int conc_jobs));
              ("verdicts", Jsonlite.Num (float_of_int conc_verdicts));
              ("verdicts_per_sec", Jsonlite.Num conc_vps);
              ("p99_ms", Jsonlite.Num (conc_p99 *. 1e3));
              ("single_verdicts_per_sec", Jsonlite.Num vps);
              ("scaling_ratio", Jsonlite.Num scaling_ratio);
              ("scaling_floor", Jsonlite.Num scaling_floor);
              ("scaling_ok", Jsonlite.Bool (scaling_ratio >= scaling_floor));
              ("identical", Jsonlite.Bool identical_concurrent);
            ] );
        ( "protocol",
          Jsonlite.Obj
            [
              ( "v1_connections",
                Jsonlite.Num (float_of_int proto_stats.Daemon.Protocol.st_v1_connections) );
              ( "v2_connections",
                Jsonlite.Num (float_of_int proto_stats.Daemon.Protocol.st_v2_connections) );
              ( "v1_bytes_out",
                Jsonlite.Num (float_of_int proto_stats.Daemon.Protocol.st_v1_bytes_out) );
              ( "v2_bytes_out",
                Jsonlite.Num (float_of_int proto_stats.Daemon.Protocol.st_v2_bytes_out) );
              ( "delta_streams",
                Jsonlite.Num (float_of_int proto_stats.Daemon.Protocol.st_delta_streams) );
              ( "delta_copied",
                Jsonlite.Num (float_of_int proto_stats.Daemon.Protocol.st_delta_copied) );
            ] );
      ]
  in
  Out_channel.with_open_text !daemon_out (fun oc ->
      Out_channel.output_string oc (Jsonlite.pretty json));
  Printf.printf "wrote %s\n" !daemon_out

(* ------------------------------------------------------------------ *)
(* cluster: fleet-scoped aggregation over N replicas                   *)
(* ------------------------------------------------------------------ *)

let cluster_out = ref "BENCH_cluster.json"

(* One [scope: cluster] ruleset over a synthetic N-replica fleet: each
   replica is one frame, the four aggregators judge the whole
   deployment at once. Gated claims: the three engines stay
   byte-identical with cluster rules in play, a seeded drift is
   detected, verdicts are invariant in frame arrival order, and
   fleet-scoped scans sustain a useful verdict rate. Emits
   BENCH_cluster.json. *)
let cluster_manifest_yaml =
  "app:\n\
  \  enabled: True\n\
  \  config_search_paths:\n\
  \    - /etc/app\n\
  \  cvl_file: \"component_configs/app.yaml\"\n\
  \  lens: properties\n"

let cluster_rules_yaml =
  "rules:\n\
  \  - cluster_rule_name: cache_uniform\n\
  \    scope: cluster\n\
  \    aggregate: equal_across\n\
  \    config_path: [\"cache_size\"]\n\
  \    file_context: [\"app.properties\"]\n\
  \    not_matched_preferred_value_description: \"cache_size drifts across the fleet.\"\n\
  \    tags: [\"#fleet\"]\n\
  \  - cluster_rule_name: upstreams_resolve\n\
  \    scope: cluster\n\
  \    aggregate: exists_referent\n\
  \    config_path: [\"upstream\"]\n\
  \    referent_config_path: \"advertised_name\"\n\
  \    value_separator: \",\"\n\
  \    file_context: [\"app.properties\"]\n\
  \    tags: [\"#fleet\"]\n\
  \  - cluster_rule_name: quorum\n\
  \    scope: cluster\n\
  \    aggregate: count\n\
  \    config_path: [\"cache_size\"]\n\
  \    min_frames: 2\n\
  \    file_context: [\"app.properties\"]\n\
  \    tags: [\"#fleet\"]\n\
  \  - cluster_rule_name: shard_agreement\n\
  \    scope: cluster\n\
  \    aggregate: consistent_across\n\
  \    config_path: [\"shard_weight\"]\n\
  \    group_by: shard_group\n\
  \    file_context: [\"app.properties\"]\n\
  \    tags: [\"#fleet\"]\n\
  \  - config_name: cache_size\n\
  \    config_path: [\"\"]\n\
  \    file_context: [\"app.properties\"]\n\
  \    check_presence_only: True\n\
  \    tags: [\"#fleet\"]\n"

let cluster_bench () =
  heading
    (Printf.sprintf "Cluster - fleet-scoped aggregation%s" (if !smoke then " (smoke)" else ""));
  let manifest = Cvl.Manifest.parse_exn cluster_manifest_yaml in
  let source = Cvl.Loader.assoc_source [ ("component_configs/app.yaml", cluster_rules_yaml) ] in
  let n = if !smoke then 8 else 512 in
  let ids = List.init n (Printf.sprintf "web-%d") in
  let upstreams = String.concat "," ids in
  let replica ?(cache = "64") id i =
    Frames.Frame.add_file
      (Frames.Frame.create ~id Frames.Frame.Host)
      (Frames.File.make
         ~content:
           (Printf.sprintf
              "advertised_name=%s\ncache_size=%s\nupstream=%s\nshard_group=%s\nshard_weight=%s\n"
              id cache upstreams
              (if i mod 2 = 0 then "a" else "b")
              (if i mod 2 = 0 then "10" else "20"))
         "/etc/app/app.properties")
  in
  let fleet = List.mapi (fun i id -> replica id i) ids in
  (* Seeded drift: one replica's cache_size disagrees with the fleet. *)
  let drifted =
    List.mapi (fun i id -> if i = n / 2 then replica ~cache:"128" id i else replica id i) ids
  in
  let run ?(engine = `Fused) frames = Cvl.Validator.run ~engine ~source ~manifest frames in
  Printf.printf "fleet: %d replica frames, 4 cluster rules + 1 per-frame rule\n" n;

  (* Three-engine identity, with cluster rules in the ruleset. *)
  let fused = run ~engine:`Fused drifted in
  let identical =
    result_signature fused = result_signature (run ~engine:`Compiled drifted)
    && result_signature fused = result_signature (run ~engine:`Interpreted drifted)
  in
  Printf.printf "results identical across the three engines: %b\n" identical;

  (* Drift detection: the compliant fleet matches, the seeded drift is
     flagged by equal_across. *)
  let verdict_of (t : Cvl.Validator.t) name =
    match
      List.find_opt
        (fun (r : Cvl.Engine.result) -> Cvl.Rule.name r.Cvl.Engine.rule = name)
        t.Cvl.Validator.results
    with
    | Some r -> Cvl.Engine.verdict_to_string r.Cvl.Engine.verdict
    | None -> "absent"
  in
  let clean = run fleet in
  let detects_drift =
    verdict_of clean "cache_uniform" = "matched"
    && verdict_of fused "cache_uniform" = "not-matched"
  in
  Printf.printf "seeded cache drift detected: %b\n" detects_drift;

  (* Order invariance: shuffled arrival order, identical cluster
     verdicts (per-frame results follow arrival order by design). *)
  let cluster_signature (t : Cvl.Validator.t) =
    List.filter
      (fun (_, frame, _, _, _, _) ->
        String.length frame >= 10 && String.sub frame 0 10 = "deployment")
      (result_signature t)
  in
  let shuffle seed l =
    let st = Random.State.make [| seed |] in
    let a = Array.of_list l in
    for i = Array.length a - 1 downto 1 do
      let j = Random.State.int st (i + 1) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    done;
    Array.to_list a
  in
  let order_invariant =
    List.for_all
      (fun seed -> cluster_signature (run (shuffle seed drifted)) = cluster_signature fused)
      [ 1; 7; 42 ]
  in
  Printf.printf "verdicts invariant in frame arrival order: %b\n" order_invariant;

  (* Throughput: steady-state fused scans of the whole fleet. *)
  let reps = if !smoke then 2 else 5 in
  let verdicts = List.length clean.Cvl.Validator.results in
  let seconds =
    let rec go k acc = if k = 0 then acc else go (k - 1) (acc +. fst (wall (fun () -> run fleet))) in
    go reps 0.0 /. float_of_int reps
  in
  let vps = float_of_int verdicts /. Float.max seconds 1e-9 in
  Printf.printf "fleet scan %s, %d verdicts, %.0f verdicts/sec\n"
    (pp_time (seconds *. 1e9))
    verdicts vps;
  let json =
    Jsonlite.Obj
      [
        ("smoke", Jsonlite.Bool !smoke);
        ("frames", Jsonlite.Num (float_of_int n));
        ("cluster_rules", Jsonlite.Num 4.0);
        ("verdicts", Jsonlite.Num (float_of_int verdicts));
        ("scan_seconds", Jsonlite.Num seconds);
        ("verdicts_per_sec", Jsonlite.Num vps);
        ("identical", Jsonlite.Bool identical);
        ("detects_drift", Jsonlite.Bool detects_drift);
        ("order_invariant", Jsonlite.Bool order_invariant);
      ]
  in
  Out_channel.with_open_text !cluster_out (fun oc ->
      Out_channel.output_string oc (Jsonlite.pretty json));
  Printf.printf "wrote %s\n" !cluster_out

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* protocol: v2 binary codec + incremental verdict deltas              *)
(* ------------------------------------------------------------------ *)

let protocol_out = ref "BENCH_protocol.json"

(* Protocol v2's two wins, measured through the server's own encode
   paths: [Server.handle_wire] is driven with buffer-backed wires, so
   every byte the server would put on a socket lands in a buffer we can
   count exactly — no socket noise, no stats contamination.

   (a) codec: per-verdict encode+decode round-trip, v1 JSON (render,
   parse, decode) vs the warm v2 binary frame (interned ordinals both
   ends). Gated floor on the speedup, hard gate on decode identity.

   (b) deltas: an n-replica fleet validated frame by frame (each
   establishes a baseline epoch), then one replica drifts and the whole
   fleet is revalidated. Bytes streamed as deltas vs the same
   revalidates forced [full]; the client-side reassembly of every delta
   must be byte-identical to the full stream and to one-shot
   [Validator.run]. *)
let protocol_bench () =
  let module P = Daemon.Protocol in
  let module V2 = Daemon.Protocol.V2 in
  heading
    (Printf.sprintf "Protocol - v2 codec + incremental deltas%s"
       (if !smoke then " (smoke)" else ""));
  let n = if !smoke then 8 else 512 in
  let quota = if !smoke then 0.1 else 0.5 in
  (* One config file per replica: enough for the full host ruleset to
     produce a complete verdict set per frame, with a one-setting drift
     that flips a single rule. *)
  let sshd ~root_login id =
    Frames.Frame.add_file
      (Frames.Frame.create ~id Frames.Frame.Host)
      (Frames.File.make
         ~content:
           (Printf.sprintf
              "Protocol 2\nLogLevel INFO\nX11Forwarding no\nMaxAuthTries 4\nPermitRootLogin \
               %s\nPermitEmptyPasswords no\n"
              root_login)
         "/etc/ssh/sshd_config")
  in
  let ids = List.init n (Printf.sprintf "edge-%d") in
  let fleet = List.map (sshd ~root_login:"no") ids in
  let drifted = List.mapi (fun i f -> if i = 0 then sshd ~root_login:"yes" (List.hd ids) else f) fleet in
  let server =
    match
      Daemon.Server.create ~jobs:1 ~source:Rulesets.source ~manifest:Rulesets.manifest ()
    with
    | Ok s -> s
    | Error m -> failwith m
  in
  (* One v2 "connection": a shared writer (interning stays warm across
     streams, as on a real connection), a session for the server-side
     baselines, and a capture buffer standing in for the socket. *)
  let session = Daemon.Server.v2_session () in
  let w2 = V2.writer () in
  let cap = Buffer.create 65536 in
  let wire =
    {
      Daemon.Server.respond = (fun resp -> V2.add_response w2 cap resp);
      v2 =
        Some
          {
            Daemon.Server.session;
            emit_epoch = (fun h -> V2.add_epoch w2 cap h);
            emit_copy = (fun ~start ~count -> V2.add_copy cap ~start ~count);
          };
    }
  in
  let run_req req =
    Buffer.clear cap;
    (match Daemon.Server.handle_wire server wire req with
    | `Continue -> ()
    | `Shutdown -> failwith "unexpected shutdown");
    Buffer.contents cap
  in
  (* Client side: a persistent reader (the intern table spans the whole
     connection) plus the retained baselines delta streams splice from. *)
  let rd = V2.reader () in
  let bases : (string, P.verdict array) Hashtbl.t = Hashtbl.create 16 in
  let decode_stream bytes =
    let pos = ref 0 and len = String.length bytes in
    let acc = ref [] and fresh = ref 0 and copied = ref 0 in
    let header = ref None in
    while !pos < len do
      match V2.read_frame_string rd bytes pos with
      | V2.Frame (V2.Verdict_frame v) ->
        incr fresh;
        acc := v :: !acc
      | V2.Frame (V2.Epoch h) -> header := Some h
      | V2.Frame (V2.Copy { start; count }) -> (
        match !header with
        | None -> failwith "copy frame before the epoch header"
        | Some h -> (
          match Hashtbl.find_opt bases h.V2.e_frame with
          | None -> failwith "delta stream without a retained baseline"
          | Some base ->
            for i = start to start + count - 1 do
              acc := base.(i) :: !acc
            done;
            copied := !copied + count))
      | V2.Frame (V2.Json j) -> (
        match P.response_of_json j with
        | Ok (P.Summary _) -> ()
        | Ok _ -> failwith "unexpected reply in a verdict stream"
        | Error m -> failwith m)
      | V2.Bad m | V2.Truncated m -> failwith m
      | V2.Closed -> failwith "unexpected end of captured stream"
    done;
    let verdicts = Array.of_list (List.rev !acc) in
    (match !header with
    | Some h ->
      if Array.length verdicts <> h.V2.e_total then failwith "epoch total mismatch";
      Hashtbl.replace bases h.V2.e_frame verdicts
    | None -> ());
    (verdicts, !fresh, !copied)
  in
  (* Establish one baseline epoch per replica. *)
  List.iter (fun f -> ignore (decode_stream (run_req (P.Validate (P.job ~frames:[ f ] ()))))) fleet;

  (* (a) codec micro-benchmark over one replica's full verdict set. *)
  let verdicts = Hashtbl.find bases (List.hd ids) in
  let nv = Array.length verdicts in
  let i1 = ref 0 in
  let v1_ns =
    measure_ns ~quota "protocol-v1-roundtrip" (fun () ->
        let v = verdicts.(!i1) in
        i1 := (!i1 + 1) mod nv;
        let s = Jsonlite.to_string (P.response_to_json (P.Verdict v)) in
        match Jsonlite.parse s with
        | Ok j -> (
          match P.response_of_json j with Ok _ -> () | Error m -> failwith m)
        | Error e -> failwith (Jsonlite.error_to_string e))
  in
  (* Steady state: warm the codec writer/reader intern tables first, so
     the timed loop measures the fast path, not table fills. *)
  let cw = V2.writer () and cr = V2.reader () in
  let corpus = Buffer.create 8192 in
  Array.iter (fun v -> V2.add_verdict cw corpus v) verdicts;
  let corpus = Buffer.contents corpus in
  let warm_pos = ref 0 in
  while !warm_pos < String.length corpus do
    ignore (V2.read_frame_string cr corpus warm_pos)
  done;
  let cbuf = Buffer.create 256 in
  let i2 = ref 0 in
  let v2_ns =
    measure_ns ~quota "protocol-v2-roundtrip" (fun () ->
        let v = verdicts.(!i2) in
        i2 := (!i2 + 1) mod nv;
        Buffer.clear cbuf;
        V2.add_verdict cw cbuf v;
        let pos = ref 0 in
        match V2.read_frame_string cr (Buffer.contents cbuf) pos with
        | V2.Frame (V2.Verdict_frame _) -> ()
        | _ -> failwith "v2 round-trip decode failed")
  in
  (* Decode identity over the whole corpus, intern frames included. *)
  let codec_identical =
    let r = V2.reader () in
    let pos = ref 0 and decoded = ref [] in
    while !pos < String.length corpus do
      match V2.read_frame_string r corpus pos with
      | V2.Frame (V2.Verdict_frame v) -> decoded := v :: !decoded
      | V2.Frame _ | V2.Bad _ | V2.Truncated _ | V2.Closed ->
        failwith "codec corpus decode failed"
    done;
    List.rev !decoded = Array.to_list verdicts
  in
  let codec_speedup = v1_ns /. Float.max v2_ns 1e-9 in
  (* Smoke quotas are too small for a stable ratio; the smoke floor only
     catches "the binary path lost to JSON", the full floor is the
     gated claim. *)
  let codec_floor = if !smoke then 1.5 else 3.0 in
  Printf.printf "codec: %d verdicts, v1 %s vs v2 %s per round-trip, speedup %.2fx\n" nv
    (pp_time v1_ns) (pp_time v2_ns) codec_speedup;
  Printf.printf "codec decode identical: %b\n" codec_identical;

  (* Jsonlite encode hot path: fresh buffer per message vs the reused
     per-connection buffer the server now writes through. *)
  let jsons = Array.map (fun v -> P.response_to_json (P.Verdict v)) verdicts in
  let k1 = ref 0 in
  let fresh_ns =
    measure_ns ~quota "jsonlite-fresh" (fun () ->
        let j = jsons.(!k1) in
        k1 := (!k1 + 1) mod nv;
        ignore (Jsonlite.to_string j))
  in
  let shared = Buffer.create 256 in
  let k2 = ref 0 in
  let reused_ns =
    measure_ns ~quota "jsonlite-reused" (fun () ->
        let j = jsons.(!k2) in
        k2 := (!k2 + 1) mod nv;
        Buffer.clear shared;
        Jsonlite.to_buffer shared j)
  in
  Printf.printf "jsonlite encode: fresh buffer %s vs reused %s per message\n" (pp_time fresh_ns)
    (pp_time reused_ns);

  (* (b) deltas: drift one replica, revalidate the whole fleet. *)
  let reval ~full f =
    P.Revalidate { frame = Some f; frame_file = None; deadline_ms = None; full }
  in
  let delta_bytes = ref 0 and fresh_total = ref 0 and copied_total = ref 0 in
  let delta_streams =
    List.map
      (fun f ->
        let bytes = run_req (reval ~full:false f) in
        delta_bytes := !delta_bytes + String.length bytes;
        let vs, fresh, copied = decode_stream bytes in
        fresh_total := !fresh_total + fresh;
        copied_total := !copied_total + copied;
        vs)
      drifted
  in
  let full_bytes = ref 0 in
  let full_streams =
    List.map
      (fun f ->
        let bytes = run_req (reval ~full:true f) in
        full_bytes := !full_bytes + String.length bytes;
        let vs, _, _ = decode_stream bytes in
        vs)
      drifted
  in
  let vsig vs =
    List.map
      (fun (v : P.verdict) ->
        (v.P.v_entity, v.P.v_frame, v.P.v_rule, v.P.v_verdict, v.P.v_detail, v.P.v_evidence))
      (Array.to_list vs)
  in
  let identical_reassembly =
    List.for_all2 (fun a b -> vsig a = vsig b) delta_streams full_streams
  in
  (* Revalidate streams splice re-evaluated entities after the kept
     ones (Incremental.revalidate's merge order, in every protocol
     version), so the one-shot comparison is order-insensitive: same
     verdicts, field for field. *)
  let oneshot =
    Cvl.Validator.run ~source:Rulesets.source ~manifest:Rulesets.manifest [ List.hd drifted ]
  in
  let identical_oneshot =
    List.sort compare (vsig (List.hd delta_streams))
    = List.sort compare (result_signature oneshot)
  in
  let ratio = float_of_int !delta_bytes /. Float.max (float_of_int !full_bytes) 1e-9 in
  let ratio_ceiling = 0.20 in
  Printf.printf "delta: %d replicas, 1 drifted; %d fresh verdict(s), %d spliced from baselines\n"
    n !fresh_total !copied_total;
  Printf.printf "delta stream %d bytes vs full stream %d bytes: %.3fx of full\n" !delta_bytes
    !full_bytes ratio;
  Printf.printf "delta reassembly identical to full stream: %b, to one-shot: %b\n"
    identical_reassembly identical_oneshot;
  Daemon.Server.destroy server;
  let json =
    Jsonlite.Obj
      [
        ("smoke", Jsonlite.Bool !smoke);
        ( "codec",
          Jsonlite.Obj
            [
              ("verdicts", Jsonlite.Num (float_of_int nv));
              ("v1_us_per_verdict", Jsonlite.Num (v1_ns /. 1e3));
              ("v2_us_per_verdict", Jsonlite.Num (v2_ns /. 1e3));
              ("speedup", Jsonlite.Num codec_speedup);
              ("speedup_floor", Jsonlite.Num codec_floor);
              ("identical", Jsonlite.Bool codec_identical);
            ] );
        ( "jsonlite",
          Jsonlite.Obj
            [
              ("fresh_us", Jsonlite.Num (fresh_ns /. 1e3));
              ("reused_us", Jsonlite.Num (reused_ns /. 1e3));
              ("speedup", Jsonlite.Num (fresh_ns /. Float.max reused_ns 1e-9));
            ] );
        ( "delta",
          Jsonlite.Obj
            [
              ("replicas", Jsonlite.Num (float_of_int n));
              ("fresh_verdicts", Jsonlite.Num (float_of_int !fresh_total));
              ("copied_verdicts", Jsonlite.Num (float_of_int !copied_total));
              ("delta_bytes", Jsonlite.Num (float_of_int !delta_bytes));
              ("full_bytes", Jsonlite.Num (float_of_int !full_bytes));
              ("ratio", Jsonlite.Num ratio);
              ("ratio_ceiling", Jsonlite.Num ratio_ceiling);
              ("identical", Jsonlite.Bool (identical_reassembly && identical_oneshot));
            ] );
      ]
  in
  Out_channel.with_open_text !protocol_out (fun oc ->
      Out_channel.output_string oc (Jsonlite.pretty json));
  Printf.printf "wrote %s\n" !protocol_out

let sections =
  [
    ("table1", table1);
    ("table2", table2);
    ("listing6", listing6);
    ("ablation-a", ablation_a);
    ("ablation-b", ablation_b);
    ("ablation-c", ablation_c);
    ("ablation-d", ablation_d);
    ("ablation-e", ablation_e);
    ("scaling", scaling);
    ("lint", lint_bench);
    ("chaos", chaos_bench);
    ("compile", compile_bench);
    ("fusion", fusion_bench);
    ("daemon", daemon_bench);
    ("cluster", cluster_bench);
    ("protocol", protocol_bench);
  ]

(* A mistyped flag or section must fail loudly: a CI bench invocation
   that silently runs the wrong (or no) section writes stale BENCH_*
   files that the gates then happily re-check. *)
let usage () =
  Printf.eprintf
    "usage: main.exe [SECTION...] [--smoke] [--out FILE] [--lint-out FILE] [--chaos-out FILE] \
     [--compile-out FILE] [--fusion-out FILE] [--daemon-out FILE] [--cluster-out FILE] \
     [--protocol-out FILE]\n";
  Printf.eprintf "sections: %s\n" (String.concat ", " (List.map fst sections));
  exit 2

let () =
  let rec parse_args = function
    | [] -> []
    | "--smoke" :: rest ->
      smoke := true;
      parse_args rest
    | "--out" :: file :: rest ->
      out_file := file;
      parse_args rest
    | "--lint-out" :: file :: rest ->
      lint_out := file;
      parse_args rest
    | "--chaos-out" :: file :: rest ->
      chaos_out := file;
      parse_args rest
    | "--compile-out" :: file :: rest ->
      compile_out := file;
      parse_args rest
    | "--fusion-out" :: file :: rest ->
      fusion_out := file;
      parse_args rest
    | "--daemon-out" :: file :: rest ->
      daemon_out := file;
      parse_args rest
    | "--cluster-out" :: file :: rest ->
      cluster_out := file;
      parse_args rest
    | "--protocol-out" :: file :: rest ->
      protocol_out := file;
      parse_args rest
    | [ (("--out" | "--lint-out" | "--chaos-out" | "--compile-out" | "--fusion-out" | "--daemon-out"
         | "--cluster-out" | "--protocol-out") as flag) ]
      ->
      Printf.eprintf "flag %s needs a FILE argument\n" flag;
      usage ()
    | flag :: _ when String.length flag > 0 && flag.[0] = '-' ->
      Printf.eprintf "unknown flag %S\n" flag;
      usage ()
    | arg :: rest -> arg :: parse_args rest
  in
  let requested = parse_args (List.tl (Array.to_list Sys.argv)) in
  let to_run =
    if requested = [] then sections
    else
      List.map
        (fun name ->
          match List.assoc_opt name sections with
          | Some f -> (name, f)
          | None ->
            Printf.eprintf "unknown section %S\n" name;
            usage ())
        requested
  in
  List.iter (fun (_, f) -> f ()) to_run
