let () =
  let frames = Scenarios.Deployment.three_tier ~compliant:false in
  let before =
    Cvl.Report.violations
      (Cvl.Validator.run ~source:Rulesets.source ~manifest:Rulesets.manifest frames).Cvl.Validator.results
  in
  Printf.printf "violations before: %d\n" (List.length before);
  let _frames', reports, remaining =
    Cvl.Remediate.fixpoint ~source:Rulesets.source ~manifest:Rulesets.manifest frames
  in
  let fixed = List.filter (fun r -> match r.Cvl.Remediate.outcome with Cvl.Remediate.Fixed _ -> true | _ -> false) reports in
  Printf.printf "fixes applied: %d, reports: %d\n" (List.length fixed) (List.length reports);
  Printf.printf "violations remaining: %d\n" (List.length remaining);
  List.iter
    (fun (r : Cvl.Engine.result) ->
      Printf.printf "  REMAIN %s/%s (%s): %s\n" r.Cvl.Engine.entity (Cvl.Rule.name r.Cvl.Engine.rule)
        (Cvl.Engine.verdict_to_string r.Cvl.Engine.verdict) r.Cvl.Engine.detail)
    remaining;
  List.iter
    (fun r -> match r.Cvl.Remediate.outcome with
      | Cvl.Remediate.Skipped why -> Printf.printf "  SKIP %s/%s: %s\n" r.Cvl.Remediate.entity r.Cvl.Remediate.rule_name why
      | _ -> ())
    reports
