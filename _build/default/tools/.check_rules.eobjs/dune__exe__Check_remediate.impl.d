tools/check_remediate.ml: Cvl List Printf Rulesets Scenarios
