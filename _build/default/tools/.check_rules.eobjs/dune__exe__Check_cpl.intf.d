tools/check_cpl.mli:
