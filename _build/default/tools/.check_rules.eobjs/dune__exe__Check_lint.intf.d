tools/check_lint.mli:
