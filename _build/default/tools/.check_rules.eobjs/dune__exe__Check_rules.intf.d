tools/check_rules.mli:
