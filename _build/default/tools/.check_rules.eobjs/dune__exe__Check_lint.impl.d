tools/check_lint.ml: Array Cvl Cvlint Daemon In_channel List Printf Rulesets String Sys
