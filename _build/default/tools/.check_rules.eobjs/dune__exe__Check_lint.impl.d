tools/check_lint.ml: Array Cvl Cvlint Printf Rulesets Sys
