tools/check_bench.mli:
