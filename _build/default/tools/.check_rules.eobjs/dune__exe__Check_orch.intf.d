tools/check_orch.mli:
