tools/check_engines.mli:
