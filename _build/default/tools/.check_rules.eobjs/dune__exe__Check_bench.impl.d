tools/check_bench.ml: In_channel Jsonlite List Option Printf String Sys
