tools/check_bench.ml: In_channel Jsonlite Option Printf String Sys
