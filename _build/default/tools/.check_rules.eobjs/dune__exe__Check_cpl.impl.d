tools/check_cpl.ml: Checkir Confvalley List Printf Scenarios String
