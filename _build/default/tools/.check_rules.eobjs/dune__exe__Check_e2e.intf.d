tools/check_e2e.mli:
