tools/check_engines.ml: Checkir Cvl Inspeclite List Printf Scap Scenarios String
