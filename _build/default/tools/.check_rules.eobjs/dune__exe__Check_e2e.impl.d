tools/check_e2e.ml: Cvl List Printf Rulesets Scenarios
