tools/check_orch.ml: Cvl List Printf Rulesets Scenarios String
