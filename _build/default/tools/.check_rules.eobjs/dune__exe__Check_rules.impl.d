tools/check_rules.ml: Cvl List Printf Rulesets
