tools/check_remediate.mli:
