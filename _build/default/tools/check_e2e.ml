let () =
  let frames = Scenarios.Deployment.three_tier ~compliant:false in
  let run =
    Cvl.Validator.run ~source:Rulesets.source ~manifest:Rulesets.manifest frames
  in
  List.iter (fun (e, msg) -> Printf.printf "LOAD ERROR %s: %s\n" e msg) run.Cvl.Validator.load_errors;
  print_string (Cvl.Report.to_text run.Cvl.Validator.results);
  print_endline (Cvl.Report.summary_line (Cvl.Report.summarize run.Cvl.Validator.results));
  (* Cross-check against the injected fault list. *)
  let violated =
    Cvl.Report.violations run.Cvl.Validator.results
    |> List.map (fun (r : Cvl.Engine.result) -> (r.Cvl.Engine.entity, Cvl.Rule.name r.Cvl.Engine.rule))
    |> List.sort_uniq compare
  in
  let expected = List.sort_uniq compare Scenarios.Deployment.injected_faults in
  let missing = List.filter (fun f -> not (List.mem f violated)) expected in
  let unexpected = List.filter (fun f -> not (List.mem f expected)) violated in
  List.iter (fun (e, r) -> Printf.printf "MISSING: %s/%s\n" e r) missing;
  List.iter (fun (e, r) -> Printf.printf "UNEXPECTED: %s/%s\n" e r) unexpected;
  Printf.printf "expected %d faults, detected %d violations (%d missing, %d unexpected)\n"
    (List.length expected) (List.length violated) (List.length missing) (List.length unexpected);
  (* Compliant deployment should be all green. *)
  let good = Cvl.Validator.run ~source:Rulesets.source ~manifest:Rulesets.manifest
      (Scenarios.Deployment.three_tier ~compliant:true) in
  let bad_good = Cvl.Report.violations good.Cvl.Validator.results in
  Printf.printf "compliant deployment: %d violations\n" (List.length bad_good);
  List.iter
    (fun (r : Cvl.Engine.result) ->
      Printf.printf "  GOOD-FAIL %s/%s (%s): %s\n" r.Cvl.Engine.entity
        (Cvl.Rule.name r.Cvl.Engine.rule)
        (Cvl.Engine.verdict_to_string r.Cvl.Engine.verdict)
        r.Cvl.Engine.detail)
    bad_good
