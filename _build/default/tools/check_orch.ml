let check label frame expected_entity =
  let run = Cvl.Validator.run ~source:Rulesets.source ~manifest:Rulesets.manifest [ frame ] in
  List.iter (fun (e, m) -> Printf.printf "LOAD %s %s\n" e m) run.Cvl.Validator.load_errors;
  let violations =
    Cvl.Report.violations run.Cvl.Validator.results
    |> List.filter (fun (r : Cvl.Engine.result) -> r.Cvl.Engine.entity = expected_entity)
    |> List.map (fun (r : Cvl.Engine.result) -> Cvl.Rule.name r.Cvl.Engine.rule)
    |> List.sort_uniq compare
  in
  Printf.printf "%s: [%s]\n" label (String.concat "; " violations)

let () =
  check "compose good" (Scenarios.Orchestrator.compose_compliant ()) "compose";
  check "compose bad" (Scenarios.Orchestrator.compose_misconfigured ()) "compose";
  check "k8s good" (Scenarios.Orchestrator.k8s_compliant ()) "kubernetes";
  check "k8s bad" (Scenarios.Orchestrator.k8s_misconfigured ()) "kubernetes"

let () =
  check "postgres good" (Scenarios.Database.compliant ()) "postgres";
  check "postgres bad" (Scenarios.Database.misconfigured ()) "postgres"

let () =
  check "apache good" (Scenarios.Appserver.apache_compliant ()) "apache";
  check "apache bad" (Scenarios.Appserver.apache_misconfigured ()) "apache";
  check "hadoop good" (Scenarios.Appserver.hadoop_compliant ()) "hadoop";
  check "hadoop bad" (Scenarios.Appserver.hadoop_misconfigured ()) "hadoop"
