let () =
  let checks = Checkir.Cis40.all in
  let program, _ = Confvalley.Cpl.of_checks checks in
  let text = Confvalley.Cpl.render program in
  (* parse/render roundtrip *)
  (match Confvalley.Cpl.parse text with
  | Error e -> Printf.printf "PARSE FAIL: %s\n" e
  | Ok p2 ->
    Printf.printf "roundtrip: %b (%d bindings, %d assertions)\n"
      (Confvalley.Cpl.render p2 = text)
      (List.length p2.Confvalley.Cpl.bindings)
      (List.length p2.Confvalley.Cpl.assertions));
  List.iter
    (fun (label, frame) ->
      let verdicts = Confvalley.Cpl.run_checks frame checks in
      let mismatches =
        List.filter
          (fun (c : Checkir.Check.t) ->
            List.assoc c.Checkir.Check.id verdicts <> Checkir.Check.holds frame c)
          checks
      in
      Printf.printf "%s: %d mismatches vs reference\n" label (List.length mismatches);
      List.iter (fun (c : Checkir.Check.t) -> Printf.printf "  %s\n" c.Checkir.Check.id) mismatches)
    [ ("good", Scenarios.Host.compliant ()); ("bad", Scenarios.Host.misconfigured ()) ];
  print_string (String.concat "\n" (List.filteri (fun i _ -> i < 12) (String.split_on_char '\n' text)))
