let checks = Checkir.Cis40.all

let cvl_verdicts frame =
  let manifest_yaml, rule_files = Checkir.To_cvl.bundle checks in
  let manifest = Cvl.Manifest.parse_exn manifest_yaml in
  let source = Cvl.Loader.assoc_source rule_files in
  let run = Cvl.Validator.run ~source ~manifest [ frame ] in
  List.filter_map
    (fun (r : Cvl.Engine.result) ->
      let ok =
        match r.Cvl.Engine.verdict with
        | Cvl.Engine.Matched -> Some true
        | Cvl.Engine.Not_matched | Cvl.Engine.Not_present -> Some false
        | Cvl.Engine.Not_applicable | Cvl.Engine.Engine_error _ -> None
      in
      (* Recover the check id from the rule's #tag (tree rules are named
         by config key, not check id). *)
      let id =
        List.find_map
          (fun tag ->
            if String.length tag > 1 && tag.[0] = '#' && String.length tag > 10
               && String.sub tag 1 10 = "cisubuntu1" then
              Some (String.sub tag 1 (String.length tag - 1))
            else None)
          (Cvl.Rule.tags r.Cvl.Engine.rule)
      in
      match (id, ok) with
      | Some id, Some ok -> Some (id, ok)
      | _ ->
        (match ok with
        | Some ok -> Some (Cvl.Rule.name r.Cvl.Engine.rule, ok)
        | None -> None))
    run.Cvl.Validator.results

let oval_verdicts frame =
  let benchmark = Scap.Xccdf.of_checks ~id:"cis40" checks in
  let benchmark_xml = Scap.Xccdf.to_xml benchmark in
  let oval_xml = Scap.Oval.to_xml (Scap.Oval.of_checks checks) in
  match Scap.Xccdf.run ~benchmark_xml ~oval_xml frame with
  | Ok results ->
    List.map
      (fun (rule_id, ok) ->
        let prefix = "xccdf_org.cis.content_rule_" in
        (String.sub rule_id (String.length prefix) (String.length rule_id - String.length prefix), ok))
      results
  | Error e ->
    Printf.printf "OVAL error: %s\n" e;
    []

let () =
  List.iter
    (fun (label, frame) ->
      Printf.printf "=== %s ===\n" label;
      let reference =
        List.map (fun c -> (c.Checkir.Check.id, Checkir.Check.holds frame c)) checks
      in
      let cvl = cvl_verdicts frame in
      let oval = oval_verdicts frame in
      let inspec = Inspeclite.Engine.run frame checks in
      let dsl =
        List.map
          (fun c -> (c.Checkir.Check.id, Inspeclite.Dsl.run_control frame (Inspeclite.Engine.to_dsl c)))
          checks
      in
      let mism = ref 0 in
      List.iter
        (fun (id, ref_ok) ->
          let show name verdicts =
            match List.assoc_opt id verdicts with
            | Some ok when ok = ref_ok -> ()
            | Some ok ->
              incr mism;
              Printf.printf "  DISAGREE %-28s %s: ref=%b %s=%b\n" id name ref_ok name ok
            | None ->
              incr mism;
              Printf.printf "  MISSING  %-28s from %s\n" id name
          in
          show "cvl" cvl;
          show "oval" oval;
          show "inspec" inspec;
          show "dsl" dsl)
        reference;
      let fails = List.length (List.filter (fun (_, ok) -> not ok) reference) in
      Printf.printf "reference: %d/%d fail; disagreements: %d\n" fails (List.length reference) !mism)
    [ ("good host", Scenarios.Host.compliant ()); ("bad host", Scenarios.Host.misconfigured ()) ]
