(* Lint gate, run under `dune runtest`: the embedded ruleset corpus and
   every CVL example directory passed on the command line must be clean
   — no error- or warning-severity findings. Info findings (e.g. the
   intentional site_overrides rule shadowing) are printed but allowed.

   A finding that is a deliberate part of an example belongs under a
   tracked `# cvlint-disable-file CVLnnn` annotation in the file itself,
   not in an exception list here. *)

let failed = ref false

let check label diags =
  let errors, warnings, infos = Cvlint.Diagnostic.count diags in
  if errors > 0 || warnings > 0 then begin
    failed := true;
    Printf.printf "%-28s FAIL (%s)\n" label (Cvlint.Render.summary_line diags);
    print_string (Cvlint.Render.to_text diags)
  end
  else Printf.printf "%-28s ok (%d infos)\n" label infos

let () =
  check "embedded corpus" (Cvlint.lint_corpus ~source:Rulesets.source ());
  (* Embedded files the manifest does not reference (the inheritance
     example) still have to lint clean as standalone chains. *)
  check "site_overrides/sshd.yaml"
    (Cvlint.lint_file ~source:Rulesets.source "site_overrides/sshd.yaml");
  Array.iteri
    (fun i dir ->
      if i > 0 then
        check dir
          (Cvlint.lint_corpus ~source:(Cvl.Loader.file_source ~root:dir) ()))
    Sys.argv;
  if !failed then exit 1
