(* Lint gate, run under `dune runtest`: the embedded ruleset corpus and
   every CVL example directory passed on the command line must be clean
   — no error- or warning-severity findings. Info findings (e.g. the
   intentional site_overrides rule shadowing) are printed but allowed.

   A finding that is a deliberate part of an example belongs under a
   tracked `# cvlint-disable-file CVLnnn` annotation in the file itself,
   not in an exception list here. *)

let failed = ref false

let check label diags =
  let errors, warnings, infos = Cvlint.Diagnostic.count diags in
  if errors > 0 || warnings > 0 then begin
    failed := true;
    Printf.printf "%-28s FAIL (%s)\n" label (Cvlint.Render.summary_line diags);
    print_string (Cvlint.Render.to_text diags)
  end
  else Printf.printf "%-28s ok (%d infos)\n" label infos

(* Doc-anchor gate: the reference docs must mention every name the
   implementation actually speaks — each CVL keyword in docs/CVL.md,
   each wire op/reply in docs/PROTOCOL.md. Presence is checked as a
   backtick-delimited anchor (`name`) so prose mentions of a substring
   ("stats" inside "statistics") cannot mask a missing entry. *)
let check_doc ~label ~doc names =
  match In_channel.with_open_text doc In_channel.input_all with
  | exception Sys_error e ->
    failed := true;
    Printf.printf "%-28s FAIL (%s)\n" label e
  | text ->
    let contains anchor =
      let alen = String.length anchor and tlen = String.length text in
      let rec scan i = i + alen <= tlen && (String.sub text i alen = anchor || scan (i + 1)) in
      scan 0
    in
    let missing = List.filter (fun n -> not (contains ("`" ^ n ^ "`"))) names in
    if missing = [] then
      Printf.printf "%-28s ok (%d anchors)\n" label (List.length names)
    else begin
      failed := true;
      Printf.printf "%-28s FAIL (%d of %d anchors missing)\n" label (List.length missing)
        (List.length names);
      List.iter (fun n -> Printf.printf "  %s: no `%s` anchor\n" doc n) missing
    end

let check_docs cvl_doc protocol_doc =
  check_doc ~label:"doc anchors: CVL keywords" ~doc:cvl_doc
    (List.map (fun (name, _, _) -> name) Cvl.Keyword.all);
  check_doc ~label:"doc anchors: protocol ops" ~doc:protocol_doc Daemon.Protocol.op_names;
  check_doc ~label:"doc anchors: protocol replies" ~doc:protocol_doc
    Daemon.Protocol.reply_names;
  check_doc ~label:"doc anchors: v2 frames" ~doc:protocol_doc Daemon.Protocol.V2.frame_names

let () =
  check "embedded corpus" (Cvlint.lint_corpus ~source:Rulesets.source ());
  (* Embedded files the manifest does not reference (the inheritance
     example) still have to lint clean as standalone chains. *)
  check "site_overrides/sshd.yaml"
    (Cvlint.lint_file ~source:Rulesets.source "site_overrides/sshd.yaml");
  let rec handle = function
    | [] -> ()
    | "--docs" :: cvl_doc :: protocol_doc :: rest ->
      check_docs cvl_doc protocol_doc;
      handle rest
    | "--docs" :: _ ->
      prerr_endline "usage: check_lint.exe [CVL_DIR ...] [--docs CVL.md PROTOCOL.md]";
      exit 2
    | dir :: rest ->
      check dir (Cvlint.lint_corpus ~source:(Cvl.Loader.file_source ~root:dir) ());
      handle rest
  in
  handle (List.tl (Array.to_list Sys.argv));
  if !failed then exit 1
