let () =
  let per = Rulesets.all_rules () in
  List.iter (fun (e, rs) -> Printf.printf "%-10s %d\n" e (List.length rs)) per;
  Printf.printf "paper total: %d\n" (Rulesets.paper_rule_count ());
  Printf.printf "keywords: %d\n" Cvl.Keyword.count
