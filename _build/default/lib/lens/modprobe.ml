let columns = [ "directive"; "module"; "args" ]

let parse ~filename:_ input =
  let lines = Lex.lines ~continuation:true input in
  let rec go acc = function
    | [] -> (
      match Configtree.Table.make ~name:"modprobe" ~columns (List.rev acc) with
      | Ok t -> Ok (Lens.Table t)
      | Error _ as e -> e)
    | { Lex.num; text } :: rest -> (
      match Lex.tokens text with
      | directive :: module_ :: args
        when List.mem directive [ "install"; "blacklist"; "options"; "alias"; "remove"; "softdep" ] ->
        go ([ directive; module_; String.concat " " args ] :: acc) rest
      | [ "blacklist" ] -> Error (Printf.sprintf "modprobe: line %d: blacklist needs a module" num)
      | _ -> Error (Printf.sprintf "modprobe: line %d: unrecognized directive in %S" num text))
  in
  go [] lines

let render = function
  | Lens.Table t ->
    let row = function
      | [ directive; module_; "" ] -> Printf.sprintf "%s %s" directive module_
      | [ directive; module_; args ] -> Printf.sprintf "%s %s %s" directive module_ args
      | _ -> ""
    in
    Some (String.concat "\n" (List.map row t.Configtree.Table.rows) ^ "\n")
  | Lens.Tree _ -> None

let lens =
  Lens.make ~name:"modprobe" ~description:"kernel module policy (modprobe.d)"
    ~file_patterns:[ "modprobe.conf"; "modprobe.d/*.conf"; "blacklist*.conf" ]
    ~render parse
