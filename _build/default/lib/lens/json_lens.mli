(** JSON configuration lens (docker [daemon.json], inspect documents).

    Normal form: objects become section nodes, scalar members become
    leaves (booleans/numbers rendered to their literal text), arrays
    become repeated children under the member label (addressable with
    Augeas-style indices, [ulimits/nofile[2]]). *)

val lens : Lens.t

val tree_of_json : Jsonlite.t -> Configtree.Tree.t list
