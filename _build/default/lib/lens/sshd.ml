let split_keyword text =
  match String.index_opt text ' ' with
  | None -> (text, "")
  | Some i ->
    (String.sub text 0 i, String.trim (String.sub text (i + 1) (String.length text - i - 1)))

let parse_tree input =
  let lines = Lex.lines input in
  let rec go acc current = function
    | [] -> Ok (List.rev (flush acc current))
    | { Lex.text; _ } :: rest ->
      let keyword, args = split_keyword text in
      if String.lowercase_ascii keyword = "match" then
        go (flush acc current) (Some (args, [])) rest
      else
        let leaf = Configtree.Tree.leaf keyword args in
        (match current with
        | None -> go (leaf :: acc) None rest
        | Some (cond, entries) -> go acc (Some (cond, leaf :: entries)) rest)
  and flush acc = function
    | None -> acc
    | Some (cond, entries) ->
      Configtree.Tree.node ~value:cond ~children:(List.rev entries) "Match" :: acc
  in
  go [] None lines

let render_tree forest =
  let buf = Buffer.create 256 in
  let leaf (n : Configtree.Tree.t) =
    match n.value with
    | Some "" | None -> Buffer.add_string buf (n.label ^ "\n")
    | Some v -> Buffer.add_string buf (Printf.sprintf "%s %s\n" n.label v)
  in
  List.iter
    (fun (n : Configtree.Tree.t) ->
      if n.label = "Match" then begin
        Buffer.add_string buf (Printf.sprintf "Match %s\n" (Option.value n.value ~default:""));
        List.iter
          (fun c ->
            Buffer.add_string buf "  ";
            leaf c)
          n.children
      end
      else leaf n)
    forest;
  Buffer.contents buf

let lens =
  Lens.make ~name:"sshd" ~description:"OpenSSH server configuration"
    ~file_patterns:[ "sshd_config"; "ssh_config" ]
    ~render:(function Lens.Tree forest -> Some (render_tree forest) | Lens.Table _ -> None)
    (fun ~filename:_ input -> Result.map (fun f -> Lens.Tree f) (parse_tree input))
