(** YAML configuration lens: docker-compose files, Kubernetes manifests
    and other YAML-configured tools (the paper notes YAML's popularity
    with "Docker Compose, Ansible, and Kubernetes").

    Normal form mirrors the JSON lens: mappings become sections, scalars
    become leaves with their literal text, sequences become repeated
    children under the member label. Rules address e.g.
    [services/*/privileged] or [spec/containers/securityContext]. *)

val lens : Lens.t

val tree_of_yaml : Yamlite.Value.t -> Configtree.Tree.t list
