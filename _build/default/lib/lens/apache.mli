(** Apache httpd lens: [Directive arg ...] lines plus container sections
    [<VirtualHost *:80> ... </VirtualHost>].

    Normal form: directives are leaves [Directive = "arg ..."];
    containers are section nodes labelled with the tag whose value is
    the tag argument. The paper singles Apache out as a "modular style"
    that is non-trivial to relate across sections — the nesting is
    preserved so rules can scope assertions with paths such as
    [VirtualHost/SSLEngine]. Continuation backslashes are honoured. *)

val lens : Lens.t
