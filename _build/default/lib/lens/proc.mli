(** Process-table lens for the [process_list] crawler plugin output:
    one [pid user command...] row per line. Columns: [pid, user,
    command] (the command keeps its arguments). *)

val lens : Lens.t
