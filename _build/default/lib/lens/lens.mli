(** The lens framework: per-format parsers that normalize raw
    configuration text into the tree or schema form consumed by the rule
    engine (the paper's "Data Normalizer", built on Augeas in the
    original system).

    A lens declares which files it applies to; {!Registry} resolves a
    concrete file path to a lens when a manifest does not name one
    explicitly. *)

type normalized =
  | Tree of Configtree.Tree.t list
  | Table of Configtree.Table.t

type t = {
  name : string;  (** e.g. ["nginx"] *)
  description : string;
  file_patterns : string list;
      (** glob-ish basename or path-suffix patterns this lens claims,
          e.g. ["nginx.conf"], ["*.cnf"], ["sites-enabled/*"]. ['*']
          matches any run of characters except ['/']. *)
  parse : filename:string -> string -> (normalized, string) result;
  render : (normalized -> string option) option;
      (** Inverse direction where supported; [None] for formats we only
          read. Used by round-trip property tests. *)
}

val make :
  name:string ->
  description:string ->
  file_patterns:string list ->
  ?render:(normalized -> string option) ->
  (filename:string -> string -> (normalized, string) result) ->
  t

(** [matches lens path] tests the basename (and, for patterns containing
    ['/'], the path suffix) against the lens's patterns. *)
val matches : t -> string -> bool

val tree_exn : normalized -> Configtree.Tree.t list
val table_exn : normalized -> Configtree.Table.t
