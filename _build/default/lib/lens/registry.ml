let all =
  [
    Sshd.lens;
    Sysctl.lens;
    Postgres.lens;
    Nginx.lens;
    Apache.lens;
    Etcdb.passwd;
    Etcdb.group;
    Etcdb.shadow;
    Fstab.lens;
    Audit.lens;
    Modprobe.lens;
    Hosts.lens;
    Hadoop_xml.lens;
    Properties.lens;
    Ini.lens;
    Json_lens.lens;
    Yaml_lens.lens;
    Proc.lens;
    Rawlines.lens;
  ]

let find name = List.find_opt (fun (l : Lens.t) -> String.equal l.name name) all
let for_path path = List.find_opt (fun lens -> Lens.matches lens path) all

let parse ?lens_name ~path content =
  let lens =
    match lens_name with
    | Some name -> (
      match find name with
      | Some lens -> Ok lens
      | None -> Error (Printf.sprintf "unknown lens %S" name))
    | None -> (
      match for_path path with
      | Some lens -> Ok lens
      | None -> Error (Printf.sprintf "no lens matches path %S" path))
  in
  match lens with
  | Error _ as e -> e
  | Ok lens -> lens.parse ~filename:path content
