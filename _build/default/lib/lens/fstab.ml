let columns = [ "device"; "dir"; "fstype"; "options"; "dump"; "pass" ]

let parse ~filename:_ input =
  let lines = Lex.lines input in
  let rows = List.map (fun { Lex.text; _ } -> Lex.tokens text) lines in
  Result.map (fun t -> Lens.Table t) (Configtree.Table.make ~name:"fstab" ~columns rows)

let render = function
  | Lens.Table t ->
    Some
      (String.concat "\n" (List.map (String.concat " ") t.Configtree.Table.rows) ^ "\n")
  | Lens.Tree _ -> None

let lens =
  Lens.make ~name:"fstab" ~description:"/etc/fstab mount table" ~file_patterns:[ "fstab" ]
    ~render parse
