(** Java-style .properties lens ([key=value] / [key: value], ['#'] and
    ['!'] comments, backslash continuations). Used for Hadoop env files.
    Normal form: flat leaves. *)

val lens : Lens.t
