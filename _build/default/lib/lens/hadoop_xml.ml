let parse_tree input =
  match Xmllite.parse input with
  | Error e -> Error (Printf.sprintf "hadoop: %s" (Xmllite.error_to_string e))
  | Ok root ->
    if root.Xmllite.tag <> "configuration" then
      Error (Printf.sprintf "hadoop: expected <configuration> root, got <%s>" root.Xmllite.tag)
    else
      let property el =
        match (Xmllite.find "name" el, Xmllite.find "value" el) with
        | Some name_el, Some value_el ->
          Ok (Configtree.Tree.leaf (Xmllite.text name_el) (Xmllite.text value_el))
        | None, _ -> Error "hadoop: <property> without <name>"
        | _, None -> Error "hadoop: <property> without <value>"
      in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | el :: rest -> (
          match property el with
          | Ok leaf -> go (leaf :: acc) rest
          | Error _ as e -> e)
      in
      go [] (Xmllite.find_all "property" root)

let render_tree forest =
  let property (n : Configtree.Tree.t) =
    Xmllite.Element
      (Xmllite.element "property"
         ~children:
           [
             Xmllite.Element (Xmllite.element "name" ~children:[ Xmllite.text_child n.label ]);
             Xmllite.Element
               (Xmllite.element "value"
                  ~children:[ Xmllite.text_child (Option.value n.value ~default:"") ]);
           ])
  in
  Xmllite.to_string (Xmllite.element "configuration" ~children:(List.map property forest))

let lens =
  Lens.make ~name:"hadoop" ~description:"Hadoop *-site.xml property lists"
    ~file_patterns:[ "core-site.xml"; "hdfs-site.xml"; "yarn-site.xml"; "mapred-site.xml"; "*-site.xml" ]
    ~render:(function Lens.Tree f -> Some (render_tree f) | Lens.Table _ -> None)
    (fun ~filename:_ input -> Result.map (fun f -> Lens.Tree f) (parse_tree input))
