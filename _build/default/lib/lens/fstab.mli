(** /etc/fstab lens. Columns: [device, dir, fstype, options, dump,
    pass]. The paper's Listing 3 ("is /tmp on a separate partition")
    queries this table with [query_constraints: "dir = ?"]. *)

val lens : Lens.t
