let columns = [ "kind"; "path"; "perms"; "key"; "fields"; "syscalls"; "action" ]

type acc = {
  mutable kind : string;
  mutable path : string;
  mutable perms : string;
  mutable key : string;
  mutable fields : string list;
  mutable syscalls : string list;
  mutable action : string;
}

let fresh () =
  { kind = ""; path = ""; perms = ""; key = ""; fields = []; syscalls = []; action = "" }

let row_of acc =
  [
    acc.kind;
    acc.path;
    acc.perms;
    acc.key;
    String.concat "," (List.rev acc.fields);
    String.concat "," (List.rev acc.syscalls);
    acc.action;
  ]

let parse_line num text =
  let acc = fresh () in
  let rec go = function
    | [] -> Ok (row_of acc)
    | "-w" :: path :: rest ->
      acc.kind <- "watch";
      acc.path <- path;
      go rest
    | "-p" :: perms :: rest ->
      acc.perms <- perms;
      go rest
    | "-k" :: key :: rest ->
      acc.key <- key;
      go rest
    | "-a" :: action :: rest ->
      acc.kind <- "syscall";
      acc.action <- action;
      go rest
    | "-F" :: field :: rest ->
      acc.fields <- field :: acc.fields;
      go rest
    | "-S" :: syscall :: rest ->
      acc.syscalls <- syscall :: acc.syscalls;
      go rest
    | "-D" :: rest ->
      acc.kind <- "control";
      acc.action <- "delete-all";
      go rest
    | "-b" :: n :: rest ->
      acc.kind <- "control";
      acc.action <- "backlog=" ^ n;
      go rest
    | "-e" :: n :: rest ->
      acc.kind <- "control";
      acc.action <- "enabled=" ^ n;
      go rest
    | "-f" :: n :: rest ->
      acc.kind <- "control";
      acc.action <- "failure=" ^ n;
      go rest
    | flag :: _ ->
      Error (Printf.sprintf "audit: line %d: unrecognized token %S" num flag)
  in
  go (Lex.tokens text)

let parse ~filename:_ input =
  let lines = Lex.lines input in
  let rec go acc = function
    | [] -> (
      match Configtree.Table.make ~name:"audit" ~columns (List.rev acc) with
      | Ok t -> Ok (Lens.Table t)
      | Error _ as e -> e)
    | { Lex.num; text } :: rest -> (
      match parse_line num text with
      | Ok row -> go (row :: acc) rest
      | Error _ as e -> e)
  in
  go [] lines

let render_row row =
  match row with
  | [ kind; path; perms; key; fields; syscalls; action ] ->
    let parts =
      match kind with
      | "watch" ->
        [ "-w"; path ]
        @ (if perms = "" then [] else [ "-p"; perms ])
        @ if key = "" then [] else [ "-k"; key ]
      | "syscall" ->
        [ "-a"; action ]
        @ List.concat_map (fun f -> [ "-F"; f ]) (String.split_on_char ',' fields |> List.filter (( <> ) ""))
        @ List.concat_map (fun s -> [ "-S"; s ]) (String.split_on_char ',' syscalls |> List.filter (( <> ) ""))
        @ if key = "" then [] else [ "-k"; key ]
      | _ -> (
        match String.index_opt action '=' with
        | Some i ->
          let name = String.sub action 0 i in
          let v = String.sub action (i + 1) (String.length action - i - 1) in
          let flag =
            match name with "backlog" -> "-b" | "enabled" -> "-e" | "failure" -> "-f" | _ -> "-D"
          in
          if flag = "-D" then [ "-D" ] else [ flag; v ]
        | None -> [ "-D" ])
    in
    String.concat " " parts
  | _ -> ""

let render = function
  | Lens.Table t ->
    Some (String.concat "\n" (List.map render_row t.Configtree.Table.rows) ^ "\n")
  | Lens.Tree _ -> None

let lens =
  Lens.make ~name:"audit" ~description:"auditd rules (auditctl syntax)"
    ~file_patterns:[ "audit.rules"; "audit.d/*.rules"; "rules.d/*.rules" ]
    ~render parse
