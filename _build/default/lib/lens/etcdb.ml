let make_colon_lens ~name ~description ~file_patterns ~columns =
  let parse ~filename:_ input =
    let lines = Lex.lines input in
    let rows = List.map (fun { Lex.text; _ } -> Lex.fields ':' text) lines in
    Result.map
      (fun table -> Lens.Table table)
      (Configtree.Table.make ~name ~columns rows)
  in
  let render = function
    | Lens.Table t ->
      let row r = String.concat ":" r in
      Some (String.concat "\n" (List.map row t.Configtree.Table.rows) ^ "\n")
    | Lens.Tree _ -> None
  in
  Lens.make ~name ~description ~file_patterns ~render parse

let passwd =
  make_colon_lens ~name:"passwd" ~description:"/etc/passwd user database"
    ~file_patterns:[ "passwd" ]
    ~columns:[ "name"; "password"; "uid"; "gid"; "gecos"; "home"; "shell" ]

let group =
  make_colon_lens ~name:"group" ~description:"/etc/group database"
    ~file_patterns:[ "group" ]
    ~columns:[ "name"; "password"; "gid"; "members" ]

let shadow =
  make_colon_lens ~name:"shadow" ~description:"/etc/shadow password aging database"
    ~file_patterns:[ "shadow" ]
    ~columns:[ "name"; "password"; "lastchanged"; "min"; "max"; "warn"; "inactive"; "expire"; "reserved" ]
