type token =
  | Word of string
  | Lbrace
  | Rbrace
  | Semi

let tokenize input =
  let n = String.length input in
  let out = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Word (Buffer.contents buf) :: !out;
      Buffer.clear buf
    end
  in
  let rec go i =
    if i >= n then flush ()
    else
      match input.[i] with
      | '#' ->
        flush ();
        let rec skip j = if j < n && input.[j] <> '\n' then skip (j + 1) else j in
        go (skip i)
      | ' ' | '\t' | '\n' | '\r' ->
        flush ();
        go (i + 1)
      | '{' ->
        flush ();
        out := Lbrace :: !out;
        go (i + 1)
      | '}' ->
        flush ();
        out := Rbrace :: !out;
        go (i + 1)
      | ';' ->
        flush ();
        out := Semi :: !out;
        go (i + 1)
      | ('"' | '\'') as q ->
        let rec quoted j =
          if j >= n then j
          else if input.[j] = q then j + 1
          else begin
            Buffer.add_char buf input.[j];
            quoted (j + 1)
          end
        in
        go (quoted (i + 1))
      | c ->
        Buffer.add_char buf c;
        go (i + 1)
  in
  go 0;
  List.rev !out

let parse_tree input =
  let tokens = tokenize input in
  (* [parse_items] returns the forest plus the unconsumed tokens after a
     closing brace (or the end of input at top level). *)
  let rec parse_items acc depth = function
    | [] -> if depth = 0 then Ok (List.rev acc, []) else Error "nginx: unexpected end of input (missing '}')"
    | Rbrace :: rest ->
      if depth > 0 then Ok (List.rev acc, rest) else Error "nginx: unexpected '}'"
    | Semi :: rest -> parse_items acc depth rest
    | Lbrace :: _ -> Error "nginx: '{' without a block name"
    | Word w :: rest -> (
      let rec gather args = function
        | Word a :: more -> gather (a :: args) more
        | remainder -> (List.rev args, remainder)
      in
      let args, remainder = gather [] rest in
      match remainder with
      | Semi :: more ->
        (* Augeas-style specialization: headers are addressed by name
           ("add_header X-Frame-Options" = "SAMEORIGIN"), so rules can
           assert on one header among many add_header directives. *)
        let leaf =
          match (w, args) with
          | "add_header", header :: rest ->
            Configtree.Tree.leaf ("add_header " ^ header) (String.concat " " rest)
          | _ -> Configtree.Tree.leaf w (String.concat " " args)
        in
        parse_items (leaf :: acc) depth more
      | Lbrace :: more -> (
        match parse_items [] (depth + 1) more with
        | Error _ as e -> e
        | Ok (children, remainder) ->
          let value = match args with [] -> None | _ -> Some (String.concat " " args) in
          let node = Configtree.Tree.node ?value ~children w in
          parse_items (node :: acc) depth remainder)
      | [] | Rbrace :: _ -> Error (Printf.sprintf "nginx: directive %S not terminated by ';'" w)
      | Word _ :: _ -> assert false)
  in
  match parse_items [] 0 tokens with
  | Ok (forest, _) -> Ok forest
  | Error _ as e -> e

let render_tree forest =
  let buf = Buffer.create 256 in
  let rec go indent (n : Configtree.Tree.t) =
    let pad = String.make indent ' ' in
    if n.children = [] && (n.value <> None || n.label <> "") then begin
      match n.value with
      | Some "" | None -> Buffer.add_string buf (Printf.sprintf "%s%s;\n" pad n.label)
      | Some v -> Buffer.add_string buf (Printf.sprintf "%s%s %s;\n" pad n.label v)
    end
    else begin
      let head =
        match n.value with None | Some "" -> n.label | Some v -> n.label ^ " " ^ v
      in
      Buffer.add_string buf (Printf.sprintf "%s%s {\n" pad head);
      List.iter (go (indent + 2)) n.children;
      Buffer.add_string buf (pad ^ "}\n")
    end
  in
  List.iter (go 0) forest;
  Buffer.contents buf

let lens =
  Lens.make ~name:"nginx" ~description:"nginx directives and nested blocks"
    ~file_patterns:[ "nginx.conf"; "sites-enabled/*"; "sites-available/*"; "conf.d/*.conf" ]
    ~render:(function Lens.Tree forest -> Some (render_tree forest) | Lens.Table _ -> None)
    (fun ~filename:_ input -> Result.map (fun f -> Lens.Tree f) (parse_tree input))
