(** INI-style lens: [\[section\]] headers with [key = value] (or
    [key: value]) entries, used for MySQL [my.cnf], PHP, and similar.

    Normal form: one section node per header with one leaf per key;
    keys appearing before any header become root leaves. Bare keys with
    no separator (e.g. [skip-external-locking]) become leaves with value
    [""]. Comments: ['#'] and [';']. *)

val lens : Lens.t

(** Parse directly (used by other lenses building on INI). *)
val parse_tree : string -> (Configtree.Tree.t list, string) result
