let strip_quotes v =
  let n = String.length v in
  if n >= 2 && v.[0] = '\'' && v.[n - 1] = '\'' then
    (* Postgres escapes a quote by doubling it. *)
    let inner = String.sub v 1 (n - 2) in
    String.concat "'" (String.split_on_char '\'' inner |> List.filter (( <> ) ""))
    |> fun s -> if inner = "" then "" else s
  else v

let parse_tree input =
  let lines = Lex.lines input in
  let entry { Lex.text; _ } =
    match Lex.split_kv ~seps:[ '=' ] text with
    | Some (k, v) -> Configtree.Tree.leaf k (strip_quotes v)
    | None -> (
      (* "key value" spelling without '='. *)
      match String.index_opt text ' ' with
      | Some i ->
        Configtree.Tree.leaf (String.sub text 0 i)
          (strip_quotes (String.trim (String.sub text (i + 1) (String.length text - i - 1))))
      | None -> Configtree.Tree.leaf text "")
  in
  Ok (List.map entry lines)

let needs_quotes v =
  v = "" || String.exists (fun c -> c = ' ' || c = ',' || c = '#') v

let render_tree forest =
  forest
  |> List.map (fun (n : Configtree.Tree.t) ->
         let v = Option.value n.value ~default:"" in
         let v = if needs_quotes v then "'" ^ v ^ "'" else v in
         Printf.sprintf "%s = %s" n.label v)
  |> String.concat "\n"
  |> fun s -> s ^ "\n"

let lens =
  Lens.make ~name:"postgres" ~description:"postgresql.conf key = value pairs"
    ~file_patterns:[ "postgresql.conf"; "postgresql.auto.conf" ]
    ~render:(function Lens.Tree f -> Some (render_tree f) | Lens.Table _ -> None)
    (fun ~filename:_ input -> Result.map (fun f -> Lens.Tree f) (parse_tree input))
