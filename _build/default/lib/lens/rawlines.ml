let parse ~filename:_ input =
  let rows = List.map (fun { Lex.text; _ } -> [ text ]) (Lex.lines input) in
  Result.map
    (fun t -> Lens.Table t)
    (Configtree.Table.make ~name:"lines" ~columns:[ "line" ] rows)

let render = function
  | Lens.Table t ->
    Some (String.concat "\n" (List.map (String.concat "") t.Configtree.Table.rows) ^ "\n")
  | Lens.Tree _ -> None

let lens = Lens.make ~name:"lines" ~description:"raw non-comment lines" ~file_patterns:[] ~render parse
