(** /etc/hosts lens. Columns: [ip, hostnames] (hostnames space-joined). *)

val lens : Lens.t
