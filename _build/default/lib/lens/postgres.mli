(** postgresql.conf lens: [key = value] with optional single-quoted
    values and trailing ['#'] comments; quotes are stripped in the
    normal form ([listen_addresses = 'localhost'] becomes the leaf
    [listen_addresses = "localhost"]). The [=] is optional in postgres
    syntax ([checkpoint_timeout 5min]); both spellings normalize
    identically. *)

val lens : Lens.t
