(** auditd rules lens (/etc/audit/audit.rules).

    Lines are auditctl invocations. Normal form is a table with columns
    [kind, path, perms, key, fields, syscalls, action]:
    - watch rules [-w /etc/passwd -p wa -k identity] fill
      [kind="watch", path, perms, key];
    - syscall rules [-a always,exit -F arch=b64 -S settimeofday -k time]
      fill [kind="syscall", action="always,exit", fields, syscalls, key];
    - control lines ([-D], [-b 8192], [-e 2], [-f 1]) fill
      [kind="control", action].

    The CIS Ubuntu audit section asserts on the presence of specific
    watches and syscall rules; schema-rule constraints address them by
    [path], [key] or [syscalls]. *)

val lens : Lens.t
