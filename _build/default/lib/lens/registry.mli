(** Lens registry: name → lens resolution for manifests, and
    file-path → lens inference when a manifest omits the lens name. *)

val all : Lens.t list

val find : string -> Lens.t option

(** First lens whose [file_patterns] match the path, in registration
    order (more specific lenses are registered before generic ones, so
    [my.cnf] resolves to [ini] before the JSON lens ever sees it). *)
val for_path : string -> Lens.t option

(** Parse [content] of [path] with the named lens, or with the inferred
    one when [lens_name] is [None]. *)
val parse :
  ?lens_name:string -> path:string -> string -> (Lens.normalized, string) result
