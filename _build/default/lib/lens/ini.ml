let is_header text =
  String.length text >= 2 && text.[0] = '[' && text.[String.length text - 1] = ']'

let header_name text = String.trim (String.sub text 1 (String.length text - 2))

let parse_tree input =
  let lines = Lex.lines ~comment_chars:[ '#'; ';' ] input in
  let entry text =
    match Lex.split_kv ~seps:[ '='; ':' ] text with
    | Some (k, v) -> Configtree.Tree.leaf k v
    | None -> Configtree.Tree.leaf text ""
  in
  let rec go acc current = function
    | [] -> flush acc current
    | { Lex.text; _ } :: rest ->
      if is_header text then go (flush acc current) (Some (header_name text, [])) rest
      else (
        match current with
        | None -> go (entry text :: acc) None rest
        | Some (name, entries) -> go acc (Some (name, entry text :: entries)) rest)
  and flush acc = function
    | None -> acc
    | Some (name, entries) -> Configtree.Tree.section name (List.rev entries) :: acc
  in
  Ok (List.rev (go [] None lines))

let render_tree forest =
  let buf = Buffer.create 256 in
  let leaf (n : Configtree.Tree.t) =
    match n.value with
    | Some "" | None -> Buffer.add_string buf (n.label ^ "\n")
    | Some v -> Buffer.add_string buf (Printf.sprintf "%s = %s\n" n.label v)
  in
  List.iter
    (fun (n : Configtree.Tree.t) ->
      if n.children = [] then leaf n
      else begin
        Buffer.add_string buf (Printf.sprintf "[%s]\n" n.label);
        List.iter leaf n.children
      end)
    forest;
  Buffer.contents buf

let lens =
  Lens.make ~name:"ini" ~description:"INI sections with key=value entries"
    ~file_patterns:[ "*.cnf"; "*.ini"; "my.cnf" ]
    ~render:(function Lens.Tree forest -> Some (render_tree forest) | Lens.Table _ -> None)
    (fun ~filename:_ input -> Result.map (fun f -> Lens.Tree f) (parse_tree input))
