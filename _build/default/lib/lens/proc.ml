let columns = [ "pid"; "user"; "command" ]

let parse ~filename:_ input =
  let lines = Lex.lines input in
  let rows =
    List.filter_map
      (fun { Lex.text; _ } ->
        match Lex.tokens text with
        | pid :: user :: cmd when cmd <> [] -> Some [ pid; user; String.concat " " cmd ]
        | _ -> None)
      lines
  in
  Result.map (fun t -> Lens.Table t) (Configtree.Table.make ~name:"proc" ~columns rows)

let lens =
  Lens.make ~name:"proc" ~description:"process table (pid user command)"
    ~file_patterns:[] parse
