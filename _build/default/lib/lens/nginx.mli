(** nginx.conf lens: directives terminated by [';'] and brace-delimited
    blocks, nested arbitrarily.

    Normal form: a directive [listen 443 ssl;] is a leaf
    [listen = "443 ssl"]; a block [server { ... }] is a section node
    labelled [server] (block arguments, as in [location /api], become
    the node's value). The paper's Listing 2 addresses these as
    [config_path: ["server", "http/server"]]. *)

val lens : Lens.t

val parse_tree : string -> (Configtree.Tree.t list, string) result
