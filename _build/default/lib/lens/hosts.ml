let columns = [ "ip"; "hostnames" ]

let parse ~filename:_ input =
  let lines = Lex.lines input in
  let rows =
    List.map
      (fun { Lex.text; _ } ->
        match Lex.tokens text with
        | ip :: names -> [ ip; String.concat " " names ]
        | [] -> [])
      lines
    |> List.filter (( <> ) [])
  in
  Result.map (fun t -> Lens.Table t) (Configtree.Table.make ~name:"hosts" ~columns rows)

let render = function
  | Lens.Table t ->
    Some (String.concat "\n" (List.map (String.concat " ") t.Configtree.Table.rows) ^ "\n")
  | Lens.Tree _ -> None

let lens =
  Lens.make ~name:"hosts" ~description:"/etc/hosts name table" ~file_patterns:[ "hosts" ]
    ~render parse
