(** sysctl.conf lens: [key = value] lines where keys are dotted kernel
    parameter names. Normal form: flat leaves labelled with the full
    dotted key (e.g. [net.ipv4.ip_forward = 0]), which is how CVL rules
    and composite references address them. Comments: ['#'] and [';']. *)

val lens : Lens.t

(** Render a kernel parameter table in sysctl.conf syntax (used to
    expose [sysctl -a] plugin output to the rule engine). *)
val render_params : (string * string) list -> string
