let parse_tree input =
  let lines = Lex.lines ~comment_chars:[ '#'; '!' ] ~continuation:true input in
  let entry { Lex.text; _ } =
    match Lex.split_kv ~seps:[ '='; ':' ] text with
    | Some (k, v) -> Configtree.Tree.leaf k v
    | None -> Configtree.Tree.leaf text ""
  in
  Ok (List.map entry lines)

let render_tree forest =
  forest
  |> List.map (fun (n : Configtree.Tree.t) ->
         Printf.sprintf "%s=%s" n.label (Option.value n.value ~default:""))
  |> String.concat "\n"
  |> fun s -> s ^ "\n"

let lens =
  Lens.make ~name:"properties" ~description:"Java properties key=value pairs"
    ~file_patterns:[ "*.properties"; "*-env.sh" ]
    ~render:(function Lens.Tree f -> Some (render_tree f) | Lens.Table _ -> None)
    (fun ~filename:_ input -> Result.map (fun f -> Lens.Tree f) (parse_tree input))
