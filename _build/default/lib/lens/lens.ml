type normalized =
  | Tree of Configtree.Tree.t list
  | Table of Configtree.Table.t

type t = {
  name : string;
  description : string;
  file_patterns : string list;
  parse : filename:string -> string -> (normalized, string) result;
  render : (normalized -> string option) option;
}

let make ~name ~description ~file_patterns ?render parse =
  { name; description; file_patterns; parse; render }

let glob_re pattern =
  let buf = Buffer.create (String.length pattern + 8) in
  String.iter
    (fun c ->
      match c with
      | '*' -> Buffer.add_string buf "[^/]*"
      | '.' | '\\' | '+' | '^' | '$' | '(' | ')' | '[' | ']' | '{' | '}' | '|' | '?' ->
        Buffer.add_char buf '\\';
        Buffer.add_char buf c
      | c -> Buffer.add_char buf c)
    pattern;
  Re.compile (Re.whole_string (Re.Posix.re (Buffer.contents buf)))

let basename path =
  match String.rindex_opt path '/' with
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)
  | None -> path

let suffix_matches re path =
  (* Match the pattern against every path suffix that starts at a
     segment boundary, so "sites-enabled/*" matches
     "/etc/nginx/sites-enabled/default". *)
  let rec go start =
    if start > String.length path then false
    else
      let candidate = String.sub path start (String.length path - start) in
      if Re.execp re candidate then true
      else
        match String.index_from_opt path start '/' with
        | Some i -> go (i + 1)
        | None -> false
  in
  go 0

let matches lens path =
  List.exists
    (fun pattern ->
      let re = glob_re pattern in
      if String.contains pattern '/' then suffix_matches re path
      else Re.execp re (basename path))
    lens.file_patterns

let tree_exn = function
  | Tree forest -> forest
  | Table t -> invalid_arg (Printf.sprintf "expected tree, got table %s" t.Configtree.Table.name)

let table_exn = function
  | Table t -> t
  | Tree _ -> invalid_arg "expected table, got tree"
