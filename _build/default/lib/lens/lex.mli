(** Shared lexical helpers for lenses. *)

type line = {
  num : int;
  text : string;  (** comment stripped, trimmed; never empty *)
}

(** [lines ?comment_chars ?continuation input] splits into logical
    lines: strips comments introduced by any of [comment_chars] (default
    [['#']]) when outside quotes, joins lines ending in a backslash when
    [continuation] is true (default false), drops blanks. *)
val lines : ?comment_chars:char list -> ?continuation:bool -> string -> line list

(** Split on the first occurrence of any separator character (outside
    quotes); both sides trimmed. *)
val split_kv : seps:char list -> string -> (string * string) option

(** Whitespace tokenization honouring single and double quotes; quotes
    are stripped from the tokens. *)
val tokens : string -> string list

(** Split a line on a single character, keeping empty fields —
    /etc/passwd style. *)
val fields : char -> string -> string list

val starts_with : prefix:string -> string -> bool
val trim : string -> string
