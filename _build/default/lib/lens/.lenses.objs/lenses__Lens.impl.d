lib/lens/lens.ml: Buffer Configtree List Printf Re String
