lib/lens/yaml_lens.ml: Configtree Lens List Option Printf Yamlite
