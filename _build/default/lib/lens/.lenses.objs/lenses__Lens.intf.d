lib/lens/lens.mli: Configtree
