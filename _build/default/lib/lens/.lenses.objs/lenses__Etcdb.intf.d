lib/lens/etcdb.mli: Lens
