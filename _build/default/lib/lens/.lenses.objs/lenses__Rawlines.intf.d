lib/lens/rawlines.mli: Lens
