lib/lens/json_lens.ml: Configtree Float Jsonlite Lens List Option Printf String
