lib/lens/registry.ml: Apache Audit Etcdb Fstab Hadoop_xml Hosts Ini Json_lens Lens List Modprobe Nginx Postgres Printf Proc Properties Rawlines Sshd String Sysctl Yaml_lens
