lib/lens/registry.mli: Lens
