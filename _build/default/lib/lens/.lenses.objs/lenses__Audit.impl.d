lib/lens/audit.ml: Configtree Lens Lex List Printf String
