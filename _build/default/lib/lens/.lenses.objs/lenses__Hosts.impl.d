lib/lens/hosts.ml: Configtree Lens Lex List Result String
