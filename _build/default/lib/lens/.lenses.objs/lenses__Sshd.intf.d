lib/lens/sshd.mli: Lens
