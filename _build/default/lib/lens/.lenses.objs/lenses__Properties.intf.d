lib/lens/properties.mli: Lens
