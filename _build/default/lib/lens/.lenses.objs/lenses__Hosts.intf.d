lib/lens/hosts.mli: Lens
