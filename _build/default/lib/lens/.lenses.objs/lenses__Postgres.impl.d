lib/lens/postgres.ml: Configtree Lens Lex List Option Printf Result String
