lib/lens/sshd.ml: Buffer Configtree Lens Lex List Option Printf Result String
