lib/lens/apache.ml: Buffer Configtree Lens Lex List Printf Result String
