lib/lens/etcdb.ml: Configtree Lens Lex List Result String
