lib/lens/fstab.ml: Configtree Lens Lex List Result String
