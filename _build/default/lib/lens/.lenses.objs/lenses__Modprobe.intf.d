lib/lens/modprobe.mli: Lens
