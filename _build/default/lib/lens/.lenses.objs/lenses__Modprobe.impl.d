lib/lens/modprobe.ml: Configtree Lens Lex List Printf String
