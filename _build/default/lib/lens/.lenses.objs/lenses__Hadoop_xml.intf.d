lib/lens/hadoop_xml.mli: Lens
