lib/lens/audit.mli: Lens
