lib/lens/ini.ml: Buffer Configtree Lens Lex List Printf Result String
