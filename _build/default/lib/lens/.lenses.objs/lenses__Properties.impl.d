lib/lens/properties.ml: Configtree Lens Lex List Option Printf Result String
