lib/lens/postgres.mli: Lens
