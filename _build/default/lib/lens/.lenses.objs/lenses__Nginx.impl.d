lib/lens/nginx.ml: Buffer Configtree Lens List Printf Result String
