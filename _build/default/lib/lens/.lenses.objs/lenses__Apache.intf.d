lib/lens/apache.mli: Lens
