lib/lens/proc.mli: Lens
