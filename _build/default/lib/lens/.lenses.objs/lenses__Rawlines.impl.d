lib/lens/rawlines.ml: Configtree Lens Lex List Result String
