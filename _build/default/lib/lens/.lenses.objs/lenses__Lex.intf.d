lib/lens/lex.mli:
