lib/lens/proc.ml: Configtree Lens Lex List Result String
