lib/lens/json_lens.mli: Configtree Jsonlite Lens
