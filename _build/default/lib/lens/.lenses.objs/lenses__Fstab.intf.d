lib/lens/fstab.mli: Lens
