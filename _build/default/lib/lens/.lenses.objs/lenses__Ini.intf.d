lib/lens/ini.mli: Configtree Lens
