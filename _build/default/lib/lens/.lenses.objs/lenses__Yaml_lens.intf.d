lib/lens/yaml_lens.mli: Configtree Lens Yamlite
