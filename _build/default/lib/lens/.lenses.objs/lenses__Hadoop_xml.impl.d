lib/lens/hadoop_xml.ml: Configtree Lens List Option Printf Result Xmllite
