lib/lens/nginx.mli: Configtree Lens
