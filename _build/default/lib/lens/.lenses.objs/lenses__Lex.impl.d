lib/lens/lex.ml: Buffer List String
