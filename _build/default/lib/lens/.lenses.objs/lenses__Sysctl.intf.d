lib/lens/sysctl.mli: Lens
