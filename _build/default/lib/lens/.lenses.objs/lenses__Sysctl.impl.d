lib/lens/sysctl.ml: Configtree Lens Lex List Option Printf Result String
