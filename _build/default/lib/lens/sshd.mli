(** sshd_config lens: [Keyword argument ...] lines; keywords are
    case-insensitive in OpenSSH but preserved verbatim here (CVL rules
    quote the canonical spelling). Repeated keywords yield repeated
    leaves. [Match] blocks become sections whose value is the match
    condition and whose children are the conditional keywords. *)

val lens : Lens.t
