(** modprobe.d lens. Columns: [directive, module, args]. Directives:
    [install], [blacklist], [options], [alias], [remove]. CIS rules
    assert e.g. that [install cramfs /bin/true] is present (filesystem
    kernel modules disabled). *)

val lens : Lens.t
