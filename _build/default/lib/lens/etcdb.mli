(** Colon-separated /etc databases — the paper's canonical "schema
    pattern" examples. Each parses to a {!Configtree.Table.t} with named
    columns so CVL schema rules can query them positionally. *)

(** /etc/passwd: [name, password, uid, gid, gecos, home, shell]. *)
val passwd : Lens.t

(** /etc/group: [name, password, gid, members]. *)
val group : Lens.t

(** /etc/shadow: [name, password, lastchanged, min, max, warn, inactive,
    expire, reserved]. *)
val shadow : Lens.t
