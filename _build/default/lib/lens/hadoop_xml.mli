(** Hadoop [*-site.xml] lens:
    [<configuration><property><name>k</name><value>v</value></property>…].
    Normal form: one leaf per property, labelled with the property name
    (dotted Hadoop keys such as [dfs.permissions.enabled]). *)

val lens : Lens.t
