type line = {
  num : int;
  text : string;
}

let trim = String.trim

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let strip_comment comment_chars s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec go i quote =
    if i >= n then Buffer.contents buf
    else
      let c = s.[i] in
      match quote with
      | Some q ->
        Buffer.add_char buf c;
        go (i + 1) (if c = q then None else quote)
      | None ->
        if List.mem c comment_chars then Buffer.contents buf
        else begin
          Buffer.add_char buf c;
          go (i + 1) (if c = '"' || c = '\'' then Some c else None)
        end
  in
  go 0 None

let lines ?(comment_chars = [ '#' ]) ?(continuation = false) input =
  let raw = String.split_on_char '\n' input in
  (* Join continuation lines first so comments strip per logical line. *)
  let joined =
    if not continuation then List.mapi (fun i s -> (i + 1, s)) raw
    else begin
      let acc = ref [] in
      let pending = ref None in
      List.iteri
        (fun i s ->
          let num = i + 1 in
          let s = match !pending with None -> s | Some (_, p) -> p ^ s in
          let start_num = match !pending with None -> num | Some (n, _) -> n in
          let trimmed_end =
            let t = trim s in
            String.length t > 0 && t.[String.length t - 1] = '\\'
          in
          if trimmed_end then begin
            let t = trim s in
            pending := Some (start_num, String.sub t 0 (String.length t - 1) ^ " ")
          end
          else begin
            acc := (start_num, s) :: !acc;
            pending := None
          end)
        raw;
      (match !pending with Some (n, p) -> acc := (n, p) :: !acc | None -> ());
      List.rev !acc
    end
  in
  List.filter_map
    (fun (num, s) ->
      let text = trim (strip_comment comment_chars s) in
      if text = "" then None else Some { num; text })
    joined

let split_kv ~seps s =
  let n = String.length s in
  let rec find i quote =
    if i >= n then None
    else
      let c = s.[i] in
      match quote with
      | Some q -> find (i + 1) (if c = q then None else quote)
      | None ->
        if List.mem c seps then Some i
        else find (i + 1) (if c = '"' || c = '\'' then Some c else None)
  in
  match find 0 None with
  | None -> None
  | Some i ->
    let k = trim (String.sub s 0 i) in
    let v = trim (String.sub s (i + 1) (n - i - 1)) in
    if k = "" then None else Some (k, v)

let tokens s =
  let n = String.length s in
  let out = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  let rec go i quote =
    if i >= n then flush ()
    else
      let c = s.[i] in
      match quote with
      | Some q -> if c = q then go (i + 1) None else (Buffer.add_char buf c; go (i + 1) quote)
      | None -> (
        match c with
        | ' ' | '\t' ->
          flush ();
          go (i + 1) None
        | '"' | '\'' -> go (i + 1) (Some c)
        | c ->
          Buffer.add_char buf c;
          go (i + 1) None)
  in
  go 0 None;
  List.rev !out

let fields sep s = String.split_on_char sep s |> List.map trim
