let scalar_text v = Option.value (Yamlite.Value.scalar_to_string v) ~default:""

let rec nodes_of_member (key, v) =
  match v with
  | Yamlite.Value.Map kvs -> [ Configtree.Tree.section key (List.concat_map nodes_of_member kvs) ]
  | Yamlite.Value.List items ->
    List.map
      (fun item ->
        match item with
        | Yamlite.Value.Map kvs -> Configtree.Tree.section key (List.concat_map nodes_of_member kvs)
        | Yamlite.Value.List _ ->
          Configtree.Tree.section key (List.concat_map nodes_of_member [ (key, item) ])
        | scalar -> Configtree.Tree.leaf key (scalar_text scalar))
      items
  | scalar -> [ Configtree.Tree.leaf key (scalar_text scalar) ]

let tree_of_yaml = function
  | Yamlite.Value.Map kvs -> List.concat_map nodes_of_member kvs
  | Yamlite.Value.List items -> List.concat_map (fun v -> nodes_of_member ("item", v)) items
  | scalar -> [ Configtree.Tree.leaf "value" (scalar_text scalar) ]

let parse ~filename:_ input =
  match Yamlite.Parse.string input with
  | Ok v -> Ok (Lens.Tree (tree_of_yaml v))
  | Error e -> Error (Printf.sprintf "yaml: %s" (Yamlite.Parse.error_to_string e))

(* Inverse for remediation: scalar types re-inferred from literal text,
   repeated labels regroup into a sequence. *)
let yaml_of_text s =
  match s with
  | "" -> Yamlite.Value.Null
  | "true" -> Yamlite.Value.Bool true
  | "false" -> Yamlite.Value.Bool false
  | _ -> (
    match int_of_string_opt s with
    | Some i -> Yamlite.Value.Int i
    | None -> Yamlite.Value.Str s)

let rec yaml_of_forest (forest : Configtree.Tree.t list) =
  let value_of (n : Configtree.Tree.t) =
    if n.children = [] then yaml_of_text (Option.value n.value ~default:"")
    else yaml_of_forest n.children
  in
  let rec group = function
    | [] -> []
    | (n : Configtree.Tree.t) :: rest ->
      let same, others = List.partition (fun (m : Configtree.Tree.t) -> m.label = n.label) rest in
      (match same with
      | [] -> (n.label, value_of n) :: group others
      | _ -> (n.label, Yamlite.Value.List (List.map value_of (n :: same))) :: group others)
  in
  Yamlite.Value.Map (group forest)

let render_tree forest = Yamlite.Print.to_string (yaml_of_forest forest)

let lens =
  Lens.make ~name:"yaml" ~description:"YAML configuration documents (compose, kubernetes)"
    ~file_patterns:[ "docker-compose.yml"; "docker-compose.yaml"; "*.yaml"; "*.yml" ]
    ~render:(function Lens.Tree f -> Some (render_tree f) | Lens.Table _ -> None)
    parse
