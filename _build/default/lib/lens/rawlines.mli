(** Fallback lens: any text file as a one-column table of its
    non-comment lines (column ["line"]). Lets schema rules express
    line-pattern assertions (the common denominator with grep-style
    engines) without a dedicated lens. *)

val lens : Lens.t
