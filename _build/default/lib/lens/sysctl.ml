let parse_tree input =
  let lines = Lex.lines ~comment_chars:[ '#'; ';' ] input in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | { Lex.num; text } :: rest -> (
      match Lex.split_kv ~seps:[ '=' ] text with
      | Some (k, v) -> go (Configtree.Tree.leaf k v :: acc) rest
      | None -> Error (Printf.sprintf "sysctl: line %d: expected 'key = value', got %S" num text))
  in
  go [] lines

let render_params params =
  params
  |> List.map (fun (k, v) -> Printf.sprintf "%s = %s" k v)
  |> String.concat "\n"
  |> fun s -> s ^ "\n"

let render_tree forest =
  render_params
    (List.filter_map
       (fun (n : Configtree.Tree.t) -> Option.map (fun v -> (n.label, v)) n.value)
       forest)

let lens =
  Lens.make ~name:"sysctl" ~description:"Dotted kernel parameters, key = value"
    ~file_patterns:[ "sysctl.conf"; "sysctl.d/*" ]
    ~render:(function Lens.Tree forest -> Some (render_tree forest) | Lens.Table _ -> None)
    (fun ~filename:_ input -> Result.map (fun f -> Lens.Tree f) (parse_tree input))
