let scalar_text = function
  | Jsonlite.Null -> ""
  | Jsonlite.Bool true -> "true"
  | Jsonlite.Bool false -> "false"
  | Jsonlite.Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%g" f
  | Jsonlite.Str s -> s
  | Jsonlite.Arr _ | Jsonlite.Obj _ -> assert false

let rec node_of_member (key, v) =
  match v with
  | Jsonlite.Obj kvs -> [ Configtree.Tree.section key (List.concat_map node_of_member kvs) ]
  | Jsonlite.Arr items ->
    List.map
      (fun item ->
        match item with
        | Jsonlite.Obj kvs -> Configtree.Tree.section key (List.concat_map node_of_member kvs)
        | Jsonlite.Arr _ -> Configtree.Tree.section key (List.concat_map node_of_member [ (key, item) ])
        | scalar -> Configtree.Tree.leaf key (scalar_text scalar))
      items
  | scalar -> [ Configtree.Tree.leaf key (scalar_text scalar) ]

let tree_of_json = function
  | Jsonlite.Obj kvs -> List.concat_map node_of_member kvs
  | Jsonlite.Arr items -> List.concat_map (fun v -> node_of_member ("item", v)) items
  | scalar -> [ Configtree.Tree.leaf "value" (scalar_text scalar) ]

let parse ~filename:_ input =
  match Jsonlite.parse input with
  | Ok v -> Ok (Lens.Tree (tree_of_json v))
  | Error e -> Error (Printf.sprintf "json: %s" (Jsonlite.error_to_string e))

(* Inverse direction, for remediation: scalar types are re-inferred from
   the literal text ("false" -> boolean), repeated labels regroup into an
   array. Key order is preserved. *)
let scalar_of_text s =
  match s with
  | "" -> Jsonlite.Null
  | "true" -> Jsonlite.Bool true
  | "false" -> Jsonlite.Bool false
  | _ -> (
    match float_of_string_opt s with
    | Some f when not (String.contains s 'x') -> Jsonlite.Num f
    | _ -> Jsonlite.Str s)

let rec json_of_forest (forest : Configtree.Tree.t list) =
  (* Group consecutive same-label siblings: 2+ become an array. *)
  let value_of (n : Configtree.Tree.t) =
    if n.children = [] then scalar_of_text (Option.value n.value ~default:"")
    else json_of_forest n.children
  in
  let rec group = function
    | [] -> []
    | (n : Configtree.Tree.t) :: rest ->
      let same, others = List.partition (fun (m : Configtree.Tree.t) -> m.label = n.label) rest in
      (match same with
      | [] -> (n.label, value_of n) :: group others
      | _ -> (n.label, Jsonlite.Arr (List.map value_of (n :: same))) :: group others)
  in
  Jsonlite.Obj (group forest)

let render_tree forest = Jsonlite.pretty (json_of_forest forest)

let lens =
  Lens.make ~name:"json" ~description:"JSON configuration documents"
    ~file_patterns:[ "*.json" ]
    ~render:(function Lens.Tree f -> Some (render_tree f) | Lens.Table _ -> None)
    parse
