(** Incremental re-validation over frame diffs.

    Production ConfigValidator re-scans tens of thousands of containers
    daily, but between scans most entities have not changed. Given the
    diff between the previous and current snapshot of a frame, only the
    entities whose configuration sources intersect the diff are
    re-evaluated; untouched entities keep their previous results.
    Composite rules are always re-evaluated (cheaply) because their
    atoms may span the re-validated entities. *)

(** Entities whose inputs intersect the diff: a changed file lies under
    one of the entity's search paths or matches a rule file-context, a
    changed kernel parameter affects entities with sysctl script rules,
    a changed runtime document affects entities whose script rules use
    the corresponding plugin. Entities with path rules outside the
    search paths are handled via the rule's own path. *)
val affected_entities :
  rules:(Manifest.entry * Rule.t list) list -> Frames.Diff.t -> string list

(** [revalidate ~rules ~previous ~diff frame] recomputes results for the
    affected entities of [frame] and splices them into [previous]
    (results whose [frame_id] matches other frames are preserved
    untouched). Returns the merged results and the list of re-evaluated
    entities.

    An empty affected set short-circuits: [previous] is returned as-is
    and no context is rebuilt. Otherwise only affected entities are
    re-evaluated ([pool] shards them, default sequential); contexts of
    unaffected entities are reconstructed for composite lookups only,
    which the content-addressed {!Normcache} satisfies without
    re-parsing (observable via {!Normcache.stats}). *)
val revalidate :
  ?pool:Pool.t ->
  rules:(Manifest.entry * Rule.t list) list ->
  previous:Engine.result list ->
  diff:Frames.Diff.t ->
  Frames.Frame.t ->
  Engine.result list * string list
