lib/cvl/incremental.mli: Engine Frames Manifest Pool Rule
