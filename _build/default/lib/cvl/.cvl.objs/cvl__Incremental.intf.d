lib/cvl/incremental.mli: Engine Frames Manifest Rule
