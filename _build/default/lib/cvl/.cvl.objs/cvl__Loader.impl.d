lib/cvl/loader.ml: Expr Filename In_channel Keyword List Matcher Option Printf Result Rule String Yamlite
