lib/cvl/keyword.ml: List Option String
