lib/cvl/keyword.ml: Array Fun Hashtbl Lazy List String
