lib/cvl/resilience.mli: Crawler Frames
