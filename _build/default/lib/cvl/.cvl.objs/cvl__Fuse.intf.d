lib/cvl/fuse.mli: Compile Configtree Engine Expr Manifest Rule
