lib/cvl/manifest.mli: Loader Rule Yamlite
