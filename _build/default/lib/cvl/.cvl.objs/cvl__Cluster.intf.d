lib/cvl/cluster.mli: Configtree Engine Rule
