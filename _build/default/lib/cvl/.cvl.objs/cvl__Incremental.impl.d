lib/cvl/incremental.ml: Engine Frames List Manifest Rule String Validator
