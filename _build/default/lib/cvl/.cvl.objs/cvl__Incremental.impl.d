lib/cvl/incremental.ml: Engine Frames List Manifest Option Pool Rule String Validator
