lib/cvl/incremental.ml: Compile Engine Frames List Manifest Option Pool Rule String Validator
