lib/cvl/normcache.ml: Atomic Digest Hashtbl Lenses Mutex Option
