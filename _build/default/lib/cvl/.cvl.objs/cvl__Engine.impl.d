lib/cvl/engine.ml: Configtree Crawler Format Frames Lenses List Manifest Matcher Normcache Option Printf Resilience Result Rule Stdlib String
