lib/cvl/engine.ml: Configtree Crawler Format Frames Lenses List Manifest Matcher Option Printf Result Rule Stdlib String
