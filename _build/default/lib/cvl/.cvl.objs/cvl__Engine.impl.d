lib/cvl/engine.ml: Configtree Crawler Format Frames Lenses List Manifest Matcher Normcache Option Printf Result Rule Stdlib String
