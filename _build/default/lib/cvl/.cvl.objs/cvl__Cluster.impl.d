lib/cvl/cluster.ml: Array Configtree Engine Frames List Option Printf Resilience Rule String
