lib/cvl/validator.ml: Engine Expr Frames Hashtbl List Manifest Option Pool Printexc Printf Resilience Result Rule
