lib/cvl/validator.ml: Cluster Compile Engine Expr Frames Fun Fuse Hashtbl List Manifest Option Pool Printexc Printf Resilience Result Rule
