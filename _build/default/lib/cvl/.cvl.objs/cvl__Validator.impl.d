lib/cvl/validator.ml: Engine Expr Frames List Manifest Option Printf Result Rule String
