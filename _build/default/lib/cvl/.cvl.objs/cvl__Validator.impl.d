lib/cvl/validator.ml: Engine Expr Frames Hashtbl List Manifest Option Pool Printf Result Rule
