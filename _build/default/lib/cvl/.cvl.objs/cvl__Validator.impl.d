lib/cvl/validator.ml: Compile Engine Expr Frames Fun Fuse Hashtbl List Manifest Option Pool Printexc Printf Resilience Result Rule
