lib/cvl/normcache.mli: Lenses
