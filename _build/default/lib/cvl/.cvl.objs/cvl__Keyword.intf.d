lib/cvl/keyword.mli:
