lib/cvl/matcher.ml: Hashtbl List Printf Re String
