lib/cvl/matcher.ml: Hashtbl List Mutex Printf Re String
