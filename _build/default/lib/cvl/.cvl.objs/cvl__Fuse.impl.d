lib/cvl/fuse.ml: Array Compile Configtree Crawler Engine Hashtbl List Manifest Option Resilience Rule
