lib/cvl/report.mli: Engine Jsonlite
