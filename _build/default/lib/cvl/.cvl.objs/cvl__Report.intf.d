lib/cvl/report.mli: Engine Jsonlite Resilience
