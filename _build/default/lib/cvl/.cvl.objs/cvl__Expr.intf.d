lib/cvl/expr.mli:
