lib/cvl/loader.mli: Rule Yamlite
