lib/cvl/compile.ml: Cluster Configtree Crawler Engine Expr Fun Hashtbl List Manifest Matcher Option Printf Resilience Result Rule
