lib/cvl/remediate.ml: Configtree Crawler Engine Format Frames Lenses List Manifest Matcher Option Printf Report Rule String Validator
