lib/cvl/report.ml: Buffer Engine Jsonlite List Printf Rule String Xmllite
