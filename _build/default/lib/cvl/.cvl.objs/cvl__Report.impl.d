lib/cvl/report.ml: Buffer Engine Jsonlite List Printf Resilience Rule String Xmllite
