lib/cvl/resilience.ml: Atomic Crawler Frames Fun Hashtbl Mutex Option Printexc Printf
