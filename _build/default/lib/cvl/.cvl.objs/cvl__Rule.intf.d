lib/cvl/rule.mli: Matcher
