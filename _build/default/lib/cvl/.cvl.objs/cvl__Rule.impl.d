lib/cvl/rule.ml: List Matcher String
