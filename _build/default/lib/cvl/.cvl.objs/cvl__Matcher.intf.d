lib/cvl/matcher.mli:
