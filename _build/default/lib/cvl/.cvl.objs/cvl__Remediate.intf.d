lib/cvl/remediate.mli: Engine Format Frames Loader Manifest Rule
