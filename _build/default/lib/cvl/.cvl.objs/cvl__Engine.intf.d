lib/cvl/engine.mli: Configtree Crawler Frames Lenses Manifest Resilience Rule Stdlib
