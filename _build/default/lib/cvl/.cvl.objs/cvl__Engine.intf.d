lib/cvl/engine.mli: Frames Lenses Manifest Rule Stdlib
