lib/cvl/engine.mli: Frames Lenses Manifest Resilience Rule Stdlib
