lib/cvl/validator.mli: Compile Engine Expr Frames Loader Manifest Pool Resilience Rule
