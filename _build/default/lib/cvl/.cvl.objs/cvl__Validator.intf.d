lib/cvl/validator.mli: Engine Expr Frames Loader Manifest Pool Resilience Rule
