lib/cvl/validator.mli: Compile Engine Expr Frames Fuse Loader Manifest Pool Resilience Rule
