lib/cvl/compile.mli: Cluster Configtree Engine Expr Hashtbl Manifest Rule
