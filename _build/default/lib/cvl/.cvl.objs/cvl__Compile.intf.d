lib/cvl/compile.mli: Configtree Engine Expr Hashtbl Manifest Rule
