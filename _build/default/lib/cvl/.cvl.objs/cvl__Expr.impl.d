lib/cvl/expr.ml: Buffer List Printf String
