lib/cvl/manifest.ml: List Loader Option Printf Result Yamlite
