type t = {
  results : Engine.result list;
  load_errors : (string * string) list;
}

let env_of ~results ~ctxs =
  {
    Expr.lookup_rule =
      (fun ~entity ~rule ->
        let relevant =
          List.filter
            (fun (r : Engine.result) ->
              String.equal r.Engine.entity entity && String.equal (Rule.name r.Engine.rule) rule)
            results
        in
        match relevant with
        | [] -> None
        | rs -> Some (List.exists (fun (r : Engine.result) -> r.Engine.verdict = Engine.Matched) rs));
    Expr.lookup_config =
      (fun ~entity ~key ~subpath ->
        match List.assoc_opt entity ctxs with
        | None -> None
        | Some entity_ctxs ->
          List.find_map (fun ctx -> Engine.lookup_config_value ctx ~key ~subpath) entity_ctxs);
  }

let tag_selected tags rule = tags = [] || List.exists (fun t -> Rule.has_tag rule t) tags

let load_rules ~source ~manifest =
  let loaded =
    List.filter_map
      (fun (entry : Manifest.entry) ->
        if not entry.Manifest.enabled then None
        else Some (entry, Manifest.load_rules source entry))
      manifest
  in
  let errors =
    List.filter_map
      (fun ((entry : Manifest.entry), outcome) ->
        match outcome with Error e -> Some (entry.Manifest.entity, e) | Ok _ -> None)
      loaded
  in
  if errors <> [] then Error errors
  else
    Ok
      (List.filter_map
         (fun (entry, outcome) -> Result.to_option outcome |> Option.map (fun r -> (entry, r)))
         loaded)

let is_composite = function
  | Rule.Composite _ -> true
  | Rule.Tree _ | Rule.Schema _ | Rule.Path _ | Rule.Script _ -> false

let eval_composites ~rules ~plain_results ~ctxs ~deployment_id =
  let env = env_of ~results:plain_results ~ctxs in
  List.concat_map
    (fun ((entry : Manifest.entry), entity_rules) ->
      entity_rules
      |> List.filter is_composite
      |> List.map (fun rule ->
             let c = Rule.common_of rule in
             let expression =
               match rule with Rule.Composite r -> r.Rule.expression | _ -> assert false
             in
             let verdict, detail, evidence =
               if Rule.is_disabled rule then
                 (Engine.Not_applicable, Printf.sprintf "%s: disabled" c.Rule.name, [])
               else
                 match Expr.parse expression with
                 | Error e -> (Engine.Engine_error e, e, [ expression ])
                 | Ok ast ->
                   if Expr.eval env ast then
                     ( Engine.Matched,
                       (if c.Rule.matched_description <> "" then c.Rule.matched_description
                        else Printf.sprintf "%s: composite holds" c.Rule.name),
                       [ expression ] )
                   else
                     ( Engine.Not_matched,
                       (if c.Rule.not_matched_description <> "" then c.Rule.not_matched_description
                        else Printf.sprintf "%s: composite does not hold" c.Rule.name),
                       [ expression ] )
             in
             {
               Engine.entity = entry.Manifest.entity;
               frame_id = deployment_id;
               rule;
               verdict;
               detail;
               evidence;
             }))
    rules

let deployment_id_of frames =
  match frames with
  | [ f ] -> Frames.Frame.id f
  | _ -> Printf.sprintf "deployment(%d frames)" (List.length frames)

let run_loaded ?(tags = []) ?keep_not_applicable ~rules frames =
  let keep_na = match keep_not_applicable with Some b -> b | None -> List.length frames <= 1 in
  let entity_rules =
    List.map (fun (entry, rs) -> (entry, List.filter (tag_selected tags) rs)) rules
  in
  (* Per-entity evaluation over every frame. *)
  let ctxs =
    List.map
      (fun ((entry : Manifest.entry), _) ->
        (entry.Manifest.entity, List.map (fun frame -> Engine.build_ctx frame entry) frames))
      entity_rules
  in
  let plain_results =
    List.concat_map
      (fun ((entry : Manifest.entry), rules) ->
        let plain = List.filter (fun r -> not (is_composite r)) rules in
        let entity_ctxs = List.assoc entry.Manifest.entity ctxs in
        List.concat_map (fun ctx -> Engine.eval_entity ctx plain) entity_ctxs)
      entity_rules
  in
  let plain_results =
    if keep_na then plain_results
    else
      List.filter (fun (r : Engine.result) -> r.Engine.verdict <> Engine.Not_applicable) plain_results
  in
  let composite_results =
    eval_composites ~rules:entity_rules ~plain_results ~ctxs
      ~deployment_id:(deployment_id_of frames)
  in
  { results = plain_results @ composite_results; load_errors = [] }

let run ?tags ?keep_not_applicable ~source ~manifest frames =
  (* Load errors disable just the affected entity, mirroring production
     behaviour: one bad rule file must not block the whole scan. *)
  let loaded =
    List.filter_map
      (fun (entry : Manifest.entry) ->
        if not entry.Manifest.enabled then None
        else Some (entry, Manifest.load_rules source entry))
      manifest
  in
  let load_errors =
    List.filter_map
      (fun ((entry : Manifest.entry), outcome) ->
        match outcome with Error e -> Some (entry.Manifest.entity, e) | Ok _ -> None)
      loaded
  in
  let rules =
    List.filter_map
      (fun (entry, outcome) -> Result.to_option outcome |> Option.map (fun r -> (entry, r)))
      loaded
  in
  let t = run_loaded ?tags ?keep_not_applicable ~rules frames in
  { t with load_errors }
