type t = {
  results : Engine.result list;
  load_errors : (string * string) list;
  compile_diagnostics : Compile.diagnostic list;
  health : Resilience.health;
}

let env_of ~results ~ctxs =
  (* Composite expressions probe (entity, rule) and entity lookups many
     times per deployment; index both sides once instead of rescanning
     the full result list per atom. *)
  let rule_tbl : (string * string, bool) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (r : Engine.result) ->
      let key = (r.Engine.entity, Rule.name r.Engine.rule) in
      let matched = r.Engine.verdict = Engine.Matched in
      match Hashtbl.find_opt rule_tbl key with
      | None -> Hashtbl.add rule_tbl key matched
      | Some m -> if matched && not m then Hashtbl.replace rule_tbl key true)
    results;
  let ctx_tbl : (string, Engine.entity_ctx list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (entity, entity_ctxs) ->
      (* Keep the first binding, as [List.assoc_opt] did. *)
      if not (Hashtbl.mem ctx_tbl entity) then Hashtbl.add ctx_tbl entity entity_ctxs)
    ctxs;
  {
    Expr.lookup_rule = (fun ~entity ~rule -> Hashtbl.find_opt rule_tbl (entity, rule));
    Expr.lookup_config =
      (fun ~entity ~key ~subpath ->
        match Hashtbl.find_opt ctx_tbl entity with
        | None -> None
        | Some entity_ctxs ->
          List.find_map (fun ctx -> Engine.lookup_config_value ctx ~key ~subpath) entity_ctxs);
  }

let tag_selected tags rule = tags = [] || List.exists (fun t -> Rule.has_tag rule t) tags

let load_rules ~source ~manifest =
  let loaded =
    List.filter_map
      (fun (entry : Manifest.entry) ->
        if not entry.Manifest.enabled then None
        else Some (entry, Manifest.load_rules source entry))
      manifest
  in
  let errors =
    List.filter_map
      (fun ((entry : Manifest.entry), outcome) ->
        match outcome with Error e -> Some (entry.Manifest.entity, e) | Ok _ -> None)
      loaded
  in
  if errors <> [] then Error errors
  else
    Ok
      (List.filter_map
         (fun (entry, outcome) -> Result.to_option outcome |> Option.map (fun r -> (entry, r)))
         loaded)

let is_composite = function
  | Rule.Composite _ -> true
  | Rule.Tree _ | Rule.Schema _ | Rule.Path _ | Rule.Script _ | Rule.Cluster _ -> false

let is_cluster = function
  | Rule.Cluster _ -> true
  | Rule.Tree _ | Rule.Schema _ | Rule.Path _ | Rule.Script _ | Rule.Composite _ -> false

(* One composite's result from its pre-parsed expression. Shared by the
   interpreter path (which parses here, per evaluation) and the
   compiled path (whose ASTs come from [Compile]). *)
let composite_result ~env ~deployment_id (entry : Manifest.entry) (rule, parsed) =
  let c = Rule.common_of rule in
  let expression =
    match rule with Rule.Composite r -> r.Rule.expression | _ -> assert false
  in
  let verdict, detail, evidence =
    if Rule.is_disabled rule then
      (Engine.Not_applicable, Printf.sprintf "%s: disabled" c.Rule.name, [])
    else
      match parsed with
      | Error e ->
        (Engine.Engine_error { stage = Resilience.Evaluate; message = e }, e, [ expression ])
      | Ok ast ->
        if Expr.eval env ast then
          ( Engine.Matched,
            (if c.Rule.matched_description <> "" then c.Rule.matched_description
             else Printf.sprintf "%s: composite holds" c.Rule.name),
            [ expression ] )
        else
          ( Engine.Not_matched,
            (if c.Rule.not_matched_description <> "" then c.Rule.not_matched_description
             else Printf.sprintf "%s: composite does not hold" c.Rule.name),
            [ expression ] )
  in
  {
    Engine.entity = entry.Manifest.entity;
    frame_id = deployment_id;
    rule;
    verdict;
    detail;
    evidence;
  }

let eval_composites ~rules ~plain_results ~ctxs ~deployment_id =
  let env = env_of ~results:plain_results ~ctxs in
  List.concat_map
    (fun ((entry : Manifest.entry), entity_rules) ->
      entity_rules
      |> List.filter is_composite
      |> List.map (fun rule ->
             let expression =
               match rule with Rule.Composite r -> r.Rule.expression | _ -> assert false
             in
             composite_result ~env ~deployment_id entry (rule, Expr.parse expression)))
    rules

(* Compiled variant: the expressions were parsed once at compile time. *)
let eval_composites_pre ~entities ~plain_results ~ctxs ~deployment_id =
  let env = env_of ~results:plain_results ~ctxs in
  List.concat_map
    (fun (entry, composites) ->
      List.map (composite_result ~env ~deployment_id entry) composites)
    entities

(* Cluster rules evaluate once per (entity, rule) over the entity's
   whole list of frame contexts; like composites, their result carries
   the deployment pseudo-frame id. *)
let eval_clusters_pre ~entities ~ctxs ~deployment_id =
  List.concat_map
    (fun ((entry : Manifest.entry), clusters) ->
      let entity = entry.Manifest.entity in
      let entity_ctxs = Option.value (List.assoc_opt entity ctxs) ~default:[] in
      List.map
        (fun (lw : Cluster.lowered) -> Cluster.eval ~deployment_id ~entity lw entity_ctxs)
        clusters)
    entities

(* Interpreted variant: lower per evaluation (issues already surface as
   compile diagnostics on the compiled engines; the interpreter, like
   the other rule types, swallows malformed literals silently). *)
let eval_clusters ~rules ~ctxs ~deployment_id =
  eval_clusters_pre ~ctxs ~deployment_id
    ~entities:
      (List.map
         (fun (entry, rs) ->
           ( entry,
             List.filter_map
               (function
                 | Rule.Cluster r as rule -> Some (fst (Cluster.lower rule r))
                 | _ -> None)
               rs ))
         rules)

let deployment_id_of frames =
  match frames with
  | [ f ] -> Frames.Frame.id f
  | _ -> Printf.sprintf "deployment(%d frames)" (List.length frames)

(* Resolve the [?jobs]/[?pool] pair: an explicit pool wins (the caller
   amortizes domain spawning), otherwise a transient pool is created
   for the call when [jobs > 1]. *)
let with_effective_pool ?jobs ?pool f =
  match pool with
  | Some p -> f p
  | None -> (
    let j = match jobs with Some 0 -> Pool.default_jobs () | Some j -> j | None -> 1 in
    if j <= 1 then f Pool.sequential else Pool.with_pool ~jobs:j f)

(* Containment: any exception escaping context building or a rule
   evaluation — including a {!Resilience.Fault} raised by an armed
   fault plan — becomes an attributed [Engine_error] result for exactly
   that (entity, rule, frame) cell instead of aborting the run. *)

let error_of_exn default_stage e =
  match e with
  | Resilience.Fault f -> (f.Resilience.stage, f.Resilience.message)
  | e -> (default_stage, Printexc.to_string e)

let contained_result ~entity ~frame rule (stage, message) =
  {
    Engine.entity;
    frame_id = Frames.Frame.id frame;
    rule;
    verdict = Engine.Engine_error { stage; message };
    detail = Printf.sprintf "%s: contained failure: %s" (Rule.name rule) message;
    evidence = [];
  }

(* One (entity, frame) cell of the work grid, generic over the unit of
   evaluation: rules for the interpreter, programs for compiled
   dispatch. Containment and the resilience eval hook wrap each item
   identically in both modes, so chaos runs stay byte-identical too. *)
let eval_cell ~rule_of ~eval ((entry : Manifest.entry), items, frame) =
  let entity = entry.Manifest.entity in
  match Engine.build_ctx frame entry with
  | exception e ->
    Resilience.note_contained ();
    let attributed = error_of_exn Resilience.Extract e in
    let ctx = { Engine.entity; frame; configs = [] } in
    (ctx, List.map (fun item -> contained_result ~entity ~frame (rule_of item) attributed) items)
  | ctx ->
    let eval_one item =
      let rule = rule_of item in
      match
        Resilience.apply_eval_hook ~entity ~rule:(Rule.name rule)
          ~frame_id:(Frames.Frame.id frame);
        eval ctx item
      with
      | result -> result
      | exception e ->
        Resilience.note_contained ();
        contained_result ~entity ~frame rule (error_of_exn Resilience.Evaluate e)
    in
    (ctx, List.map eval_one items)

let eval_unit cell = eval_cell ~rule_of:Fun.id ~eval:Engine.eval_rule cell

let eval_unit_compiled cell =
  eval_cell
    ~rule_of:(fun (p : Compile.program) -> p.Compile.rule)
    ~eval:(fun ctx p -> Compile.run_program ctx p)
    cell

(* Fused dispatch: one fresh CSE state per cell — the whole point is
   that every rule of this (entity, frame) cell shares it, and nothing
   outside the cell ever sees it. *)
let eval_unit_fused cell =
  let state = Fuse.new_state () in
  eval_cell
    ~rule_of:(fun (p : Fuse.program) -> p.Fuse.rule)
    ~eval:(fun ctx p -> Fuse.run_program state ctx p)
    cell

let stage_error_tallies results =
  List.fold_left
    (fun (ex, no, ev) (r : Engine.result) ->
      match r.Engine.verdict with
      | Engine.Engine_error { stage = Resilience.Extract; _ } -> (ex + 1, no, ev)
      | Engine.Engine_error { stage = Resilience.Normalize; _ } -> (ex, no + 1, ev)
      | Engine.Engine_error { stage = Resilience.Evaluate; _ } -> (ex, no, ev + 1)
      | _ -> (ex, no, ev))
    (0, 0, 0) results

(* The grid was laid out entity-major with exactly one cell per frame,
   so consecutive runs of |frames| cells regroup per entity. *)
let regroup ~nframes entries cells =
  let rec go entries cells =
    match entries with
    | [] -> []
    | (entry : Manifest.entry) :: rest ->
      let rec take k acc cells =
        if k = 0 then (List.rev acc, cells)
        else
          match cells with
          | [] -> (List.rev acc, [])
          | c :: cs -> take (k - 1) (c :: acc) cs
      in
      let mine, others = take nframes [] cells in
      (entry.Manifest.entity, List.map fst mine) :: go rest others
  in
  go entries cells

let keep_na_default keep_not_applicable frames =
  match keep_not_applicable with Some b -> b | None -> List.length frames <= 1

(* Shared tail of a run, after the grid has been evaluated: regroup
   contexts, filter Not_applicable, aggregate cluster rules over the
   frame set, aggregate composites, tally health. Cluster results sit
   between plain and composite results, and composite expressions see
   both (so a composite can reference a cluster rule by name). *)
let finish ~keep_na ~frames ~entries ~evaluated ~clusters_of ~composites_of
    ~compile_diagnostics ~before =
  let ctxs = regroup ~nframes:(List.length frames) entries evaluated in
  let deployment_id = deployment_id_of frames in
  let plain_results = List.concat_map snd evaluated in
  let plain_results =
    if keep_na then plain_results
    else
      List.filter (fun (r : Engine.result) -> r.Engine.verdict <> Engine.Not_applicable) plain_results
  in
  let cluster_results = clusters_of ~ctxs ~deployment_id in
  let plain_results = plain_results @ cluster_results in
  let composite_results = composites_of ~plain_results ~ctxs ~deployment_id in
  let results = plain_results @ composite_results in
  let extract_errors, normalize_errors, evaluate_errors = stage_error_tallies results in
  let counters =
    Resilience.diff_counters ~before ~after:(Resilience.counters ())
  in
  let health =
    Resilience.make_health ~extract_errors ~normalize_errors ~evaluate_errors counters
  in
  { results; load_errors = []; compile_diagnostics; health }

let compile = Compile.compile

(* The shard unit is one (entity, frame) cell of the work grid: build
   the context (crawl + normalize) and evaluate the entity's programs
   against it. [Pool.map] preserves input order, so the merged output
   is the sequential entity-major / frame-minor / rule order,
   byte-identical for every job count. *)
let run_compiled ?(tags = []) ?keep_not_applicable ?jobs ?pool ~(compiled : Compile.t) frames =
  let keep_na = keep_na_default keep_not_applicable frames in
  Resilience.begin_run ();
  let before = Resilience.counters () in
  let selected =
    List.map
      (fun (ep : Compile.entity_programs) -> (ep.Compile.entry, Compile.select ~tags ep))
      compiled.Compile.entities
  in
  let units =
    List.concat_map
      (fun (entry, (programs, _)) -> List.map (fun frame -> (entry, programs, frame)) frames)
      selected
  in
  let evaluated = with_effective_pool ?jobs ?pool (fun p -> Pool.map p eval_unit_compiled units) in
  finish ~keep_na ~frames ~entries:(List.map fst selected) ~evaluated
    ~clusters_of:
      (eval_clusters_pre
         ~entities:
           (List.map
              (fun (ep : Compile.entity_programs) ->
                (ep.Compile.entry, Compile.select_clusters ~tags ep))
              compiled.Compile.entities))
    ~composites_of:
      (eval_composites_pre
         ~entities:(List.map (fun (entry, (_, comps)) -> (entry, comps)) selected))
    ~compile_diagnostics:compiled.Compile.diagnostics ~before

(* Same grid and tail as [run_compiled], dispatching fused programs. *)
let run_fused ?(tags = []) ?keep_not_applicable ?jobs ?pool ~(fused : Fuse.t) frames =
  let keep_na = keep_na_default keep_not_applicable frames in
  Resilience.begin_run ();
  let before = Resilience.counters () in
  let selected =
    List.map
      (fun (fp : Fuse.entity_plan) -> (fp.Fuse.entry, Fuse.select ~tags fp))
      fused.Fuse.entities
  in
  let units =
    List.concat_map
      (fun (entry, (programs, _)) -> List.map (fun frame -> (entry, programs, frame)) frames)
      selected
  in
  let evaluated = with_effective_pool ?jobs ?pool (fun p -> Pool.map p eval_unit_fused units) in
  finish ~keep_na ~frames ~entries:(List.map fst selected) ~evaluated
    ~clusters_of:
      (eval_clusters_pre
         ~entities:
           (List.map
              (fun (fp : Fuse.entity_plan) ->
                (fp.Fuse.entry, Compile.select_clusters ~tags fp.Fuse.base))
              fused.Fuse.entities))
    ~composites_of:
      (eval_composites_pre
         ~entities:(List.map (fun (entry, (_, comps)) -> (entry, comps)) selected))
    ~compile_diagnostics:fused.Fuse.diagnostics ~before

let run_loaded ?(tags = []) ?keep_not_applicable ?jobs ?pool ?(engine = `Fused) ~rules frames =
  match engine with
  | `Fused ->
    run_fused ~tags ?keep_not_applicable ?jobs ?pool
      ~fused:(Fuse.fuse (Compile.compile rules))
      frames
  | `Compiled ->
    run_compiled ~tags ?keep_not_applicable ?jobs ?pool ~compiled:(Compile.compile rules) frames
  | `Interpreted ->
    let keep_na = keep_na_default keep_not_applicable frames in
    Resilience.begin_run ();
    let before = Resilience.counters () in
    let entity_rules =
      List.map (fun (entry, rs) -> (entry, List.filter (tag_selected tags) rs)) rules
    in
    let units =
      List.concat_map
        (fun (entry, rs) ->
          let plain = List.filter (fun r -> not (is_composite r || is_cluster r)) rs in
          List.map (fun frame -> (entry, plain, frame)) frames)
        entity_rules
    in
    let evaluated = with_effective_pool ?jobs ?pool (fun p -> Pool.map p eval_unit units) in
    finish ~keep_na ~frames ~entries:(List.map fst entity_rules) ~evaluated
      ~clusters_of:(fun ~ctxs ~deployment_id ->
        eval_clusters ~rules:entity_rules ~ctxs ~deployment_id)
      ~composites_of:(fun ~plain_results ~ctxs ~deployment_id ->
        eval_composites ~rules:entity_rules ~plain_results ~ctxs ~deployment_id)
      ~compile_diagnostics:[] ~before

let run ?tags ?keep_not_applicable ?jobs ?pool ?engine ~source ~manifest frames =
  (* Load errors disable just the affected entity, mirroring production
     behaviour: one bad rule file must not block the whole scan. *)
  let loaded =
    List.filter_map
      (fun (entry : Manifest.entry) ->
        if not entry.Manifest.enabled then None
        else Some (entry, Manifest.load_rules source entry))
      manifest
  in
  let load_errors =
    List.filter_map
      (fun ((entry : Manifest.entry), outcome) ->
        match outcome with Error e -> Some (entry.Manifest.entity, e) | Ok _ -> None)
      loaded
  in
  let rules =
    List.filter_map
      (fun (entry, outcome) -> Result.to_option outcome |> Option.map (fun r -> (entry, r)))
      loaded
  in
  let t = run_loaded ?tags ?keep_not_applicable ?jobs ?pool ?engine ~rules frames in
  { t with load_errors }
