type group =
  | Common
  | Tree
  | Schema
  | Path
  | Script
  | Composite
  | Cluster

let group_to_string = function
  | Common -> "common"
  | Tree -> "config tree"
  | Schema -> "schema"
  | Path -> "path"
  | Script -> "script"
  | Composite -> "composite"
  | Cluster -> "cluster"

let all =
  [
    (* Keywords common across rules and entity description: 20. *)
    ("entity_name", Common, "name of the entity a manifest section describes");
    ("enabled", Common, "whether the entity's rules are evaluated");
    ("cvl_file", Common, "path of the file holding the entity's CVL rules");
    ("parent_cvl_file", Common, "parent rule file this file inherits from");
    ("rule_type", Common, "rule type hint in a manifest (tree|schema|path|script|composite)");
    ("config_search_paths", Common, "locations to search for the entity's config files");
    ("lens", Common, "lens used to normalize the entity's config files");
    ("rules", Common, "the list of rule definitions in a CVL file");
    ("tags", Common, "free-form filter tags, e.g. #cis, #hipaa, #cisubuntu14.04_2.1");
    ("severity", Common, "informational severity attached to a finding");
    ("disabled", Common, "disable this rule (used when overriding a parent rule)");
    ("preferred_value", Common, "value(s) the configuration should match");
    ("non_preferred_value", Common, "value(s) the configuration must not match");
    ("preferred_value_match", Common, "match semantics 'kind,scope' for preferred values");
    ("non_preferred_value_match", Common, "match semantics 'kind,scope' for non-preferred values");
    ("matched_description", Common, "output string when the rule matches");
    ("not_matched_preferred_value_description", Common, "output string on a violation");
    ("not_present_description", Common, "output string when the configuration is absent");
    ("suggested_action", Common, "remediation hint included in the report");
    ("flaky_plugins", Common, "plugins a manifest marks as unreliable for this entity");
    (* Config tree rules: 9. *)
    ("config_name", Tree, "key (leaf label) the rule asserts on");
    ("config_path", Tree, "alternate tree paths under which config_name may appear");
    ("config_description", Tree, "what the configuration parameter controls");
    ("file_context", Tree, "file name patterns the rule applies to");
    ("require_other_configs", Tree, "configs that must be present for the rule to apply");
    ("value_separator", Tree, "separator splitting a multi-valued entry before matching");
    ("case_insensitive", Tree, "compare values case-insensitively");
    ("check_presence_only", Tree, "assert existence without inspecting the value");
    ("not_present_pass", Tree, "treat an absent configuration as a pass, not a finding");
    (* Schema rules: 6. *)
    ("config_schema_name", Schema, "rule name for a schema (table) assertion");
    ("config_schema_description", Schema, "what the schema assertion checks");
    ("query_constraints", Schema, "row filter, e.g. \"dir = ?\" with AND conjunctions");
    ("query_constraints_value", Schema, "bindings for the '?' placeholders");
    ("query_columns", Schema, "columns projected before value matching (\"*\" = all)");
    ("expect_rows", Schema, "minimum number of rows the query must return");
    (* Path rules: 6. *)
    ("path_name", Path, "file or directory path the rule asserts on");
    ("path_description", Path, "what the path assertion checks");
    ("ownership", Path, "required numeric ownership, \"uid:gid\"");
    ("permission", Path, "maximum permission bits (octal); stricter modes pass");
    ("should_exist", Path, "whether the path must exist (default) or must not");
    ("file_type", Path, "expected kind: file | directory | symlink");
    (* Script rules: 4. *)
    ("script_name", Script, "rule name for a runtime-state assertion");
    ("script_description", Script, "what the script assertion checks");
    ("script", Script, "crawler plugin that extracts the runtime state");
    ("on_plugin_failure", Script, "fallback when the plugin faults after retries: degrade | error");
    (* Composite rules: 3. *)
    ("composite_rule_name", Composite, "rule name for a cross-entity assertion");
    ("composite_rule_description", Composite, "what the composite assertion checks");
    ("composite_rule", Composite, "boolean expression over per-entity results");
    (* Cluster rules: 8. *)
    ("cluster_rule_name", Cluster, "rule name for a fleet-scoped assertion");
    ("cluster_rule_description", Cluster, "what the cluster assertion checks");
    ("scope", Cluster, "evaluation scope; must be 'cluster' for fleet-wide rules");
    ("aggregate", Cluster,
     "cross-frame aggregator: equal_across | exists_referent | count | consistent_across");
    ("referent_config_path", Cluster,
     "path whose fleet-wide values form the referent set (default: frame ids)");
    ("min_frames", Cluster, "minimum number of frames that must carry the configuration");
    ("max_frames", Cluster, "maximum number of frames allowed to carry the configuration");
    ("group_by", Cluster, "config key partitioning frames into consistency groups");
  ]

(* The linter probes every key of every rule against the vocabulary, so
   lookups are backed by a hashtable built once on first use rather than
   scanning the 56-entry list per call. *)
let by_name : (string, group) Hashtbl.t Lazy.t =
  lazy
    (let h = Hashtbl.create (2 * List.length all) in
     List.iter (fun (name, g, _) -> Hashtbl.replace h name g) all;
     h)

let is_keyword k = Hashtbl.mem (Lazy.force by_name) k
let group_of k = Hashtbl.find_opt (Lazy.force by_name) k

let in_group g = List.filter_map (fun (name, g', _) -> if g = g' then Some name else None) all

let allowed_in g =
  let own = in_group g @ in_group Common in
  match g with
  | Script -> "config_path" :: "not_present_pass" :: own
  | Cluster -> "config_path" :: "file_context" :: "value_separator" :: own
  | Common | Tree | Schema | Path | Composite -> own

let count = List.length all
let count_in_group g = List.length (in_group g)

(* Bounded Levenshtein distance for "did you mean" suggestions: gives up
   (returns [limit + 1]) as soon as no path can stay within [limit]. *)
let distance ~limit a b =
  let la = String.length a and lb = String.length b in
  if abs (la - lb) > limit then limit + 1
  else begin
    let prev = Array.init (lb + 1) Fun.id in
    let cur = Array.make (lb + 1) 0 in
    let exceeded = ref false in
    let i = ref 1 in
    while (not !exceeded) && !i <= la do
      cur.(0) <- !i;
      let row_min = ref cur.(0) in
      for j = 1 to lb do
        let cost = if a.[!i - 1] = b.[j - 1] then 0 else 1 in
        cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost);
        if cur.(j) < !row_min then row_min := cur.(j)
      done;
      if !row_min > limit then exceeded := true;
      Array.blit cur 0 prev 0 (lb + 1);
      incr i
    done;
    if !exceeded then limit + 1 else prev.(lb)
  end

let nearest k =
  let limit = 3 in
  List.fold_left
    (fun best (name, _, _) ->
      let d = distance ~limit k name in
      match best with
      | Some (_, bd) when bd <= d -> best
      | _ -> if d <= limit then Some (name, d) else best)
    None all
