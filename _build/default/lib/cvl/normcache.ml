(* Content-addressed memoization of lens normalization.

   The cache key is (lens name, path, MD5 of content): two frames that
   share a file — docksim layers stacked from the same image, fleet
   scenarios stamped from one template — normalize it once. Keying on
   the path as well as the digest keeps lens inference (which dispatches
   on the file name) out of the equation: the same bytes under two
   paths may legitimately normalize differently.

   Parsed [Lenses.Lens.normalized] values are immutable, so sharing one
   result across frames and domains is safe. The table is guarded by a
   single mutex; the parse itself runs outside the critical section, so
   two domains missing on the same key at the same time duplicate the
   parse (benign) rather than serialize on it. *)

type stats = { hits : int; misses : int }

let enabled = Atomic.make true

let mutex = Mutex.create ()

let table : (string * string * string, (Lenses.Lens.normalized, string) result) Hashtbl.t =
  Hashtbl.create 256

let hits = ref 0
let misses = ref 0

(* Crude bound so a long-lived validator cannot grow without limit;
   one full fleet scan fits with lots of room. *)
let max_entries = 8192

let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

let reset () =
  Mutex.lock mutex;
  Hashtbl.reset table;
  hits := 0;
  misses := 0;
  Mutex.unlock mutex

let stats () =
  Mutex.lock mutex;
  let s = { hits = !hits; misses = !misses } in
  Mutex.unlock mutex;
  s

let parse ?lens_name ~path content =
  if not (Atomic.get enabled) then Lenses.Registry.parse ?lens_name ~path content
  else begin
    let key = (Option.value lens_name ~default:"", path, Digest.string content) in
    Mutex.lock mutex;
    match Hashtbl.find_opt table key with
    | Some outcome ->
      incr hits;
      Mutex.unlock mutex;
      outcome
    | None ->
      incr misses;
      Mutex.unlock mutex;
      let outcome = Lenses.Registry.parse ?lens_name ~path content in
      Mutex.lock mutex;
      if Hashtbl.length table >= max_entries then Hashtbl.reset table;
      Hashtbl.replace table key outcome;
      Mutex.unlock mutex;
      outcome
  end
