(* Content-addressed memoization of lens normalization.

   The cache key is (lens name, path, MD5 of content): two frames that
   share a file — docksim layers stacked from the same image, fleet
   scenarios stamped from one template — normalize it once. Keying on
   the path as well as the digest keeps lens inference (which dispatches
   on the file name) out of the equation: the same bytes under two
   paths may legitimately normalize differently.

   Parsed [Lenses.Lens.normalized] values are immutable, so sharing one
   result across frames and domains is safe. The table is guarded by a
   single mutex; the parse itself runs outside the critical section, so
   two domains missing on the same key at the same time duplicate the
   parse (benign) rather than serialize on it.

   Only [Ok] outcomes are memoized. A parse failure can be transient —
   a half-written file observed mid-scan, a fault injected by the chaos
   harness — and memoizing it would pin the failure for the process
   lifetime even after the input recovers. Failures are counted in
   [errors_cached] (the would-have-been-cached count) instead. *)

type stats = { hits : int; misses : int; errors_cached : int }

let enabled = Atomic.make true

let mutex = Mutex.create ()

let table : (string * string * string, (Lenses.Lens.normalized, string) result) Hashtbl.t =
  Hashtbl.create 256

let hits = ref 0
let misses = ref 0
let errors = ref 0

(* Crude bound so a long-lived validator cannot grow without limit;
   one full fleet scan fits with lots of room. *)
let max_entries = 8192

let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

(* Test/fault hook: when set, consulted instead of the real registry
   parse (a [None] answer falls through to the registry). Lets tests
   make the same (lens, path, digest) fail once and then succeed. *)
let parse_hook :
    (lens_name:string option -> path:string -> string -> (Lenses.Lens.normalized, string) result option)
      option
      Atomic.t =
  Atomic.make None

let set_parse_hook h = Atomic.set parse_hook h

let raw_parse ?lens_name ~path content =
  match Atomic.get parse_hook with
  | None -> Lenses.Registry.parse ?lens_name ~path content
  | Some h -> (
    match h ~lens_name ~path content with
    | Some outcome -> outcome
    | None -> Lenses.Registry.parse ?lens_name ~path content)

let reset () =
  Mutex.lock mutex;
  Hashtbl.reset table;
  hits := 0;
  misses := 0;
  errors := 0;
  Mutex.unlock mutex

let stats () =
  Mutex.lock mutex;
  let s = { hits = !hits; misses = !misses; errors_cached = !errors } in
  Mutex.unlock mutex;
  s

let parse ?lens_name ~path content =
  if not (Atomic.get enabled) then raw_parse ?lens_name ~path content
  else begin
    let key = (Option.value lens_name ~default:"", path, Digest.string content) in
    Mutex.lock mutex;
    match Hashtbl.find_opt table key with
    | Some outcome ->
      incr hits;
      Mutex.unlock mutex;
      outcome
    | None ->
      Mutex.unlock mutex;
      let outcome = raw_parse ?lens_name ~path content in
      Mutex.lock mutex;
      (* A failed parse is recomputed on every lookup, so counting it as
         a miss would grow the miss counter forever in steady state;
         [misses] tracks cacheable work only. *)
      (match outcome with
      | Ok _ ->
        incr misses;
        if Hashtbl.length table >= max_entries then Hashtbl.reset table;
        Hashtbl.replace table key outcome
      | Error _ -> incr errors);
      Mutex.unlock mutex;
      outcome
  end
