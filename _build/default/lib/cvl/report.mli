(** Output processing (paper §3.1): turn raw engine results into
    human-readable findings and machine-readable documents, combining
    each verdict with the rule's descriptions and suggested action. *)

type summary = {
  total : int;
  matched : int;
  violations : int;  (** [Not_matched] + actionable [Not_present] *)
  not_present : int;
  not_applicable : int;
  errors : int;
}

val summarize : Engine.result list -> summary

(** Keep results whose rule carries at least one of the tags. *)
val filter_by_tags : string list -> Engine.result list -> Engine.result list

(** Keep only violations. *)
val violations : Engine.result list -> Engine.result list

(** Render a findings report. [verbose] includes evidence lines and
    suggested actions. [health], when given and degraded, appends the
    run-health section ({!health_to_text}); a healthy run renders
    byte-identically with or without it. *)
val to_text : ?verbose:bool -> ?health:Resilience.health -> Engine.result list -> string

val summary_line : summary -> string

(** Run-health section for degraded runs; [""] when not degraded. *)
val health_to_text : Resilience.health -> string

val result_to_json : Engine.result -> Jsonlite.t
val health_to_json : Resilience.health -> Jsonlite.t

(** [health], when given, adds a ["health"] object (always, degraded or
    not — JSON consumers want the counters either way). *)
val to_json : ?health:Resilience.health -> Engine.result list -> Jsonlite.t

(** JUnit-style XML (one testsuite per entity, one testcase per rule) —
    the common CI integration format, so validation gates pipelines the
    way the paper's production deployment gates image pushes. A
    degraded [health] marks the root element with [degraded="true"] and
    the retry/breaker counters. *)
val to_junit : ?health:Resilience.health -> Engine.result list -> string

(** {2 Run comparison}

    Diff two validation runs (e.g. before and after a deploy): which
    (entity, rule, frame) findings appeared, which cleared. *)

type run_comparison = {
  regressions : Engine.result list;  (** violating now, compliant before *)
  fixes : Engine.result list;  (** compliant now, violating before *)
  still_violating : Engine.result list;
}

val compare_runs : before:Engine.result list -> after:Engine.result list -> run_comparison
val comparison_summary : run_comparison -> string
