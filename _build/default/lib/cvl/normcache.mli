(** Content-addressed cache over {!Lenses.Registry.parse}.

    Normalization re-parses every crawled file for every frame; in a
    fleet most frames share most files (layered docksim images, hosts
    stamped from one template), so {!Engine.build_ctx} routes parsing
    through this cache, keyed by [(lens_name, path, MD5(content))].
    Identical content under the same path and lens normalizes once per
    process instead of once per frame.

    The cache is process-global, domain-safe, and enabled by default;
    the benchmark harness toggles it for the cold/warm ablation and the
    incremental tests assert on the hit/miss counters. *)

(** Cumulative counters since the last {!reset}. A hit means the parse
    was skipped entirely. *)
type stats = { hits : int; misses : int }

(** Cached equivalent of {!Lenses.Registry.parse}: same signature, same
    outcomes (parse errors are cached too — identical content fails
    identically). *)
val parse :
  ?lens_name:string -> path:string -> string -> (Lenses.Lens.normalized, string) result

(** Toggle caching (default on). Disabling does not clear the table;
    use {!reset} for a cold start. *)
val set_enabled : bool -> unit

val is_enabled : unit -> bool

(** Drop every entry and zero the counters. *)
val reset : unit -> unit

val stats : unit -> stats
