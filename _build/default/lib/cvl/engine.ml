type verdict =
  | Matched
  | Not_matched
  | Not_present
  | Not_applicable
  | Engine_error of { stage : Resilience.stage; message : string }

let verdict_to_string = function
  | Matched -> "matched"
  | Not_matched -> "not-matched"
  | Not_present -> "not-present"
  | Not_applicable -> "not-applicable"
  | Engine_error { stage; message } ->
    Printf.sprintf "error(%s: %s)" (Resilience.stage_to_string stage) message

let is_violation = function
  | Not_matched | Not_present -> true
  | Matched | Not_applicable | Engine_error _ -> false

type result = {
  entity : string;
  frame_id : string;
  rule : Rule.t;
  verdict : verdict;
  detail : string;
  evidence : string list;
}

type entity_ctx = {
  entity : string;
  frame : Frames.Frame.t;
  configs : (string * (Lenses.Lens.normalized, string) Stdlib.result) list;
}

let build_ctx frame (entry : Manifest.entry) =
  let extracted =
    Crawler.find_config_files frame ~search_paths:entry.Manifest.search_paths ~patterns:[]
  in
  let frame_id = Frames.Frame.id frame in
  let configs =
    List.map
      (fun (e : Crawler.extracted) ->
        let path = e.Crawler.source_path in
        (* The read hook (armed by Faultsim, identity otherwise) can
           corrupt, truncate, delay or fail the read; a failed read is
           retained per-file like a parse error, so it degrades only
           the rules needing this file. *)
        match Resilience.apply_read_hook ~frame_id ~path e.Crawler.content with
        | Error (f : Resilience.fault_info) ->
          (path, Error (Printf.sprintf "read failed: %s" f.Resilience.message))
        | Ok content -> (path, Normcache.parse ?lens_name:entry.Manifest.lens ~path content))
      extracted
  in
  { entity = entry.Manifest.entity; frame; configs }

let ctx_of_documents ~entity frame docs =
  { entity; frame; configs = List.map (fun (path, n) -> (path, Ok n)) docs }

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)
(* ------------------------------------------------------------------ *)

let mk ctx rule verdict ~detail ~evidence =
  { entity = ctx.entity; frame_id = Frames.Frame.id ctx.frame; rule; verdict; detail; evidence }

let err stage message = Engine_error { stage; message }

(* Pick the configured output string for the verdict, with a generic
   fallback so reports never show empty findings. *)
let describe (c : Rule.common) verdict =
  let fallback =
    match verdict with
    | Matched -> Printf.sprintf "%s: configuration matches the preferred value" c.Rule.name
    | Not_matched -> Printf.sprintf "%s: configuration does not match the preferred value" c.Rule.name
    | Not_present -> Printf.sprintf "%s: configuration not present" c.Rule.name
    | Not_applicable -> Printf.sprintf "%s: not applicable" c.Rule.name
    | Engine_error { message; _ } -> Printf.sprintf "%s: %s" c.Rule.name message
  in
  let configured =
    match verdict with
    | Matched -> c.Rule.matched_description
    | Not_matched -> c.Rule.not_matched_description
    | Not_present -> c.Rule.not_present_description
    | Not_applicable | Engine_error _ -> ""
  in
  if configured = "" then fallback else configured

let files_in_context ctx patterns =
  List.filter
    (fun (path, _) ->
      patterns = [] || List.exists (fun p -> Crawler.pattern_matches p path) patterns)
    ctx.configs

let trees_in_context ctx patterns =
  files_in_context ctx patterns
  |> List.filter_map (fun (path, parsed) ->
         match parsed with
         | Ok (Lenses.Lens.Tree forest) -> Some (path, forest)
         | Ok (Lenses.Lens.Table _) | Error _ -> None)

let tables_in_context ctx patterns =
  files_in_context ctx patterns
  |> List.filter_map (fun (path, parsed) ->
         match parsed with
         | Ok (Lenses.Lens.Table t) -> Some (path, t)
         | Ok (Lenses.Lens.Tree _) | Error _ -> None)

let parse_errors_in_context ctx patterns =
  files_in_context ctx patterns
  |> List.filter_map (fun (path, parsed) ->
         match parsed with
         | Error e -> Some (Printf.sprintf "%s: %s" path e)
         | Ok _ -> None)

(* ------------------------------------------------------------------ *)
(* Tree rules                                                          *)
(* ------------------------------------------------------------------ *)

let label_exists forest label =
  (* Try the label as a root, then anywhere in the forest. Labels may
     contain '/' as part of a path expression. *)
  match Configtree.Path.parse label with
  | Error _ -> false
  | Ok path ->
    Configtree.Path.exists forest path
    || Configtree.Path.exists forest (Configtree.Path.Deep :: path)

let nodes_at forest ~config_path ~name =
  let path_text = if config_path = "" then name else config_path ^ "/" ^ name in
  match Configtree.Path.parse path_text with
  | Error _ -> []
  | Ok path -> Configtree.Path.find forest path

let expectation_violated ?(case_insensitive = false) (e : Rule.expectation) values =
  (* Non-preferred semantics: any observed value matching is a
     violation. *)
  List.filter
    (fun v -> Matcher.satisfies ~case_insensitive e.Rule.match_spec ~rule_values:e.Rule.values ~config_value:v)
    values

let expectation_satisfied ?(case_insensitive = false) (e : Rule.expectation) values =
  (* Preferred semantics: every observed value must satisfy. *)
  List.for_all
    (fun v -> Matcher.satisfies ~case_insensitive e.Rule.match_spec ~rule_values:e.Rule.values ~config_value:v)
    values

(* The verdict logic is shared between the interpreter and compiled
   programs through an execution plan: how nodes are located, how the
   required-config gate is checked, how expectations are decided. The
   interpreter builds its plan afresh on every evaluation (parsing path
   strings and resolving match specs per call); [Compile] builds one
   per rule, once, with pre-parsed paths, compiled matchers and indexed
   queries. The differential tests pin both constructions to identical
   results. *)
type tree_exec = {
  te_nodes : Configtree.Tree.t list -> Configtree.Tree.t list;
      (** all [config_path/name] hits of one file's forest, in
          [config_paths] order *)
  te_requires : Configtree.Tree.t list -> bool;
      (** the [require_other_configs] gate *)
  te_preferred : (string list -> bool) option;
      (** every observed value satisfies the preferred expectation *)
  te_non_preferred : (string list -> string list) option;
      (** observed values matching the non-preferred expectation *)
}

let split_values (r : Rule.tree_rule) raw =
  match r.Rule.value_separator with
  | None -> raw
  | Some sep when String.length sep = 1 ->
    List.concat_map
      (fun v -> String.split_on_char sep.[0] v |> List.map String.trim |> List.filter (( <> ) ""))
      raw
  | Some _ -> raw

let eval_tree_core ctx rule (r : Rule.tree_rule) (x : tree_exec) =
  let c = r.Rule.tree_common in
  let files = trees_in_context ctx r.Rule.file_context in
  if files = [] then
    let errors = parse_errors_in_context ctx r.Rule.file_context in
    if errors <> [] then
      let v = err Resilience.Normalize "configuration files failed to parse" in
      mk ctx rule v ~detail:(describe c v) ~evidence:errors
    else
      mk ctx rule Not_applicable
        ~detail:(Printf.sprintf "%s: no configuration files found" c.Rule.name)
        ~evidence:[]
  else
    (* Keep only the files whose required context configs are present. *)
    let applicable = List.filter (fun (_, forest) -> x.te_requires forest) files in
    if applicable = [] then
      mk ctx rule Not_applicable
        ~detail:
          (Printf.sprintf "%s: required configs (%s) not present" c.Rule.name
             (String.concat ", " r.Rule.require_other_configs))
        ~evidence:(List.map fst files)
    else
      let per_file =
        List.map
          (fun (path, forest) ->
            let nodes = x.te_nodes forest in
            let raw = List.filter_map (fun (n : Configtree.Tree.t) -> n.value) nodes in
            (path, (List.length nodes, split_values r raw)))
          applicable
      in
      let total_nodes = List.fold_left (fun acc (_, (n, _)) -> acc + n) 0 per_file in
      let values = List.concat_map (fun (_, (_, vs)) -> vs) per_file in
      let evidence =
        List.filter_map
          (fun (path, (n, vs)) ->
            if n = 0 then None
            else Some (Printf.sprintf "%s: %s = [%s]" path c.Rule.name (String.concat "; " vs)))
          per_file
      in
      if total_nodes = 0 then
        let verdict = if r.Rule.not_present_pass then Matched else Not_present in
        let detail =
          if r.Rule.not_present_pass && c.Rule.not_present_description <> "" then
            c.Rule.not_present_description
          else describe c Not_present
        in
        mk ctx rule verdict ~detail ~evidence:(List.map fst applicable)
      else if r.Rule.check_presence_only then
        mk ctx rule Matched ~detail:(describe c Matched) ~evidence
      else
        let bad = match x.te_non_preferred with Some f -> f values | None -> [] in
        if bad <> [] then
          mk ctx rule Not_matched ~detail:(describe c Not_matched)
            ~evidence:(evidence @ [ Printf.sprintf "non-preferred value(s): %s" (String.concat "; " bad) ])
        else
          let ok = match x.te_preferred with Some f -> f values | None -> true in
          if ok then mk ctx rule Matched ~detail:(describe c Matched) ~evidence
          else mk ctx rule Not_matched ~detail:(describe c Not_matched) ~evidence

let interp_tree_exec (r : Rule.tree_rule) =
  let name = r.Rule.tree_common.Rule.name in
  let case_insensitive = r.Rule.case_insensitive in
  {
    te_nodes =
      (fun forest ->
        List.concat_map (fun cp -> nodes_at forest ~config_path:cp ~name) r.Rule.config_paths);
    te_requires =
      (fun forest -> List.for_all (label_exists forest) r.Rule.require_other_configs);
    te_preferred =
      Option.map (fun e values -> expectation_satisfied ~case_insensitive e values) r.Rule.preferred;
    te_non_preferred =
      Option.map (fun e values -> expectation_violated ~case_insensitive e values) r.Rule.non_preferred;
  }

let eval_tree_in ctx rule (r : Rule.tree_rule) = eval_tree_core ctx rule r (interp_tree_exec r)

(* ------------------------------------------------------------------ *)
(* Schema rules                                                        *)
(* ------------------------------------------------------------------ *)

type schema_exec = {
  se_rows : Configtree.Table.t -> (string list list, string) Stdlib.result;
      (** select + project one table; the parsed row query inside is
          file-independent, so compiled once (and the fused engine
          memoizes whole-table results across rules sharing a query) *)
  se_preferred : (string list -> bool) option;
  se_non_preferred : (string list -> string list) option;
}

(* The canonical [se_rows]: parse the query once, then select + project
   per table. Shared by interpreter, compiled and fused constructions so
   error text stays byte-identical. *)
let schema_rows (r : Rule.schema_rule) =
  let query =
    Configtree.Table.parse_query ~constraints:r.Rule.query_constraints
      ~values:r.Rule.query_constraints_value
  in
  fun table ->
    match query with
    | Error e -> Error e
    | Ok q ->
      Configtree.Table.project table ~columns:r.Rule.query_columns
        (Configtree.Table.select table q)

let eval_schema_core ctx rule (r : Rule.schema_rule) (x : schema_exec) =
  let c = r.Rule.schema_common in
  let tables = tables_in_context ctx r.Rule.schema_file_context in
  if tables = [] then
    mk ctx rule Not_applicable
      ~detail:(Printf.sprintf "%s: no schema configuration found" c.Rule.name)
      ~evidence:(parse_errors_in_context ctx r.Rule.schema_file_context)
  else
    let run (path, table) =
      match x.se_rows table with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok projected -> Ok (path, projected)
    in
    let outcomes = List.map run tables in
    (match List.find_opt Result.is_error outcomes with
    | Some (Error e) ->
      let v = err Resilience.Evaluate e in
      mk ctx rule v ~detail:(describe c v) ~evidence:[ e ]
    | Some (Ok _) -> assert false
    | None ->
      let per_file = List.filter_map Result.to_option outcomes in
      let rows = List.concat_map snd per_file in
      let cells = match List.concat rows with [] -> [ "" ] | cells -> cells in
      let evidence =
        List.filter_map
          (fun (path, rows) ->
            if rows = [] then None
            else
              Some
                (Printf.sprintf "%s: %d row(s): %s" path (List.length rows)
                   (String.concat " | " (List.map (String.concat ":") rows))))
          per_file
      in
      let row_count = List.length rows in
      let enough_rows = match r.Rule.expect_rows with Some n -> row_count >= n | None -> true in
      if not enough_rows then
        mk ctx rule Not_matched
          ~detail:(describe c Not_matched)
          ~evidence:(evidence @ [ Printf.sprintf "expected >= %d row(s), found %d" (Option.get r.Rule.expect_rows) row_count ])
      else
        let bad = match x.se_non_preferred with Some f -> f cells | None -> [] in
        if bad <> [] then
          mk ctx rule Not_matched ~detail:(describe c Not_matched)
            ~evidence:(evidence @ [ Printf.sprintf "non-preferred value(s): %s" (String.concat "; " bad) ])
        else
          let ok = match x.se_preferred with Some f -> f cells | None -> true in
          if ok then mk ctx rule Matched ~detail:(describe c Matched) ~evidence
          else mk ctx rule Not_matched ~detail:(describe c Not_matched) ~evidence)

let interp_schema_exec (r : Rule.schema_rule) =
  {
    se_rows = schema_rows r;
    se_preferred = Option.map (fun e cells -> expectation_satisfied e cells) r.Rule.schema_preferred;
    se_non_preferred = Option.map (fun e cells -> expectation_violated e cells) r.Rule.schema_non_preferred;
  }

let eval_schema_in ctx rule (r : Rule.schema_rule) =
  eval_schema_core ctx rule r (interp_schema_exec r)

(* ------------------------------------------------------------------ *)
(* Path rules                                                          *)
(* ------------------------------------------------------------------ *)

let kind_name = function
  | Frames.File.Regular -> "file"
  | Frames.File.Directory -> "directory"
  | Frames.File.Symlink _ -> "symlink"

let eval_path_in ctx rule (r : Rule.path_rule) =
  let c = r.Rule.path_common in
  match Crawler.stat_path ctx.frame r.Rule.path with
  | None ->
    if ctx.configs = [] then
      (* The entity has no configuration in this frame at all: a missing
         path is "entity not installed here", not a finding. *)
      mk ctx rule Not_applicable
        ~detail:(Printf.sprintf "%s: entity not present in this frame" c.Rule.name)
        ~evidence:[]
    else if r.Rule.should_exist then
      mk ctx rule Not_present ~detail:(describe c Not_present) ~evidence:[ r.Rule.path ^ ": absent" ]
    else
      mk ctx rule Matched
        ~detail:(if c.Rule.matched_description <> "" then c.Rule.matched_description
                 else Printf.sprintf "%s is absent, as required" r.Rule.path)
        ~evidence:[ r.Rule.path ^ ": absent" ]
  | Some f ->
    let evidence = [ Format.asprintf "%a" Frames.File.pp f ] in
    if not r.Rule.should_exist then
      mk ctx rule Not_matched
        ~detail:(if c.Rule.not_matched_description <> "" then c.Rule.not_matched_description
                 else Printf.sprintf "%s exists but must not" r.Rule.path)
        ~evidence
    else
      let failures = ref [] in
      (match r.Rule.file_type with
      | Some want when want <> kind_name f.Frames.File.kind ->
        failures := Printf.sprintf "expected a %s, found a %s" want (kind_name f.Frames.File.kind) :: !failures
      | Some _ | None -> ());
      (match r.Rule.ownership with
      | Some want when want <> Frames.File.ownership f ->
        failures := Printf.sprintf "ownership %s, expected %s" (Frames.File.ownership f) want :: !failures
      | Some _ | None -> ());
      (match r.Rule.permission with
      | Some ceiling when f.Frames.File.mode land lnot ceiling land 0o7777 <> 0 ->
        failures :=
          Printf.sprintf "mode %s exceeds ceiling %o" (Frames.File.permission_octal f) ceiling
          :: !failures
      | Some _ | None -> ());
      if !failures = [] then mk ctx rule Matched ~detail:(describe c Matched) ~evidence
      else mk ctx rule Not_matched ~detail:(describe c Not_matched) ~evidence:(evidence @ List.rev !failures)

(* ------------------------------------------------------------------ *)
(* Script rules                                                        *)
(* ------------------------------------------------------------------ *)

type script_exec = {
  sc_plugin : Crawler.plugin option;  (** registry lookup, done once *)
  sc_run : Frames.Frame.t -> Crawler.plugin -> (string, Resilience.failure) Stdlib.result;
      (** how to invoke the plugin under the resilience policy; the
          fused engine routes this through a per-cell shared memo so the
          expensive plugin body runs once per entity evaluation while
          the retry/breaker bookkeeping still replays per rule *)
  sc_nodes : Configtree.Tree.t list -> Configtree.Tree.t list;
      (** all [script_config_paths] hits in the plugin's output forest *)
  sc_preferred : (string list -> bool) option;
  sc_non_preferred : (string list -> string list) option;
}

let eval_script_core ctx rule (r : Rule.script_rule) (x : script_exec) =
  let c = r.Rule.script_common in
  (* An infrastructure fault that exhausted its retry budget (or hit an
     open breaker) either degrades to Not_applicable — when the rule
     declares [on_plugin_failure: degrade] — or surfaces as an
     attributed extract-stage error. *)
  let faulted stage message =
    match r.Rule.on_plugin_failure with
    | Some "degrade" ->
      mk ctx rule Not_applicable
        ~detail:(Printf.sprintf "%s: degraded — %s" c.Rule.name message)
        ~evidence:[]
    | Some _ | None ->
      let v = err stage message in
      mk ctx rule v ~detail:(describe c v) ~evidence:[]
  in
  match x.sc_plugin with
  | None ->
    let v = err Resilience.Extract (Printf.sprintf "unknown plugin %S" r.Rule.plugin) in
    mk ctx rule v ~detail:(describe c v) ~evidence:[]
  | Some plugin -> (
    match x.sc_run ctx.frame plugin with
    | Error (Resilience.Soft msg) -> mk ctx rule Not_applicable ~detail:msg ~evidence:[]
    | Error (Resilience.Faulted { stage; message }) -> faulted stage message
    | Ok output -> (
      let virtual_path = "plugin://" ^ r.Rule.plugin in
      match Normcache.parse ~lens_name:plugin.Crawler.lens_name ~path:virtual_path output with
      | Error msg ->
        let v = err Resilience.Normalize msg in
        mk ctx rule v ~detail:(describe c v) ~evidence:[ output ]
      | Ok (Lenses.Lens.Table _) ->
        let v =
          err Resilience.Normalize
            (Printf.sprintf "plugin %s yields a table; script rules assert on trees" r.Rule.plugin)
        in
        mk ctx rule v ~detail:(describe c v) ~evidence:[]
      | Ok (Lenses.Lens.Tree forest) ->
        let nodes = x.sc_nodes forest in
        let values = List.filter_map (fun (n : Configtree.Tree.t) -> n.value) nodes in
        let evidence =
          List.map (fun v -> Printf.sprintf "%s: %s" virtual_path v) values
        in
        if nodes = [] then
          let verdict = if r.Rule.script_not_present_pass then Matched else Not_present in
          let detail =
            if r.Rule.script_not_present_pass && c.Rule.not_present_description <> "" then
              c.Rule.not_present_description
            else describe c Not_present
          in
          mk ctx rule verdict ~detail ~evidence:[]
        else
          let bad = match x.sc_non_preferred with Some f -> f values | None -> [] in
          if bad <> [] then
            mk ctx rule Not_matched ~detail:(describe c Not_matched)
              ~evidence:(evidence @ [ Printf.sprintf "non-preferred value(s): %s" (String.concat "; " bad) ])
          else
            let ok = match x.sc_preferred with Some f -> f values | None -> true in
            if ok then mk ctx rule Matched ~detail:(describe c Matched) ~evidence
            else mk ctx rule Not_matched ~detail:(describe c Not_matched) ~evidence))

let interp_script_exec (r : Rule.script_rule) =
  {
    sc_plugin = Crawler.find_plugin r.Rule.plugin;
    sc_run = (fun frame plugin -> Resilience.run_plugin ~frame plugin);
    sc_nodes =
      (* Script config_paths are full paths to the asserted leaf. *)
      (fun forest ->
        List.concat_map
          (fun p ->
            match Configtree.Path.parse p with
            | Ok path -> Configtree.Path.find forest path
            | Error _ -> [])
          r.Rule.script_config_paths);
    sc_preferred = Option.map (fun e values -> expectation_satisfied e values) r.Rule.script_preferred;
    sc_non_preferred = Option.map (fun e values -> expectation_violated e values) r.Rule.script_non_preferred;
  }

let eval_script_in ctx rule (r : Rule.script_rule) =
  eval_script_core ctx rule r (interp_script_exec r)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let eval_rule ctx rule =
  if Rule.is_disabled rule then
    mk ctx rule Not_applicable
      ~detail:(Printf.sprintf "%s: disabled" (Rule.name rule))
      ~evidence:[]
  else
    match rule with
    | Rule.Tree r -> eval_tree_in ctx rule r
    | Rule.Schema r -> eval_schema_in ctx rule r
    | Rule.Path r -> eval_path_in ctx rule r
    | Rule.Script r -> eval_script_in ctx rule r
    | Rule.Composite _ ->
      let msg = "composite rules are evaluated by the validator, not the engine" in
      mk ctx rule (err Resilience.Evaluate msg) ~detail:msg ~evidence:[]
    | Rule.Cluster _ ->
      let msg = "cluster rules are evaluated by the validator over the whole fleet, not per frame" in
      mk ctx rule (err Resilience.Evaluate msg) ~detail:msg ~evidence:[]

let eval_entity ctx rules = List.map (eval_rule ctx) rules

let lookup_config_value ctx ~key ~subpath =
  let forests =
    List.filter_map
      (fun (_, parsed) ->
        match parsed with Ok (Lenses.Lens.Tree f) -> Some f | _ -> None)
      ctx.configs
  in
  let try_path forest text =
    match Configtree.Path.parse text with
    | Error _ -> None
    | Ok path -> (
      match Configtree.Path.find_values forest path with
      | v :: _ -> Some v
      | [] -> None)
  in
  let candidates =
    match subpath with
    | Some sp -> [ sp ^ "/" ^ key; sp ^ "/**/" ^ key ]
    | None -> [ key; "**/" ^ key ]
  in
  (* Dotted keys are a single label in sysctl-style trees; the path
     parser treats them as one segment already, so no special case is
     needed beyond trying the candidates in order. *)
  List.find_map (fun forest -> List.find_map (try_path forest) candidates) forests
