type kind = Exact | Substr | Regex
type scope = Any | All

type t = {
  kind : kind;
  scope : scope;
}

let default = { kind = Exact; scope = Any }

let parse_kind = function
  | "exact" -> Ok Exact
  | "substr" | "substring" -> Ok Substr
  | "regex" | "regexp" -> Ok Regex
  | s -> Error (Printf.sprintf "unknown match kind %S (expected exact|substr|regex)" s)

let parse_scope = function
  | "any" -> Ok Any
  | "all" -> Ok All
  | s -> Error (Printf.sprintf "unknown match scope %S (expected any|all)" s)

let parse input =
  let parts = String.split_on_char ',' input |> List.map String.trim |> List.filter (( <> ) "") in
  match parts with
  | [] -> Ok default
  | [ one ] -> (
    match parse_kind one with
    | Ok kind -> Ok { default with kind }
    | Error _ -> (
      match parse_scope one with
      | Ok scope -> Ok { default with scope }
      | Error _ -> Error (Printf.sprintf "unknown match spec %S" one)))
  | [ k; s ] -> (
    match (parse_kind k, parse_scope s) with
    | Ok kind, Ok scope -> Ok { kind; scope }
    | Error e, _ | _, Error e -> Error e)
  | _ -> Error (Printf.sprintf "malformed match spec %S (expected \"kind,scope\")" input)

let kind_to_string = function Exact -> "exact" | Substr -> "substr" | Regex -> "regex"
let scope_to_string = function Any -> "any" | All -> "all"
let to_string t = Printf.sprintf "%s,%s" (kind_to_string t.kind) (scope_to_string t.scope)

(* Rule values are a small fixed vocabulary per ruleset; compiling each
   regex once mirrors engines that compile patterns at load time. The
   mutex keeps the memo safe when evaluation is sharded across
   domains. *)
let regex_cache : (string, Re.re option) Hashtbl.t = Hashtbl.create 64
let regex_cache_mutex = Mutex.create ()

let compile_cached pattern =
  Mutex.lock regex_cache_mutex;
  match Hashtbl.find_opt regex_cache pattern with
  | Some cached ->
    Mutex.unlock regex_cache_mutex;
    cached
  | None ->
    Mutex.unlock regex_cache_mutex;
    let compiled = try Some (Re.compile (Re.Pcre.re pattern)) with _ -> None in
    Mutex.lock regex_cache_mutex;
    Hashtbl.replace regex_cache pattern compiled;
    Mutex.unlock regex_cache_mutex;
    compiled

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  if nl = 0 then true
  else
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    go 0

let value_matches ?(case_insensitive = false) kind ~rule_value ~config_value =
  let rule_value, config_value =
    if case_insensitive then
      (String.lowercase_ascii rule_value, String.lowercase_ascii config_value)
    else (rule_value, config_value)
  in
  match kind with
  | Exact -> String.equal rule_value config_value
  | Substr -> contains ~needle:rule_value config_value
  | Regex -> (
    match compile_cached rule_value with
    | Some re -> Re.execp re config_value
    | None -> false)

(* Compiled form: rule values case-folded and regexes compiled once, at
   rule-compile time, leaving only the per-value work in the returned
   closure. Law (checked by the differential property tests):
   [compile ?case_insensitive t ~rule_values v] equals
   [satisfies ?case_insensitive t ~rule_values ~config_value:v]. *)
type compiled = string -> bool

let compile ?(case_insensitive = false) t ~rule_values : compiled =
  match rule_values with
  | [] -> fun _ -> false
  | _ ->
    let fold v = if case_insensitive then String.lowercase_ascii v else v in
    let one rv =
      let rv = fold rv in
      match t.kind with
      | Exact -> fun cv -> String.equal rv cv
      | Substr -> fun cv -> contains ~needle:rv cv
      | Regex -> (
        match compile_cached rv with
        | Some re -> fun cv -> Re.execp re cv
        | None -> fun _ -> false)
    in
    let fns = List.map one rule_values in
    let combine = match t.scope with Any -> List.exists | All -> List.for_all in
    fun config_value ->
      let cv = fold config_value in
      combine (fun f -> f cv) fns

let satisfies ?case_insensitive t ~rule_values ~config_value =
  match rule_values with
  | [] -> false
  | _ ->
    let matches rv = value_matches ?case_insensitive t.kind ~rule_value:rv ~config_value in
    (match t.scope with
    | Any -> List.exists matches rule_values
    | All -> List.for_all matches rule_values)
