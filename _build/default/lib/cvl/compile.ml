(* Ahead-of-time rule compilation.

   The loader produces declarative rule records; the engine's
   interpreter re-derives everything executable about them — parsed
   paths, resolved match specs, compiled regexes, plugin lookups, row
   queries, composite ASTs — on every (entity, frame, rule) evaluation.
   [compile] does that derivation exactly once per [load_rules],
   lowering each rule into a *program*: an execution plan (see
   {!Engine.tree_exec} and friends) closed over pre-parsed
   [Configtree.Path.t]s, [Matcher.compile]d expectations, and tree
   queries routed through the per-forest {!Configtree.Index}.

   Malformed path literals — which the interpreter swallows silently,
   yielding no nodes on every single run — surface here as compile
   diagnostics. Runtime behaviour is deliberately unchanged (a program
   with a malformed path still contributes no nodes, byte-identical to
   the interpreter); the diagnostics are reported alongside, so
   [validate] can show them before the run.

   Programs are also indexed by tag so [run_loaded ~tags] dispatches
   via hash lookups instead of rescanning every rule's tag list. *)

type diagnostic = {
  entity : string;
  rule : string;
  field : string;  (* the CVL keyword holding the literal *)
  literal : string;
  message : string;
}

let diagnostic_to_string d =
  Printf.sprintf "%s/%s: %s %S: %s" d.entity d.rule d.field d.literal d.message

type program = {
  rule : Rule.t;
  ordinal : int;  (* position among the entity's plain rules *)
  exec : Engine.entity_ctx -> Engine.result;
}

type entity_programs = {
  entry : Manifest.entry;
  rules : Rule.t list;  (* the original loaded list, composites included *)
  programs : program list;  (* plain rules, original order *)
  composites : (Rule.t * (Expr.t, string) result) list;
      (* composite rules with their expression pre-parsed *)
  clusters : Cluster.lowered list;  (* fleet-scoped rules, pre-planned *)
  by_tag : (string, int list) Hashtbl.t;  (* tag -> program ordinals, ascending *)
}

type t = {
  entities : entity_programs list;
  diagnostics : diagnostic list;
}

(* ------------------------------------------------------------------ *)
(* Path literal compilation                                            *)
(* ------------------------------------------------------------------ *)

(* The compile-time parser behind both the [config_path] lowering here
   and cvlint's CVL060 check: a literal is good iff [Path.parse]
   accepts it. *)
let check_path_literal = Configtree.Path.parse

(* Diagnostics accumulate into a per-[compile]-call ref threaded through
   the lowering functions (no global state: compiles may run on any
   domain). *)
type notes = diagnostic list ref

let note (notes : notes) ~entity ~rule ~field ~literal message =
  notes := { entity; rule; field; literal; message } :: !notes

(* Tree-rule config paths address the *section* holding the rule-named
   key, so the executable path is [config_path ^ "/" ^ name]. *)
let tree_path_texts (r : Rule.tree_rule) =
  let name = r.Rule.tree_common.Rule.name in
  List.map (fun cp -> (cp, if cp = "" then name else cp ^ "/" ^ name)) r.Rule.config_paths

let tree_paths notes ~entity (r : Rule.tree_rule) =
  let name = r.Rule.tree_common.Rule.name in
  List.filter_map
    (fun (cp, text) ->
      match check_path_literal text with
      | Ok path -> Some path
      | Error e ->
        note notes ~entity ~rule:name ~field:"config_path" ~literal:cp e;
        None)
    (tree_path_texts r)

(* Silent variant for re-lowering by [Fuse]: [compile] already recorded
   the diagnostics, so the planner just wants the well-formed paths. *)
let tree_query_paths (r : Rule.tree_rule) =
  List.filter_map
    (fun (_, text) -> Result.to_option (check_path_literal text))
    (tree_path_texts r)

let script_paths notes ~entity (r : Rule.script_rule) =
  let name = r.Rule.script_common.Rule.name in
  List.filter_map
    (fun p ->
      match check_path_literal p with
      | Ok path -> Some path
      | Error e ->
        note notes ~entity ~rule:name ~field:"config_path" ~literal:p e;
        None)
    r.Rule.script_config_paths

let script_query_paths (r : Rule.script_rule) =
  List.filter_map
    (fun p -> Result.to_option (check_path_literal p))
    r.Rule.script_config_paths

(* [require_other_configs] labels are path expressions probed at the
   roots and anywhere ([**/label]); a malformed label can never be
   satisfied (the interpreter's [label_exists] is [false] for it), so
   the whole gate compiles to a constant. *)
let requires_gate notes ~entity ~rule labels =
  let parsed =
    List.map
      (fun label ->
        match check_path_literal label with
        | Ok p -> Some (p, Configtree.Path.Deep :: p)
        | Error e ->
          note notes ~entity ~rule ~field:"require_other_configs" ~literal:label e;
          None)
      labels
  in
  if List.exists Option.is_none parsed then fun _ -> false
  else
    let pairs = List.filter_map Fun.id parsed in
    fun forest ->
      let idx = Configtree.Index.for_forest forest in
      List.for_all
        (fun (rooted, deep) ->
          Configtree.Index.exists idx rooted || Configtree.Index.exists idx deep)
        pairs

(* Silent [requires_gate] lowering for [Fuse]: [None] means some label
   is malformed, i.e. the gate is the constant [false]. *)
let requires_pairs (r : Rule.tree_rule) =
  let parsed =
    List.map
      (fun label ->
        match check_path_literal label with
        | Ok p -> Some (p, Configtree.Path.Deep :: p)
        | Error _ -> None)
      r.Rule.require_other_configs
  in
  if List.exists Option.is_none parsed then None
  else Some (List.filter_map Fun.id parsed)

let indexed_find paths forest =
  let idx = Configtree.Index.for_forest forest in
  List.concat_map (fun p -> Configtree.Index.find idx p) paths

let compiled_expectation ?case_insensitive (e : Rule.expectation) =
  Matcher.compile ?case_insensitive e.Rule.match_spec ~rule_values:e.Rule.values

let preferred_fn ?case_insensitive e =
  Option.map
    (fun e ->
      let sat = compiled_expectation ?case_insensitive e in
      fun values -> List.for_all sat values)
    e

let non_preferred_fn ?case_insensitive e =
  Option.map
    (fun e ->
      let sat = compiled_expectation ?case_insensitive e in
      fun values -> List.filter sat values)
    e

(* ------------------------------------------------------------------ *)
(* Per-rule lowering                                                   *)
(* ------------------------------------------------------------------ *)

let tree_exec notes ~entity (r : Rule.tree_rule) : Engine.tree_exec =
  let case_insensitive = r.Rule.case_insensitive in
  let paths = tree_paths notes ~entity r in
  {
    Engine.te_nodes = indexed_find paths;
    te_requires =
      requires_gate notes ~entity ~rule:r.Rule.tree_common.Rule.name
        r.Rule.require_other_configs;
    te_preferred = preferred_fn ~case_insensitive r.Rule.preferred;
    te_non_preferred = non_preferred_fn ~case_insensitive r.Rule.non_preferred;
  }

let schema_exec (r : Rule.schema_rule) : Engine.schema_exec =
  {
    Engine.se_rows = Engine.schema_rows r;
    se_preferred = preferred_fn r.Rule.schema_preferred;
    se_non_preferred = non_preferred_fn r.Rule.schema_non_preferred;
  }

let script_exec notes ~entity (r : Rule.script_rule) : Engine.script_exec =
  let paths = script_paths notes ~entity r in
  {
    Engine.sc_plugin = Crawler.find_plugin r.Rule.plugin;
    sc_run = (fun frame plugin -> Resilience.run_plugin ~frame plugin);
    sc_nodes = indexed_find paths;
    sc_preferred = preferred_fn r.Rule.script_preferred;
    sc_non_preferred = non_preferred_fn r.Rule.script_non_preferred;
  }

let rule_exec notes ~entity rule =
  if Rule.is_disabled rule then fun ctx -> Engine.eval_rule ctx rule
  else
    match rule with
    | Rule.Tree r ->
      let x = tree_exec notes ~entity r in
      fun ctx -> Engine.eval_tree_core ctx rule r x
    | Rule.Schema r ->
      let x = schema_exec r in
      fun ctx -> Engine.eval_schema_core ctx rule r x
    | Rule.Path r -> fun ctx -> Engine.eval_path_in ctx rule r
    | Rule.Script r ->
      let x = script_exec notes ~entity r in
      fun ctx -> Engine.eval_script_core ctx rule r x
    | Rule.Composite _ | Rule.Cluster _ ->
      (* Composites and cluster rules are dispatched by the validator
         after all plain results (resp. all frame contexts) exist;
         evaluating one as a program yields the same attributed error
         as the interpreter. *)
      fun ctx -> Engine.eval_rule ctx rule

let is_composite = function
  | Rule.Composite _ -> true
  | Rule.Tree _ | Rule.Schema _ | Rule.Path _ | Rule.Script _ | Rule.Cluster _ -> false

let is_cluster = function
  | Rule.Cluster _ -> true
  | Rule.Tree _ | Rule.Schema _ | Rule.Path _ | Rule.Script _ | Rule.Composite _ -> false

let compile_entity notes ((entry : Manifest.entry), rules) =
  let entity = entry.Manifest.entity in
  let plain = List.filter (fun r -> not (is_composite r || is_cluster r)) rules in
  let programs =
    List.mapi (fun i rule -> { rule; ordinal = i; exec = rule_exec notes ~entity rule }) plain
  in
  let composites =
    List.filter_map
      (function
        | Rule.Composite r as rule -> Some (rule, Expr.parse r.Rule.expression)
        | _ -> None)
      rules
  in
  let clusters =
    List.filter_map
      (function
        | Rule.Cluster r as rule ->
          let lowered, issues = Cluster.lower rule r in
          List.iter
            (fun (i : Cluster.issue) ->
              note notes ~entity ~rule:(Rule.name rule) ~field:i.Cluster.field
                ~literal:i.Cluster.literal i.Cluster.message)
            issues;
          Some lowered
        | _ -> None)
      rules
  in
  let by_tag = Hashtbl.create 16 in
  List.iter
    (fun p ->
      List.iter
        (fun tag ->
          match Hashtbl.find_opt by_tag tag with
          | None -> Hashtbl.add by_tag tag [ p.ordinal ]
          | Some os -> Hashtbl.replace by_tag tag (p.ordinal :: os))
        (Rule.tags p.rule))
    programs;
  Hashtbl.filter_map_inplace (fun _ os -> Some (List.rev os)) by_tag;
  { entry; rules; programs; composites; clusters; by_tag }

let compile rules =
  let notes : notes = ref [] in
  let entities = List.map (compile_entity notes) rules in
  { entities; diagnostics = List.rev !notes }

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let tag_selected tags rule = tags = [] || List.exists (fun t -> Rule.has_tag rule t) tags

(* Programs carrying at least one of [tags], in original rule order —
   via the ordinal index rather than rescanning each rule's tag list.
   An empty [tags] selects everything (no filtering pass at all). *)
let select ~tags ep =
  if tags = [] then (ep.programs, ep.composites)
  else begin
    let wanted = Hashtbl.create 32 in
    List.iter
      (fun tag ->
        match Hashtbl.find_opt ep.by_tag tag with
        | None -> ()
        | Some ordinals -> List.iter (fun o -> Hashtbl.replace wanted o ()) ordinals)
      tags;
    ( List.filter (fun p -> Hashtbl.mem wanted p.ordinal) ep.programs,
      List.filter (fun (rule, _) -> tag_selected tags rule) ep.composites )
  end

(* Lowered cluster rules carrying at least one of [tags], original
   order. Clusters are few, so a linear tag scan is fine here. *)
let select_clusters ~tags ep =
  List.filter (fun (lw : Cluster.lowered) -> tag_selected tags lw.Cluster.rule) ep.clusters

let run_program ctx (p : program) = p.exec ctx
