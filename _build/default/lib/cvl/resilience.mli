(** Resilience policy for the validation pipeline: bounded retries with
    deterministic backoff, a per-plugin circuit breaker, exception
    containment counters, and the hook points {!Faultsim} uses to
    inject faults.

    The production deployment the paper describes scans tens of
    thousands of containers where extraction is the flaky stage —
    plugins talk to live runtimes, files vanish mid-scan. The policy
    here makes a run degrade instead of abort: transient faults are
    retried, persistently failing plugins are short-circuited, and
    every contained failure is attributed to the (entity, rule, frame)
    it belongs to as an [Engine_error] result.

    All time is simulated (an atomic millisecond counter advanced by
    {!sleep_ms}), so retry backoff is reproducible and tests never
    sleep for real. *)

(** Pipeline stage a failure is attributed to. *)
type stage =
  | Extract  (** crawling files, running plugins *)
  | Normalize  (** lens parsing of extracted content *)
  | Evaluate  (** rule evaluation over normalized trees *)

val stage_to_string : stage -> string
(** ["extract"], ["normalize"], ["evaluate"]. *)

type fault_info = { stage : stage; transient : bool; message : string }

exception Fault of fault_info
(** Raised by injection hooks (and catchable by the validator's
    containment wrappers) to signal an attributed infrastructure
    fault. *)

type policy = { retries : int; backoff_ms : int; breaker_threshold : int }
(** [retries] extra attempts after the first failure; [backoff_ms]
    initial backoff, doubling per retry (simulated); the breaker opens
    after [breaker_threshold] consecutive exhausted-retry failures of
    one plugin. *)

val default_policy : policy
(** [{ retries = 2; backoff_ms = 50; breaker_threshold = 3 }] *)

val set_policy : policy -> unit
val policy : unit -> policy

(** {2 Simulated clock} *)

val now_ms : unit -> int
val sleep_ms : int -> unit

(** {2 Counters}

    Monotonic across runs; snapshot with {!counters} before and after a
    run and subtract with {!diff_counters}. *)

type counters = {
  retries : int;  (** retry attempts performed *)
  breaker_trips : int;  (** breakers opened *)
  contained : int;  (** exceptions converted to [Engine_error] results *)
  faults_injected : int;  (** faults fired by an armed {!Faultsim} plan *)
  simulated_ms : int;  (** simulated clock value *)
}

val counters : unit -> counters
val diff_counters : before:counters -> after:counters -> counters

val note_contained : unit -> unit
(** Called by the validator when it converts an escaped exception into
    an [Engine_error] result. *)

val note_injected : unit -> unit
(** Called by {!Faultsim} each time an armed fault actually fires. *)

(** {2 Circuit breaker} *)

val begin_run : unit -> unit
(** Reset breaker state. The validator calls this at the start of every
    run: breakers are per-(plugin, run), as a deployment scan is the
    unit after which a flaky backend deserves a fresh chance. *)

val breaker_open : string -> bool
(** Whether the named plugin's breaker is open. *)

(** {2 Fault-injection hooks}

    Installed by {!Faultsim.arm}, cleared by {!Faultsim.disarm}; all
    [None] in normal operation. Hooks must be pure functions of their
    arguments (plus the plan's seed) — they are called concurrently
    from pool workers. *)

type read_hook = frame_id:string -> path:string -> string -> (string, fault_info) result
(** Applied to every extracted file's content in [Engine.build_ctx]:
    may corrupt or truncate the content, simulate latency via
    {!sleep_ms}, or fail the read outright. *)

type plugin_hook = plugin:string -> frame_id:string -> attempt:int -> string option
(** Consulted before each plugin attempt; [Some msg] fails that attempt
    with [msg] without running the plugin (transient faults return
    [Some] for the first N attempts only; dead plugins always). *)

type eval_hook = entity:string -> rule:string -> frame_id:string -> unit
(** Called before each rule evaluation; may raise {!Fault}. *)

val set_read_hook : read_hook option -> unit
val set_plugin_hook : plugin_hook option -> unit
val set_eval_hook : eval_hook option -> unit
val clear_hooks : unit -> unit

val apply_read_hook :
  frame_id:string -> path:string -> string -> (string, fault_info) result
(** Identity when no hook is installed. *)

val apply_eval_hook : entity:string -> rule:string -> frame_id:string -> unit
(** No-op when no hook is installed. *)

(** {2 Resilient plugin execution} *)

(** How a plugin invocation failed. [Soft] is the plugin's own [Error]
    answer ("not applicable on this frame") — no retry, no breaker, so
    clean runs are unchanged. [Faulted] is an infrastructure failure
    that survived the retry budget. *)
type failure = Soft of string | Faulted of { stage : stage; message : string }

type plugin_memo
(** Cross-rule memo of raw plugin *body* outcomes, keyed by plugin name.
    The fused engine hands one memo to every rule of one (entity, frame)
    evaluation so the expensive plugin body runs once; the retry/breaker
    state machine still replays in full on every call, so shared calls
    produce byte-identical verdicts and health counters. A memo must not
    outlive the (entity, frame) cell it was created for. *)

val plugin_memo : unit -> plugin_memo

val run_plugin :
  ?shared:plugin_memo -> frame:Frames.Frame.t -> Crawler.plugin -> (string, failure) result
(** Run a plugin under the policy: short-circuit if its breaker is
    open; otherwise attempt up to [1 + retries] times with doubling
    simulated backoff, counting retries, and record exhausted failures
    against the breaker. With [?shared], the plugin body's raw outcome
    is served from (and recorded into) the memo; all policy bookkeeping
    is unchanged. *)

(** {2 Run health} *)

type health = {
  extract_errors : int;
  normalize_errors : int;
  evaluate_errors : int;
  retries : int;
  breaker_trips : int;
  contained : int;
  faults_injected : int;
  simulated_ms : int;
  degraded : bool;
      (** errors, trips, or contained exceptions occurred; retries that
          ultimately succeeded do not degrade a run *)
}

val empty_health : health

val make_health :
  extract_errors:int -> normalize_errors:int -> evaluate_errors:int -> counters -> health
