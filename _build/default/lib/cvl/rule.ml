type common = {
  name : string;
  description : string;
  tags : string list;
  severity : string;
  matched_description : string;
  not_matched_description : string;
  not_present_description : string;
  suggested_action : string;
  disabled : bool;
}

let common ?(description = "") ?(tags = []) ?(severity = "medium") ?(matched = "")
    ?(not_matched = "") ?(not_present = "") ?(suggested_action = "") ?(disabled = false) name =
  {
    name;
    description;
    tags;
    severity;
    matched_description = matched;
    not_matched_description = not_matched;
    not_present_description = not_present;
    suggested_action;
    disabled;
  }

type expectation = {
  values : string list;
  match_spec : Matcher.t;
}

type tree_rule = {
  tree_common : common;
  config_paths : string list;
  preferred : expectation option;
  non_preferred : expectation option;
  file_context : string list;
  require_other_configs : string list;
  value_separator : string option;
  case_insensitive : bool;
  check_presence_only : bool;
  not_present_pass : bool;
}

type schema_rule = {
  schema_common : common;
  query_constraints : string;
  query_constraints_value : string list;
  query_columns : string list;
  schema_preferred : expectation option;
  schema_non_preferred : expectation option;
  schema_file_context : string list;
  expect_rows : int option;
}

type path_rule = {
  path_common : common;
  path : string;
  ownership : string option;
  permission : int option;
  should_exist : bool;
  file_type : string option;
}

type script_rule = {
  script_common : common;
  plugin : string;
  script_config_paths : string list;
  script_preferred : expectation option;
  script_non_preferred : expectation option;
  script_not_present_pass : bool;
  on_plugin_failure : string option;
}

type composite_rule = {
  composite_common : common;
  expression : string;
}

type cluster_rule = {
  cluster_common : common;
  aggregate : string;
  cluster_config_paths : string list;
  cluster_file_context : string list;
  referent_config_path : string option;
  cluster_value_separator : string option;
  min_frames : int option;
  max_frames : int option;
  group_by : string option;
}

type t =
  | Tree of tree_rule
  | Schema of schema_rule
  | Path of path_rule
  | Script of script_rule
  | Composite of composite_rule
  | Cluster of cluster_rule

let common_of = function
  | Tree r -> r.tree_common
  | Schema r -> r.schema_common
  | Path r -> r.path_common
  | Script r -> r.script_common
  | Composite r -> r.composite_common
  | Cluster r -> r.cluster_common

let name t = (common_of t).name
let tags t = (common_of t).tags

let kind_to_string = function
  | Tree _ -> "config-tree"
  | Schema _ -> "schema"
  | Path _ -> "path"
  | Script _ -> "script"
  | Composite _ -> "composite"
  | Cluster _ -> "cluster"

let is_disabled t = (common_of t).disabled

let with_common t c =
  match t with
  | Tree r -> Tree { r with tree_common = c }
  | Schema r -> Schema { r with schema_common = c }
  | Path r -> Path { r with path_common = c }
  | Script r -> Script { r with script_common = c }
  | Composite r -> Composite { r with composite_common = c }
  | Cluster r -> Cluster { r with cluster_common = c }

let has_tag t tag = List.exists (String.equal tag) (tags t)
