type attr = Default | Value | Present

type ref_ = {
  entity : string;
  item : string;
  subpath : string option;
  attr : attr;
}

type op = Eq | Neq

type t =
  | Ref of ref_
  | Cmp of ref_ * op * string
  | Not of t
  | And of t * t
  | Or of t * t

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | Tref of string
  | Tstring of string
  | Tand
  | Tor
  | Tnot
  | Teq
  | Tneq
  | Tlparen
  | Trparen

let is_ref_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' | '/' | '[' | ']' | ':' | '*' -> true
  | _ -> false

let tokenize input =
  let n = String.length input in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '&' when i + 1 < n && input.[i + 1] = '&' -> go (i + 2) (Tand :: acc)
      | '|' when i + 1 < n && input.[i + 1] = '|' -> go (i + 2) (Tor :: acc)
      | '=' when i + 1 < n && input.[i + 1] = '=' -> go (i + 2) (Teq :: acc)
      | '!' when i + 1 < n && input.[i + 1] = '=' -> go (i + 2) (Tneq :: acc)
      | '!' -> go (i + 1) (Tnot :: acc)
      | '(' -> go (i + 1) (Tlparen :: acc)
      | ')' -> go (i + 1) (Trparen :: acc)
      | '"' ->
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then Error "unterminated string literal"
          else if input.[j] = '"' then begin
            Buffer.add_string buf "";
            Ok (j + 1)
          end
          else if input.[j] = '\\' && j + 1 < n then begin
            Buffer.add_char buf input.[j + 1];
            str (j + 2)
          end
          else begin
            Buffer.add_char buf input.[j];
            str (j + 1)
          end
        in
        (match str (i + 1) with
        | Error _ as e -> e
        | Ok next -> go next (Tstring (Buffer.contents buf) :: acc))
      | c when is_ref_char c ->
        (* A single '=' is part of a ref only in the CONFIGPATH=[...]
           form; '==' always terminates the ref. *)
        let rec ref_end j =
          if j >= n then j
          else if input.[j] = '=' then
            if j + 1 < n && input.[j + 1] = '[' then ref_end (j + 1) else j
          else if is_ref_char input.[j] then ref_end (j + 1)
          else j
        in
        let j = ref_end i in
        go j (Tref (String.sub input i (j - i)) :: acc)
      | c -> Error (Printf.sprintf "unexpected character %C in composite expression" c)
  in
  go 0 []

(* ------------------------------------------------------------------ *)
(* Reference parsing                                                   *)
(* ------------------------------------------------------------------ *)

let strip_suffix ~suffix s =
  let sl = String.length suffix and l = String.length s in
  if l >= sl && String.sub s (l - sl) sl = suffix then Some (String.sub s 0 (l - sl)) else None

let parse_ref text =
  match String.index_opt text '.' with
  | None -> Error (Printf.sprintf "reference %S lacks an entity qualifier" text)
  | Some i ->
    let entity = String.sub text 0 i in
    let rest = String.sub text (i + 1) (String.length text - i - 1) in
    if entity = "" || rest = "" then Error (Printf.sprintf "malformed reference %S" text)
    else
      let rest, attr =
        match strip_suffix ~suffix:".VALUE" rest with
        | Some r -> (r, Value)
        | None -> (
          match strip_suffix ~suffix:".PRESENT" rest with
          | Some r -> (r, Present)
          | None -> (rest, Default))
      in
      (* Optional .CONFIGPATH=[...] segment. *)
      let marker = ".CONFIGPATH=[" in
      let item, subpath =
        match
          let ml = String.length marker and rl = String.length rest in
          let rec find k = if k + ml > rl then None else if String.sub rest k ml = marker then Some k else find (k + 1) in
          find 0
        with
        | Some k ->
          let after = String.sub rest (k + String.length marker) (String.length rest - k - String.length marker) in
          (match String.index_opt after ']' with
          | Some close when close = String.length after - 1 ->
            (String.sub rest 0 k, Some (String.sub after 0 close))
          | Some _ | None -> (rest, None))
        | None -> (rest, None)
      in
      if item = "" then Error (Printf.sprintf "malformed reference %S" text)
      else Ok { entity; item; subpath; attr }

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Syntax of string

let parse input =
  match tokenize input with
  | Error e -> Error e
  | Ok tokens -> (
    let tokens = ref tokens in
    let peek () = match !tokens with [] -> None | t :: _ -> Some t in
    let advance () = match !tokens with [] -> () | _ :: rest -> tokens := rest in
    let rec expr () = or_expr ()
    and or_expr () =
      let left = and_expr () in
      let rec go left =
        match peek () with
        | Some Tor ->
          advance ();
          go (Or (left, and_expr ()))
        | _ -> left
      in
      go left
    and and_expr () =
      let left = unary () in
      let rec go left =
        match peek () with
        | Some Tand ->
          advance ();
          go (And (left, unary ()))
        | _ -> left
      in
      go left
    and unary () =
      match peek () with
      | Some Tnot ->
        advance ();
        Not (unary ())
      | Some Tlparen ->
        advance ();
        let inner = expr () in
        (match peek () with
        | Some Trparen ->
          advance ();
          inner
        | _ -> raise (Syntax "expected ')'"))
      | Some (Tref text) -> (
        advance ();
        let r = match parse_ref text with Ok r -> r | Error e -> raise (Syntax e) in
        match peek () with
        | Some Teq ->
          advance ();
          (match peek () with
          | Some (Tstring s) ->
            advance ();
            Cmp (r, Eq, s)
          | _ -> raise (Syntax "expected a quoted string after '=='"))
        | Some Tneq ->
          advance ();
          (match peek () with
          | Some (Tstring s) ->
            advance ();
            Cmp (r, Neq, s)
          | _ -> raise (Syntax "expected a quoted string after '!='"))
        | _ -> Ref r)
      | Some (Tstring _) -> raise (Syntax "string literal outside a comparison")
      | Some (Tand | Tor | Teq | Tneq | Trparen) | None ->
        raise (Syntax "expected a reference, '!' or '('")
    in
    match expr () with
    | ast -> (
      match peek () with
      | None -> Ok ast
      | Some _ -> Error "trailing tokens after expression")
    | exception Syntax msg -> Error msg)

let parse_exn input =
  match parse input with
  | Ok ast -> ast
  | Error msg -> invalid_arg (Printf.sprintf "Expr.parse_exn: %s" msg)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let ref_to_string r =
  let base = r.entity ^ "." ^ r.item in
  let base =
    match r.subpath with
    | Some p -> Printf.sprintf "%s.CONFIGPATH=[%s]" base p
    | None -> base
  in
  match r.attr with
  | Default -> base
  | Value -> base ^ ".VALUE"
  | Present -> base ^ ".PRESENT"

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* Precedence-aware printing: parentheses appear exactly where the
   grammar needs them, so chains print flat ("a && b && c"). *)
let rec or_string = function
  (* The parser is left-associative, so only left children may print
     unparenthesized at the same level — that keeps to_string/parse a
     true round trip on every tree shape. *)
  | Or (a, b) -> Printf.sprintf "%s || %s" (or_string a) (and_string b)
  | e -> and_string e

and and_string = function
  | And (a, b) -> Printf.sprintf "%s && %s" (and_string a) (unary_string b)
  | (Or _) as e -> "(" ^ or_string e ^ ")"
  | e -> unary_string e

and unary_string = function
  | Not e -> "!" ^ unary_string e
  | Ref r -> ref_to_string r
  | Cmp (r, Eq, s) -> Printf.sprintf "%s == %s" (ref_to_string r) (quote s)
  | Cmp (r, Neq, s) -> Printf.sprintf "%s != %s" (ref_to_string r) (quote s)
  | (And _ | Or _) as e -> "(" ^ or_string e ^ ")"

let to_string = or_string

let rec entities = function
  | Ref r | Cmp (r, _, _) -> [ r.entity ]
  | Not e -> entities e
  | And (a, b) | Or (a, b) -> entities a @ entities b

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

type env = {
  lookup_rule : entity:string -> rule:string -> bool option;
  lookup_config : entity:string -> key:string -> subpath:string option -> string option;
}

let truthy_value v =
  match String.lowercase_ascii (String.trim v) with
  | "" | "0" | "false" | "no" | "off" -> false
  | _ -> true

let ref_truthy env r =
  match r.attr with
  | Present -> env.lookup_config ~entity:r.entity ~key:r.item ~subpath:r.subpath <> None
  | Value -> (
    match env.lookup_config ~entity:r.entity ~key:r.item ~subpath:r.subpath with
    | Some v -> truthy_value v
    | None -> false)
  | Default -> (
    match env.lookup_rule ~entity:r.entity ~rule:r.item with
    | Some matched -> matched
    | None -> (
      match env.lookup_config ~entity:r.entity ~key:r.item ~subpath:r.subpath with
      | Some v -> truthy_value v
      | None -> false))

let rec eval env = function
  | Ref r -> ref_truthy env r
  | Cmp (r, op, literal) -> (
    match env.lookup_config ~entity:r.entity ~key:r.item ~subpath:r.subpath with
    | None -> false
    | Some v -> ( match op with Eq -> String.equal v literal | Neq -> not (String.equal v literal)))
  | Not e -> not (eval env e)
  | And (a, b) -> eval env a && eval env b
  | Or (a, b) -> eval env a || eval env b
