(** The composite-rule expression language (paper Listing 1):

    {v
    composite_rule: mysql.ssl-ca.CONFIGPATH=[mysqld].VALUE == "/etc/mysql/cacert.pem"
                    && !sysctl.net.ipv4.ip_forward && nginx.listen
    v}

    Grammar:
    {v
    expr    := or
    or      := and ('||' and)*
    and     := unary ('&&' unary)*
    unary   := '!' unary | '(' expr ')' | atom
    atom    := ref (('==' | '!=') quoted-string)?
    ref     := entity '.' item ('.CONFIGPATH=[' path ']')? ('.VALUE' | '.PRESENT')?
    v}

    Atom semantics, matching §3.1's "logical conjunction/disjunction
    over the per-entity rule evaluations":
    - a bare [entity.item] first resolves as {e that entity's rule
      named item}: truthy iff the rule matched. When no such rule
      exists it falls back to a configuration lookup: truthy iff the
      config exists and its value is not one of
      ["", "0", "false", "no", "off"].
    - [.PRESENT] forces the configuration-existence reading.
    - [.VALUE] (with an optional [.CONFIGPATH=[section]] scoping the
      lookup) reads the configuration value for comparison; a
      comparison against a missing value is false for both [==] and
      [!=] (absence is reported by the per-entity rule, not smuggled
      through a composite). *)

type attr = Default | Value | Present

type ref_ = {
  entity : string;
  item : string;  (** rule name or config key (dots allowed) *)
  subpath : string option;  (** CONFIGPATH scope, e.g. ["mysqld"] *)
  attr : attr;
}

type op = Eq | Neq

type t =
  | Ref of ref_
  | Cmp of ref_ * op * string
  | Not of t
  | And of t * t
  | Or of t * t

val parse : string -> (t, string) result
val parse_exn : string -> t

(** Render back to CVL syntax ([parse (to_string e)] re-parses to an
    equal AST — checked by property tests). *)
val to_string : t -> string

(** Entities referenced anywhere in the expression. *)
val entities : t -> string list

type env = {
  lookup_rule : entity:string -> rule:string -> bool option;
      (** [Some true] iff that entity's rule matched; [None] when the
          entity has no rule of that name *)
  lookup_config : entity:string -> key:string -> subpath:string option -> string option;
      (** configuration value lookup in the entity's normalized form *)
}

val truthy_value : string -> bool
val eval : env -> t -> bool
