(** Remediation: derive configuration fixes from the rules themselves.

    Because CVL rules are declarative — they state the preferred value,
    the offending values, the required rows, the permission ceiling —
    most violations mechanically determine their own fix. This module
    turns validation findings into frame edits and re-renders the
    touched files through the same lenses that parsed them (the benefit
    the paper's Section 6 anticipates from bidirectional Augeas
    lenses).

    Remediation is {e advisory}: it produces a candidate configuration
    to review, not a guaranteed-safe change. Synthesized schema rows use
    ["-"] placeholders for cells the rule does not determine (e.g. the
    device of a missing /tmp partition line).

    What is fixed:
    - tree rules: the offending key is set to the first preferred value
      (for [exact]/[substr] expectations, or a value recovered from a
      backquoted `key value` snippet in [suggested_action] for regex
      expectations); keys matching only [non_preferred] with
      [not_present_pass] are removed; [check_presence_only] keys are
      inserted.
    - path rules: chmod to the ceiling, chown to the required owner;
      a file that must not exist is removed.
    - schema rules: a failing single-column projection is rewritten
      ([substr] expectations append with [','], [exact] replace); a
      missing row is synthesized from the query's [=] bindings.

    What is skipped (with a reason in the report): script rules (the
    fix lives in runtime state, not a file), composite rules (fixed
    transitively by their atoms), rules whose expectation cannot be
    inverted, and files whose lens has no renderer. *)

type outcome =
  | Fixed of string  (** human description of the edit *)
  | Skipped of string  (** why no edit was derived *)

type report = {
  entity : string;
  rule_name : string;
  outcome : outcome;
}

val pp_report : Format.formatter -> report -> unit

(** [entity frame entry rules] applies every derivable fix for the
    entity's violated rules and returns the edited frame. *)
val entity :
  Frames.Frame.t -> Manifest.entry -> Rule.t list -> Frames.Frame.t * report list

(** [deployment ~source ~manifest frames] remediates every entity on
    every frame. *)
val deployment :
  source:Loader.source ->
  manifest:Manifest.entry list ->
  Frames.Frame.t list ->
  Frames.Frame.t list * report list

(** Iterate {!deployment} until the violation count stops improving (at
    most [max_rounds], default 3); returns the final frames, the
    accumulated reports and the remaining violations. *)
val fixpoint :
  ?max_rounds:int ->
  source:Loader.source ->
  manifest:Manifest.entry list ->
  Frames.Frame.t list ->
  Frames.Frame.t list * report list * Engine.result list
