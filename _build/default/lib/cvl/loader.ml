type source = { load : string -> (string, string) result }

let assoc_source files =
  {
    load =
      (fun path ->
        match List.assoc_opt path files with
        | Some text -> Ok text
        | None -> Error (Printf.sprintf "no such rule file %S in source" path));
  }

let file_source ~root =
  {
    load =
      (fun path ->
        let full = if Filename.is_relative path then Filename.concat root path else path in
        match In_channel.with_open_text full In_channel.input_all with
        | text -> Ok text
        | exception Sys_error msg -> Error msg);
  }

(* ------------------------------------------------------------------ *)
(* Helpers over YAML rule mappings                                     *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let discriminators =
  [
    ("config_name", `Tree);
    ("config_schema_name", `Schema);
    ("path_name", `Path);
    ("script_name", `Script);
    ("composite_rule_name", `Composite);
    ("cluster_rule_name", `Cluster);
  ]

let rule_kind_of_map kvs =
  let present = List.filter (fun (k, _) -> List.mem_assoc k kvs) discriminators in
  match present with
  | [ (key, kind) ] -> Ok (key, kind)
  | [] ->
    Error
      "rule has no discriminator key (expected one of config_name, config_schema_name, \
       path_name, script_name, composite_rule_name, cluster_rule_name)"
  | multiple ->
    Error
      (Printf.sprintf "rule mixes discriminator keys: %s"
         (String.concat ", " (List.map fst multiple)))

let rule_name_of_map kvs =
  match rule_kind_of_map kvs with
  | Error _ as e -> e
  | Ok (key, _) -> (
    match Yamlite.Value.get_str (List.assoc key kvs) with
    | Some name -> Ok name
    | None -> Error (Printf.sprintf "%s must be a scalar" key))

let str_field kvs key = Option.bind (List.assoc_opt key kvs) Yamlite.Value.get_str

let str_field_default kvs key ~default =
  Option.value (str_field kvs key) ~default

let str_list_field kvs key =
  match List.assoc_opt key kvs with
  | None -> Ok None
  | Some v -> (
    match Yamlite.Value.get_str_list v with
    | Some l -> Ok (Some l)
    | None -> Error (Printf.sprintf "%s must be a list of scalars" key))

let bool_field kvs key ~default =
  match List.assoc_opt key kvs with
  | None -> Ok default
  | Some v -> (
    match Yamlite.Value.get_bool v with
    | Some b -> Ok b
    | None -> Error (Printf.sprintf "%s must be a boolean" key))

let int_field kvs key =
  match List.assoc_opt key kvs with
  | None -> Ok None
  | Some v -> (
    match Yamlite.Value.get_int v with
    | Some i -> Ok (Some i)
    | None -> Error (Printf.sprintf "%s must be an integer" key))

(* Permission is octal text in CVL ("644"), whether YAML parsed it as an
   int literal or a string. *)
let octal_field kvs key =
  match List.assoc_opt key kvs with
  | None -> Ok None
  | Some v -> (
    match Yamlite.Value.get_str v with
    | Some text -> (
      match int_of_string_opt ("0o" ^ text) with
      | Some bits -> Ok (Some bits)
      | None -> Error (Printf.sprintf "%s must be octal permission bits, got %S" key text))
    | None -> Error (Printf.sprintf "%s must be octal permission bits" key))

let expectation kvs ~value_key ~match_key =
  let* values = str_list_field kvs value_key in
  match values with
  | None -> (
    match List.assoc_opt match_key kvs with
    | Some _ -> Error (Printf.sprintf "%s given without %s" match_key value_key)
    | None -> Ok None)
  | Some values -> (
    match str_field kvs match_key with
    | None -> Ok (Some { Rule.values; match_spec = Matcher.default })
    | Some spec_text -> (
      match Matcher.parse spec_text with
      | Ok match_spec -> Ok (Some { Rule.values; match_spec })
      | Error e -> Error (Printf.sprintf "%s: %s" match_key e)))

let check_keywords ~group ~name kvs =
  let allowed = Keyword.allowed_in group in
  let rec go = function
    | [] -> Ok ()
    | (k, _) :: rest ->
      if List.mem k allowed then go rest
      else if Keyword.is_keyword k then
        Error
          (Printf.sprintf "rule %S: keyword %S is not valid in a %s rule" name k
             (Keyword.group_to_string group))
      else Error (Printf.sprintf "rule %S: unknown keyword %S" name k)
  in
  go kvs

let common_of_map kvs ~name ~description_key =
  let* disabled = bool_field kvs "disabled" ~default:false in
  let* tags = str_list_field kvs "tags" in
  Ok
    (Rule.common name
       ~description:(str_field_default kvs description_key ~default:"")
       ~tags:(Option.value tags ~default:[])
       ~severity:(str_field_default kvs "severity" ~default:"medium")
       ~matched:(str_field_default kvs "matched_description" ~default:"")
       ~not_matched:
         (str_field_default kvs "not_matched_preferred_value_description" ~default:"")
       ~not_present:(str_field_default kvs "not_present_description" ~default:"")
       ~suggested_action:(str_field_default kvs "suggested_action" ~default:"")
       ~disabled)

let tree_of_map kvs ~name =
  let* () = check_keywords ~group:Keyword.Tree ~name kvs in
  let* common = common_of_map kvs ~name ~description_key:"config_description" in
  let* config_paths = str_list_field kvs "config_path" in
  let* preferred = expectation kvs ~value_key:"preferred_value" ~match_key:"preferred_value_match" in
  let* non_preferred =
    expectation kvs ~value_key:"non_preferred_value" ~match_key:"non_preferred_value_match"
  in
  let* file_context = str_list_field kvs "file_context" in
  let* require_other_configs = str_list_field kvs "require_other_configs" in
  let* case_insensitive = bool_field kvs "case_insensitive" ~default:false in
  let* check_presence_only = bool_field kvs "check_presence_only" ~default:false in
  let* not_present_pass = bool_field kvs "not_present_pass" ~default:false in
  Ok
    (Rule.Tree
       {
         Rule.tree_common = common;
         config_paths = Option.value config_paths ~default:[ "" ];
         preferred;
         non_preferred;
         file_context = Option.value file_context ~default:[];
         require_other_configs = Option.value require_other_configs ~default:[];
         value_separator = str_field kvs "value_separator";
         case_insensitive;
         check_presence_only;
         not_present_pass;
       })

let schema_of_map kvs ~name =
  let* () = check_keywords ~group:Keyword.Schema ~name kvs in
  let* common = common_of_map kvs ~name ~description_key:"config_schema_description" in
  let* constraints_value = str_list_field kvs "query_constraints_value" in
  let* columns = str_list_field kvs "query_columns" in
  let* preferred = expectation kvs ~value_key:"preferred_value" ~match_key:"preferred_value_match" in
  let* non_preferred =
    expectation kvs ~value_key:"non_preferred_value" ~match_key:"non_preferred_value_match"
  in
  let* file_context = str_list_field kvs "file_context" in
  let* expect_rows = int_field kvs "expect_rows" in
  Ok
    (Rule.Schema
       {
         Rule.schema_common = common;
         query_constraints = str_field_default kvs "query_constraints" ~default:"";
         query_constraints_value = Option.value constraints_value ~default:[];
         query_columns = Option.value columns ~default:[ "*" ];
         schema_preferred = preferred;
         schema_non_preferred = non_preferred;
         schema_file_context = Option.value file_context ~default:[];
         expect_rows;
       })

let path_of_map kvs ~name =
  let* () = check_keywords ~group:Keyword.Path ~name kvs in
  let* common = common_of_map kvs ~name ~description_key:"path_description" in
  let* permission = octal_field kvs "permission" in
  let* should_exist = bool_field kvs "should_exist" ~default:true in
  Ok
    (Rule.Path
       {
         Rule.path_common = common;
         path = name;
         ownership = str_field kvs "ownership";
         permission;
         should_exist;
         file_type = str_field kvs "file_type";
       })

let script_of_map kvs ~name =
  let* () = check_keywords ~group:Keyword.Script ~name kvs in
  let* common = common_of_map kvs ~name ~description_key:"script_description" in
  let* config_paths = str_list_field kvs "config_path" in
  let* preferred = expectation kvs ~value_key:"preferred_value" ~match_key:"preferred_value_match" in
  let* non_preferred =
    expectation kvs ~value_key:"non_preferred_value" ~match_key:"non_preferred_value_match"
  in
  let* script_not_present_pass = bool_field kvs "not_present_pass" ~default:false in
  let on_plugin_failure = str_field kvs "on_plugin_failure" in
  let* () =
    match on_plugin_failure with
    | None | Some "degrade" | Some "error" -> Ok ()
    | Some v ->
      Error
        (Printf.sprintf "rule %S: on_plugin_failure must be \"degrade\" or \"error\", got %S" name v)
  in
  match str_field kvs "script" with
  | None -> Error (Printf.sprintf "rule %S: script rules need a `script:` plugin name" name)
  | Some plugin ->
    Ok
      (Rule.Script
         {
           Rule.script_common = common;
           plugin;
           script_config_paths = Option.value config_paths ~default:[ "" ];
           script_preferred = preferred;
           script_non_preferred = non_preferred;
           script_not_present_pass;
           on_plugin_failure;
         })

let composite_of_map kvs ~name =
  let* () = check_keywords ~group:Keyword.Composite ~name kvs in
  let* common = common_of_map kvs ~name ~description_key:"composite_rule_description" in
  match str_field kvs "composite_rule" with
  | None -> Error (Printf.sprintf "rule %S: composite rules need a `composite_rule:` expression" name)
  | Some expression -> (
    (* Validate the expression eagerly so authoring errors surface at
       load time, not at the first evaluation. *)
    match Expr.parse expression with
    | Error e -> Error (Printf.sprintf "rule %S: bad composite expression: %s" name e)
    | Ok _ -> Ok (Rule.Composite { Rule.composite_common = common; expression }))

let cluster_of_map kvs ~name =
  let* () = check_keywords ~group:Keyword.Cluster ~name kvs in
  let* common = common_of_map kvs ~name ~description_key:"cluster_rule_description" in
  let* () =
    match str_field kvs "scope" with
    | None | Some "cluster" -> Ok ()
    | Some v ->
      Error (Printf.sprintf "rule %S: scope must be \"cluster\", got %S" name v)
  in
  let* config_paths = str_list_field kvs "config_path" in
  let* file_context = str_list_field kvs "file_context" in
  let* min_frames = int_field kvs "min_frames" in
  let* max_frames = int_field kvs "max_frames" in
  let aggregate = str_field_default kvs "aggregate" ~default:"" in
  let* () =
    match aggregate with
    | "equal_across" | "exists_referent" | "count" | "consistent_across" -> Ok ()
    | "" -> Error (Printf.sprintf "rule %S: cluster rules need an `aggregate:` keyword" name)
    | v ->
      Error
        (Printf.sprintf
           "rule %S: unknown aggregate %S (expected equal_across, exists_referent, count or \
            consistent_across)"
           name v)
  in
  let* () =
    match config_paths with
    | Some (_ :: _) -> Ok ()
    | Some [] | None ->
      Error
        (Printf.sprintf "rule %S: cluster rules need a non-empty `config_path:` list" name)
  in
  let* () =
    match (aggregate, min_frames, max_frames) with
    | "count", None, None ->
      Error
        (Printf.sprintf "rule %S: aggregate count needs min_frames and/or max_frames" name)
    | _ -> Ok ()
  in
  let group_by = str_field kvs "group_by" in
  let* () =
    match (aggregate, group_by) with
    | "consistent_across", None ->
      Error (Printf.sprintf "rule %S: aggregate consistent_across needs a `group_by:` key" name)
    | _ -> Ok ()
  in
  Ok
    (Rule.Cluster
       {
         Rule.cluster_common = common;
         aggregate;
         cluster_config_paths = Option.value config_paths ~default:[];
         cluster_file_context = Option.value file_context ~default:[];
         referent_config_path = str_field kvs "referent_config_path";
         cluster_value_separator = str_field kvs "value_separator";
         min_frames;
         max_frames;
         group_by;
       })

let rule_of_map kvs =
  let* _key, kind = rule_kind_of_map kvs in
  let* name = rule_name_of_map kvs in
  match kind with
  | `Tree -> tree_of_map kvs ~name
  | `Schema -> schema_of_map kvs ~name
  | `Path -> path_of_map kvs ~name
  | `Script -> script_of_map kvs ~name
  | `Composite -> composite_of_map kvs ~name
  | `Cluster -> cluster_of_map kvs ~name

let rule_of_yaml v =
  match Yamlite.Value.get_map v with
  | Some kvs -> rule_of_map kvs
  | None -> Error "a CVL rule must be a YAML mapping"

(* ------------------------------------------------------------------ *)
(* File shapes and inheritance                                         *)
(* ------------------------------------------------------------------ *)

(* Positioned view of a rule file: the same three accepted document
   shapes, but every rule and every field keeps the physical line it was
   written on. [shapes_of_text] (and so the whole loader) is an erasure
   of this, which is what lets cvlint report real file:line spans
   without a second parser. *)
module Raw = struct
  type field = { key : string; key_line : int; value : Yamlite.Value.t }
  type rule = { line : int; fields : field list }

  type doc = {
    parent : string option;
    parent_line : int;  (** line of the [parent_cvl_file:] key; [0] if absent *)
    rules : rule list;
  }

  type err = { err_line : int; err_msg : string }

  let to_map r = List.map (fun f -> (f.key, f.value)) r.fields
  let field r key = List.find_opt (fun f -> String.equal f.key key) r.fields

  let rule_of_entries line entries =
    {
      line;
      fields =
        List.map
          (fun (e : Yamlite.Ast.entry) ->
            { key = e.Yamlite.Ast.key;
              key_line = e.Yamlite.Ast.key_line;
              value = Yamlite.Ast.to_value e.Yamlite.Ast.value })
          entries;
    }

  (* Extract (parent, rules) from one parsed document; error strings
     match the historical loader messages. *)
  let doc_shape (ast : Yamlite.Ast.t) =
    let fail_at line msg = Error { err_line = line; err_msg = msg } in
    match ast.Yamlite.Ast.v with
    | Yamlite.Ast.List items ->
      let rec go acc = function
        | [] -> Ok (None, 0, List.rev acc)
        | ({ Yamlite.Ast.v = Yamlite.Ast.Map entries; line } : Yamlite.Ast.t) :: rest ->
          go (rule_of_entries line entries :: acc) rest
        | (item : Yamlite.Ast.t) :: _ ->
          fail_at item.Yamlite.Ast.line "rule list contains a non-mapping entry"
      in
      go [] items
    | Yamlite.Ast.Map entries
      when List.exists (fun (e : Yamlite.Ast.entry) -> e.Yamlite.Ast.key = "rules") entries -> (
      let parent_entry =
        List.find_opt (fun (e : Yamlite.Ast.entry) -> e.Yamlite.Ast.key = "parent_cvl_file") entries
      in
      let parent =
        Option.bind parent_entry (fun e ->
            Yamlite.Value.get_str (Yamlite.Ast.to_value e.Yamlite.Ast.value))
      in
      let parent_line =
        match parent_entry with Some e -> e.Yamlite.Ast.key_line | None -> 0
      in
      match
        List.find_opt
          (fun (e : Yamlite.Ast.entry) ->
            e.Yamlite.Ast.key <> "rules" && e.Yamlite.Ast.key <> "parent_cvl_file")
          entries
      with
      | Some e ->
        fail_at e.Yamlite.Ast.key_line
          (Printf.sprintf "unexpected top-level key %S in rule file" e.Yamlite.Ast.key)
      | None -> (
        let rules_entry =
          List.find (fun (e : Yamlite.Ast.entry) -> e.Yamlite.Ast.key = "rules") entries
        in
        let rules_value = rules_entry.Yamlite.Ast.value in
        match rules_value.Yamlite.Ast.v with
        | Yamlite.Ast.List items ->
          let rec go acc = function
            | [] -> Ok (parent, parent_line, List.rev acc)
            | ({ Yamlite.Ast.v = Yamlite.Ast.Map entries; line } : Yamlite.Ast.t) :: rest ->
              go (rule_of_entries line entries :: acc) rest
            | (item : Yamlite.Ast.t) :: _ ->
              fail_at item.Yamlite.Ast.line "`rules:` contains a non-mapping entry"
          in
          go [] items
        | Yamlite.Ast.Null | Yamlite.Ast.Bool _ | Yamlite.Ast.Int _ | Yamlite.Ast.Float _
        | Yamlite.Ast.Str _ | Yamlite.Ast.Map _ ->
          fail_at rules_entry.Yamlite.Ast.key_line "`rules:` must be a list"))
    | Yamlite.Ast.Map entries -> Ok (None, 0, [ rule_of_entries ast.Yamlite.Ast.line entries ])
    | Yamlite.Ast.Null -> Ok (None, 0, [])
    | Yamlite.Ast.Bool _ | Yamlite.Ast.Int _ | Yamlite.Ast.Float _ | Yamlite.Ast.Str _ ->
      fail_at ast.Yamlite.Ast.line "a CVL file must contain rule mappings"

  let of_asts asts =
    let rec go parent parent_line rules = function
      | [] -> Ok { parent; parent_line; rules = List.rev rules }
      | ast :: rest -> (
        match doc_shape ast with
        | Error _ as e -> e
        | Ok (p, pl, rs) ->
          let parent, parent_line =
            match (parent, p) with
            | None, p -> (p, pl)
            | Some _, _ -> (parent, parent_line)
          in
          go parent parent_line (List.rev_append rs rules) rest)
    in
    go None 0 [] asts

  let of_text text =
    match Yamlite.Parse.multi_ast text with
    | Error e ->
      Error { err_line = e.Yamlite.Parse.line; err_msg = Yamlite.Parse.error_to_string e }
    | Ok asts -> of_asts asts
end

let shapes_of_text text =
  match Yamlite.Parse.multi_ast text with
  | Error e -> Error (Yamlite.Parse.error_to_string e)
  | Ok asts -> (
    match Raw.of_asts asts with
    | Error err -> Error err.Raw.err_msg
    | Ok doc -> Ok (doc.Raw.parent, List.map Raw.to_map doc.Raw.rules))

(* Merge child rule maps over parent maps by rule name: child keys win;
   unmatched child rules are appended in order. *)
let merge_maps parent_maps child_maps =
  let name_of kvs = Result.value (rule_name_of_map kvs) ~default:"" in
  let overridden =
    List.map
      (fun pm ->
        let pname = name_of pm in
        match List.find_opt (fun cm -> name_of cm = pname && pname <> "") child_maps with
        | Some cm ->
          let merged =
            pm
            |> List.filter (fun (k, _) -> not (List.mem_assoc k cm))
            |> fun keep -> keep @ cm
          in
          (* Preserve the parent's key order where possible. *)
          List.map (fun (k, _) -> (k, List.assoc k merged)) pm
          @ List.filter (fun (k, _) -> not (List.mem_assoc k pm)) cm
        | None -> pm)
      parent_maps
  in
  let parent_names = List.map name_of parent_maps in
  let fresh = List.filter (fun cm -> not (List.mem (name_of cm) parent_names)) child_maps in
  overridden @ fresh

let rec maps_of_file source path ~visited =
  if List.mem path visited then
    Error (Printf.sprintf "inheritance cycle through %S" path)
  else
    let* text = source.load path in
    let* parent, maps = shapes_of_text text in
    match parent with
    | None -> Ok maps
    | Some parent_path ->
      let* parent_maps = maps_of_file source parent_path ~visited:(path :: visited) in
      Ok (merge_maps parent_maps maps)

let parse_all maps =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | kvs :: rest ->
      let* rule = rule_of_map kvs in
      go (rule :: acc) rest
  in
  go [] maps

let parse_rules text =
  let* parent, maps = shapes_of_text text in
  match parent with
  | Some p -> Error (Printf.sprintf "parent_cvl_file %S cannot be resolved without a source" p)
  | None -> parse_all maps

let load_file source path =
  let* maps = maps_of_file source path ~visited:[] in
  parse_all maps
