(** The 40 CIS Ubuntu system-service checks common to all compared
    engines (paper §4.2): 14 sshd, 13 sysctl, 5 modprobe, 8 audit.

    ["Disable SSH Root Login"] — the Listing 6 exemplar — is
    {!permit_root_login}. *)

val all : Check.t list

val permit_root_login : Check.t

(** Count per target file, for reporting. *)
val by_file : unit -> (string * int) list
