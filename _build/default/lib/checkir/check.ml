type sep =
  | Space
  | Equals

type expected =
  | Values of string list
  | Pattern of string

type target =
  | Key_value of {
      file : string;
      key : string;
      sep : sep;
      expected : expected;
      absent_pass : bool;
    }
  | Line_present of { file : string; regex : string }
  | Line_absent of { file : string; regex : string }
  | File_mode of { path : string; max_mode : int; owner : string }

type t = {
  id : string;
  title : string;
  description : string;
  target : target;
}

let check ~id ~title ?(description = "") target = { id; title; description; target }

let config_lines frame path =
  match Frames.Frame.read frame path with
  | None -> []
  | Some content ->
    String.split_on_char '\n' content
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')

let key_values ~sep ~key lines =
  List.filter_map
    (fun line ->
      match sep with
      | Space ->
        let kl = String.length key in
        if String.length line > kl && String.sub line 0 kl = key
           && (line.[kl] = ' ' || line.[kl] = '\t') then
          Some (String.trim (String.sub line kl (String.length line - kl)))
        else None
      | Equals -> (
        match String.index_opt line '=' with
        | Some i when String.trim (String.sub line 0 i) = key ->
          Some (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
        | Some _ | None -> None))
    lines

let value_ok expected value =
  match expected with
  | Values vs -> List.mem value vs
  | Pattern p -> (
    match Re.execp (Re.compile (Re.whole_string (Re.Pcre.re p))) value with
    | m -> m
    | exception _ -> false)

let line_matches regex line =
  match Re.execp (Re.compile (Re.Pcre.re regex)) line with
  | m -> m
  | exception _ -> false

let holds frame t =
  match t.target with
  | Key_value { file; key; sep; expected; absent_pass } -> (
    match key_values ~sep ~key (config_lines frame file) with
    | [] -> absent_pass
    | values -> List.for_all (value_ok expected) values)
  | Line_present { file; regex } ->
    List.exists (line_matches regex) (config_lines frame file)
  | Line_absent { file; regex } ->
    not (List.exists (line_matches regex) (config_lines frame file))
  | File_mode { path; max_mode; owner } -> (
    match Frames.Frame.stat frame path with
    | None -> false
    | Some f ->
      f.Frames.File.mode land lnot max_mode land 0o7777 = 0
      && Frames.File.ownership f = owner)
