(** Render abstract checks into CVL YAML — the ConfigValidator column of
    the Table 2 / Listing 6 comparison. The rendering mirrors the
    paper's Listing 6 layout (10 lines for PermitRootLogin). *)

(** One rule document. *)
val rule : Check.t -> string

(** A complete CVL rule file for a check list. *)
val file : Check.t list -> string

(** Manifest entries (entity per target file) pointing at [file]'s
    virtual path, for running the rendered rules through the real
    pipeline. Returns (manifest_yaml, [(path, contents)]). *)
val bundle : Check.t list -> string * (string * string) list
