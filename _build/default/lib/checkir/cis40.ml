let sshd_file = "/etc/ssh/sshd_config"
let sysctl_file = "/etc/sysctl.conf"
let modprobe_file = "/etc/modprobe.d/CIS.conf"
let audit_file = "/etc/audit/audit.rules"

let sshd_kv ~id ~title ?(absent_pass = false) ~key expected =
  Check.check ~id ~title
    (Check.Key_value { file = sshd_file; key; sep = Check.Space; expected; absent_pass })

let sysctl_kv ~id ~key value =
  Check.check ~id
    ~title:(Printf.sprintf "Set %s to %s" key value)
    (Check.Key_value
       { file = sysctl_file; key; sep = Check.Equals; expected = Check.Values [ value ]; absent_pass = false })

let permit_root_login =
  sshd_kv ~id:"cisubuntu14.04_9.3.8" ~title:"Disable SSH Root Login" ~key:"PermitRootLogin"
    (Check.Values [ "no" ])

let sshd_checks =
  [
    sshd_kv ~id:"cisubuntu14.04_9.3.1" ~title:"Set SSH Protocol to 2" ~key:"Protocol"
      (Check.Values [ "2" ]);
    sshd_kv ~id:"cisubuntu14.04_9.3.2" ~title:"Set LogLevel to INFO" ~key:"LogLevel"
      (Check.Values [ "INFO"; "VERBOSE" ]);
    Check.check ~id:"cisubuntu14.04_9.3.3" ~title:"Set permissions on sshd_config"
      (Check.File_mode { path = sshd_file; max_mode = 0o600; owner = "0:0" });
    sshd_kv ~id:"cisubuntu14.04_9.3.4" ~title:"Disable X11 Forwarding" ~key:"X11Forwarding"
      ~absent_pass:true (Check.Values [ "no" ]);
    sshd_kv ~id:"cisubuntu14.04_9.3.5" ~title:"Set MaxAuthTries to 4 or less" ~key:"MaxAuthTries"
      (Check.Pattern "[1-4]");
    sshd_kv ~id:"cisubuntu14.04_9.3.6" ~title:"Set IgnoreRhosts to Yes" ~key:"IgnoreRhosts"
      ~absent_pass:true (Check.Values [ "yes" ]);
    sshd_kv ~id:"cisubuntu14.04_9.3.7" ~title:"Disable Host-Based Authentication"
      ~key:"HostbasedAuthentication" ~absent_pass:true (Check.Values [ "no" ]);
    permit_root_login;
    sshd_kv ~id:"cisubuntu14.04_9.3.9" ~title:"Disable Empty Passwords" ~key:"PermitEmptyPasswords"
      ~absent_pass:true (Check.Values [ "no" ]);
    sshd_kv ~id:"cisubuntu14.04_9.3.10" ~title:"Do Not Allow Users to Set Environment Options"
      ~key:"PermitUserEnvironment" ~absent_pass:true (Check.Values [ "no" ]);
    Check.check ~id:"cisubuntu14.04_9.3.11" ~title:"Use Only Approved Ciphers"
      (Check.Line_absent { file = sshd_file; regex = "^\\s*Ciphers\\s+.*(cbc|arcfour|3des)" });
    sshd_kv ~id:"cisubuntu14.04_9.3.12" ~title:"Set Idle Timeout Interval" ~key:"ClientAliveInterval"
      (Check.Pattern "([1-9][0-9]?|[12][0-9][0-9]|300)");
    sshd_kv ~id:"cisubuntu14.04_9.3.13" ~title:"Set LoginGraceTime to a minute or less"
      ~key:"LoginGraceTime" (Check.Pattern "([1-9]|[1-5][0-9]|60)");
    sshd_kv ~id:"cisubuntu14.04_9.3.14" ~title:"Set SSH Banner" ~key:"Banner"
      (Check.Values [ "/etc/issue.net"; "/etc/issue" ]);
  ]

let sysctl_checks =
  [
    sysctl_kv ~id:"cisubuntu14.04_7.1.1" ~key:"net.ipv4.ip_forward" "0";
    sysctl_kv ~id:"cisubuntu14.04_7.1.2a" ~key:"net.ipv4.conf.all.send_redirects" "0";
    sysctl_kv ~id:"cisubuntu14.04_7.1.2b" ~key:"net.ipv4.conf.default.send_redirects" "0";
    sysctl_kv ~id:"cisubuntu14.04_7.2.1a" ~key:"net.ipv4.conf.all.accept_source_route" "0";
    sysctl_kv ~id:"cisubuntu14.04_7.2.1b" ~key:"net.ipv4.conf.default.accept_source_route" "0";
    sysctl_kv ~id:"cisubuntu14.04_7.2.2a" ~key:"net.ipv4.conf.all.accept_redirects" "0";
    sysctl_kv ~id:"cisubuntu14.04_7.2.2b" ~key:"net.ipv4.conf.default.accept_redirects" "0";
    sysctl_kv ~id:"cisubuntu14.04_7.2.3" ~key:"net.ipv4.conf.all.secure_redirects" "0";
    sysctl_kv ~id:"cisubuntu14.04_7.2.4" ~key:"net.ipv4.conf.all.log_martians" "1";
    sysctl_kv ~id:"cisubuntu14.04_7.2.5" ~key:"net.ipv4.icmp_echo_ignore_broadcasts" "1";
    sysctl_kv ~id:"cisubuntu14.04_7.2.6" ~key:"net.ipv4.icmp_ignore_bogus_error_responses" "1";
    sysctl_kv ~id:"cisubuntu14.04_7.2.7" ~key:"net.ipv4.conf.all.rp_filter" "1";
    sysctl_kv ~id:"cisubuntu14.04_7.2.8" ~key:"net.ipv4.tcp_syncookies" "1";
  ]

let modprobe_line module_ =
  Printf.sprintf "^install\\s+%s\\s+/bin/true" module_

let modprobe_checks =
  [
    Check.check ~id:"cisubuntu14.04_1.1.18" ~title:"Disable Mounting of cramfs"
      (Check.Line_present { file = modprobe_file; regex = modprobe_line "cramfs" });
    Check.check ~id:"cisubuntu14.04_1.1.19" ~title:"Disable Mounting of freevxfs"
      (Check.Line_present { file = modprobe_file; regex = modprobe_line "freevxfs" });
    Check.check ~id:"cisubuntu14.04_1.1.20" ~title:"Disable Mounting of jffs2"
      (Check.Line_present { file = modprobe_file; regex = modprobe_line "jffs2" });
    Check.check ~id:"cisubuntu14.04_7.5.1" ~title:"Disable DCCP"
      (Check.Line_present { file = modprobe_file; regex = modprobe_line "dccp" });
    Check.check ~id:"cisubuntu14.04_1.1.25" ~title:"Blacklist usb-storage"
      (Check.Line_present { file = modprobe_file; regex = "^blacklist\\s+usb-storage" });
  ]

let audit_watch path key =
  Printf.sprintf "^-w\\s+%s\\s+-p\\s+wa\\s+-k\\s+%s" path key

let audit_checks =
  [
    Check.check ~id:"cisubuntu14.04_8.1.4" ~title:"Record time-change events"
      (Check.Line_present { file = audit_file; regex = "-S\\s+settimeofday" });
    Check.check ~id:"cisubuntu14.04_8.1.5a" ~title:"Watch /etc/passwd"
      (Check.Line_present { file = audit_file; regex = audit_watch "/etc/passwd" "identity" });
    Check.check ~id:"cisubuntu14.04_8.1.5b" ~title:"Watch /etc/group"
      (Check.Line_present { file = audit_file; regex = audit_watch "/etc/group" "identity" });
    Check.check ~id:"cisubuntu14.04_8.1.5c" ~title:"Watch /etc/shadow"
      (Check.Line_present { file = audit_file; regex = audit_watch "/etc/shadow" "identity" });
    Check.check ~id:"cisubuntu14.04_8.1.5d" ~title:"Watch /etc/gshadow"
      (Check.Line_present { file = audit_file; regex = audit_watch "/etc/gshadow" "identity" });
    Check.check ~id:"cisubuntu14.04_8.1.13" ~title:"Record mount events"
      (Check.Line_present { file = audit_file; regex = "-S\\s+mount" });
    Check.check ~id:"cisubuntu14.04_8.1.15" ~title:"Watch /etc/sudoers"
      (Check.Line_present { file = audit_file; regex = audit_watch "/etc/sudoers" "scope" });
    Check.check ~id:"cisubuntu14.04_8.1.18" ~title:"Make audit configuration immutable"
      (Check.Line_present { file = audit_file; regex = "^-e\\s+2\\s*$" });
  ]

let all = sshd_checks @ sysctl_checks @ modprobe_checks @ audit_checks

let by_file () =
  List.fold_left
    (fun acc (c : Check.t) ->
      let file =
        match c.Check.target with
        | Check.Key_value { file; _ } | Check.Line_present { file; _ } | Check.Line_absent { file; _ } ->
          file
        | Check.File_mode { path; _ } -> path
      in
      match List.assoc_opt file acc with
      | Some n -> (file, n + 1) :: List.remove_assoc file acc
      | None -> (file, 1) :: acc)
    [] all
  |> List.rev
