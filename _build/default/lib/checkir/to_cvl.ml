let basename path =
  match String.rindex_opt path '/' with
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)
  | None -> path

let quote_list values =
  "[" ^ String.concat ", " (List.map (Printf.sprintf "%S") values) ^ "]"

let rule (c : Check.t) =
  let lines =
    match c.Check.target with
    | Check.Key_value { file; key; sep = _; expected; absent_pass } ->
      let preferred, match_spec =
        match expected with
        | Check.Values vs -> (quote_list vs, "exact,any")
        | Check.Pattern p -> (quote_list [ "^(" ^ p ^ ")$" ], "regex,any")
      in
      [
        Printf.sprintf "config_name: %s" key;
        Printf.sprintf "tags: [\"#security\", \"#cis\", \"#%s\"]" c.Check.id;
        "config_path: [\"\"]";
        Printf.sprintf "config_description: %S" c.Check.title;
        Printf.sprintf "file_context: [%S]" (basename file);
        Printf.sprintf "preferred_value: %s" preferred;
        Printf.sprintf "preferred_value_match: %s" match_spec;
      ]
      @ (if absent_pass then [ "not_present_pass: true" ] else [])
      @ [
          Printf.sprintf "not_present_description: \"%s is not present.\"" key;
          Printf.sprintf
            "not_matched_preferred_value_description: \"%s is present but not set to a compliant value.\""
            key;
          Printf.sprintf "matched_description: \"%s complies with the benchmark.\"" key;
        ]
    | Check.Line_present { file = _; regex } ->
      [
        Printf.sprintf "config_schema_name: %s" c.Check.id;
        Printf.sprintf "tags: [\"#security\", \"#cis\", \"#%s\"]" c.Check.id;
        Printf.sprintf "config_schema_description: %S" c.Check.title;
        "query_constraints: \"line ~ ?\"";
        Printf.sprintf "query_constraints_value: [%S]" (".*(" ^ regex ^ ").*");
        "query_columns: \"line\"";
        "expect_rows: 1";
        Printf.sprintf "not_matched_preferred_value_description: \"required line is missing: %s\""
          c.Check.title;
        Printf.sprintf "matched_description: \"%s\"" c.Check.title;
      ]
    | Check.Line_absent { file = _; regex } ->
      [
        Printf.sprintf "config_schema_name: %s" c.Check.id;
        Printf.sprintf "tags: [\"#security\", \"#cis\", \"#%s\"]" c.Check.id;
        Printf.sprintf "config_schema_description: %S" c.Check.title;
        "query_constraints: \"line ~ ?\"";
        Printf.sprintf "query_constraints_value: [%S]" (".*(" ^ regex ^ ").*");
        "query_columns: \"line\"";
        "non_preferred_value: [\".+\"]";
        "non_preferred_value_match: regex,any";
        Printf.sprintf "not_matched_preferred_value_description: \"forbidden line present: %s\""
          c.Check.title;
        Printf.sprintf "matched_description: \"%s\"" c.Check.title;
      ]
    | Check.File_mode { path; max_mode; owner } ->
      [
        Printf.sprintf "path_name: %s" path;
        Printf.sprintf "tags: [\"#security\", \"#cis\", \"#%s\"]" c.Check.id;
        Printf.sprintf "path_description: %S" c.Check.title;
        Printf.sprintf "ownership: %S" owner;
        Printf.sprintf "permission: %o" max_mode;
        Printf.sprintf "not_matched_preferred_value_description: \"%s has lax permissions or wrong ownership.\""
          path;
        Printf.sprintf "matched_description: \"%s permissions comply.\"" path;
      ]
  in
  String.concat "\n" lines ^ "\n"

let indent text =
  String.split_on_char '\n' text
  |> List.mapi (fun i line ->
         if line = "" then line else if i = 0 then "  - " ^ line else "    " ^ line)
  |> String.concat "\n"

let file checks = "rules:\n" ^ String.concat "" (List.map (fun c -> indent (rule c)) checks)

let lens_for_file path =
  match basename path with
  | "sshd_config" -> "sshd"
  | "sysctl.conf" -> "sysctl"
  | _ -> "lines"

let entity_for_file path =
  let b = basename path in
  String.map (fun ch -> if ch = '.' then '_' else ch) b

let bundle checks =
  (* One manifest entity per (file, normal form): line-pattern checks
     need the raw-lines table view even when the file has a structured
     lens, so they go into a sibling "<entity>_lines" entity over the
     same search path. *)
  let key_of (c : Check.t) =
    match c.Check.target with
    | Check.Key_value { file; _ } -> (file, `Structured)
    | Check.Line_present { file; _ } | Check.Line_absent { file; _ } ->
      (file, if lens_for_file file = "lines" then `Structured else `Lines)
    | Check.File_mode { path; _ } -> (path, `Structured)
  in
  let groups =
    List.fold_left
      (fun acc c ->
        let key = key_of c in
        if List.mem_assoc key acc then (key, List.assoc key acc @ [ c ]) :: List.remove_assoc key acc
        else (key, [ c ]) :: acc)
      [] checks
    |> List.rev
  in
  let entity_of (path, form) =
    match form with
    | `Structured -> entity_for_file path
    | `Lines -> entity_for_file path ^ "_lines"
  in
  let lens_of (path, form) =
    match form with `Structured -> lens_for_file path | `Lines -> "lines"
  in
  let manifest =
    groups
    |> List.map (fun (((path, _) as key), _) ->
           String.concat "\n"
             [
               entity_of key ^ ":";
               "  enabled: True";
               Printf.sprintf "  config_search_paths: [%S]" path;
               Printf.sprintf "  cvl_file: \"cis40/%s.yaml\"" (entity_of key);
               Printf.sprintf "  lens: %s" (lens_of key);
             ])
    |> String.concat "\n"
  in
  let rule_files =
    List.map (fun (key, cs) -> (Printf.sprintf "cis40/%s.yaml" (entity_of key), file cs)) groups
  in
  (manifest ^ "\n", rule_files)
