(** Engine-neutral check IR for the cross-engine comparison (paper
    Table 2 and Listing 6).

    The paper selects "40 CIS rules common to ConfigValidator, Chef
    Inspec and CIS-CAT" targeting Ubuntu system services. Each rule here
    is an abstract check that every engine adapter renders into its own
    specification language (CVL YAML, XCCDF/OVAL XML, InSpec Ruby) and
    evaluates with its own machinery, so both the specification-size and
    the execution-time comparisons run over identical semantics. *)

type sep =
  | Space  (** sshd_config style: [Key value] *)
  | Equals  (** sysctl style: [key = value] *)

type expected =
  | Values of string list  (** any of these literals *)
  | Pattern of string  (** whole-value regex *)

type target =
  | Key_value of {
      file : string;
      key : string;
      sep : sep;
      expected : expected;
      absent_pass : bool;  (** a missing key complies (secure default) *)
    }
  | Line_present of { file : string; regex : string }
      (** some line must match (unanchored) *)
  | Line_absent of { file : string; regex : string }
      (** no line may match *)
  | File_mode of { path : string; max_mode : int; owner : string }
      (** mode ceiling + "uid:gid" ownership *)

type t = {
  id : string;  (** checklist id, e.g. ["cisubuntu14.04_9.3.8"] *)
  title : string;
  description : string;
  target : target;
}

val check :
  id:string -> title:string -> ?description:string -> target -> t

(** Reference evaluation of a check against a frame — the semantics the
    engine adapters must agree with (cross-engine agreement is a test).
    [true] = compliant. *)
val holds : Frames.Frame.t -> t -> bool

(** Non-comment logical lines of a file ([] when absent). *)
val config_lines : Frames.Frame.t -> string -> string list

(** Extract the values of [key] from the file's lines under [sep]
    (every occurrence, in order). *)
val key_values : sep:sep -> key:string -> string list -> string list
