lib/checkir/check.mli: Frames
