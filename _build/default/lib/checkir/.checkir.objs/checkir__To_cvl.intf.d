lib/checkir/to_cvl.mli: Check
