lib/checkir/to_cvl.ml: Check List Printf String
