lib/checkir/check.ml: Frames List Re String
