lib/checkir/cis40.ml: Check List Printf
