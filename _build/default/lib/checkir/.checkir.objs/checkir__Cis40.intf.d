lib/checkir/cis40.mli: Check
