(** Embedded CVL rule file for the mysql entity; see the module
    implementation for the per-rule rationale. *)

val cvl : string
