(* OWASP secure-configuration rules for nginx (12 rules). The
   ssl_protocols rule is the paper's Listing 2, reproduced
   keyword-for-keyword. *)

let cvl =
  {yaml|
rules:
  - config_name: ssl_protocols
    config_path: ["server", "http/server"]
    config_description: "Enables the specified SSL protocols."
    preferred_value: ["TLSv1.2", "TLSv1.3"]
    preferred_value_match: substr,any
    non_preferred_value: ["SSLv2", "SSLv3", "TLSv1($|[ ])", "TLSv1\\.1"]
    non_preferred_value_match: regex,any
    not_present_description: "ssl_protocols is not present."
    not_matched_preferred_value_description: "Non-recommended TLS ver."
    matched_description: "ssl_protocols key is set to TLS v1.2/1.3"
    tags: ["#security", "#ssl", "#owasp"]
    require_other_configs: [listen, ssl_certificate, ssl_certificate_key]
    file_context: ["nginx.conf", "sites-enabled/*"]

  - config_name: server_tokens
    config_path: ["http", "http/server", "server"]
    config_description: "Emission of the nginx version in headers and error pages."
    preferred_value: ["off"]
    preferred_value_match: exact,all
    not_present_description: "server_tokens is not present; the server version is advertised."
    not_matched_preferred_value_description: "The nginx version is advertised to clients."
    matched_description: "Version disclosure is disabled."
    tags: ["#security", "#owasp"]
    file_context: ["nginx.conf", "sites-enabled/*"]
    suggested_action: "Set `server_tokens off;` in the http block."

  - config_name: ssl_ciphers
    config_path: ["server", "http/server", "http"]
    config_description: "Cipher suites offered for TLS."
    non_preferred_value: ["(^|[:+ ])(RC4|DES|MD5|eNULL|aNULL|EXPORT|EXP)"]
    non_preferred_value_match: regex,any
    not_present_description: "ssl_ciphers is not present; library defaults may include weak suites."
    not_matched_preferred_value_description: "A weak cipher suite is offered."
    matched_description: "No weak cipher suites are offered."
    tags: ["#security", "#ssl", "#owasp"]
    file_context: ["nginx.conf", "sites-enabled/*"]
    suggested_action: "Set `ssl_ciphers HIGH:!aNULL:!MD5;`."

  - config_name: listen
    config_path: ["server", "http/server"]
    config_description: "Listening sockets should terminate TLS."
    preferred_value: ["ssl"]
    preferred_value_match: substr,any
    not_present_description: "No listen directive found in a server block."
    not_matched_preferred_value_description: "A server block listens without SSL."
    matched_description: "All server listeners have SSL enabled."
    tags: ["#security", "#ssl", "#owasp"]
    file_context: ["nginx.conf", "sites-enabled/*"]
    suggested_action: "Use `listen 443 ssl;` and redirect plain HTTP."

  - config_name: ssl_certificate
    config_path: ["server", "http/server"]
    config_description: "Server certificate path."
    check_presence_only: true
    not_present_description: "ssl_certificate is not configured."
    matched_description: "A server certificate is configured."
    tags: ["#security", "#ssl", "#owasp"]
    file_context: ["nginx.conf", "sites-enabled/*"]

  - config_name: ssl_certificate_key
    config_path: ["server", "http/server"]
    config_description: "Server private key path."
    check_presence_only: true
    not_present_description: "ssl_certificate_key is not configured."
    matched_description: "A server private key is configured."
    tags: ["#security", "#ssl", "#owasp"]
    file_context: ["nginx.conf", "sites-enabled/*"]

  - config_name: add_header X-Frame-Options
    config_path: ["server", "http/server"]
    config_description: "Clickjacking protection header."
    check_presence_only: true
    not_present_description: "X-Frame-Options is not sent; pages may be framed."
    matched_description: "X-Frame-Options is configured."
    tags: ["#security", "#owasp", "#headers"]
    file_context: ["nginx.conf", "sites-enabled/*"]
    suggested_action: "Add `add_header X-Frame-Options SAMEORIGIN;`."

  - config_name: add_header Strict-Transport-Security
    config_path: ["server", "http/server"]
    config_description: "HSTS header."
    check_presence_only: true
    not_present_description: "Strict-Transport-Security is not sent."
    matched_description: "HSTS is configured."
    tags: ["#security", "#owasp", "#headers"]
    file_context: ["nginx.conf", "sites-enabled/*"]
    suggested_action: "Add `add_header Strict-Transport-Security \"max-age=31536000\";`."

  - config_name: client_max_body_size
    config_path: ["http", "server", "http/server"]
    config_description: "Upload size cap (request-flood containment)."
    non_preferred_value: ["0"]
    non_preferred_value_match: exact,any
    not_present_description: "client_max_body_size is not set; the 1m default applies silently."
    not_matched_preferred_value_description: "Unlimited request bodies are accepted."
    matched_description: "Request bodies are capped."
    tags: ["#performance", "#owasp"]
    file_context: ["nginx.conf", "sites-enabled/*"]
    suggested_action: "Set `client_max_body_size 8m;` (or an app-appropriate cap)."

  - config_name: autoindex
    config_path: ["server", "http/server", "server/location", "http/server/location"]
    config_description: "Automatic directory listings."
    non_preferred_value: ["on"]
    non_preferred_value_match: exact,any
    not_present_pass: true
    not_present_description: "autoindex is not present (defaults to off)."
    not_matched_preferred_value_description: "Directory listings are enabled."
    matched_description: "Directory listings are disabled."
    tags: ["#security", "#owasp"]
    file_context: ["nginx.conf", "sites-enabled/*"]
    suggested_action: "Remove `autoindex on;`."

  - config_name: ssl_prefer_server_ciphers
    config_path: ["server", "http/server", "http"]
    config_description: "Server-side cipher ordering."
    preferred_value: ["on"]
    preferred_value_match: exact,all
    not_present_description: "ssl_prefer_server_ciphers is not set."
    not_matched_preferred_value_description: "Clients dictate cipher order."
    matched_description: "The server's cipher preference wins."
    tags: ["#security", "#ssl", "#owasp"]
    file_context: ["nginx.conf", "sites-enabled/*"]
    suggested_action: "Set `ssl_prefer_server_ciphers on;`."

  - path_name: /etc/nginx/nginx.conf
    path_description: "Permissions and ownership of the nginx configuration."
    ownership: "0:0"
    permission: 644
    file_type: file
    not_matched_preferred_value_description: "nginx.conf is writable by non-root users."
    matched_description: "nginx.conf is owned by root with sane permissions."
    tags: ["#security", "#owasp"]
    suggested_action: "chown root:root /etc/nginx/nginx.conf && chmod 644 /etc/nginx/nginx.conf"
|yaml}
