(* HIPAA/PCI-aligned Hadoop configuration rules (10 rules over the
   *-site.xml property lists). *)

let property ~file ~key ~value ~cis_like ~on_fail ~on_match ~absent ~action =
  Printf.sprintf
    {yaml|
  - config_name: %s
    config_path: [""]
    config_description: "Hadoop property %s."
    file_context: ["%s"]
    preferred_value: ["%s"]
    preferred_value_match: exact,all
    not_present_description: "%s"
    not_matched_preferred_value_description: "%s"
    matched_description: "%s"
    tags: ["#hipaa", "#pci", "%s"]
    suggested_action: "%s"
|yaml}
    key key file value absent on_fail on_match cis_like action

let cvl =
  "\nrules:\n"
  ^ property ~file:"core-site.xml" ~key:"hadoop.security.authentication" ~value:"kerberos"
      ~cis_like:"#hadoop_auth" ~absent:"Authentication mode is not declared (simple by default)."
      ~on_fail:"Cluster authentication is 'simple'; identities are client-asserted."
      ~on_match:"Kerberos authentication is enforced."
      ~action:"Set hadoop.security.authentication=kerberos in core-site.xml."
  ^ property ~file:"core-site.xml" ~key:"hadoop.security.authorization" ~value:"true"
      ~cis_like:"#hadoop_auth" ~absent:"Service-level authorization is not declared."
      ~on_fail:"Service-level authorization is disabled."
      ~on_match:"Service-level authorization is enabled."
      ~action:"Set hadoop.security.authorization=true in core-site.xml."
  ^ property ~file:"core-site.xml" ~key:"hadoop.rpc.protection" ~value:"privacy"
      ~cis_like:"#hadoop_wire" ~absent:"RPC protection is not declared (authentication only)."
      ~on_fail:"RPC traffic is not encrypted."
      ~on_match:"RPC traffic is encrypted (privacy)."
      ~action:"Set hadoop.rpc.protection=privacy in core-site.xml."
  ^ property ~file:"core-site.xml" ~key:"fs.permissions.umask-mode" ~value:"077"
      ~cis_like:"#hadoop_fs" ~absent:"The HDFS umask is not declared (022 by default)."
      ~on_fail:"New HDFS files are group/world readable."
      ~on_match:"New HDFS files are private to their owner."
      ~action:"Set fs.permissions.umask-mode=077 in core-site.xml."
  ^ property ~file:"hdfs-site.xml" ~key:"dfs.permissions.enabled" ~value:"true"
      ~cis_like:"#hadoop_fs" ~absent:"HDFS permission checking is not declared."
      ~on_fail:"HDFS permission checking is disabled."
      ~on_match:"HDFS permission checking is enabled."
      ~action:"Set dfs.permissions.enabled=true in hdfs-site.xml."
  ^ property ~file:"hdfs-site.xml" ~key:"dfs.encrypt.data.transfer" ~value:"true"
      ~cis_like:"#hadoop_wire" ~absent:"Block data transfer encryption is not declared."
      ~on_fail:"HDFS block transfers are cleartext."
      ~on_match:"HDFS block transfers are encrypted."
      ~action:"Set dfs.encrypt.data.transfer=true in hdfs-site.xml."
  ^ property ~file:"hdfs-site.xml" ~key:"dfs.datanode.data.dir.perm" ~value:"700"
      ~cis_like:"#hadoop_fs" ~absent:"Datanode directory permissions are not declared."
      ~on_fail:"Datanode block directories are not private."
      ~on_match:"Datanode block directories are private."
      ~action:"Set dfs.datanode.data.dir.perm=700 in hdfs-site.xml."
  ^ property ~file:"hdfs-site.xml" ~key:"dfs.namenode.acls.enabled" ~value:"true"
      ~cis_like:"#hadoop_fs" ~absent:"HDFS ACL support is not declared."
      ~on_fail:"Fine-grained HDFS ACLs are disabled."
      ~on_match:"Fine-grained HDFS ACLs are enabled."
      ~action:"Set dfs.namenode.acls.enabled=true in hdfs-site.xml."
  ^ property ~file:"yarn-site.xml" ~key:"yarn.acl.enable" ~value:"true"
      ~cis_like:"#hadoop_auth" ~absent:"YARN ACLs are not declared."
      ~on_fail:"YARN queue/application ACLs are disabled."
      ~on_match:"YARN queue/application ACLs are enforced."
      ~action:"Set yarn.acl.enable=true in yarn-site.xml."
  ^ {yaml|
  - path_name: /etc/hadoop/conf/core-site.xml
    path_description: "Permissions and ownership of core-site.xml."
    ownership: "0:0"
    permission: 644
    file_type: file
    not_matched_preferred_value_description: "core-site.xml is writable by non-root users."
    matched_description: "core-site.xml is owned by root with sane permissions."
    tags: ["#hipaa", "#pci"]
    suggested_action: "chown root:root core-site.xml && chmod 644 core-site.xml"
|yaml}
