(** Embedded CVL rule file for the compose entity; see the module
    implementation for the per-rule rationale. *)

val cvl : string
