(** Embedded CVL rule file for the nginx entity; see the module
    implementation for the per-rule rationale. *)

val cvl : string
