lib/rulesets/ruleset_apache.mli:
