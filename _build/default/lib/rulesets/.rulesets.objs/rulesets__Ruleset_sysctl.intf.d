lib/rulesets/ruleset_sysctl.mli:
