lib/rulesets/ruleset_sshd.mli:
