lib/rulesets/ruleset_modprobe.ml: Printf
