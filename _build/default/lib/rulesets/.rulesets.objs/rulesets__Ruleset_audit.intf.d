lib/rulesets/ruleset_audit.mli:
