lib/rulesets/ruleset_stack.ml:
