lib/rulesets/ruleset_hadoop.ml: Printf
