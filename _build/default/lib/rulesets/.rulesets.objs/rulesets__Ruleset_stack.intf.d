lib/rulesets/ruleset_stack.mli:
