lib/rulesets/ruleset_fstab.ml: Printf
