lib/rulesets/ruleset_docker.mli:
