lib/rulesets/ruleset_openstack.ml:
