lib/rulesets/ruleset_openstack.mli:
