lib/rulesets/ruleset_compose.mli:
