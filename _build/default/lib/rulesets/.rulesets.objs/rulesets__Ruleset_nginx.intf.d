lib/rulesets/ruleset_nginx.mli:
