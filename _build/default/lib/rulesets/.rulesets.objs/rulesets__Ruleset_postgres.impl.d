lib/rulesets/ruleset_postgres.ml:
