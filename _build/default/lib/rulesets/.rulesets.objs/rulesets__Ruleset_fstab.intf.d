lib/rulesets/ruleset_fstab.mli:
