lib/rulesets/ruleset_nginx.ml:
