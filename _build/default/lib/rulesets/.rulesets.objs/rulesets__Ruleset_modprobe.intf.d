lib/rulesets/ruleset_modprobe.mli:
