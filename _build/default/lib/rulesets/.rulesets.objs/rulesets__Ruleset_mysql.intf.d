lib/rulesets/ruleset_mysql.mli:
