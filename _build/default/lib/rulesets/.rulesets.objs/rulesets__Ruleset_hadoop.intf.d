lib/rulesets/ruleset_hadoop.mli:
