lib/rulesets/ruleset_sysctl.ml: List Printf String
