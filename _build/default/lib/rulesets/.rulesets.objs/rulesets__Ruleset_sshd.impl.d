lib/rulesets/ruleset_sshd.ml:
