lib/rulesets/ruleset_docker.ml:
