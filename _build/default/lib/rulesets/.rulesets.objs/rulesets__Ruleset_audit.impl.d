lib/rulesets/ruleset_audit.ml: List Printf String
