lib/rulesets/ruleset_mysql.ml:
