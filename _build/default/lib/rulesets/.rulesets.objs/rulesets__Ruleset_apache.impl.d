lib/rulesets/ruleset_apache.ml:
