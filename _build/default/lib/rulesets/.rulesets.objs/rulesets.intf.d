lib/rulesets/rulesets.mli: Cvl
