lib/rulesets/ruleset_compose.ml:
