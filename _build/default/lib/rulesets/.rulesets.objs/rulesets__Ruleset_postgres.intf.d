lib/rulesets/ruleset_postgres.mli:
