lib/rulesets/ruleset_k8s.mli:
