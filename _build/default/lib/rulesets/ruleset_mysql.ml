(* OWASP/CIS secure-configuration rules for MySQL server (12 rules).
   The my.cnf path rule is the paper's Listing 4, reproduced
   keyword-for-keyword; the ssl-ca key participates in the Listing 1
   composite. *)

let cvl =
  {yaml|
rules:
  - config_name: ssl-ca
    config_path: ["mysqld"]
    config_description: "Certificate authority used to validate client certificates."
    preferred_value: ["/etc/mysql/cacert.pem"]
    preferred_value_match: exact,all
    not_present_description: "ssl-ca is not configured; TLS client verification is off."
    not_matched_preferred_value_description: "ssl-ca does not point at the approved CA bundle."
    matched_description: "mysql server ssl-ca has a cert"
    tags: ["#security", "#ssl", "#owasp"]
    file_context: ["my.cnf", "*.cnf"]
    suggested_action: "Set `ssl-ca=/etc/mysql/cacert.pem` under [mysqld]."

  - script_name: have_ssl
    script_description: "TLS support compiled and active (SHOW VARIABLES LIKE 'have_ssl')."
    script: mysql_variables
    config_path: ["have_ssl"]
    preferred_value: ["YES"]
    preferred_value_match: exact,all
    not_present_description: "The server does not report have_ssl."
    not_matched_preferred_value_description: "TLS is not active on the running server."
    matched_description: "TLS is active on the running server."
    tags: ["#security", "#ssl", "#owasp"]
    suggested_action: "Install server certificates and restart mysqld."

  - config_name: bind-address
    config_path: ["mysqld"]
    config_description: "Listening address of the server."
    preferred_value: ["127.0.0.1", "::1", "localhost"]
    preferred_value_match: exact,any
    not_present_description: "bind-address is not set; the server listens on all interfaces."
    not_matched_preferred_value_description: "The server accepts connections from any interface."
    matched_description: "The server only listens on loopback."
    tags: ["#security", "#owasp"]
    file_context: ["my.cnf", "*.cnf"]
    suggested_action: "Set `bind-address=127.0.0.1` under [mysqld]."

  - config_name: local-infile
    config_path: ["mysqld"]
    config_description: "Client-side LOAD DATA LOCAL INFILE."
    preferred_value: ["0", "OFF"]
    preferred_value_match: exact,any
    not_present_description: "local-infile is not set; local file reads are enabled by default."
    not_matched_preferred_value_description: "Clients may read local files via LOAD DATA LOCAL."
    matched_description: "LOAD DATA LOCAL INFILE is disabled."
    tags: ["#security", "#cis", "#owasp"]
    file_context: ["my.cnf", "*.cnf"]
    suggested_action: "Set `local-infile=0` under [mysqld]."

  - config_name: skip-symbolic-links
    config_path: ["mysqld"]
    config_description: "Symbolic links to tables (privilege-escalation vector)."
    check_presence_only: true
    not_present_description: "skip-symbolic-links is not set."
    matched_description: "Symbolic table links are disabled."
    tags: ["#security", "#cis"]
    file_context: ["my.cnf", "*.cnf"]
    suggested_action: "Add `skip-symbolic-links` under [mysqld]."

  - config_name: secure-file-priv
    config_path: ["mysqld"]
    config_description: "Directory jail for SELECT ... INTO OUTFILE."
    non_preferred_value: [""]
    non_preferred_value_match: exact,all
    not_present_description: "secure-file-priv is not set; file exports are unrestricted."
    not_matched_preferred_value_description: "secure-file-priv is empty; file exports are unrestricted."
    matched_description: "File import/export is restricted to a dedicated directory."
    tags: ["#security", "#cis"]
    file_context: ["my.cnf", "*.cnf"]
    suggested_action: "Set `secure-file-priv=/var/lib/mysql-files`."

  - config_name: old_passwords
    config_path: ["mysqld"]
    config_description: "Legacy pre-4.1 password hashing."
    non_preferred_value: ["1", "ON"]
    non_preferred_value_match: exact,any
    not_present_pass: true
    not_present_description: "old_passwords is not set (modern hashing applies)."
    not_matched_preferred_value_description: "Weak legacy password hashing is enabled."
    matched_description: "Modern password hashing is in use."
    tags: ["#security", "#cis"]
    file_context: ["my.cnf", "*.cnf"]
    suggested_action: "Remove `old_passwords=1`."

  - config_name: user
    config_path: ["mysqld"]
    config_description: "Unix account the server runs as."
    non_preferred_value: ["root"]
    non_preferred_value_match: exact,any
    not_present_description: "user is not set; mysqld may run as the invoking user."
    not_matched_preferred_value_description: "mysqld runs as root."
    matched_description: "mysqld runs under an unprivileged account."
    tags: ["#security", "#cis", "#owasp"]
    file_context: ["my.cnf", "*.cnf"]
    suggested_action: "Set `user=mysql` under [mysqld]."

  - config_name: log-error
    config_path: ["mysqld", "mysqld_safe"]
    config_description: "Error log destination."
    check_presence_only: true
    not_present_description: "log-error is not set; failures go unrecorded."
    matched_description: "Errors are logged to a file."
    tags: ["#security", "#cis", "#audit"]
    file_context: ["my.cnf", "*.cnf"]
    suggested_action: "Set `log-error=/var/log/mysql/error.log`."

  - config_name: skip-networking
    config_path: ["mysqld"]
    config_description: "TCP listener (socket-only deployments)."
    not_present_pass: true
    check_presence_only: true
    not_present_description: "skip-networking is not set (TCP listener active; ensure bind-address is loopback)."
    matched_description: "The TCP listener is disabled; only the Unix socket is served."
    tags: ["#security", "#owasp"]
    file_context: ["my.cnf", "*.cnf"]

  - path_name: /etc/mysql/my.cnf
    path_description: "Permissions and ownership for mysql config file"
    ownership: "0:0"
    permission: 644
    tags: ["#owasp"]
    not_matched_preferred_value_description: "my.cnf is writable by non-root users."
    matched_description: "my.cnf is owned by root with sane permissions."
    suggested_action: "chown root:root /etc/mysql/my.cnf && chmod 644 /etc/mysql/my.cnf"

  - path_name: /var/lib/mysql
    path_description: "Data directory must belong to the mysql account and be private."
    ownership: "105:114"
    permission: 700
    file_type: directory
    not_matched_preferred_value_description: "The data directory is readable by other accounts."
    matched_description: "The data directory is private to the mysql account."
    tags: ["#security", "#cis"]
    suggested_action: "chown -R mysql:mysql /var/lib/mysql && chmod 700 /var/lib/mysql"
|yaml}
