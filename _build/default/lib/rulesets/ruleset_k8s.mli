(** Embedded CVL rule file for the k8s entity; see the module
    implementation for the per-rule rationale. *)

val cvl : string
