(* OSSG (OpenStack Security Guide) rules (12 rules): keystone/nova ini
   configuration plus script rules over API-resident state (security
   groups, identity users) via the openstack_exposures plugin. *)

let cvl =
  {yaml|
rules:
  - config_name: provider
    config_path: ["token"]
    config_description: "Keystone token provider."
    file_context: ["keystone.conf"]
    preferred_value: ["fernet"]
    preferred_value_match: exact,all
    non_preferred_value: ["uuid", "pki", "pkiz"]
    non_preferred_value_match: exact,any
    not_present_description: "No token provider is declared; the deprecated default may apply."
    not_matched_preferred_value_description: "A deprecated token provider (uuid/pki) is configured."
    matched_description: "Fernet tokens are in use."
    tags: ["#security", "#ossg", "openstack"]
    suggested_action: "Set `provider = fernet` under [token] in keystone.conf."

  - config_name: expiration
    config_path: ["token"]
    config_description: "Keystone token lifetime in seconds."
    file_context: ["keystone.conf"]
    preferred_value: ["^([1-9][0-9]{0,2}|[1-2][0-9]{3}|3[0-5][0-9]{2}|3600)$"]
    preferred_value_match: regex,any
    not_present_description: "Token expiration is not declared."
    not_matched_preferred_value_description: "Tokens live longer than one hour."
    matched_description: "Tokens expire within an hour."
    tags: ["#security", "#ossg", "openstack"]
    suggested_action: "Set `expiration = 3600` under [token] in keystone.conf."

  - config_name: admin_token
    config_path: ["DEFAULT"]
    config_description: "The shared-secret bootstrap admin token."
    file_context: ["keystone.conf"]
    non_preferred_value: [".+"]
    non_preferred_value_match: regex,any
    not_present_pass: true
    not_present_description: "No bootstrap admin token is configured."
    not_matched_preferred_value_description: "A bootstrap admin token is still configured."
    matched_description: "The bootstrap admin token is removed."
    tags: ["#security", "#ossg", "openstack"]
    suggested_action: "Delete admin_token from keystone.conf after bootstrap."

  - config_name: lockout_failure_attempts
    config_path: ["security_compliance"]
    config_description: "Account lockout after failed authentications."
    file_context: ["keystone.conf"]
    check_presence_only: true
    not_present_description: "No lockout policy is configured; brute force is unthrottled."
    matched_description: "Failed logins lock the account."
    tags: ["#security", "#ossg", "openstack"]
    suggested_action: "Set `lockout_failure_attempts = 6` under [security_compliance]."

  - config_name: insecure_debug
    config_path: ["DEFAULT"]
    config_description: "Verbose auth failure detail in API responses."
    file_context: ["keystone.conf"]
    non_preferred_value: ["true", "True"]
    non_preferred_value_match: exact,any
    not_present_pass: true
    not_present_description: "insecure_debug is not set (defaults to false)."
    not_matched_preferred_value_description: "Auth failures leak internal detail to clients."
    matched_description: "Auth failure responses are terse."
    tags: ["#security", "#ossg", "openstack"]
    suggested_action: "Remove `insecure_debug = true` from keystone.conf."

  - config_name: auth_strategy
    config_path: ["DEFAULT", "api"]
    config_description: "Nova authentication strategy."
    file_context: ["nova.conf"]
    preferred_value: ["keystone"]
    preferred_value_match: exact,all
    not_present_description: "auth_strategy is not declared; noauth may be active."
    not_matched_preferred_value_description: "Nova accepts unauthenticated requests."
    matched_description: "Nova authenticates through Keystone."
    tags: ["#security", "#ossg", "openstack"]
    suggested_action: "Set `auth_strategy = keystone` in nova.conf."

  - config_name: debug
    config_path: ["DEFAULT"]
    config_description: "Debug logging in production."
    file_context: ["nova.conf", "keystone.conf"]
    non_preferred_value: ["true", "True"]
    non_preferred_value_match: exact,any
    not_present_pass: true
    not_present_description: "debug is not set (defaults to false)."
    not_matched_preferred_value_description: "Debug logging is enabled in production."
    matched_description: "Debug logging is off."
    tags: ["#performance", "#ossg", "openstack"]
    suggested_action: "Set `debug = false`."

  - config_name: api_insecure
    config_path: ["glance", "DEFAULT"]
    config_description: "TLS verification towards the image service."
    file_context: ["nova.conf"]
    non_preferred_value: ["true", "True"]
    non_preferred_value_match: exact,any
    not_present_pass: true
    not_present_description: "api_insecure is not set (verification on)."
    not_matched_preferred_value_description: "TLS verification towards Glance is disabled."
    matched_description: "TLS verification towards Glance is enforced."
    tags: ["#security", "#ossg", "#ssl", "openstack"]
    suggested_action: "Remove `api_insecure = true` from nova.conf."

  - script_name: world_open_ssh
    script_description: "No security group exposes SSH to 0.0.0.0/0."
    script: openstack_exposures
    config_path: ["world_open_ssh"]
    preferred_value: ["no"]
    preferred_value_match: exact,all
    not_present_description: "The exposure plugin reported no SSH fact."
    not_matched_preferred_value_description: "Port 22 is open to the world in a security group."
    matched_description: "SSH is not world-reachable."
    tags: ["#security", "#ossg", "openstack"]
    suggested_action: "Restrict ingress on port 22 to management CIDRs."

  - script_name: world_open_db
    script_description: "No security group exposes the database port to 0.0.0.0/0."
    script: openstack_exposures
    config_path: ["world_open_db"]
    preferred_value: ["no"]
    preferred_value_match: exact,all
    not_present_description: "The exposure plugin reported no DB fact."
    not_matched_preferred_value_description: "Port 3306 is open to the world in a security group."
    matched_description: "The database port is not world-reachable."
    tags: ["#security", "#ossg", "openstack"]
    suggested_action: "Restrict ingress on 3306 to the application tier."

  - script_name: admins_without_mfa
    script_description: "Every enabled admin account uses multi-factor authentication."
    script: openstack_exposures
    config_path: ["admins_without_mfa"]
    preferred_value: ["0"]
    preferred_value_match: exact,all
    not_present_description: "The exposure plugin reported no MFA fact."
    not_matched_preferred_value_description: "At least one enabled admin lacks MFA."
    matched_description: "All enabled admins use MFA."
    tags: ["#security", "#ossg", "openstack"]
    suggested_action: "Enable MFA for all admin accounts."

  - path_name: /etc/keystone/keystone.conf
    path_description: "Keystone configuration must be private to the service account."
    ownership: "116:116"
    permission: 640
    file_type: file
    not_matched_preferred_value_description: "keystone.conf is readable by other accounts."
    matched_description: "keystone.conf is private to the keystone account."
    tags: ["#security", "#ossg", "openstack"]
    suggested_action: "chown keystone:keystone keystone.conf && chmod 640 keystone.conf"
|yaml}
