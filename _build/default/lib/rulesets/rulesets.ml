let manifest_yaml =
  {yaml|
sshd:
  enabled: True
  config_search_paths:
    - /etc/ssh
  cvl_file: "component_configs/sshd.yaml"
  lens: sshd
sysctl:
  enabled: True
  config_search_paths:
    - /etc/sysctl.conf
    - /etc/sysctl.d
  cvl_file: "component_configs/sysctl.yaml"
  lens: sysctl
fstab:
  enabled: True
  config_search_paths:
    - /etc/fstab
  cvl_file: "component_configs/fstab.yaml"
  lens: fstab
modprobe:
  enabled: True
  config_search_paths:
    - /etc/modprobe.d
  cvl_file: "component_configs/modprobe.yaml"
  lens: modprobe
audit:
  enabled: True
  config_search_paths:
    - /etc/audit
  cvl_file: "component_configs/audit.yaml"
  lens: audit
nginx:
  enabled: True
  config_search_paths:
    - /etc/nginx
  cvl_file: "component_configs/nginx.yaml"
  lens: nginx
apache:
  enabled: True
  config_search_paths:
    - /etc/apache2
  cvl_file: "component_configs/apache.yaml"
  lens: apache
mysql:
  enabled: True
  config_search_paths:
    - /etc/mysql
  cvl_file: "component_configs/mysql.yaml"
  lens: ini
hadoop:
  enabled: True
  config_search_paths:
    - /etc/hadoop/conf
  cvl_file: "component_configs/hadoop.yaml"
  lens: hadoop
docker:
  enabled: True
  config_search_paths:
    - /etc/docker
  cvl_file: "component_configs/docker.yaml"
  lens: json
openstack:
  enabled: True
  config_search_paths:
    - /etc/keystone
    - /etc/nova
  cvl_file: "component_configs/openstack.yaml"
  lens: ini
stack:
  enabled: True
  cvl_file: "component_configs/stack.yaml"
compose:
  enabled: True
  config_search_paths:
    - /srv
  cvl_file: "component_configs/compose.yaml"
  lens: yaml
kubernetes:
  enabled: True
  config_search_paths:
    - /etc/kubernetes/manifests
  cvl_file: "component_configs/kubernetes.yaml"
  lens: yaml
postgres:
  enabled: True
  config_search_paths:
    - /etc/postgresql
  cvl_file: "component_configs/postgres.yaml"
  lens: postgres
|yaml}

(* A deployment-specific override file, demonstrating CVL inheritance:
   it relaxes the sshd banner rule and disables the protocol rule. *)
let sshd_site_overrides =
  {yaml|
parent_cvl_file: "component_configs/sshd.yaml"
rules:
  - config_name: Banner
    preferred_value: ["/etc/issue.net", "/etc/issue", "/etc/motd"]
    matched_description: "A site-approved banner is displayed before authentication."

  - config_name: Protocol
    disabled: true
|yaml}

let files =
  [
    ("manifest.yaml", manifest_yaml);
    ("component_configs/sshd.yaml", Ruleset_sshd.cvl);
    ("component_configs/sysctl.yaml", Ruleset_sysctl.cvl);
    ("component_configs/fstab.yaml", Ruleset_fstab.cvl);
    ("component_configs/modprobe.yaml", Ruleset_modprobe.cvl);
    ("component_configs/audit.yaml", Ruleset_audit.cvl);
    ("component_configs/nginx.yaml", Ruleset_nginx.cvl);
    ("component_configs/apache.yaml", Ruleset_apache.cvl);
    ("component_configs/mysql.yaml", Ruleset_mysql.cvl);
    ("component_configs/hadoop.yaml", Ruleset_hadoop.cvl);
    ("component_configs/docker.yaml", Ruleset_docker.cvl);
    ("component_configs/openstack.yaml", Ruleset_openstack.cvl);
    ("component_configs/stack.yaml", Ruleset_stack.cvl);
    ("component_configs/compose.yaml", Ruleset_compose.cvl);
    ("component_configs/kubernetes.yaml", Ruleset_k8s.cvl);
    ("component_configs/postgres.yaml", Ruleset_postgres.cvl);
    ("site_overrides/sshd.yaml", sshd_site_overrides);
  ]

let source = Cvl.Loader.assoc_source files

let manifest = Cvl.Manifest.parse_exn manifest_yaml

let all_rules () =
  List.map
    (fun (entry : Cvl.Manifest.entry) ->
      match Cvl.Manifest.load_rules source entry with
      | Ok rules -> (entry.Cvl.Manifest.entity, rules)
      | Error msg ->
        invalid_arg (Printf.sprintf "embedded ruleset %s failed to load: %s" entry.Cvl.Manifest.entity msg))
    manifest

let applications = [ "apache"; "nginx"; "hadoop"; "mysql" ]
let system_services = [ "audit"; "fstab"; "sshd"; "sysctl"; "modprobe" ]
let cloud_services = [ "openstack"; "docker" ]

let paper_rule_count () =
  let paper_entities = applications @ system_services @ cloud_services in
  all_rules ()
  |> List.filter (fun (entity, _) -> List.mem entity paper_entities)
  |> List.fold_left (fun acc (_, rules) -> acc + List.length rules) 0

(* Post-paper coverage growth (paper §5 promises community expansion). *)
let extra_targets = [ "compose"; "kubernetes"; "postgres" ]

let standard_of = function
  | "apache" | "nginx" -> "OWASP"
  | "hadoop" -> "HIPAA, PCI"
  | "openstack" -> "OSSG"
  | "stack" -> "(composite examples)"
  | "compose" | "kubernetes" -> "CIS Docker / PSP (post-paper)"
  | "postgres" -> "CIS PostgreSQL (post-paper)"
  | _ -> "CIS"
