(* CIS Ubuntu 14.04 §9.3 — OpenSSH server configuration (14 rules).
   The PermitRootLogin rule is the paper's Listing 6 exemplar,
   reproduced keyword-for-keyword. *)

let cvl =
  {yaml|
rules:
  - config_name: Protocol
    tags: ["#security", "#cis", "#cisubuntu14.04_9.3.1"]
    config_path: [""]
    config_description: "SSH protocol version."
    file_context: ["sshd_config"]
    preferred_value: ["2"]
    preferred_value_match: exact,any
    not_present_description: "Protocol is not present; older clients may negotiate SSHv1."
    not_matched_preferred_value_description: "SSH protocol 1 is permitted."
    matched_description: "Only SSH protocol 2 is permitted."
    suggested_action: "Set `Protocol 2` in sshd_config."

  - config_name: LogLevel
    tags: ["#security", "#cis", "#cisubuntu14.04_9.3.2"]
    config_path: [""]
    config_description: "Verbosity of sshd logging."
    file_context: ["sshd_config"]
    preferred_value: ["INFO", "VERBOSE"]
    preferred_value_match: exact,any
    not_present_description: "LogLevel is not present (default INFO applies, but make it explicit)."
    not_matched_preferred_value_description: "LogLevel is below INFO; logins may not be recorded."
    matched_description: "LogLevel captures login activity."
    suggested_action: "Set `LogLevel INFO` in sshd_config."

  - path_name: /etc/ssh/sshd_config
    tags: ["#security", "#cis", "#cisubuntu14.04_9.3.3"]
    path_description: "Permissions and ownership of the sshd configuration file."
    ownership: "0:0"
    permission: 600
    file_type: file
    not_matched_preferred_value_description: "sshd_config is readable by non-root users."
    matched_description: "sshd_config is owned by root and not world readable."
    suggested_action: "chown root:root /etc/ssh/sshd_config && chmod 600 /etc/ssh/sshd_config"

  - config_name: X11Forwarding
    tags: ["#security", "#cis", "#cisubuntu14.04_9.3.4"]
    config_path: [""]
    config_description: "X11 channel forwarding over SSH."
    file_context: ["sshd_config"]
    preferred_value: ["no"]
    preferred_value_match: exact,all
    not_present_description: "X11Forwarding not present (defaults to no)."
    not_present_pass: true
    not_matched_preferred_value_description: "X11Forwarding is enabled."
    matched_description: "X11Forwarding is disabled."
    suggested_action: "Set `X11Forwarding no` in sshd_config."

  - config_name: MaxAuthTries
    tags: ["#security", "#cis", "#cisubuntu14.04_9.3.5"]
    config_path: [""]
    config_description: "Maximum authentication attempts per connection."
    file_context: ["sshd_config"]
    preferred_value: ["^[1-4]$"]
    preferred_value_match: regex,any
    not_present_description: "MaxAuthTries is not present; the default of 6 is too permissive."
    not_matched_preferred_value_description: "MaxAuthTries exceeds 4."
    matched_description: "MaxAuthTries is 4 or less."
    suggested_action: "Set `MaxAuthTries 4` in sshd_config."

  - config_name: IgnoreRhosts
    tags: ["#security", "#cis", "#cisubuntu14.04_9.3.6"]
    config_path: [""]
    config_description: ".rhosts-based authentication."
    file_context: ["sshd_config"]
    preferred_value: ["yes"]
    preferred_value_match: exact,all
    not_present_description: "IgnoreRhosts is not present (defaults to yes)."
    not_present_pass: true
    not_matched_preferred_value_description: "IgnoreRhosts is disabled; .rhosts files are honoured."
    matched_description: "rhosts files are ignored."
    suggested_action: "Set `IgnoreRhosts yes` in sshd_config."

  - config_name: HostbasedAuthentication
    tags: ["#security", "#cis", "#cisubuntu14.04_9.3.7"]
    config_path: [""]
    config_description: "Trust-based authentication via .shosts."
    file_context: ["sshd_config"]
    preferred_value: ["no"]
    preferred_value_match: exact,all
    not_present_description: "HostbasedAuthentication is not present (defaults to no)."
    not_present_pass: true
    not_matched_preferred_value_description: "Host-based authentication is enabled."
    matched_description: "Host-based authentication is disabled."
    suggested_action: "Set `HostbasedAuthentication no` in sshd_config."

  - config_name: PermitRootLogin
    tags: ["#security", "#cis", "#cisubuntu14.04_5.2.8"]
    config_path: [""]
    config_description: "Enable root login."
    file_context: ["sshd_config"]
    preferred_value: ["no"]
    preferred_value_match: substr,all
    not_present_description: "PermitRootLogin is not present. It is enabled by default."
    not_matched_preferred_value_description: "PermitRootLogin is present but it is enabled."
    matched_description: "Root login is disabled."
    suggested_action: "Set `PermitRootLogin no` in sshd_config."

  - config_name: PermitEmptyPasswords
    tags: ["#security", "#cis", "#cisubuntu14.04_9.3.9"]
    config_path: [""]
    config_description: "Login to accounts with empty passwords."
    file_context: ["sshd_config"]
    preferred_value: ["no"]
    preferred_value_match: exact,all
    not_present_description: "PermitEmptyPasswords is not present (defaults to no)."
    not_present_pass: true
    not_matched_preferred_value_description: "Accounts with empty passwords may log in over SSH."
    matched_description: "Empty-password logins are refused."
    suggested_action: "Set `PermitEmptyPasswords no` in sshd_config."

  - config_name: PermitUserEnvironment
    tags: ["#security", "#cis", "#cisubuntu14.04_9.3.10"]
    config_path: [""]
    config_description: "Processing of ~/.ssh/environment."
    file_context: ["sshd_config"]
    preferred_value: ["no"]
    preferred_value_match: exact,all
    not_present_description: "PermitUserEnvironment is not present (defaults to no)."
    not_present_pass: true
    not_matched_preferred_value_description: "Users may inject environment variables into their sessions."
    matched_description: "User environment processing is disabled."
    suggested_action: "Set `PermitUserEnvironment no` in sshd_config."

  - config_name: Ciphers
    tags: ["#security", "#cis", "#cisubuntu14.04_9.3.11"]
    config_path: [""]
    config_description: "Approved symmetric ciphers."
    file_context: ["sshd_config"]
    non_preferred_value: ["cbc", "arcfour", "3des"]
    non_preferred_value_match: substr,any
    case_insensitive: true
    not_present_description: "Ciphers is not present; weak CBC ciphers may be negotiated."
    not_matched_preferred_value_description: "A weak cipher (CBC/arcfour/3des) is enabled."
    matched_description: "Only counter-mode ciphers are enabled."
    suggested_action: "Set `Ciphers aes256-ctr,aes192-ctr,aes128-ctr`."

  - config_name: ClientAliveInterval
    tags: ["#security", "#cis", "#cisubuntu14.04_9.3.12"]
    config_path: [""]
    config_description: "Idle timeout before the server terminates the session."
    file_context: ["sshd_config"]
    preferred_value: ["^([1-9][0-9]?|[12][0-9][0-9]|300)$"]
    preferred_value_match: regex,any
    not_present_description: "ClientAliveInterval is not present; idle sessions never time out."
    not_matched_preferred_value_description: "Idle timeout exceeds 300 seconds."
    matched_description: "Idle sessions are terminated within 300 seconds."
    suggested_action: "Set `ClientAliveInterval 300` and `ClientAliveCountMax 0`."

  - config_name: LoginGraceTime
    tags: ["#security", "#cis", "#cisubuntu14.04_9.3.13"]
    config_path: [""]
    config_description: "Window to complete authentication."
    file_context: ["sshd_config"]
    preferred_value: ["^([1-9]|[1-5][0-9]|60)$"]
    preferred_value_match: regex,any
    not_present_description: "LoginGraceTime is not present; the 120s default holds sockets open."
    not_matched_preferred_value_description: "LoginGraceTime exceeds 60 seconds."
    matched_description: "Authentication must complete within a minute."
    suggested_action: "Set `LoginGraceTime 60` in sshd_config."

  - config_name: Banner
    tags: ["#security", "#cis", "#cisubuntu14.04_9.3.14"]
    config_path: [""]
    config_description: "Pre-authentication warning banner."
    file_context: ["sshd_config"]
    preferred_value: ["/etc/issue.net", "/etc/issue"]
    preferred_value_match: exact,any
    not_present_description: "No warning banner is configured."
    not_matched_preferred_value_description: "Banner does not point at the standard issue file."
    matched_description: "A warning banner is displayed before authentication."
    suggested_action: "Set `Banner /etc/issue.net` in sshd_config."
|yaml}
