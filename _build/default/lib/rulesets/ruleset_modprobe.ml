(* CIS Ubuntu 14.04 §1.1.x — uncommon filesystems and protocols
   disabled at the kernel-module level (9 schema rules over
   modprobe.d). *)

let disabled_module ~module_ ~cis =
  Printf.sprintf
    {yaml|
  - config_schema_name: disable_%s
    config_schema_description: "Mounting of %s is disabled via modprobe"
    query_constraints: "directive = ? AND module = ?"
    query_constraints_value: ["install", "%s"]
    query_columns: "args"
    preferred_value: ["/bin/true", "/bin/false"]
    preferred_value_match: exact,any
    non_preferred_value: [""]
    non_preferred_value_match: exact,all
    not_matched_preferred_value_description: "The %s module can still be loaded"
    matched_description: "%s is install-disabled"
    tags: ["#cis", "#cisubuntu14.04_%s"]
    suggested_action: "Add `install %s /bin/true` to /etc/modprobe.d/CIS.conf."
|yaml}
    module_ module_ module_ module_ module_ cis module_

let blacklist ~module_ ~cis =
  Printf.sprintf
    {yaml|
  - config_schema_name: blacklist_%s
    config_schema_description: "%s is blacklisted"
    query_constraints: "directive = ? AND module = ?"
    query_constraints_value: ["blacklist", "%s"]
    query_columns: "module"
    expect_rows: 1
    not_matched_preferred_value_description: "%s is not blacklisted"
    matched_description: "%s is blacklisted"
    tags: ["#cis", "#cisubuntu14.04_%s"]
    suggested_action: "Add `blacklist %s` to /etc/modprobe.d/blacklist.conf."
|yaml}
    module_ module_ module_ module_ module_ cis module_

let cvl =
  "\nrules:\n"
  ^ disabled_module ~module_:"cramfs" ~cis:"1.1.18"
  ^ disabled_module ~module_:"freevxfs" ~cis:"1.1.19"
  ^ disabled_module ~module_:"jffs2" ~cis:"1.1.20"
  ^ disabled_module ~module_:"hfs" ~cis:"1.1.21"
  ^ disabled_module ~module_:"hfsplus" ~cis:"1.1.22"
  ^ disabled_module ~module_:"squashfs" ~cis:"1.1.23"
  ^ disabled_module ~module_:"udf" ~cis:"1.1.24"
  ^ disabled_module ~module_:"dccp" ~cis:"7.5.1"
  ^ blacklist ~module_:"usb-storage" ~cis:"1.1.25"
