(* CIS Ubuntu 14.04 §2.x — filesystem partitioning and mount options
   (8 schema rules over /etc/fstab). The /tmp separate-partition rule is
   the paper's Listing 3, reproduced keyword-for-keyword. *)

let separate_partition ~dir ~cis ~slug =
  Printf.sprintf
    {yaml|
  - config_schema_name: check_%s_separate_partition
    config_schema_description: "Check if %s is on a separate partition"
    query_constraints: "dir = ?"
    query_constraints_value: ["%s"]
    query_columns: "*"
    non_preferred_value: [""]
    non_preferred_value_match: exact,all
    not_matched_preferred_value_description: "%s not on sep. partition"
    matched_description: "%s is on a separate partition"
    tags: ["#cis", "#cisubuntu14.04_%s"]
    suggested_action: "Create a dedicated partition for %s."
|yaml}
    slug dir dir dir dir cis dir

let mount_option ~dir ~option ~cis ~slug =
  Printf.sprintf
    {yaml|
  - config_schema_name: check_%s_%s
    config_schema_description: "Check that %s is mounted with the %s option"
    query_constraints: "dir = ?"
    query_constraints_value: ["%s"]
    query_columns: "options"
    preferred_value: ["%s"]
    preferred_value_match: substr,all
    not_matched_preferred_value_description: "%s is mounted without %s"
    matched_description: "%s is mounted with %s"
    tags: ["#cis", "#cisubuntu14.04_%s"]
    suggested_action: "Add %s to the %s mount options in /etc/fstab."
|yaml}
    slug option dir option dir option dir option dir option cis option dir

let cvl =
  "\nrules:\n"
  ^ separate_partition ~dir:"/tmp" ~cis:"2.1" ~slug:"tmp"
  ^ mount_option ~dir:"/tmp" ~option:"nodev" ~cis:"2.2" ~slug:"tmp"
  ^ mount_option ~dir:"/tmp" ~option:"nosuid" ~cis:"2.3" ~slug:"tmp"
  ^ mount_option ~dir:"/tmp" ~option:"noexec" ~cis:"2.4" ~slug:"tmp"
  ^ separate_partition ~dir:"/var" ~cis:"2.5" ~slug:"var"
  ^ separate_partition ~dir:"/var/log" ~cis:"2.8" ~slug:"var_log"
  ^ separate_partition ~dir:"/home" ~cis:"2.10" ~slug:"home"
  ^ mount_option ~dir:"/run/shm" ~option:"noexec" ~cis:"2.16" ~slug:"run_shm"
