(* CIS Docker benchmark rules (15 rules): daemon configuration via
   daemon.json, container runtime state via the docker_inspect plugin,
   and image configuration via the docker_image_config plugin. The
   paper reports 41% coverage of the CIS Docker checklist; this corpus
   covers the daemon-, container- and image-configuration sections. *)

let cvl =
  {yaml|
rules:
  - config_name: icc
    config_path: [""]
    config_description: "Inter-container communication on the default bridge."
    file_context: ["daemon.json"]
    preferred_value: ["false"]
    preferred_value_match: exact,all
    not_present_description: "icc is not set; all containers can talk to each other."
    not_matched_preferred_value_description: "Unrestricted inter-container traffic is allowed."
    matched_description: "Inter-container communication is restricted."
    tags: ["#security", "#cis", "#cisdocker_2.1"]
    suggested_action: "Set \"icc\": false in /etc/docker/daemon.json."

  - config_name: userland-proxy
    config_path: [""]
    config_description: "Userland proxy for published ports (hairpin NAT suffices)."
    file_context: ["daemon.json"]
    preferred_value: ["false"]
    preferred_value_match: exact,all
    not_present_description: "userland-proxy is not set (enabled by default)."
    not_matched_preferred_value_description: "The userland proxy process is enabled."
    matched_description: "The userland proxy is disabled."
    tags: ["#security", "#cis", "#cisdocker_2.15"]
    suggested_action: "Set \"userland-proxy\": false in daemon.json."

  - config_name: live-restore
    config_path: [""]
    config_description: "Keep containers alive across daemon restarts."
    file_context: ["daemon.json"]
    preferred_value: ["true"]
    preferred_value_match: exact,all
    not_present_description: "live-restore is not set; daemon restarts kill workloads."
    not_matched_preferred_value_description: "live-restore is disabled."
    matched_description: "Containers survive daemon restarts."
    tags: ["#availability", "#cis", "#cisdocker_2.14"]
    suggested_action: "Set \"live-restore\": true in daemon.json."

  - config_name: insecure-registries
    config_path: [""]
    config_description: "Registries contacted over plain HTTP."
    file_context: ["daemon.json"]
    non_preferred_value: [".+"]
    non_preferred_value_match: regex,any
    not_present_pass: true
    not_present_description: "No insecure registries are configured."
    not_matched_preferred_value_description: "An insecure (HTTP) registry is configured."
    matched_description: "All registries require TLS."
    tags: ["#security", "#cis", "#cisdocker_2.4"]
    suggested_action: "Remove insecure-registries from daemon.json."

  - config_name: userns-remap
    config_path: [""]
    config_description: "User-namespace remapping for container root."
    file_context: ["daemon.json"]
    preferred_value: ["default"]
    preferred_value_match: exact,any
    not_present_description: "userns-remap is not set; container root is host root."
    not_matched_preferred_value_description: "User-namespace remapping is not the default mapping."
    matched_description: "Container root is remapped to an unprivileged host range."
    tags: ["#security", "#cis", "#cisdocker_2.8"]
    suggested_action: "Set \"userns-remap\": \"default\" in daemon.json."

  - config_name: log-driver
    config_path: [""]
    config_description: "Centralized logging driver."
    file_context: ["daemon.json"]
    check_presence_only: true
    not_present_description: "No log driver is configured; container logs stay on the host."
    matched_description: "A logging driver is configured."
    tags: ["#audit", "#cis", "#cisdocker_2.12"]
    suggested_action: "Configure \"log-driver\": \"syslog\" (or a shipper) in daemon.json."

  - script_name: container_privileged
    script_description: "Containers must not run with --privileged."
    script: docker_inspect
    config_path: ["HostConfig/Privileged"]
    preferred_value: ["false"]
    preferred_value_match: exact,all
    not_present_description: "The inspect document does not report Privileged."
    not_matched_preferred_value_description: "The container runs privileged: full host device access."
    matched_description: "The container is unprivileged."
    tags: ["#security", "#cis", "#cisdocker_5.4", "docker"]
    suggested_action: "Drop --privileged; grant specific capabilities instead."

  - script_name: container_network_mode
    script_description: "Containers must not share the host network namespace."
    script: docker_inspect
    config_path: ["HostConfig/NetworkMode"]
    non_preferred_value: ["host"]
    non_preferred_value_match: exact,any
    not_present_description: "The inspect document does not report NetworkMode."
    not_matched_preferred_value_description: "The container shares the host network namespace."
    matched_description: "The container has its own network namespace."
    tags: ["#security", "#cis", "#cisdocker_5.9", "docker"]
    suggested_action: "Remove --net=host."

  - script_name: container_pid_mode
    script_description: "Containers must not share the host PID namespace."
    script: docker_inspect
    config_path: ["HostConfig/PidMode"]
    non_preferred_value: ["host"]
    non_preferred_value_match: exact,any
    not_present_description: "The inspect document does not report PidMode."
    not_matched_preferred_value_description: "The container shares the host PID namespace."
    matched_description: "The container has its own PID namespace."
    tags: ["#security", "#cis", "#cisdocker_5.15", "docker"]
    suggested_action: "Remove --pid=host."

  - script_name: container_readonly_rootfs
    script_description: "Container root filesystems should be read-only."
    script: docker_inspect
    config_path: ["HostConfig/ReadonlyRootfs"]
    preferred_value: ["true"]
    preferred_value_match: exact,all
    not_present_description: "The inspect document does not report ReadonlyRootfs."
    not_matched_preferred_value_description: "The container root filesystem is writable."
    matched_description: "The container root filesystem is read-only."
    tags: ["#security", "#cis", "#cisdocker_5.12", "docker"]
    suggested_action: "Run with --read-only and explicit volumes for writable paths."

  - script_name: container_memory_limit
    script_description: "Containers must carry a memory limit."
    script: docker_inspect
    config_path: ["HostConfig/Memory"]
    non_preferred_value: ["0"]
    non_preferred_value_match: exact,any
    not_present_description: "The inspect document does not report Memory."
    not_matched_preferred_value_description: "No memory limit: one container can exhaust the host."
    matched_description: "A memory limit is set."
    tags: ["#performance", "#cis", "#cisdocker_5.10", "docker"]
    suggested_action: "Run with --memory=<limit>."

  - script_name: container_restart_policy
    script_description: "Restart policy should be on-failure with bounded retries."
    script: docker_inspect
    config_path: ["HostConfig/RestartPolicy/Name"]
    preferred_value: ["on-failure", "no"]
    preferred_value_match: exact,any
    not_present_description: "The inspect document does not report a restart policy."
    not_matched_preferred_value_description: "restart=always can mask crash loops."
    matched_description: "The restart policy bounds retries."
    tags: ["#availability", "#cis", "#cisdocker_5.14", "docker"]
    suggested_action: "Use --restart=on-failure:5."

  - script_name: container_docker_socket
    script_description: "The Docker control socket must not be mounted into containers."
    script: docker_inspect
    config_path: ["HostConfig/Binds"]
    non_preferred_value: ["docker.sock"]
    non_preferred_value_match: substr,any
    not_present_pass: true
    not_present_description: "No bind mounts are configured."
    not_matched_preferred_value_description: "The Docker socket is mounted: container root controls the host."
    matched_description: "The Docker socket is not exposed to the container."
    tags: ["#security", "#cis", "#cisdocker_5.31", "docker"]
    suggested_action: "Remove the /var/run/docker.sock bind mount."

  - script_name: image_user
    script_description: "Images must declare an unprivileged USER."
    script: docker_image_config
    config_path: ["User"]
    non_preferred_value: ["", "root", "0"]
    non_preferred_value_match: exact,any
    not_present_description: "The image config does not report User."
    not_matched_preferred_value_description: "The image runs as root."
    matched_description: "The image declares an unprivileged USER."
    tags: ["#security", "#cis", "#cisdocker_4.1", "docker"]
    suggested_action: "Add a USER instruction to the Dockerfile."

  - script_name: image_healthcheck
    script_description: "Images should declare a HEALTHCHECK."
    script: docker_image_config
    config_path: ["Healthcheck/Test"]
    preferred_value: [".+"]
    preferred_value_match: regex,any
    not_present_description: "The image declares no HEALTHCHECK."
    not_matched_preferred_value_description: "The image HEALTHCHECK is empty."
    matched_description: "The image declares a HEALTHCHECK."
    tags: ["#availability", "#cis", "#cisdocker_4.6", "docker"]
    suggested_action: "Add a HEALTHCHECK instruction to the Dockerfile."
|yaml}
