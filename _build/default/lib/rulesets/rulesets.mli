(** The embedded rule corpus: the paper's Table 1 targets (11 entity
    types, 135 rules conforming to CIS / OWASP / HIPAA / PCI / OSSG)
    plus the cross-entity composite examples (Listing 1).

    Rule files live in this library as CVL YAML text, addressed by the
    same [component_configs/<entity>.yaml] paths a deployed
    ConfigValidator would read from disk, so the {!Cvl.Loader.source}
    abstraction behaves identically for embedded and on-disk rules. *)

(** (path, YAML text) for every rule file, including the manifest at
    ["manifest.yaml"] and the inheritance example at
    ["site_overrides/sshd.yaml"]. *)
val files : (string * string) list

(** Source resolving the embedded files. *)
val source : Cvl.Loader.source

(** The parsed manifest: 15 entries — the 11 Table 1 targets, the
    [stack] composite entity, and the post-paper growth targets
    (compose, kubernetes, postgres). *)
val manifest : Cvl.Manifest.entry list

(** All rules per entity, loaded through {!source}.
    @raise Invalid_argument if the embedded corpus fails to load —
    tests assert it never does. *)
val all_rules : unit -> (string * Cvl.Rule.t list) list

(** Total rule count across the 11 paper targets (excludes the [stack]
    composites); the paper reports 135. *)
val paper_rule_count : unit -> int

(** Entity names in Table 1 order, grouped as the paper groups them. *)
val applications : string list

(** Post-paper coverage growth: docker-compose and Kubernetes manifests
    (the expansion the paper's §5 anticipates). Not counted in
    {!paper_rule_count}. *)
val extra_targets : string list

val system_services : string list
val cloud_services : string list

(** The checklist standard each entity's rules adhere to (Table 1 notes:
    CIS except Apache/Nginx/Hadoop → OWASP/HIPAA/PCI, OpenStack →
    OSSG). *)
val standard_of : string -> string
