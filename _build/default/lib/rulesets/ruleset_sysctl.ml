(* CIS Ubuntu 14.04 §7.x — kernel network parameters (14 rules).
   Thirteen assert on /etc/sysctl.conf; the last is a script rule over
   the live `sysctl -a` table (the paper's example of configuration the
   OS does not fully expose in files). *)

let kv_rule ~name ~cis ~value ~on_fail ~on_match ~absent =
  Printf.sprintf
    {yaml|
  - config_name: %s
    tags: ["#security", "#cis", "#cisubuntu14.04_%s"]
    config_path: [""]
    config_description: "Kernel parameter %s."
    file_context: ["sysctl.conf"]
    preferred_value: ["%s"]
    preferred_value_match: exact,all
    not_present_description: "%s"
    not_matched_preferred_value_description: "%s"
    matched_description: "%s"
    suggested_action: "Set `%s = %s` in /etc/sysctl.conf and run sysctl -p."
|yaml}
    name cis name value absent on_fail on_match name value

let params =
  [
    ("net.ipv4.ip_forward", "7.1.1", "0", "IP forwarding is enabled; the host can route packets.",
     "IP forwarding is disabled.", "net.ipv4.ip_forward is not set; the kernel default may permit forwarding.");
    ("net.ipv4.conf.all.send_redirects", "7.1.2", "0", "ICMP redirects may be sent (all).",
     "ICMP redirect sending is disabled (all).", "send_redirects (all) is not set.");
    ("net.ipv4.conf.default.send_redirects", "7.1.2", "0", "ICMP redirects may be sent (default).",
     "ICMP redirect sending is disabled (default).", "send_redirects (default) is not set.");
    ("net.ipv4.conf.all.accept_source_route", "7.2.1", "0", "Source-routed packets are accepted (all).",
     "Source-routed packets are refused (all).", "accept_source_route (all) is not set.");
    ("net.ipv4.conf.default.accept_source_route", "7.2.1", "0", "Source-routed packets are accepted (default).",
     "Source-routed packets are refused (default).", "accept_source_route (default) is not set.");
    ("net.ipv4.conf.all.accept_redirects", "7.2.2", "0", "ICMP redirects are accepted (all).",
     "ICMP redirects are refused (all).", "accept_redirects (all) is not set.");
    ("net.ipv4.conf.default.accept_redirects", "7.2.2", "0", "ICMP redirects are accepted (default).",
     "ICMP redirects are refused (default).", "accept_redirects (default) is not set.");
    ("net.ipv4.conf.all.secure_redirects", "7.2.3", "0", "Secure ICMP redirects are accepted.",
     "Secure ICMP redirects are refused.", "secure_redirects is not set.");
    ("net.ipv4.conf.all.log_martians", "7.2.4", "1", "Suspicious (martian) packets are not logged.",
     "Martian packets are logged.", "log_martians is not set.");
    ("net.ipv4.icmp_echo_ignore_broadcasts", "7.2.5", "1", "Broadcast ICMP echo is answered (smurf exposure).",
     "Broadcast ICMP echo is ignored.", "icmp_echo_ignore_broadcasts is not set.");
    ("net.ipv4.icmp_ignore_bogus_error_responses", "7.2.6", "1", "Bogus ICMP errors fill the logs.",
     "Bogus ICMP error responses are ignored.", "icmp_ignore_bogus_error_responses is not set.");
    ("net.ipv4.conf.all.rp_filter", "7.2.7", "1", "Reverse-path filtering is off; spoofed sources pass.",
     "Reverse-path filtering is enforced.", "rp_filter is not set.");
    ("net.ipv4.tcp_syncookies", "7.2.8", "1", "SYN cookies are disabled; SYN floods can exhaust the backlog.",
     "SYN cookies protect the accept queue.", "tcp_syncookies is not set.");
  ]

let script_rule =
  {yaml|
  - script_name: kernel.randomize_va_space
    tags: ["#security", "#cis", "#cisubuntu14.04_4.3"]
    script_description: "Live ASLR setting via `sysctl -a` (not always present in sysctl.conf)."
    script: sysctl_runtime
    config_path: ["kernel.randomize_va_space"]
    preferred_value: ["2"]
    preferred_value_match: exact,all
    not_present_description: "The running kernel does not report randomize_va_space."
    not_matched_preferred_value_description: "Full address-space layout randomization is not active."
    matched_description: "Full ASLR is active on the running kernel."
    suggested_action: "Set `kernel.randomize_va_space = 2` and run sysctl -p."
|yaml}

let cvl =
  "\nrules:\n"
  ^ String.concat ""
      (List.map
         (fun (name, cis, value, on_fail, on_match, absent) ->
           kv_rule ~name ~cis ~value ~on_fail ~on_match ~absent)
         params)
  ^ script_rule
