(* OWASP secure-configuration rules for Apache httpd (12 rules). *)

let cvl =
  {yaml|
rules:
  - config_name: ServerTokens
    config_path: [""]
    config_description: "Amount of server information in response headers."
    preferred_value: ["Prod", "ProductOnly"]
    preferred_value_match: exact,any
    not_present_description: "ServerTokens is not present; full version info is advertised."
    not_matched_preferred_value_description: "Response headers leak Apache version details."
    matched_description: "Only the product name is advertised."
    tags: ["#security", "#owasp"]
    file_context: ["apache2.conf", "httpd.conf", "security.conf"]
    suggested_action: "Set `ServerTokens Prod`."

  - config_name: ServerSignature
    config_path: [""]
    config_description: "Server-generated page footers."
    preferred_value: ["Off"]
    preferred_value_match: exact,all
    case_insensitive: true
    not_present_description: "ServerSignature is not present."
    not_matched_preferred_value_description: "Error pages carry a server signature."
    matched_description: "Server signatures are suppressed."
    tags: ["#security", "#owasp"]
    file_context: ["apache2.conf", "httpd.conf", "security.conf"]
    suggested_action: "Set `ServerSignature Off`."

  - config_name: TraceEnable
    config_path: [""]
    config_description: "HTTP TRACE method support."
    preferred_value: ["Off"]
    preferred_value_match: exact,all
    case_insensitive: true
    not_present_description: "TraceEnable is not present; TRACE is allowed by default."
    not_matched_preferred_value_description: "HTTP TRACE is enabled (XST exposure)."
    matched_description: "HTTP TRACE is disabled."
    tags: ["#security", "#owasp"]
    file_context: ["apache2.conf", "httpd.conf", "security.conf"]
    suggested_action: "Set `TraceEnable Off`."

  - config_name: SSLProtocol
    config_path: ["", "VirtualHost", "IfModule"]
    config_description: "Enabled TLS protocol versions."
    non_preferred_value: ["(^|[ +])SSLv(2|3)"]
    non_preferred_value_match: regex,any
    preferred_value: ["TLSv1.2", "TLSv1.3", "all -SSLv3 -SSLv2 -TLSv1 -TLSv1.1"]
    preferred_value_match: substr,any
    not_present_description: "SSLProtocol is not present."
    not_matched_preferred_value_description: "A deprecated SSL/TLS version is enabled."
    matched_description: "Only modern TLS versions are enabled."
    tags: ["#security", "#ssl", "#owasp"]
    file_context: ["apache2.conf", "httpd.conf", "ssl.conf", "mods-enabled/*.conf"]
    suggested_action: "Set `SSLProtocol all -SSLv3 -SSLv2 -TLSv1 -TLSv1.1`."

  - config_name: SSLCipherSuite
    config_path: ["", "VirtualHost", "IfModule"]
    config_description: "Cipher suites offered for TLS."
    non_preferred_value: ["(^|[:+ ])(RC4|DES|MD5|eNULL|aNULL|EXPORT|EXP)"]
    non_preferred_value_match: regex,any
    not_present_description: "SSLCipherSuite is not present."
    not_matched_preferred_value_description: "A weak cipher suite is offered."
    matched_description: "No weak cipher suites are offered."
    tags: ["#security", "#ssl", "#owasp"]
    file_context: ["apache2.conf", "httpd.conf", "ssl.conf", "mods-enabled/*.conf"]
    suggested_action: "Set `SSLCipherSuite HIGH:!aNULL:!MD5:!RC4`."

  - config_name: Options
    config_path: ["Directory", "VirtualHost/Directory"]
    config_description: "Per-directory feature options."
    non_preferred_value: ["(^|[ +])Indexes", "(^|[ +])Includes", "(^|[ +])ExecCGI"]
    non_preferred_value_match: regex,any
    not_present_pass: true
    not_present_description: "No Options directive present (safe defaults)."
    not_matched_preferred_value_description: "Directory listings, SSI or CGI are enabled."
    matched_description: "Risky per-directory options are disabled."
    tags: ["#security", "#owasp"]
    file_context: ["apache2.conf", "httpd.conf"]
    suggested_action: "Use `Options -Indexes -Includes -ExecCGI`."

  - config_name: FileETag
    config_path: [""]
    config_description: "ETag generation (inode disclosure)."
    preferred_value: ["None", "MTime Size"]
    preferred_value_match: exact,any
    not_present_description: "FileETag is not present; inode-based ETags leak file metadata."
    not_matched_preferred_value_description: "ETags expose inode numbers."
    matched_description: "ETags do not expose inode numbers."
    tags: ["#security", "#owasp"]
    file_context: ["apache2.conf", "httpd.conf", "security.conf"]
    suggested_action: "Set `FileETag None`."

  - config_name: Timeout
    config_path: [""]
    config_description: "Connection timeout (slowloris containment)."
    preferred_value: ["^([1-9]|[1-5][0-9]|60)$"]
    preferred_value_match: regex,any
    not_present_description: "Timeout is not present; the 300s default holds sockets open."
    not_matched_preferred_value_description: "Timeout exceeds 60 seconds."
    matched_description: "Connections time out within a minute."
    tags: ["#performance", "#owasp"]
    file_context: ["apache2.conf", "httpd.conf"]
    suggested_action: "Set `Timeout 60`."

  - config_name: KeepAliveTimeout
    config_path: [""]
    config_description: "Idle keep-alive timeout."
    preferred_value: ["^([1-9]|1[0-5])$"]
    preferred_value_match: regex,any
    not_present_description: "KeepAliveTimeout is not present."
    not_matched_preferred_value_description: "KeepAliveTimeout exceeds 15 seconds."
    matched_description: "Keep-alive sockets are recycled promptly."
    tags: ["#performance", "#owasp"]
    file_context: ["apache2.conf", "httpd.conf"]
    suggested_action: "Set `KeepAliveTimeout 5`."

  - config_name: Header X-Frame-Options
    config_path: ["", "VirtualHost", "IfModule"]
    config_description: "Clickjacking protection response header."
    check_presence_only: true
    not_present_description: "No Header directive sets X-Frame-Options."
    matched_description: "Clickjacking protection headers are set."
    tags: ["#security", "#owasp", "#headers"]
    file_context: ["apache2.conf", "httpd.conf", "security.conf"]
    suggested_action: "Add `Header always append X-Frame-Options SAMEORIGIN`."

  - config_name: User
    config_path: [""]
    config_description: "Worker process identity."
    non_preferred_value: ["root"]
    non_preferred_value_match: exact,any
    not_present_description: "User is not present; workers may run as the invoking user."
    not_matched_preferred_value_description: "Apache workers run as root."
    matched_description: "Workers run under an unprivileged account."
    tags: ["#security", "#owasp"]
    file_context: ["apache2.conf", "httpd.conf"]
    suggested_action: "Set `User www-data`."

  - path_name: /etc/apache2/apache2.conf
    path_description: "Permissions and ownership of the Apache configuration."
    ownership: "0:0"
    permission: 644
    file_type: file
    not_matched_preferred_value_description: "apache2.conf is writable by non-root users."
    matched_description: "apache2.conf is owned by root with sane permissions."
    tags: ["#security", "#owasp"]
    suggested_action: "chown root:root /etc/apache2/apache2.conf && chmod 644 /etc/apache2/apache2.conf"
|yaml}
