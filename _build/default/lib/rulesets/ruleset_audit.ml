(* CIS Ubuntu 14.04 §8.1.x — auditd rule coverage (17 schema rules over
   /etc/audit/audit.rules). The paper reports ConfigValidator covers
   "all of the audit rules of the Ubuntu checklist". *)

let slug_of_path path =
  let trimmed =
    if String.length path > 0 && path.[0] = '/' then String.sub path 1 (String.length path - 1)
    else path
  in
  String.map (fun c -> if c = '/' || c = '.' || c = '-' then '_' else c) trimmed

let watch ~path ~key ~cis =
  let slug = slug_of_path path in
  Printf.sprintf
    {yaml|
  - config_schema_name: audit_watch_%s
    config_schema_description: "Audit watch on %s (-w %s -p wa -k %s)"
    query_constraints: "kind = ? AND path = ?"
    query_constraints_value: ["watch", "%s"]
    query_columns: "perms"
    preferred_value: ["wa", "war", "rwa", "rwxa"]
    preferred_value_match: exact,any
    non_preferred_value: [""]
    non_preferred_value_match: exact,all
    not_matched_preferred_value_description: "Changes to %s are not audited"
    matched_description: "Write/attribute changes to %s are audited"
    tags: ["#cis", "#cisubuntu14.04_%s"]
    suggested_action: "Add `-w %s -p wa -k %s` to /etc/audit/audit.rules."
|yaml}
    slug path path key path path path cis path key

let syscall ~name ~pattern ~key ~cis =
  Printf.sprintf
    {yaml|
  - config_schema_name: audit_syscall_%s
    config_schema_description: "Audit syscall rule for %s events"
    query_constraints: "kind = ? AND syscalls ~ ?"
    query_constraints_value: ["syscall", ".*%s.*"]
    query_columns: "action"
    preferred_value: ["always,exit", "exit,always"]
    preferred_value_match: exact,any
    non_preferred_value: [""]
    non_preferred_value_match: exact,all
    not_matched_preferred_value_description: "%s syscalls are not audited"
    matched_description: "%s syscalls are audited on exit"
    tags: ["#cis", "#cisubuntu14.04_%s"]
    suggested_action: "Add an `-a always,exit -S %s -k %s` rule to audit.rules."
|yaml}
    name name pattern name name cis pattern key

let control_immutable =
  {yaml|
  - config_schema_name: audit_immutable
    config_schema_description: "The audit configuration is immutable (-e 2)"
    query_constraints: "kind = ? AND action = ?"
    query_constraints_value: ["control", "enabled=2"]
    query_columns: "action"
    expect_rows: 1
    not_matched_preferred_value_description: "audit rules can be changed at runtime (-e 2 missing)"
    matched_description: "audit configuration is immutable until reboot"
    tags: ["#cis", "#cisubuntu14.04_8.1.18"]
    suggested_action: "Append `-e 2` as the last line of audit.rules."
|yaml}

let watches =
  [
    ("/etc/passwd", "identity", "8.1.5");
    ("/etc/group", "identity", "8.1.5");
    ("/etc/shadow", "identity", "8.1.5");
    ("/etc/gshadow", "identity", "8.1.5");
    ("/etc/security/opasswd", "identity", "8.1.5");
    ("/etc/network", "system-locale", "8.1.6");
    ("/etc/apparmor", "MAC-policy", "8.1.7");
    ("/var/log/faillog", "logins", "8.1.8");
    ("/var/log/lastlog", "logins", "8.1.8");
    ("/var/log/tallylog", "logins", "8.1.8");
    ("/var/run/utmp", "session", "8.1.9");
    ("/etc/sudoers", "scope", "8.1.15");
    ("/var/log/sudo.log", "actions", "8.1.16");
  ]

let syscalls =
  [
    ("time_change", "settimeofday", "time-change", "8.1.4");
    ("perm_mod", "chmod", "perm_mod", "8.1.10");
    ("mounts", "mount", "mounts", "8.1.13");
  ]

let cvl =
  "\nrules:\n"
  ^ String.concat "" (List.map (fun (path, key, cis) -> watch ~path ~key ~cis) watches)
  ^ String.concat ""
      (List.map (fun (name, pattern, key, cis) -> syscall ~name ~pattern ~key ~cis) syscalls)
  ^ control_immutable
