(* PostgreSQL server rules (12 rules) — post-paper coverage growth,
   aligned with the CIS PostgreSQL benchmark's configuration section. *)

let cvl =
  {yaml|
rules:
  - config_name: listen_addresses
    config_path: [""]
    config_description: "Interfaces the server listens on."
    file_context: ["postgresql.conf"]
    preferred_value: ["localhost", "127.0.0.1"]
    preferred_value_match: exact,any
    not_present_description: "listen_addresses is not set (localhost default, but make it explicit)."
    not_matched_preferred_value_description: "The server accepts connections from non-loopback interfaces."
    matched_description: "The server only listens on loopback."
    tags: ["#security", "#cispostgres", "postgres"]
    suggested_action: "Set `listen_addresses = 'localhost'`."

  - config_name: ssl
    config_path: [""]
    config_description: "TLS for client connections."
    file_context: ["postgresql.conf"]
    preferred_value: ["on"]
    preferred_value_match: exact,all
    not_present_description: "ssl is not set (off by default)."
    not_matched_preferred_value_description: "Client connections are cleartext."
    matched_description: "Client connections are encrypted."
    tags: ["#security", "#ssl", "#cispostgres", "postgres"]
    suggested_action: "Set `ssl = on`."

  - config_name: ssl_ciphers
    config_path: [""]
    config_description: "Cipher suites offered for TLS."
    file_context: ["postgresql.conf"]
    non_preferred_value: ["(^|[:+ ])(RC4|DES|MD5|eNULL|aNULL|EXPORT|EXP)"]
    non_preferred_value_match: regex,any
    not_present_pass: true
    not_present_description: "ssl_ciphers is not set (library default HIGH:MEDIUM:+3DES:!aNULL)."
    not_matched_preferred_value_description: "A weak cipher suite is offered."
    matched_description: "No weak cipher suites are offered."
    tags: ["#security", "#ssl", "#cispostgres", "postgres"]
    suggested_action: "Set `ssl_ciphers HIGH:!aNULL:!MD5`."

  - config_name: password_encryption
    config_path: [""]
    config_description: "Password hashing algorithm."
    file_context: ["postgresql.conf"]
    preferred_value: ["scram-sha-256"]
    preferred_value_match: exact,all
    non_preferred_value: ["md5", "off"]
    non_preferred_value_match: exact,any
    not_present_description: "password_encryption is not set."
    not_matched_preferred_value_description: "Passwords are hashed with a weak algorithm."
    matched_description: "Passwords use SCRAM-SHA-256."
    tags: ["#security", "#cispostgres", "postgres"]
    suggested_action: "Set `password_encryption = scram-sha-256`."

  - config_name: logging_collector
    config_path: [""]
    config_description: "Capture of server log output."
    file_context: ["postgresql.conf"]
    preferred_value: ["on"]
    preferred_value_match: exact,all
    not_present_description: "logging_collector is not set; stderr output is lost."
    not_matched_preferred_value_description: "Server log output is not collected."
    matched_description: "Server logs are collected."
    tags: ["#audit", "#cispostgres", "postgres"]
    suggested_action: "Set `logging_collector = on`."

  - config_name: log_connections
    config_path: [""]
    config_description: "Connection auditing."
    file_context: ["postgresql.conf"]
    preferred_value: ["on"]
    preferred_value_match: exact,all
    not_present_description: "log_connections is not set."
    not_matched_preferred_value_description: "Connections are not audited."
    matched_description: "Connections are audited."
    tags: ["#audit", "#cispostgres", "postgres"]
    suggested_action: "Set `log_connections = on`."

  - config_name: log_disconnections
    config_path: [""]
    config_description: "Disconnection auditing."
    file_context: ["postgresql.conf"]
    preferred_value: ["on"]
    preferred_value_match: exact,all
    not_present_description: "log_disconnections is not set."
    not_matched_preferred_value_description: "Disconnections are not audited."
    matched_description: "Disconnections are audited."
    tags: ["#audit", "#cispostgres", "postgres"]
    suggested_action: "Set `log_disconnections = on`."

  - config_name: log_statement
    config_path: [""]
    config_description: "Statement-level auditing."
    file_context: ["postgresql.conf"]
    preferred_value: ["ddl", "mod", "all"]
    preferred_value_match: exact,any
    non_preferred_value: ["none"]
    non_preferred_value_match: exact,any
    not_present_description: "log_statement is not set (none by default)."
    not_matched_preferred_value_description: "Schema changes are not audited."
    matched_description: "Schema-changing statements are audited."
    tags: ["#audit", "#cispostgres", "postgres"]
    suggested_action: "Set `log_statement = ddl`."

  - config_name: shared_preload_libraries
    config_path: [""]
    config_description: "pgaudit provides fine-grained audit records."
    file_context: ["postgresql.conf"]
    preferred_value: ["pgaudit"]
    preferred_value_match: substr,any
    not_present_description: "shared_preload_libraries does not load pgaudit."
    not_matched_preferred_value_description: "pgaudit is not loaded."
    matched_description: "pgaudit is loaded."
    tags: ["#audit", "#cispostgres", "postgres"]
    suggested_action: "Add `pgaudit` to shared_preload_libraries."

  - config_name: max_connections
    config_path: [""]
    config_description: "Connection cap (memory exhaustion containment)."
    file_context: ["postgresql.conf"]
    preferred_value: ["^([1-9][0-9]{0,2}|[1-4][0-9]{3}|5000)$"]
    preferred_value_match: regex,any
    not_present_description: "max_connections is not set."
    not_matched_preferred_value_description: "max_connections exceeds 5000."
    matched_description: "Connections are capped."
    tags: ["#performance", "postgres"]
    suggested_action: "Set `max_connections 200`."

  - path_name: /etc/postgresql/postgresql.conf
    path_description: "Server configuration must belong to the postgres account."
    ownership: "26:26"
    permission: 600
    file_type: file
    not_matched_preferred_value_description: "postgresql.conf is readable by other accounts."
    matched_description: "postgresql.conf is private to the postgres account."
    tags: ["#security", "#cispostgres", "postgres"]
    suggested_action: "chown postgres:postgres postgresql.conf && chmod 600 postgresql.conf"

  - path_name: /var/lib/postgresql/data
    path_description: "The data directory must be private to the postgres account."
    ownership: "26:26"
    permission: 700
    file_type: directory
    not_matched_preferred_value_description: "The data directory is readable by other accounts."
    matched_description: "The data directory is private."
    tags: ["#security", "#cispostgres", "postgres"]
    suggested_action: "chown -R postgres:postgres data && chmod 700 data"
|yaml}
