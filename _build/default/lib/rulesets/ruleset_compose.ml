(* docker-compose service rules (10 rules) — post-paper coverage growth
   (§5: "work is under progress to increase ConfigValidator's rule
   coverage"). YAML manifests normalize through the yaml lens; the
   [services/*] wildcard addresses every service in the file. *)

let cvl =
  {yaml|
rules:
  - config_name: privileged
    config_path: ["services/*"]
    config_description: "Privileged mode grants full host device access."
    file_context: ["docker-compose.yml", "docker-compose.yaml"]
    non_preferred_value: ["true"]
    non_preferred_value_match: exact,any
    not_present_pass: true
    not_present_description: "No service requests privileged mode."
    not_matched_preferred_value_description: "A service runs privileged."
    matched_description: "No service runs privileged."
    tags: ["#security", "#cisdocker_5.4", "compose"]
    suggested_action: "Remove `privileged: true`; grant specific capabilities instead."

  - config_name: network_mode
    config_path: ["services/*"]
    config_description: "Host networking disables network isolation."
    file_context: ["docker-compose.yml", "docker-compose.yaml"]
    non_preferred_value: ["host"]
    non_preferred_value_match: exact,any
    not_present_pass: true
    not_present_description: "No service uses host networking."
    not_matched_preferred_value_description: "A service shares the host network namespace."
    matched_description: "All services have isolated networks."
    tags: ["#security", "#cisdocker_5.9", "compose"]
    suggested_action: "Remove `network_mode: host`."

  - config_name: pid
    config_path: ["services/*"]
    config_description: "Host PID namespace sharing."
    file_context: ["docker-compose.yml", "docker-compose.yaml"]
    non_preferred_value: ["host"]
    non_preferred_value_match: exact,any
    not_present_pass: true
    not_present_description: "No service shares the host PID namespace."
    not_matched_preferred_value_description: "A service shares the host PID namespace."
    matched_description: "All services have isolated PID namespaces."
    tags: ["#security", "#cisdocker_5.15", "compose"]
    suggested_action: "Remove `pid: host`."

  - config_name: restart
    config_path: ["services/*"]
    config_description: "Unbounded restarts can mask crash loops."
    file_context: ["docker-compose.yml", "docker-compose.yaml"]
    non_preferred_value: ["always"]
    non_preferred_value_match: exact,any
    not_present_pass: true
    not_present_description: "No service restarts unconditionally."
    not_matched_preferred_value_description: "A service uses restart: always."
    matched_description: "Restart policies bound retries."
    tags: ["#availability", "#cisdocker_5.14", "compose"]
    suggested_action: "Set `restart on-failure:5`."

  - config_name: mem_limit
    config_path: ["services/*"]
    config_description: "Per-service memory ceiling."
    file_context: ["docker-compose.yml", "docker-compose.yaml"]
    check_presence_only: true
    not_present_description: "A service has no memory limit."
    matched_description: "Services carry memory limits."
    tags: ["#performance", "#cisdocker_5.10", "compose"]
    suggested_action: "Set `mem_limit 512m` per service."

  - config_name: read_only
    config_path: ["services/*"]
    config_description: "Read-only root filesystems."
    file_context: ["docker-compose.yml", "docker-compose.yaml"]
    preferred_value: ["true"]
    preferred_value_match: exact,all
    not_present_description: "A service has a writable root filesystem."
    not_matched_preferred_value_description: "read_only is explicitly disabled."
    matched_description: "Service root filesystems are read-only."
    tags: ["#security", "#cisdocker_5.12", "compose"]
    suggested_action: "Set `read_only true` and mount writable volumes explicitly."

  - config_name: user
    config_path: ["services/*"]
    config_description: "Service user override."
    file_context: ["docker-compose.yml", "docker-compose.yaml"]
    non_preferred_value: ["root", "0", "0:0"]
    non_preferred_value_match: exact,any
    not_present_pass: true
    not_present_description: "No service overrides its user to root."
    not_matched_preferred_value_description: "A service forces the root user."
    matched_description: "No service forces the root user."
    tags: ["#security", "#cisdocker_4.1", "compose"]
    suggested_action: "Remove the root `user:` override."

  - config_name: cap_add
    config_path: ["services/*"]
    config_description: "Added Linux capabilities."
    file_context: ["docker-compose.yml", "docker-compose.yaml"]
    non_preferred_value: ["SYS_ADMIN", "ALL", "NET_ADMIN"]
    non_preferred_value_match: exact,any
    not_present_pass: true
    not_present_description: "No service adds dangerous capabilities."
    not_matched_preferred_value_description: "A service adds SYS_ADMIN/NET_ADMIN/ALL."
    matched_description: "No dangerous capabilities are added."
    tags: ["#security", "#cisdocker_5.3", "compose"]
    suggested_action: "Drop the capability or isolate the workload."

  - config_name: volumes
    config_path: ["services/*"]
    config_description: "Bind mounts of the Docker control socket."
    file_context: ["docker-compose.yml", "docker-compose.yaml"]
    non_preferred_value: ["docker.sock"]
    non_preferred_value_match: substr,any
    not_present_pass: true
    not_present_description: "No service mounts the Docker socket."
    not_matched_preferred_value_description: "A service mounts /var/run/docker.sock."
    matched_description: "The Docker socket is not exposed to services."
    tags: ["#security", "#cisdocker_5.31", "compose"]
    suggested_action: "Remove the docker.sock bind mount."

  - config_name: security_opt
    config_path: ["services/*"]
    config_description: "no-new-privileges blocks setuid escalation."
    file_context: ["docker-compose.yml", "docker-compose.yaml"]
    preferred_value: ["no-new-privileges"]
    preferred_value_match: substr,any
    not_present_description: "Services do not set no-new-privileges."
    not_matched_preferred_value_description: "security_opt lacks no-new-privileges."
    matched_description: "Privilege escalation is blocked."
    tags: ["#security", "#cisdocker_5.25", "compose"]
    suggested_action: "Add `security_opt no-new-privileges:true`."
|yaml}
