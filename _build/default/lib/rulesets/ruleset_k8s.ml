(* Kubernetes pod-manifest rules (10 rules) — post-paper coverage
   growth. Container-level checks address the repeated [containers]
   sections under [spec]. *)

let cvl =
  {yaml|
rules:
  - config_name: hostNetwork
    config_path: ["spec"]
    config_description: "Pods sharing the host network namespace."
    file_context: ["*.yaml", "*.yml"]
    non_preferred_value: ["true"]
    non_preferred_value_match: exact,any
    not_present_pass: true
    not_present_description: "The pod does not request host networking."
    not_matched_preferred_value_description: "The pod shares the host network namespace."
    matched_description: "The pod network is isolated."
    tags: ["#security", "#k8s_psp", "kubernetes"]
    suggested_action: "Remove `hostNetwork: true`."

  - config_name: hostPID
    config_path: ["spec"]
    config_description: "Pods sharing the host PID namespace."
    file_context: ["*.yaml", "*.yml"]
    non_preferred_value: ["true"]
    non_preferred_value_match: exact,any
    not_present_pass: true
    not_present_description: "The pod does not share the host PID namespace."
    not_matched_preferred_value_description: "The pod shares the host PID namespace."
    matched_description: "The pod PID namespace is isolated."
    tags: ["#security", "#k8s_psp", "kubernetes"]
    suggested_action: "Remove `hostPID: true`."

  - config_name: privileged
    config_path: ["spec/containers/securityContext"]
    config_description: "Privileged containers."
    file_context: ["*.yaml", "*.yml"]
    non_preferred_value: ["true"]
    non_preferred_value_match: exact,any
    not_present_pass: true
    not_present_description: "No container requests privileged mode."
    not_matched_preferred_value_description: "A container runs privileged."
    matched_description: "No container runs privileged."
    tags: ["#security", "#k8s_psp", "kubernetes"]
    suggested_action: "Remove `privileged: true` from the securityContext."

  - config_name: allowPrivilegeEscalation
    config_path: ["spec/containers/securityContext"]
    config_description: "setuid/file-capability escalation."
    file_context: ["*.yaml", "*.yml"]
    preferred_value: ["false"]
    preferred_value_match: exact,all
    not_present_description: "allowPrivilegeEscalation is not set (defaults to true)."
    not_matched_preferred_value_description: "Privilege escalation is allowed."
    matched_description: "Privilege escalation is blocked."
    tags: ["#security", "#k8s_psp", "kubernetes"]
    suggested_action: "Set `allowPrivilegeEscalation = false`."

  - config_name: readOnlyRootFilesystem
    config_path: ["spec/containers/securityContext"]
    config_description: "Writable container root filesystems."
    file_context: ["*.yaml", "*.yml"]
    preferred_value: ["true"]
    preferred_value_match: exact,all
    not_present_description: "readOnlyRootFilesystem is not set."
    not_matched_preferred_value_description: "A container root filesystem is writable."
    matched_description: "Container root filesystems are read-only."
    tags: ["#security", "#k8s_psp", "kubernetes"]
    suggested_action: "Set `readOnlyRootFilesystem = true`."

  - config_name: runAsNonRoot
    config_path: ["spec/containers/securityContext", "spec/securityContext"]
    config_description: "Root inside containers."
    file_context: ["*.yaml", "*.yml"]
    preferred_value: ["true"]
    preferred_value_match: exact,all
    not_present_description: "runAsNonRoot is not set."
    not_matched_preferred_value_description: "A container may run as root."
    matched_description: "Containers must run as non-root."
    tags: ["#security", "#k8s_psp", "kubernetes"]
    suggested_action: "Set `runAsNonRoot = true`."

  - config_name: memory
    config_path: ["spec/containers/resources/limits"]
    config_description: "Per-container memory ceilings."
    file_context: ["*.yaml", "*.yml"]
    check_presence_only: true
    not_present_description: "A container has no memory limit."
    matched_description: "Containers carry memory limits."
    tags: ["#performance", "kubernetes"]
    suggested_action: "Set `memory = 512Mi` under resources.limits."

  - config_name: cpu
    config_path: ["spec/containers/resources/limits"]
    config_description: "Per-container CPU ceilings."
    file_context: ["*.yaml", "*.yml"]
    check_presence_only: true
    not_present_description: "A container has no CPU limit."
    matched_description: "Containers carry CPU limits."
    tags: ["#performance", "kubernetes"]
    suggested_action: "Set `cpu = 500m` under resources.limits."

  - config_name: imagePullPolicy
    config_path: ["spec/containers"]
    config_description: "Stale cached images."
    file_context: ["*.yaml", "*.yml"]
    preferred_value: ["Always"]
    preferred_value_match: exact,all
    not_present_description: "imagePullPolicy is not set."
    not_matched_preferred_value_description: "Cached images may be stale."
    matched_description: "Images are always pulled fresh."
    tags: ["#availability", "kubernetes"]
    suggested_action: "Set `imagePullPolicy = Always`."

  - config_name: automountServiceAccountToken
    config_path: ["spec"]
    config_description: "API credentials mounted into pods."
    file_context: ["*.yaml", "*.yml"]
    non_preferred_value: ["true"]
    non_preferred_value_match: exact,any
    not_present_pass: true
    not_present_description: "The pod does not request a service-account token mount."
    not_matched_preferred_value_description: "API credentials are mounted into the pod."
    matched_description: "No service-account token is mounted."
    tags: ["#security", "#k8s_psp", "kubernetes"]
    suggested_action: "Set `automountServiceAccountToken = false` unless the pod calls the API."
|yaml}
