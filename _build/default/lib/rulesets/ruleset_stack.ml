(* Cross-entity composite rules. The first is the paper's Listing 1
   (with the sysctl atom made explicit: the rule holds when
   ip_forward's value is "0", i.e. forwarding disabled). *)

let cvl =
  {yaml|
rules:
  - composite_rule_name: "mysql ssl-ca path and sysctl and nginx SSL"
    composite_rule_description: "Check if nginx is running with SSL, ip_forward is disabled, and mysql server ssl-ca has a cert"
    composite_rule: mysql.ssl-ca.CONFIGPATH=[mysqld].VALUE == "/etc/mysql/cacert.pem" && sysctl.net.ipv4.ip_forward.VALUE == "0" && nginx.listen
    tags: ["docker", "nginx", "sysctl"]
    matched_description: "mysql server ssl-ca has a cert, ip_forward is disabled, and nginx has SSL enabled."
    not_matched_preferred_value_description: "Either mysql server ssl-ca does not have a cert, or ip_forward is enabled, or nginx has SSL disabled."

  - composite_rule_name: tls_everywhere
    composite_rule_description: "Strong transport crypto at every tier: nginx TLS protocols, mysql server TLS, sshd cipher policy."
    composite_rule: nginx.ssl_protocols && mysql.have_ssl && sshd.Ciphers
    tags: ["#security", "#ssl"]
    matched_description: "Every tier terminates TLS with modern protocols."
    not_matched_preferred_value_description: "At least one tier serves traffic without modern TLS."

  - composite_rule_name: no_root_anywhere
    composite_rule_description: "No tier runs or admits root: sshd refuses root login, images declare USER, mysqld drops privileges."
    composite_rule: sshd.PermitRootLogin && docker.image_user && mysql.user
    tags: ["#security"]
    matched_description: "Root is refused at the edge and dropped in every service."
    not_matched_preferred_value_description: "A tier still runs as (or admits) root."
|yaml}
