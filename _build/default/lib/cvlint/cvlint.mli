(** cvlint — a semgrep-style static analyzer for CVL rule sets.

    Where the loader answers "does this file parse?", cvlint answers
    "will these rules do what the author meant?": typo'd keywords (with
    edit-distance suggestions), keywords outside their rule-type group,
    unsatisfiable preferred/non-preferred combinations, regexes that do
    not compile, lenses and crawler plugins that do not exist, rules
    shadowed across [parent_cvl_file] chains, composite expressions over
    undefined entities — each as a structured {!Diagnostic.t} with a
    stable code and a real [file:line] span threaded up from the YAML
    parser.

    Three entry points, by how much context is available:
    - {!lint_text}: one rule file, no inheritance resolution;
    - {!lint_file}: one rule file resolved through a {!Cvl.Loader.source}
      (parents are loaded, the whole chain is linted);
    - {!lint_corpus}: a manifest plus every rule file it references —
      the full analysis, including manifest-level and cross-entity
      passes. *)

module Diagnostic = Diagnostic
module Render = Render

(** What the analyzer checks names against. [entities] enables the
    composite-expression pass; [None] (no manifest in sight) skips it.
    [flaky_plugins] are the plugins the current entity's manifest entry
    marks unreliable — script rules using one without an
    [on_plugin_failure] fallback draw CVL050. *)
type context = {
  lenses : string list;
  plugins : string list;
  entities : string list option;
  flaky_plugins : string list;
}

(** Lens and plugin names from {!Lenses.Registry} and {!Crawler.plugins};
    no entities. *)
val default_context : context

(** Lint standalone rule text. A [parent_cvl_file] reference is left
    unresolved (no source to read it from). [path] labels spans;
    it defaults to ["<input>"]. [lens] enables the lens-aware passes. *)
val lint_text : ?ctx:context -> ?lens:string -> ?path:string -> string -> Diagnostic.t list

(** Lint one rule file through [source], following and also linting its
    [parent_cvl_file] chain. *)
val lint_file :
  ?ctx:context -> ?lens:string -> source:Cvl.Loader.source -> string -> Diagnostic.t list

(** Lint a manifest and every rule file it references. The manifest's
    entity names feed the composite-expression pass; each entry's [lens]
    feeds the lens-aware passes for that entity's chain. *)
val lint_corpus :
  ?ctx:context ->
  source:Cvl.Loader.source ->
  ?manifest_path:string ->
  unit ->
  Diagnostic.t list
