lib/cvlint/render.ml: Buffer Diagnostic Jsonlite List Printf
