lib/cvlint/cvlint.mli: Cvl Diagnostic Render
