lib/cvlint/cvlint.ml: Crawler Cvl Diagnostic Hashtbl Lenses List Option Printf Re Render String Yamlite
