lib/cvlint/cvlint.ml: Array Configtree Crawler Cvl Diagnostic Hashtbl Lenses List Option Printf Re Render String Yamlite
