lib/cvlint/diagnostic.mli:
