lib/cvlint/diagnostic.ml: Int List String
