lib/cvlint/render.mli: Diagnostic Jsonlite
