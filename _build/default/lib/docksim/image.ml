type config = {
  user : string;
  exposed_ports : int list;
  env : (string * string) list;
  entrypoint : string list;
  cmd : string list;
  healthcheck : string option;
  labels : (string * string) list;
}

let default_config =
  {
    user = "";
    exposed_ports = [];
    env = [];
    entrypoint = [];
    cmd = [];
    healthcheck = None;
    labels = [];
  }

type t = {
  reference : string;
  layers : Layer.t list;
  config : config;
  base_os : string;
}

let make ?(base_os = "ubuntu-14.04") ?(config = default_config) ~reference layers =
  { reference; layers; config; base_os }

let config_json image =
  let c = image.config in
  let strs l = Jsonlite.Arr (List.map (fun s -> Jsonlite.Str s) l) in
  Jsonlite.Obj
    [
      ("User", Jsonlite.Str c.user);
      ( "ExposedPorts",
        Jsonlite.Arr (List.map (fun p -> Jsonlite.Str (Printf.sprintf "%d/tcp" p)) c.exposed_ports) );
      ("Env", strs (List.map (fun (k, v) -> k ^ "=" ^ v) c.env));
      ("Entrypoint", strs c.entrypoint);
      ("Cmd", strs c.cmd);
      ( "Healthcheck",
        match c.healthcheck with
        | Some test -> Jsonlite.Obj [ ("Test", strs [ "CMD-SHELL"; test ]) ]
        | None -> Jsonlite.Null );
      ("Labels", Jsonlite.Obj (List.map (fun (k, v) -> (k, Jsonlite.Str v)) c.labels));
      ("Layers", Jsonlite.Num (float_of_int (List.length image.layers)));
    ]

let flatten image =
  let base =
    Frames.Frame.create ~os:image.base_os ~id:image.reference
      (Frames.Frame.Docker_image image.reference)
  in
  let frame = List.fold_left Layer.apply base image.layers in
  Frames.Frame.set_runtime_doc frame ~key:"docker_image_config"
    (Jsonlite.to_string (config_json image))

let layer_count image = List.length image.layers
