(** Running containers: an image plus a writable runtime layer and the
    runtime settings that CIS-Docker container rules assert on
    (privilege, namespaces, capabilities, limits, mounts). *)

type bind_mount = {
  source : string;  (** host path *)
  destination : string;
  read_write : bool;
}

type runtime = {
  privileged : bool;
  network_mode : string;  (** ["bridge"] | ["host"] | ["none"] *)
  pid_mode : string;  (** [""] | ["host"] *)
  ipc_mode : string;
  readonly_rootfs : bool;
  memory_limit : int;  (** bytes; [0] = unlimited *)
  cpu_shares : int;  (** [0] = default *)
  pids_limit : int;
  cap_add : string list;
  cap_drop : string list;
  security_opt : string list;  (** e.g. ["apparmor=docker-default"] *)
  restart_policy : string;  (** ["no"] | ["on-failure:5"] | ["always"] *)
  binds : bind_mount list;
  published_ports : (int * int) list;  (** (host, container) *)
  docker_socket_mounted : bool;
}

val default_runtime : runtime

type t = {
  id : string;
  name : string;
  image : Image.t;
  runtime : runtime;
  runtime_layer : Layer.t;  (** the container's writable layer *)
  processes : Frames.Frame.process list;
}

val make :
  ?runtime:runtime ->
  ?runtime_ops:Layer.op list ->
  ?processes:Frames.Frame.process list ->
  id:string ->
  name:string ->
  Image.t ->
  t

(** The container's live filesystem view: image layers then the runtime
    layer, with processes attached and two runtime documents installed —
    ["docker_inspect"] (a docker-inspect-style JSON) and
    ["docker_image_config"] (inherited from the image). *)
val to_frame : t -> Frames.Frame.t

(** docker-inspect-style document for script rules and the crawler. *)
val inspect_json : t -> Jsonlite.t
