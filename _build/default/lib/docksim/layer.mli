(** Docker image layers: ordered file operations over a union
    filesystem. A layer either adds/overwrites a file or deletes one
    from a lower layer (an AUFS-style whiteout). *)

type op =
  | Add of Frames.File.t
  | Whiteout of string  (** path removed from the view of lower layers *)

type t = {
  id : string;  (** content hash stand-in, e.g. ["sha256:ab12…"] *)
  created_by : string;  (** the Dockerfile instruction, for provenance *)
  ops : op list;
}

val make : id:string -> created_by:string -> op list -> t

(** [apply frame layer] folds the layer's operations into the frame,
    in order: later ops win over earlier ones within a layer. *)
val apply : Frames.Frame.t -> t -> Frames.Frame.t

(** Paths this layer touches (adds and whiteouts). *)
val touched : t -> string list
