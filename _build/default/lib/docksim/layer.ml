type op =
  | Add of Frames.File.t
  | Whiteout of string

type t = {
  id : string;
  created_by : string;
  ops : op list;
}

let make ~id ~created_by ops = { id; created_by; ops }

let apply frame layer =
  List.fold_left
    (fun frame op ->
      match op with
      | Add file -> Frames.Frame.add_file frame file
      | Whiteout path -> Frames.Frame.remove_file frame path)
    frame layer.ops

let touched layer =
  List.map
    (function Add f -> f.Frames.File.path | Whiteout p -> p)
    layer.ops
