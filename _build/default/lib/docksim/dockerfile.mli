(** A Dockerfile front-end for the image simulator: build an
    {!Image.t} from Dockerfile text plus a build context, so image
    scanning can start from the artifact developers actually write.

    Supported instructions:
    - [FROM ref] — resolved through the [resolve] callback (a registry);
    - [COPY src dst] — [src] is looked up in the build context;
    - [RUN cmd] — a small shell-idiom vocabulary becomes filesystem
      operations: [rm \[-f|-rf\] path] (whiteout),
      [mkdir -p path], [chmod MODE path], [chown UID:GID path],
      [echo "text" > path] and [>> path] (append); any other command
      records an empty layer (provenance only, like a package
      install whose effects the context supplies);
    - [USER], [EXPOSE], [ENV K=V], [LABEL K=V], [HEALTHCHECK CMD …],
      [CMD …], [ENTRYPOINT …] — image configuration;
    - comments and blank lines; [\\] line continuations.

    Each instruction contributes one layer whose [created_by] is the
    instruction text, mirroring [docker history]. *)

type error = { line : int; message : string }

val error_to_string : error -> string

val build :
  ?context:(string * Frames.File.t) list ->
  resolve:(string -> Image.t option) ->
  reference:string ->
  string ->
  (Image.t, error) result
