lib/docksim/layer.ml: Frames List
