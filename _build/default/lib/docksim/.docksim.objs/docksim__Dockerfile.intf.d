lib/docksim/dockerfile.mli: Frames Image
