lib/docksim/image.ml: Frames Jsonlite Layer List Printf
