lib/docksim/layer.mli: Frames
