lib/docksim/container.ml: Frames Image Jsonlite Layer List Option Printf String
