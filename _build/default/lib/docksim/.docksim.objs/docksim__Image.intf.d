lib/docksim/image.mli: Frames Jsonlite Layer
