lib/docksim/container.mli: Frames Image Jsonlite Layer
