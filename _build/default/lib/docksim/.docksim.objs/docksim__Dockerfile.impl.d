lib/docksim/dockerfile.ml: Buffer Frames Image Layer List Option Printf Result String
