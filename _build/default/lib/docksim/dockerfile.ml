type error = { line : int; message : string }

let error_to_string e = Printf.sprintf "Dockerfile line %d: %s" e.line e.message
let fail line fmt = Printf.ksprintf (fun message -> Error { line; message }) fmt

let ( let* ) = Result.bind

(* Logical lines: strip comments, join backslash continuations. *)
let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let rec go lineno pending acc = function
    | [] -> List.rev (match pending with Some (n, s) -> (n, s) :: acc | None -> acc)
    | line :: rest ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then
        go (lineno + 1) pending acc rest
      else
        let joined, start =
          match pending with
          | Some (n, prefix) -> (prefix ^ " " ^ line, n)
          | None -> (line, lineno)
        in
        if String.length joined > 0 && joined.[String.length joined - 1] = '\\' then
          go (lineno + 1) (Some (start, String.trim (String.sub joined 0 (String.length joined - 1)))) acc rest
        else go (lineno + 1) None ((start, joined) :: acc) rest
  in
  go 1 None [] raw

let split_instruction line =
  match String.index_opt line ' ' with
  | None -> (String.uppercase_ascii line, "")
  | Some i ->
    ( String.uppercase_ascii (String.sub line 0 i),
      String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

(* Tokenize shell-ish arguments, honouring quotes. *)
let tokens s =
  let n = String.length s in
  let out = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  let rec go i quote =
    if i >= n then flush ()
    else
      let c = s.[i] in
      match quote with
      | Some q -> if c = q then go (i + 1) None else (Buffer.add_char buf c; go (i + 1) quote)
      | None -> (
        match c with
        | ' ' | '\t' ->
          flush ();
          go (i + 1) None
        | '\'' | '"' -> go (i + 1) (Some c)
        | c ->
          Buffer.add_char buf c;
          go (i + 1) None)
  in
  go 0 None;
  List.rev !out

(* RUN commands that change the filesystem. [frame] is the union built
   so far, needed for chmod/chown/append semantics. *)
let run_ops lineno frame command =
  match tokens command with
  | "rm" :: rest ->
    let paths = List.filter (fun a -> a <> "-f" && a <> "-rf" && a <> "-r") rest in
    Ok (List.map (fun p -> Layer.Whiteout p) paths)
  | [ "mkdir"; "-p"; path ] | [ "mkdir"; path ] ->
    Ok [ Layer.Add (Frames.File.directory path) ]
  | [ "chmod"; mode; path ] -> (
    match (int_of_string_opt ("0o" ^ mode), Frames.Frame.stat frame path) with
    | Some mode, Some f -> Ok [ Layer.Add { f with Frames.File.mode } ]
    | None, _ -> fail lineno "chmod: invalid mode %S" mode
    | _, None -> fail lineno "chmod: %s does not exist in the image" path)
  | [ "chown"; owner; path ] -> (
    match (String.split_on_char ':' owner, Frames.Frame.stat frame path) with
    | [ u; g ], Some f -> (
      match (int_of_string_opt u, int_of_string_opt g) with
      | Some uid, Some gid -> Ok [ Layer.Add { f with Frames.File.uid; gid } ]
      | _ -> fail lineno "chown: numeric uid:gid expected, got %S" owner)
    | _, None -> fail lineno "chown: %s does not exist in the image" path
    | _ -> fail lineno "chown: uid:gid expected, got %S" owner)
  | [ "echo"; text; ">"; path ] ->
    Ok [ Layer.Add (Frames.File.make ~content:(text ^ "\n") path) ]
  | [ "echo"; text; ">>"; path ] ->
    let existing = Option.value (Frames.Frame.read frame path) ~default:"" in
    Ok [ Layer.Add (Frames.File.make ~content:(existing ^ text ^ "\n") path) ]
  | _ ->
    (* An opaque command (apt-get install, …): provenance-only layer;
       its filesystem effects, if modelled, come from the context. *)
    Ok []

let split_kv lineno text =
  match String.index_opt text '=' with
  | Some i ->
    Ok (String.sub text 0 i, String.sub text (i + 1) (String.length text - i - 1))
  | None -> fail lineno "expected KEY=VALUE, got %S" text

let build ?(context = []) ~resolve ~reference text =
  let lines = logical_lines text in
  let* () = match lines with
    | (_, first) :: _ when fst (split_instruction first) = "FROM" -> Ok ()
    | (line, _) :: _ -> fail line "a Dockerfile must start with FROM"
    | [] -> fail 1 "empty Dockerfile"
  in
  let rec go lines layers config frame counter =
    match lines with
    | [] -> Ok (List.rev layers, config)
    | (lineno, line) :: rest -> (
      let instruction, args = split_instruction line in
      let layer ops = Layer.make ~id:(Printf.sprintf "sha256:step-%d" counter) ~created_by:line ops in
      let continue_with ops config =
        let l = layer ops in
        go rest (l :: layers) config (Layer.apply frame l) (counter + 1)
      in
      match instruction with
      | "FROM" -> (
        match resolve args with
        | None -> fail lineno "unknown base image %S" args
        | Some (base : Image.t) ->
          let base_layer =
            Layer.make ~id:(Printf.sprintf "sha256:from-%d" counter) ~created_by:line
              (List.map (fun f -> Layer.Add f) (Frames.Frame.all_entries (Image.flatten base)))
          in
          go rest (base_layer :: layers) base.Image.config
            (Layer.apply frame base_layer) (counter + 1))
      | "COPY" -> (
        match tokens args with
        | [ src; dst ] -> (
          match List.assoc_opt src context with
          | Some file -> continue_with [ Layer.Add { file with Frames.File.path = Frames.File.normalize_path dst } ] config
          | None -> fail lineno "COPY source %S not in the build context" src)
        | _ -> fail lineno "COPY expects exactly `src dst`")
      | "RUN" ->
        let* ops = run_ops lineno frame args in
        continue_with ops config
      | "USER" -> continue_with [] { config with Image.user = args }
      | "EXPOSE" -> (
        let port = match String.index_opt args '/' with
          | Some i -> String.sub args 0 i
          | None -> args
        in
        match int_of_string_opt port with
        | Some p -> continue_with [] { config with Image.exposed_ports = config.Image.exposed_ports @ [ p ] }
        | None -> fail lineno "EXPOSE expects a port, got %S" args)
      | "ENV" ->
        let* k, v = split_kv lineno args in
        continue_with [] { config with Image.env = config.Image.env @ [ (k, v) ] }
      | "LABEL" ->
        let* k, v = split_kv lineno args in
        continue_with [] { config with Image.labels = config.Image.labels @ [ (k, v) ] }
      | "HEALTHCHECK" ->
        let test =
          if String.length args >= 4 && String.uppercase_ascii (String.sub args 0 4) = "CMD " then
            String.trim (String.sub args 4 (String.length args - 4))
          else args
        in
        continue_with [] { config with Image.healthcheck = Some test }
      | "CMD" -> continue_with [] { config with Image.cmd = tokens args }
      | "ENTRYPOINT" -> continue_with [] { config with Image.entrypoint = tokens args }
      | "WORKDIR" | "ARG" | "VOLUME" | "STOPSIGNAL" | "SHELL" ->
        (* Accepted but not modelled. *)
        continue_with [] config
      | other -> fail lineno "unsupported instruction %S" other)
  in
  let empty = Frames.Frame.create ~id:"build" (Frames.Frame.Docker_image reference) in
  let* layers, config = go lines [] Image.default_config empty 0 in
  Ok (Image.make ~config ~reference layers)
