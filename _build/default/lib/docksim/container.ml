type bind_mount = {
  source : string;
  destination : string;
  read_write : bool;
}

type runtime = {
  privileged : bool;
  network_mode : string;
  pid_mode : string;
  ipc_mode : string;
  readonly_rootfs : bool;
  memory_limit : int;
  cpu_shares : int;
  pids_limit : int;
  cap_add : string list;
  cap_drop : string list;
  security_opt : string list;
  restart_policy : string;
  binds : bind_mount list;
  published_ports : (int * int) list;
  docker_socket_mounted : bool;
}

let default_runtime =
  {
    privileged = false;
    network_mode = "bridge";
    pid_mode = "";
    ipc_mode = "";
    readonly_rootfs = false;
    memory_limit = 0;
    cpu_shares = 0;
    pids_limit = 0;
    cap_add = [];
    cap_drop = [];
    security_opt = [];
    restart_policy = "no";
    binds = [];
    published_ports = [];
    docker_socket_mounted = false;
  }

type t = {
  id : string;
  name : string;
  image : Image.t;
  runtime : runtime;
  runtime_layer : Layer.t;
  processes : Frames.Frame.process list;
}

let make ?(runtime = default_runtime) ?(runtime_ops = []) ?(processes = []) ~id ~name image =
  let runtime_layer = Layer.make ~id:(id ^ "-rw") ~created_by:"container runtime" runtime_ops in
  { id; name; image; runtime; runtime_layer; processes }

let inspect_json c =
  let r = c.runtime in
  let strs l = Jsonlite.Arr (List.map (fun s -> Jsonlite.Str s) l) in
  let binds =
    List.map
      (fun b ->
        Jsonlite.Str
          (Printf.sprintf "%s:%s:%s" b.source b.destination (if b.read_write then "rw" else "ro")))
      (if r.docker_socket_mounted then
         { source = "/var/run/docker.sock"; destination = "/var/run/docker.sock"; read_write = true }
         :: r.binds
       else r.binds)
  in
  let ports =
    List.map
      (fun (host, cont) ->
        Jsonlite.Obj
          [ ("HostPort", Jsonlite.Str (string_of_int host)); ("ContainerPort", Jsonlite.Str (string_of_int cont)) ])
      r.published_ports
  in
  Jsonlite.Obj
    [
      ("Id", Jsonlite.Str c.id);
      ("Name", Jsonlite.Str ("/" ^ c.name));
      ("Image", Jsonlite.Str c.image.Image.reference);
      ( "HostConfig",
        Jsonlite.Obj
          [
            ("Privileged", Jsonlite.Bool r.privileged);
            ("NetworkMode", Jsonlite.Str r.network_mode);
            ("PidMode", Jsonlite.Str r.pid_mode);
            ("IpcMode", Jsonlite.Str r.ipc_mode);
            ("ReadonlyRootfs", Jsonlite.Bool r.readonly_rootfs);
            ("Memory", Jsonlite.Num (float_of_int r.memory_limit));
            ("CpuShares", Jsonlite.Num (float_of_int r.cpu_shares));
            ("PidsLimit", Jsonlite.Num (float_of_int r.pids_limit));
            ("CapAdd", strs r.cap_add);
            ("CapDrop", strs r.cap_drop);
            ("SecurityOpt", strs r.security_opt);
            ( "RestartPolicy",
              let name, retries =
                match String.index_opt r.restart_policy ':' with
                | Some i ->
                  ( String.sub r.restart_policy 0 i,
                    int_of_string_opt
                      (String.sub r.restart_policy (i + 1)
                         (String.length r.restart_policy - i - 1))
                    |> Option.value ~default:0 )
                | None -> (r.restart_policy, 0)
              in
              Jsonlite.Obj
                [
                  ("Name", Jsonlite.Str name);
                  ("MaximumRetryCount", Jsonlite.Num (float_of_int retries));
                ] );
            ("Binds", Jsonlite.Arr binds);
            ("PortBindings", Jsonlite.Arr ports);
          ] );
      ("Config", Image.config_json c.image);
    ]

let to_frame c =
  let image_frame = Image.flatten c.image in
  (* Rebuild under the container identity, then replay the runtime layer. *)
  let base =
    Frames.Frame.create ~os:c.image.Image.base_os ~id:c.id (Frames.Frame.Container c.id)
  in
  let base =
    List.fold_left Frames.Frame.add_file base (Frames.Frame.all_entries image_frame)
  in
  let frame = Layer.apply base c.runtime_layer in
  let frame = Frames.Frame.set_processes frame c.processes in
  let frame =
    Frames.Frame.set_runtime_doc frame ~key:"docker_image_config"
      (Jsonlite.to_string (Image.config_json c.image))
  in
  Frames.Frame.set_runtime_doc frame ~key:"docker_inspect" (Jsonlite.to_string (inspect_json c))
