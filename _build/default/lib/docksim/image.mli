(** Docker images: an ordered layer stack plus the image configuration
    that CIS-Docker image rules assert on (USER, HEALTHCHECK, EXPOSE,
    ENV — e.g. "no secrets in ENV", "do not run as root"). *)

type config = {
  user : string;  (** [""] means root, per Docker semantics *)
  exposed_ports : int list;
  env : (string * string) list;
  entrypoint : string list;
  cmd : string list;
  healthcheck : string option;  (** the test command, if declared *)
  labels : (string * string) list;
}

val default_config : config

type t = {
  reference : string;  (** e.g. ["nginx:1.13"] *)
  layers : Layer.t list;  (** base image first *)
  config : config;
  base_os : string;
}

val make : ?base_os:string -> ?config:config -> reference:string -> Layer.t list -> t

(** Union-filesystem resolution: fold the layers bottom-up into a
    {!Frames.Frame.t} whose entity kind is [Docker_image reference].
    The image configuration is exposed to script rules as the
    ["docker_image_config"] runtime document (a JSON object). *)
val flatten : t -> Frames.Frame.t

val config_json : t -> Jsonlite.t

(** Number of layers; CIS-Docker flags images with excessive layers. *)
val layer_count : t -> int
