(** A miniature ConfValley-style validation language ("CPL").

    ConfValley (Huang et al., EuroSys '15) is the declarative
    configuration-validation framework the paper positions CVL against:
    also declarative, but — per the paper — "still requires significant
    DevOps expertise". This module makes that qualitative §4.2 claim
    executable: the same 40 CIS checks render into a CPL-style
    imperative-declarative hybrid (explicit source bindings, typed
    selectors, quantified assertions) and run against configuration
    frames, so specification sizes and runtimes can be compared under
    identical semantics.

    The language (a faithful simplification of CPL's shape):

    {v
    let sshd = file("/etc/ssh/sshd_config", kv_space)
    assert sshd["PermitRootLogin"] == "no"
    assert if_present sshd["X11Forwarding"] == "no"
    assert sshd["MaxAuthTries"] matches "[1-4]"
    assert sshd["LogLevel"] in ["INFO", "VERBOSE"]
    assert count(match(audit, "-w /etc/passwd")) >= 1
    assert mode("/etc/ssh/sshd_config") <= 600
    assert owner("/etc/ssh/sshd_config") == "0:0"
    v}

    Formats: [kv_space] (sshd style), [kv_equals] (sysctl style),
    [lines] (raw non-comment lines). An assertion over a selector is
    evaluated against {e every} occurrence of the key. *)

type format =
  | Kv_space
  | Kv_equals
  | Lines

type comparison =
  | Eq of string
  | In of string list
  | Matches of string  (** whole-value regex *)

type assertion =
  | Key of { binding : string; key : string; if_present : bool; comparison : comparison }
  | Exists of { binding : string; key : string }
  | Count of { binding : string; regex : string; op : [ `Ge | `Eq ]; bound : int }
  | Mode_le of { path : string; ceiling : int }
  | Owner_eq of { path : string; owner : string }

type program = {
  bindings : (string * (string * format)) list;  (** name → (path, format) *)
  assertions : assertion list;
}

val parse : string -> (program, string) result
val render : program -> string

(** Each assertion's verdict, in order ([true] = holds). *)
val eval : Frames.Frame.t -> program -> bool list

(** Whole-program conjunction. *)
val check : Frames.Frame.t -> program -> bool

(** {2 Table 2 / Listing 6 integration} *)

(** Render one abstract check as a standalone CPL program (binding +
    assertions) — the ConfValley column of the spec-size comparison. *)
val of_check : Checkir.Check.t -> program

(** One program covering all checks (bindings shared), plus the span of
    assertion indexes belonging to each check id. *)
val of_checks : Checkir.Check.t list -> program * (string * int * int) list

(** Run all checks through one parsed program: (check id, compliant). *)
val run_checks : Frames.Frame.t -> Checkir.Check.t list -> (string * bool) list
