type format =
  | Kv_space
  | Kv_equals
  | Lines

type comparison =
  | Eq of string
  | In of string list
  | Matches of string

type assertion =
  | Key of { binding : string; key : string; if_present : bool; comparison : comparison }
  | Exists of { binding : string; key : string }
  | Count of { binding : string; regex : string; op : [ `Ge | `Eq ]; bound : int }
  | Mode_le of { path : string; ceiling : int }
  | Owner_eq of { path : string; owner : string }

type program = {
  bindings : (string * (string * format)) list;
  assertions : assertion list;
}

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let format_of_string = function
  | "kv_space" -> Ok Kv_space
  | "kv_equals" -> Ok Kv_equals
  | "lines" -> Ok Lines
  | s -> Error (Printf.sprintf "unknown format %S" s)

let format_to_string = function
  | Kv_space -> "kv_space"
  | Kv_equals -> "kv_equals"
  | Lines -> "lines"

(* Tokens: identifiers, quoted strings, numbers, and punctuation that
   matters for the grammar. *)
type token =
  | Ident of string
  | Str of string
  | Num of int
  | Punct of string

let tokenize line ~lineno =
  let n = String.length line in
  let out = ref [] in
  let rec go i =
    if i >= n then Ok ()
    else
      match line.[i] with
      | ' ' | '\t' -> go (i + 1)
      | '"' -> (
        match String.index_from_opt line (i + 1) '"' with
        | None -> Error (Printf.sprintf "line %d: unterminated string" lineno)
        | Some j ->
          out := Str (String.sub line (i + 1) (j - i - 1)) :: !out;
          go (j + 1))
      | '0' .. '9' ->
        let rec digits j = if j < n && line.[j] >= '0' && line.[j] <= '9' then digits (j + 1) else j in
        let j = digits i in
        out := Num (int_of_string (String.sub line i (j - i))) :: !out;
        go j
      | '[' | ']' | '(' | ')' | ',' ->
        out := Punct (String.make 1 line.[i]) :: !out;
        go (i + 1)
      | '=' when i + 1 < n && line.[i + 1] = '=' ->
        out := Punct "==" :: !out;
        go (i + 2)
      | '=' ->
        out := Punct "=" :: !out;
        go (i + 1)
      | '<' when i + 1 < n && line.[i + 1] = '=' ->
        out := Punct "<=" :: !out;
        go (i + 2)
      | '>' when i + 1 < n && line.[i + 1] = '=' ->
        out := Punct ">=" :: !out;
        go (i + 2)
      | c when (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' ->
        let is_ident ch =
          (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || (ch >= '0' && ch <= '9') || ch = '_'
        in
        let rec ident j = if j < n && is_ident line.[j] then ident (j + 1) else j in
        let j = ident i in
        out := Ident (String.sub line i (j - i)) :: !out;
        go j
      | c -> Error (Printf.sprintf "line %d: unexpected character %C" lineno c)
  in
  let* () = go 0 in
  Ok (List.rev !out)

let parse_comparison tokens ~lineno =
  match tokens with
  | Punct "==" :: Str v :: [] -> Ok (Eq v)
  | Ident "in" :: Punct "[" :: rest ->
    let rec items acc = function
      | Str v :: Punct "," :: more -> items (v :: acc) more
      | Str v :: Punct "]" :: [] -> Ok (In (List.rev (v :: acc)))
      | _ -> Error (Printf.sprintf "line %d: malformed value list" lineno)
    in
    items [] rest
  | Ident "matches" :: Str re :: [] -> Ok (Matches re)
  | _ -> Error (Printf.sprintf "line %d: expected ==, in [...], or matches" lineno)

let parse_selector tokens ~lineno =
  match tokens with
  | Ident binding :: Punct "[" :: Str key :: Punct "]" :: rest -> Ok ((binding, key), rest)
  | _ -> Error (Printf.sprintf "line %d: expected binding[\"key\"]" lineno)

let parse_assertion tokens ~lineno =
  match tokens with
  | Ident "exists" :: rest ->
    let* (binding, key), rest = parse_selector rest ~lineno in
    if rest = [] then Ok (Exists { binding; key })
    else Error (Printf.sprintf "line %d: trailing tokens after exists" lineno)
  | Ident "if_present" :: rest ->
    let* (binding, key), rest = parse_selector rest ~lineno in
    let* comparison = parse_comparison rest ~lineno in
    Ok (Key { binding; key; if_present = true; comparison })
  | Ident "count" :: Punct "(" :: Ident "match" :: Punct "(" :: Ident binding :: Punct ","
    :: Str regex :: Punct ")" :: Punct ")" :: rest -> (
    match rest with
    | Punct ">=" :: Num bound :: [] -> Ok (Count { binding; regex; op = `Ge; bound })
    | Punct "==" :: Num bound :: [] -> Ok (Count { binding; regex; op = `Eq; bound })
    | _ -> Error (Printf.sprintf "line %d: expected >= N or == N after count()" lineno))
  | Ident "mode" :: Punct "(" :: Str path :: Punct ")" :: Punct "<=" :: Num ceiling :: [] -> (
    match int_of_string_opt ("0o" ^ string_of_int ceiling) with
    | Some bits -> Ok (Mode_le { path; ceiling = bits })
    | None -> Error (Printf.sprintf "line %d: invalid octal mode" lineno))
  | Ident "owner" :: Punct "(" :: Str path :: Punct ")" :: Punct "==" :: Str owner :: [] ->
    Ok (Owner_eq { path; owner })
  | _ ->
    let* (binding, key), rest = parse_selector tokens ~lineno in
    let* comparison = parse_comparison rest ~lineno in
    Ok (Key { binding; key; if_present = false; comparison })

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno bindings assertions = function
    | [] -> Ok { bindings = List.rev bindings; assertions = List.rev assertions }
    | line :: rest -> (
      let line = String.trim line in
      if line = "" || line.[0] = '#' then go (lineno + 1) bindings assertions rest
      else
        let* tokens = tokenize line ~lineno in
        match tokens with
        | Ident "let" :: Ident name :: Punct "=" :: Ident "file" :: Punct "(" :: Str path
          :: Punct "," :: Ident fmt :: Punct ")" :: [] ->
          let* format = format_of_string fmt in
          if List.mem_assoc name bindings then
            Error (Printf.sprintf "line %d: duplicate binding %s" lineno name)
          else go (lineno + 1) ((name, (path, format)) :: bindings) assertions rest
        | Ident "assert" :: body ->
          let* assertion = parse_assertion body ~lineno in
          go (lineno + 1) bindings (assertion :: assertions) rest
        | _ -> Error (Printf.sprintf "line %d: expected let or assert" lineno))
  in
  go 1 [] [] lines

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

(* CPL strings are raw between quotes (the parser applies no escape
   processing), so rendering must not escape backslashes; embedded
   quotes are unsupported, as in the original language's regex atoms. *)
let quote s = "\"" ^ s ^ "\""

let render_comparison = function
  | Eq v -> Printf.sprintf "== %s" (quote v)
  | In vs -> Printf.sprintf "in [%s]" (String.concat ", " (List.map quote vs))
  | Matches re -> Printf.sprintf "matches %s" (quote re)

let render_assertion = function
  | Key { binding; key; if_present; comparison } ->
    Printf.sprintf "assert %s%s[%s] %s"
      (if if_present then "if_present " else "")
      binding (quote key) (render_comparison comparison)
  | Exists { binding; key } -> Printf.sprintf "assert exists %s[%s]" binding (quote key)
  | Count { binding; regex; op; bound } ->
    Printf.sprintf "assert count(match(%s, %s)) %s %d" binding (quote regex)
      (match op with `Ge -> ">=" | `Eq -> "==")
      bound
  | Mode_le { path; ceiling } -> Printf.sprintf "assert mode(%s) <= %o" (quote path) ceiling
  | Owner_eq { path; owner } -> Printf.sprintf "assert owner(%s) == %s" (quote path) (quote owner)

let render program =
  String.concat "\n"
    (List.map
       (fun (name, (path, fmt)) ->
         Printf.sprintf "let %s = file(%s, %s)" name (quote path) (format_to_string fmt))
       program.bindings
    @ List.map render_assertion program.assertions)
  ^ "\n"

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let regex_cache : (string, Re.re option) Hashtbl.t = Hashtbl.create 32

let compile_whole pattern =
  match Hashtbl.find_opt regex_cache pattern with
  | Some c -> c
  | None ->
    let c = try Some (Re.compile (Re.whole_string (Re.Pcre.re pattern))) with _ -> None in
    Hashtbl.add regex_cache pattern c;
    c

let compile_search pattern =
  let key = "\x00search:" ^ pattern in
  match Hashtbl.find_opt regex_cache key with
  | Some c -> c
  | None ->
    let c = try Some (Re.compile (Re.Pcre.re pattern)) with _ -> None in
    Hashtbl.add regex_cache key c;
    c

let values_of frame program ~binding ~key =
  match List.assoc_opt binding program.bindings with
  | None -> None
  | Some (path, format) -> (
    let lines = Checkir.Check.config_lines frame path in
    match format with
    | Kv_space -> Some (Checkir.Check.key_values ~sep:Checkir.Check.Space ~key lines)
    | Kv_equals -> Some (Checkir.Check.key_values ~sep:Checkir.Check.Equals ~key lines)
    | Lines -> Some (List.filter (fun l -> l = key) lines))

let comparison_holds comparison value =
  match comparison with
  | Eq expected -> String.equal value expected
  | In vs -> List.mem value vs
  | Matches re -> ( match compile_whole re with Some re -> Re.execp re value | None -> false)

let eval_assertion frame program = function
  | Key { binding; key; if_present; comparison } -> (
    match values_of frame program ~binding ~key with
    | None -> false
    | Some [] -> if_present
    | Some values -> List.for_all (comparison_holds comparison) values)
  | Exists { binding; key } -> (
    match values_of frame program ~binding ~key with
    | Some (_ :: _) -> true
    | Some [] | None -> false)
  | Count { binding; regex; op; bound } -> (
    match (List.assoc_opt binding program.bindings, compile_search regex) with
    | Some (path, _), Some re ->
      let hits =
        List.length (List.filter (Re.execp re) (Checkir.Check.config_lines frame path))
      in
      (match op with `Ge -> hits >= bound | `Eq -> hits = bound)
    | _ -> false)
  | Mode_le { path; ceiling } -> (
    match Frames.Frame.stat frame path with
    | Some f -> f.Frames.File.mode land lnot ceiling land 0o7777 = 0
    | None -> false)
  | Owner_eq { path; owner } -> (
    match Frames.Frame.stat frame path with
    | Some f -> Frames.File.ownership f = owner
    | None -> false)

let eval frame program = List.map (eval_assertion frame program) program.assertions
let check frame program = List.for_all (fun b -> b) (eval frame program)

(* ------------------------------------------------------------------ *)
(* From abstract checks                                                *)
(* ------------------------------------------------------------------ *)

let binding_for file =
  let base =
    match String.rindex_opt file '/' with
    | Some i -> String.sub file (i + 1) (String.length file - i - 1)
    | None -> file
  in
  String.map (fun c -> if c = '.' || c = '-' then '_' else c) base

let format_for (sep : Checkir.Check.sep) =
  match sep with Checkir.Check.Space -> Kv_space | Checkir.Check.Equals -> Kv_equals

let assertions_of_check (c : Checkir.Check.t) =
  match c.Checkir.Check.target with
  | Checkir.Check.Key_value { file; key; sep; expected; absent_pass } ->
    let comparison =
      match expected with
      | Checkir.Check.Values [ v ] -> Eq v
      | Checkir.Check.Values vs -> In vs
      | Checkir.Check.Pattern p -> Matches p
    in
    ([ (file, format_for sep) ], [ Key { binding = binding_for file; key; if_present = absent_pass; comparison } ])
  | Checkir.Check.Line_present { file; regex } ->
    ([ (file, Lines) ], [ Count { binding = binding_for file; regex; op = `Ge; bound = 1 } ])
  | Checkir.Check.Line_absent { file; regex } ->
    ([ (file, Lines) ], [ Count { binding = binding_for file; regex; op = `Eq; bound = 0 } ])
  | Checkir.Check.File_mode { path; max_mode; owner } ->
    ([], [ Mode_le { path; ceiling = max_mode }; Owner_eq { path; owner } ])

let of_check c =
  let bindings, assertions = assertions_of_check c in
  let bindings = List.map (fun (path, fmt) -> (binding_for path, (path, fmt))) bindings in
  { bindings; assertions }

let of_checks checks =
  let bindings = ref [] in
  let spans = ref [] in
  let assertions = ref [] in
  let count = ref 0 in
  List.iter
    (fun (c : Checkir.Check.t) ->
      let bs, asserts = assertions_of_check c in
      List.iter
        (fun (path, fmt) ->
          let name = binding_for path in
          if not (List.mem_assoc name !bindings) then bindings := (name, (path, fmt)) :: !bindings)
        bs;
      let start = !count in
      assertions := !assertions @ asserts;
      count := !count + List.length asserts;
      spans := (c.Checkir.Check.id, start, !count) :: !spans)
    checks;
  ({ bindings = List.rev !bindings; assertions = !assertions }, List.rev !spans)

let run_checks frame checks =
  let program, spans = of_checks checks in
  let verdicts = Array.of_list (eval frame program) in
  List.map
    (fun (id, start, stop) ->
      let ok = ref true in
      for i = start to stop - 1 do
        if not verdicts.(i) then ok := false
      done;
      (id, !ok))
    spans
