lib/confvalley/cpl.mli: Checkir Frames
