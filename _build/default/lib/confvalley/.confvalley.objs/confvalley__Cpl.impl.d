lib/confvalley/cpl.ml: Array Checkir Frames Hashtbl List Printf Re Result String
