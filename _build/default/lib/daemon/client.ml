open Protocol

type t = { ic : in_channel; oc : out_channel; close_fn : unit -> unit; mutable closed : bool }

let of_channels ?close ic oc =
  let close_fn =
    match close with
    | Some f -> f
    | None ->
        fun () ->
          close_out_noerr oc;
          close_in_noerr ic
  in
  { ic; oc; close_fn; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.close_fn ()
  end

(* Deterministic jitter: a cheap integer hash of the attempt number
   mapped into [0.5, 1.0]. No RNG state, so two clients started from
   the same script still spread out (they race the clock, not the
   hash), and tests can predict the exact bounds of every delay. *)
let jitter attempt =
  let h = attempt * 2654435761 land 0xFFFF in
  0.5 +. (0.5 *. (float_of_int h /. 65535.0))

let connect ?(retry_for = 0.0) ?(base_backoff = 0.025) ?(max_backoff = 0.4)
    ?(now = Unix.gettimeofday) ?(sleep = Unix.sleepf) path =
  let deadline = now () +. retry_for in
  let rec attempt n =
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect sock (Unix.ADDR_UNIX path) with
    | () -> Ok (of_channels (Unix.in_channel_of_descr sock) (Unix.out_channel_of_descr sock))
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close sock with Unix.Unix_error _ -> ());
        let remaining = deadline -. now () in
        if remaining <= 0.0 then
          Error
            (Printf.sprintf "cannot connect to %s after %d attempt(s): %s" path (n + 1)
               (Unix.error_message e))
        else begin
          (* Jittered exponential backoff, capped, and never sleeping
             past the total connect deadline. *)
          let d = Float.min max_backoff (base_backoff *. (2.0 ** float_of_int n)) *. jitter n in
          sleep (Float.min d remaining);
          attempt (n + 1)
        end
  in
  attempt 0

let in_process server =
  let client_fd, server_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let domain =
    Domain.spawn (fun () ->
        let ic = Unix.in_channel_of_descr server_fd in
        let oc = Unix.out_channel_of_descr server_fd in
        let (_ : [ `Disconnect | `Shutdown ]) = Server.serve server ic oc in
        close_out_noerr oc;
        close_in_noerr ic)
  in
  let ic = Unix.in_channel_of_descr client_fd in
  let oc = Unix.out_channel_of_descr client_fd in
  of_channels
    ~close:(fun () ->
      close_out_noerr oc;
      close_in_noerr ic;
      Domain.join domain)
    ic oc

(* ---------------------------------------------------------------- *)
(* Calls                                                             *)
(* ---------------------------------------------------------------- *)

let ( let* ) = Result.bind

let send t req =
  match write_request t.oc req with
  | () -> Ok ()
  | exception Sys_error m -> Error (Printf.sprintf "send failed: %s" m)

let rpc t req =
  let* () = send t req in
  read_response t.ic

let ping t =
  match rpc t Ping with
  | Ok Pong -> Ok ()
  | Ok (Error_reply m) -> Error m
  | Ok _ -> Error "unexpected reply to ping"
  | Error m -> Error m

let stats t =
  match rpc t Stats with
  | Ok (Stats_reply st) -> Ok st
  | Ok (Error_reply m) -> Error m
  | Ok _ -> Error "unexpected reply to stats"
  | Error m -> Error m

let reload_rules t =
  match rpc t Reload_rules with
  | Ok (Reloaded { entities; rules }) -> Ok (entities, rules)
  | Ok (Error_reply m) -> Error m
  | Ok _ -> Error "unexpected reply to reload-rules"
  | Error m -> Error m

let shutdown t =
  match rpc t Shutdown with
  | Ok Bye -> Ok ()
  | Ok (Error_reply m) -> Error m
  | Ok _ -> Error "unexpected reply to shutdown"
  | Error m -> Error m

let stream t req ~on_verdict =
  let* () = send t req in
  let rec drain () =
    match read_response t.ic with
    | Ok (Verdict v) ->
        on_verdict v;
        drain ()
    | Ok (Summary s) -> Ok s
    | Ok (Error_reply m) -> Error m
    | Ok (Overloaded { queue_depth; retry_after_ms }) ->
        Error
          (Printf.sprintf "server overloaded (queue depth %d): retry in %d ms" queue_depth
             retry_after_ms)
    | Ok _ -> Error "unexpected reply in verdict stream"
    | Error m -> Error m
  in
  drain ()

let validate t ~on_verdict job = stream t (Validate job) ~on_verdict

let revalidate t ~on_verdict frame =
  stream t (Revalidate { frame = Some frame; frame_file = None; deadline_ms = None }) ~on_verdict

let revalidate_file t ~on_verdict path =
  stream t (Revalidate { frame = None; frame_file = Some path; deadline_ms = None }) ~on_verdict

(* ---------------------------------------------------------------- *)
(* Watch mode                                                        *)
(* ---------------------------------------------------------------- *)

let watch t ~load ~sleep ~max_events ~on_event () =
  let digest frame = Digest.string (Frames.Codec.to_string frame) in
  let* first = load () in
  let* (_ : summary) = validate t ~on_verdict:(fun _ -> ()) (job ~frames:[ first ] ()) in
  let rec poll last_digest events =
    if events >= max_events then Ok events
    else if not (sleep ()) then Ok events
    else
      let* frame = load () in
      let d = digest frame in
      if String.equal d last_digest then poll last_digest events
      else
        let* s = revalidate t ~on_verdict:(fun _ -> ()) frame in
        on_event s;
        poll d (events + 1)
  in
  poll (digest first) 0
