open Protocol

type protocol = [ `Auto | `V1 | `V2 ]

(* What a v2 delta stream saved, reported per reassembled stream. *)
type delta_info = {
  d_frame : string;
  d_epoch : int;
  d_baseline : int;
  d_total : int;
  d_added : int;
  d_changed : int;
  d_removed : int;
  d_copied : int;
  d_full : bool;
}

type t = {
  ic : in_channel;
  oc : out_channel;
  close_fn : unit -> unit;
  mutable closed : bool;
  mutable version : int;
  (* v2 transport state: the reader's intern table for server frames,
     the writer (+ its table) for our own requests, and a reused
     request-encode buffer. All idle until a hello upgrades us. *)
  rd : V2.reader;
  wr : V2.writer;
  wbuf : Buffer.t;
  (* frame id -> (epoch, verdicts): the reassembly baselines this
     connection has retained from epoch-headed streams *)
  bases : (string, int * verdict array) Hashtbl.t;
}

let of_channels ?close ic oc =
  let close_fn =
    match close with
    | Some f -> f
    | None ->
        fun () ->
          close_out_noerr oc;
          close_in_noerr ic
  in
  {
    ic;
    oc;
    close_fn;
    closed = false;
    version = json_version;
    rd = V2.reader ();
    wr = V2.writer ();
    wbuf = Buffer.create 256;
    bases = Hashtbl.create 8;
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.close_fn ()
  end

let version t = t.version

(* ---------------------------------------------------------------- *)
(* Transport: version-aware send / receive                           *)
(* ---------------------------------------------------------------- *)

let send t req =
  try
    (if t.version = binary_version then begin
       Buffer.clear t.wbuf;
       V2.add_request t.wr t.wbuf req;
       Buffer.output_buffer t.oc t.wbuf
     end
     else output_string t.oc (frame_bytes (request_to_json req)));
    flush t.oc;
    Ok ()
  with Sys_error m -> Error (Printf.sprintf "send failed: %s" m)

(* One non-stream reply. Under v2 the reply arrives as a [json] frame. *)
let read_reply t =
  if t.version = binary_version then
    match V2.read_frame t.rd t.ic with
    | V2.Frame (V2.Json json) -> response_of_json json
    | V2.Frame _ -> Error "unexpected stream frame in reply position"
    | V2.Bad m -> Error (Printf.sprintf "malformed response payload: %s" m)
    | V2.Truncated m -> Error (Printf.sprintf "response stream truncated: %s" m)
    | V2.Closed -> Error "connection closed by server"
  else read_response t.ic

let ( let* ) = Result.bind

let rpc t req =
  let* () = send t req in
  read_reply t

(* ---------------------------------------------------------------- *)
(* Version negotiation                                               *)
(* ---------------------------------------------------------------- *)

(* The hello round-trip always runs v1-framed (we only upgrade after a
   welcome grants v2). [`Auto] falls back to v1 when the peer rejects
   the op — that is what a pre-v2 server answers — while [`V2] treats
   anything short of a v2 grant as failure. *)
let negotiate t (protocol : protocol) =
  match protocol with
  | `V1 -> Ok ()
  | (`Auto | `V2) as pref -> (
      match rpc t (Hello { version = binary_version }) with
      | Ok (Welcome { version }) ->
          let granted = if version >= binary_version then binary_version else json_version in
          t.version <- granted;
          if pref = `V2 && granted <> binary_version then
            Error (Printf.sprintf "server granted protocol v%d, v2 required" granted)
          else Ok ()
      | Ok (Error_reply _) when pref = `Auto -> Ok ()
      | Ok (Error_reply m) -> Error (Printf.sprintf "hello rejected: %s" m)
      | Ok (Overloaded { queue_depth; retry_after_ms }) ->
          Error
            (Printf.sprintf "server overloaded (queue depth %d): retry in %d ms" queue_depth
               retry_after_ms)
      | Ok _ -> Error "unexpected reply to hello"
      | Error m -> Error m)

(* Deterministic jitter: a cheap integer hash of the attempt number
   mapped into [0.5, 1.0]. No RNG state, so two clients started from
   the same script still spread out (they race the clock, not the
   hash), and tests can predict the exact bounds of every delay. *)
let jitter attempt =
  let h = attempt * 2654435761 land 0xFFFF in
  0.5 +. (0.5 *. (float_of_int h /. 65535.0))

let connect ?(protocol = `Auto) ?(retry_for = 0.0) ?(base_backoff = 0.025) ?(max_backoff = 0.4)
    ?(now = Unix.gettimeofday) ?(sleep = Unix.sleepf) path =
  let deadline = now () +. retry_for in
  let rec attempt n =
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect sock (Unix.ADDR_UNIX path) with
    | () -> (
        let t = of_channels (Unix.in_channel_of_descr sock) (Unix.out_channel_of_descr sock) in
        match negotiate t protocol with
        | Ok () -> Ok t
        | Error m ->
            close t;
            Error (Printf.sprintf "cannot negotiate with %s: %s" path m))
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close sock with Unix.Unix_error _ -> ());
        let remaining = deadline -. now () in
        if remaining <= 0.0 then
          Error
            (Printf.sprintf "cannot connect to %s after %d attempt(s): %s" path (n + 1)
               (Unix.error_message e))
        else begin
          (* Jittered exponential backoff, capped, and never sleeping
             past the total connect deadline. *)
          let d = Float.min max_backoff (base_backoff *. (2.0 ** float_of_int n)) *. jitter n in
          sleep (Float.min d remaining);
          attempt (n + 1)
        end
  in
  attempt 0

let in_process ?(protocol = `Auto) server =
  let client_fd, server_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let domain =
    Domain.spawn (fun () ->
        let ic = Unix.in_channel_of_descr server_fd in
        let oc = Unix.out_channel_of_descr server_fd in
        let (_ : [ `Disconnect | `Shutdown ]) = Server.serve server ic oc in
        close_out_noerr oc;
        close_in_noerr ic)
  in
  let ic = Unix.in_channel_of_descr client_fd in
  let oc = Unix.out_channel_of_descr client_fd in
  let t =
    of_channels
      ~close:(fun () ->
        close_out_noerr oc;
        close_in_noerr ic;
        Domain.join domain)
      ic oc
  in
  (* An in-process server always speaks v2, so [`Auto]/[`V2] cannot
     fail here — but surface a negotiation error rather than hide it. *)
  match negotiate t protocol with
  | Ok () -> t
  | Error m ->
      close t;
      failwith (Printf.sprintf "in-process negotiation failed: %s" m)

(* ---------------------------------------------------------------- *)
(* Calls                                                             *)
(* ---------------------------------------------------------------- *)

let ping t =
  match rpc t Ping with
  | Ok Pong -> Ok ()
  | Ok (Error_reply m) -> Error m
  | Ok _ -> Error "unexpected reply to ping"
  | Error m -> Error m

let stats t =
  match rpc t Stats with
  | Ok (Stats_reply st) -> Ok st
  | Ok (Error_reply m) -> Error m
  | Ok _ -> Error "unexpected reply to stats"
  | Error m -> Error m

let reload_rules t =
  match rpc t Reload_rules with
  | Ok (Reloaded { entities; rules }) -> Ok (entities, rules)
  | Ok (Error_reply m) -> Error m
  | Ok _ -> Error "unexpected reply to reload-rules"
  | Error m -> Error m

let shutdown t =
  match rpc t Shutdown with
  | Ok Bye -> Ok ()
  | Ok (Error_reply m) -> Error m
  | Ok _ -> Error "unexpected reply to shutdown"
  | Error m -> Error m

(* ---------------------------------------------------------------- *)
(* Verdict streams                                                   *)
(* ---------------------------------------------------------------- *)

let stream_error = function
  | Error_reply m -> Error m
  | Overloaded { queue_depth; retry_after_ms } ->
      Error
        (Printf.sprintf "server overloaded (queue depth %d): retry in %d ms" queue_depth
           retry_after_ms)
  | _ -> Error "unexpected reply in verdict stream"

(* v1 stream: every verdict arrives on the wire, so it is both a full
   verdict and a fresh one. *)
let drain_v1 t ~on_verdict ~on_fresh =
  let rec drain () =
    match read_response t.ic with
    | Ok (Verdict v) ->
        on_fresh v;
        on_verdict v;
        drain ()
    | Ok (Summary s) -> Ok (s, None)
    | Ok other -> stream_error other
    | Error m -> Error m
  in
  drain ()

(* v2 stream: reassemble the full verdict sequence from fresh verdict
   frames and baseline copy runs. [on_verdict] sees the reassembled
   sequence in engine order — byte-identical to what v1 would have
   streamed — while [on_fresh] sees only what actually crossed the
   wire. Baselines are retained only once the summary trailer lands,
   so an aborted stream leaves both ends on the old epoch. *)
let drain_v2 t ~on_verdict ~on_fresh =
  let acc = ref [] in
  let count = ref 0 in
  let header = ref None in
  let copied = ref 0 in
  let push v =
    acc := v :: !acc;
    incr count;
    on_verdict v
  in
  let finish s =
    match !header with
    | None -> Ok (s, None)
    | Some ((h : V2.epoch_header), _) ->
        if !count <> h.e_total then
          Error
            (Printf.sprintf "reassembled %d verdict(s), epoch header promised %d" !count
               h.e_total)
        else begin
          let full = Array.of_list (List.rev !acc) in
          Hashtbl.replace t.bases h.e_frame (h.e_epoch, full);
          Ok
            ( s,
              Some
                {
                  d_frame = h.e_frame;
                  d_epoch = h.e_epoch;
                  d_baseline = h.e_baseline;
                  d_total = h.e_total;
                  d_added = h.e_added;
                  d_changed = h.e_changed;
                  d_removed = h.e_removed;
                  d_copied = !copied;
                  d_full = not h.e_delta;
                } )
        end
  in
  let rec drain () =
    match V2.read_frame t.rd t.ic with
    | V2.Frame (V2.Json json) -> (
        match response_of_json json with
        | Ok (Summary s) -> finish s
        | Ok other -> stream_error other
        | Error m -> Error m)
    | V2.Frame (V2.Verdict_frame v) ->
        on_fresh v;
        push v;
        drain ()
    | V2.Frame (V2.Epoch h) -> (
        match !header with
        | Some _ -> Error "second epoch header in one stream"
        | None ->
            if not h.e_delta then begin
              header := Some (h, None);
              drain ()
            end
            else (
              match Hashtbl.find_opt t.bases h.e_frame with
              | None ->
                  Error
                    (Printf.sprintf "delta stream for frame %S without a retained baseline"
                       h.e_frame)
              | Some (epoch, _) when epoch <> h.e_baseline ->
                  Error
                    (Printf.sprintf
                       "delta stream for frame %S builds on epoch %d, but epoch %d is retained"
                       h.e_frame h.e_baseline epoch)
              | Some (_, base) ->
                  header := Some (h, Some base);
                  drain ()))
    | V2.Frame (V2.Copy { start; count = n }) -> (
        match !header with
        | Some (_, Some base) when start >= 0 && n >= 0 && start + n <= Array.length base ->
            for i = start to start + n - 1 do
              push base.(i)
            done;
            copied := !copied + n;
            drain ()
        | Some (_, Some base) ->
            Error
              (Printf.sprintf "copy run [%d, %d) outside the %d-verdict baseline" start
                 (start + n) (Array.length base))
        | _ -> Error "copy frame outside a delta stream")
    | V2.Bad m -> Error (Printf.sprintf "malformed response payload: %s" m)
    | V2.Truncated m -> Error (Printf.sprintf "response stream truncated: %s" m)
    | V2.Closed -> Error "connection closed by server"
  in
  drain ()

let stream_ex t req ~on_verdict ~on_fresh =
  let* () = send t req in
  if t.version = binary_version then drain_v2 t ~on_verdict ~on_fresh
  else drain_v1 t ~on_verdict ~on_fresh

let stream t req ~on_verdict =
  Result.map fst (stream_ex t req ~on_verdict ~on_fresh:(fun _ -> ()))

let validate t ~on_verdict job = stream t (Validate job) ~on_verdict

let revalidate_req ?(full = false) frame =
  Revalidate { frame = Some frame; frame_file = None; deadline_ms = None; full }

let revalidate ?full t ~on_verdict frame = stream t (revalidate_req ?full frame) ~on_verdict

let revalidate_ex ?full ?(on_fresh = fun _ -> ()) t ~on_verdict frame =
  stream_ex t (revalidate_req ?full frame) ~on_verdict ~on_fresh

let revalidate_file ?(full = false) t ~on_verdict path =
  stream t
    (Revalidate { frame = None; frame_file = Some path; deadline_ms = None; full })
    ~on_verdict

(* ---------------------------------------------------------------- *)
(* Watch mode                                                        *)
(* ---------------------------------------------------------------- *)

let watch t ~load ~sleep ~max_events ?(full = false) ?(on_verdict = fun _ -> ())
    ?(on_fresh = fun _ -> ()) ~on_event () =
  let digest frame = Digest.string (Frames.Codec.to_string frame) in
  let* first = load () in
  let* (_ : summary) = validate t ~on_verdict:(fun _ -> ()) (job ~frames:[ first ] ()) in
  let rec poll last_digest events =
    if events >= max_events then Ok events
    else if not (sleep ()) then Ok events
    else
      let* frame = load () in
      let d = digest frame in
      if String.equal d last_digest then poll last_digest events
      else
        let* s, delta = revalidate_ex ~full ~on_fresh t ~on_verdict frame in
        on_event s delta;
        poll d (events + 1)
  in
  poll (digest first) 0
