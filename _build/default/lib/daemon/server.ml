open Protocol

(* Writing to a peer that vanished must surface as Sys_error/EPIPE on
   the channel, not kill the process. *)
let ignore_sigpipe =
  lazy (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ())

type config = {
  backlog : int;
  max_connections : int;
  max_inflight : int;
  queue_depth : int;
  deadline_ms : int option;
  idle_timeout_ms : int option;
  drain_ms : int;
}

let default_config =
  {
    backlog = 8;
    max_connections = 64;
    max_inflight = 4;
    queue_depth = 16;
    deadline_ms = None;
    idle_timeout_ms = None;
    drain_ms = 2000;
  }

type t = {
  source : Cvl.Loader.source;
  manifest : Cvl.Manifest.entry list;
  manifest_path : string option;
  log : string -> unit;
  log_lock : Mutex.t;
  pool : Pool.t;
  config : config;
  (* [lock] guards every mutable field below plus [baselines] and the
     rules/compiled/fused swap; [slot_freed] is broadcast whenever an
     admission slot frees up or drain state changes. *)
  lock : Mutex.t;
  slot_freed : Condition.t;
  mutable rules : (Cvl.Manifest.entry * Cvl.Rule.t list) list;
  mutable load_errors : (string * string) list;
  mutable compiled : Cvl.Compile.t;
  mutable fused : Cvl.Fuse.t;
  mutable lint_findings : int;
  (* frame id -> (last validated snapshot, its results): the baseline
     [revalidate] diffs against *)
  baselines : (string, Frames.Frame.t * Cvl.Engine.result list) Hashtbl.t;
  mutable requests : int;
  mutable jobs_served : int;
  mutable verdicts_streamed : int;
  mutable protocol_errors : int;
  mutable contained : int;
  mutable reloads : int;
  mutable latencies_ms : float list;  (* newest first *)
  mutable busy_s : float;
  (* admission limiter *)
  mutable inflight : int;
  mutable exclusive_running : bool;
  mutable exclusive_waiting : int;
  mutable queued : int;
  mutable shed : int;
  mutable deadline_misses : int;
  (* session registry *)
  mutable next_sid : int;
  mutable session_count : int;
  mutable peak_sessions : int;
  session_fds : (int, Unix.file_descr) Hashtbl.t;
  mutable session_domains : unit Domain.t list;
  mutable idle_reaped : int;
  mutable crashed : int;
  (* protocol accounting: connection counts per negotiated version,
     reply bytes written per version, and how much work the v2 delta
     path saved *)
  mutable v1_connections : int;
  mutable v2_connections : int;
  mutable v1_bytes_out : int;
  mutable v2_bytes_out : int;
  mutable delta_streams : int;
  mutable delta_copied : int;
  (* lifecycle *)
  mutable draining : bool;
  mutable wake : Unix.file_descr option;  (* write end of the accept-loop wake pipe *)
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Sessions log from their own domains; serialize so lines don't shear. *)
let logf t msg =
  Mutex.lock t.log_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.log_lock) (fun () -> t.log msg)

let draining t = locked t (fun () -> t.draining)

(* ---------------------------------------------------------------- *)
(* Loading                                                           *)
(* ---------------------------------------------------------------- *)

(* Tolerant load, as [Validator.run] does it: a broken entity is
   reported and skipped, the rest of the fleet still validates. *)
let load_corpus ~source ~manifest =
  let rules, errors =
    List.fold_left
      (fun (ok, errs) (entry : Cvl.Manifest.entry) ->
        if not entry.Cvl.Manifest.enabled then (ok, errs)
        else
          match Cvl.Manifest.load_rules source entry with
          | Ok rs -> ((entry, rs) :: ok, errs)
          | Error m -> (ok, (entry.Cvl.Manifest.entity, m) :: errs))
      ([], []) manifest
  in
  let rules = List.rev rules and errors = List.rev errors in
  if rules = [] then
    Error
      (match errors with
      | [] -> "manifest has no enabled entities"
      | (e, m) :: _ -> Printf.sprintf "no entity loaded; first error: %s: %s" e m)
  else Ok (rules, errors)

let rule_total rules = List.fold_left (fun n (_, rs) -> n + List.length rs) 0 rules

let lint_count ~source ~manifest_path =
  try List.length (Cvlint.lint_corpus ~source ?manifest_path ()) with _ -> 0

let create ?(config = default_config) ?(jobs = 1) ?(log = fun _ -> ()) ?manifest_path ~source
    ~manifest () =
  match load_corpus ~source ~manifest with
  | Error m -> Error m
  | Ok (rules, load_errors) ->
      let compiled = Cvl.Validator.compile rules in
      let fused = Cvl.Fuse.fuse compiled in
      let lint_findings = lint_count ~source ~manifest_path in
      let pool = Pool.create ~jobs:(if jobs = 0 then Pool.default_jobs () else jobs) in
      List.iter (fun (e, m) -> log (Printf.sprintf "load error: %s: %s" e m)) load_errors;
      log
        (Printf.sprintf "loaded %d entities, %d rules (lint findings: %d, pool jobs: %d)"
           (List.length rules) (rule_total rules) lint_findings (Pool.jobs pool));
      Ok
        {
          source;
          manifest;
          manifest_path;
          log;
          log_lock = Mutex.create ();
          pool;
          config;
          lock = Mutex.create ();
          slot_freed = Condition.create ();
          rules;
          load_errors;
          compiled;
          fused;
          lint_findings;
          baselines = Hashtbl.create 64;
          requests = 0;
          jobs_served = 0;
          verdicts_streamed = 0;
          protocol_errors = 0;
          contained = 0;
          reloads = 0;
          latencies_ms = [];
          busy_s = 0.0;
          inflight = 0;
          exclusive_running = false;
          exclusive_waiting = 0;
          queued = 0;
          shed = 0;
          deadline_misses = 0;
          next_sid = 0;
          session_count = 0;
          peak_sessions = 0;
          session_fds = Hashtbl.create 16;
          session_domains = [];
          idle_reaped = 0;
          crashed = 0;
          v1_connections = 0;
          v2_connections = 0;
          v1_bytes_out = 0;
          v2_bytes_out = 0;
          delta_streams = 0;
          delta_copied = 0;
          draining = false;
          wake = None;
        }

let entity_count t = locked t (fun () -> List.length t.rules)
let rule_count t = locked t (fun () -> rule_total t.rules)
let lint_findings t = locked t (fun () -> t.lint_findings)
let destroy t = Pool.shutdown t.pool

(* ---------------------------------------------------------------- *)
(* Admission: bounded concurrency with explicit load-shedding         *)
(* ---------------------------------------------------------------- *)

(* Up to [max_inflight] jobs run at once; up to [queue_depth] more wait
   on the condvar. Anything beyond that is shed with an [Overloaded]
   reply — never a silent drop. Chaos jobs arm process-global fault
   hooks and read process-global resilience counters, so they take an
   exclusive slot: they wait for the server to quiesce and nothing else
   starts while one runs. That is what keeps every stream byte-identical
   to its one-shot run even under concurrency. *)

type admission = Admitted | Shed of int | Refused_draining | Expired of string

let mean_latency_locked t =
  match t.latencies_ms with
  | [] -> 25.0
  | ls -> List.fold_left ( +. ) 0.0 ls /. float_of_int (List.length ls)

let retry_hint_locked t depth =
  int_of_float (Float.min 5000.0 (Float.max 5.0 (mean_latency_locked t *. float_of_int (depth + 1))))

let retry_hint t depth = locked t (fun () -> retry_hint_locked t depth)

let admit t ~exclusive ~deadline =
  locked t (fun () ->
      let can_run () =
        if exclusive then t.inflight = 0 && not t.exclusive_running
        else
          (not t.exclusive_running)
          && t.exclusive_waiting = 0
          && t.inflight < t.config.max_inflight
      in
      let grant () =
        t.inflight <- t.inflight + 1;
        if exclusive then t.exclusive_running <- true;
        Admitted
      in
      if t.draining then Refused_draining
      else if can_run () then grant ()
      else if t.queued >= t.config.queue_depth then (
        t.shed <- t.shed + 1;
        Shed (t.inflight + t.queued))
      else (
        t.queued <- t.queued + 1;
        if exclusive then t.exclusive_waiting <- t.exclusive_waiting + 1;
        let leave () =
          t.queued <- t.queued - 1;
          if exclusive then t.exclusive_waiting <- t.exclusive_waiting - 1
        in
        let rec wait () =
          if t.draining then (
            leave ();
            Refused_draining)
          else if Deadline.expired deadline then (
            leave ();
            t.deadline_misses <- t.deadline_misses + 1;
            Expired "deadline exceeded (admission queue): job budget exhausted")
          else if can_run () then (
            leave ();
            grant ())
          else (
            Condition.wait t.slot_freed t.lock;
            wait ())
        in
        wait ()))

let release t ~exclusive =
  locked t (fun () ->
      t.inflight <- t.inflight - 1;
      if exclusive then t.exclusive_running <- false;
      Condition.broadcast t.slot_freed)

(* ---------------------------------------------------------------- *)
(* Job plumbing                                                      *)
(* ---------------------------------------------------------------- *)

let ( let* ) = Result.bind

(* Job failures split in two: [`Job] counts as contained, [`Deadline]
   counts as a budget miss (already recorded where it was detected). *)
let job_err r = Result.map_error (fun m -> `Job m) r

let deadline_gate t deadline ~what =
  match Deadline.check deadline ~what with
  | Ok () -> Ok ()
  | Error m ->
      locked t (fun () -> t.deadline_misses <- t.deadline_misses + 1);
      Error (`Deadline m)

let read_frame_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error m -> Error m
  | content -> (
      match Frames.Codec.of_string content with
      | Ok f -> Ok f
      | Error m -> Error (Printf.sprintf "%s: %s" path m))

let resolve_frames (j : validate_job) =
  let* from_files =
    List.fold_left
      (fun acc path ->
        let* acc = acc in
        let* f = read_frame_file path in
        Ok (f :: acc))
      (Ok []) j.frame_files
    |> Result.map List.rev
  in
  match j.frames @ from_files with
  | [] -> Error "validate: no frames given"
  | frames -> Ok frames

(* Entity filter: restrict every engine's view of the corpus to the
   named entities, preserving manifest order. Runs under [t.lock] so it
   snapshots a consistent (rules, compiled, fused) triple even if a
   reload swaps them. *)
let select_entities_locked t names =
  if names = [] then Ok (t.rules, t.compiled, t.fused)
  else
    let known =
      List.filter (fun n -> List.exists (fun (e, _) -> e.Cvl.Manifest.entity = n) t.rules) names
    in
    match List.filter (fun n -> not (List.mem n known)) names with
    | missing :: _ -> Error (Printf.sprintf "unknown entity %S" missing)
    | [] ->
        let keep entity = List.mem entity names in
        let rules = List.filter (fun (e, _) -> keep e.Cvl.Manifest.entity) t.rules in
        let compiled =
          {
            t.compiled with
            Cvl.Compile.entities =
              List.filter
                (fun (ep : Cvl.Compile.entity_programs) ->
                  keep ep.Cvl.Compile.entry.Cvl.Manifest.entity)
                t.compiled.Cvl.Compile.entities;
          }
        in
        let fused =
          {
            t.fused with
            Cvl.Fuse.entities =
              List.filter
                (fun (ep : Cvl.Fuse.entity_plan) -> keep ep.Cvl.Fuse.entry.Cvl.Manifest.entity)
                t.fused.Cvl.Fuse.entities;
          }
        in
        Ok (rules, compiled, fused)

let select_entities t names = locked t (fun () -> select_entities_locked t names)

let verdict_of_result (r : Cvl.Engine.result) =
  {
    v_entity = r.Cvl.Engine.entity;
    v_frame = r.Cvl.Engine.frame_id;
    v_rule = Cvl.Rule.name r.Cvl.Engine.rule;
    v_verdict = Cvl.Engine.verdict_to_string r.Cvl.Engine.verdict;
    v_detail = r.Cvl.Engine.detail;
    v_evidence = r.Cvl.Engine.evidence;
  }

let summary_of ~engine ~job_ms ~cache0 ~revalidated ~degraded results =
  let s = Cvl.Report.summarize results in
  let cache1 = Cvl.Normcache.stats () in
  {
    s_total = s.Cvl.Report.total;
    s_matched = s.Cvl.Report.matched;
    s_violations = s.Cvl.Report.violations;
    s_not_present = s.Cvl.Report.not_present;
    s_not_applicable = s.Cvl.Report.not_applicable;
    s_errors = s.Cvl.Report.errors;
    s_degraded = degraded;
    s_engine = engine;
    s_job_ms = job_ms;
    s_cache_hits = cache1.Cvl.Normcache.hits - cache0.Cvl.Normcache.hits;
    s_cache_misses = cache1.Cvl.Normcache.misses - cache0.Cvl.Normcache.misses;
    s_revalidated = revalidated;
  }

let record_job t ~t0 ~verdicts =
  let dt = Unix.gettimeofday () -. t0 in
  locked t (fun () ->
      t.jobs_served <- t.jobs_served + 1;
      t.verdicts_streamed <- t.verdicts_streamed + verdicts;
      t.latencies_ms <- (dt *. 1000.0) :: t.latencies_ms;
      t.busy_s <- t.busy_s +. dt);
  dt *. 1000.0

(* A single-frame, unfiltered, fault-free validate with default NA
   handling is exactly the shape [Incremental.revalidate] can splice
   into later: retain it as that frame's baseline. *)
let retain_baseline t (j : validate_job) frames results =
  match frames with
  | [ frame ]
    when j.tags = [] && j.entities = [] && j.chaos = None
         && j.keep_not_applicable <> Some false ->
      locked t (fun () ->
          Hashtbl.replace t.baselines (Frames.Frame.id frame) (frame, results))
  | _ -> ()

(* The connection-level analogue of [retain_baseline]: a stream with
   this shape opens with a v2 epoch header so the client retains it
   (and later deltas can splice against it). *)
let stream_frame_id (j : validate_job) = function
  | [ frame ]
    when j.tags = [] && j.entities = [] && j.chaos = None
         && j.keep_not_applicable <> Some false ->
      Some (Frames.Frame.id frame)
  | _ -> None

(* ---------------------------------------------------------------- *)
(* Reply wire: v1 responses, v2 stream frames                        *)
(* ---------------------------------------------------------------- *)

(* Per-connection v2 stream state: the epoch counter plus the verdict
   sets this connection has been streamed, which delta streams splice
   against. Lives in the session domain — no locking. *)
type v2_session = {
  mutable epoch : int;
  bases : (string, int * verdict array) Hashtbl.t;
}

let v2_session () = { epoch = 0; bases = Hashtbl.create 8 }

(* How replies leave a handler. [respond] carries every [response]; a
   connection upgraded to v2 additionally carries the stream frames
   that have no JSON form — epoch headers and baseline copy runs —
   plus the session state those splice against. *)
type v2_wire = {
  session : v2_session;
  emit_epoch : Protocol.V2.epoch_header -> unit;
  emit_copy : start:int -> count:int -> unit;
}

type wire = { respond : response -> unit; v2 : v2_wire option }

let deadline_cut t deadline n =
  if n land 63 = 0 && Deadline.expired deadline then (
    locked t (fun () -> t.deadline_misses <- t.deadline_misses + 1);
    Error
      (`Deadline
         (Printf.sprintf "deadline exceeded (verdict streaming): stopped after %d verdict(s)" n)))
  else Ok ()

(* Stream verdicts with a periodic budget check: a huge result set
   cannot blow past the deadline unobserved, and expiry surfaces as an
   error trailer — the peer knows the stream is incomplete. *)
let stream_results t deadline respond results =
  let rec go n = function
    | [] -> Ok n
    | r :: rest ->
        let* () = deadline_cut t deadline n in
        respond (Verdict (verdict_of_result r));
        go (n + 1) rest
  in
  go 0 results

let verdict_array results = Array.of_list (List.map verdict_of_result results)

(* Full v2 stream for frame [id]: epoch header announcing a retainable
   set, every verdict, and the session baseline updated — only once the
   whole stream made it out (a deadline cut must not desync the two
   ends' baselines). *)
let stream_full_v2 t deadline wire v2 ~id verdicts =
  let n = Array.length verdicts in
  v2.session.epoch <- v2.session.epoch + 1;
  let epoch = v2.session.epoch in
  v2.emit_epoch
    {
      Protocol.V2.e_frame = id;
      e_epoch = epoch;
      e_baseline = 0;
      e_total = n;
      e_added = n;
      e_changed = 0;
      e_removed = 0;
      e_delta = false;
    };
  let rec go i =
    if i = n then Ok n
    else
      let* () = deadline_cut t deadline i in
      wire.respond (Verdict verdicts.(i));
      go (i + 1)
  in
  let* streamed = go 0 in
  Hashtbl.replace v2.session.bases id (epoch, verdicts);
  Ok streamed

(* Plan a delta stream: the new verdict sequence expressed as baseline
   copy runs plus fresh verdicts, order preserved. [None] when two
   baseline verdicts share an (entity, frame, rule) key — ambiguous to
   splice, so the caller falls back to a full stream. *)
let delta_plan old news =
  let key (v : verdict) = (v.v_entity, v.v_frame, v.v_rule) in
  let index = Hashtbl.create (2 * Array.length old) in
  let ambiguous = ref false in
  Array.iteri
    (fun i v ->
      let k = key v in
      if Hashtbl.mem index k then ambiguous := true else Hashtbl.add index k i)
    old;
  if !ambiguous then None
  else begin
    let ops = ref [] and added = ref 0 and changed = ref 0 and copied = ref 0 in
    Array.iter
      (fun v ->
        match Hashtbl.find_opt index (key v) with
        | Some i when old.(i) = v ->
            incr copied;
            (match !ops with
            | `Copy (start, count) :: rest when start + count = i ->
                ops := `Copy (start, count + 1) :: rest
            | _ -> ops := `Copy (i, 1) :: !ops)
        | Some _ ->
            incr changed;
            ops := `Fresh v :: !ops
        | None ->
            incr added;
            ops := `Fresh v :: !ops)
      news;
    let removed = max 0 (Array.length old - !copied - !changed) in
    Some (List.rev !ops, !added, !changed, removed, !copied)
  end

(* Delta v2 stream: epoch header naming the baseline epoch, then copy
   runs and fresh verdicts interleaved in reassembly order. *)
let stream_delta_v2 t deadline wire v2 ~id ~bepoch ~plan verdicts =
  let ops, added, changed, removed, copied = plan in
  v2.session.epoch <- v2.session.epoch + 1;
  let epoch = v2.session.epoch in
  v2.emit_epoch
    {
      Protocol.V2.e_frame = id;
      e_epoch = epoch;
      e_baseline = bepoch;
      e_total = Array.length verdicts;
      e_added = added;
      e_changed = changed;
      e_removed = removed;
      e_delta = true;
    };
  let rec go i streamed = function
    | [] -> Ok streamed
    | op :: rest -> (
        let* () = deadline_cut t deadline i in
        match op with
        | `Copy (start, count) ->
            v2.emit_copy ~start ~count;
            go (i + 1) streamed rest
        | `Fresh v ->
            wire.respond (Verdict v);
            go (i + 1) (streamed + 1) rest)
  in
  let* streamed = go 0 0 ops in
  locked t (fun () ->
      t.delta_streams <- t.delta_streams + 1;
      t.delta_copied <- t.delta_copied + copied);
  Hashtbl.replace v2.session.bases id (epoch, verdicts);
  Ok streamed

let run_validate t deadline (j : validate_job) wire =
  let* frames = job_err (resolve_frames j) in
  let* rules, compiled, fused = job_err (select_entities t j.entities) in
  let* () = deadline_gate t deadline ~what:"frame resolution" in
  let t0 = Unix.gettimeofday () in
  let cache0 = Cvl.Normcache.stats () in
  let chaos_plan = Option.map (fun seed -> Faultsim.sample ~seed ~rules frames) j.chaos in
  Option.iter Faultsim.arm chaos_plan;
  let run =
    Fun.protect
      ~finally:(fun () -> if chaos_plan <> None then Faultsim.disarm ())
      (fun () ->
        let tags = j.tags and kna = j.keep_not_applicable in
        let pool, jobs = if j.jobs = 0 then (Some t.pool, None) else (None, Some j.jobs) in
        match j.engine with
        | `Fused ->
            Cvl.Validator.run_fused ~tags ?keep_not_applicable:kna ?pool ?jobs ~fused frames
        | `Compiled ->
            Cvl.Validator.run_compiled ~tags ?keep_not_applicable:kna ?pool ?jobs ~compiled
              frames
        | `Interpreted ->
            Cvl.Validator.run_loaded ~tags ?keep_not_applicable:kna ?pool ?jobs
              ~engine:`Interpreted ~rules frames)
  in
  let* () = deadline_gate t deadline ~what:"engine run" in
  let results = run.Cvl.Validator.results in
  let* streamed =
    match (wire.v2, stream_frame_id j frames) with
    | Some v2, Some id -> stream_full_v2 t deadline wire v2 ~id (verdict_array results)
    | _ -> stream_results t deadline wire.respond results
  in
  let job_ms = record_job t ~t0 ~verdicts:streamed in
  retain_baseline t j frames results;
  wire.respond
    (Summary
       (summary_of ~engine:j.engine ~job_ms ~cache0 ~revalidated:None
          ~degraded:run.Cvl.Validator.health.Cvl.Resilience.degraded results));
  Ok ()

let run_revalidate t deadline ~frame ~frame_file ~full wire =
  let* frame =
    job_err
      (match (frame, frame_file) with
      | Some f, None -> Ok f
      | None, Some path -> read_frame_file path
      | _ -> Error "revalidate takes \"frame\" or \"frame_file\", not both")
  in
  let id = Frames.Frame.id frame in
  let* previous_frame, previous =
    job_err
      (match locked t (fun () -> Hashtbl.find_opt t.baselines id) with
      | Some b -> Ok b
      | None ->
          Error
            (Printf.sprintf "no retained baseline for frame %S: validate it (alone) first" id))
  in
  let* () = deadline_gate t deadline ~what:"frame resolution" in
  let t0 = Unix.gettimeofday () in
  let cache0 = Cvl.Normcache.stats () in
  let rules = locked t (fun () -> t.rules) in
  let diff = Frames.Diff.between previous_frame frame in
  let results, revalidated =
    Cvl.Incremental.revalidate ~pool:t.pool ~rules ~previous ~diff frame
  in
  let* () = deadline_gate t deadline ~what:"engine run" in
  let* streamed =
    match wire.v2 with
    | Some v2 -> (
        let verdicts = verdict_array results in
        match (if full then None else Hashtbl.find_opt v2.session.bases id) with
        | Some (bepoch, old) -> (
            match delta_plan old verdicts with
            | Some plan -> stream_delta_v2 t deadline wire v2 ~id ~bepoch ~plan verdicts
            | None -> stream_full_v2 t deadline wire v2 ~id verdicts)
        | None -> stream_full_v2 t deadline wire v2 ~id verdicts)
    | None -> stream_results t deadline wire.respond results
  in
  let job_ms = record_job t ~t0 ~verdicts:streamed in
  locked t (fun () -> Hashtbl.replace t.baselines id (frame, results));
  wire.respond
    (Summary
       (summary_of ~engine:`Fused ~job_ms ~cache0 ~revalidated:(Some revalidated)
          ~degraded:false results));
  Ok ()

(* Runs with an exclusive admission slot, so no job observes the swap
   mid-flight; the lock still guards against concurrent stats readers. *)
let reload_rules t =
  let* rules, load_errors = load_corpus ~source:t.source ~manifest:t.manifest in
  let compiled = Cvl.Validator.compile rules in
  let fused = Cvl.Fuse.fuse compiled in
  let lint_findings = lint_count ~source:t.source ~manifest_path:t.manifest_path in
  locked t (fun () ->
      t.rules <- rules;
      t.load_errors <- load_errors;
      t.compiled <- compiled;
      t.fused <- fused;
      t.lint_findings <- lint_findings;
      (* The old results were produced by the old ruleset: every retained
         baseline is invalid now. *)
      Hashtbl.reset t.baselines;
      t.reloads <- t.reloads + 1);
  Ok (Reloaded { entities = List.length rules; rules = rule_total rules })

(* ---------------------------------------------------------------- *)
(* Stats                                                             *)
(* ---------------------------------------------------------------- *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))

let stats_of t =
  locked t (fun () ->
      let sorted = Array.of_list t.latencies_ms in
      Array.sort compare sorted;
      let mean =
        if Array.length sorted = 0 then 0.0
        else Array.fold_left ( +. ) 0.0 sorted /. float_of_int (Array.length sorted)
      in
      {
        st_requests = t.requests;
        st_jobs = t.jobs_served;
        st_verdicts = t.verdicts_streamed;
        st_protocol_errors = t.protocol_errors;
        st_contained = t.contained;
        st_reloads = t.reloads;
        st_entities = List.length t.rules;
        st_rules = rule_total t.rules;
        st_retained_frames = Hashtbl.length t.baselines;
        st_p50_ms = percentile sorted 50.0;
        st_p99_ms = percentile sorted 99.0;
        st_mean_ms = mean;
        st_verdicts_per_sec =
          (if t.busy_s > 0.0 then float_of_int t.verdicts_streamed /. t.busy_s else 0.0);
        st_sessions = t.session_count;
        st_peak_sessions = t.peak_sessions;
        st_shed = t.shed;
        st_deadline_misses = t.deadline_misses;
        st_idle_reaped = t.idle_reaped;
        st_crashed = t.crashed;
        st_v1_connections = t.v1_connections;
        st_v2_connections = t.v2_connections;
        st_v1_bytes_out = t.v1_bytes_out;
        st_v2_bytes_out = t.v2_bytes_out;
        st_delta_streams = t.delta_streams;
        st_delta_copied = t.delta_copied;
      })

(* ---------------------------------------------------------------- *)
(* Dispatch                                                          *)
(* ---------------------------------------------------------------- *)

let request_label = function
  | Ping -> "ping"
  | Hello { version } -> Printf.sprintf "hello (v%d)" version
  | Validate j ->
      Printf.sprintf "validate (%d inline, %d files)" (List.length j.frames)
        (List.length j.frame_files)
  | Revalidate _ -> "revalidate"
  | Reload_rules -> "reload-rules"
  | Stats -> "stats"
  | Shutdown -> "shutdown"

let handle_wire t wire req =
  let respond = wire.respond in
  locked t (fun () -> t.requests <- t.requests + 1);
  logf t (request_label req);
  let contain job =
    (* Per-job containment: a failing job answers with an error reply
       and the server keeps serving — the daemon-level analogue of the
       engine's [Engine_error] verdicts. Deadline misses answer the
       same way but are counted as budget misses, not crashes. *)
    (match (try job () with exn -> Error (`Job (Printexc.to_string exn))) with
    | Ok () -> ()
    | Error (`Deadline m) -> respond (Error_reply m)
    | Error (`Job m) ->
        locked t (fun () -> t.contained <- t.contained + 1);
        respond (Error_reply m));
    `Continue
  in
  let heavy ~exclusive ~deadline job =
    match admit t ~exclusive ~deadline with
    | Refused_draining ->
        respond (Error_reply "server is draining: job refused");
        `Continue
    | Shed depth ->
        logf t (Printf.sprintf "job shed: admission queue full (depth %d)" depth);
        respond (Overloaded { queue_depth = depth; retry_after_ms = retry_hint t depth });
        `Continue
    | Expired m ->
        respond (Error_reply m);
        `Continue
    | Admitted ->
        Fun.protect ~finally:(fun () -> release t ~exclusive) (fun () -> contain job)
  in
  match req with
  | Ping ->
      respond Pong;
      `Continue
  | Hello _ ->
      (* The version upgrade itself is transport-level ([serve]
         intercepts hello before dispatch); a direct [handle] caller is
         granted whatever its wire already carries. *)
      respond
        (Welcome { version = (if wire.v2 = None then json_version else binary_version) });
      `Continue
  | Stats ->
      respond (Stats_reply (stats_of t));
      `Continue
  | Validate j ->
      let deadline = Deadline.of_request ~default_ms:t.config.deadline_ms j.deadline_ms in
      heavy ~exclusive:(j.chaos <> None) ~deadline (fun () ->
          let* () = deadline_gate t deadline ~what:"admission" in
          run_validate t deadline j wire)
  | Revalidate { frame; frame_file; deadline_ms; full } ->
      let deadline = Deadline.of_request ~default_ms:t.config.deadline_ms deadline_ms in
      heavy ~exclusive:false ~deadline (fun () ->
          let* () = deadline_gate t deadline ~what:"admission" in
          run_revalidate t deadline ~frame ~frame_file ~full wire)
  | Reload_rules ->
      heavy ~exclusive:true ~deadline:Deadline.none (fun () ->
          let* reply = job_err (reload_rules t) in
          respond reply;
          Ok ())
  | Shutdown ->
      respond Bye;
      `Shutdown

let handle t req ~respond = handle_wire t { respond; v2 = None } req

(* ---------------------------------------------------------------- *)
(* Sessions                                                          *)
(* ---------------------------------------------------------------- *)

let register_session t fd_opt =
  locked t (fun () ->
      let sid = t.next_sid + 1 in
      t.next_sid <- sid;
      t.session_count <- t.session_count + 1;
      if t.session_count > t.peak_sessions then t.peak_sessions <- t.session_count;
      Option.iter (fun fd -> Hashtbl.replace t.session_fds sid fd) fd_opt;
      sid)

let unregister_session t sid =
  locked t (fun () ->
      t.session_count <- t.session_count - 1;
      Hashtbl.remove t.session_fds sid;
      Condition.broadcast t.slot_freed)

let serve t ic oc =
  Lazy.force ignore_sigpipe;
  let fd = try Some (Unix.descr_of_in_channel ic) with Sys_error _ | Invalid_argument _ -> None in
  (* With an idle timeout configured, bound mid-frame stalls too: a
     peer that sends half a frame and goes quiet trips SO_RCVTIMEO,
     which the reader classifies as a (fatal) truncation. *)
  (match (fd, t.config.idle_timeout_ms) with
  | Some fd, Some ms -> (
      try Unix.setsockopt_float fd Unix.SO_RCVTIMEO (float_of_int ms /. 1000.0)
      with Unix.Unix_error _ | Invalid_argument _ -> ())
  | _ -> ());
  let sid = register_session t fd in
  (* Per-connection protocol state: the negotiated version (v1 until a
     hello upgrades it), one v2 writer/reader pair, the reused reply
     buffer, the v2 stream baselines, and the bytes-out tally flushed
     into the server counters after every request. *)
  let version = ref json_version in
  let w2 = V2.writer () in
  let r2 = V2.reader () in
  let out = Buffer.create 1024 in
  let session = v2_session () in
  let pending = ref 0 in
  let flush_bytes () =
    let n = !pending in
    if n > 0 then begin
      pending := 0;
      locked t (fun () ->
          if !version = binary_version then t.v2_bytes_out <- t.v2_bytes_out + n
          else t.v1_bytes_out <- t.v1_bytes_out + n)
    end
  in
  Fun.protect
    ~finally:(fun () ->
      flush_bytes ();
      locked t (fun () ->
          if !version = json_version then t.v1_connections <- t.v1_connections + 1);
      unregister_session t sid)
    (fun () ->
      let respond resp =
        if !version = binary_version then begin
          Buffer.clear out;
          V2.add_response w2 out resp;
          Buffer.output_buffer oc out;
          pending := !pending + Buffer.length out;
          (* same flush policy as v1: verdict frames ride the channel
             buffer, everything else flushes *)
          match resp with Verdict _ -> () | _ -> Stdlib.flush oc
        end
        else pending := !pending + write_response_buf ~buf:out oc resp
      in
      let emit_frame fill =
        Buffer.clear out;
        fill out;
        Buffer.output_buffer oc out;
        pending := !pending + Buffer.length out
      in
      let wire () =
        {
          respond;
          v2 =
            (if !version = binary_version then
               Some
                 {
                   session;
                   emit_epoch = (fun h -> emit_frame (fun b -> V2.add_epoch w2 b h));
                   emit_copy =
                     (fun ~start ~count -> emit_frame (fun b -> V2.add_copy b ~start ~count));
                 }
             else None);
        }
      in
      (* Same classification in both protocols: a v2 [Bad] frame is the
         synchronized-stream case, a v2 [Truncated] is the desync case. *)
      let read_request () =
        if !version = binary_version then
          match V2.read_frame r2 ic with
          | V2.Closed -> Closed
          | V2.Truncated m -> Truncated m
          | V2.Bad m -> Bad_payload m
          | V2.Frame (V2.Json json) -> Msg json
          | V2.Frame _ -> Bad_payload "unexpected stream frame from client"
        else read_message ic
      in
      (* Idle reaping waits on the raw fd before each message-boundary
         read. Caveat: bytes a peer pipelined into the channel buffer
         are invisible to select, so idle timeouts assume
         request/response peers (the protocol is request/response). *)
      let idle_check () =
        match (fd, t.config.idle_timeout_ms) with
        | Some fd, Some ms ->
            let rec sel () =
              match Unix.select [ fd ] [] [] (float_of_int ms /. 1000.0) with
              | [], _, _ -> `Idle
              | _ -> `Ready
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> sel ()
            in
            sel ()
        | _ -> `Ready
      in
      let rec loop () =
        if draining t then `Disconnect
        else
          match idle_check () with
          | `Idle ->
              locked t (fun () -> t.idle_reaped <- t.idle_reaped + 1);
              logf t (Printf.sprintf "session %d: idle timeout, reaped" sid);
              (try respond (Error_reply "idle timeout: closing connection")
               with Sys_error _ -> ());
              `Disconnect
          | `Ready -> (
              match read_request () with
              | Closed -> `Disconnect
              | Truncated m ->
                  (* Nobody knows where the next message starts: drop this
                     connection (only this connection — the listener and all
                     server state survive). *)
                  locked t (fun () -> t.protocol_errors <- t.protocol_errors + 1);
                  logf t (Printf.sprintf "protocol error (desync): %s" m);
                  (try respond (Error_reply (Printf.sprintf "protocol: %s" m))
                   with Sys_error _ -> ());
                  `Disconnect
              | Bad_payload m ->
                  (* Framed correctly, so the stream is still synchronized:
                     answer and keep serving this connection. *)
                  locked t (fun () -> t.protocol_errors <- t.protocol_errors + 1);
                  logf t (Printf.sprintf "protocol error (payload): %s" m);
                  respond (Error_reply (Printf.sprintf "malformed request: %s" m));
                  flush_bytes ();
                  loop ()
              | Msg json -> (
                  match request_of_json json with
                  | Error m ->
                      locked t (fun () ->
                          t.requests <- t.requests + 1;
                          t.protocol_errors <- t.protocol_errors + 1);
                      respond (Error_reply m);
                      flush_bytes ();
                      loop ()
                  | Ok (Hello { version = asked }) ->
                      (* Negotiation is transport-level: answer in the
                         connection's current framing, then switch. A v1
                         client that never says hello stays on v1. *)
                      locked t (fun () -> t.requests <- t.requests + 1);
                      let granted =
                        if asked >= binary_version then binary_version else json_version
                      in
                      logf t (Printf.sprintf "hello: negotiated protocol v%d" granted);
                      respond (Welcome { version = granted });
                      flush_bytes ();
                      if granted = binary_version && !version <> binary_version then begin
                        version := binary_version;
                        locked t (fun () -> t.v2_connections <- t.v2_connections + 1)
                      end;
                      loop ()
                  | Ok req -> (
                      match handle_wire t (wire ()) req with
                      | `Continue ->
                          flush_bytes ();
                          loop ()
                      | `Shutdown -> `Shutdown)))
      in
      try loop () with
      | End_of_file -> `Disconnect
      | Sys_error m ->
          (* Peer vanished mid-write. *)
          logf t (Printf.sprintf "connection dropped: %s" m);
          `Disconnect)

(* ---------------------------------------------------------------- *)
(* Listener: supervised concurrent accept loop + graceful drain       *)
(* ---------------------------------------------------------------- *)

let request_drain t =
  locked t (fun () ->
      if not t.draining then (
        t.draining <- true;
        Condition.broadcast t.slot_freed;
        match t.wake with
        | None -> ()
        | Some fd -> (
            try ignore (Unix.write_substring fd "x" 0 1) with Unix.Unix_error _ -> ())))

(* One domain per connection, under a supervisor: whatever a session
   does, its fds are closed and the listener keeps accepting. *)
let spawn_session t fd =
  let d =
    Domain.spawn (fun () ->
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        match
          Fun.protect
            ~finally:(fun () ->
              close_out_noerr oc;
              close_in_noerr ic)
            (fun () -> serve t ic oc)
        with
        | `Disconnect -> ()
        | `Shutdown -> request_drain t
        | exception exn ->
            locked t (fun () -> t.crashed <- t.crashed + 1);
            (try logf t (Printf.sprintf "session crashed (contained): %s" (Printexc.to_string exn))
             with _ -> ()))
  in
  locked t (fun () -> t.session_domains <- d :: t.session_domains)

let at_capacity t = locked t (fun () -> t.session_count >= t.config.max_connections)

(* Over connection capacity: reply with an explicit shed on the raw fd
   (no channel, so nothing else can end up owning the descriptor) and
   let the caller close it. *)
let refuse_connection t fd =
  let depth, hint =
    locked t (fun () ->
        t.shed <- t.shed + 1;
        (t.session_count, retry_hint_locked t t.session_count))
  in
  logf t (Printf.sprintf "connection refused: %d session(s) at capacity" depth);
  let bytes =
    frame_bytes (response_to_json (Overloaded { queue_depth = depth; retry_after_ms = hint }))
  in
  try ignore (Unix.write_substring fd bytes 0 (String.length bytes))
  with Unix.Unix_error _ -> ()

let session_fds_snapshot t =
  locked t (fun () -> Hashtbl.fold (fun _ fd acc -> fd :: acc) t.session_fds [])

let drain t =
  logf t "draining: accept loop stopped";
  let shutdown_reads () =
    List.iter
      (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      (session_fds_snapshot t)
  in
  (* Phase 1 — nudge: shutting down the read side makes blocked reads
     see EOF while in-flight jobs keep running and streaming replies. *)
  shutdown_reads ();
  let give_up = Unix.gettimeofday () +. (float_of_int t.config.drain_ms /. 1000.0) in
  let rec wait () =
    if locked t (fun () -> t.session_count) = 0 then true
    else if Unix.gettimeofday () >= give_up then false
    else (
      Unix.sleepf 0.005;
      shutdown_reads ();
      wait ())
  in
  let drained = wait () in
  (* Phase 2 — force: past the drain deadline, cut both directions. *)
  if not drained then (
    logf t "drain deadline hit: forcing remaining sessions closed";
    List.iter
      (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      (session_fds_snapshot t));
  let domains =
    locked t (fun () ->
        let ds = t.session_domains in
        t.session_domains <- [];
        ds)
  in
  List.iter Domain.join domains;
  let st = stats_of t in
  logf t
    (Printf.sprintf "drained: %d job(s) served, %d verdict(s) streamed, %d shed, %d contained"
       st.st_jobs st.st_verdicts st.st_shed st.st_contained);
  logf t "stopped"

let listen ?backlog t ~socket_path =
  Lazy.force ignore_sigpipe;
  let backlog = Option.value ~default:t.config.backlog backlog in
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let wake_r, wake_w = Unix.pipe () in
  locked t (fun () -> t.wake <- Some wake_w);
  Fun.protect
    ~finally:(fun () ->
      locked t (fun () -> t.wake <- None);
      (try Unix.close wake_r with Unix.Unix_error _ -> ());
      (try Unix.close wake_w with Unix.Unix_error _ -> ());
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink socket_path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX socket_path);
      Unix.listen sock backlog;
      logf t (Printf.sprintf "listening on %s" socket_path);
      let rec accept_loop () =
        if draining t then ()
        else
          match Unix.select [ sock; wake_r ] [] [] (-1.0) with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
          | ready, _, _ ->
              if List.mem wake_r ready then ()
              else (
                (match Unix.accept sock with
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                | fd, _ ->
                    (* Everything between accept and session handoff runs
                       under one protect: no path can leak the fd. *)
                    let handed = ref false in
                    Fun.protect
                      ~finally:(fun () ->
                        if not !handed then
                          try Unix.close fd with Unix.Unix_error _ -> ())
                      (fun () ->
                        if at_capacity t then refuse_connection t fd
                        else (
                          spawn_session t fd;
                          handed := true)));
                accept_loop ())
      in
      accept_loop ();
      drain t)
