open Protocol

(* Writing to a peer that vanished must surface as Sys_error/EPIPE on
   the channel, not kill the process. *)
let ignore_sigpipe =
  lazy (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ())

type t = {
  source : Cvl.Loader.source;
  manifest : Cvl.Manifest.entry list;
  manifest_path : string option;
  log : string -> unit;
  pool : Pool.t;
  mutable rules : (Cvl.Manifest.entry * Cvl.Rule.t list) list;
  mutable load_errors : (string * string) list;
  mutable compiled : Cvl.Compile.t;
  mutable fused : Cvl.Fuse.t;
  mutable lint_findings : int;
  (* frame id -> (last validated snapshot, its results): the baseline
     [revalidate] diffs against *)
  baselines : (string, Frames.Frame.t * Cvl.Engine.result list) Hashtbl.t;
  mutable requests : int;
  mutable jobs_served : int;
  mutable verdicts_streamed : int;
  mutable protocol_errors : int;
  mutable contained : int;
  mutable reloads : int;
  mutable latencies_ms : float list;  (* newest first *)
  mutable busy_s : float;
}

(* ---------------------------------------------------------------- *)
(* Loading                                                           *)
(* ---------------------------------------------------------------- *)

(* Tolerant load, as [Validator.run] does it: a broken entity is
   reported and skipped, the rest of the fleet still validates. *)
let load_corpus ~source ~manifest =
  let rules, errors =
    List.fold_left
      (fun (ok, errs) (entry : Cvl.Manifest.entry) ->
        if not entry.Cvl.Manifest.enabled then (ok, errs)
        else
          match Cvl.Manifest.load_rules source entry with
          | Ok rs -> ((entry, rs) :: ok, errs)
          | Error m -> (ok, (entry.Cvl.Manifest.entity, m) :: errs))
      ([], []) manifest
  in
  let rules = List.rev rules and errors = List.rev errors in
  if rules = [] then
    Error
      (match errors with
      | [] -> "manifest has no enabled entities"
      | (e, m) :: _ -> Printf.sprintf "no entity loaded; first error: %s: %s" e m)
  else Ok (rules, errors)

let rule_total rules = List.fold_left (fun n (_, rs) -> n + List.length rs) 0 rules

let lint_count ~source ~manifest_path =
  try List.length (Cvlint.lint_corpus ~source ?manifest_path ()) with _ -> 0

let create ?(jobs = 1) ?(log = fun _ -> ()) ?manifest_path ~source ~manifest () =
  match load_corpus ~source ~manifest with
  | Error m -> Error m
  | Ok (rules, load_errors) ->
      let compiled = Cvl.Validator.compile rules in
      let fused = Cvl.Fuse.fuse compiled in
      let lint_findings = lint_count ~source ~manifest_path in
      let pool = Pool.create ~jobs:(if jobs = 0 then Pool.default_jobs () else jobs) in
      List.iter (fun (e, m) -> log (Printf.sprintf "load error: %s: %s" e m)) load_errors;
      log
        (Printf.sprintf "loaded %d entities, %d rules (lint findings: %d, pool jobs: %d)"
           (List.length rules) (rule_total rules) lint_findings (Pool.jobs pool));
      Ok
        {
          source;
          manifest;
          manifest_path;
          log;
          pool;
          rules;
          load_errors;
          compiled;
          fused;
          lint_findings;
          baselines = Hashtbl.create 64;
          requests = 0;
          jobs_served = 0;
          verdicts_streamed = 0;
          protocol_errors = 0;
          contained = 0;
          reloads = 0;
          latencies_ms = [];
          busy_s = 0.0;
        }

let entity_count t = List.length t.rules
let rule_count t = rule_total t.rules
let lint_findings t = t.lint_findings
let destroy t = Pool.shutdown t.pool

(* ---------------------------------------------------------------- *)
(* Job plumbing                                                      *)
(* ---------------------------------------------------------------- *)

let ( let* ) = Result.bind

let read_frame_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error m -> Error m
  | content -> (
      match Frames.Codec.of_string content with
      | Ok f -> Ok f
      | Error m -> Error (Printf.sprintf "%s: %s" path m))

let resolve_frames (j : validate_job) =
  let* from_files =
    List.fold_left
      (fun acc path ->
        let* acc = acc in
        let* f = read_frame_file path in
        Ok (f :: acc))
      (Ok []) j.frame_files
    |> Result.map List.rev
  in
  match j.frames @ from_files with
  | [] -> Error "validate: no frames given"
  | frames -> Ok frames

(* Entity filter: restrict every engine's view of the corpus to the
   named entities, preserving manifest order. *)
let select_entities t names =
  if names = [] then Ok (t.rules, t.compiled, t.fused)
  else
    let known =
      List.filter (fun n -> List.exists (fun (e, _) -> e.Cvl.Manifest.entity = n) t.rules) names
    in
    match List.filter (fun n -> not (List.mem n known)) names with
    | missing :: _ -> Error (Printf.sprintf "unknown entity %S" missing)
    | [] ->
        let keep entity = List.mem entity names in
        let rules = List.filter (fun (e, _) -> keep e.Cvl.Manifest.entity) t.rules in
        let compiled =
          {
            t.compiled with
            Cvl.Compile.entities =
              List.filter
                (fun (ep : Cvl.Compile.entity_programs) ->
                  keep ep.Cvl.Compile.entry.Cvl.Manifest.entity)
                t.compiled.Cvl.Compile.entities;
          }
        in
        let fused =
          {
            t.fused with
            Cvl.Fuse.entities =
              List.filter
                (fun (ep : Cvl.Fuse.entity_plan) -> keep ep.Cvl.Fuse.entry.Cvl.Manifest.entity)
                t.fused.Cvl.Fuse.entities;
          }
        in
        Ok (rules, compiled, fused)

let verdict_of_result (r : Cvl.Engine.result) =
  {
    v_entity = r.Cvl.Engine.entity;
    v_frame = r.Cvl.Engine.frame_id;
    v_rule = Cvl.Rule.name r.Cvl.Engine.rule;
    v_verdict = Cvl.Engine.verdict_to_string r.Cvl.Engine.verdict;
    v_detail = r.Cvl.Engine.detail;
    v_evidence = r.Cvl.Engine.evidence;
  }

let summary_of ~engine ~job_ms ~cache0 ~revalidated ~degraded results =
  let s = Cvl.Report.summarize results in
  let cache1 = Cvl.Normcache.stats () in
  {
    s_total = s.Cvl.Report.total;
    s_matched = s.Cvl.Report.matched;
    s_violations = s.Cvl.Report.violations;
    s_not_present = s.Cvl.Report.not_present;
    s_not_applicable = s.Cvl.Report.not_applicable;
    s_errors = s.Cvl.Report.errors;
    s_degraded = degraded;
    s_engine = engine;
    s_job_ms = job_ms;
    s_cache_hits = cache1.Cvl.Normcache.hits - cache0.Cvl.Normcache.hits;
    s_cache_misses = cache1.Cvl.Normcache.misses - cache0.Cvl.Normcache.misses;
    s_revalidated = revalidated;
  }

let record_job t ~t0 ~verdicts =
  let dt = Unix.gettimeofday () -. t0 in
  t.jobs_served <- t.jobs_served + 1;
  t.verdicts_streamed <- t.verdicts_streamed + verdicts;
  t.latencies_ms <- (dt *. 1000.0) :: t.latencies_ms;
  t.busy_s <- t.busy_s +. dt;
  dt *. 1000.0

(* A single-frame, unfiltered, fault-free validate with default NA
   handling is exactly the shape [Incremental.revalidate] can splice
   into later: retain it as that frame's baseline. *)
let retain_baseline t (j : validate_job) frames results =
  match frames with
  | [ frame ]
    when j.tags = [] && j.entities = [] && j.chaos = None
         && j.keep_not_applicable <> Some false ->
      Hashtbl.replace t.baselines (Frames.Frame.id frame) (frame, results)
  | _ -> ()

let run_validate t (j : validate_job) respond =
  let* frames = resolve_frames j in
  let* rules, compiled, fused = select_entities t j.entities in
  let t0 = Unix.gettimeofday () in
  let cache0 = Cvl.Normcache.stats () in
  let chaos_plan = Option.map (fun seed -> Faultsim.sample ~seed ~rules frames) j.chaos in
  Option.iter Faultsim.arm chaos_plan;
  let run =
    Fun.protect
      ~finally:(fun () -> if chaos_plan <> None then Faultsim.disarm ())
      (fun () ->
        let tags = j.tags and kna = j.keep_not_applicable in
        let pool, jobs = if j.jobs = 0 then (Some t.pool, None) else (None, Some j.jobs) in
        match j.engine with
        | `Fused ->
            Cvl.Validator.run_fused ~tags ?keep_not_applicable:kna ?pool ?jobs ~fused frames
        | `Compiled ->
            Cvl.Validator.run_compiled ~tags ?keep_not_applicable:kna ?pool ?jobs ~compiled
              frames
        | `Interpreted ->
            Cvl.Validator.run_loaded ~tags ?keep_not_applicable:kna ?pool ?jobs
              ~engine:`Interpreted ~rules frames)
  in
  let results = run.Cvl.Validator.results in
  List.iter (fun r -> respond (Verdict (verdict_of_result r))) results;
  let job_ms = record_job t ~t0 ~verdicts:(List.length results) in
  retain_baseline t j frames results;
  respond
    (Summary
       (summary_of ~engine:j.engine ~job_ms ~cache0 ~revalidated:None
          ~degraded:run.Cvl.Validator.health.Cvl.Resilience.degraded results));
  Ok ()

let run_revalidate t ~frame ~frame_file respond =
  let* frame =
    match (frame, frame_file) with
    | Some f, None -> Ok f
    | None, Some path -> read_frame_file path
    | _ -> Error "revalidate takes \"frame\" or \"frame_file\", not both"
  in
  let id = Frames.Frame.id frame in
  let* previous_frame, previous =
    match Hashtbl.find_opt t.baselines id with
    | Some b -> Ok b
    | None ->
        Error
          (Printf.sprintf "no retained baseline for frame %S: validate it (alone) first" id)
  in
  let t0 = Unix.gettimeofday () in
  let cache0 = Cvl.Normcache.stats () in
  let diff = Frames.Diff.between previous_frame frame in
  let results, revalidated =
    Cvl.Incremental.revalidate ~pool:t.pool ~rules:t.rules ~previous ~diff frame
  in
  List.iter (fun r -> respond (Verdict (verdict_of_result r))) results;
  let job_ms = record_job t ~t0 ~verdicts:(List.length results) in
  Hashtbl.replace t.baselines id (frame, results);
  respond
    (Summary
       (summary_of ~engine:`Fused ~job_ms ~cache0 ~revalidated:(Some revalidated)
          ~degraded:false results));
  Ok ()

let reload_rules t =
  let* rules, load_errors = load_corpus ~source:t.source ~manifest:t.manifest in
  t.rules <- rules;
  t.load_errors <- load_errors;
  t.compiled <- Cvl.Validator.compile rules;
  t.fused <- Cvl.Fuse.fuse t.compiled;
  t.lint_findings <- lint_count ~source:t.source ~manifest_path:t.manifest_path;
  (* The old results were produced by the old ruleset: every retained
     baseline is invalid now. *)
  Hashtbl.reset t.baselines;
  t.reloads <- t.reloads + 1;
  Ok (Reloaded { entities = List.length rules; rules = rule_total rules })

(* ---------------------------------------------------------------- *)
(* Stats                                                             *)
(* ---------------------------------------------------------------- *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))

let stats_of t =
  let sorted = Array.of_list t.latencies_ms in
  Array.sort compare sorted;
  let mean =
    if Array.length sorted = 0 then 0.0
    else Array.fold_left ( +. ) 0.0 sorted /. float_of_int (Array.length sorted)
  in
  {
    st_requests = t.requests;
    st_jobs = t.jobs_served;
    st_verdicts = t.verdicts_streamed;
    st_protocol_errors = t.protocol_errors;
    st_contained = t.contained;
    st_reloads = t.reloads;
    st_entities = List.length t.rules;
    st_rules = rule_total t.rules;
    st_retained_frames = Hashtbl.length t.baselines;
    st_p50_ms = percentile sorted 50.0;
    st_p99_ms = percentile sorted 99.0;
    st_mean_ms = mean;
    st_verdicts_per_sec =
      (if t.busy_s > 0.0 then float_of_int t.verdicts_streamed /. t.busy_s else 0.0);
  }

(* ---------------------------------------------------------------- *)
(* Dispatch                                                          *)
(* ---------------------------------------------------------------- *)

let request_label = function
  | Ping -> "ping"
  | Validate j ->
      Printf.sprintf "validate (%d inline, %d files)" (List.length j.frames)
        (List.length j.frame_files)
  | Revalidate _ -> "revalidate"
  | Reload_rules -> "reload-rules"
  | Stats -> "stats"
  | Shutdown -> "shutdown"

let handle t req ~respond =
  t.requests <- t.requests + 1;
  t.log (request_label req);
  let contain job =
    (* Per-job containment: a failing job answers with an error reply
       and the server keeps serving — the daemon-level analogue of the
       engine's [Engine_error] verdicts. *)
    (match (try job () with exn -> Error (Printexc.to_string exn)) with
    | Ok () -> ()
    | Error m ->
        t.contained <- t.contained + 1;
        respond (Error_reply m));
    `Continue
  in
  match req with
  | Ping ->
      respond Pong;
      `Continue
  | Stats ->
      respond (Stats_reply (stats_of t));
      `Continue
  | Validate j -> contain (fun () -> run_validate t j respond)
  | Revalidate { frame; frame_file } -> contain (fun () -> run_revalidate t ~frame ~frame_file respond)
  | Reload_rules ->
      contain (fun () ->
          let* reply = reload_rules t in
          respond reply;
          Ok ())
  | Shutdown ->
      respond Bye;
      `Shutdown

(* ---------------------------------------------------------------- *)
(* Connection loop                                                   *)
(* ---------------------------------------------------------------- *)

let serve t ic oc =
  Lazy.force ignore_sigpipe;
  let respond resp = write_response oc resp in
  let rec loop () =
    match read_message ic with
    | Closed -> `Disconnect
    | Truncated m ->
        (* Nobody knows where the next message starts: drop this
           connection (only this connection — the listener and all
           server state survive). *)
        t.protocol_errors <- t.protocol_errors + 1;
        t.log (Printf.sprintf "protocol error (desync): %s" m);
        (try respond (Error_reply (Printf.sprintf "protocol: %s" m)) with Sys_error _ -> ());
        `Disconnect
    | Bad_payload m ->
        (* Framed correctly, so the stream is still synchronized:
           answer and keep serving this connection. *)
        t.protocol_errors <- t.protocol_errors + 1;
        t.log (Printf.sprintf "protocol error (payload): %s" m);
        respond (Error_reply (Printf.sprintf "malformed request: %s" m));
        loop ()
    | Msg json -> (
        match request_of_json json with
        | Error m ->
            t.requests <- t.requests + 1;
            t.protocol_errors <- t.protocol_errors + 1;
            respond (Error_reply m);
            loop ()
        | Ok req -> (
            match handle t req ~respond with `Continue -> loop () | `Shutdown -> `Shutdown))
  in
  try loop () with
  | End_of_file -> `Disconnect
  | Sys_error m ->
      (* Peer vanished mid-write. *)
      t.log (Printf.sprintf "connection dropped: %s" m);
      `Disconnect

let listen t ~socket_path =
  Lazy.force ignore_sigpipe;
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink socket_path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX socket_path);
      Unix.listen sock 8;
      t.log (Printf.sprintf "listening on %s" socket_path);
      let rec accept_loop () =
        let fd, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        let outcome = serve t ic oc in
        close_out_noerr oc;
        close_in_noerr ic;
        match outcome with `Disconnect -> accept_loop () | `Shutdown -> t.log "stopped"
      in
      accept_loop ())
