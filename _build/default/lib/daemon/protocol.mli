(** Wire protocol of the [validated] daemon: length-prefixed JSON
    messages over any byte stream.

    Framing grammar (both directions):

    {v
      message  ::=  <decimal byte length of payload> "\n" <payload> "\n"
      payload  ::=  one JSON document (compact, no raw newlines)
    v}

    The length prefix gives the reader an exact read size — no
    scanning, no ambiguity about embedded newlines — while the trailing
    ["\n"] keeps a captured stream greppable as JSON lines. A response
    to [validate]/[revalidate] is a {e stream}: one [verdict] message
    per result, in the engine's deterministic order, then exactly one
    [summary] trailer. Everything else is a single reply message.

    Reader errors distinguish recoverable from fatal: a well-framed but
    unparseable payload ({!Bad_payload}) leaves the stream synchronized
    — the peer can answer with an error and keep going — while a
    corrupt length line or a truncated payload ({!Truncated}) means
    nobody knows where the next message starts, so the connection must
    be dropped (the server itself stays up). *)

type engine = [ `Fused | `Compiled | `Interpreted ]

val engine_to_string : engine -> string
val engine_of_string : string -> (engine, string) result

(** One validation job. [frames] are inline snapshots; [frame_files]
    are paths the server reads ({!Frames.Codec} documents). [entities]
    and [tags] filter the ruleset ([[]] = no filter). [jobs = 0] uses
    the server's persistent pool; [jobs > 0] shards with that many
    domains for this job only. [keep_not_applicable = None] applies the
    engine default (keep iff the deployment has a single frame).
    [chaos] arms a seeded fault plan for this job only. [deadline_ms]
    caps the job's wall-clock budget, overriding the server-wide
    [--deadline-ms] default; expiry yields an error reply, never a
    silent drop. *)
type validate_job = {
  frames : Frames.Frame.t list;
  frame_files : string list;
  tags : string list;
  entities : string list;
  engine : engine;
  jobs : int;
  keep_not_applicable : bool option;
  chaos : int option;
  deadline_ms : int option;
}

(** [job ()] is a default job: no frames, no filters, fused engine,
    server pool, engine-default NA handling, no chaos, no per-request
    deadline. *)
val job :
  ?frames:Frames.Frame.t list ->
  ?frame_files:string list ->
  ?tags:string list ->
  ?entities:string list ->
  ?engine:engine ->
  ?jobs:int ->
  ?keep_not_applicable:bool ->
  ?chaos:int ->
  ?deadline_ms:int ->
  unit ->
  validate_job

type request =
  | Ping
  | Validate of validate_job
  | Revalidate of {
      frame : Frames.Frame.t option;
      frame_file : string option;
      deadline_ms : int option;
    }
      (** exactly one of [frame]/[frame_file]; diffed against the
          daemon's retained snapshot of the same frame id *)
  | Reload_rules
  | Stats
  | Shutdown

(** One streamed result — the same six observables
    {!Cvl.Engine.result} carries, stringified the way the one-shot CLI
    does, so byte-identity with [Validator.run] is checkable field by
    field. *)
type verdict = {
  v_entity : string;
  v_frame : string;
  v_rule : string;
  v_verdict : string;  (** {!Cvl.Engine.verdict_to_string} *)
  v_detail : string;
  v_evidence : string list;
}

(** Trailer of a [validate]/[revalidate] stream. *)
type summary = {
  s_total : int;
  s_matched : int;
  s_violations : int;
  s_not_present : int;
  s_not_applicable : int;
  s_errors : int;
  s_degraded : bool;
  s_engine : engine;
  s_job_ms : float;  (** server-side wall time for the job *)
  s_cache_hits : int;  (** {!Cvl.Normcache} delta across this job *)
  s_cache_misses : int;
  s_revalidated : string list option;
      (** [revalidate] only: entities actually re-evaluated *)
}

type stats = {
  st_requests : int;  (** every request served, pings included *)
  st_jobs : int;  (** validate + revalidate jobs *)
  st_verdicts : int;  (** verdict messages streamed *)
  st_protocol_errors : int;
  st_contained : int;  (** jobs that failed and were contained *)
  st_reloads : int;
  st_entities : int;
  st_rules : int;
  st_retained_frames : int;  (** revalidation baselines held *)
  st_p50_ms : float;  (** per-job latency percentiles *)
  st_p99_ms : float;
  st_mean_ms : float;
  st_verdicts_per_sec : float;  (** sustained, over busy time *)
  st_sessions : int;  (** connections currently open *)
  st_peak_sessions : int;
  st_shed : int;  (** jobs refused with [Overloaded] *)
  st_deadline_misses : int;  (** jobs cut off by their budget *)
  st_idle_reaped : int;  (** connections reaped for idleness *)
  st_crashed : int;  (** sessions contained by the supervisor *)
}

type response =
  | Pong
  | Verdict of verdict
  | Summary of summary
  | Stats_reply of stats
  | Reloaded of { entities : int; rules : int }
  | Overloaded of { queue_depth : int; retry_after_ms : int }
      (** explicit load-shed: the admission queue is full. [queue_depth]
          counts jobs running + waiting at refusal time; [retry_after_ms]
          is a backoff hint from recent job latencies. *)
  | Error_reply of string
  | Bye

val op_names : string list
(** Every request ["op"] string the codec accepts, in dispatch order.
    The doc gate ([tools/check_lint.exe]) checks each appears in
    [docs/PROTOCOL.md]. *)

val reply_names : string list
(** Every response ["type"] string the codec emits. Anchored in
    [docs/PROTOCOL.md] like {!op_names}. *)

val request_to_json : request -> Jsonlite.t
val request_of_json : Jsonlite.t -> (request, string) result
val response_to_json : response -> Jsonlite.t
val response_of_json : Jsonlite.t -> (response, string) result

(** Outcome of reading one framed message. *)
type read_result =
  | Msg of Jsonlite.t
  | Bad_payload of string  (** framed correctly, payload not JSON *)
  | Truncated of string  (** framing broken: stream desynchronized *)
  | Closed  (** clean EOF at a message boundary *)

val frame_bytes : Jsonlite.t -> string
(** The exact framed bytes {!write_message} would emit — for transports
    that chunk, truncate, or otherwise mangle the stream (faultsim's
    I/O fault shims, the CLI [raw] op). *)

(** [flush] (default [true]) may be disabled for messages that are
    always followed by another on the same channel. *)
val write_message : ?flush:bool -> out_channel -> Jsonlite.t -> unit

val read_message : in_channel -> read_result
val write_request : out_channel -> request -> unit

(** Verdict messages are buffered (the summary/error trailer that ends
    every stream flushes them); every other response flushes. *)
val write_response : out_channel -> response -> unit

(** [read_response ic] is {!read_message} plus decoding; [Bad_payload]
    and an undecodable response both surface as [Error]. *)
val read_response : in_channel -> (response, string) result
