(** The [validated] daemon: engine-as-a-service.

    A server loads, lints, compiles and fuses the ruleset exactly once
    at {!create} time, holds a persistent {!Pool.t}, and then serves
    {!Protocol.request}s over any channel pair. Requests on one
    connection are served strictly sequentially, and every job runs
    through the same engine entry points as the one-shot CLI — so a
    [validate] stream is byte-identical, verdict by verdict and in the
    same order, to [Cvl.Validator.run] over the same frames (the
    differential tests assert this for all three engines, several job
    counts, and chaos on/off).

    State retained between jobs:
    - the loaded rules and their compiled + fused forms (until
      [reload-rules], which rebuilds them and drops every baseline);
    - the worker pool;
    - per-frame revalidation baselines: the last snapshot and results
      of each frame validated alone with default NA handling, which
      [revalidate] diffs against via {!Cvl.Incremental.revalidate};
    - the content-addressed {!Cvl.Normcache} (process-global), which is
      what makes warm jobs cheap;
    - latency/throughput counters for [stats].

    Failure containment mirrors the engine's [Engine_error] philosophy:
    a job that raises is caught and answered with an [error] reply, a
    malformed payload is answered and the connection continues, a
    desynchronized stream drops only that connection — the server
    process never dies on peer input. *)

type t

(** [create ~source ~manifest ()] loads every enabled entity's rules,
    lints the corpus, compiles and fuses. Per-entity load failures are
    tolerated (reported in the log and in job summaries would-be
    degraded state), but a corpus where {e nothing} loads is an error.

    [jobs] sizes the persistent pool ([0] = auto, default [1]).
    [manifest_path] labels the manifest for the lint pass. [log]
    receives one line per lifecycle event and request (default:
    silent). *)
val create :
  ?jobs:int ->
  ?log:(string -> unit) ->
  ?manifest_path:string ->
  source:Cvl.Loader.source ->
  manifest:Cvl.Manifest.entry list ->
  unit ->
  (t, string) result

val entity_count : t -> int
val rule_count : t -> int
val lint_findings : t -> int

(** Serve one already-decoded request, calling [respond] once per
    response message (possibly many for a [validate]/[revalidate]
    stream). Never raises on job failure: exceptions are contained
    into an [Error_reply]. *)
val handle :
  t -> Protocol.request -> respond:(Protocol.response -> unit) -> [ `Continue | `Shutdown ]

(** Serve one connection until EOF, a desynchronized stream, or a
    [shutdown] request. The server value stays valid afterwards:
    call {!serve} again with the next connection. *)
val serve : t -> in_channel -> out_channel -> [ `Disconnect | `Shutdown ]

(** Accept loop on a Unix domain socket ([socket_path] is created,
    and unlinked again on exit). Serves connections one at a time
    until a [shutdown] request, then closes and removes the socket. *)
val listen : t -> socket_path:string -> unit

(** Stop the worker domains. The server remains usable (sequential). *)
val destroy : t -> unit
