(** The [validated] daemon: engine-as-a-service.

    A server loads, lints, compiles and fuses the ruleset exactly once
    at {!create} time, holds a persistent {!Pool.t}, and then serves
    {!Protocol.request}s over any channel pair. {!listen} runs a
    supervised concurrent session model: the accept loop hands each
    connection to its own session domain, sessions feed jobs through a
    bounded admission limiter, and a supervisor contains anything a
    session does — so N clients validate concurrently and the listener
    never dies on peer input.

    {2 Determinism under concurrency}

    Every job runs through the same engine entry points as the one-shot
    CLI, so a [validate] stream is byte-identical, verdict by verdict
    and in the same order, to [Cvl.Validator.run] over the same frames
    — {e including} when other clients are validating at the same time
    (the differential tests assert this for 4 concurrent clients, all
    three engines, and chaos on/off). Two mechanisms make that safe:
    clean jobs share admission slots (engine state that matters to them
    is immutable after load or domain-safe), while chaos jobs — which
    arm process-global fault hooks and read process-global resilience
    counters — take an {e exclusive} slot: they wait for in-flight jobs
    to finish and nothing else starts until they are done.

    {2 Admission, deadlines, shedding}

    At most [max_inflight] jobs run at once and [queue_depth] more may
    wait; past that a job is refused with an [Overloaded] reply carrying
    the queue depth and a retry-after hint — never a silent drop. Jobs
    carry an optional wall-clock budget ([--deadline-ms] server default,
    per-request override); expiry at any stage boundary or mid-stream
    answers with an error trailer and counts a deadline miss.

    {2 Session lifecycle}

    accepting -> serving -> (idle-reaped | disconnected | crashed |
    draining): an idle connection is reaped after [idle_timeout_ms]; a
    session that raises is contained by the supervisor (fds closed,
    [crashed] counted, server still serving). A [shutdown] request
    turns the whole server to draining: the listener stops accepting,
    in-flight jobs finish and stream their summaries (new jobs are
    refused), then past [drain_ms] stragglers are forcibly closed and
    all session domains joined.

    State retained between jobs:
    - the loaded rules and their compiled + fused forms (until
      [reload-rules], which rebuilds them and drops every baseline);
    - the worker pool;
    - per-frame revalidation baselines: the last snapshot and results
      of each frame validated alone with default NA handling, which
      [revalidate] diffs against via {!Cvl.Incremental.revalidate};
    - the content-addressed {!Cvl.Normcache} (process-global), which is
      what makes warm jobs cheap;
    - latency/throughput/limiter counters for [stats]. *)

type t

(** Knobs of the concurrent server. [backlog] is the listen(2) queue.
    [max_connections] caps concurrent sessions: connections beyond it
    are answered with [Overloaded] and closed. [max_inflight] caps
    concurrently running jobs; [queue_depth] jobs may wait beyond that
    before shedding starts. [deadline_ms] is the default per-job budget
    ([None] = unlimited). [idle_timeout_ms] reaps connections with no
    traffic ([None] = never; it also bounds mid-frame stalls via a
    socket receive timeout). [drain_ms] is how long a graceful shutdown
    waits for in-flight jobs. *)
type config = {
  backlog : int;
  max_connections : int;
  max_inflight : int;
  queue_depth : int;
  deadline_ms : int option;
  idle_timeout_ms : int option;
  drain_ms : int;
}

val default_config : config
(** backlog 8, 64 connections, 4 in-flight, queue 16, no deadline, no
    idle timeout, 2s drain. *)

(** [create ~source ~manifest ()] loads every enabled entity's rules,
    lints the corpus, compiles and fuses. Per-entity load failures are
    tolerated (reported in the log and in job summaries would-be
    degraded state), but a corpus where {e nothing} loads is an error.

    [config] defaults to {!default_config}. [jobs] sizes the persistent
    pool ([0] = auto, default [1]). [manifest_path] labels the manifest
    for the lint pass. [log] receives one line per lifecycle event and
    request (default: silent); calls are serialized across sessions. *)
val create :
  ?config:config ->
  ?jobs:int ->
  ?log:(string -> unit) ->
  ?manifest_path:string ->
  source:Cvl.Loader.source ->
  manifest:Cvl.Manifest.entry list ->
  unit ->
  (t, string) result

val entity_count : t -> int
val rule_count : t -> int
val lint_findings : t -> int

(** Serve one already-decoded request, calling [respond] once per
    response message (possibly many for a [validate]/[revalidate]
    stream). Heavy requests go through the admission limiter and may
    answer [Overloaded]. Never raises on job failure: exceptions are
    contained into an [Error_reply]. *)
val handle :
  t -> Protocol.request -> respond:(Protocol.response -> unit) -> [ `Continue | `Shutdown ]

(** Per-connection v2 stream state: the epoch counter and the verdict
    sets already streamed to this connection, which delta streams
    splice against. One per connection, owned by its session. *)
type v2_session

val v2_session : unit -> v2_session

(** How replies leave a handler. [respond] carries every
    {!Protocol.response}; a connection upgraded to v2 additionally
    carries the stream frames that have no JSON form — epoch headers
    and baseline copy runs — plus the session state those splice
    against. {!handle} is [handle_wire] with a v1-only wire. *)
type v2_wire = {
  session : v2_session;
  emit_epoch : Protocol.V2.epoch_header -> unit;
  emit_copy : start:int -> count:int -> unit;
}

type wire = { respond : Protocol.response -> unit; v2 : v2_wire option }

(** {!handle} with an explicit wire — how [serve] dispatches after a
    v2 upgrade, and how the protocol benchmark drives the exact server
    encode paths without a socket in the way. *)
val handle_wire : t -> wire -> Protocol.request -> [ `Continue | `Shutdown ]

(** Serve one connection until EOF, an idle timeout, a desynchronized
    stream, or a [shutdown] request. Starts on protocol v1 and upgrades
    to the {!Protocol.V2} binary framing when a [hello] negotiates it.
    Registers as a session for the duration (so it shows in [stats] and
    participates in draining) and is safe to run from several domains
    at once against the same [t]. The server value stays valid
    afterwards. *)
val serve : t -> in_channel -> out_channel -> [ `Disconnect | `Shutdown ]

(** Move the server to draining: no new jobs are admitted, sessions
    close at their next message boundary, and a concurrent {!listen}
    stops accepting and drains. Idempotent. (A [shutdown] request does
    exactly this.) *)
val request_drain : t -> unit

(** Concurrent accept loop on a Unix domain socket ([socket_path] is
    created, and unlinked again on exit). Each accepted connection gets
    its own supervised session domain; connections over
    [max_connections] are refused with [Overloaded]. Returns after a
    [shutdown] request completes its graceful drain. [backlog]
    overrides the config's listen queue length. *)
val listen : ?backlog:int -> t -> socket_path:string -> unit

(** Stop the worker domains. The server remains usable (sequential). *)
val destroy : t -> unit
