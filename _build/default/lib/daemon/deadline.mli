(** Wall-clock budgets for daemon jobs.

    A deadline is captured once when a job is admitted and checked at
    every expensive stage boundary (frame resolution, engine run,
    verdict streaming). Expiry turns into an [Error_reply] on the wire
    — never a silent drop — and bumps the server's deadline-miss
    counter.

    The clock is injectable so tests can drive expiry deterministically
    without sleeping. *)

type t

val none : t
(** No budget: [expired] is always [false]. The common path. *)

val after_ms : ?clock:(unit -> float) -> int -> t
(** [after_ms ms] expires [ms] milliseconds after the call. [ms <= 0]
    yields a deadline that is already expired — useful both for tests
    and for callers that want an "admission only if idle" probe. *)

val of_request : ?clock:(unit -> float) -> default_ms:int option -> int option -> t
(** [of_request ~default_ms override] builds a job deadline from the
    server-wide default and the per-request override; the override wins,
    and [none] results when neither is set. *)

val unlimited : t -> bool

val remaining_ms : t -> float option
(** [None] if unlimited, otherwise milliseconds left (clamped at 0). *)

val expired : t -> bool

val check : t -> what:string -> (unit, string) result
(** [Ok ()] while the budget lasts; [Error msg] naming [what] ran over
    once it is exhausted. *)
