type engine = [ `Fused | `Compiled | `Interpreted ]

let engine_to_string = function
  | `Fused -> "fused"
  | `Compiled -> "compiled"
  | `Interpreted -> "interpreted"

let engine_of_string = function
  | "fused" -> Ok `Fused
  | "compiled" -> Ok `Compiled
  | "interpreted" -> Ok `Interpreted
  | s -> Error (Printf.sprintf "unknown engine %S (fused|compiled|interpreted)" s)

type validate_job = {
  frames : Frames.Frame.t list;
  frame_files : string list;
  tags : string list;
  entities : string list;
  engine : engine;
  jobs : int;
  keep_not_applicable : bool option;
  chaos : int option;
  deadline_ms : int option;
}

let job ?(frames = []) ?(frame_files = []) ?(tags = []) ?(entities = []) ?(engine = `Fused)
    ?(jobs = 0) ?keep_not_applicable ?chaos ?deadline_ms () =
  { frames; frame_files; tags; entities; engine; jobs; keep_not_applicable; chaos; deadline_ms }

type request =
  | Ping
  | Validate of validate_job
  | Revalidate of {
      frame : Frames.Frame.t option;
      frame_file : string option;
      deadline_ms : int option;
    }
  | Reload_rules
  | Stats
  | Shutdown

type verdict = {
  v_entity : string;
  v_frame : string;
  v_rule : string;
  v_verdict : string;
  v_detail : string;
  v_evidence : string list;
}

type summary = {
  s_total : int;
  s_matched : int;
  s_violations : int;
  s_not_present : int;
  s_not_applicable : int;
  s_errors : int;
  s_degraded : bool;
  s_engine : engine;
  s_job_ms : float;
  s_cache_hits : int;
  s_cache_misses : int;
  s_revalidated : string list option;
}

type stats = {
  st_requests : int;
  st_jobs : int;
  st_verdicts : int;
  st_protocol_errors : int;
  st_contained : int;
  st_reloads : int;
  st_entities : int;
  st_rules : int;
  st_retained_frames : int;
  st_p50_ms : float;
  st_p99_ms : float;
  st_mean_ms : float;
  st_verdicts_per_sec : float;
  st_sessions : int;
  st_peak_sessions : int;
  st_shed : int;
  st_deadline_misses : int;
  st_idle_reaped : int;
  st_crashed : int;
}

type response =
  | Pong
  | Verdict of verdict
  | Summary of summary
  | Stats_reply of stats
  | Reloaded of { entities : int; rules : int }
  | Overloaded of { queue_depth : int; retry_after_ms : int }
  | Error_reply of string
  | Bye

(* ---------------------------------------------------------------- *)
(* JSON encoding                                                     *)
(* ---------------------------------------------------------------- *)

open Jsonlite

let num_i n = Num (float_of_int n)
let str_list xs = Arr (List.map (fun s -> Str s) xs)

(* Omit empty/default fields so captured streams stay readable. *)
let obj fields = Obj (List.filter_map Fun.id fields)
let field k v = Some (k, v)
let opt_field k = function None -> None | Some v -> Some (k, v)

(* The codec's wire vocabulary, kept next to the (de)serializers that
   speak it. docs/PROTOCOL.md must anchor every name (doc gate). *)
let op_names = [ "ping"; "validate"; "revalidate"; "reload-rules"; "stats"; "shutdown" ]

let reply_names =
  [ "pong"; "verdict"; "summary"; "stats"; "reloaded"; "overloaded"; "error"; "bye" ]

let request_to_json = function
  | Ping -> Obj [ ("op", Str "ping") ]
  | Reload_rules -> Obj [ ("op", Str "reload-rules") ]
  | Stats -> Obj [ ("op", Str "stats") ]
  | Shutdown -> Obj [ ("op", Str "shutdown") ]
  | Validate j ->
      obj
        [
          field "op" (Str "validate");
          (if j.frames = [] then None
           else Some ("frames", Arr (List.map Frames.Codec.to_json j.frames)));
          (if j.frame_files = [] then None else Some ("frame_files", str_list j.frame_files));
          (if j.tags = [] then None else Some ("tags", str_list j.tags));
          (if j.entities = [] then None else Some ("entities", str_list j.entities));
          field "engine" (Str (engine_to_string j.engine));
          (if j.jobs = 0 then None else Some ("jobs", num_i j.jobs));
          opt_field "keep_not_applicable" (Option.map (fun b -> Bool b) j.keep_not_applicable);
          opt_field "chaos" (Option.map num_i j.chaos);
          opt_field "deadline_ms" (Option.map num_i j.deadline_ms);
        ]
  | Revalidate { frame; frame_file; deadline_ms } ->
      obj
        [
          field "op" (Str "revalidate");
          opt_field "frame" (Option.map Frames.Codec.to_json frame);
          opt_field "frame_file" (Option.map (fun f -> Str f) frame_file);
          opt_field "deadline_ms" (Option.map num_i deadline_ms);
        ]

let verdict_to_json v =
  obj
    [
      field "type" (Str "verdict");
      field "entity" (Str v.v_entity);
      field "frame" (Str v.v_frame);
      field "rule" (Str v.v_rule);
      field "verdict" (Str v.v_verdict);
      field "detail" (Str v.v_detail);
      (if v.v_evidence = [] then None else Some ("evidence", str_list v.v_evidence));
    ]

let summary_to_json s =
  obj
    [
      field "type" (Str "summary");
      field "total" (num_i s.s_total);
      field "matched" (num_i s.s_matched);
      field "violations" (num_i s.s_violations);
      field "not_present" (num_i s.s_not_present);
      field "not_applicable" (num_i s.s_not_applicable);
      field "errors" (num_i s.s_errors);
      field "degraded" (Bool s.s_degraded);
      field "engine" (Str (engine_to_string s.s_engine));
      field "job_ms" (Num s.s_job_ms);
      field "cache_hits" (num_i s.s_cache_hits);
      field "cache_misses" (num_i s.s_cache_misses);
      opt_field "revalidated" (Option.map str_list s.s_revalidated);
    ]

let stats_to_json st =
  Obj
    [
      ("type", Str "stats");
      ("requests", num_i st.st_requests);
      ("jobs", num_i st.st_jobs);
      ("verdicts", num_i st.st_verdicts);
      ("protocol_errors", num_i st.st_protocol_errors);
      ("contained", num_i st.st_contained);
      ("reloads", num_i st.st_reloads);
      ("entities", num_i st.st_entities);
      ("rules", num_i st.st_rules);
      ("retained_frames", num_i st.st_retained_frames);
      ("p50_ms", Num st.st_p50_ms);
      ("p99_ms", Num st.st_p99_ms);
      ("mean_ms", Num st.st_mean_ms);
      ("verdicts_per_sec", Num st.st_verdicts_per_sec);
      ("sessions", num_i st.st_sessions);
      ("peak_sessions", num_i st.st_peak_sessions);
      ("shed", num_i st.st_shed);
      ("deadline_misses", num_i st.st_deadline_misses);
      ("idle_reaped", num_i st.st_idle_reaped);
      ("crashed", num_i st.st_crashed);
    ]

let response_to_json = function
  | Pong -> Obj [ ("type", Str "pong") ]
  | Bye -> Obj [ ("type", Str "bye") ]
  | Error_reply m -> Obj [ ("type", Str "error"); ("message", Str m) ]
  | Reloaded { entities; rules } ->
      Obj [ ("type", Str "reloaded"); ("entities", num_i entities); ("rules", num_i rules) ]
  | Overloaded { queue_depth; retry_after_ms } ->
      Obj
        [
          ("type", Str "overloaded");
          ("queue_depth", num_i queue_depth);
          ("retry_after_ms", num_i retry_after_ms);
        ]
  | Verdict v -> verdict_to_json v
  | Summary s -> summary_to_json s
  | Stats_reply st -> stats_to_json st

(* ---------------------------------------------------------------- *)
(* JSON decoding                                                     *)
(* ---------------------------------------------------------------- *)

let get_string_field json k =
  match member k json with Some (Str s) -> Some s | _ -> None

let get_int_field json k =
  match member k json with Some (Num n) -> Some (int_of_float n) | _ -> None

let get_float_field json k =
  match member k json with Some (Num n) -> Some n | _ -> None

let get_bool_field json k =
  match member k json with Some (Bool b) -> Some b | _ -> None

let get_strings_field json k =
  match member k json with
  | Some (Arr xs) -> Ok (List.filter_map get_str xs)
  | Some _ -> Error (Printf.sprintf "field %S must be an array of strings" k)
  | None -> Ok []

let ( let* ) = Result.bind

let frames_of_json json =
  match member "frames" json with
  | None -> Ok []
  | Some (Arr xs) ->
      List.fold_left
        (fun acc x ->
          let* acc = acc in
          let* f = Frames.Codec.of_json x in
          Ok (f :: acc))
        (Ok []) xs
      |> Result.map List.rev
  | Some _ -> Error "field \"frames\" must be an array of frame documents"

let validate_of_json json =
  let* frames = frames_of_json json in
  let* frame_files = get_strings_field json "frame_files" in
  let* tags = get_strings_field json "tags" in
  let* entities = get_strings_field json "entities" in
  let* engine =
    match get_string_field json "engine" with
    | None -> Ok `Fused
    | Some s -> engine_of_string s
  in
  let jobs = Option.value ~default:0 (get_int_field json "jobs") in
  let keep_not_applicable = get_bool_field json "keep_not_applicable" in
  let chaos = get_int_field json "chaos" in
  let deadline_ms = get_int_field json "deadline_ms" in
  Ok
    (Validate
       { frames; frame_files; tags; entities; engine; jobs; keep_not_applicable; chaos; deadline_ms })

let revalidate_of_json json =
  let* frame =
    match member "frame" json with
    | None -> Ok None
    | Some doc ->
        let* f = Frames.Codec.of_json doc in
        Ok (Some f)
  in
  let frame_file = get_string_field json "frame_file" in
  let deadline_ms = get_int_field json "deadline_ms" in
  match (frame, frame_file) with
  | None, None -> Error "revalidate needs a \"frame\" or a \"frame_file\""
  | Some _, Some _ -> Error "revalidate takes \"frame\" or \"frame_file\", not both"
  | _ -> Ok (Revalidate { frame; frame_file; deadline_ms })

let request_of_json json =
  match get_string_field json "op" with
  | Some "ping" -> Ok Ping
  | Some "reload-rules" -> Ok Reload_rules
  | Some "stats" -> Ok Stats
  | Some "shutdown" -> Ok Shutdown
  | Some "validate" -> validate_of_json json
  | Some "revalidate" -> revalidate_of_json json
  | Some op -> Error (Printf.sprintf "unknown op %S" op)
  | None -> Error "request has no \"op\" field"

let req_int json k = Option.value ~default:0 (get_int_field json k)
let req_float json k = Option.value ~default:0.0 (get_float_field json k)
let req_str json k = Option.value ~default:"" (get_string_field json k)

let verdict_of_json json =
  let* v_evidence = get_strings_field json "evidence" in
  Ok
    (Verdict
       {
         v_entity = req_str json "entity";
         v_frame = req_str json "frame";
         v_rule = req_str json "rule";
         v_verdict = req_str json "verdict";
         v_detail = req_str json "detail";
         v_evidence;
       })

let summary_of_json json =
  let* s_engine = engine_of_string (Option.value ~default:"fused" (get_string_field json "engine")) in
  let* s_revalidated =
    match member "revalidated" json with
    | None -> Ok None
    | Some _ ->
        let* xs = get_strings_field json "revalidated" in
        Ok (Some xs)
  in
  Ok
    (Summary
       {
         s_total = req_int json "total";
         s_matched = req_int json "matched";
         s_violations = req_int json "violations";
         s_not_present = req_int json "not_present";
         s_not_applicable = req_int json "not_applicable";
         s_errors = req_int json "errors";
         s_degraded = Option.value ~default:false (get_bool_field json "degraded");
         s_engine;
         s_job_ms = req_float json "job_ms";
         s_cache_hits = req_int json "cache_hits";
         s_cache_misses = req_int json "cache_misses";
         s_revalidated;
       })

let stats_of_json json =
  Ok
    (Stats_reply
       {
         st_requests = req_int json "requests";
         st_jobs = req_int json "jobs";
         st_verdicts = req_int json "verdicts";
         st_protocol_errors = req_int json "protocol_errors";
         st_contained = req_int json "contained";
         st_reloads = req_int json "reloads";
         st_entities = req_int json "entities";
         st_rules = req_int json "rules";
         st_retained_frames = req_int json "retained_frames";
         st_p50_ms = req_float json "p50_ms";
         st_p99_ms = req_float json "p99_ms";
         st_mean_ms = req_float json "mean_ms";
         st_verdicts_per_sec = req_float json "verdicts_per_sec";
         st_sessions = req_int json "sessions";
         st_peak_sessions = req_int json "peak_sessions";
         st_shed = req_int json "shed";
         st_deadline_misses = req_int json "deadline_misses";
         st_idle_reaped = req_int json "idle_reaped";
         st_crashed = req_int json "crashed";
       })

let response_of_json json =
  match get_string_field json "type" with
  | Some "pong" -> Ok Pong
  | Some "bye" -> Ok Bye
  | Some "error" -> Ok (Error_reply (req_str json "message"))
  | Some "reloaded" ->
      Ok (Reloaded { entities = req_int json "entities"; rules = req_int json "rules" })
  | Some "overloaded" ->
      Ok
        (Overloaded
           { queue_depth = req_int json "queue_depth"; retry_after_ms = req_int json "retry_after_ms" })
  | Some "verdict" -> verdict_of_json json
  | Some "summary" -> summary_of_json json
  | Some "stats" -> stats_of_json json
  | Some t -> Error (Printf.sprintf "unknown response type %S" t)
  | None -> Error "response has no \"type\" field"

(* ---------------------------------------------------------------- *)
(* Framing                                                           *)
(* ---------------------------------------------------------------- *)

type read_result =
  | Msg of Jsonlite.t
  | Bad_payload of string
  | Truncated of string
  | Closed

(* The framed bytes of one message, for transports that need to mangle
   or chunk the stream (faultsim's I/O shims, the raw client op). *)
let frame_bytes json =
  let payload = Jsonlite.to_string json in
  Printf.sprintf "%d\n%s\n" (String.length payload) payload

let write_message ?(flush = true) oc json =
  output_string oc (frame_bytes json);
  if flush then Stdlib.flush oc

(* An adversarial peer could claim a huge length and make us allocate
   it; cap a single message well above any real job. *)
let max_message_bytes = 512 * 1024 * 1024

let read_message ic =
  match input_line ic with
  | exception End_of_file -> Closed
  | exception Sys_error m -> Truncated m
  | line -> (
      match int_of_string_opt (String.trim line) with
      | None -> Truncated (Printf.sprintf "bad length line %S" (String.trim line))
      | Some n when n < 0 || n > max_message_bytes ->
          Truncated (Printf.sprintf "unreasonable message length %d" n)
      | Some n -> (
          let buf = Bytes.create n in
          match really_input ic buf 0 n with
          | exception End_of_file -> Truncated "message truncated mid-payload"
          | exception Sys_error m -> Truncated m
          | () -> (
              (* the trailing newline; tolerate its absence at EOF, but
                 any other byte means the declared length was wrong *)
              match input_char ic with
              | exception End_of_file | '\n' -> (
                  match Jsonlite.parse (Bytes.to_string buf) with
                  | Ok json -> Msg json
                  | Error e -> Bad_payload (Jsonlite.error_to_string e))
              | c -> Truncated (Printf.sprintf "expected newline after payload, got %C" c))))

let write_request oc req = write_message oc (request_to_json req)

(* Verdicts are never the last message of a stream — the summary (or an
   error) trailer always follows and flushes — so they ride the channel
   buffer instead of paying a syscall each. Terminal replies flush. *)
let write_response oc resp =
  match resp with
  | Verdict _ -> write_message ~flush:false oc (response_to_json resp)
  | _ -> write_message oc (response_to_json resp)

let read_response ic =
  match read_message ic with
  | Msg json -> response_of_json json
  | Bad_payload m -> Error (Printf.sprintf "malformed response payload: %s" m)
  | Truncated m -> Error (Printf.sprintf "response stream truncated: %s" m)
  | Closed -> Error "connection closed by server"
