(** Client side of the [validated] protocol.

    The transport is pluggable: {!of_channels} wraps any channel pair,
    {!connect} dials a Unix domain socket, and {!in_process} spawns a
    {!Server} loop on the other end of a socketpair in a fresh domain —
    the transport the test suite and the bench use, so the whole
    protocol runs under [dune runtest] without networking flakiness. *)

type t

val of_channels : ?close:(unit -> unit) -> in_channel -> out_channel -> t

(** Close the transport. Idempotent. For {!in_process} clients this
    also joins the server domain. *)
val close : t -> unit

(** Dial a Unix domain socket. [retry_for] (seconds, default [0]) keeps
    retrying a refused/absent socket under jittered exponential backoff
    — for "start the server in the background, then connect" scripts.
    Delays start at [base_backoff] seconds (default 25ms), double per
    attempt up to [max_backoff] (default 400ms), are scaled by a
    deterministic per-attempt jitter in [0.5, 1.0], and never sleep
    past the total [retry_for] deadline. [now]/[sleep] are injectable
    so tests cover the retry schedule without wall-clock waits. *)
val connect :
  ?retry_for:float ->
  ?base_backoff:float ->
  ?max_backoff:float ->
  ?now:(unit -> float) ->
  ?sleep:(float -> unit) ->
  string ->
  (t, string) result

(** Run [serve] for [server] on the other end of a socketpair, in its
    own domain. *)
val in_process : Server.t -> t

(** Send a request and read exactly one reply. *)
val rpc : t -> Protocol.request -> (Protocol.response, string) result

val ping : t -> (unit, string) result
val stats : t -> (Protocol.stats, string) result

(** Returns (entities, rules) after a successful reload. *)
val reload_rules : t -> (int * int, string) result

val shutdown : t -> (unit, string) result

(** Send a streaming request and consume its reply stream: [on_verdict]
    per verdict message, in order, until the summary trailer arrives.
    A server-side [error] reply surfaces as [Error]; an [overloaded]
    shed surfaces as [Error] carrying the queue depth and retry hint. *)
val stream :
  t ->
  Protocol.request ->
  on_verdict:(Protocol.verdict -> unit) ->
  (Protocol.summary, string) result

val validate :
  t ->
  on_verdict:(Protocol.verdict -> unit) ->
  Protocol.validate_job ->
  (Protocol.summary, string) result

(** Revalidate an inline frame against the server's retained baseline. *)
val revalidate :
  t ->
  on_verdict:(Protocol.verdict -> unit) ->
  Frames.Frame.t ->
  (Protocol.summary, string) result

(** Like {!revalidate} with the server reading the frame from disk. *)
val revalidate_file :
  t ->
  on_verdict:(Protocol.verdict -> unit) ->
  string ->
  (Protocol.summary, string) result

(** Watch mode: poll [load] for the current snapshot; the first
    snapshot is validated (alone) to establish the baseline, every
    subsequent {e changed} snapshot is revalidated and reported via
    [on_event]. Stops after [max_events] change events and returns how
    many were delivered. [sleep] runs between polls — injectable, so
    tests drive the loop without wall-clock waits; returning [false]
    stops the watch early. *)
val watch :
  t ->
  load:(unit -> (Frames.Frame.t, string) result) ->
  sleep:(unit -> bool) ->
  max_events:int ->
  on_event:(Protocol.summary -> unit) ->
  unit ->
  (int, string) result
