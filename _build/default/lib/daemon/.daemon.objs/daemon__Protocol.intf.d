lib/daemon/protocol.mli: Buffer Frames Jsonlite
