lib/daemon/protocol.mli: Frames Jsonlite
