lib/daemon/client.ml: Digest Domain Frames Printf Protocol Result Server String Unix
