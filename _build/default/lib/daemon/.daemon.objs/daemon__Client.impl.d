lib/daemon/client.ml: Array Buffer Digest Domain Float Frames Hashtbl List Printf Protocol Result Server String Unix V2
