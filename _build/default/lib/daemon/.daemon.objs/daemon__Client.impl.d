lib/daemon/client.ml: Digest Domain Float Frames Printf Protocol Result Server String Unix
