lib/daemon/deadline.ml: Float Printf Unix
