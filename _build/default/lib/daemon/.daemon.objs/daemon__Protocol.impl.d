lib/daemon/protocol.ml: Array Buffer Bytes Char Frames Fun Hashtbl Jsonlite List Option Printf Result Stdlib String
