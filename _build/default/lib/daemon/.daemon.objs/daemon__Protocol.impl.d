lib/daemon/protocol.ml: Bytes Frames Fun Jsonlite List Option Printf Result Stdlib String
