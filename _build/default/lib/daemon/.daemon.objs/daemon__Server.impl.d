lib/daemon/server.ml: Array Condition Cvl Cvlint Deadline Domain Faultsim Float Frames Fun Hashtbl In_channel Lazy List Mutex Option Pool Printexc Printf Protocol Result String Sys Unix
