lib/daemon/server.ml: Array Cvl Cvlint Faultsim Frames Fun Hashtbl In_channel Lazy List Option Pool Printexc Printf Protocol Result Sys Unix
