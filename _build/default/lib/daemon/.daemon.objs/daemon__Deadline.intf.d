lib/daemon/deadline.mli:
