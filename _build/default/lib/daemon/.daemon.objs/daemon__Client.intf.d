lib/daemon/client.mli: Frames Protocol Server
