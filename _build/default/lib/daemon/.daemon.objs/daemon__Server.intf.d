lib/daemon/server.mli: Cvl Protocol
