(* Deterministic fault injection for the validation pipeline.

   A fault plan is a pure function of its seed: sites are sampled by
   hashing (seed, site key) with a splitmix64-style finalizer, so the
   same seed over the same frames and rules yields the same plan — and
   because every decision is keyed by site, not by evaluation order,
   the same faults fire regardless of how the pool shards the grid.
   No wall clock anywhere: latency faults advance the simulated clock
   in [Cvl.Resilience]. *)

(* ------------------------------------------------------------------ *)
(* Seeded hashing (splitmix64 finalizer)                               *)
(* ------------------------------------------------------------------ *)

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let hash64 ~seed key =
  let h = ref (mix64 (Int64.add (Int64.of_int seed) 0x9E3779B97F4A7C15L)) in
  String.iter
    (fun c -> h := mix64 (Int64.logxor !h (Int64.of_int (Char.code c))))
    key;
  !h

(* Uniform in [0, 1): top 53 bits as a float. *)
let unit ~seed key =
  Int64.to_float (Int64.shift_right_logical (hash64 ~seed key) 11) /. 9007199254740992.0

let pick ~seed key n = Int64.to_int (Int64.rem (Int64.shift_right_logical (hash64 ~seed key) 17) (Int64.of_int n))

(* ------------------------------------------------------------------ *)
(* Plans                                                               *)
(* ------------------------------------------------------------------ *)

type fault_kind =
  | Unreadable_file of { frame_id : string; path : string }
  | Truncated_file of { frame_id : string; path : string }
  | Garbage_file of { frame_id : string; path : string }
  | Slow_read of { frame_id : string; path : string; delay_ms : int }
  | Dead_plugin of { plugin : string }
  | Transient_plugin of { plugin : string; failures : int }
  | Eval_fault of { entity : string; rule : string; frame_id : string }

type fault = { id : string; kind : fault_kind }
type plan = { seed : int; faults : fault list }

let kind_to_string = function
  | Unreadable_file { frame_id; path } ->
    Printf.sprintf "unreadable-file frame=%s path=%s" frame_id path
  | Truncated_file { frame_id; path } ->
    Printf.sprintf "truncated-file frame=%s path=%s" frame_id path
  | Garbage_file { frame_id; path } ->
    Printf.sprintf "garbage-file frame=%s path=%s" frame_id path
  | Slow_read { frame_id; path; delay_ms } ->
    Printf.sprintf "slow-read frame=%s path=%s delay=%dms" frame_id path delay_ms
  | Dead_plugin { plugin } -> Printf.sprintf "dead-plugin plugin=%s" plugin
  | Transient_plugin { plugin; failures } ->
    Printf.sprintf "transient-plugin plugin=%s failures=%d" plugin failures
  | Eval_fault { entity; rule; frame_id } ->
    Printf.sprintf "eval-fault entity=%s rule=%s frame=%s" entity rule frame_id

let describe plan =
  String.concat ""
    (List.map
       (fun f -> Printf.sprintf "%s %s\n" f.id (kind_to_string f.kind))
       plan.faults)

let with_ids faults =
  List.mapi (fun i kind -> { id = Printf.sprintf "F%03d" i; kind }) faults

let is_plain = function
  | Cvl.Rule.Composite _ | Cvl.Rule.Cluster _ -> false
  | Cvl.Rule.Tree _ | Cvl.Rule.Schema _ | Cvl.Rule.Path _ | Cvl.Rule.Script _ -> true

(* Every (entity, rule, frame) evaluation site of the plain-rule grid,
   in deterministic entity-major order. *)
let eval_sites ~rules ~frames =
  List.concat_map
    (fun ((entry : Cvl.Manifest.entry), rs) ->
      List.concat_map
        (fun frame ->
          List.filter_map
            (fun rule ->
              if is_plain rule then
                Some
                  ( entry.Cvl.Manifest.entity,
                    Cvl.Rule.name rule,
                    Frames.Frame.id frame )
              else None)
            rs)
        frames)
    rules

let file_sites frames =
  List.concat_map
    (fun frame ->
      let id = Frames.Frame.id frame in
      List.map
        (fun (f : Frames.File.t) -> (id, f.Frames.File.path))
        (Frames.Frame.all_files frame))
    frames

let sample_eval ?(rate = 0.02) ~seed ~rules frames =
  let faults =
    List.filter_map
      (fun (entity, rule, frame_id) ->
        let key = Printf.sprintf "eval:%s:%s:%s" entity rule frame_id in
        if unit ~seed key < rate then Some (Eval_fault { entity; rule; frame_id })
        else None)
      (eval_sites ~rules ~frames)
  in
  { seed; faults = with_ids faults }

let sample ?(rate = 0.05) ~seed ~rules frames =
  let files =
    List.filter_map
      (fun (frame_id, path) ->
        let key = Printf.sprintf "file:%s:%s" frame_id path in
        if unit ~seed key >= rate then None
        else
          Some
            (match pick ~seed ("kind:" ^ key) 4 with
            | 0 -> Unreadable_file { frame_id; path }
            | 1 -> Truncated_file { frame_id; path }
            | 2 -> Garbage_file { frame_id; path }
            | _ ->
              Slow_read { frame_id; path; delay_ms = 5 + pick ~seed ("delay:" ^ key) 45 }))
      (file_sites frames)
  in
  let plugins =
    List.filter_map
      (fun (p : Crawler.plugin) ->
        let name = p.Crawler.plugin_name in
        let key = "plugin:" ^ name in
        if unit ~seed key >= 4.0 *. rate then None
        else if pick ~seed ("pkind:" ^ key) 2 = 0 then Some (Dead_plugin { plugin = name })
        else
          Some
            (Transient_plugin { plugin = name; failures = 1 + pick ~seed ("pfail:" ^ key) 2 }))
      Crawler.plugins
  in
  let evals =
    List.filter_map
      (fun (entity, rule, frame_id) ->
        let key = Printf.sprintf "eval:%s:%s:%s" entity rule frame_id in
        if unit ~seed key < rate /. 2.0 then Some (Eval_fault { entity; rule; frame_id })
        else None)
      (eval_sites ~rules ~frames)
  in
  { seed; faults = with_ids (files @ plugins @ evals) }

(* ------------------------------------------------------------------ *)
(* I/O fault family: transport-level chaos                             *)
(* ------------------------------------------------------------------ *)

(* Faults on the daemon's byte streams rather than its evaluation
   grid. Pure byte manglers — no Unix dependency here: [mangle] turns
   one framed message into the chunk list a hostile peer would send,
   plus what the peer does to the connection afterwards. The test
   harness owns the actual sockets (and, for [Stalled_read], the
   refusal to read replies). Sampling is the same seeded site-keyed
   scheme as evaluation faults, keyed by stream name. *)

type io_fault_kind =
  | Slow_loris of { chunk_bytes : int }
  | Mid_stream_disconnect of { after_bytes : int }
  | Stalled_read
  | Short_write of { drop_bytes : int }

type io_fault = { io_id : string; stream : string; io_kind : io_fault_kind }
type io_plan = { io_seed : int; io_faults : io_fault list }

let io_kind_to_string = function
  | Slow_loris { chunk_bytes } -> Printf.sprintf "slow-loris chunk=%dB" chunk_bytes
  | Mid_stream_disconnect { after_bytes } ->
    Printf.sprintf "mid-stream-disconnect after=%dB" after_bytes
  | Stalled_read -> "stalled-read"
  | Short_write { drop_bytes } -> Printf.sprintf "short-write drop=%dB" drop_bytes

let describe_io plan =
  String.concat ""
    (List.map
       (fun f -> Printf.sprintf "%s %s %s\n" f.io_id f.stream (io_kind_to_string f.io_kind))
       plan.io_faults)

let sample_io ?(rate = 0.5) ~seed ~streams () =
  let faults =
    List.filter_map
      (fun stream ->
        let key = "io:" ^ stream in
        if unit ~seed key >= rate then None
        else
          let io_kind =
            match pick ~seed ("iokind:" ^ key) 4 with
            | 0 -> Slow_loris { chunk_bytes = 1 + pick ~seed ("iochunk:" ^ key) 7 }
            | 1 -> Mid_stream_disconnect { after_bytes = 1 + pick ~seed ("iocut:" ^ key) 40 }
            | 2 -> Stalled_read
            | _ -> Short_write { drop_bytes = 1 + pick ~seed ("iodrop:" ^ key) 16 }
          in
          Some (stream, io_kind))
      streams
  in
  {
    io_seed = seed;
    io_faults =
      List.mapi
        (fun i (stream, io_kind) ->
          { io_id = Printf.sprintf "IO%03d" i; stream; io_kind })
        faults;
  }

let io_fault_for plan stream = List.find_opt (fun f -> f.stream = stream) plan.io_faults

let chunk_string n s =
  let len = String.length s in
  let n = max 1 n in
  let rec go i acc =
    if i >= len then List.rev acc
    else go (i + n) (String.sub s i (min n (len - i)) :: acc)
  in
  go 0 []

let mangle kind frame =
  let len = String.length frame in
  match kind with
  | Slow_loris { chunk_bytes } -> (chunk_string chunk_bytes frame, `Keep_open)
  | Stalled_read ->
    (* The frame arrives whole; the fault is the peer never reading the
       reply stream (and then vanishing). *)
    ([ frame ], `Keep_open)
  | Mid_stream_disconnect { after_bytes } ->
    (* Clamp to len - 1 so the cut is always genuinely mid-frame. *)
    let keep = max 1 (min after_bytes (len - 1)) in
    ([ String.sub frame 0 keep ], `Close_now)
  | Short_write { drop_bytes } ->
    let keep = max 1 (len - max 1 drop_bytes) in
    ([ String.sub frame 0 keep ], `Close_now)

(* ------------------------------------------------------------------ *)
(* Arming: translate a plan into Resilience hooks                      *)
(* ------------------------------------------------------------------ *)

let fired_mutex = Mutex.create ()
let fired : (string, unit) Hashtbl.t = Hashtbl.create 64

let record id =
  Mutex.lock fired_mutex;
  if not (Hashtbl.mem fired id) then Hashtbl.replace fired id ();
  Mutex.unlock fired_mutex;
  Cvl.Resilience.note_injected ()

let triggered () =
  Mutex.lock fired_mutex;
  let ids = Hashtbl.fold (fun id () acc -> id :: acc) fired [] in
  Mutex.unlock fired_mutex;
  List.sort String.compare ids

(* Deterministic garbage: bytes no lens grammar accepts, tagged with
   the fault id so a leak is attributable from the parse error. *)
let garbage id = Printf.sprintf "\x00\x01{{{[[<<%s>>]]}}}\xff\xfe garbage" id

let arm plan =
  Mutex.lock fired_mutex;
  Hashtbl.reset fired;
  Mutex.unlock fired_mutex;
  let file_tbl = Hashtbl.create 16 in
  let dead_tbl = Hashtbl.create 4 in
  let transient_tbl = Hashtbl.create 4 in
  let eval_tbl = Hashtbl.create 16 in
  List.iter
    (fun f ->
      match f.kind with
      | Unreadable_file { frame_id; path }
      | Truncated_file { frame_id; path }
      | Garbage_file { frame_id; path }
      | Slow_read { frame_id; path; _ } -> Hashtbl.replace file_tbl (frame_id, path) f
      | Dead_plugin { plugin } -> Hashtbl.replace dead_tbl plugin f
      | Transient_plugin { plugin; _ } -> Hashtbl.replace transient_tbl plugin f
      | Eval_fault { entity; rule; frame_id } ->
        Hashtbl.replace eval_tbl (entity, rule, frame_id) f)
    plan.faults;
  Cvl.Resilience.set_read_hook
    (Some
       (fun ~frame_id ~path content ->
         match Hashtbl.find_opt file_tbl (frame_id, path) with
         | None -> Ok content
         | Some f -> (
           record f.id;
           match f.kind with
           | Unreadable_file _ ->
             Error
               {
                 Cvl.Resilience.stage = Cvl.Resilience.Extract;
                 transient = false;
                 message = Printf.sprintf "injected:%s: unreadable %s" f.id path;
               }
           | Truncated_file _ -> Ok (String.sub content 0 (String.length content / 2))
           | Garbage_file _ -> Ok (garbage f.id)
           | Slow_read { delay_ms; _ } ->
             Cvl.Resilience.sleep_ms delay_ms;
             Ok content
           | Dead_plugin _ | Transient_plugin _ | Eval_fault _ -> Ok content)));
  Cvl.Resilience.set_plugin_hook
    (Some
       (fun ~plugin ~frame_id:_ ~attempt ->
         match Hashtbl.find_opt dead_tbl plugin with
         | Some f ->
           record f.id;
           Some (Printf.sprintf "injected:%s: plugin %s is dead" f.id plugin)
         | None -> (
           match Hashtbl.find_opt transient_tbl plugin with
           | Some ({ kind = Transient_plugin { failures; _ }; _ } as f) when attempt < failures ->
             record f.id;
             Some
               (Printf.sprintf "injected:%s: plugin %s transient failure %d/%d" f.id plugin
                  (attempt + 1) failures)
           | Some _ | None -> None)));
  Cvl.Resilience.set_eval_hook
    (Some
       (fun ~entity ~rule ~frame_id ->
         match Hashtbl.find_opt eval_tbl (entity, rule, frame_id) with
         | None -> ()
         | Some f ->
           record f.id;
           raise
             (Cvl.Resilience.Fault
                {
                  Cvl.Resilience.stage = Cvl.Resilience.Evaluate;
                  transient = false;
                  message =
                    Printf.sprintf "injected:%s: evaluation fault for %s/%s@%s" f.id entity
                      rule frame_id;
                })))

let disarm () = Cvl.Resilience.clear_hooks ()
