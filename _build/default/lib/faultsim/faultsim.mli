(** Seeded, reproducible fault injection for the validation pipeline.

    A {e fault plan} is a pure function of its integer seed: each
    candidate site (a file in a frame, a crawler plugin, an
    (entity, rule, frame) evaluation cell) is selected by hashing
    (seed, site key) with a splitmix64-style finalizer. Decisions
    depend only on the site, never on evaluation order, so the same
    plan fires the same faults whether the grid runs on 1 job or 8.
    There is no wall clock: latency faults advance
    {!Cvl.Resilience.sleep_ms}'s simulated clock.

    Usage: build a plan ({!sample} or {!sample_eval}), {!arm} it
    (installs the {!Cvl.Resilience} hooks), run the validator, inspect
    {!triggered}, and {!disarm}. *)

type fault_kind =
  | Unreadable_file of { frame_id : string; path : string }
      (** the read fails outright (extract-stage fault) *)
  | Truncated_file of { frame_id : string; path : string }
      (** the read returns the first half of the content *)
  | Garbage_file of { frame_id : string; path : string }
      (** the read returns bytes no lens accepts *)
  | Slow_read of { frame_id : string; path : string; delay_ms : int }
      (** the read succeeds after simulated latency *)
  | Dead_plugin of { plugin : string }
      (** every attempt fails: retries exhaust, the breaker opens *)
  | Transient_plugin of { plugin : string; failures : int }
      (** the first [failures] attempts fail, then the plugin works —
          recovered by retry when [failures <= policy.retries] *)
  | Eval_fault of { entity : string; rule : string; frame_id : string }
      (** {!Cvl.Resilience.Fault} raised at one evaluation cell *)

type fault = { id : string;  (** unique within the plan, e.g. ["F007"]; injected
                                 messages embed it as ["injected:F007: …"] *)
               kind : fault_kind }

type plan = { seed : int; faults : fault list }

(** One line per fault — the textual fault-plan grammar documented in
    DESIGN.md. *)
val describe : plan -> string

(** [sample ~seed ~rules frames] draws a mixed-kind plan over the
    frames' files, the registered plugins, and the evaluation grid.
    [rate] (default [0.05]) is the per-file selection probability;
    plugins are selected at [4 * rate], evaluation cells at
    [rate / 2]. *)
val sample :
  ?rate:float ->
  seed:int ->
  rules:(Cvl.Manifest.entry * Cvl.Rule.t list) list ->
  Frames.Frame.t list ->
  plan

(** [sample_eval ~seed ~rules frames] draws evaluation faults only
    ([rate] default [0.02]). Each selected (entity, rule, frame) cell
    evaluates exactly once per run, so every fault in the plan fires at
    most once and is attributed to exactly one [Engine_error] result —
    the plan shape behind the chaos invariant test. *)
val sample_eval :
  ?rate:float ->
  seed:int ->
  rules:(Cvl.Manifest.entry * Cvl.Rule.t list) list ->
  Frames.Frame.t list ->
  plan

(** Every plain-rule (entity, rule-name, frame-id) cell of the grid, in
    deterministic entity-major order. *)
val eval_sites :
  rules:(Cvl.Manifest.entry * Cvl.Rule.t list) list ->
  frames:Frames.Frame.t list ->
  (string * string * string) list

(** {2 I/O fault family}

    Transport-level chaos for the daemon's framed byte streams, under
    the same seeded site-keyed sampling. These faults never install
    hooks: {!mangle} is a pure function from one framed message to the
    chunk sequence a hostile peer would write, so the test harness (or
    any transport shim) owns the sockets and the timing. *)

type io_fault_kind =
  | Slow_loris of { chunk_bytes : int }
      (** the frame arrives, but dribbled in [chunk_bytes]-byte writes *)
  | Mid_stream_disconnect of { after_bytes : int }
      (** the peer hangs up after [after_bytes] bytes of the frame
          (clamped to stay strictly mid-frame) *)
  | Stalled_read
      (** the frame arrives whole but the peer never reads the reply
          stream, then vanishes — backpressure on the server's writes *)
  | Short_write of { drop_bytes : int }
      (** the peer's last write loses its final [drop_bytes] bytes
          before the connection closes *)

type io_fault = { io_id : string; stream : string; io_kind : io_fault_kind }
type io_plan = { io_seed : int; io_faults : io_fault list }

(** [sample_io ~seed ~streams ()] selects streams (by name) at [rate]
    (default [0.5]) and draws each selected stream's fault kind and
    parameters from the seed. Pure in the seed, order-independent. *)
val sample_io : ?rate:float -> seed:int -> streams:string list -> unit -> io_plan

val io_fault_for : io_plan -> string -> io_fault option

(** One line per fault: [<id> <stream> <kind …>]. *)
val describe_io : io_plan -> string

(** [mangle kind frame] is the chunk sequence the faulty peer writes
    (in order, flushing between chunks) and whether it then keeps the
    connection open or slams it shut. Chunks always concatenate to a
    prefix of [frame]; for {!Slow_loris} and {!Stalled_read} the prefix
    is the whole frame. *)
val mangle : io_fault_kind -> string -> string list * [ `Keep_open | `Close_now ]

(** Install the plan as {!Cvl.Resilience} hooks and clear the
    triggered-fault record. Only one plan can be armed at a time. *)
val arm : plan -> unit

(** Remove all hooks (idempotent; the triggered record survives until
    the next {!arm}). *)
val disarm : unit -> unit

(** Sorted ids of the faults that actually fired since the last
    {!arm}. *)
val triggered : unit -> string list
