module Path_map = Map.Make (String)

type package = { name : string; version : string }
type process = { pid : int; user : string; command : string }

type mount = {
  device : string;
  mountpoint : string;
  fstype : string;
  options : string list;
}

type entity_kind =
  | Host
  | Docker_image of string
  | Container of string
  | Cloud of string

type t = {
  id : string;
  kind : entity_kind;
  os : string;
  files : File.t Path_map.t;
  packages : package list;
  processes : process list;
  mounts : mount list;
  kernel_params : (string * string) list;
  runtime_docs : (string * string) list;
}

let create ?(os = "ubuntu-14.04") ~id kind =
  {
    id;
    kind;
    os;
    files = Path_map.singleton "/" (File.directory "/");
    packages = [];
    processes = [];
    mounts = [];
    kernel_params = [];
    runtime_docs = [];
  }

let id t = t.id
let kind t = t.kind
let os t = t.os

let kind_to_string = function
  | Host -> "host"
  | Docker_image ref_ -> Printf.sprintf "docker-image(%s)" ref_
  | Container cid -> Printf.sprintf "container(%s)" cid
  | Cloud name -> Printf.sprintf "cloud(%s)" name

let rec ensure_parents files path =
  let dir = File.parent path in
  if dir = path || Path_map.mem dir files then files
  else
    let files = ensure_parents files dir in
    Path_map.add dir (File.directory dir) files

let add_file t (f : File.t) =
  let files = ensure_parents t.files f.path in
  { t with files = Path_map.add f.path f files }

let add_files t fs = List.fold_left add_file t fs
let remove_file t path = { t with files = Path_map.remove (File.normalize_path path) t.files }

let rec resolve t path hops =
  if hops <= 0 then None
  else
    match Path_map.find_opt (File.normalize_path path) t.files with
    | Some ({ kind = File.Symlink target; _ } as link) ->
      let absolute =
        if String.length target > 0 && target.[0] = '/' then target
        else File.parent link.path ^ "/" ^ target
      in
      resolve t absolute (hops - 1)
    | other -> other

let stat t path = resolve t path 16
let exists t path = stat t path <> None

let read t path =
  match stat t path with
  | Some { kind = File.Regular; content; _ } -> Some content
  | Some _ | None -> None

let list_dir t path =
  let dir = File.normalize_path path in
  Path_map.fold
    (fun p f acc -> if p <> dir && File.parent p = dir then f :: acc else acc)
    t.files []
  |> List.sort (fun (a : File.t) b -> String.compare a.path b.path)

let files_under t ~prefix =
  let prefix = File.normalize_path prefix in
  let matches p =
    String.equal p prefix
    || String.length p > String.length prefix
       && String.sub p 0 (String.length prefix) = prefix
       && (prefix = "/" || p.[String.length prefix] = '/')
  in
  Path_map.fold
    (fun p (f : File.t) acc ->
      if matches p && f.kind = File.Regular then f :: acc else acc)
    t.files []
  |> List.sort (fun (a : File.t) b -> String.compare a.path b.path)

let all_files t = files_under t ~prefix:"/"

let all_entries t =
  Path_map.fold (fun _ f acc -> f :: acc) t.files []
  |> List.sort (fun (a : File.t) b -> String.compare a.path b.path)

let set_packages t packages = { t with packages }
let packages t = t.packages

let package_version t name =
  List.find_opt (fun p -> String.equal p.name name) t.packages
  |> Option.map (fun p -> p.version)

let set_processes t processes = { t with processes }
let processes t = t.processes

let process_running t command =
  List.exists (fun p -> String.equal p.command command) t.processes

let set_mounts t mounts = { t with mounts }
let mounts t = t.mounts

let set_kernel_params t kernel_params = { t with kernel_params }
let kernel_params t = t.kernel_params
let kernel_param t name = List.assoc_opt name t.kernel_params

let set_kernel_param t name value =
  { t with kernel_params = (name, value) :: List.remove_assoc name t.kernel_params }

let set_runtime_doc t ~key doc =
  { t with runtime_docs = (key, doc) :: List.remove_assoc key t.runtime_docs }

let runtime_doc t key = List.assoc_opt key t.runtime_docs
let runtime_docs t = t.runtime_docs

let update_file t ~path f =
  let path = File.normalize_path path in
  match Path_map.find_opt path t.files with
  | Some file -> { t with files = Path_map.add path (f file) t.files }
  | None -> t

let set_content t ~path content =
  let path = File.normalize_path path in
  match Path_map.find_opt path t.files with
  | Some file -> { t with files = Path_map.add path { file with File.content } t.files }
  | None -> add_file t (File.make ~content path)

let chmod t ~path mode = update_file t ~path (fun f -> { f with File.mode })
let chown t ~path ~uid ~gid = update_file t ~path (fun f -> { f with File.uid; gid })

let append_line t ~path line =
  let path = File.normalize_path path in
  match Path_map.find_opt path t.files with
  | Some file ->
    let content =
      if file.File.content = "" || String.length file.File.content > 0
         && file.File.content.[String.length file.File.content - 1] = '\n'
      then file.File.content ^ line ^ "\n"
      else file.File.content ^ "\n" ^ line ^ "\n"
    in
    { t with files = Path_map.add path { file with File.content } t.files }
  | None -> add_file t (File.make ~content:(line ^ "\n") path)

let pp fmt t =
  Format.fprintf fmt "frame %s (%s, %s): %d files, %d packages, %d processes"
    t.id (kind_to_string t.kind) t.os (Path_map.cardinal t.files)
    (List.length t.packages) (List.length t.processes)
