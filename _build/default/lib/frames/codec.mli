(** Frame (de)serialization as JSON documents.

    The paper's frame abstraction comes from "touchless and always-on
    cloud analytics" ([24]): entities are crawled once and their frames
    shipped to analytics backends. This codec is that exchange format —
    a frame round-trips through a single JSON document, so validation
    can run wherever the frame lands ([configvalidator validate
    --frame-file snapshot.json]). *)

val to_json : Frame.t -> Jsonlite.t
val of_json : Jsonlite.t -> (Frame.t, string) result

val to_string : Frame.t -> string
val of_string : string -> (Frame.t, string) result
