type kind =
  | Regular
  | Directory
  | Symlink of string

type t = {
  path : string;
  kind : kind;
  content : string;
  mode : int;
  uid : int;
  gid : int;
  owner : string;
  group : string;
  mtime : float;
}

let normalize_path p =
  let segments = String.split_on_char '/' p in
  let resolved =
    List.fold_left
      (fun acc seg ->
        match seg with
        | "" | "." -> acc
        | ".." -> ( match acc with [] -> [] | _ :: rest -> rest)
        | s -> s :: acc)
      [] segments
  in
  "/" ^ String.concat "/" (List.rev resolved)

let parent p =
  let p = normalize_path p in
  if p = "/" then "/"
  else
    match String.rindex_opt p '/' with
    | Some 0 -> "/"
    | Some i -> String.sub p 0 i
    | None -> "/"

let basename p =
  let p = normalize_path p in
  if p = "/" then "/"
  else
    match String.rindex_opt p '/' with
    | Some i -> String.sub p (i + 1) (String.length p - i - 1)
    | None -> p

let make ?(mode = 0o644) ?(uid = 0) ?(gid = 0) ?(owner = "root") ?(group = "root")
    ?(mtime = 0.) ~content path =
  { path = normalize_path path; kind = Regular; content; mode; uid; gid; owner; group; mtime }

let directory ?(mode = 0o755) ?(uid = 0) ?(gid = 0) ?(owner = "root") ?(group = "root") path =
  { path = normalize_path path; kind = Directory; content = ""; mode; uid; gid; owner; group; mtime = 0. }

let symlink ~target path =
  {
    path = normalize_path path;
    kind = Symlink target;
    content = "";
    mode = 0o777;
    uid = 0;
    gid = 0;
    owner = "root";
    group = "root";
    mtime = 0.;
  }

let mode_string f =
  let type_char =
    match f.kind with Regular -> '-' | Directory -> 'd' | Symlink _ -> 'l'
  in
  let triad shift =
    let bits = (f.mode lsr shift) land 0o7 in
    Printf.sprintf "%c%c%c"
      (if bits land 4 <> 0 then 'r' else '-')
      (if bits land 2 <> 0 then 'w' else '-')
      (if bits land 1 <> 0 then 'x' else '-')
  in
  Printf.sprintf "%c%s%s%s" type_char (triad 6) (triad 3) (triad 0)

let ownership f = Printf.sprintf "%d:%d" f.uid f.gid
let permission_octal f = Printf.sprintf "%o" f.mode

let pp fmt f =
  Format.fprintf fmt "%s %d %s %s %d %s" (mode_string f) 1 f.owner f.group
    (String.length f.content) f.path
