(** Files inside a system configuration frame.

    A frame stores the attributes that CVL path rules assert on:
    permission bits, numeric and symbolic ownership, size and kind. *)

type kind =
  | Regular
  | Directory
  | Symlink of string  (** link target *)

type t = {
  path : string;  (** absolute, normalized (no trailing '/', no '..') *)
  kind : kind;
  content : string;  (** [""] for directories and symlinks *)
  mode : int;  (** permission bits, e.g. [0o644] *)
  uid : int;
  gid : int;
  owner : string;
  group : string;
  mtime : float;
}

(** [normalize_path p] collapses duplicate slashes, resolves ['.'] and
    ['..'] segments, forces a leading slash and strips any trailing one
    (except for the root). *)
val normalize_path : string -> string

val parent : string -> string
val basename : string -> string

(** [make ?mode ?uid ?gid ?owner ?group ?mtime ~content path] builds a
    regular file. Defaults: mode [0o644], root:root, mtime [0.]. *)
val make :
  ?mode:int ->
  ?uid:int ->
  ?gid:int ->
  ?owner:string ->
  ?group:string ->
  ?mtime:float ->
  content:string ->
  string ->
  t

val directory :
  ?mode:int -> ?uid:int -> ?gid:int -> ?owner:string -> ?group:string -> string -> t

val symlink : target:string -> string -> t

(** [mode_string f] renders ls-style, e.g. ["-rw-r--r--"]. *)
val mode_string : t -> string

(** ["0:0"]-style numeric ownership, as used by CVL's [ownership]
    keyword. *)
val ownership : t -> string

(** Octal permission text, e.g. ["644"]. *)
val permission_octal : t -> string

val pp : Format.formatter -> t -> unit
