(** System configuration frames.

    A frame is a point-in-time snapshot of everything ConfigValidator's
    rules assert on for one entity: the file tree (with content,
    permissions and ownership), installed packages, running processes,
    mounts, and the full kernel parameter set (the paper notes that
    [sysctl.conf] holds only a subset of [sysctl -a]; the frame stores
    the live set separately so script rules can query it).

    The paper validates "system configuration frames … without requiring
    any local installation or remote access"; this module is that
    abstraction, populated by synthetic scenario builders or by the
    docker/cloud simulators. *)

type package = { name : string; version : string }
type process = { pid : int; user : string; command : string }

type mount = {
  device : string;
  mountpoint : string;
  fstype : string;
  options : string list;
}

type entity_kind =
  | Host
  | Docker_image of string  (** image reference, e.g. ["nginx:1.13"] *)
  | Container of string  (** container id *)
  | Cloud of string  (** cloud deployment name *)

type t

val create : ?os:string -> id:string -> entity_kind -> t

val id : t -> string
val kind : t -> entity_kind
val os : t -> string
val kind_to_string : entity_kind -> string

(** {2 Files} *)

(** [add_file frame file] stores the file, implicitly creating parent
    directories. An existing entry at the same path is replaced. *)
val add_file : t -> File.t -> t

val add_files : t -> File.t list -> t
val remove_file : t -> string -> t

(** Lookup resolves symlinks (up to 16 hops, against the frame itself). *)
val stat : t -> string -> File.t option

val exists : t -> string -> bool
val read : t -> string -> string option

(** Direct children of a directory, sorted by path. *)
val list_dir : t -> string -> File.t list

(** Every regular file whose path starts with [prefix] (itself
    included), sorted by path. *)
val files_under : t -> prefix:string -> File.t list

(** All regular files, sorted by path. *)
val all_files : t -> File.t list

(** Every entry — regular files, directories and symlinks — sorted by
    path. Used when replaying one frame's contents into another (e.g.
    building a container view from an image). *)
val all_entries : t -> File.t list

(** {2 Non-file state} *)

val set_packages : t -> package list -> t
val packages : t -> package list
val package_version : t -> string -> string option

val set_processes : t -> process list -> t
val processes : t -> process list
val process_running : t -> string -> bool

val set_mounts : t -> mount list -> t
val mounts : t -> mount list

(** The live kernel parameter table ([sysctl -a]). *)
val set_kernel_params : t -> (string * string) list -> t
val kernel_params : t -> (string * string) list
val kernel_param : t -> string -> string option
val set_kernel_param : t -> string -> string -> t

(** Free-form runtime documents exposed by entity plugins (e.g. a
    docker-inspect JSON, a cloud API response), keyed by plugin name. *)
val set_runtime_doc : t -> key:string -> string -> t
val runtime_doc : t -> string -> string option
val runtime_docs : t -> (string * string) list

(** {2 Mutation helpers (misconfiguration injection)} *)

val set_content : t -> path:string -> string -> t
val chmod : t -> path:string -> int -> t
val chown : t -> path:string -> uid:int -> gid:int -> t

(** [append_line frame ~path line] appends [line ^ "\n"], creating the
    file if needed. *)
val append_line : t -> path:string -> string -> t

val pp : Format.formatter -> t -> unit
