(** Frame differencing: what changed between two snapshots of the same
    entity. The paper's related work reaches for snapshot diffing as a
    troubleshooting aid; here it powers incremental re-validation — only
    entities whose configuration actually changed are re-evaluated
    (see [Cvl.Incremental]). *)

type change =
  | Added of File.t
  | Removed of File.t
  | Content_changed of { before : File.t; after : File.t }
  | Metadata_changed of { before : File.t; after : File.t }
      (** same content, different mode/ownership/kind *)

type t = {
  file_changes : change list;  (** sorted by path *)
  kernel_changes : (string * string option * string option) list;
      (** (param, before, after) *)
  runtime_doc_changes : string list;  (** plugin keys whose doc changed *)
  package_changes : (string * string option * string option) list;
      (** (name, before version, after version) *)
}

val between : Frame.t -> Frame.t -> t
val is_empty : t -> bool

(** Paths touched by file changes. *)
val changed_paths : t -> string list

val change_path : change -> string
val pp : Format.formatter -> t -> unit
