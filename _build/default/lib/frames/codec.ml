let ( let* ) = Result.bind

let kind_to_json = function
  | Frame.Host -> Jsonlite.Obj [ ("kind", Jsonlite.Str "host") ]
  | Frame.Docker_image r ->
    Jsonlite.Obj [ ("kind", Jsonlite.Str "docker-image"); ("ref", Jsonlite.Str r) ]
  | Frame.Container c -> Jsonlite.Obj [ ("kind", Jsonlite.Str "container"); ("ref", Jsonlite.Str c) ]
  | Frame.Cloud n -> Jsonlite.Obj [ ("kind", Jsonlite.Str "cloud"); ("ref", Jsonlite.Str n) ]

let kind_of_json json =
  let str key = Option.bind (Jsonlite.member key json) Jsonlite.get_str in
  match str "kind" with
  | Some "host" -> Ok Frame.Host
  | Some "docker-image" -> Ok (Frame.Docker_image (Option.value (str "ref") ~default:""))
  | Some "container" -> Ok (Frame.Container (Option.value (str "ref") ~default:""))
  | Some "cloud" -> Ok (Frame.Cloud (Option.value (str "ref") ~default:""))
  | Some other -> Error (Printf.sprintf "unknown entity kind %S" other)
  | None -> Error "missing entity kind"

let file_kind_to_json = function
  | File.Regular -> [ ("type", Jsonlite.Str "file") ]
  | File.Directory -> [ ("type", Jsonlite.Str "dir") ]
  | File.Symlink target -> [ ("type", Jsonlite.Str "symlink"); ("target", Jsonlite.Str target) ]

let file_to_json (f : File.t) =
  Jsonlite.Obj
    ([
       ("path", Jsonlite.Str f.File.path);
       ("mode", Jsonlite.Str (Printf.sprintf "%o" f.File.mode));
       ("uid", Jsonlite.Num (float_of_int f.File.uid));
       ("gid", Jsonlite.Num (float_of_int f.File.gid));
       ("owner", Jsonlite.Str f.File.owner);
       ("group", Jsonlite.Str f.File.group);
     ]
    @ file_kind_to_json f.File.kind
    @ match f.File.kind with File.Regular -> [ ("content", Jsonlite.Str f.File.content) ] | _ -> [])

let file_of_json json =
  let str key = Option.bind (Jsonlite.member key json) Jsonlite.get_str in
  let num key default =
    match Option.bind (Jsonlite.member key json) Jsonlite.get_num with
    | Some f -> int_of_float f
    | None -> default
  in
  match str "path" with
  | None -> Error "file entry without a path"
  | Some path -> (
    let mode =
      match str "mode" with
      | Some text -> Option.value (int_of_string_opt ("0o" ^ text)) ~default:0o644
      | None -> 0o644
    in
    let uid = num "uid" 0 and gid = num "gid" 0 in
    let owner = Option.value (str "owner") ~default:"root" in
    let group = Option.value (str "group") ~default:"root" in
    match str "type" with
    | Some "dir" -> Ok (File.directory ~mode ~uid ~gid ~owner ~group path)
    | Some "symlink" -> (
      match str "target" with
      | Some target -> Ok (File.symlink ~target path)
      | None -> Error (path ^ ": symlink without target"))
    | Some "file" | None ->
      Ok (File.make ~mode ~uid ~gid ~owner ~group ~content:(Option.value (str "content") ~default:"") path)
    | Some other -> Error (Printf.sprintf "%s: unknown file type %S" path other))

let pairs_to_json kvs =
  Jsonlite.Obj (List.map (fun (k, v) -> (k, Jsonlite.Str v)) kvs)

let pairs_of_json = function
  | Jsonlite.Obj kvs ->
    Ok (List.filter_map (fun (k, v) -> Option.map (fun s -> (k, s)) (Jsonlite.get_str v)) kvs)
  | _ -> Error "expected a string mapping"

let to_json frame =
  Jsonlite.Obj
    [
      ("id", Jsonlite.Str (Frame.id frame));
      ("os", Jsonlite.Str (Frame.os frame));
      ("entity", kind_to_json (Frame.kind frame));
      ("files", Jsonlite.Arr (List.map file_to_json (Frame.all_entries frame)));
      ( "packages",
        pairs_to_json
          (List.map (fun (p : Frame.package) -> (p.Frame.name, p.Frame.version)) (Frame.packages frame))
      );
      ( "processes",
        Jsonlite.Arr
          (List.map
             (fun (p : Frame.process) ->
               Jsonlite.Obj
                 [
                   ("pid", Jsonlite.Num (float_of_int p.Frame.pid));
                   ("user", Jsonlite.Str p.Frame.user);
                   ("command", Jsonlite.Str p.Frame.command);
                 ])
             (Frame.processes frame)) );
      ("kernel", pairs_to_json (Frame.kernel_params frame));
      ("runtime_docs", pairs_to_json (Frame.runtime_docs frame));
    ]

let of_json json =
  let str key = Option.bind (Jsonlite.member key json) Jsonlite.get_str in
  let* id = Option.to_result ~none:"missing frame id" (str "id") in
  let* kind =
    match Jsonlite.member "entity" json with
    | Some entity -> kind_of_json entity
    | None -> Ok Frame.Host
  in
  let os = Option.value (str "os") ~default:"ubuntu-14.04" in
  let frame = Frame.create ~os ~id kind in
  let* frame =
    match Jsonlite.member "files" json with
    | Some (Jsonlite.Arr entries) ->
      List.fold_left
        (fun acc entry ->
          let* frame = acc in
          let* file = file_of_json entry in
          Ok (Frame.add_file frame file))
        (Ok frame) entries
    | Some _ -> Error "files must be an array"
    | None -> Ok frame
  in
  let* frame =
    match Jsonlite.member "packages" json with
    | Some packages ->
      let* kvs = pairs_of_json packages in
      Ok (Frame.set_packages frame (List.map (fun (name, version) -> { Frame.name; version }) kvs))
    | None -> Ok frame
  in
  let* frame =
    match Jsonlite.member "processes" json with
    | Some (Jsonlite.Arr entries) ->
      let processes =
        List.filter_map
          (fun entry ->
            let str key = Option.bind (Jsonlite.member key entry) Jsonlite.get_str in
            let num key = Option.bind (Jsonlite.member key entry) Jsonlite.get_num in
            match (num "pid", str "user", str "command") with
            | Some pid, Some user, Some command ->
              Some { Frame.pid = int_of_float pid; user; command }
            | _ -> None)
          entries
      in
      Ok (Frame.set_processes frame processes)
    | Some _ -> Error "processes must be an array"
    | None -> Ok frame
  in
  let* frame =
    match Jsonlite.member "kernel" json with
    | Some kernel ->
      let* kvs = pairs_of_json kernel in
      Ok (Frame.set_kernel_params frame kvs)
    | None -> Ok frame
  in
  match Jsonlite.member "runtime_docs" json with
  | Some docs ->
    let* kvs = pairs_of_json docs in
    Ok (List.fold_left (fun frame (key, doc) -> Frame.set_runtime_doc frame ~key doc) frame kvs)
  | None -> Ok frame

let to_string frame = Jsonlite.pretty (to_json frame)

let of_string text =
  match Jsonlite.parse text with
  | Error e -> Error (Jsonlite.error_to_string e)
  | Ok json -> of_json json
