lib/frames/diff.mli: File Format Frame
