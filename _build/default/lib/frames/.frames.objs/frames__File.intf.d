lib/frames/file.mli: Format
