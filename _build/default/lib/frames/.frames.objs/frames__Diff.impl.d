lib/frames/diff.ml: File Format Frame List Option String
