lib/frames/codec.mli: Frame Jsonlite
