lib/frames/frame.ml: File Format List Map Option Printf String
