lib/frames/codec.ml: File Frame Jsonlite List Option Printf Result
