lib/frames/frame.mli: File Format
