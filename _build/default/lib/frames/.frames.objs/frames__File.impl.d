lib/frames/file.ml: Format List Printf String
