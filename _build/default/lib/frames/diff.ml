type change =
  | Added of File.t
  | Removed of File.t
  | Content_changed of { before : File.t; after : File.t }
  | Metadata_changed of { before : File.t; after : File.t }

type t = {
  file_changes : change list;
  kernel_changes : (string * string option * string option) list;
  runtime_doc_changes : string list;
  package_changes : (string * string option * string option) list;
}

let change_path = function
  | Added f | Removed f -> f.File.path
  | Content_changed { after; _ } | Metadata_changed { after; _ } -> after.File.path

let same_metadata (a : File.t) (b : File.t) =
  a.File.kind = b.File.kind && a.File.mode = b.File.mode && a.File.uid = b.File.uid
  && a.File.gid = b.File.gid

let file_changes before after =
  let index frame =
    List.fold_left
      (fun acc (f : File.t) -> (f.File.path, f) :: acc)
      []
      (Frame.all_entries frame)
  in
  let before_files = index before and after_files = index after in
  let removed_or_changed =
    List.filter_map
      (fun (path, (b : File.t)) ->
        match List.assoc_opt path after_files with
        | None -> Some (Removed b)
        | Some a ->
          if b.File.content <> a.File.content then Some (Content_changed { before = b; after = a })
          else if not (same_metadata b a) then Some (Metadata_changed { before = b; after = a })
          else None)
      before_files
  in
  let added =
    List.filter_map
      (fun (path, (a : File.t)) ->
        if List.mem_assoc path before_files then None else Some (Added a))
      after_files
  in
  List.sort (fun c1 c2 -> String.compare (change_path c1) (change_path c2)) (removed_or_changed @ added)

let assoc_changes before after =
  let keys =
    List.sort_uniq String.compare (List.map fst before @ List.map fst after)
  in
  List.filter_map
    (fun key ->
      let b = List.assoc_opt key before and a = List.assoc_opt key after in
      if b = a then None else Some (key, b, a))
    keys

let between before after =
  {
    file_changes = file_changes before after;
    kernel_changes = assoc_changes (Frame.kernel_params before) (Frame.kernel_params after);
    runtime_doc_changes =
      assoc_changes (Frame.runtime_docs before) (Frame.runtime_docs after)
      |> List.map (fun (key, _, _) -> key);
    package_changes =
      assoc_changes
        (List.map (fun (p : Frame.package) -> (p.Frame.name, p.Frame.version)) (Frame.packages before))
        (List.map (fun (p : Frame.package) -> (p.Frame.name, p.Frame.version)) (Frame.packages after));
  }

let is_empty t =
  t.file_changes = [] && t.kernel_changes = [] && t.runtime_doc_changes = []
  && t.package_changes = []

let changed_paths t = List.map change_path t.file_changes

let pp fmt t =
  List.iter
    (fun change ->
      match change with
      | Added f -> Format.fprintf fmt "+ %s@." f.File.path
      | Removed f -> Format.fprintf fmt "- %s@." f.File.path
      | Content_changed { after; _ } -> Format.fprintf fmt "~ %s@." after.File.path
      | Metadata_changed { before; after } ->
        Format.fprintf fmt "m %s (%s -> %s)@." after.File.path (File.mode_string before)
          (File.mode_string after))
    t.file_changes;
  List.iter
    (fun (key, b, a) ->
      Format.fprintf fmt "k %s (%s -> %s)@." key
        (Option.value b ~default:"<unset>")
        (Option.value a ~default:"<unset>"))
    t.kernel_changes;
  List.iter (fun key -> Format.fprintf fmt "r %s@." key) t.runtime_doc_changes;
  List.iter
    (fun (name, b, a) ->
      Format.fprintf fmt "p %s (%s -> %s)@." name
        (Option.value b ~default:"<absent>")
        (Option.value a ~default:"<absent>"))
    t.package_changes
