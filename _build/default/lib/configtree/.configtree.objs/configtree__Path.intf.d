lib/configtree/path.mli: Tree
