lib/configtree/metrics.ml: Atomic
