lib/configtree/tree.ml: Format List Option Printf String
