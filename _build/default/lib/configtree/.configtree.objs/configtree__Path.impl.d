lib/configtree/path.ml: Hashtbl List Metrics Printf String Tree
