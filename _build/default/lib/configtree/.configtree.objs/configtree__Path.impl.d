lib/configtree/path.ml: Hashtbl List Printf String Tree
