lib/configtree/path.ml: List Printf String Tree
