lib/configtree/index.mli: Path Tree
