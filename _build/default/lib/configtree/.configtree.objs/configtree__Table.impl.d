lib/configtree/table.ml: Format List Printf Re String
