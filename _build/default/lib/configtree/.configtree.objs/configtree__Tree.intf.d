lib/configtree/tree.mli: Format
