lib/configtree/index.ml: Domain Hashtbl Lazy List Option Path Tree
