lib/configtree/index.ml: Array Atomic Domain Hashtbl Lazy List Metrics Option Path Tree
