lib/configtree/metrics.mli:
