lib/configtree/table.mli: Format
