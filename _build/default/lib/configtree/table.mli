(** Schema-pattern configurations ("SQL-table like structure" in the
    paper): files such as /etc/passwd or /etc/fstab whose lines are rows
    with positional, implicitly-named columns.

    CVL schema rules query these tables through [query_constraints]
    (e.g. ["dir = ?"]) with positional ['?'] placeholders bound by
    [query_constraints_value], and project columns via [query_columns]
    (["*"] or a comma list). *)

type t = {
  name : string;  (** e.g. ["fstab"] *)
  columns : string list;
  rows : string list list;  (** each row has [List.length columns] cells *)
}

(** [make ~name ~columns rows] checks that every row matches the column
    arity; short rows are right-padded with [""] (schema files routinely
    omit trailing fields), longer rows are rejected. *)
val make : name:string -> columns:string list -> string list list -> (t, string) result

val make_exn : name:string -> columns:string list -> string list list -> t

(** A parsed constraint conjunction. *)
type query

(** [parse_query ~constraints ~values] parses e.g.
    [~constraints:"dir = ? AND fstype != ?" ~values:["/tmp"; "swap"]].
    Operators: [=], [!=], [~] (regex, anchored), [!~]. The number of
    ['?'] placeholders must equal [List.length values]. An empty
    constraint string selects every row. *)
val parse_query : constraints:string -> values:string list -> (query, string) result

(** Rows satisfying the query. *)
val select : t -> query -> string list list

(** The (column, value) pairs of the query's [=] clauses — what a row
    must contain to satisfy the equality part of the query. Used by
    remediation to synthesize missing rows. *)
val query_bindings : query -> (string * string) list

(** Every clause as (column, operator, operand), operators spelled as in
    the surface syntax ([=], [!=], [~], [!~]). *)
val query_clauses : query -> (string * string * string) list

(** [project t ~columns rows] keeps the named columns of each row, in the
    requested order; ["*"] (or [[]]) keeps all. Unknown column names are
    an error. *)
val project : t -> columns:string list -> string list list -> (string list list, string) result

(** Cells of [column] over all selected rows. *)
val column_values : t -> column:string -> string list

val pp : Format.formatter -> t -> unit
