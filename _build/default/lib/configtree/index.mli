(** Per-forest query accelerator.

    An index wraps one immutable forest and answers [Path] queries with
    interned labels, per-node children-by-label hashtables (built on
    first touch), memoized [**] deep-descent results, and a top-level
    memo per full path. Results are guaranteed element-for-element
    identical to [Path.find] on the same forest — same traversal order,
    same physical-identity dedup.

    Trees are immutable, so an index can never observe a stale forest:
    mutating a frame re-parses into a *new* forest value, and
    [for_forest] (keyed by physical identity) hands back a fresh index
    for it while old indexes keep answering for the old forest. *)

type t

(** Build an (empty, lazily filled) index over a forest. The label
    intern pool is completed eagerly; everything else on demand. *)
val create : Tree.t list -> t

(** The forest this index answers for. *)
val forest : t -> Tree.t list

(** Same contract as {!Path.find}, accelerated. *)
val find : t -> Path.t -> Tree.t list

(** Same contract as {!Path.find_values}, accelerated. *)
val find_values : t -> Path.t -> string list

(** Same contract as {!Path.exists}, accelerated. *)
val exists : t -> Path.t -> bool

(** [(memo_hits, memo_misses)] of the top-level per-path memo. *)
val stats : t -> int * int

(** The index for [forest] from the calling domain's cache, built on
    first request. Keyed by physical identity: parsed forests are shared
    by the normalization cache, so frames with identical content share
    one index, while any re-parse (frame mutation) yields a new forest
    and therefore a new index. Domain-local, hence lock-free. *)
val for_forest : Tree.t list -> t
