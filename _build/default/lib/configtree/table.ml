type t = {
  name : string;
  columns : string list;
  rows : string list list;
}

let make ~name ~columns rows =
  let arity = List.length columns in
  let rec pad row n = if n <= 0 then row else pad (row @ [ "" ]) (n - 1) in
  let rec fix acc = function
    | [] -> Ok (List.rev acc)
    | row :: rest ->
      let len = List.length row in
      if len > arity then
        Error
          (Printf.sprintf "table %s: row with %d cells exceeds %d columns" name
             len arity)
      else fix (pad row (arity - len) :: acc) rest
  in
  match fix [] rows with
  | Ok rows -> Ok { name; columns; rows }
  | Error _ as e -> e

let make_exn ~name ~columns rows =
  match make ~name ~columns rows with
  | Ok t -> t
  | Error msg -> invalid_arg msg

type op = Eq | Neq | Matches | Not_matches

type clause = {
  column : string;
  op : op;
  operand : string;
  regex : Re.re option;  (** compiled when [op] is a regex operator *)
}

type query = clause list

let parse_op = function
  | "=" -> Ok Eq
  | "!=" -> Ok Neq
  | "~" -> Ok Matches
  | "!~" -> Ok Not_matches
  | s -> Error (Printf.sprintf "unknown operator %S" s)

(* Split on the literal token [AND] (case-insensitive), respecting no
   quoting: constraint strings in CVL are simple conjunctions. *)
let split_and s =
  let words = String.split_on_char ' ' s in
  let rec go current acc = function
    | [] -> List.rev (List.rev current :: acc)
    | w :: rest when String.lowercase_ascii w = "and" ->
      go [] (List.rev current :: acc) rest
    | w :: rest -> go (w :: current) acc rest
  in
  go [] [] words
  |> List.map (fun ws -> String.concat " " (List.filter (fun w -> w <> "") ws))
  |> List.filter (fun s -> s <> "")

let parse_clause text =
  let parts =
    String.split_on_char ' ' text |> List.filter (fun s -> s <> "")
  in
  match parts with
  | [ column; op_s; operand ] -> (
    match parse_op op_s with
    | Error _ as e -> e
    | Ok op -> Ok (column, op, operand))
  | _ -> Error (Printf.sprintf "malformed constraint clause %S" text)

let parse_query ~constraints ~values =
  let texts = if String.trim constraints = "" then [] else split_and constraints in
  let rec go acc values = function
    | [] ->
      if values = [] then Ok (List.rev acc)
      else Error "more constraint values than '?' placeholders"
    | text :: rest -> (
      match parse_clause text with
      | Error _ as e -> e
      | Ok (column, op, operand) ->
        let bind operand values =
          if operand = "?" then
            match values with
            | v :: vs -> Ok (v, vs)
            | [] -> Error "more '?' placeholders than constraint values"
          else Ok (operand, values)
        in
        (match bind operand values with
        | Error _ as e -> e
        | Ok (operand, values) ->
          let regex =
            match op with
            | Matches | Not_matches ->
              (try Some (Re.compile (Re.whole_string (Re.Pcre.re operand)))
               with _ -> None)
            | Eq | Neq -> None
          in
          (match (op, regex) with
          | (Matches | Not_matches), None ->
            Error (Printf.sprintf "invalid regex %S" operand)
          | _ -> go ({ column; op; operand; regex } :: acc) values rest)))
  in
  go [] values texts

let op_to_string = function Eq -> "=" | Neq -> "!=" | Matches -> "~" | Not_matches -> "!~"

let query_clauses query =
  List.map (fun clause -> (clause.column, op_to_string clause.op, clause.operand)) query

let query_bindings query =
  List.filter_map
    (fun clause -> match clause.op with Eq -> Some (clause.column, clause.operand) | _ -> None)
    query

let column_index t column =
  let rec go i = function
    | [] -> Error (Printf.sprintf "table %s: unknown column %S" t.name column)
    | c :: _ when String.equal c column -> Ok i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.columns

let clause_holds t row clause =
  match column_index t clause.column with
  | Error _ -> false
  | Ok i ->
    let cell = List.nth row i in
    (match (clause.op, clause.regex) with
    | Eq, _ -> String.equal cell clause.operand
    | Neq, _ -> not (String.equal cell clause.operand)
    | Matches, Some re -> Re.execp re cell
    | Not_matches, Some re -> not (Re.execp re cell)
    | (Matches | Not_matches), None -> false)

let select t query =
  List.filter (fun row -> List.for_all (clause_holds t row) query) t.rows

let project t ~columns rows =
  match columns with
  | [] | [ "*" ] -> Ok rows
  | _ ->
    let rec indices acc = function
      | [] -> Ok (List.rev acc)
      | c :: rest -> (
        match column_index t c with
        | Ok i -> indices (i :: acc) rest
        | Error _ as e -> e)
    in
    (match indices [] columns with
    | Error _ as e -> e
    | Ok idxs -> Ok (List.map (fun row -> List.map (List.nth row) idxs) rows))

let column_values t ~column =
  match column_index t column with
  | Error _ -> []
  | Ok i -> List.map (fun row -> List.nth row i) t.rows

let pp fmt t =
  Format.fprintf fmt "table %s (%s)@." t.name (String.concat ", " t.columns);
  List.iter (fun row -> Format.fprintf fmt "  %s@." (String.concat " | " row)) t.rows
