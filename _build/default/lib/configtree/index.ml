(* Per-forest query accelerator.

   [Path.find] rescans every sibling list per segment; rule corpora ask
   the same handful of paths of the same forest over and over (every
   tree rule per frame, every composite lookup). An [Index] is built
   lazily over one immutable forest and answers those queries from

   - interned labels: a label absent from the pool exists nowhere in
     the forest, so [Label]/[Indexed] segments short-circuit to [];
   - children-by-label tables: per parent node, built on first touch,
     so a [Label] segment is a hash lookup instead of a sibling scan;
   - memoized [**] deep-descent results per (node, suffix), plus a
     top-level memo per full path.

   Trees are immutable, so an index never goes stale for *its* forest:
   frame mutation parses a new forest, and [for_forest] (keyed by
   physical identity) builds a fresh index for it. The per-domain cache
   means indexes are shared across every rule touching a frame within a
   domain without any locking; results are guaranteed element-for-element
   identical to [Path.find] (same traversal order, same [dedup_phys]). *)

module Node_tbl = Hashtbl.Make (struct
  type t = Tree.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type by_label = (int, Tree.t list) Hashtbl.t

type t = {
  forest : Tree.t list;
  labels : (string, int) Hashtbl.t;  (* complete intern pool, built at create *)
  mutable root_tbl : by_label option;
  node_tbls : by_label Node_tbl.t;
  deep_memo : (string, Tree.t list) Hashtbl.t Node_tbl.t;
  memo : (string, Tree.t list) Hashtbl.t;  (* full results by path text *)
  plan_memo : (int, Tree.t list array) Hashtbl.t;  (* fused results by plan id *)
  mutable hits : int;
  mutable misses : int;
}

let forest t = t.forest

let create forest =
  let labels = Hashtbl.create 64 in
  let rec intern (n : Tree.t) =
    if not (Hashtbl.mem labels n.label) then
      Hashtbl.add labels n.label (Hashtbl.length labels);
    List.iter intern n.children
  in
  List.iter intern forest;
  {
    forest;
    labels;
    root_tbl = None;
    node_tbls = Node_tbl.create 64;
    deep_memo = Node_tbl.create 16;
    memo = Hashtbl.create 16;
    plan_memo = Hashtbl.create 4;
    hits = 0;
    misses = 0;
  }

let stats t = (t.hits, t.misses)

(* Children grouped by interned label, preserving sibling order. *)
let build_by_label t (children : Tree.t list) : by_label =
  Metrics.note (List.length children);
  let tbl = Hashtbl.create (max 8 (List.length children)) in
  List.iter
    (fun (n : Tree.t) ->
      let id = Hashtbl.find t.labels n.label in
      match Hashtbl.find_opt tbl id with
      | None -> Hashtbl.add tbl id [ n ]
      | Some ns -> Hashtbl.replace tbl id (n :: ns))
    children;
  Hashtbl.filter_map_inplace (fun _ ns -> Some (List.rev ns)) tbl;
  tbl

let root_tbl t =
  match t.root_tbl with
  | Some tbl -> tbl
  | None ->
    let tbl = build_by_label t t.forest in
    t.root_tbl <- Some tbl;
    tbl

let node_tbl t (n : Tree.t) =
  match Node_tbl.find_opt t.node_tbls n with
  | Some tbl -> tbl
  | None ->
    let tbl = build_by_label t n.children in
    Node_tbl.add t.node_tbls n tbl;
    tbl

let by_label t tbl l =
  match Hashtbl.find_opt t.labels l with
  | None -> []  (* label occurs nowhere in the forest *)
  | Some id ->
    let r = Option.value (Hashtbl.find_opt (Lazy.force tbl) id) ~default:[] in
    Metrics.note (List.length r);
    r

let select t (forest : Tree.t list) tbl seg =
  match seg with
  | Path.Wildcard ->
    Metrics.note (List.length forest);
    forest
  | Path.Label l -> by_label t tbl l
  | Path.Indexed (l, idx) -> (
    match List.nth_opt (by_label t tbl l) (idx - 1) with Some n -> [ n ] | None -> [])
  | Path.Deep -> assert false

(* Mirrors [Path.find]'s traversal exactly, segment for segment, so that
   match order (and hence dedup order) is identical. *)
let rec go t (forest : Tree.t list) tbl path =
  match path with
  | [] -> forest
  | Path.Deep :: rest ->
    Metrics.note (List.length forest);
    let here = go t forest tbl rest in
    let deeper = List.concat_map (fun (n : Tree.t) -> deep_of t n rest) forest in
    here @ deeper
  | seg :: rest ->
    let selected = select t forest tbl seg in
    if rest = [] then selected
    else List.concat_map (fun n -> go_node t n rest) selected

and go_node t (n : Tree.t) path = go t n.children (lazy (node_tbl t n)) path

(* Memoized [n.children // (Deep :: rest)], pre-dedup: duplicates are
   folded out once at the top level, as in [Path.find]. *)
and deep_of t (n : Tree.t) rest =
  let per_node =
    match Node_tbl.find_opt t.deep_memo n with
    | Some m -> m
    | None ->
      let m = Hashtbl.create 4 in
      Node_tbl.add t.deep_memo n m;
      m
  in
  let key = Path.to_string rest in
  match Hashtbl.find_opt per_node key with
  | Some r -> r
  | None ->
    let r = go_node t n (Path.Deep :: rest) in
    Hashtbl.add per_node key r;
    r

let find t path =
  let key = Path.to_string path in
  match Hashtbl.find_opt t.memo key with
  | Some r ->
    t.hits <- t.hits + 1;
    r
  | None ->
    t.misses <- t.misses + 1;
    let r = Path.dedup_phys (go t t.forest (lazy (root_tbl t)) path) in
    Hashtbl.add t.memo key r;
    r

let find_values t path = List.filter_map (fun (n : Tree.t) -> n.value) (find t path)
let exists t path = find t path <> []

(* Fused multi-query plans.

   A plan merges N path queries into one prefix trie keyed on segments;
   [run_plan] drives the trie with a single walk over the forest and
   fans matched node sets back out to each query id. Per query, chunk
   arrival order is exactly the concatenation order of [Path.find]'s
   recursion (here-parts before deeper parts, per-node outer
   concatenation), so after the same per-query [dedup_phys] the results
   are element-for-element identical to [find] — which lets [run_plan]
   seed the per-path memo so residual single-path [find]s hit. *)
module Plan = struct
  type trie = {
    mutable ends : int list;  (* query ids whose path ends here *)
    mutable kids : (Path.segment * trie) list;  (* non-[**] edges, insertion order *)
    mutable deep : trie option;  (* the [**] edge *)
  }

  type plan = { id : int; root : trie; paths : Path.t array }

  let next_id = Atomic.make 0
  let fresh () = { ends = []; kids = []; deep = None }

  let build (paths : Path.t array) =
    let root = fresh () in
    Array.iteri
      (fun qid path ->
        let rec insert node = function
          | [] -> node.ends <- node.ends @ [ qid ]
          | Path.Deep :: rest ->
            let d =
              match node.deep with
              | Some d -> d
              | None ->
                let d = fresh () in
                node.deep <- Some d;
                d
            in
            insert d rest
          | seg :: rest ->
            let child =
              match List.assoc_opt seg node.kids with
              | Some c -> c
              | None ->
                let c = fresh () in
                node.kids <- node.kids @ [ (seg, c) ];
                c
            in
            insert child rest
        in
        insert root path)
      paths;
    { id = Atomic.fetch_and_add next_id 1; root; paths }

  let paths plan = plan.paths
  let size plan = Array.length plan.paths

  (* Proper-prefix pairs [(i, j)]: query [i]'s segment list is a strict
     prefix of query [j]'s, i.e. the trie walk for [j] passes through
     [i]'s end node. Identical paths (same end node) don't count. *)
  let subsumptions plan =
    let acc = ref [] in
    let rec walk node above =
      List.iter (fun j -> List.iter (fun i -> acc := (i, j) :: !acc) above) node.ends;
      let above = node.ends @ above in
      List.iter (fun (_, c) -> walk c above) node.kids;
      Option.iter (fun d -> walk d above) node.deep
    in
    walk plan.root [];
    List.sort compare !acc
end

let run_plan t (plan : Plan.plan) =
  match Hashtbl.find_opt t.plan_memo plan.Plan.id with
  | Some rs ->
    t.hits <- t.hits + 1;
    rs
  | None ->
    t.misses <- t.misses + 1;
    let buf : Tree.t list list array = Array.make (Array.length plan.Plan.paths) [] in
    let add ends chunk =
      if chunk <> [] then List.iter (fun q -> buf.(q) <- chunk :: buf.(q)) ends
    in
    (* Mirrors [go] above: [over] fires every outgoing trie edge on one
       sibling list; [enter] lands a selection on a trie node ([go]'s
       "if rest = [] then selected else recurse" step); [deep_walk]
       expands a [**] edge (here-part first, then per-node descents,
       exactly [Path.find]'s [here @ deeper]). *)
    let rec over node forest tbl =
      List.iter
        (fun (seg, child) -> enter child (select t forest tbl seg))
        node.Plan.kids;
      match node.Plan.deep with
      | None -> ()
      | Some d -> deep_walk d forest tbl
    and enter child selected =
      add child.Plan.ends selected;
      if (child.Plan.kids <> [] || child.Plan.deep <> None) && selected <> [] then
        List.iter
          (fun (n : Tree.t) -> over child n.children (lazy (node_tbl t n)))
          selected
    and deep_walk d forest tbl =
      if forest <> [] then begin
        Metrics.note (List.length forest);
        add d.Plan.ends forest;
        over d forest tbl;
        List.iter
          (fun (n : Tree.t) -> deep_walk d n.children (lazy (node_tbl t n)))
          forest
      end
    in
    add plan.Plan.root.Plan.ends t.forest;
    over plan.Plan.root t.forest (lazy (root_tbl t));
    let rs =
      Array.mapi
        (fun i chunks ->
          let r = Path.dedup_phys (List.concat (List.rev chunks)) in
          (* Seed the per-path memo: residual [find]s on any planned
             path hit instead of re-walking. *)
          let key = Path.to_string plan.Plan.paths.(i) in
          if not (Hashtbl.mem t.memo key) then Hashtbl.add t.memo key r;
          r)
        buf
    in
    Hashtbl.add t.plan_memo plan.Plan.id rs;
    rs

(* Per-domain forest→index cache. Keyed by physical identity of the
   forest list: Normcache shares parsed forests across frames with
   identical content, so one index serves every such frame. Domain-local
   state (no mutex on the query path); worker domains each warm their
   own copy. *)
module Forest_tbl = Hashtbl.Make (struct
  type t = Tree.t list

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let max_cached_forests = 512

let cache : t Forest_tbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Forest_tbl.create 32)

let for_forest forest =
  let tbl = Domain.DLS.get cache in
  match Forest_tbl.find_opt tbl forest with
  | Some idx -> idx
  | None ->
    let idx = create forest in
    if Forest_tbl.length tbl >= max_cached_forests then Forest_tbl.reset tbl;
    Forest_tbl.add tbl forest idx;
    idx
