(* Per-forest query accelerator.

   [Path.find] rescans every sibling list per segment; rule corpora ask
   the same handful of paths of the same forest over and over (every
   tree rule per frame, every composite lookup). An [Index] is built
   lazily over one immutable forest and answers those queries from

   - interned labels: a label absent from the pool exists nowhere in
     the forest, so [Label]/[Indexed] segments short-circuit to [];
   - children-by-label tables: per parent node, built on first touch,
     so a [Label] segment is a hash lookup instead of a sibling scan;
   - memoized [**] deep-descent results per (node, suffix), plus a
     top-level memo per full path.

   Trees are immutable, so an index never goes stale for *its* forest:
   frame mutation parses a new forest, and [for_forest] (keyed by
   physical identity) builds a fresh index for it. The per-domain cache
   means indexes are shared across every rule touching a frame within a
   domain without any locking; results are guaranteed element-for-element
   identical to [Path.find] (same traversal order, same [dedup_phys]). *)

module Node_tbl = Hashtbl.Make (struct
  type t = Tree.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type by_label = (int, Tree.t list) Hashtbl.t

type t = {
  forest : Tree.t list;
  labels : (string, int) Hashtbl.t;  (* complete intern pool, built at create *)
  mutable root_tbl : by_label option;
  node_tbls : by_label Node_tbl.t;
  deep_memo : (string, Tree.t list) Hashtbl.t Node_tbl.t;
  memo : (string, Tree.t list) Hashtbl.t;  (* full results by path text *)
  mutable hits : int;
  mutable misses : int;
}

let forest t = t.forest

let create forest =
  let labels = Hashtbl.create 64 in
  let rec intern (n : Tree.t) =
    if not (Hashtbl.mem labels n.label) then
      Hashtbl.add labels n.label (Hashtbl.length labels);
    List.iter intern n.children
  in
  List.iter intern forest;
  {
    forest;
    labels;
    root_tbl = None;
    node_tbls = Node_tbl.create 64;
    deep_memo = Node_tbl.create 16;
    memo = Hashtbl.create 16;
    hits = 0;
    misses = 0;
  }

let stats t = (t.hits, t.misses)

(* Children grouped by interned label, preserving sibling order. *)
let build_by_label t (children : Tree.t list) : by_label =
  let tbl = Hashtbl.create (max 8 (List.length children)) in
  List.iter
    (fun (n : Tree.t) ->
      let id = Hashtbl.find t.labels n.label in
      match Hashtbl.find_opt tbl id with
      | None -> Hashtbl.add tbl id [ n ]
      | Some ns -> Hashtbl.replace tbl id (n :: ns))
    children;
  Hashtbl.filter_map_inplace (fun _ ns -> Some (List.rev ns)) tbl;
  tbl

let root_tbl t =
  match t.root_tbl with
  | Some tbl -> tbl
  | None ->
    let tbl = build_by_label t t.forest in
    t.root_tbl <- Some tbl;
    tbl

let node_tbl t (n : Tree.t) =
  match Node_tbl.find_opt t.node_tbls n with
  | Some tbl -> tbl
  | None ->
    let tbl = build_by_label t n.children in
    Node_tbl.add t.node_tbls n tbl;
    tbl

let by_label t tbl l =
  match Hashtbl.find_opt t.labels l with
  | None -> []  (* label occurs nowhere in the forest *)
  | Some id -> Option.value (Hashtbl.find_opt (Lazy.force tbl) id) ~default:[]

let select t (forest : Tree.t list) tbl seg =
  match seg with
  | Path.Wildcard -> forest
  | Path.Label l -> by_label t tbl l
  | Path.Indexed (l, idx) -> (
    match List.nth_opt (by_label t tbl l) (idx - 1) with Some n -> [ n ] | None -> [])
  | Path.Deep -> assert false

(* Mirrors [Path.find]'s traversal exactly, segment for segment, so that
   match order (and hence dedup order) is identical. *)
let rec go t (forest : Tree.t list) tbl path =
  match path with
  | [] -> forest
  | Path.Deep :: rest ->
    let here = go t forest tbl rest in
    let deeper = List.concat_map (fun (n : Tree.t) -> deep_of t n rest) forest in
    here @ deeper
  | seg :: rest ->
    let selected = select t forest tbl seg in
    if rest = [] then selected
    else List.concat_map (fun n -> go_node t n rest) selected

and go_node t (n : Tree.t) path = go t n.children (lazy (node_tbl t n)) path

(* Memoized [n.children // (Deep :: rest)], pre-dedup: duplicates are
   folded out once at the top level, as in [Path.find]. *)
and deep_of t (n : Tree.t) rest =
  let per_node =
    match Node_tbl.find_opt t.deep_memo n with
    | Some m -> m
    | None ->
      let m = Hashtbl.create 4 in
      Node_tbl.add t.deep_memo n m;
      m
  in
  let key = Path.to_string rest in
  match Hashtbl.find_opt per_node key with
  | Some r -> r
  | None ->
    let r = go_node t n (Path.Deep :: rest) in
    Hashtbl.add per_node key r;
    r

let find t path =
  let key = Path.to_string path in
  match Hashtbl.find_opt t.memo key with
  | Some r ->
    t.hits <- t.hits + 1;
    r
  | None ->
    t.misses <- t.misses + 1;
    let r = Path.dedup_phys (go t t.forest (lazy (root_tbl t)) path) in
    Hashtbl.add t.memo key r;
    r

let find_values t path = List.filter_map (fun (n : Tree.t) -> n.value) (find t path)
let exists t path = find t path <> []

(* Per-domain forest→index cache. Keyed by physical identity of the
   forest list: Normcache shares parsed forests across frames with
   identical content, so one index serves every such frame. Domain-local
   state (no mutex on the query path); worker domains each warm their
   own copy. *)
module Forest_tbl = Hashtbl.Make (struct
  type t = Tree.t list

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let max_cached_forests = 512

let cache : t Forest_tbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Forest_tbl.create 32)

let for_forest forest =
  let tbl = Domain.DLS.get cache in
  match Forest_tbl.find_opt tbl forest with
  | Some idx -> idx
  | None ->
    let idx = create forest in
    if Forest_tbl.length tbl >= max_cached_forests then Forest_tbl.reset tbl;
    Forest_tbl.add tbl forest idx;
    idx
