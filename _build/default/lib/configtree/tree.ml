type t = {
  label : string;
  value : string option;
  children : t list;
}

let node ?value ?(children = []) label = { label; value; children }
let leaf label value = node ~value label
let section label children = node ~children label

let value_exn n =
  match n.value with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Tree.value_exn: node %S has no value" n.label)

let rec size_node n = 1 + size n.children
and size forest = List.fold_left (fun acc n -> acc + size_node n) 0 forest

let rec depth_node n = 1 + depth n.children
and depth forest = List.fold_left (fun acc n -> max acc (depth_node n)) 0 forest

let flatten forest =
  let buf = ref [] in
  let rec go prefix n =
    let here = if prefix = "" then n.label else prefix ^ "/" ^ n.label in
    (match n.value with Some v -> buf := (here, v) :: !buf | None -> ());
    List.iter (go here) n.children
  in
  List.iter (go "") forest;
  List.rev !buf

let rec equal a b =
  String.equal a.label b.label
  && Option.equal String.equal a.value b.value
  && List.equal equal a.children b.children

let rec pp_indent fmt indent n =
  let pad = String.make indent ' ' in
  (match n.value with
  | Some v -> Format.fprintf fmt "%s%s = %S" pad n.label v
  | None -> Format.fprintf fmt "%s%s" pad n.label);
  List.iter
    (fun c ->
      Format.pp_print_newline fmt ();
      pp_indent fmt (indent + 2) c)
    n.children

let pp fmt n = pp_indent fmt 0 n

let pp_forest fmt forest =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp fmt forest

let to_string forest = Format.asprintf "%a" pp_forest forest
