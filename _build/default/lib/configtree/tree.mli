(** Augeas-style labelled configuration trees.

    A configuration file is normalized into a forest of nodes. Each node
    carries a label (the key or section name), an optional value, and an
    ordered list of children. Repeated labels are permitted and are
    addressed positionally, as in Augeas. *)

type t = {
  label : string;
  value : string option;
  children : t list;
}

(** [node ?value ?children label] builds a node. *)
val node : ?value:string -> ?children:t list -> string -> t

(** [leaf label value] is [node ~value label]. *)
val leaf : string -> string -> t

(** [section label children] is [node ~children label]. *)
val section : string -> t list -> t

(** [value_exn n] is the value of [n].
    @raise Invalid_argument if [n] has no value. *)
val value_exn : t -> string

(** Number of nodes in the forest, including inner nodes. *)
val size : t list -> int

(** Depth of the deepest node; [0] for an empty forest. *)
val depth : t list -> int

(** All (path, value) pairs of valued nodes, paths rendered as
    [a/b/c]. Ordering is document order. *)
val flatten : t list -> (string * string) list

(** Structural equality that ignores child order is deliberately NOT
    provided: configuration semantics are order sensitive (e.g. repeated
    nginx directives). [equal] is ordered structural equality. *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
val pp_forest : Format.formatter -> t list -> unit

(** [to_string forest] renders the forest in an indented
    [label = value] debug syntax. *)
val to_string : t list -> string
