(** The config extractor (the paper's "Crawler" stage): walks an
    entity's configuration frame, returning the configuration files a
    manifest asks for plus their metadata, and runs entity plugins for
    state that lives in the runtime rather than in files. *)

type extracted = {
  entity_id : string;
  source_path : string;  (** absolute path inside the frame *)
  content : string;
  file : Frames.File.t;  (** permission/ownership metadata *)
}

(** [find_config_files frame ~search_paths ~patterns] returns every
    regular file under any of [search_paths] (each may be a directory or
    a single file) whose basename matches one of [patterns] (['*']
    globs; a pattern containing ['/'] matches as a path suffix).
    With [patterns = []] every file under the search paths is returned.
    Results are sorted by path and deduplicated. *)
val find_config_files :
  Frames.Frame.t -> search_paths:string list -> patterns:string list -> extracted list

(** [stat_path frame path] is the metadata for a path rule: [None] when
    the path does not exist in the frame. *)
val stat_path : Frames.Frame.t -> string -> Frames.File.t option

(** [pattern_matches pattern path] — the glob matching used by
    [find_config_files], exposed for CVL [file_context] filtering:
    basename match for plain patterns, path-suffix match for patterns
    containing ['/']. *)
val pattern_matches : string -> string -> bool

(** {2 Runtime-state plugins}

    A plugin extracts configuration that exists only in the entity's
    runtime (the paper's "custom configuration"): kernel parameters via
    [sysctl -a], MySQL server variables, docker-inspect state, cloud
    API objects. Output is text in a format some lens can parse; the
    plugin names the lens. *)

type plugin = {
  plugin_name : string;
  description : string;
  lens_name : string;  (** lens used to normalize the plugin's output *)
  run : Frames.Frame.t -> (string, string) result;
}

(** Built-in plugins: [sysctl_runtime], [mysql_variables],
    [docker_inspect], [docker_image_config], [openstack_secgroups],
    [openstack_users], [openstack_servers], [process_list],
    [package_list]. *)
val plugins : plugin list

val find_plugin : string -> plugin option

(** Run a named plugin against a frame. *)
val run_plugin : Frames.Frame.t -> name:string -> (string, string) result
