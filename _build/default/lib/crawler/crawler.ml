type extracted = {
  entity_id : string;
  source_path : string;
  content : string;
  file : Frames.File.t;
}

let glob_re pattern =
  let buf = Buffer.create (String.length pattern + 8) in
  String.iter
    (fun c ->
      match c with
      | '*' -> Buffer.add_string buf "[^/]*"
      | '.' | '\\' | '+' | '^' | '$' | '(' | ')' | '[' | ']' | '{' | '}' | '|' | '?' ->
        Buffer.add_char buf '\\';
        Buffer.add_char buf c
      | c -> Buffer.add_char buf c)
    pattern;
  Re.compile (Re.whole_string (Re.Posix.re (Buffer.contents buf)))

(* The same handful of manifest/file-context patterns is matched
   against every crawled path of every frame; compile each glob once.
   The mutex makes the memo safe under the validator's domain pool
   (compiled Re values themselves are domain-safe). *)
let glob_cache : (string, Re.re) Hashtbl.t = Hashtbl.create 64
let glob_cache_mutex = Mutex.create ()

let glob_re_cached pattern =
  Mutex.lock glob_cache_mutex;
  match Hashtbl.find_opt glob_cache pattern with
  | Some re ->
    Mutex.unlock glob_cache_mutex;
    re
  | None ->
    Mutex.unlock glob_cache_mutex;
    let re = glob_re pattern in
    Mutex.lock glob_cache_mutex;
    Hashtbl.replace glob_cache pattern re;
    Mutex.unlock glob_cache_mutex;
    re

let basename path =
  match String.rindex_opt path '/' with
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)
  | None -> path

let pattern_matches pattern path =
  let re = glob_re_cached pattern in
  if String.contains pattern '/' then begin
    let rec go start =
      if start > String.length path then false
      else
        let candidate = String.sub path start (String.length path - start) in
        if Re.execp re candidate then true
        else
          match String.index_from_opt path start '/' with
          | Some i -> go (i + 1)
          | None -> false
    in
    go 0
  end
  else Re.execp re (basename path)

let find_config_files frame ~search_paths ~patterns =
  let candidates =
    List.concat_map
      (fun root ->
        match Frames.Frame.stat frame root with
        | Some ({ Frames.File.kind = Frames.File.Regular; _ } as f) -> [ f ]
        | Some { Frames.File.kind = Frames.File.Directory; _ } ->
          Frames.Frame.files_under frame ~prefix:root
        | Some { Frames.File.kind = Frames.File.Symlink _; _ } | None -> [])
      search_paths
  in
  let matches (f : Frames.File.t) =
    patterns = [] || List.exists (fun p -> pattern_matches p f.path) patterns
  in
  candidates
  |> List.filter matches
  |> List.sort_uniq (fun (a : Frames.File.t) b -> String.compare a.path b.path)
  |> List.map (fun (f : Frames.File.t) ->
         {
           entity_id = Frames.Frame.id frame;
           source_path = f.path;
           content = f.content;
           file = f;
         })

let stat_path = Frames.Frame.stat

type plugin = {
  plugin_name : string;
  description : string;
  lens_name : string;
  run : Frames.Frame.t -> (string, string) result;
}

let runtime_doc_plugin ~name ~description ~lens_name ~key =
  {
    plugin_name = name;
    description;
    lens_name;
    run =
      (fun frame ->
        match Frames.Frame.runtime_doc frame key with
        | Some doc -> Ok doc
        | None ->
          Error
            (Printf.sprintf "plugin %s: entity %s exposes no %S runtime state" name
               (Frames.Frame.id frame) key));
  }

let sysctl_runtime =
  {
    plugin_name = "sysctl_runtime";
    description = "full kernel parameter table, as printed by `sysctl -a`";
    lens_name = "sysctl";
    run =
      (fun frame ->
        match Frames.Frame.kernel_params frame with
        | [] -> Error "plugin sysctl_runtime: frame has no kernel parameter table"
        | params -> Ok (Lenses.Sysctl.render_params (List.sort compare params)));
  }

let process_list =
  {
    plugin_name = "process_list";
    description = "running processes, one `pid user command` row per line";
    lens_name = "proc";
    run =
      (fun frame ->
        let rows =
          Frames.Frame.processes frame
          |> List.map (fun (p : Frames.Frame.process) ->
                 Printf.sprintf "%d %s %s" p.pid p.user p.command)
        in
        Ok (String.concat "\n" rows ^ "\n"));
  }

let package_list =
  {
    plugin_name = "package_list";
    description = "installed packages as `name version` properties";
    lens_name = "properties";
    run =
      (fun frame ->
        let rows =
          Frames.Frame.packages frame
          |> List.map (fun (p : Frames.Frame.package) -> Printf.sprintf "%s=%s" p.name p.version)
        in
        Ok (String.concat "\n" rows ^ "\n"));
  }

(* Derived cloud exposures: joint conditions over security-group fields
   (port ranges x CIDRs) and user attributes cannot be expressed as a
   single tree assertion, so — exactly as the paper prescribes for
   custom configuration — an entity-specific plugin computes them and
   emits plain key=value facts for the rule engine. *)
let openstack_exposures =
  {
    plugin_name = "openstack_exposures";
    description = "derived exposure facts from security groups and identity state";
    lens_name = "properties";
    run =
      (fun frame ->
        match
          ( Frames.Frame.runtime_doc frame "openstack_secgroups",
            Frames.Frame.runtime_doc frame "openstack_users" )
        with
        | None, _ | _, None ->
          Error "plugin openstack_exposures: entity exposes no OpenStack runtime state"
        | Some secgroups_doc, Some users_doc -> (
          match (Jsonlite.parse secgroups_doc, Jsonlite.parse users_doc) with
          | Error e, _ | _, Error e ->
            Error (Printf.sprintf "plugin openstack_exposures: %s" (Jsonlite.error_to_string e))
          | Ok secgroups, Ok users ->
            let groups = Option.value (Jsonlite.get_arr secgroups) ~default:[] in
            let rules =
              List.concat_map
                (fun g ->
                  match Jsonlite.member "security_group_rules" g with
                  | Some (Jsonlite.Arr rs) -> rs
                  | _ -> [])
                groups
            in
            let world_open_port port =
              List.exists
                (fun r ->
                  let str key = Option.bind (Jsonlite.member key r) Jsonlite.get_str in
                  let num key = Option.bind (Jsonlite.member key r) Jsonlite.get_num in
                  str "direction" = Some "ingress"
                  && (str "remote_ip_prefix" = Some "0.0.0.0/0" || str "remote_ip_prefix" = Some "::/0")
                  &&
                  match (num "port_range_min", num "port_range_max") with
                  | Some lo, Some hi -> lo <= float_of_int port && float_of_int port <= hi
                  | _ -> false)
                rules
            in
            let admins_without_mfa =
              Option.value (Jsonlite.get_arr users) ~default:[]
              |> List.filter (fun u ->
                     let str key = Option.bind (Jsonlite.member key u) Jsonlite.get_str in
                     let flag key = Option.bind (Jsonlite.member key u) Jsonlite.get_bool in
                     str "role" = Some "admin"
                     && flag "enabled" = Some true
                     && flag "multi_factor" = Some false)
              |> List.length
            in
            let yesno b = if b then "yes" else "no" in
            Ok
              (String.concat "\n"
                 [
                   Printf.sprintf "world_open_ssh=%s" (yesno (world_open_port 22));
                   Printf.sprintf "world_open_db=%s" (yesno (world_open_port 3306));
                   Printf.sprintf "admins_without_mfa=%d" admins_without_mfa;
                 ]
              ^ "\n")));
  }

let plugins =
  [
    sysctl_runtime;
    openstack_exposures;
    runtime_doc_plugin ~name:"mysql_variables"
      ~description:"MySQL server variables (SHOW VARIABLES), key=value form" ~lens_name:"ini"
      ~key:"mysql_variables";
    runtime_doc_plugin ~name:"docker_inspect" ~description:"docker inspect document"
      ~lens_name:"json" ~key:"docker_inspect";
    runtime_doc_plugin ~name:"docker_image_config" ~description:"image configuration (USER, ENV, HEALTHCHECK)"
      ~lens_name:"json" ~key:"docker_image_config";
    runtime_doc_plugin ~name:"openstack_secgroups" ~description:"security groups via the network API"
      ~lens_name:"json" ~key:"openstack_secgroups";
    runtime_doc_plugin ~name:"openstack_users" ~description:"identity users via the keystone API"
      ~lens_name:"json" ~key:"openstack_users";
    runtime_doc_plugin ~name:"openstack_servers" ~description:"instances via the compute API"
      ~lens_name:"json" ~key:"openstack_servers";
    process_list;
    package_list;
  ]

let find_plugin name = List.find_opt (fun p -> String.equal p.plugin_name name) plugins

let run_plugin frame ~name =
  match find_plugin name with
  | Some plugin -> plugin.run frame
  | None -> Error (Printf.sprintf "unknown plugin %S" name)
