(** Minimal XML parser and printer.

    Covers the subset needed for XCCDF/OVAL benchmark documents and
    Hadoop [*-site.xml] configuration files: elements, attributes,
    character data, comments, processing instructions, CDATA, and the
    five predefined entities. Namespaces are kept as literal prefixes in
    tag names (e.g. ["ind:textfilecontent54_test"]), which is how the
    OVAL evaluator matches them. DTDs are skipped, not validated. *)

type t =
  | Element of element
  | Text of string

and element = {
  tag : string;
  attrs : (string * string) list;
  children : t list;
}

type error = { pos : int; message : string }

exception Parse_error of error

val error_to_string : error -> string

(** Parse a document; returns the root element (prolog, comments and
    whitespace around it are accepted and discarded). *)
val parse : string -> (element, error) result

val parse_exn : string -> element

(** {2 Queries} *)

(** Direct children that are elements. *)
val elements : element -> element list

(** Direct children with the given tag. *)
val find_all : string -> element -> element list

val find : string -> element -> element option

(** Recursive descendant search, document order, self included. *)
val descendants : string -> element -> element list

val attr : string -> element -> string option

(** Concatenated character data of the element, entities decoded,
    surrounding whitespace trimmed. *)
val text : element -> string

(** {2 Construction and printing} *)

val element : ?attrs:(string * string) list -> ?children:t list -> string -> element
val text_child : string -> t

(** Indented rendering with XML declaration. *)
val to_string : element -> string
