type t =
  | Element of element
  | Text of string

and element = {
  tag : string;
  attrs : (string * string) list;
  children : t list;
}

type error = { pos : int; message : string }

exception Parse_error of error

let error_to_string e = Printf.sprintf "offset %d: %s" e.pos e.message

type state = { src : string; mutable pos : int }

let fail st fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { pos = st.pos; message })) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None
let looking_at st prefix =
  let n = String.length prefix in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = prefix

let skip_ws st =
  while
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> true
    | Some _ | None -> false
  do
    st.pos <- st.pos + 1
  done

let skip_until st marker =
  match
    let n = String.length st.src and m = String.length marker in
    let rec go i = if i + m > n then None else if String.sub st.src i m = marker then Some i else go (i + 1) in
    go st.pos
  with
  | Some i -> st.pos <- i + String.length marker
  | None -> fail st "unterminated construct (missing %S)" marker

let decode_entities st s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then Buffer.contents buf
    else if s.[i] = '&' then begin
      match String.index_from_opt s i ';' with
      | None -> fail st "unterminated entity reference"
      | Some j ->
        let name = String.sub s (i + 1) (j - i - 1) in
        (match name with
        | "lt" -> Buffer.add_char buf '<'
        | "gt" -> Buffer.add_char buf '>'
        | "amp" -> Buffer.add_char buf '&'
        | "quot" -> Buffer.add_char buf '"'
        | "apos" -> Buffer.add_char buf '\''
        | _ when String.length name > 1 && name.[0] = '#' ->
          let code =
            if name.[1] = 'x' || name.[1] = 'X' then
              int_of_string_opt ("0x" ^ String.sub name 2 (String.length name - 2))
            else int_of_string_opt (String.sub name 1 (String.length name - 1))
          in
          (match code with
          | Some c when c < 128 -> Buffer.add_char buf (Char.chr c)
          | Some _ -> Buffer.add_char buf '?'
          | None -> fail st "invalid character reference &%s;" name)
        | _ -> fail st "unknown entity &%s;" name);
        go (j + 1)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0

let is_name_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' | ':' -> true
  | _ -> false

let parse_name st =
  let start = st.pos in
  while (match peek st with Some c when is_name_char c -> true | _ -> false) do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail st "expected a name";
  String.sub st.src start (st.pos - start)

let parse_attr_value st =
  match peek st with
  | Some (('"' | '\'') as q) ->
    st.pos <- st.pos + 1;
    let start = st.pos in
    (match String.index_from_opt st.src st.pos q with
    | None -> fail st "unterminated attribute value"
    | Some j ->
      let raw = String.sub st.src start (j - start) in
      st.pos <- j + 1;
      decode_entities st raw)
  | _ -> fail st "expected quoted attribute value"

let parse_attrs st =
  let rec go acc =
    skip_ws st;
    match peek st with
    | Some ('/' | '>' | '?') | None -> List.rev acc
    | Some _ ->
      let name = parse_name st in
      skip_ws st;
      (match peek st with
      | Some '=' ->
        st.pos <- st.pos + 1;
        skip_ws st;
        let v = parse_attr_value st in
        go ((name, v) :: acc)
      | _ -> fail st "expected '=' after attribute %s" name)
  in
  go []

(* Skip prolog junk between nodes: comments, PIs, DOCTYPE. Returns true
   if something was skipped. *)
let skip_misc st =
  if looking_at st "<!--" then begin
    skip_until st "-->";
    true
  end
  else if looking_at st "<?" then begin
    skip_until st "?>";
    true
  end
  else if looking_at st "<!DOCTYPE" then begin
    skip_until st ">";
    true
  end
  else false

let rec parse_element st =
  if peek st <> Some '<' then fail st "expected '<'";
  st.pos <- st.pos + 1;
  let tag = parse_name st in
  let attrs = parse_attrs st in
  skip_ws st;
  match peek st with
  | Some '/' ->
    st.pos <- st.pos + 1;
    if peek st <> Some '>' then fail st "expected '>' after '/'";
    st.pos <- st.pos + 1;
    { tag; attrs; children = [] }
  | Some '>' ->
    st.pos <- st.pos + 1;
    let children = parse_children st tag in
    { tag; attrs; children }
  | _ -> fail st "malformed start tag <%s" tag

and parse_children st tag =
  let acc = ref [] in
  let text_buf = Buffer.create 16 in
  let flush_text () =
    let raw = Buffer.contents text_buf in
    Buffer.clear text_buf;
    if String.trim raw <> "" then acc := Text (decode_entities st raw) :: !acc
  in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated element <%s>" tag
    | Some '<' ->
      if looking_at st "</" then begin
        flush_text ();
        st.pos <- st.pos + 2;
        let close = parse_name st in
        skip_ws st;
        if peek st <> Some '>' then fail st "malformed end tag </%s" close;
        st.pos <- st.pos + 1;
        if close <> tag then fail st "mismatched end tag </%s> (expected </%s>)" close tag
      end
      else if looking_at st "<![CDATA[" then begin
        (* CDATA is literal: flush pending text, then emit the section
           verbatim (no entity decoding). *)
        flush_text ();
        st.pos <- st.pos + 9;
        let start = st.pos in
        skip_until st "]]>";
        acc := Text (String.sub st.src start (st.pos - 3 - start)) :: !acc;
        go ()
      end
      else if skip_misc st then go ()
      else begin
        flush_text ();
        let child = parse_element st in
        acc := Element child :: !acc;
        go ()
      end
    | Some c ->
      st.pos <- st.pos + 1;
      Buffer.add_char text_buf c;
      go ()
  in
  go ();
  List.rev !acc

let parse_exn input =
  let st = { src = input; pos = 0 } in
  let rec prolog () =
    skip_ws st;
    if skip_misc st then prolog ()
  in
  prolog ();
  let root = parse_element st in
  let rec epilog () =
    skip_ws st;
    if skip_misc st then epilog ()
  in
  epilog ();
  (match peek st with
  | Some c -> fail st "trailing %C after root element" c
  | None -> ());
  root

let parse input =
  match parse_exn input with
  | v -> Ok v
  | exception Parse_error e -> Error e

let elements e =
  List.filter_map (function Element el -> Some el | Text _ -> None) e.children

let find_all tag e = List.filter (fun el -> String.equal el.tag tag) (elements e)
let find tag e = List.find_opt (fun el -> String.equal el.tag tag) (elements e)

let rec descendants tag e =
  let self = if String.equal e.tag tag then [ e ] else [] in
  self @ List.concat_map (descendants tag) (elements e)

let attr name e = List.assoc_opt name e.attrs

let text e =
  e.children
  |> List.filter_map (function Text s -> Some s | Element _ -> None)
  |> String.concat ""
  |> String.trim

let element ?(attrs = []) ?(children = []) tag = { tag; attrs; children }
let text_child s = Text s

let encode s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string root =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  let rec go indent e =
    let pad = String.make indent ' ' in
    let attrs =
      e.attrs
      |> List.map (fun (k, v) -> Printf.sprintf " %s=\"%s\"" k (encode v))
      |> String.concat ""
    in
    match e.children with
    | [] -> Buffer.add_string buf (Printf.sprintf "%s<%s%s/>\n" pad e.tag attrs)
    | [ Text s ] ->
      Buffer.add_string buf
        (Printf.sprintf "%s<%s%s>%s</%s>\n" pad e.tag attrs (encode s) e.tag)
    | children ->
      Buffer.add_string buf (Printf.sprintf "%s<%s%s>\n" pad e.tag attrs);
      List.iter
        (function
          | Element child -> go (indent + 2) child
          | Text s -> Buffer.add_string buf (Printf.sprintf "%s  %s\n" pad (encode s)))
        children;
      Buffer.add_string buf (Printf.sprintf "%s</%s>\n" pad e.tag)
  in
  go 0 root;
  Buffer.contents buf
