lib/inspeclite/render.ml: Checkir Engine List Printf String
