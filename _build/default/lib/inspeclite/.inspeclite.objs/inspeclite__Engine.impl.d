lib/inspeclite/engine.ml: Bash_emu Checkir Dsl List Printf Re String
