lib/inspeclite/dsl.ml: Bash_emu Checkir Frames List Re String
