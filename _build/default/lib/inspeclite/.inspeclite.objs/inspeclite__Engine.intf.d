lib/inspeclite/engine.mli: Checkir Dsl Frames
