lib/inspeclite/bash_emu.mli: Frames
