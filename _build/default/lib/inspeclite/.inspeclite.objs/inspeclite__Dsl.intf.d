lib/inspeclite/dsl.mli: Checkir Frames
