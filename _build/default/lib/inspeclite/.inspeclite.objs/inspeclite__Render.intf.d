lib/inspeclite/render.mli: Checkir
