lib/inspeclite/bash_emu.ml: Buffer Frames Hashtbl List Option Printf Re String
