(** A tiny bash emulator for the "observed" Chef Compliance encoding.

    The paper notes that Chef Compliance's CIS rules "boil down to just
    bash scripts" of the shape

    {v grep '^\s*PermitRootLogin\s' /etc/ssh/sshd_config | head -1 v}

    This module executes exactly that fragment language against a
    configuration frame: a pipeline of [grep [-E] PATTERN FILE],
    [head -N], [tail -N], [wc -l], [cut -dC -fN], [stat -c FMT FILE]
    and [echo TEXT] stages. Quoting: single or double quotes around an
    argument are stripped; no variable expansion. *)

(** [run frame command] is the pipeline's stdout ([""] on any stage
    error, like a failing grep). *)
val run : Frames.Frame.t -> string -> string

(** Tokenize one stage, honouring quotes (exposed for tests). *)
val split_args : string -> string list
