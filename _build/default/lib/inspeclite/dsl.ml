type matcher =
  | Eq of string
  | Match of string
  | Be_in of string list
  | Le of int
  | Ge of int
  | Mode_max of int
  | Exist

type its_test = {
  property : string;
  matcher : matcher;
  negate : bool;
}

type resource =
  | Sshd_config
  | Sysctl_conf
  | Kv_file of { file : string; sep : Checkir.Check.sep }
  | File_resource of string
  | Command of string

type describe_block = {
  resource : resource;
  tests : its_test list;
}

type control = {
  control_id : string;
  impact : float;
  title : string;
  desc : string;
  describes : describe_block list;
}

let control ~id ?(impact = 1.0) ?(title = "") ?(desc = "") describes =
  { control_id = id; impact; title; desc; describes }

let describe resource tests = { resource; tests }
let its property ?(negate = false) matcher = { property; matcher; negate }

let sshd_config = Kv_file { file = "/etc/ssh/sshd_config"; sep = Checkir.Check.Space }
let sysctl_conf = Kv_file { file = "/etc/sysctl.conf"; sep = Checkir.Check.Equals }

let should_eq v = Eq v
let should_match re = Match re

let fetch_kv frame ~file ~sep property =
  match Checkir.Check.key_values ~sep ~key:property (Checkir.Check.config_lines frame file) with
  | [] -> None
  | v :: _ -> Some v

let fetch frame resource property =
  match resource with
  | Sshd_config -> fetch_kv frame ~file:"/etc/ssh/sshd_config" ~sep:Checkir.Check.Space property
  | Sysctl_conf -> fetch_kv frame ~file:"/etc/sysctl.conf" ~sep:Checkir.Check.Equals property
  | Kv_file { file; sep } -> fetch_kv frame ~file ~sep property
  | File_resource path -> (
    match Frames.Frame.stat frame path with
    | None -> if property = "exist" then Some "false" else None
    | Some f -> (
      match property with
      | "mode" -> Some (Frames.File.permission_octal f)
      | "uid" -> Some (string_of_int f.Frames.File.uid)
      | "gid" -> Some (string_of_int f.Frames.File.gid)
      | "owner" -> Some f.Frames.File.owner
      | "group" -> Some f.Frames.File.group
      | "exist" -> Some "true"
      | _ -> None))
  | Command cmd -> (
    match property with
    | "stdout" -> Some (Bash_emu.run frame cmd)
    | "exit_status" -> Some (if Bash_emu.run frame cmd = "" then "1" else "0")
    | _ -> None)

let matcher_holds matcher value =
  match matcher with
  | Eq expected -> String.equal value expected
  | Match re -> (
    match Re.execp (Re.compile (Re.Pcre.re re)) value with
    | m -> m
    | exception _ -> false)
  | Be_in vs -> List.mem value vs
  | Le bound -> ( match int_of_string_opt value with Some n -> n <= bound | None -> false)
  | Mode_max ceiling -> (
    match int_of_string_opt ("0o" ^ value) with
    | Some mode -> mode land lnot ceiling land 0o7777 = 0
    | None -> false)
  | Ge bound -> ( match int_of_string_opt value with Some n -> n >= bound | None -> false)
  | Exist -> true

let test_holds frame resource t =
  let outcome =
    match fetch frame resource t.property with
    | None -> false
    | Some value -> matcher_holds t.matcher value
  in
  if t.negate then not outcome else outcome

let run_control frame c =
  List.for_all (fun d -> List.for_all (test_holds frame d.resource) d.tests) c.describes

let run_profile frame controls = List.map (fun c -> (c.control_id, run_control frame c)) controls
