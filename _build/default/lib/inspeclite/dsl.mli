(** An embedded InSpec-style DSL: the "expected" declarative encoding of
    paper Listing 6 ([control] / [describe] / [its] / [should]),
    executable against configuration frames.

    {[
      let ctrl =
        Dsl.control ~id:"sshd-06" ~impact:1.0 ~title:"Do not permit root login"
          [ Dsl.describe Dsl.sshd_config
              [ Dsl.its "PermitRootLogin" (Dsl.should_match "no|without-password") ] ]
    ]} *)

type matcher =
  | Eq of string
  | Match of string  (** unanchored regex *)
  | Be_in of string list
  | Le of int
  | Ge of int
  | Mode_max of int
      (** octal-text property must not exceed the bit ceiling
          (InSpec's [be_more_permissive_than], inverted) *)
  | Exist

type its_test = {
  property : string;
  matcher : matcher;
  negate : bool;
}

type resource =
  | Sshd_config  (** properties are sshd keywords *)
  | Sysctl_conf  (** properties are dotted kernel keys *)
  | Kv_file of { file : string; sep : Checkir.Check.sep }
  | File_resource of string
      (** properties: [mode] (octal text), [uid], [gid], [owner],
          [group], [exist] *)
  | Command of string  (** properties: [stdout], [exit_status] *)

type describe_block = {
  resource : resource;
  tests : its_test list;
}

type control = {
  control_id : string;
  impact : float;
  title : string;
  desc : string;
  describes : describe_block list;
}

val control :
  id:string -> ?impact:float -> ?title:string -> ?desc:string -> describe_block list -> control

val describe : resource -> its_test list -> describe_block
val its : string -> ?negate:bool -> matcher -> its_test

val sshd_config : resource
val sysctl_conf : resource

val should_eq : string -> matcher
val should_match : string -> matcher

(** Property lookup, exposed for tests: [None] = property missing. *)
val fetch : Frames.Frame.t -> resource -> string -> string option

(** A control passes when every [its] expectation in every describe
    block holds. A missing property fails non-negated expectations and
    passes negated ones. *)
val run_control : Frames.Frame.t -> control -> bool

val run_profile : Frames.Frame.t -> control list -> (string * bool) list
